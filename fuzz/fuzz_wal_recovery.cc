// Recovery fuzzer for the key-point WAL (storage/keypoint_wal.h).
//
// Two modes, selected by the first input byte:
//
//   * Arbitrary-bytes mode: the remaining input IS a segment image, fed
//     straight to WalReader::RecoverSegment for both is_last values. The
//     reader's contract is totality — arbitrary bytes must never crash,
//     hang, or produce a report that disagrees with itself — plus codec
//     involution on whatever it recovers.
//
//   * Round-trip mode: the input bytes *synthesize* checkpoints (hostile
//     int64 patterns included), which the harness encodes with the
//     production codec and then damages deliberately — truncation at any
//     offset or a single byte flip — before recovering. Because the
//     harness knows exactly what was written and where every record ends,
//     it can assert the strong oracles: intact images replay bit-exact
//     and clean; truncated images replay the exact record prefix with the
//     byte-accounting identity; a flipped byte never resurrects data from
//     before the damage incorrectly.
//
// Both modes run the recovery twice and require identical results:
// recovery is a pure function of the bytes, and any nondeterminism would
// make the crash tests unreproducible.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "fuzz_input.h"
#include "storage/keypoint_wal.h"
#include "storage/wal_format.h"

namespace {

using bqs_fuzz::FuzzInput;

#define FUZZ_CHECK(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s\n  ", #cond);     \
      std::fprintf(stderr, __VA_ARGS__);                            \
      std::fprintf(stderr, "\n");                                   \
      std::abort();                                                 \
    }                                                               \
  } while (0)

std::span<const uint8_t> AsSpan(const std::string& bytes) {
  return {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()};
}

/// Two recovery reports agree on every counter.
bool SameReport(const bqs::WalRecoveryReport& a,
                const bqs::WalRecoveryReport& b) {
  return a.segments_scanned == b.segments_scanned &&
         a.segments_bad_header == b.segments_bad_header &&
         a.records_recovered == b.records_recovered &&
         a.torn_tail == b.torn_tail && a.bad_crc == b.bad_crc &&
         a.bad_varint == b.bad_varint && a.short_header == b.short_header &&
         a.bytes_dropped == b.bytes_dropped;
}

/// Invariants every recovery must satisfy regardless of input: the report
/// agrees with the output vector, never claims more dropped bytes than
/// exist, and clean() means what it says.
void CheckReportConsistency(std::span<const uint8_t> image,
                            const std::vector<bqs::wal::WalCheckpoint>& out,
                            const bqs::WalRecoveryReport& report) {
  FUZZ_CHECK(report.records_recovered == out.size(),
             "recovered=%llu out=%zu",
             static_cast<unsigned long long>(report.records_recovered),
             out.size());
  FUZZ_CHECK(report.bytes_dropped <= image.size(), "dropped=%llu size=%zu",
             static_cast<unsigned long long>(report.bytes_dropped),
             image.size());
  FUZZ_CHECK(report.segments_scanned == 1, "scanned=%llu",
             static_cast<unsigned long long>(report.segments_scanned));
  if (report.clean()) {
    FUZZ_CHECK(report.bytes_dropped == 0 && report.loss_events() == 0,
               "clean report with losses");
  }
  if (report.segments_bad_header != 0) {
    // An untrusted header drops the whole segment: nothing recovered and
    // every byte accounted as lost.
    FUZZ_CHECK(out.empty() && report.bytes_dropped == image.size(),
               "bad header but out=%zu dropped=%llu size=%zu", out.size(),
               static_cast<unsigned long long>(report.bytes_dropped),
               image.size());
  }
  for (const bqs::wal::WalCheckpoint& cp : out) {
    // Codec involution: anything recovery vouches for must survive its
    // own encode/decode cycle bit-exact (points are never empty; decode
    // rejects empty-count payloads before they get here).
    FUZZ_CHECK(!cp.points.empty(), "recovered checkpoint with no points");
    std::string encoded;
    bqs::wal::EncodeRecord(cp, &encoded);
    bqs::wal::WalCheckpoint round;
    const bool ok = bqs::wal::DecodeRecordPayload(
        AsSpan(encoded).subspan(bqs::wal::kRecordHeaderBytes), &round);
    FUZZ_CHECK(ok && round == cp, "recovered checkpoint fails involution");
  }
}

/// Recovers `image` twice and checks determinism + self-consistency.
/// Returns the first run's results through the out-params.
void RecoverChecked(std::span<const uint8_t> image, bool is_last,
                    std::vector<bqs::wal::WalCheckpoint>* out,
                    bqs::WalRecoveryReport* report) {
  bqs::WalReader::RecoverSegment(image, is_last, out, report);
  CheckReportConsistency(image, *out, *report);

  std::vector<bqs::wal::WalCheckpoint> again;
  bqs::WalRecoveryReport again_report;
  bqs::WalReader::RecoverSegment(image, is_last, &again, &again_report);
  FUZZ_CHECK(again == *out && SameReport(again_report, *report),
             "recovery is nondeterministic (is_last=%d size=%zu)", is_last,
             image.size());
}

void FuzzArbitraryBytes(FuzzInput& in, const uint8_t* data,
                        std::size_t size) {
  // Everything after the mode byte is the segment image, verbatim — so a
  // corpus file can hold a real on-disk segment with one byte prepended.
  const std::span<const uint8_t> image(data + (size - in.remaining()),
                                       in.remaining());
  for (const bool is_last : {false, true}) {
    std::vector<bqs::wal::WalCheckpoint> out;
    bqs::WalRecoveryReport report;
    RecoverChecked(image, is_last, &out, &report);
    if (image.empty()) {
      FUZZ_CHECK(report.clean() && out.empty(), "empty image not clean");
    }
  }
}

/// One hostile-but-deterministic int64 from the input: mixes the extreme
/// patterns overflow bugs live at with fuzzer-chosen bit soup.
int64_t HostileI64(FuzzInput& in) {
  switch (in.U8() % 8) {
    case 0: return 0;
    case 1: return 1;
    case 2: return -1;
    case 3: return std::numeric_limits<int64_t>::min();
    case 4: return std::numeric_limits<int64_t>::max();
    case 5: return static_cast<int64_t>(in.U32());
    case 6: return -static_cast<int64_t>(in.U32());
    default:
      return static_cast<int64_t>(
          (static_cast<uint64_t>(in.U32()) << 32) | in.U32());
  }
}

struct WrittenImage {
  std::string bytes;
  std::vector<bqs::wal::WalCheckpoint> checkpoints;
  /// record_ends[i] = image offset one past checkpoint i's record.
  std::vector<std::size_t> record_ends;
};

WrittenImage SynthesizeImage(FuzzInput& in) {
  WrittenImage image;
  bqs::wal::WalQuantization quant;  // defaults; recovery never dequantizes
  bqs::wal::EncodeSegmentHeader(quant, /*first_seq=*/1, &image.bytes);
  const int records = in.IntIn(1, 6);
  for (int r = 0; r < records; ++r) {
    bqs::wal::WalCheckpoint cp;
    cp.device = static_cast<uint64_t>(HostileI64(in));
    cp.seq = static_cast<uint64_t>(r) + 1;
    const int points = in.IntIn(1, 5);
    for (int i = 0; i < points; ++i) {
      bqs::wal::WalPoint p;
      p.index = static_cast<uint64_t>(HostileI64(in));
      p.qt = HostileI64(in);
      p.qx = HostileI64(in);
      p.qy = HostileI64(in);
      cp.points.push_back(p);
    }
    bqs::wal::EncodeRecord(cp, &image.bytes);
    image.checkpoints.push_back(std::move(cp));
    image.record_ends.push_back(image.bytes.size());
  }
  return image;
}

/// Oracle for a synthesized image truncated at `cut` and recovered as the
/// last segment: the exact record prefix survives, every lost byte is
/// accounted, and the loss reason matches where the cut landed. This is
/// the crash-point sweep's oracle, driven here at fuzzer-chosen offsets
/// over fuzzer-chosen (hostile) contents.
void CheckTruncatedRecovery(const WrittenImage& image, std::size_t cut) {
  const std::span<const uint8_t> prefix = AsSpan(image.bytes).first(cut);
  std::vector<bqs::wal::WalCheckpoint> out;
  bqs::WalRecoveryReport report;
  RecoverChecked(prefix, /*is_last=*/true, &out, &report);

  if (cut == 0) {
    FUZZ_CHECK(report.clean() && out.empty(), "cut=0 not clean");
    return;
  }
  if (cut < bqs::wal::kSegmentHeaderBytes) {
    FUZZ_CHECK(report.segments_bad_header == 1 &&
                   report.bytes_dropped == cut && out.empty(),
               "cut=%zu inside header: bad_header=%llu dropped=%llu", cut,
               static_cast<unsigned long long>(report.segments_bad_header),
               static_cast<unsigned long long>(report.bytes_dropped));
    return;
  }

  std::size_t expected = 0;
  std::size_t edge = bqs::wal::kSegmentHeaderBytes;
  for (const std::size_t end : image.record_ends) {
    if (end <= cut) {
      ++expected;
      edge = end;
    }
  }
  FUZZ_CHECK(out.size() == expected, "cut=%zu out=%zu expected=%zu", cut,
             out.size(), expected);
  for (std::size_t i = 0; i < expected; ++i) {
    FUZZ_CHECK(out[i] == image.checkpoints[i],
               "cut=%zu record %zu not bit-exact", cut, i);
  }
  const std::size_t rem = cut - edge;
  if (rem == 0) {
    FUZZ_CHECK(report.clean(), "cut=%zu on a record edge but not clean",
               cut);
  } else if (rem < bqs::wal::kRecordHeaderBytes) {
    FUZZ_CHECK(report.short_header == 1 && report.bytes_dropped == rem,
               "cut=%zu rem=%zu: short_header=%llu dropped=%llu", cut, rem,
               static_cast<unsigned long long>(report.short_header),
               static_cast<unsigned long long>(report.bytes_dropped));
  } else {
    FUZZ_CHECK(report.torn_tail == 1 && report.bytes_dropped == rem,
               "cut=%zu rem=%zu: torn_tail=%llu dropped=%llu", cut, rem,
               static_cast<unsigned long long>(report.torn_tail),
               static_cast<unsigned long long>(report.bytes_dropped));
  }
}

/// Oracle for a single flipped byte: records wholly before the damaged
/// one are untouchable — they must come back bit-exact, as a prefix —
/// and damage inside the header voids the whole segment. (What happens
/// *after* the flip depends on which byte it hit — length field vs
/// payload — so only the is-a-prefix-before-the-damage property is
/// asserted, for both is_last policies.)
void CheckFlippedRecovery(const WrittenImage& image, std::size_t flip_at,
                          uint8_t flip_mask) {
  std::string damaged = image.bytes;
  damaged[flip_at] = static_cast<char>(
      static_cast<uint8_t>(damaged[flip_at]) ^ flip_mask);

  // Number of records entirely before the flipped byte.
  std::size_t intact = 0;
  for (const std::size_t end : image.record_ends) {
    if (end <= flip_at) ++intact;
  }

  for (const bool is_last : {false, true}) {
    std::vector<bqs::wal::WalCheckpoint> out;
    bqs::WalRecoveryReport report;
    RecoverChecked(AsSpan(damaged), is_last, &out, &report);
    if (flip_at < bqs::wal::kSegmentHeaderBytes) {
      FUZZ_CHECK(report.segments_bad_header == 1 && out.empty(),
                 "flip@%zu in header: bad_header=%llu out=%zu", flip_at,
                 static_cast<unsigned long long>(report.segments_bad_header),
                 out.size());
      continue;
    }
    FUZZ_CHECK(!report.clean(), "flip@%zu mask=%u undetected", flip_at,
               flip_mask);
    FUZZ_CHECK(out.size() >= intact, "flip@%zu lost intact records: %zu<%zu",
               flip_at, out.size(), intact);
    for (std::size_t i = 0; i < intact; ++i) {
      FUZZ_CHECK(out[i] == image.checkpoints[i],
                 "flip@%zu intact record %zu not bit-exact", flip_at, i);
    }
  }
}

void FuzzRoundTrip(FuzzInput& in) {
  const WrittenImage image = SynthesizeImage(in);

  switch (in.U8() % 3) {
    case 0: {  // intact: bit-exact, clean, under both is_last policies
      for (const bool is_last : {false, true}) {
        std::vector<bqs::wal::WalCheckpoint> out;
        bqs::WalRecoveryReport report;
        RecoverChecked(AsSpan(image.bytes), is_last, &out, &report);
        FUZZ_CHECK(report.clean(), "intact image not clean (is_last=%d)",
                   is_last);
        FUZZ_CHECK(out == image.checkpoints,
                   "intact image not bit-exact (is_last=%d)", is_last);
      }
      break;
    }
    case 1: {  // truncate at a fuzzer-chosen offset
      const std::size_t cut = in.U32() % (image.bytes.size() + 1);
      CheckTruncatedRecovery(image, cut);
      break;
    }
    default: {  // flip one byte
      const std::size_t flip_at = in.U32() % image.bytes.size();
      const uint8_t flip_mask =
          static_cast<uint8_t>(in.U8() % 255 + 1);  // never zero
      CheckFlippedRecovery(image, flip_at, flip_mask);
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  if ((in.U8() & 1) != 0) {
    FuzzRoundTrip(in);
  } else {
    FuzzArbitraryBytes(in, data, size);
  }
  return 0;
}
