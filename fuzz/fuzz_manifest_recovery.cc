// Recovery fuzzer for the compaction store's durable images: the MANIFEST
// codec (storage/manifest.h) and the columnar block codec
// (storage/block_format.h). These are the bytes RecoverStore trusts after
// a crash, so their decoders' contract is totality — arbitrary bytes must
// never crash, hang, or mis-decode — plus the round-trip oracles the
// crash sweep relies on.
//
// Three modes, selected by the first input byte:
//
//   * Arbitrary-bytes mode: the remaining input is fed verbatim to
//     DecodeManifest, DecodeBlockFileHeader and DecodeBlockPayload. Each
//     must be deterministic, and an accepting DecodeManifest must be
//     canonical: re-encoding its output reproduces the input bytes
//     exactly (the whole image is CRC-framed, so there is exactly one
//     encoding per manifest).
//
//   * Manifest round-trip mode: a manifest is synthesized from the input
//     (hostile counts and extremes included), encoded, then damaged —
//     truncated at any offset or a single byte flip. Intact images decode
//     bit-exact; EVERY truncation and EVERY flip must reject. There is no
//     partial-prefix recovery for a manifest: that is what the
//     scan-all-blocks fallback is for.
//
//   * Block round-trip mode: a checkpoint run is synthesized (hostile
//     int64 patterns, wrap-adjacent indices), encoded, decoded back
//     bit-exact; truncations must reject; a flipped payload byte may
//     decode (framing CRC lives a layer above) but whatever the decoder
//     vouches for must be self-consistent: the re-measured BlockMeta of
//     the returned checkpoints equals the meta it returned.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "fuzz_input.h"
#include "storage/block_format.h"
#include "storage/manifest.h"

namespace {

using bqs_fuzz::FuzzInput;

#define FUZZ_CHECK(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s\n  ", #cond);     \
      std::fprintf(stderr, __VA_ARGS__);                            \
      std::fprintf(stderr, "\n");                                   \
      std::abort();                                                 \
    }                                                               \
  } while (0)

std::span<const uint8_t> AsSpan(const std::string& bytes) {
  return {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()};
}

int64_t HostileI64(FuzzInput& in) {
  switch (in.U8() % 8) {
    case 0: return 0;
    case 1: return 1;
    case 2: return -1;
    case 3: return std::numeric_limits<int64_t>::min();
    case 4: return std::numeric_limits<int64_t>::max();
    case 5: return static_cast<int64_t>(in.U32());
    case 6: return -static_cast<int64_t>(in.U32());
    default:
      return static_cast<int64_t>(
          (static_cast<uint64_t>(in.U32()) << 32) | in.U32());
  }
}

void FuzzArbitraryBytes(FuzzInput& in, const uint8_t* data,
                        std::size_t size) {
  const std::span<const uint8_t> image(data + (size - in.remaining()),
                                       in.remaining());
  // Manifest: total + deterministic + canonical on acceptance.
  bqs::Manifest manifest;
  const bool ok = bqs::DecodeManifest(image, &manifest);
  bqs::Manifest again;
  FUZZ_CHECK(bqs::DecodeManifest(image, &again) == ok,
             "DecodeManifest nondeterministic (size=%zu)", image.size());
  if (ok) {
    FUZZ_CHECK(again == manifest, "DecodeManifest output differs on rerun");
    std::string reencoded;
    bqs::EncodeManifest(manifest, &reencoded);
    FUZZ_CHECK(reencoded.size() == image.size() &&
                   std::equal(reencoded.begin(), reencoded.end(),
                              reinterpret_cast<const char*>(image.data())),
               "accepted manifest image is not canonical (size=%zu)",
               image.size());
  }

  // Block file header: total + deterministic.
  bqs::blk::BlockFileHeaderInfo info;
  const bool header_ok = bqs::blk::DecodeBlockFileHeader(image, &info);
  FUZZ_CHECK(bqs::blk::DecodeBlockFileHeader(image, &info) == header_ok,
             "DecodeBlockFileHeader nondeterministic");

  // Block payload: total + self-consistent on acceptance.
  bqs::blk::BlockMeta meta;
  std::vector<bqs::wal::WalCheckpoint> out;
  if (bqs::blk::DecodeBlockPayload(image, &meta, &out)) {
    FUZZ_CHECK(bqs::blk::ComputeBlockMeta(out) == meta,
               "decoded block meta disagrees with its checkpoints");
    std::vector<bqs::wal::WalCheckpoint> rerun;
    bqs::blk::BlockMeta rerun_meta;
    FUZZ_CHECK(bqs::blk::DecodeBlockPayload(image, &rerun_meta, &rerun) &&
                   rerun == out,
               "DecodeBlockPayload nondeterministic");
  }
}

bqs::Manifest SynthesizeManifest(FuzzInput& in) {
  bqs::Manifest m;
  // Quanta stay on a coarse positive grid: codec equality is bitwise on
  // the double, and recovery never trusts NaN-shaped quanta anyway.
  m.quant.time_quantum = 0.001 * in.IntIn(1, 1000);
  m.quant.coord_quantum = 0.001 * in.IntIn(1, 1000);
  m.last_applied_seq = static_cast<uint64_t>(HostileI64(in));
  const int files = in.IntIn(0, 4);
  for (int f = 0; f < files; ++f) {
    bqs::ManifestBlockFile file;
    file.file_id = static_cast<uint64_t>(in.U32());
    file.file_bytes = static_cast<uint64_t>(in.U32());
    const int blocks = in.IntIn(0, 4);
    for (int b = 0; b < blocks; ++b) {
      bqs::ManifestBlockEntry entry;
      entry.offset = static_cast<uint64_t>(in.U32());
      entry.meta.device = static_cast<uint64_t>(HostileI64(in));
      entry.meta.first_seq = static_cast<uint64_t>(HostileI64(in));
      entry.meta.last_seq = static_cast<uint64_t>(HostileI64(in));
      entry.meta.checkpoint_count = static_cast<uint64_t>(in.U16());
      entry.meta.point_count = static_cast<uint64_t>(in.U32());
      entry.meta.qt_min = HostileI64(in);
      entry.meta.qt_max = HostileI64(in);
      entry.meta.qx_min = HostileI64(in);
      entry.meta.qx_max = HostileI64(in);
      entry.meta.qy_min = HostileI64(in);
      entry.meta.qy_max = HostileI64(in);
      file.blocks.push_back(entry);
    }
    m.files.push_back(std::move(file));
  }
  return m;
}

void FuzzManifestRoundTrip(FuzzInput& in) {
  const bqs::Manifest m = SynthesizeManifest(in);
  std::string bytes;
  bqs::EncodeManifest(m, &bytes);

  bqs::Manifest decoded;
  switch (in.U8() % 3) {
    case 0: {  // intact: bit-exact
      FUZZ_CHECK(bqs::DecodeManifest(AsSpan(bytes), &decoded),
                 "intact manifest rejected (size=%zu)", bytes.size());
      FUZZ_CHECK(decoded == m, "intact manifest not bit-exact");
      break;
    }
    case 1: {  // truncate anywhere: all-or-nothing, so always reject
      const std::size_t cut = in.U32() % bytes.size();
      FUZZ_CHECK(!bqs::DecodeManifest(AsSpan(bytes).first(cut), &decoded),
                 "manifest truncated to %zu of %zu bytes decoded", cut,
                 bytes.size());
      break;
    }
    default: {  // flip one byte: the image CRC must catch it
      const std::size_t flip_at = in.U32() % bytes.size();
      const uint8_t mask = static_cast<uint8_t>(in.U8() % 255 + 1);
      std::string damaged = bytes;
      damaged[flip_at] =
          static_cast<char>(static_cast<uint8_t>(damaged[flip_at]) ^ mask);
      FUZZ_CHECK(!bqs::DecodeManifest(AsSpan(damaged), &decoded),
                 "manifest flip@%zu mask=%u undetected", flip_at, mask);
      break;
    }
  }
}

std::vector<bqs::wal::WalCheckpoint> SynthesizeRun(FuzzInput& in) {
  std::vector<bqs::wal::WalCheckpoint> run;
  const uint64_t device = static_cast<uint64_t>(HostileI64(in));
  uint64_t seq = static_cast<uint64_t>(in.U32()) + 1;
  const int checkpoints = in.IntIn(1, 5);
  for (int c = 0; c < checkpoints; ++c) {
    bqs::wal::WalCheckpoint cp;
    cp.device = device;  // one block holds one device's run
    cp.seq = seq;
    seq += 1u + in.U8() % 7u;  // gaps are legal, order is required
    const int points = in.IntIn(1, 5);
    for (int i = 0; i < points; ++i) {
      bqs::wal::WalPoint p;
      p.index = static_cast<uint64_t>(HostileI64(in));
      p.qt = HostileI64(in);
      p.qx = HostileI64(in);
      p.qy = HostileI64(in);
      cp.points.push_back(p);
    }
    run.push_back(std::move(cp));
  }
  return run;
}

void FuzzBlockRoundTrip(FuzzInput& in) {
  const std::vector<bqs::wal::WalCheckpoint> run = SynthesizeRun(in);
  std::string framed;
  bqs::blk::BlockMeta encoded_meta;
  bqs::blk::EncodeBlock(run, &framed, &encoded_meta);
  const std::span<const uint8_t> payload =
      AsSpan(framed).subspan(bqs::blk::kBlockHeaderBytes);

  bqs::blk::BlockMeta meta;
  std::vector<bqs::wal::WalCheckpoint> out;
  switch (in.U8() % 3) {
    case 0: {  // intact: bit-exact, meta agrees with the encoder's
      FUZZ_CHECK(bqs::blk::DecodeBlockPayload(payload, &meta, &out),
                 "intact block rejected (payload=%zu bytes)",
                 payload.size());
      FUZZ_CHECK(meta == encoded_meta, "decoded meta != encoded meta");
      FUZZ_CHECK(out == run, "intact block not bit-exact");
      break;
    }
    case 1: {  // truncate anywhere: always reject
      const std::size_t cut = in.U32() % payload.size();
      FUZZ_CHECK(
          !bqs::blk::DecodeBlockPayload(payload.first(cut), &meta, &out),
          "block truncated to %zu of %zu bytes decoded", cut,
          payload.size());
      break;
    }
    default: {  // flip one payload byte: accept only self-consistent data
      const std::size_t flip_at = in.U32() % payload.size();
      const uint8_t mask = static_cast<uint8_t>(in.U8() % 255 + 1);
      std::string damaged(payload.begin(), payload.end());
      damaged[flip_at] =
          static_cast<char>(static_cast<uint8_t>(damaged[flip_at]) ^ mask);
      if (bqs::blk::DecodeBlockPayload(AsSpan(damaged), &meta, &out)) {
        // The framing CRC (checked by the block reader, a layer above)
        // is what rejects flips outright; the payload decoder's duty is
        // merely to never vouch for data that disagrees with its meta.
        FUZZ_CHECK(bqs::blk::ComputeBlockMeta(out) == meta,
                   "flip@%zu mask=%u decoded inconsistent block", flip_at,
                   mask);
      }
      break;
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  switch (in.U8() % 3) {
    case 0:
      FuzzArbitraryBytes(in, data, size);
      break;
    case 1:
      FuzzManifestRoundTrip(in);
      break;
    default:
      FuzzBlockRoundTrip(in);
      break;
  }
  return 0;
}
