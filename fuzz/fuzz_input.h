// Deterministic byte-stream reader shared by the fuzz harnesses.
//
// Every harness derives its entire behaviour — options, stream shape, op
// sequence — from the input bytes through this reader, so a crashing
// input is exactly reproducible from the corpus file alone. When the
// bytes run out every primitive returns its zero value, which keeps
// harness behaviour total (no input is rejected, short inputs just
// exercise the defaults).
#ifndef BQS_FUZZ_FUZZ_INPUT_H_
#define BQS_FUZZ_FUZZ_INPUT_H_

#include <cstddef>
#include <cstdint>

namespace bqs_fuzz {

class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  uint8_t U8() { return pos_ < size_ ? data_[pos_++] : 0; }

  // Split into statements: the two reads must be sequenced (the order of
  // operands of | is unspecified), or corpus files would replay
  // differently across compilers.
  uint16_t U16() {
    const uint16_t hi = U8();
    const uint16_t lo = U8();
    return static_cast<uint16_t>(hi << 8 | lo);
  }

  uint32_t U32() {
    const uint32_t hi = U16();
    const uint32_t lo = U16();
    return hi << 16 | lo;
  }

  bool Bool() { return (U8() & 1) != 0; }

  /// Inclusive integer range; lo when the range is degenerate.
  int IntIn(int lo, int hi) {
    if (hi <= lo) return lo;
    const uint32_t span = static_cast<uint32_t>(hi - lo) + 1;
    return lo + static_cast<int>(U32() % span);
  }

  /// Uniform-ish double in [lo, hi] from 16 bits — coarse on purpose:
  /// fuzzing wants coverage of regimes, not of mantissa bits, and the
  /// coarse grid makes corpus files human-writable.
  double Range(double lo, double hi) {
    const double unit = static_cast<double>(U16()) / 65535.0;
    return lo + (hi - lo) * unit;
  }

  /// Signed step in [-limit, limit] on a 1/256 grid.
  double Step(double limit) { return Range(-limit, limit); }

 private:
  const uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace bqs_fuzz

#endif  // BQS_FUZZ_FUZZ_INPUT_H_
