// Differential fuzzer for the FleetEngine ingest pipeline.
//
// Two byte-selected modes:
//
//  - differential (default): for any interleaving of device records, any
//    shard count, any batch chunking, and any mix of IngestBatch /
//    single-record Ingest / Flush / Stats calls, each device's emitted
//    key points must be identical to running that device's records alone
//    through CompressAll with an identically-configured compressor.
//    Lossless configuration only (kBlock, no budget/idle/faults) so the
//    oracle stays exact.
//
//  - overload: a kShed* policy plus byte-driven fault injection
//    (kRingFull / kArenaExhausted / kMidBatchEvict), optional memory
//    budget with an eps-coarsening ladder and optional idle timeout.
//    Output legitimately diverges from the sequential reference here, so
//    the oracle is the accounting contract instead: after FinishAll,
//    records_ingested + records_shed + records_dropped must equal the
//    records fed, records_shed must equal the sum of its per-reason
//    counters, and nothing may crash, hang or trip a sanitizer.
//    (kWorkerStall is deliberately not armed: it parks workers on
//    wall-clock gates, which a fuzzer loop must not wait on.)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "eval/algorithms.h"
#include "fuzz_input.h"
#include "common/fault_injector.h"
#include "service/fleet_engine.h"
#include "trajectory/compressor.h"
#include "trajectory/point.h"

namespace {

using bqs_fuzz::FuzzInput;

constexpr std::size_t kMaxRecords = 768;
constexpr int kMaxDevices = 6;

/// Collects per-device key points. Shard workers for distinct devices may
/// emit concurrently, so the map is mutex-protected; per-device order is
/// the engine's guarantee and is preserved by appending.
class CollectingSink final : public bqs::FleetSink {
 public:
  void OnKeyPoint(bqs::DeviceId device, const bqs::KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }

  std::map<bqs::DeviceId, std::vector<bqs::KeyPoint>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(keys_);
  }

 private:
  std::mutex mu_;
  std::map<bqs::DeviceId, std::vector<bqs::KeyPoint>> keys_;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);

  // Overload mode on ~1 input in 4: the exact differential oracle stays
  // the primary target, the accounting oracle rides along.
  const bool overload_mode = in.IntIn(0, 3) == 0;

  bqs::FleetEngineOptions options;
  options.algorithm.id =
      in.Bool() ? bqs::AlgorithmId::kFbqs : bqs::AlgorithmId::kBqs;
  options.algorithm.epsilon = in.Range(0.5, 32.0);
  options.algorithm.bqs.adaptive_resolver_threshold = in.IntIn(2, 64);
  options.num_shards = static_cast<std::size_t>(in.IntIn(0, 4));
  options.block_capacity = static_cast<std::size_t>(in.IntIn(16, 64));
  options.max_pending_blocks = static_cast<std::size_t>(in.IntIn(1, 8));
  options.max_pooled_compressors = static_cast<std::size_t>(in.IntIn(0, 4));
  // Differential mode: budget/idle eviction close sessions mid-stream,
  // which legitimately changes output vs one sequential pass; keep them
  // off so the oracle stays exact. Overload mode turns them on below.
  options.memory_budget_bytes = 0;
  options.idle_timeout_seconds = 0.0;

  bqs::FaultInjector injector(in.U32());
  if (overload_mode) {
    options.overload.policy = in.Bool()
                                  ? bqs::OverloadPolicy::kShedNewest
                                  : bqs::OverloadPolicy::kShedByDevice;
    // Zero budget = shed immediately on a full ring; no wall-clock waits
    // in the fuzz loop.
    options.overload.latency_budget_ms = 0.0;
    options.overload.shed_seed = in.U32();
    options.overload.device_rate_per_second = in.Range(0.0, 8.0);
    if (in.Bool()) {
      options.memory_budget_bytes =
          static_cast<std::size_t>(in.IntIn(1024, 16384));
      if (in.Bool()) options.overload.eps_ladder = {2.0, 4.0};
    }
    if (in.Bool()) options.idle_timeout_seconds = in.Range(0.5, 8.0);
    if (in.Bool()) {
      injector.Arm(bqs::FaultSite::kRingFull, in.Range(0.0, 1.0),
                   static_cast<uint64_t>(in.IntIn(0, 64)));
    }
    if (in.Bool()) {
      injector.Arm(bqs::FaultSite::kArenaExhausted, in.Range(0.0, 1.0),
                   static_cast<uint64_t>(in.IntIn(0, 64)));
    }
    if (in.Bool()) {
      injector.Arm(bqs::FaultSite::kMidBatchEvict, in.Range(0.0, 1.0),
                   static_cast<uint64_t>(in.IntIn(0, 16)));
    }
    options.fault_injector = &injector;
  }

  // Interleaved feed: per-device bounded random walks with per-device
  // monotonic time (the engine requires per-device stream order only).
  const int device_count = in.IntIn(1, kMaxDevices);
  std::vector<bqs::TrackPoint> walker(
      static_cast<std::size_t>(device_count));
  std::vector<bqs::FleetRecord> feed;
  const double step_limit = options.algorithm.epsilon * 4.0;
  while (!in.empty() && feed.size() < kMaxRecords) {
    const std::size_t device =
        static_cast<std::size_t>(in.IntIn(0, device_count - 1));
    bqs::TrackPoint& pt = walker[device];
    pt.pos.x += in.Step(step_limit);
    pt.pos.y += in.Step(step_limit);
    pt.t += in.Range(0.0, 2.0);
    feed.push_back(bqs::FleetRecord{static_cast<bqs::DeviceId>(device), pt});
  }

  CollectingSink sink;
  bqs::FleetStats stats;
  {
    bqs::FleetEngine engine(options, sink);
    std::size_t cursor = 0;
    while (cursor < feed.size()) {
      switch (in.IntIn(0, 7)) {
        case 0: {  // single-record path
          engine.Ingest(feed[cursor].device, feed[cursor].point);
          ++cursor;
          break;
        }
        case 1:
          engine.Flush();
          break;
        case 2:
          (void)engine.Stats();
          break;
        default: {  // batch of byte-chosen size
          const std::size_t batch = static_cast<std::size_t>(
              in.IntIn(1, static_cast<int>(options.block_capacity) * 2));
          const std::size_t end =
              cursor + batch < feed.size() ? cursor + batch : feed.size();
          engine.IngestBatch(std::span<const bqs::FleetRecord>(
              feed.data() + cursor, end - cursor));
          cursor = end;
          break;
        }
      }
    }
    engine.FinishAll();
    stats = engine.Stats();
  }
  const auto emitted = sink.take();

  if (overload_mode) {
    // Accounting oracle: every record fed is ingested, shed or dropped —
    // no silent loss, no double count — and the shed total decomposes
    // exactly into its per-reason counters.
    const uint64_t fed = static_cast<uint64_t>(feed.size());
    const uint64_t accounted =
        stats.records_ingested + stats.records_shed + stats.records_dropped;
    const uint64_t by_reason = stats.shed_ring_full + stats.shed_latency +
                               stats.shed_rate_limited + stats.shed_arena;
    if (accounted != fed || by_reason != stats.records_shed) {
      std::fprintf(stderr,
                   "fleet accounting mismatch: fed=%llu ingested=%llu "
                   "shed=%llu dropped=%llu by_reason=%llu\n",
                   static_cast<unsigned long long>(fed),
                   static_cast<unsigned long long>(stats.records_ingested),
                   static_cast<unsigned long long>(stats.records_shed),
                   static_cast<unsigned long long>(stats.records_dropped),
                   static_cast<unsigned long long>(by_reason));
      std::abort();
    }
    return 0;  // output legitimately diverges; no differential check
  }

  // Sequential reference: each device's records alone through CompressAll.
  for (int device = 0; device < device_count; ++device) {
    std::vector<bqs::TrackPoint> stream;
    for (const bqs::FleetRecord& record : feed) {
      if (record.device == static_cast<bqs::DeviceId>(device)) {
        stream.push_back(record.point);
      }
    }
    std::vector<bqs::KeyPoint> expected;
    if (!stream.empty()) {
      auto compressor = bqs::MakeStreamCompressor(options.algorithm);
      expected = bqs::CompressAll(*compressor, stream).keys;
    }
    const auto it = emitted.find(static_cast<bqs::DeviceId>(device));
    const std::vector<bqs::KeyPoint> empty;
    const std::vector<bqs::KeyPoint>& actual =
        it == emitted.end() ? empty : it->second;
    if (!(actual == expected)) {
      std::fprintf(stderr,
                   "fleet mismatch: device=%d shards=%zu records=%zu "
                   "stream=%zu actual_keys=%zu expected_keys=%zu\n",
                   device, options.num_shards, feed.size(), stream.size(),
                   actual.size(), expected.size());
      std::abort();
    }
  }
  return 0;
}
