// Differential fuzzer for the FleetEngine ingest pipeline.
//
// The engine's core invariant (stated in fleet_engine.h): for any
// interleaving of device records, any shard count, any batch chunking,
// and any mix of IngestBatch / single-record Ingest / Flush / Stats
// calls, each device's emitted key points are identical to running that
// device's records alone through CompressAll with an identically-
// configured compressor. The fuzzer builds an interleaved feed from the
// input bytes, ingests it through a byte-driven call mix, FinishAll()s,
// and checks per-device output against the sequential reference.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "eval/algorithms.h"
#include "fuzz_input.h"
#include "service/fleet_engine.h"
#include "trajectory/compressor.h"
#include "trajectory/point.h"

namespace {

using bqs_fuzz::FuzzInput;

constexpr std::size_t kMaxRecords = 768;
constexpr int kMaxDevices = 6;

/// Collects per-device key points. Shard workers for distinct devices may
/// emit concurrently, so the map is mutex-protected; per-device order is
/// the engine's guarantee and is preserved by appending.
class CollectingSink final : public bqs::FleetSink {
 public:
  void OnKeyPoint(bqs::DeviceId device, const bqs::KeyPoint& key) override {
    std::lock_guard<std::mutex> lock(mu_);
    keys_[device].push_back(key);
  }

  std::map<bqs::DeviceId, std::vector<bqs::KeyPoint>> take() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(keys_);
  }

 private:
  std::mutex mu_;
  std::map<bqs::DeviceId, std::vector<bqs::KeyPoint>> keys_;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);

  bqs::FleetEngineOptions options;
  options.algorithm.id =
      in.Bool() ? bqs::AlgorithmId::kFbqs : bqs::AlgorithmId::kBqs;
  options.algorithm.epsilon = in.Range(0.5, 32.0);
  options.algorithm.bqs.adaptive_resolver_threshold = in.IntIn(2, 64);
  options.num_shards = static_cast<std::size_t>(in.IntIn(0, 4));
  options.block_capacity = static_cast<std::size_t>(in.IntIn(16, 64));
  options.max_pending_blocks = static_cast<std::size_t>(in.IntIn(1, 8));
  options.max_pooled_compressors = static_cast<std::size_t>(in.IntIn(0, 4));
  // Budget/idle eviction close sessions mid-stream, which legitimately
  // changes output vs one sequential pass; keep them off so the
  // differential oracle stays exact.
  options.memory_budget_bytes = 0;
  options.idle_timeout_seconds = 0.0;

  // Interleaved feed: per-device bounded random walks with per-device
  // monotonic time (the engine requires per-device stream order only).
  const int device_count = in.IntIn(1, kMaxDevices);
  std::vector<bqs::TrackPoint> walker(
      static_cast<std::size_t>(device_count));
  std::vector<bqs::FleetRecord> feed;
  const double step_limit = options.algorithm.epsilon * 4.0;
  while (!in.empty() && feed.size() < kMaxRecords) {
    const std::size_t device =
        static_cast<std::size_t>(in.IntIn(0, device_count - 1));
    bqs::TrackPoint& pt = walker[device];
    pt.pos.x += in.Step(step_limit);
    pt.pos.y += in.Step(step_limit);
    pt.t += in.Range(0.0, 2.0);
    feed.push_back(bqs::FleetRecord{static_cast<bqs::DeviceId>(device), pt});
  }

  CollectingSink sink;
  {
    bqs::FleetEngine engine(options, sink);
    std::size_t cursor = 0;
    while (cursor < feed.size()) {
      switch (in.IntIn(0, 7)) {
        case 0: {  // single-record path
          engine.Ingest(feed[cursor].device, feed[cursor].point);
          ++cursor;
          break;
        }
        case 1:
          engine.Flush();
          break;
        case 2:
          (void)engine.Stats();
          break;
        default: {  // batch of byte-chosen size
          const std::size_t batch = static_cast<std::size_t>(
              in.IntIn(1, static_cast<int>(options.block_capacity) * 2));
          const std::size_t end =
              cursor + batch < feed.size() ? cursor + batch : feed.size();
          engine.IngestBatch(std::span<const bqs::FleetRecord>(
              feed.data() + cursor, end - cursor));
          cursor = end;
          break;
        }
      }
    }
    engine.FinishAll();
  }
  const auto emitted = sink.take();

  // Sequential reference: each device's records alone through CompressAll.
  for (int device = 0; device < device_count; ++device) {
    std::vector<bqs::TrackPoint> stream;
    for (const bqs::FleetRecord& record : feed) {
      if (record.device == static_cast<bqs::DeviceId>(device)) {
        stream.push_back(record.point);
      }
    }
    std::vector<bqs::KeyPoint> expected;
    if (!stream.empty()) {
      auto compressor = bqs::MakeStreamCompressor(options.algorithm);
      expected = bqs::CompressAll(*compressor, stream).keys;
    }
    const auto it = emitted.find(static_cast<bqs::DeviceId>(device));
    const std::vector<bqs::KeyPoint> empty;
    const std::vector<bqs::KeyPoint>& actual =
        it == emitted.end() ? empty : it->second;
    if (!(actual == expected)) {
      std::fprintf(stderr,
                   "fleet mismatch: device=%d shards=%zu records=%zu "
                   "stream=%zu actual_keys=%zu expected_keys=%zu\n",
                   device, options.num_shards, feed.size(), stream.size(),
                   actual.size(), expected.size());
      std::abort();
    }
  }
  return 0;
}
