// Protocol fuzzer for the service layer's lock-light building blocks:
// SpscRing (ingest queue) and BlockArena (pooled routing blocks).
//
// The input bytes drive an op sequence against both structures on one
// thread — legal, since SPSC only bounds each side to at most one thread
// — and every observable result is checked against a trivial reference
// model (a deque for the ring, handle bookkeeping for the arena). The
// point is memory-safety and protocol coverage under ASan/UBSan: slot
// reuse after wraparound, Stop() in every phase, recycle-ring traffic,
// and the arena's cleared-on-release poisoning.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <vector>

#include "fuzz_input.h"
#include "service/record_block.h"
#include "service/spsc_ring.h"
#include "trajectory/point.h"

namespace {

using bqs_fuzz::FuzzInput;

#define FUZZ_CHECK(cond, ...)                                       \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s\n  ", #cond);     \
      std::fprintf(stderr, __VA_ARGS__);                            \
      std::fprintf(stderr, "\n");                                   \
      std::abort();                                                 \
    }                                                               \
  } while (0)

constexpr int kMaxOps = 2048;

void FuzzRing(FuzzInput& in) {
  const std::size_t capacity = static_cast<std::size_t>(in.IntIn(1, 8));
  bqs::SpscRing<uint32_t> ring(capacity);
  // One thread plays both sides; assert both role capabilities once.
  bqs::AssumeRole(ring.producer_role);
  bqs::AssumeRole(ring.consumer_role);

  std::deque<uint32_t> model;
  bool stopped = false;
  uint32_t next_value = 0;

  FUZZ_CHECK(ring.capacity() == capacity, "capacity=%zu", capacity);

  for (int op = 0; op < kMaxOps && !in.empty(); ++op) {
    switch (in.IntIn(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // TryPush
        const uint32_t value = next_value;
        const bool pushed = ring.TryPush(value);
        const bool expect = !stopped && model.size() < capacity;
        FUZZ_CHECK(pushed == expect,
                   "TryPush op=%d pushed=%d expect=%d size=%zu stopped=%d",
                   op, pushed, expect, model.size(), stopped);
        if (pushed) {
          model.push_back(value);
          ++next_value;
        }
        break;
      }
      case 4:
      case 5:
      case 6:
      case 7: {  // TryPop
        uint32_t out = 0;
        const bool popped = ring.TryPop(out);
        FUZZ_CHECK(popped == !model.empty(),
                   "TryPop op=%d popped=%d model_size=%zu", op, popped,
                   model.size());
        if (popped) {
          FUZZ_CHECK(out == model.front(), "TryPop op=%d got=%u want=%u", op,
                     out, model.front());
          model.pop_front();
        }
        break;
      }
      case 8: {  // size/stopped are exact single-threaded
        FUZZ_CHECK(ring.size() == model.size(), "size op=%d got=%zu want=%zu",
                   op, ring.size(), model.size());
        FUZZ_CHECK(ring.stopped() == stopped, "stopped op=%d", op);
        break;
      }
      default: {  // Stop — items already queued must still drain
        ring.Stop();
        stopped = true;
        break;
      }
    }
  }

  // Drain: everything the model holds must still come out in order.
  uint32_t out = 0;
  while (!model.empty()) {
    FUZZ_CHECK(ring.TryPop(out), "drain: ring empty, model has %zu",
               model.size());
    FUZZ_CHECK(out == model.front(), "drain: got=%u want=%u", out,
               model.front());
    model.pop_front();
  }
  FUZZ_CHECK(!ring.TryPop(out), "ring should be empty after drain");
}

void FuzzArena(FuzzInput& in) {
  const std::size_t block_capacity = static_cast<std::size_t>(in.IntIn(1, 32));
  const std::size_t max_outstanding = static_cast<std::size_t>(in.IntIn(1, 6));
  bqs::BlockArena arena(block_capacity, max_outstanding);
  bqs::AssumeRole(arena.producer_role);
  bqs::AssumeRole(arena.consumer_role);

  std::vector<bqs::RecordBlock*> outstanding;
  uint64_t acquires = 0;

  for (int op = 0; op < kMaxOps && !in.empty(); ++op) {
    const bool want_acquire = in.Bool();
    if (want_acquire && outstanding.size() < max_outstanding) {
      bqs::RecordBlock* block = arena.Acquire();
      FUZZ_CHECK(block != nullptr, "Acquire returned null op=%d", op);
      // Cleared-on-release poisoning: every handed-out block is empty.
      FUZZ_CHECK(block->empty() && block->runs.empty(),
                 "Acquire op=%d returned non-empty block (%zu pts, %zu runs)",
                 op, block->points.size(), block->runs.size());
      ++acquires;
      // Fill with a few coalescable records; run directory must match.
      const int appends = in.IntIn(0, 8);
      bqs::DeviceId device = static_cast<bqs::DeviceId>(in.U8() % 3);
      for (int i = 0; i < appends; ++i) {
        if (in.Bool()) device = static_cast<bqs::DeviceId>(in.U8() % 3);
        bqs::TrackPoint pt;
        pt.pos = {in.Step(100.0), in.Step(100.0)};
        pt.t = static_cast<double>(op) + static_cast<double>(i) * 0.01;
        block->Append(device, pt);
      }
      std::size_t directory_total = 0;
      for (const bqs::DeviceRun& run : block->runs) directory_total += run.count;
      FUZZ_CHECK(directory_total == block->points.size(),
                 "run directory covers %zu of %zu points", directory_total,
                 block->points.size());
      outstanding.push_back(block);
    } else if (!outstanding.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          in.IntIn(0, static_cast<int>(outstanding.size()) - 1));
      bqs::RecordBlock* block = outstanding[pick];
      outstanding[pick] = outstanding.back();
      outstanding.pop_back();
      arena.Release(block);
      // Release clears immediately — a stale handle reads empty.
      FUZZ_CHECK(block->empty(), "Release left %zu points",
                 block->points.size());
    }
  }

  FUZZ_CHECK(arena.allocated() + arena.recycled() == acquires,
             "allocated=%llu recycled=%llu acquires=%llu",
             static_cast<unsigned long long>(arena.allocated()),
             static_cast<unsigned long long>(arena.recycled()),
             static_cast<unsigned long long>(acquires));
  FUZZ_CHECK(arena.allocated() <= max_outstanding + 1,
             "allocated=%llu exceeds steady-state bound %zu",
             static_cast<unsigned long long>(arena.allocated()),
             max_outstanding + 1);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);
  if (in.Bool()) {
    FuzzRing(in);
  } else {
    FuzzArena(in);
  }
  return 0;
}
