// Differential fuzzer for the per-point bound kernel: BoundKernel::kFast
// (the PR 4 transcendental-free kernel) must produce byte-identical key
// points to BoundKernel::kReference (the seed's atan2/hypot path) for
// every options combination and every input stream, and the vectorized
// batch screen must produce byte-identical output across SIMD tiers
// (scalar / SSE2 / AVX2) for the same stream. The kernel's guard-band
// fallback makes both invariants exact, not statistical, so any
// divergence is a bug — the harness aborts on the first mismatch.
//
// Input bytes drive: the options cube (epsilon, metric, rotation,
// bounds mode, trivial-include ablation, resolver choice and threshold,
// BQS vs FBQS) and one of three stream shapes aimed at the vector
// kernel's edge cases:
//   0  bounded random walk (the original mixed regime);
//   1  stationary sliver run — a parked device jittering inside a small
//      fraction of epsilon with rare escape jumps, the regime that lives
//      entirely on the fused trivial-screen path;
//   2  lane-boundary splits — straight includable runs broken by forced
//      splits at byte-chosen periods, so splits land on every lane
//      offset of the 2- and 4-wide groups and chunk tails of every
//      residue get exercised.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/simd.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "core/options.h"
#include "fuzz_input.h"
#include "trajectory/compressor.h"
#include "trajectory/point.h"

namespace {

using bqs_fuzz::FuzzInput;
namespace simd = bqs::simd;

constexpr std::size_t kMaxPoints = 512;

bqs::CompressedTrajectory RunOne(const bqs::BqsOptions& options,
                                 bool use_fbqs,
                                 const std::vector<bqs::TrackPoint>& points) {
  if (use_fbqs) {
    bqs::FbqsCompressor compressor(options);
    return bqs::CompressAll(compressor, points);
  }
  bqs::BqsCompressor compressor(options);
  return bqs::CompressAll(compressor, points);
}

void ReportMismatch(const bqs::BqsOptions& options, bool use_fbqs,
                    const std::vector<bqs::TrackPoint>& points,
                    const bqs::CompressedTrajectory& fast,
                    const bqs::CompressedTrajectory& reference) {
  std::fprintf(stderr,
               "kernel mismatch: algo=%s eps=%.6f metric=%d rot=%d warmup=%d "
               "trivial=%d bounds=%d resolver=%d threshold=%d points=%zu "
               "fast_keys=%zu ref_keys=%zu\n",
               use_fbqs ? "FBQS" : "BQS", options.epsilon,
               static_cast<int>(options.metric),
               options.data_centric_rotation ? 1 : 0, options.rotation_warmup,
               options.paper_trivial_include ? 1 : 0,
               static_cast<int>(options.bounds_mode),
               static_cast<int>(options.exact_resolver),
               options.adaptive_resolver_threshold, points.size(),
               fast.keys.size(), reference.keys.size());
  const std::size_t n = fast.keys.size() < reference.keys.size()
                            ? fast.keys.size()
                            : reference.keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(fast.keys[i] == reference.keys[i])) {
      std::fprintf(stderr,
                   "  first divergence at key %zu: fast idx=%llu "
                   "(%.9f, %.9f) vs ref idx=%llu (%.9f, %.9f)\n",
                   i,
                   static_cast<unsigned long long>(fast.keys[i].index),
                   fast.keys[i].point.pos.x, fast.keys[i].point.pos.y,
                   static_cast<unsigned long long>(reference.keys[i].index),
                   reference.keys[i].point.pos.x,
                   reference.keys[i].point.pos.y);
      break;
    }
  }
  std::abort();
}

void ReportTierMismatch(simd::Tier tier, const bqs::BqsOptions& options,
                        bool use_fbqs,
                        const std::vector<bqs::TrackPoint>& points,
                        const bqs::CompressedTrajectory& native,
                        const bqs::CompressedTrajectory& forced) {
  std::fprintf(stderr,
               "tier mismatch vs %s: algo=%s eps=%.6f metric=%d rot=%d "
               "trivial=%d points=%zu native_keys=%zu forced_keys=%zu\n",
               simd::TierName(tier), use_fbqs ? "FBQS" : "BQS",
               options.epsilon, static_cast<int>(options.metric),
               options.data_centric_rotation ? 1 : 0,
               options.paper_trivial_include ? 1 : 0, points.size(),
               native.keys.size(), forced.keys.size());
  std::abort();
}

// Stationary sliver run: jitter inside jitter_frac * epsilon of an
// anchor, escaping by several epsilon every escape_every points. The
// trivial screen carries the whole run; escapes retire the segment and
// restart it with a fresh (empty-warm-up) origin.
std::vector<bqs::TrackPoint> StationaryStream(FuzzInput& in, double epsilon) {
  std::vector<bqs::TrackPoint> points;
  const double jitter = epsilon * in.Range(0.01, 0.45);
  const int escape_every = in.IntIn(9, 97);
  bqs::TrackPoint current;
  double anchor_x = 0.0;
  double anchor_y = 0.0;
  while (!in.empty() && points.size() < kMaxPoints) {
    if (static_cast<int>(points.size() + 1) % escape_every == 0) {
      anchor_x += epsilon * in.Range(2.0, 6.0);
      anchor_y += epsilon * in.Step(6.0);
    }
    current.pos.x = anchor_x + in.Step(jitter);
    current.pos.y = anchor_y + in.Step(jitter);
    current.t += in.Range(0.0, 2.0);
    points.push_back(current);
  }
  return points;
}

// Lane-boundary splits: straight includable steps, with a jump of
// 3 * epsilon perpendicular to the run every run_len points. Odd
// run_len values walk the split across every lane offset mod 2 and
// mod 4, and whatever length the byte budget yields leaves unaligned
// chunk tails behind each restart.
std::vector<bqs::TrackPoint> LaneBoundaryStream(FuzzInput& in,
                                                double epsilon) {
  std::vector<bqs::TrackPoint> points;
  const int run_len = in.IntIn(1, 19);
  const double step = epsilon * in.Range(0.05, 0.45);
  bqs::TrackPoint current;
  while (!in.empty() && points.size() < kMaxPoints) {
    if (static_cast<int>(points.size() + 1) % run_len == 0) {
      current.pos.y += 3.0 * epsilon;
    }
    current.pos.x += step;
    current.t += in.Range(0.0, 2.0);
    points.push_back(current);
  }
  return points;
}

std::vector<bqs::TrackPoint> RandomWalkStream(FuzzInput& in, double epsilon) {
  std::vector<bqs::TrackPoint> points;
  bqs::TrackPoint current;
  const double step_limit = epsilon * 4.0;
  while (!in.empty() && points.size() < kMaxPoints) {
    current.pos.x += in.Step(step_limit);
    current.pos.y += in.Step(step_limit);
    current.t += in.Range(0.0, 2.0);
    current.velocity = {in.Step(16.0), in.Step(16.0)};
    points.push_back(current);
  }
  return points;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);

  bqs::BqsOptions options;
  options.epsilon = in.Range(0.25, 64.0);
  options.metric = in.Bool() ? bqs::DistanceMetric::kPointToSegment
                             : bqs::DistanceMetric::kPointToLine;
  options.data_centric_rotation = in.Bool();
  options.rotation_warmup = in.IntIn(1, bqs::BqsOptions::kMaxRotationWarmup);
  options.paper_trivial_include = in.Bool();
  options.bounds_mode =
      in.Bool() ? bqs::BoundsMode::kPaperEq8 : bqs::BoundsMode::kSound;
  switch (in.IntIn(0, 2)) {
    case 0: options.exact_resolver = bqs::ExactResolver::kAdaptive; break;
    case 1: options.exact_resolver = bqs::ExactResolver::kHull; break;
    default: options.exact_resolver = bqs::ExactResolver::kBruteForce; break;
  }
  // Low thresholds on purpose: force the adaptive resolver across its
  // brute-force -> hull migration inside short fuzz streams.
  options.adaptive_resolver_threshold = in.IntIn(2, 64);
  const bool use_fbqs = in.Bool();

  std::vector<bqs::TrackPoint> points;
  switch (in.IntIn(0, 2)) {
    case 1:
      points = StationaryStream(in, options.epsilon);
      break;
    case 2:
      points = LaneBoundaryStream(in, options.epsilon);
      break;
    default:
      // Bounded random walk: steps up to ~4x epsilon so streams mix
      // trivially-included, prunable, and splitting points.
      points = RandomWalkStream(in, options.epsilon);
      break;
  }

  bqs::BqsOptions fast_options = options;
  fast_options.bound_kernel = bqs::BoundKernel::kFast;
  bqs::BqsOptions reference_options = options;
  reference_options.bound_kernel = bqs::BoundKernel::kReference;

  const bqs::CompressedTrajectory fast =
      RunOne(fast_options, use_fbqs, points);
  const bqs::CompressedTrajectory reference =
      RunOne(reference_options, use_fbqs, points);

  if (!(fast.keys == reference.keys)) {
    ReportMismatch(options, use_fbqs, points, fast, reference);
  }

  // Cross-tier sweep: the fast kernel's output must not depend on which
  // SIMD tier ran the batch screen. Each forced tier is clamped to what
  // the CPU supports, so on non-AVX2 hosts some of these degenerate to
  // re-running the same tier — harmless. (A forced tier outranks the
  // BQS_FORCE_SCALAR env knob, so under the CI forced-scalar job the
  // native run above is scalar while this sweep still drives the
  // hardware tiers — the differential holds in both directions.)
  for (const simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kSse2, simd::Tier::kAvx2}) {
    const simd::ScopedForceTier guard(tier);
    const bqs::CompressedTrajectory forced =
        RunOne(fast_options, use_fbqs, points);
    if (!(forced.keys == fast.keys)) {
      ReportTierMismatch(tier, options, use_fbqs, points, fast, forced);
    }
  }
  return 0;
}
