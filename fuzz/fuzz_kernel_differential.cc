// Differential fuzzer for the per-point bound kernel: BoundKernel::kFast
// (the PR 4 transcendental-free kernel) must produce byte-identical key
// points to BoundKernel::kReference (the seed's atan2/hypot path) for
// every options combination and every input stream. The kernel's guard-
// band fallback makes this an invariant, not a statistical property, so
// any divergence is a bug — the harness aborts on the first mismatch.
//
// Input bytes drive: the options cube (epsilon, metric, rotation,
// bounds mode, trivial-include ablation, resolver choice and threshold,
// BQS vs FBQS) and a bounded random-walk stream (steps and time deltas).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "core/options.h"
#include "fuzz_input.h"
#include "trajectory/compressor.h"
#include "trajectory/point.h"

namespace {

using bqs_fuzz::FuzzInput;

constexpr std::size_t kMaxPoints = 512;

bqs::CompressedTrajectory RunOne(const bqs::BqsOptions& options,
                                 bool use_fbqs,
                                 const std::vector<bqs::TrackPoint>& points) {
  if (use_fbqs) {
    bqs::FbqsCompressor compressor(options);
    return bqs::CompressAll(compressor, points);
  }
  bqs::BqsCompressor compressor(options);
  return bqs::CompressAll(compressor, points);
}

void ReportMismatch(const bqs::BqsOptions& options, bool use_fbqs,
                    const std::vector<bqs::TrackPoint>& points,
                    const bqs::CompressedTrajectory& fast,
                    const bqs::CompressedTrajectory& reference) {
  std::fprintf(stderr,
               "kernel mismatch: algo=%s eps=%.6f metric=%d rot=%d warmup=%d "
               "trivial=%d bounds=%d resolver=%d threshold=%d points=%zu "
               "fast_keys=%zu ref_keys=%zu\n",
               use_fbqs ? "FBQS" : "BQS", options.epsilon,
               static_cast<int>(options.metric),
               options.data_centric_rotation ? 1 : 0, options.rotation_warmup,
               options.paper_trivial_include ? 1 : 0,
               static_cast<int>(options.bounds_mode),
               static_cast<int>(options.exact_resolver),
               options.adaptive_resolver_threshold, points.size(),
               fast.keys.size(), reference.keys.size());
  const std::size_t n = fast.keys.size() < reference.keys.size()
                            ? fast.keys.size()
                            : reference.keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!(fast.keys[i] == reference.keys[i])) {
      std::fprintf(stderr,
                   "  first divergence at key %zu: fast idx=%llu "
                   "(%.9f, %.9f) vs ref idx=%llu (%.9f, %.9f)\n",
                   i,
                   static_cast<unsigned long long>(fast.keys[i].index),
                   fast.keys[i].point.pos.x, fast.keys[i].point.pos.y,
                   static_cast<unsigned long long>(reference.keys[i].index),
                   reference.keys[i].point.pos.x,
                   reference.keys[i].point.pos.y);
      break;
    }
  }
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size) {
  FuzzInput in(data, size);

  bqs::BqsOptions options;
  options.epsilon = in.Range(0.25, 64.0);
  options.metric = in.Bool() ? bqs::DistanceMetric::kPointToSegment
                             : bqs::DistanceMetric::kPointToLine;
  options.data_centric_rotation = in.Bool();
  options.rotation_warmup = in.IntIn(1, bqs::BqsOptions::kMaxRotationWarmup);
  options.paper_trivial_include = in.Bool();
  options.bounds_mode =
      in.Bool() ? bqs::BoundsMode::kPaperEq8 : bqs::BoundsMode::kSound;
  switch (in.IntIn(0, 2)) {
    case 0: options.exact_resolver = bqs::ExactResolver::kAdaptive; break;
    case 1: options.exact_resolver = bqs::ExactResolver::kHull; break;
    default: options.exact_resolver = bqs::ExactResolver::kBruteForce; break;
  }
  // Low thresholds on purpose: force the adaptive resolver across its
  // brute-force -> hull migration inside short fuzz streams.
  options.adaptive_resolver_threshold = in.IntIn(2, 64);
  const bool use_fbqs = in.Bool();

  // Bounded random walk: steps up to ~4x epsilon so streams mix trivially-
  // included, prunable, and splitting points; occasional repeated or
  // backward-in-time stamps probe the compressor's robustness too.
  std::vector<bqs::TrackPoint> points;
  bqs::TrackPoint current;
  current.t = 0.0;
  const double step_limit = options.epsilon * 4.0;
  while (!in.empty() && points.size() < kMaxPoints) {
    current.pos.x += in.Step(step_limit);
    current.pos.y += in.Step(step_limit);
    current.t += in.Range(0.0, 2.0);
    current.velocity = {in.Step(16.0), in.Step(16.0)};
    points.push_back(current);
  }

  bqs::BqsOptions fast_options = options;
  fast_options.bound_kernel = bqs::BoundKernel::kFast;
  bqs::BqsOptions reference_options = options;
  reference_options.bound_kernel = bqs::BoundKernel::kReference;

  const bqs::CompressedTrajectory fast =
      RunOne(fast_options, use_fbqs, points);
  const bqs::CompressedTrajectory reference =
      RunOne(reference_options, use_fbqs, points);

  if (!(fast.keys == reference.keys)) {
    ReportMismatch(options, use_fbqs, points, fast, reference);
  }
  return 0;
}
