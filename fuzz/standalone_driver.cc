// Standalone replacement for libFuzzer's driver, used when the toolchain
// has no -fsanitize=fuzzer (gcc). Replays corpus files and then feeds the
// harness a bounded stream of seeded pseudo-random inputs, so the same
// harness binaries run as ctest smoke suites on any compiler.
//
// CLI (libFuzzer-compatible subset): positional arguments are corpus
// files or directories; -runs=N adds N random inputs; -seed=S seeds
// them; -max_len=L bounds random input length. Unknown -flags are
// ignored so libFuzzer invocations keep working unchanged.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> ReadFile(const fs::path& path) {
  std::vector<uint8_t> bytes;
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "standalone_driver: cannot open %s\n",
                 path.string().c_str());
    std::exit(2);
  }
  uint8_t buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  std::fclose(f);
  return bytes;
}

/// splitmix64: tiny, seedable, good enough to diversify smoke inputs.
uint64_t NextRandom(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t runs = 0;
  uint64_t seed = 1;
  std::size_t max_len = 512;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("-max_len=", 0) == 0) {
      max_len = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore other libFuzzer flags so shared invocations keep working.
    } else {
      inputs.push_back(fs::path(arg));
    }
  }

  std::size_t replayed = 0;
  for (const fs::path& input : inputs) {
    std::error_code ec;
    if (fs::is_directory(input, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      // Sort for run-to-run determinism; directory order is arbitrary.
      std::sort(files.begin(), files.end());
      for (const fs::path& file : files) {
        const std::vector<uint8_t> bytes = ReadFile(file);
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
        ++replayed;
      }
    } else if (fs::is_regular_file(input, ec)) {
      const std::vector<uint8_t> bytes = ReadFile(input);
      LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++replayed;
    } else {
      std::fprintf(stderr, "standalone_driver: no such input: %s\n",
                   input.string().c_str());
      return 2;
    }
  }

  uint64_t state = seed;
  std::vector<uint8_t> random_input;
  for (uint64_t run = 0; run < runs; ++run) {
    const std::size_t length =
        max_len == 0 ? 0 : static_cast<std::size_t>(NextRandom(state) %
                                                    (max_len + 1));
    random_input.resize(length);
    for (std::size_t i = 0; i < length; i += 8) {
      const uint64_t word = NextRandom(state);
      for (std::size_t b = 0; b < 8 && i + b < length; ++b) {
        random_input[i + b] = static_cast<uint8_t>(word >> (8 * b));
      }
    }
    LLVMFuzzerTestOneInput(random_input.data(), random_input.size());
  }

  std::printf("standalone_driver: %zu corpus inputs + %llu random runs OK\n",
              replayed, static_cast<unsigned long long>(runs));
  return 0;
}
