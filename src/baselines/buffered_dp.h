// Buffered Douglas-Peucker (paper Section III-B-1): Douglas-Peucker applied
// over a fixed-size sliding buffer so it can run online on a constrained
// device. Both buffer endpoints are kept at every flush, which is exactly
// the compression-rate weakness the paper analyses (floor(N/M)+1 points on
// a straight line where 2 would do).
#ifndef BQS_BASELINES_BUFFERED_DP_H_
#define BQS_BASELINES_BUFFERED_DP_H_

#include <cstddef>
#include <vector>

#include "baselines/douglas_peucker.h"
#include "geometry/line2.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Options for Buffered Douglas-Peucker.
struct BufferedDpOptions {
  double epsilon = 10.0;
  DistanceMetric metric = DistanceMetric::kPointToLine;
  /// Points accumulated before each DP pass (paper default: 32, matching
  /// the 32-point footprint of FBQS's significant points).
  std::size_t buffer_size = 32;
};

/// Online wrapper around Douglas-Peucker over a bounded buffer.
/// Worst case O(n * M) time (O(M^2) per flush, n/M flushes), O(M) space.
class BufferedDp final : public StreamCompressor {
 public:
  explicit BufferedDp(const BufferedDpOptions& options = {});

  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) override;
  void Finish(std::vector<KeyPoint>* out) override;
  void Reset() override;
  std::string_view name() const override { return "BDP"; }
  double ErrorBound() const override { return options_.epsilon; }

  const BufferedDpOptions& options() const { return options_; }
  std::size_t StateBytes() const override {
    return buffer_.capacity() * sizeof(TrackPoint) +
           indices_.capacity() * sizeof(uint64_t);
  }

 private:
  void Flush(std::vector<KeyPoint>* out);

  BufferedDpOptions options_;
  std::vector<TrackPoint> buffer_;
  std::vector<uint64_t> indices_;
  uint64_t next_index_ = 0;
  bool emitted_first_ = false;
};

}  // namespace bqs

#endif  // BQS_BASELINES_BUFFERED_DP_H_
