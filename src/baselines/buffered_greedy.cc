#include "baselines/buffered_greedy.h"

#include <cassert>

#include "trajectory/deviation.h"

namespace bqs {

BufferedGreedy::BufferedGreedy(const BufferedGreedyOptions& options)
    : options_(options) {
  if (options_.buffer_size > 0) buffer_.reserve(options_.buffer_size);
}

void BufferedGreedy::Reset() {
  have_first_ = false;
  next_index_ = 0;
  segment_start_ = TrackPoint{};
  prev_ = TrackPoint{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  buffer_.clear();
  deviation_scans_ = 0;
}

void BufferedGreedy::Push(const TrackPoint& pt, std::vector<KeyPoint>* out) {
  const uint64_t index = next_index_++;
  if (!have_first_) {
    have_first_ = true;
    out->push_back(KeyPoint{pt, index});
    last_emitted_index_ = index;
    StartSegment(pt, index);
    return;
  }
  ProcessPoint(pt, index, out, 0);
}

void BufferedGreedy::Finish(std::vector<KeyPoint>* out) {
  if (have_first_ && prev_index_ != last_emitted_index_) {
    out->push_back(KeyPoint{prev_, prev_index_});
    last_emitted_index_ = prev_index_;
  }
}

void BufferedGreedy::ProcessPoint(const TrackPoint& pt, uint64_t index,
                                  std::vector<KeyPoint>* out, int depth) {
  assert(depth <= 1);
  // Full scan of the buffered interior points against line (start, pt).
  ++deviation_scans_;
  const double dev = BufferDeviation(buffer_, segment_start_.pos, pt.pos,
                                     options_.metric);
  if (dev > options_.epsilon) {
    // The previous point closes the segment (keeping pt in this segment
    // would break the tolerance); pt re-enters the fresh segment.
    out->push_back(KeyPoint{prev_, prev_index_});
    last_emitted_index_ = prev_index_;
    StartSegment(prev_, prev_index_);
    ProcessPoint(pt, index, out, depth + 1);
    return;
  }

  buffer_.push_back(pt);
  prev_ = pt;
  prev_index_ = index;

  // Bounded window: a full buffer forces a key point at the newest point,
  // the extra-points weakness the paper attributes to window methods.
  if (options_.buffer_size > 0 && buffer_.size() >= options_.buffer_size) {
    out->push_back(KeyPoint{pt, index});
    last_emitted_index_ = index;
    StartSegment(pt, index);
  }
}

void BufferedGreedy::StartSegment(const TrackPoint& pt, uint64_t index) {
  segment_start_ = pt;
  prev_ = pt;
  prev_index_ = index;
  buffer_.clear();
}

}  // namespace bqs
