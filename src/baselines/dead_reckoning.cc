#include "baselines/dead_reckoning.h"

namespace bqs {

void DeadReckoning::Reset() {
  have_report_ = false;
  last_report_ = TrackPoint{};
  prev_ = TrackPoint{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  next_index_ = 0;
}

void DeadReckoning::Push(const TrackPoint& pt, std::vector<KeyPoint>* out) {
  const uint64_t index = next_index_++;
  if (!have_report_) {
    have_report_ = true;
    last_report_ = pt;
    out->push_back(KeyPoint{pt, index});
    last_emitted_index_ = index;
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  const double dt = pt.t - last_report_.t;
  const Vec2 predicted = last_report_.pos + dt * last_report_.velocity;
  if (Distance(predicted, pt.pos) > options_.epsilon) {
    // Prediction broke tolerance: report the actual fix (with its current
    // velocity) and predict from here on.
    last_report_ = pt;
    out->push_back(KeyPoint{pt, index});
    last_emitted_index_ = index;
  }
  prev_ = pt;
  prev_index_ = index;
}

void DeadReckoning::Finish(std::vector<KeyPoint>* out) {
  if (next_index_ > 0 && prev_index_ != last_emitted_index_) {
    out->push_back(KeyPoint{prev_, prev_index_});
    last_emitted_index_ = prev_index_;
  }
}

}  // namespace bqs
