#include "baselines/buffered_dp.h"

namespace bqs {

BufferedDp::BufferedDp(const BufferedDpOptions& options) : options_(options) {
  buffer_.reserve(options_.buffer_size);
  indices_.reserve(options_.buffer_size);
}

void BufferedDp::Reset() {
  buffer_.clear();
  indices_.clear();
  next_index_ = 0;
  emitted_first_ = false;
}

void BufferedDp::Push(const TrackPoint& pt, std::vector<KeyPoint>* out) {
  const uint64_t index = next_index_++;
  if (!emitted_first_) {
    emitted_first_ = true;
    out->push_back(KeyPoint{pt, index});
  }
  buffer_.push_back(pt);
  indices_.push_back(index);
  if (buffer_.size() >= options_.buffer_size) {
    Flush(out);
  }
}

void BufferedDp::Finish(std::vector<KeyPoint>* out) {
  if (buffer_.size() > 1) {
    Flush(out);
  }
}

void BufferedDp::Flush(std::vector<KeyPoint>* out) {
  // DP keeps both buffer endpoints. The first buffered point was already
  // emitted (either as the stream head or as the carry-over of the
  // previous flush), so emit from the second kept point on.
  const auto kept =
      DouglasPeuckerIndices(buffer_, options_.epsilon, options_.metric);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    out->push_back(KeyPoint{buffer_[kept[i]], indices_[kept[i]]});
  }
  // The buffer's last point carries over as the start of the next window.
  const TrackPoint carry = buffer_.back();
  const uint64_t carry_index = indices_.back();
  buffer_.clear();
  indices_.clear();
  buffer_.push_back(carry);
  indices_.push_back(carry_index);
}

}  // namespace bqs
