// SQUISH-E (Muckell et al., GeoInformatica 2013; paper Section II): a
// priority-queue simplifier over the Synchronized Euclidean Distance (SED).
// Removing a buffered point costs an SED error; the accumulated error a
// removal implies is tracked so that:
//   * SQUISH-E(lambda) caps the buffer at n/lambda points (compression-
//     ratio bound, can run online), and
//   * SQUISH-E(epsilon) keeps removing the cheapest point while the implied
//     SED error stays within epsilon (error bound, offline).
// Implemented here as the related-work baseline for the extension benches;
// the paper's own evaluation compares BQS against DP/BDP/BGD/DR.
#ifndef BQS_BASELINES_SQUISH_E_H_
#define BQS_BASELINES_SQUISH_E_H_

#include <cstddef>
#include <span>
#include <vector>

#include "trajectory/compressor.h"

namespace bqs {

/// Options for SQUISH-E. Enable at least one of the two modes.
struct SquishEOptions {
  /// Target compression ratio N_original / N_compressed; <= 1 disables the
  /// capacity cap. (The paper's lambda.)
  double lambda = 0.0;
  /// SED error budget; <= 0 disables error-driven removal.
  double epsilon = 0.0;
  /// Floor for the buffer capacity in lambda mode.
  std::size_t min_capacity = 4;
};

/// Synchronized Euclidean Distance of p against the segment (a, b):
/// distance between p and the position linearly interpolated at p.t.
double SynchronizedEuclideanDistance(const TrackPoint& p, const TrackPoint& a,
                                     const TrackPoint& b);

/// SQUISH-E simplifier. Compress() performs the lambda-capped streaming
/// pass over the input and then the epsilon-driven reduction.
class SquishE final : public OfflineCompressor {
 public:
  explicit SquishE(const SquishEOptions& options) : options_(options) {}

  CompressedTrajectory Compress(std::span<const TrackPoint> points) override;
  std::string_view name() const override { return "SQUISH-E"; }

  const SquishEOptions& options() const { return options_; }

 private:
  SquishEOptions options_;
};

}  // namespace bqs

#endif  // BQS_BASELINES_SQUISH_E_H_
