// Douglas-Peucker line simplification (offline baseline, paper Section
// III-B / VI). Iterative implementation (explicit stack) so adversarial
// inputs cannot overflow the call stack.
#ifndef BQS_BASELINES_DOUGLAS_PEUCKER_H_
#define BQS_BASELINES_DOUGLAS_PEUCKER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/line2.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Options for Douglas-Peucker.
struct DpOptions {
  /// Error tolerance in metres.
  double epsilon = 10.0;
  /// Deviation metric (the paper's evaluation uses point-to-line).
  DistanceMetric metric = DistanceMetric::kPointToLine;
};

/// Indices of the retained points of `points` (always includes 0 and n-1
/// for n >= 2). Worst case O(n^2) time, O(n) space.
std::vector<std::size_t> DouglasPeuckerIndices(
    std::span<const TrackPoint> points, double epsilon,
    DistanceMetric metric);

/// Offline Douglas-Peucker compressor.
class DouglasPeucker final : public OfflineCompressor {
 public:
  explicit DouglasPeucker(const DpOptions& options = {})
      : options_(options) {}

  CompressedTrajectory Compress(std::span<const TrackPoint> points) override;
  std::string_view name() const override { return "DP"; }

  const DpOptions& options() const { return options_; }

 private:
  DpOptions options_;
};

}  // namespace bqs

#endif  // BQS_BASELINES_DOUGLAS_PEUCKER_H_
