#include "baselines/squish_e.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace bqs {

double SynchronizedEuclideanDistance(const TrackPoint& p, const TrackPoint& a,
                                     const TrackPoint& b) {
  const double dt = b.t - a.t;
  double u = 0.0;
  if (dt > 0.0) u = (p.t - a.t) / dt;
  u = std::clamp(u, 0.0, 1.0);
  const Vec2 synced = a.pos + u * (b.pos - a.pos);
  return Distance(p.pos, synced);
}

namespace {

// Doubly-linked buffer over indices into the original stream, with a
// priority set ordered by (priority, index) for O(log n) min-removal and
// re-prioritization.
class SquishQueue {
 public:
  explicit SquishQueue(std::span<const TrackPoint> points)
      : points_(points),
        prev_(points.size(), kNone),
        next_(points.size(), kNone),
        pi_(points.size(), 0.0),
        priority_(points.size(), kInf),
        alive_(points.size(), false) {}

  void Append(std::size_t idx) {
    alive_[idx] = true;
    prev_[idx] = tail_;
    next_[idx] = kNone;
    if (tail_ != kNone) next_[tail_] = idx;
    tail_ = idx;
    if (head_ == kNone) head_ = idx;
    ++size_;
    // A fresh tail is an endpoint: infinite priority until the next point
    // arrives. Its predecessor (previous tail) becomes interior.
    Reprioritize(idx);
    if (prev_[idx] != kNone) Reprioritize(prev_[idx]);
  }

  /// Minimum priority among removable (interior) points; kInf when none.
  double MinPriority() const {
    return set_.empty() ? kInf : set_.begin()->first;
  }

  /// Removes the min-priority interior point, propagating its implied
  /// error to the neighbours (the SQUISH-E pi update).
  void RemoveMin() {
    const std::size_t idx = set_.begin()->second;
    const double p = set_.begin()->first;
    const std::size_t l = prev_[idx];
    const std::size_t r = next_[idx];
    Erase(idx);
    alive_[idx] = false;
    next_[l] = r;
    prev_[r] = l;
    --size_;
    pi_[l] = std::max(pi_[l], p);
    pi_[r] = std::max(pi_[r], p);
    Reprioritize(l);
    Reprioritize(r);
  }

  std::size_t size() const { return size_; }

  std::vector<std::size_t> AliveIndices() const {
    std::vector<std::size_t> out;
    out.reserve(size_);
    for (std::size_t i = head_; i != kNone; i = next_[i]) out.push_back(i);
    return out;
  }

 private:
  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();
  static constexpr double kInf = std::numeric_limits<double>::infinity();

  void Reprioritize(std::size_t idx) {
    Erase(idx);
    const std::size_t l = prev_[idx];
    const std::size_t r = next_[idx];
    if (l == kNone || r == kNone) {
      priority_[idx] = kInf;  // endpoints are never removed
      return;
    }
    priority_[idx] =
        pi_[idx] + SynchronizedEuclideanDistance(points_[idx], points_[l],
                                                 points_[r]);
    set_.emplace(priority_[idx], idx);
  }

  void Erase(std::size_t idx) {
    if (priority_[idx] != kInf) {
      set_.erase({priority_[idx], idx});
      priority_[idx] = kInf;
    }
  }

  std::span<const TrackPoint> points_;
  std::vector<std::size_t> prev_;
  std::vector<std::size_t> next_;
  std::vector<double> pi_;        ///< Accumulated implied error.
  std::vector<double> priority_;  ///< Current priority; kInf if not queued.
  std::vector<bool> alive_;
  std::set<std::pair<double, std::size_t>> set_;
  std::size_t head_ = kNone;
  std::size_t tail_ = kNone;
  std::size_t size_ = 0;
};

}  // namespace

CompressedTrajectory SquishE::Compress(std::span<const TrackPoint> points) {
  CompressedTrajectory out;
  const std::size_t n = points.size();
  if (n == 0) return out;

  SquishQueue queue(points);
  for (std::size_t i = 0; i < n; ++i) {
    queue.Append(i);
    if (options_.lambda > 1.0) {
      const auto capacity = static_cast<std::size_t>(std::max(
          static_cast<double>(options_.min_capacity),
          std::ceil(static_cast<double>(i + 1) / options_.lambda)));
      while (queue.size() > capacity && queue.MinPriority() <
             std::numeric_limits<double>::infinity()) {
        queue.RemoveMin();
      }
    }
  }
  if (options_.epsilon > 0.0) {
    while (queue.size() > 2 && queue.MinPriority() <= options_.epsilon) {
      queue.RemoveMin();
    }
  }

  for (std::size_t idx : queue.AliveIndices()) {
    out.keys.push_back(KeyPoint{points[idx], idx});
  }
  return out;
}

}  // namespace bqs
