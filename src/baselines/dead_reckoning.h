// Dead Reckoning data reduction (Trajcevski et al., MobiDE'06; paper
// Section VI-C-3): a point is reported only when the position predicted by
// linear extrapolation from the last report (position + velocity) drifts
// more than epsilon from the actual fix. O(1) time and space per point,
// like FBQS, but with markedly worse compression (Fig. 8(b)).
//
// DR needs instantaneous speed/heading at each report, which the paper
// notes requires continuous high-frequency sampling — hence its evaluation
// on the synthetic dataset, whose generator provides exact velocities.
#ifndef BQS_BASELINES_DEAD_RECKONING_H_
#define BQS_BASELINES_DEAD_RECKONING_H_

#include <vector>

#include "trajectory/compressor.h"

namespace bqs {

/// Options for Dead Reckoning.
struct DeadReckoningOptions {
  /// Max allowed distance between the predicted and actual position.
  double epsilon = 10.0;
};

/// Online dead-reckoning reducer. The retained points (with their
/// velocities) reconstruct the trajectory with at most epsilon error at
/// every original sample time.
class DeadReckoning final : public StreamCompressor {
 public:
  explicit DeadReckoning(const DeadReckoningOptions& options = {})
      : options_(options) {}

  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) override;
  void Finish(std::vector<KeyPoint>* out) override;
  void Reset() override;
  std::string_view name() const override { return "DR"; }
  double ErrorBound() const override { return options_.epsilon; }

  const DeadReckoningOptions& options() const { return options_; }

 private:
  DeadReckoningOptions options_;
  bool have_report_ = false;
  TrackPoint last_report_{};
  TrackPoint prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;
  uint64_t next_index_ = 0;
};

}  // namespace bqs

#endif  // BQS_BASELINES_DEAD_RECKONING_H_
