// Buffered Greedy Deviation (paper Section III-B-2): the generic
// sliding-window algorithm. Every incoming point triggers a full deviation
// scan of the buffered segment against the line from the segment start to
// the incoming point — O(n * M) time overall — and the buffer cap forces
// extra key points exactly as the paper describes.
//
// With buffer_size = 0 (unbounded) this is the exact online greedy
// reference: it makes the same include/split decisions as BQS, which the
// differential tests exploit.
#ifndef BQS_BASELINES_BUFFERED_GREEDY_H_
#define BQS_BASELINES_BUFFERED_GREEDY_H_

#include <cstddef>
#include <vector>

#include "geometry/line2.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Options for Buffered Greedy Deviation.
struct BufferedGreedyOptions {
  double epsilon = 10.0;
  DistanceMetric metric = DistanceMetric::kPointToLine;
  /// Max interior points buffered per segment; 0 = unbounded (reference
  /// greedy). Paper default 32 for the comparative study.
  std::size_t buffer_size = 32;
};

/// Online sliding-window compressor with guaranteed error bound.
class BufferedGreedy final : public StreamCompressor {
 public:
  explicit BufferedGreedy(const BufferedGreedyOptions& options = {});

  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) override;
  void Finish(std::vector<KeyPoint>* out) override;
  void Reset() override;
  std::string_view name() const override { return "BGD"; }
  double ErrorBound() const override { return options_.epsilon; }

  const BufferedGreedyOptions& options() const { return options_; }
  std::size_t StateBytes() const override {
    return buffer_.capacity() * sizeof(TrackPoint);
  }
  /// Full deviation scans performed (for run-time accounting).
  uint64_t deviation_scans() const { return deviation_scans_; }

 private:
  void ProcessPoint(const TrackPoint& pt, uint64_t index,
                    std::vector<KeyPoint>* out, int depth);
  void StartSegment(const TrackPoint& pt, uint64_t index);

  BufferedGreedyOptions options_;
  bool have_first_ = false;
  uint64_t next_index_ = 0;
  TrackPoint segment_start_{};
  TrackPoint prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;
  std::vector<TrackPoint> buffer_;  ///< Interior points of the segment.
  uint64_t deviation_scans_ = 0;
};

}  // namespace bqs

#endif  // BQS_BASELINES_BUFFERED_GREEDY_H_
