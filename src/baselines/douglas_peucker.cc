#include "baselines/douglas_peucker.h"

#include <algorithm>
#include <cmath>

#include "geometry/line2.h"

namespace bqs {

std::vector<std::size_t> DouglasPeuckerIndices(
    std::span<const TrackPoint> points, double epsilon,
    DistanceMetric metric) {
  const std::size_t n = points.size();
  std::vector<std::size_t> keep;
  if (n == 0) return keep;
  if (n <= 2) {
    keep.push_back(0);
    if (n == 2) keep.push_back(1);
    return keep;
  }

  std::vector<bool> kept(n, false);
  kept[0] = true;
  kept[n - 1] = true;

  // Each stack entry is an open range (from, to) with both ends kept. The
  // explicit stack (not recursion) is load-bearing: adversarial streams can
  // force maximally unbalanced splits, and a call stack n frames deep would
  // overflow long before the heap notices (see the deep-zigzag test).
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  stack.reserve(64);
  stack.emplace_back(0, n - 1);
  while (!stack.empty()) {
    const auto [from, to] = stack.back();
    stack.pop_back();
    if (to <= from + 1) continue;

    const Vec2 a = points[from].pos;
    const Vec2 b = points[to].pos;
    double worst = -1.0;
    std::size_t worst_idx = from;
    const Vec2 chord = b - a;
    const double chord_len = chord.Norm();
    if (metric == DistanceMetric::kPointToLine && chord_len > 0.0) {
      // Hot inner loop: scan the cross products and divide by the chord
      // length once at the end instead of per point. Deliberate tradeoff:
      // max(c_i)/len can differ from max(c_i/len) by an ulp, so a deviation
      // within rounding distance of epsilon (or a quotient tie) may pick a
      // different — equally valid, still within-epsilon — simplification
      // than the per-point division would.
      for (std::size_t i = from + 1; i < to; ++i) {
        const double d = std::fabs(chord.Cross(points[i].pos - a));
        if (d > worst) {
          worst = d;
          worst_idx = i;
        }
      }
      worst /= chord_len;
    } else {
      for (std::size_t i = from + 1; i < to; ++i) {
        const double d = PointDeviation(points[i].pos, a, b, metric);
        if (d > worst) {
          worst = d;
          worst_idx = i;
        }
      }
    }
    if (worst > epsilon) {
      kept[worst_idx] = true;
      stack.emplace_back(from, worst_idx);
      stack.emplace_back(worst_idx, to);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (kept[i]) keep.push_back(i);
  }
  return keep;
}

CompressedTrajectory DouglasPeucker::Compress(
    std::span<const TrackPoint> points) {
  CompressedTrajectory out;
  for (std::size_t idx :
       DouglasPeuckerIndices(points, options_.epsilon, options_.metric)) {
    out.keys.push_back(KeyPoint{points[idx], idx});
  }
  return out;
}

}  // namespace bqs
