#include "storage/grid_index.h"

#include <cmath>

namespace bqs {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {}

int64_t GridIndex::CellKey(Vec2 pos) const {
  const auto cx = static_cast<int64_t>(std::floor(pos.x / cell_size_));
  const auto cy = static_cast<int64_t>(std::floor(pos.y / cell_size_));
  // Interleave the two 32-bit cell coordinates into one key.
  return (cx << 32) ^ (cy & 0xffffffffLL);
}

void GridIndex::Insert(uint64_t id, Vec2 pos) {
  cells_[CellKey(pos)].push_back(Entry{id, pos});
  ++size_;
}

bool GridIndex::Remove(uint64_t id, Vec2 pos) {
  const auto it = cells_.find(CellKey(pos));
  if (it == cells_.end()) return false;
  auto& bucket = it->second;
  for (std::size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].id == id) {
      bucket[i] = bucket.back();
      bucket.pop_back();
      if (bucket.empty()) cells_.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

std::vector<uint64_t> GridIndex::Query(Vec2 center, double radius) const {
  std::vector<uint64_t> out;
  const auto x0 = static_cast<int64_t>(
      std::floor((center.x - radius) / cell_size_));
  const auto x1 = static_cast<int64_t>(
      std::floor((center.x + radius) / cell_size_));
  const auto y0 = static_cast<int64_t>(
      std::floor((center.y - radius) / cell_size_));
  const auto y1 = static_cast<int64_t>(
      std::floor((center.y + radius) / cell_size_));
  const double r2 = radius * radius;
  for (int64_t cx = x0; cx <= x1; ++cx) {
    for (int64_t cy = y0; cy <= y1; ++cy) {
      const int64_t key = (cx << 32) ^ (cy & 0xffffffffLL);
      const auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (DistanceSq(e.pos, center) <= r2) out.push_back(e.id);
      }
    }
  }
  return out;
}

void GridIndex::Clear() {
  cells_.clear();
  size_ = 0;
}

}  // namespace bqs
