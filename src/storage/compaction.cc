#include "storage/compaction.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <system_error>
#include <utility>

#include "common/fault_injector.h"

namespace bqs {

namespace {

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open " + path + " for read failed");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("size " + path + " failed");
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    return Status::IoError("read " + path + " failed");
  }
  return Status::OK();
}

/// Best-effort directory fsync (same stance as the WAL writer: data-path
/// fsyncs gate the contract, the directory sync narrows the window).
void FsyncDirBestEffort(const std::string& dir) {
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    (void)::close(dirfd);
  }
}

/// The crash-point ladder: At() is consulted at every state-machine
/// transition, in execution order. When the armed kCompactionCrashAt
/// param matches the current transition index, the run "dies" — At()
/// returns (and latches) an IoError and every later consultation
/// short-circuits to it, so retries cannot resurrect a crashed run.
struct CrashGate {
  FaultInjector* injector = nullptr;
  uint64_t counter = 0;
  bool crashed = false;
  Status status;

  Status At() {
    if (crashed) return status;
    const uint64_t point = counter++;
    if (injector != nullptr &&
        injector->param(FaultSite::kCompactionCrashAt) == point &&
        injector->ShouldFire(FaultSite::kCompactionCrashAt)) {
      crashed = true;
      status = Status::IoError("injected compaction crash at transition " +
                               std::to_string(point));
      return status;
    }
    return Status::OK();
  }
};

/// Reads one CRC-framed block at `offset` of an open stream and decodes
/// it. Used by both the recovery fallback walk and the query path.
Status ReadBlockAt(std::ifstream& in, const std::string& path,
                   uint64_t offset, blk::BlockMeta* meta,
                   std::vector<wal::WalCheckpoint>* out) {
  in.clear();
  in.seekg(static_cast<std::streamoff>(offset));
  char framing[blk::kBlockHeaderBytes];
  if (!in.read(framing, sizeof(framing))) {
    return Status::Corruption("short block framing in " + path);
  }
  const uint8_t* const f = reinterpret_cast<const uint8_t*>(framing);
  const std::size_t len = wal::GetU32(f);
  const uint32_t stored_crc = crc32c::Unmask(wal::GetU32(f + 4));
  if (len > blk::kMaxBlockPayload) {
    return Status::Corruption("implausible block length in " + path);
  }
  std::string payload(len, '\0');
  if (len > 0 && !in.read(payload.data(), static_cast<std::streamoff>(len))) {
    return Status::Corruption("short block payload in " + path);
  }
  uint32_t crc = crc32c::Value(framing, 4);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  if (crc != stored_crc) {
    return Status::Corruption("block crc mismatch in " + path);
  }
  if (!blk::DecodeBlockPayload(
          {reinterpret_cast<const uint8_t*>(payload.data()), payload.size()},
          meta, out)) {
    return Status::Corruption("block payload decode failed in " + path);
  }
  return Status::OK();
}

}  // namespace

// --- compactor ------------------------------------------------------------

Compactor::Compactor(const CompactionOptions& options) : options_(options) {}

bool Compactor::degraded() const {
  MutexLock lock(mu_);
  return degraded_;
}

void Compactor::ResetDegraded() {
  MutexLock lock(mu_);
  degraded_ = false;
}

CompactionStats Compactor::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

Status Compactor::CompactOnce(uint64_t max_segment_exclusive) {
  MutexLock lock(mu_);
  if (degraded_) {
    return Status::IoError(
        "compactor degraded (persistent ENOSPC); wal-only mode");
  }
  return CompactOnceLocked(max_segment_exclusive);
}

Status Compactor::CompactOnceLocked(uint64_t max_segment_exclusive) {
  FaultInjector* const injector = options_.fault_injector;
  CrashGate gate;
  gate.injector = injector;
  // Seeded per run so every run replays its own schedule: the sweep can
  // re-execute run k and see identical retry timing.
  Backoff backoff(options_.backoff,
                  options_.backoff_seed + stats_.runs_started,
                  options_.sleep, options_.sleep_ctx);
  ++stats_.runs_started;

  // Every I/O step goes through here: bounded deterministic retries, a
  // crashed gate short-circuits re-attempts (a dead process retries
  // nothing), and retry counts exclude crash-aborted steps.
  const auto step = [&](auto&& op) -> Status {
    const uint64_t before = backoff.attempts();
    const Status st = backoff.Run([&]() -> Status {
      if (gate.crashed) return gate.status;
      return op();
    });
    if (!gate.crashed && backoff.attempts() > before) {
      stats_.io_retries += backoff.attempts() - before - 1;
    }
    return st;
  };
  const auto fail = [&](const Status& st) -> Status {
    if (gate.crashed) {
      ++stats_.runs_crashed;
    } else {
      ++stats_.runs_failed;
      stats_.last_error_code = st.code();
      stats_.last_error = st.message();
      if (IsEnospc(st)) {
        ++stats_.enospc_events;
        degraded_ = true;  // degrade-and-continue: ingest stays WAL-only
      }
    }
    return st;
  };

  // [cleanup] -- block dir, current manifest, stale temp/orphan files.
  Manifest manifest;
  bool have_manifest = false;
  Status st = step([&]() -> Status {
    have_manifest = false;
    manifest = Manifest{};
    std::error_code ec;
    std::filesystem::create_directories(options_.block_dir, ec);
    if (ec) {
      return Status::IoError("create " + options_.block_dir + ": " +
                             ec.message());
    }
    const Status ms = ReadManifest(options_.block_dir, &manifest);
    if (ms.ok()) {
      have_manifest = true;
      return Status::OK();
    }
    // No manifest yet is the fresh-directory case; corruption is not ours
    // to paper over — compacting on top of an untrusted watermark could
    // delete WAL bytes not provably in blocks. Refuse and report.
    if (ms.code() == StatusCode::kNotFound) return Status::OK();
    return ms;
  });
  if (!st.ok()) return fail(st);

  st = step([&]() -> Status {
    uint64_t tmp_removed = 0, orphans_removed = 0;
    std::set<uint64_t> referenced;
    for (const ManifestBlockFile& file : manifest.files) {
      referenced.insert(file.file_id);
    }
    std::error_code ec;
    std::filesystem::directory_iterator it(options_.block_dir, ec);
    if (ec) {
      return Status::IoError("list " + options_.block_dir + ": " +
                             ec.message());
    }
    const std::filesystem::directory_iterator end;
    std::vector<std::filesystem::path> doomed;
    while (it != end) {
      const std::string name = it->path().filename().string();
      uint64_t id = 0;
      if (name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        doomed.push_back(it->path());
        ++tmp_removed;
      } else if (ParseBlockFileName(name, &id) &&
                 referenced.find(id) == referenced.end()) {
        // Published but never referenced: a crash landed between block
        // and manifest publication. The WAL still holds its contents
        // (segments are deleted only after the manifest rename), so the
        // orphan is redundant bytes, not data.
        doomed.push_back(it->path());
        ++orphans_removed;
      }
      it.increment(ec);
      if (ec) {
        return Status::IoError("list " + options_.block_dir + ": " +
                               ec.message());
      }
    }
    for (const std::filesystem::path& path : doomed) {
      std::filesystem::remove(path, ec);
      if (ec) {
        return Status::IoError("remove " + path.string() + ": " +
                               ec.message());
      }
    }
    stats_.orphan_tmp_removed += tmp_removed;
    stats_.orphan_blocks_removed += orphans_removed;
    return Status::OK();
  });
  if (!st.ok()) return fail(st);
  if (Status cs = gate.At(); !cs.ok()) return fail(cs);  // T0: cleaned up

  // [scan] -- sealed segments below the bound; keep what the manifest
  // does not already cover.
  std::vector<WalSegmentFile> consumed;
  std::vector<wal::WalCheckpoint> fresh;
  wal::WalQuantization quant = manifest.quant;
  uint64_t already = 0;
  st = step([&]() -> Status {
    consumed.clear();
    fresh.clear();
    already = 0;
    Result<std::vector<WalSegmentFile>> listed =
        ListWalSegments(options_.wal_dir);
    if (!listed.ok()) {
      if (listed.status().code() == StatusCode::kNotFound) {
        return Status::OK();  // no WAL directory: nothing to drain
      }
      return listed.status();
    }
    const std::vector<WalSegmentFile>& all = listed.value();
    for (const WalSegmentFile& file : all) {
      if (file.index < max_segment_exclusive) consumed.push_back(file);
    }
    std::string bytes;
    WalRecoveryReport scan_report;
    for (const WalSegmentFile& file : consumed) {
      BQS_RETURN_NOT_OK(ReadFileBytes(file.path, &bytes));
      const std::span<const uint8_t> image(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
      wal::SegmentHeaderInfo header;
      if (wal::DecodeSegmentHeader(image, &header)) quant = header.quant;
      // Same torn-tail rule as WalReader::Recover: only the directory's
      // final segment gets truncation semantics, so the compactor reads
      // exactly what recovery would have.
      const bool is_last = !all.empty() && file.index == all.back().index;
      std::vector<wal::WalCheckpoint> replayed;
      WalReader::RecoverSegment(image, is_last, &replayed, &scan_report);
      for (wal::WalCheckpoint& c : replayed) {
        if (c.seq <= manifest.last_applied_seq) {
          ++already;
        } else {
          fresh.push_back(std::move(c));
        }
      }
    }
    return Status::OK();
  });
  if (!st.ok()) return fail(st);
  if (Status cs = gate.At(); !cs.ok()) return fail(cs);  // T1: scanned

  stats_.segments_consumed += consumed.size();
  stats_.checkpoints_already_compacted += already;
  if (consumed.empty()) {
    ++stats_.runs_completed;
    return Status::OK();
  }

  if (!fresh.empty()) {
    // Replay order is already seq order (monotone writer, ordered
    // segments); the sort is belt-and-braces for hand-built directories.
    std::stable_sort(fresh.begin(), fresh.end(),
                     [](const wal::WalCheckpoint& a,
                        const wal::WalCheckpoint& b) { return a.seq < b.seq; });
    uint64_t new_watermark = manifest.last_applied_seq;
    uint64_t fresh_points = 0;
    for (const wal::WalCheckpoint& c : fresh) {
      new_watermark = std::max(new_watermark, c.seq);
      fresh_points += c.points.size();
    }

    // Group per device, split into bounded blocks of whole checkpoints.
    std::map<DeviceId, std::vector<wal::WalCheckpoint>> by_device;
    for (wal::WalCheckpoint& c : fresh) {
      by_device[c.device].push_back(std::move(c));
    }
    std::vector<std::vector<wal::WalCheckpoint>> pending;
    for (auto& [device, run] : by_device) {
      (void)device;
      std::vector<wal::WalCheckpoint> current;
      std::size_t current_points = 0;
      for (wal::WalCheckpoint& c : run) {
        if (!current.empty() &&
            current_points + c.points.size() > options_.max_points_per_block) {
          pending.push_back(std::move(current));
          current.clear();
          current_points = 0;
        }
        current_points += c.points.size();
        current.push_back(std::move(c));
      }
      if (!current.empty()) pending.push_back(std::move(current));
    }

    // Encode the whole block file in memory (a compaction's unit of work
    // is bounded by the WAL rotation threshold times segments drained).
    uint64_t file_id = 1;
    for (const ManifestBlockFile& file : manifest.files) {
      file_id = std::max(file_id, file.file_id + 1);
    }
    std::string file_bytes;
    blk::EncodeBlockFileHeader(quant, static_cast<uint32_t>(pending.size()),
                               &file_bytes);
    ManifestBlockFile new_file;
    new_file.file_id = file_id;
    for (const std::vector<wal::WalCheckpoint>& block : pending) {
      ManifestBlockEntry entry;
      entry.offset = file_bytes.size();
      blk::EncodeBlock(block, &file_bytes, &entry.meta);
      new_file.blocks.push_back(std::move(entry));
    }
    new_file.file_bytes = file_bytes.size();

    // [write + publish block file] (crash points inside: temp durable,
    // renamed; one more after the directory fsync below).
    st = step([&]() -> Status {
      return WriteFileAtomic(options_.block_dir, BlockFileName(file_id),
                             file_bytes, injector,
                             [&]() -> Status { return gate.At(); });
    });
    if (!st.ok()) return fail(st);
    if (Status cs = gate.At(); !cs.ok()) return fail(cs);  // block durable
    stats_.block_files_written += 1;
    stats_.blocks_written += pending.size();
    stats_.block_bytes_written += file_bytes.size();
    stats_.checkpoints_compacted += fresh.size();
    stats_.points_compacted += fresh_points;

    // [write + publish manifest] -- the commit point.
    Manifest next = manifest;
    next.quant = quant;
    next.last_applied_seq = new_watermark;
    next.files.push_back(std::move(new_file));
    st = step([&]() -> Status {
      return WriteManifest(options_.block_dir, next, injector,
                           [&]() -> Status { return gate.At(); });
    });
    if (!st.ok()) return fail(st);
    if (Status cs = gate.At(); !cs.ok()) return fail(cs);  // committed
    manifest = std::move(next);
  }

  // [delete consumed WAL segments] -- safe now (and safe to redo: every
  // checkpoint they held is at or below the published watermark).
  for (const WalSegmentFile& file : consumed) {
    if (Status cs = gate.At(); !cs.ok()) return fail(cs);
    st = step([&]() -> Status {
      std::error_code ec;
      std::filesystem::remove(file.path, ec);  // ENOENT is fine (redo)
      if (ec && ec != std::errc::no_such_file_or_directory) {
        return Status::IoError("remove " + file.path + ": " + ec.message());
      }
      return Status::OK();
    });
    if (!st.ok()) return fail(st);
    ++stats_.segments_deleted;
  }
  FsyncDirBestEffort(options_.wal_dir);

  ++stats_.runs_completed;
  return Status::OK();
}

// --- recovery -------------------------------------------------------------

Result<StoreRecovery> RecoverStore(const std::string& wal_dir,
                                   const std::string& block_dir) {
  StoreRecovery recovery;
  StoreRecoveryReport& report = recovery.report;

  Manifest manifest;
  bool have_manifest = false;
  {
    const Status ms = ReadManifest(block_dir, &manifest);
    if (ms.ok()) {
      have_manifest = true;
      report.manifest_found = true;
    } else if (ms.code() == StatusCode::kCorruption) {
      report.manifest_found = true;
      report.manifest_corrupt = true;
    } else if (ms.code() != StatusCode::kNotFound) {
      return ms;  // environmental (unreadable directory/file)
    }
  }

  // Census of the block directory: stale temp files are counted (the next
  // compaction quarantines them); block files are collected for either
  // the referenced walk or the manifest-less fallback scan.
  std::map<uint64_t, std::string> on_disk;  // id -> path, deterministic
  {
    std::error_code ec;
    std::filesystem::directory_iterator it(block_dir, ec);
    if (!ec) {
      const std::filesystem::directory_iterator end;
      while (it != end) {
        const std::string name = it->path().filename().string();
        uint64_t id = 0;
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
          ++report.orphan_tmp_files;
        } else if (ParseBlockFileName(name, &id)) {
          on_disk.emplace(id, it->path().string());
        }
        it.increment(ec);
        if (ec) break;
      }
    }
  }

  std::vector<wal::WalCheckpoint> from_blocks;
  std::set<uint64_t> block_seqs;
  bool quant_known = false;

  const auto walk_file = [&](const std::string& path,
                             const ManifestBlockFile* expect) {
    std::string bytes;
    if (!ReadFileBytes(path, &bytes).ok()) {
      ++report.block_files_unreadable;
      return;
    }
    const std::span<const uint8_t> image(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    blk::BlockFileHeaderInfo header;
    if (!blk::DecodeBlockFileHeader(image, &header)) {
      ++report.block_files_unreadable;
      return;
    }
    if (!have_manifest && !quant_known) {
      recovery.wal.quant = header.quant;
      quant_known = true;
    }
    ++report.block_files_read;
    std::ifstream in(path, std::ios::binary);
    uint64_t offset = blk::kBlockFileHeaderBytes;
    for (uint32_t b = 0; b < header.block_count; ++b) {
      // Referenced walks jump by manifest offsets (and cross-check the
      // stored metadata); the fallback walks the framing sequentially.
      if (expect != nullptr) {
        if (b >= expect->blocks.size()) break;
        offset = expect->blocks[b].offset;
      }
      blk::BlockMeta meta;
      std::vector<wal::WalCheckpoint> decoded;
      if (!ReadBlockAt(in, path, offset, &meta, &decoded).ok() ||
          (expect != nullptr && !(meta == expect->blocks[b].meta))) {
        ++report.blocks_corrupt;
        if (expect == nullptr) break;  // framing lost; stop the walk
        continue;
      }
      ++report.blocks_decoded;
      for (wal::WalCheckpoint& c : decoded) {
        block_seqs.insert(c.seq);
        from_blocks.push_back(std::move(c));
      }
      if (expect == nullptr) {
        // Advance past the block just decoded: framing length + payload.
        in.clear();
        in.seekg(static_cast<std::streamoff>(offset));
        char framing[blk::kBlockHeaderBytes];
        if (!in.read(framing, sizeof(framing))) break;
        offset += blk::kBlockHeaderBytes +
                  wal::GetU32(reinterpret_cast<const uint8_t*>(framing));
      }
    }
  };

  if (have_manifest) {
    recovery.wal.quant = manifest.quant;
    quant_known = true;
    for (const ManifestBlockFile& file : manifest.files) {
      const auto it = on_disk.find(file.file_id);
      if (it == on_disk.end()) {
        ++report.block_files_unreadable;  // referenced but gone: data loss
        continue;
      }
      walk_file(it->second, &file);
    }
    for (const auto& [id, path] : on_disk) {
      (void)path;
      bool referenced = false;
      for (const ManifestBlockFile& file : manifest.files) {
        if (file.file_id == id) {
          referenced = true;
          break;
        }
      }
      if (!referenced) ++report.unreferenced_blocks;
    }
  } else {
    // No (trustworthy) manifest: scan every published block file. Each is
    // complete by construction (published via atomic rename), so whatever
    // decodes is real data; the WAL union below dedupes by seq.
    for (const auto& [id, path] : on_disk) {
      (void)id;
      walk_file(path, nullptr);
    }
  }
  report.checkpoints_from_blocks = from_blocks.size();

  // The WAL side: full replay, then take what blocks do not already hold.
  uint64_t max_block_seq = 0;
  for (const wal::WalCheckpoint& c : from_blocks) {
    max_block_seq = std::max(max_block_seq, c.seq);
  }
  Result<WalRecovery> walr = WalReader::Recover(wal_dir);
  if (!walr.ok()) {
    if (walr.status().code() != StatusCode::kNotFound) return walr.status();
  } else {
    WalRecovery& wal = walr.value();
    recovery.wal.report = wal.report;
    recovery.wal.next_seq = wal.next_seq;
    if (!quant_known) recovery.wal.quant = wal.quant;
    for (wal::WalCheckpoint& c : wal.checkpoints) {
      const bool covered =
          have_manifest
              ? c.seq <= manifest.last_applied_seq
              : block_seqs.find(c.seq) != block_seqs.end();
      if (covered) {
        ++report.duplicates_dropped;
      } else {
        ++report.checkpoints_from_wal;
        from_blocks.push_back(std::move(c));
      }
    }
  }

  std::stable_sort(from_blocks.begin(), from_blocks.end(),
                   [](const wal::WalCheckpoint& a,
                      const wal::WalCheckpoint& b) { return a.seq < b.seq; });
  recovery.wal.checkpoints = std::move(from_blocks);
  for (const wal::WalCheckpoint& c : recovery.wal.checkpoints) {
    if (c.seq != UINT64_MAX && c.seq >= recovery.wal.next_seq) {
      recovery.wal.next_seq = c.seq + 1;
    }
  }
  if (have_manifest && manifest.last_applied_seq != UINT64_MAX &&
      manifest.last_applied_seq >= recovery.wal.next_seq) {
    recovery.wal.next_seq = manifest.last_applied_seq + 1;
  }
  return recovery;
}

// --- range queries --------------------------------------------------------

BlockStore::BlockStore(std::string dir, Manifest manifest, double cell_size)
    : dir_(std::move(dir)),
      manifest_(std::move(manifest)),
      grid_(cell_size) {}

Result<BlockStore> BlockStore::Open(const std::string& block_dir) {
  Manifest manifest;
  BQS_RETURN_NOT_OK(ReadManifest(block_dir, &manifest));

  // Size the grid cells to the typical block footprint so a query sweeps
  // O(1) cells per intersecting block; the inflate radius makes the
  // center-point index conservative (a block is findable from anywhere
  // within half its diagonal of its center).
  const double cq = manifest.quant.coord_quantum;
  double max_half_diag = 0.0;
  double extent_sum = 0.0;
  std::size_t count = 0;
  for (const ManifestBlockFile& file : manifest.files) {
    for (const ManifestBlockEntry& entry : file.blocks) {
      const double w =
          static_cast<double>(entry.meta.qx_max - entry.meta.qx_min) * cq;
      const double h =
          static_cast<double>(entry.meta.qy_max - entry.meta.qy_min) * cq;
      max_half_diag = std::max(max_half_diag, 0.5 * std::hypot(w, h));
      extent_sum += std::max(w, h);
      ++count;
    }
  }
  const double cell =
      count == 0 ? 500.0 : std::max(extent_sum / static_cast<double>(count),
                                    std::max(cq, 1e-6));

  BlockStore store(block_dir, std::move(manifest), cell);
  store.inflate_ = max_half_diag;
  for (std::size_t slot = 0; slot < store.manifest_.files.size(); ++slot) {
    const ManifestBlockFile& file = store.manifest_.files[slot];
    for (const ManifestBlockEntry& entry : file.blocks) {
      const uint64_t id = store.blocks_.size();
      const Vec2 center(
          0.5 * static_cast<double>(entry.meta.qx_min + entry.meta.qx_max) *
              cq,
          0.5 * static_cast<double>(entry.meta.qy_min + entry.meta.qy_max) *
              cq);
      store.grid_.Insert(id, center);
      store.blocks_.push_back(BlockRef{slot, entry.offset, entry.meta});
    }
  }
  return store;
}

Status BlockStore::Query(Vec2 center, double radius, double t_min,
                         double t_max, std::vector<KeyPoint>* out,
                         RangeQueryStats* stats) const {
  RangeQueryStats local;
  RangeQueryStats* const s = stats != nullptr ? stats : &local;
  *s = RangeQueryStats{};
  s->blocks_total = blocks_.size();

  std::vector<uint64_t> candidates = grid_.Query(center, radius + inflate_);
  std::sort(candidates.begin(), candidates.end());  // deterministic order
  s->grid_candidates = candidates.size();

  const double cq = manifest_.quant.coord_quantum;
  const double tq = manifest_.quant.time_quantum;
  const double radius_sq = radius * radius;

  std::ifstream in;
  std::size_t open_slot = SIZE_MAX;
  for (const uint64_t id : candidates) {
    const BlockRef& ref = blocks_[static_cast<std::size_t>(id)];
    const blk::BlockMeta& m = ref.meta;
    // Exact prune: circle vs dequantized bbox, plus time-span overlap.
    const double t0 = static_cast<double>(m.qt_min) * tq;
    const double t1 = static_cast<double>(m.qt_max) * tq;
    const double rx0 = static_cast<double>(m.qx_min) * cq;
    const double rx1 = static_cast<double>(m.qx_max) * cq;
    const double ry0 = static_cast<double>(m.qy_min) * cq;
    const double ry1 = static_cast<double>(m.qy_max) * cq;
    const double dx =
        std::max({rx0 - center.x, center.x - rx1, 0.0});
    const double dy =
        std::max({ry0 - center.y, center.y - ry1, 0.0});
    if (t1 < t_min || t0 > t_max || dx * dx + dy * dy > radius_sq) {
      ++s->blocks_pruned;
      continue;
    }

    if (ref.file_slot != open_slot) {
      in.close();
      in.clear();
      const std::string path =
          dir_ + "/" + BlockFileName(manifest_.files[ref.file_slot].file_id);
      in.open(path, std::ios::binary);
      if (!in) return Status::IoError("open " + path + " for read failed");
      open_slot = ref.file_slot;
    }
    blk::BlockMeta meta;
    std::vector<wal::WalCheckpoint> decoded;
    const std::string path =
        dir_ + "/" + BlockFileName(manifest_.files[ref.file_slot].file_id);
    BQS_RETURN_NOT_OK(ReadBlockAt(in, path, ref.offset, &meta, &decoded));
    if (!(meta == m)) {
      return Status::Corruption("block metadata mismatch in " + path);
    }
    ++s->blocks_decoded;
    for (const wal::WalCheckpoint& c : decoded) {
      s->points_scanned += c.points.size();
      for (const wal::WalPoint& p : c.points) {
        const KeyPoint key = wal::Dequantize(p, manifest_.quant);
        if (key.point.t < t_min || key.point.t > t_max) continue;
        if (DistanceSq(key.point.pos, center) > radius_sq) continue;
        out->push_back(key);
        ++s->points_returned;
      }
    }
  }
  return Status::OK();
}

}  // namespace bqs
