// Crash-consistent compaction: drains sealed WAL segments into columnar
// key-point block files and publishes them through the atomic MANIFEST —
// plus the two consumers of the result, recovery and range queries.
//
// The state machine (one CompactOnce() run):
//
//     [cleanup]   quarantine stale *.tmp and unreferenced blk-*.bqb
//        |        (leftovers of a previous crash; deleting them is safe
//        v         because nothing unpublished is ever the only copy)
//     [scan]      read MANIFEST watermark; replay sealed WAL segments;
//        |        keep checkpoints with seq > watermark
//        v
//     [write blk] encode per-device column runs -> blk-N.bqb.tmp, fsync
//        |
//        v
//     [publish blk]  rename -> blk-N.bqb, fsync dir
//        |
//        v
//     [write manifest]  MANIFEST.tmp (new watermark + new file), fsync
//        |
//        v
//     [publish manifest]  rename -> MANIFEST, fsync dir   <-- commit point
//        |
//        v
//     [delete WAL]  unlink consumed segments, one by one, fsync dir
//
// Crash anywhere above the commit point: the old MANIFEST still rules,
// the WAL still holds everything, and the next run's cleanup removes the
// debris. Crash anywhere after it: the new MANIFEST rules and surviving
// consumed segments are below the watermark, so recovery's union
// (blocks ∪ WAL-above-watermark) is exact either way — no duplicates, no
// losses. The compaction_crash_sweep_test kills a run at every transition
// (FaultSite::kCompactionCrashAt, param = transition index) and at every
// MANIFEST byte-truncation offset and asserts exactly that.
//
// Every I/O step runs under the deterministic retry/backoff policy
// (common/backoff.h). Transient failures retry; persistent ENOSPC
// (classified by manifest.h's IsEnospc) flips the compactor into degraded
// mode: CompactOnce becomes a fast no-op error, the WAL keeps ingesting,
// and FleetEngine surfaces storage_healthy=false — degrade-and-continue,
// never fail ingest. ResetDegraded() re-arms once space is back.
//
// Threading: CompactOnce/stats are serialized by an internal mutex; the
// engine drives compaction from its checkpoint barrier, one run at a
// time. RecoverStore and BlockStore touch no writer state.
#ifndef BQS_STORAGE_COMPACTION_H_
#define BQS_STORAGE_COMPACTION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "geometry/vec2.h"
#include "storage/grid_index.h"
#include "storage/keypoint_wal.h"
#include "storage/manifest.h"
#include "trajectory/point.h"

namespace bqs {

class FaultInjector;  // common/fault_injector.h (test harness; see lint)

struct CompactionOptions {
  /// The WAL directory to drain (KeyPointWalOptions::dir).
  std::string wal_dir;
  /// Where block files + MANIFEST live; created by the first run. May be
  /// the WAL directory itself (the name families never collide).
  std::string block_dir;

  /// Split a device's run into blocks of at most this many points (whole
  /// checkpoints — one oversized checkpoint makes one oversized block).
  /// Smaller blocks prune better; larger ones delta-code denser.
  std::size_t max_points_per_block = 4096;

  /// Retry discipline for every I/O step, seeded so schedules replay.
  BackoffPolicy backoff;
  uint64_t backoff_seed = 0xb4c0ffULL;
  BackoffSleepFn sleep = nullptr;  ///< Null: retry without sleeping.
  void* sleep_ctx = nullptr;

  /// Deterministic fault injection for tests; nullptr in production.
  /// Sites consulted: kCompactionCrashAt (param = transition index),
  /// kRenameFail, kEnospc. Must outlive the compactor.
  FaultInjector* fault_injector = nullptr;
};

struct CompactionStats {
  uint64_t runs_started = 0;
  uint64_t runs_completed = 0;
  uint64_t runs_failed = 0;   ///< I/O failure after retries (not crashes).
  uint64_t runs_crashed = 0;  ///< Aborted by an injected crash point.
  uint64_t segments_consumed = 0;  ///< Sealed segments read by a run.
  uint64_t segments_deleted = 0;
  uint64_t checkpoints_compacted = 0;
  uint64_t points_compacted = 0;
  uint64_t checkpoints_already_compacted = 0;  ///< Below-watermark, skipped.
  uint64_t block_files_written = 0;
  uint64_t blocks_written = 0;
  uint64_t block_bytes_written = 0;
  uint64_t orphan_tmp_removed = 0;
  uint64_t orphan_blocks_removed = 0;
  uint64_t io_retries = 0;      ///< Backoff attempts beyond the first.
  uint64_t enospc_events = 0;   ///< Steps that exhausted retries on ENOSPC.
  StatusCode last_error_code = StatusCode::kOk;
  std::string last_error;
};

class Compactor {
 public:
  explicit Compactor(const CompactionOptions& options);

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// One full state-machine run over sealed segments with index strictly
  /// below `max_segment_exclusive` (pass the writer's
  /// current_segment_index() to leave the active segment alone;
  /// UINT64_MAX compacts everything, for a closed WAL). A run with
  /// nothing new to do is a successful no-op. In degraded mode returns
  /// the degradation error without touching disk.
  Status CompactOnce(uint64_t max_segment_exclusive = UINT64_MAX);

  /// True after persistent ENOSPC: the compactor refuses further runs so
  /// ingest (the WAL) keeps the disk budget. See ResetDegraded().
  bool degraded() const;

  /// Clears degraded mode — call after space has been reclaimed.
  void ResetDegraded();

  CompactionStats stats() const;
  const CompactionOptions& options() const { return options_; }

 private:
  Status CompactOnceLocked(uint64_t max_segment_exclusive) REQUIRES(mu_);

  const CompactionOptions options_;
  mutable Mutex mu_;
  bool degraded_ GUARDED_BY(mu_) = false;
  CompactionStats stats_ GUARDED_BY(mu_);
};

// --- recovery -------------------------------------------------------------

/// Accounting for the block/manifest side of a store recovery (the WAL
/// side keeps its own WalRecoveryReport).
struct StoreRecoveryReport {
  bool manifest_found = false;    ///< A MANIFEST file existed.
  bool manifest_corrupt = false;  ///< ...but failed to decode: fell back
                                  ///< to scanning block files directly.
  uint64_t block_files_read = 0;
  uint64_t block_files_unreadable = 0;  ///< Referenced but missing/bad.
  uint64_t blocks_decoded = 0;
  uint64_t blocks_corrupt = 0;
  uint64_t checkpoints_from_blocks = 0;
  uint64_t checkpoints_from_wal = 0;
  /// WAL checkpoints already covered by blocks (below the watermark, or
  /// seq-matched in the manifest-less fallback). Expected after a crash
  /// between manifest publication and segment deletion — not a loss.
  uint64_t duplicates_dropped = 0;
  uint64_t orphan_tmp_files = 0;     ///< Stale *.tmp seen (left in place).
  uint64_t unreferenced_blocks = 0;  ///< Published but not in the manifest.

  /// True iff every byte of storage state was accounted for cleanly.
  bool clean() const {
    return !manifest_corrupt && block_files_unreadable == 0 &&
           blocks_corrupt == 0;
  }
};

/// Everything RecoverStore() gives back. `wal.checkpoints` holds the full
/// reconstructed acked prefix — block contents ∪ surviving WAL tail,
/// seq-sorted, duplicate-free — with `wal.quant`/`wal.next_seq` set from
/// the union, so TrajectoryStore::RestoreFromWal consumes it unchanged.
/// `wal.report` covers only the WAL segments actually replayed.
struct StoreRecovery {
  WalRecovery wal;
  StoreRecoveryReport report;
};

/// Reconstructs the exact acked prefix from MANIFEST + blocks + surviving
/// WAL, no matter where a compaction or ingest process died. IoError only
/// for environmental failures; corruption is reported, never fatal.
Result<StoreRecovery> RecoverStore(const std::string& wal_dir,
                                   const std::string& block_dir);

// --- range queries off compressed blocks ----------------------------------

struct RangeQueryStats {
  uint64_t blocks_total = 0;      ///< Live blocks in the store.
  uint64_t grid_candidates = 0;   ///< Survived the grid-index sweep.
  uint64_t blocks_pruned = 0;     ///< Rejected by exact bbox/time test.
  uint64_t blocks_decoded = 0;    ///< Actually read + decoded.
  uint64_t points_scanned = 0;    ///< Points inside decoded blocks.
  uint64_t points_returned = 0;
};

/// Read-only view over a published block directory: answers
/// spatio-temporal range queries off the compressed blocks, decoding only
/// the ones whose bounding box can intersect the query.
///
/// Pruning is two-staged: a GridIndex over block-bbox centers (queried
/// with the radius inflated by the largest block half-diagonal, so it can
/// never miss an intersecting block) narrows to candidates, then the
/// exact circle-vs-bbox + time-span test decides what to decode. Returned
/// key points are dequantized; each is within quantum/2 per axis of what
/// the compressor emitted, so results inherit the combined
/// eps + quantum/2 error bound end to end.
class BlockStore {
 public:
  /// Reads the MANIFEST and builds the pruning index. NotFound when no
  /// manifest exists, Corruption when it fails to decode.
  static Result<BlockStore> Open(const std::string& block_dir);

  /// Appends key points within `radius` of `center` (Euclidean) whose
  /// timestamp lies in [t_min, t_max]. Decodes only matching blocks.
  Status Query(Vec2 center, double radius, double t_min, double t_max,
               std::vector<KeyPoint>* out,
               RangeQueryStats* stats = nullptr) const;

  const Manifest& manifest() const { return manifest_; }
  std::size_t block_count() const { return blocks_.size(); }
  uint64_t last_applied_seq() const { return manifest_.last_applied_seq; }

 private:
  struct BlockRef {
    std::size_t file_slot = 0;  ///< Index into manifest_.files.
    uint64_t offset = 0;
    blk::BlockMeta meta;
  };

  BlockStore(std::string dir, Manifest manifest, double cell_size);

  std::string dir_;
  Manifest manifest_;
  std::vector<BlockRef> blocks_;
  GridIndex grid_;       ///< id = index into blocks_, pos = bbox center.
  double inflate_ = 0.0; ///< Largest block half-diagonal, metres.
};

}  // namespace bqs

#endif  // BQS_STORAGE_COMPACTION_H_
