#include "storage/waypoint_discovery.h"

#include <algorithm>

namespace bqs {

WaypointDiscovery::WaypointDiscovery(const WaypointOptions& options)
    : options_(options), index_(options.cluster_radius_m) {}

uint32_t WaypointDiscovery::Assign(Vec2 pos) {
  // Nearest existing center within the cluster radius, else a new one.
  uint64_t best_id = 0;
  double best_d2 = options_.cluster_radius_m * options_.cluster_radius_m;
  bool found = false;
  for (uint64_t id : index_.Query(pos, options_.cluster_radius_m)) {
    const double d2 = DistanceSq(waypoints_[id].center, pos);
    if (d2 <= best_d2) {
      best_d2 = d2;
      best_id = id;
      found = true;
    }
  }
  if (found) return static_cast<uint32_t>(best_id);

  Waypoint wp;
  wp.id = static_cast<uint32_t>(waypoints_.size());
  wp.center = pos;
  waypoints_.push_back(wp);
  index_.Insert(wp.id, pos);
  return wp.id;
}

void WaypointDiscovery::RecordStay(Vec2 pos, double t_start, double t_end) {
  const uint32_t id = Assign(pos);
  Waypoint& wp = waypoints_[id];
  // Running-mean center update keeps the cluster honest as stays accrue;
  // re-index when the center drifts out of its original cell.
  const Vec2 old_center = wp.center;
  ++wp.visits;
  wp.total_dwell_s += t_end - t_start;
  wp.center += (pos - wp.center) / static_cast<double>(wp.visits);
  if (wp.visits == 1) wp.first_seen_t = t_start;
  wp.last_seen_t = t_end;
  if (DistanceSq(old_center, wp.center) > 0.0) {
    index_.Remove(id, old_center);
    index_.Insert(id, wp.center);
  }

  if (have_last_waypoint_ && last_waypoint_ != id) {
    const uint64_t key =
        (static_cast<uint64_t>(last_waypoint_) << 32) | id;
    ++transitions_[key];
    trips_.push_back(Trip{last_waypoint_, id, last_departure_t_, t_start});
  }
  have_last_waypoint_ = true;
  last_waypoint_ = id;
  last_departure_t_ = t_end;
}

void WaypointDiscovery::Observe(const CompressedTrajectory& compressed) {
  const auto& keys = compressed.keys;
  if (keys.size() < 2) return;
  // A maximal run of keys within max_stay_drift_m whose total time exceeds
  // min_dwell_s is one stay. Runs are grown greedily from each key.
  std::size_t i = 0;
  while (i + 1 < keys.size()) {
    std::size_t j = i + 1;
    while (j < keys.size() &&
           Distance(keys[j].point.pos, keys[i].point.pos) <=
               options_.max_stay_drift_m) {
      ++j;
    }
    const double dwell = keys[j - 1].point.t - keys[i].point.t;
    if (j - 1 > i && dwell >= options_.min_dwell_s) {
      // Centroid of the run's keys represents the stay.
      Vec2 center{0.0, 0.0};
      for (std::size_t k = i; k < j; ++k) center += keys[k].point.pos;
      center = center / static_cast<double>(j - i);
      RecordStay(center, keys[i].point.t, keys[j - 1].point.t);
      i = j - 1;
    } else {
      ++i;
    }
  }
}

std::vector<Waypoint> WaypointDiscovery::Waypoints(
    uint64_t min_visits) const {
  std::vector<Waypoint> out;
  for (const Waypoint& wp : waypoints_) {
    if (wp.visits >= min_visits) out.push_back(wp);
  }
  std::sort(out.begin(), out.end(), [](const Waypoint& a, const Waypoint& b) {
    return a.visits > b.visits;
  });
  return out;
}

std::optional<std::pair<uint32_t, double>> WaypointDiscovery::PredictNext(
    uint32_t from) const {
  uint64_t total = 0;
  uint64_t best_count = 0;
  uint32_t best_to = 0;
  for (const auto& [key, count] : transitions_) {
    if (static_cast<uint32_t>(key >> 32) != from) continue;
    total += count;
    if (count > best_count) {
      best_count = count;
      best_to = static_cast<uint32_t>(key & 0xffffffffu);
    }
  }
  if (total == 0) return std::nullopt;
  return std::make_pair(best_to, static_cast<double>(best_count) /
                                     static_cast<double>(total));
}

}  // namespace bqs
