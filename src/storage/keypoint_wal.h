// Durable key-point write-ahead log: the storage layer's crash-safety
// primitive for fleet ingest.
//
// The compressors throw away most of the input by design; the key points
// they *keep* are the only copy of the trajectory. A process crash between
// "compressor emitted the point" and "TrajectoryStore persisted it" loses
// paper-precious data. KeyPointWal closes that window: sessions append
// checkpoints (batches of emitted key points) to an append-only segmented
// log, and after a crash WalReader::Recover() replays every checkpoint
// that was acked — or says exactly what was lost, and why.
//
// Ack contract. Append() returning OK means the checkpoint is durable *to
// the level the configured WalDurability promises*:
//
//   kNone             in the writer's user-space buffer only; a process
//                     crash can lose it (cheapest; for tests and bulk jobs)
//   kFlushEveryBatch  handed to the OS (write(2)); survives a process
//                     crash, not a machine crash
//   kFsyncEveryBatch  fdatasync'd; survives power loss (the full contract)
//   kGroupCommit      handed to the OS immediately, fdatasync'd when
//                     group_commit_bytes accumulate or
//                     group_commit_interval_ms elapse — amortized
//                     durability with a bounded exposure window
//
// Fsync-gate semantics: any write or sync failure — real or injected —
// kills the writer permanently (dead() goes true, every later Append
// returns IoError). After a failed fsync the durable state of the file is
// unknowable (the kernel may have dropped the dirty pages), so continuing
// to ack would forge the contract above. The process-level analogue of
// "crash and recover" is: open a new KeyPointWal after running recovery.
//
// Recovery semantics (WalReader): segments replay in filename order,
// records in offset order. Per segment:
//   * unreadable/garbled segment header -> the whole segment is skipped
//     (segments_bad_header; an empty file is clean, not an error);
//   * a record whose CRC fails in the *last* segment -> torn tail: the log
//     is truncated at that record (torn_tail) — the classic crashed-mid-
//     write shape, nothing after it can be trusted;
//   * a record whose CRC fails in a *closed* segment -> isolated media
//     corruption: that record is skipped (bad_crc) and replay continues at
//     the next length-prefixed boundary;
//   * a length prefix that is implausible (> kMaxRecordPayload) or runs
//     past the segment -> framing is gone; the rest of the segment is
//     dropped (torn_tail);
//   * fewer than 8 bytes left at the segment end -> partial record header
//     (short_header);
//   * a CRC-valid record whose payload fails varint decode -> bad_varint,
//     skipped (the framing is still trustworthy).
// Every byte of every segment ends up either inside a recovered record or
// counted in bytes_dropped — the crash-point sweep test asserts that
// identity at every possible truncation offset. Recover() never crashes
// on arbitrary bytes (the fuzz_wal_recovery harness's invariant).
//
// Threading: Append/Sync/Close are safe to call from any thread (shard
// workers checkpoint concurrently); an internal mutex serializes them.
// Recovery is single-threaded and static — it touches no writer state.
#ifndef BQS_STORAGE_KEYPOINT_WAL_H_
#define BQS_STORAGE_KEYPOINT_WAL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/wal_format.h"
#include "trajectory/point.h"

namespace bqs {

class FaultInjector;  // common/fault_injector.h (test harness; see lint)

/// How much durability an OK Append() promises. See the file comment.
enum class WalDurability : uint8_t {
  kNone,            ///< Buffered in user space; flushed at buffer_bytes.
  kFlushEveryBatch, ///< write(2) per append; survives process crash.
  kFsyncEveryBatch, ///< fdatasync per append; survives power loss.
  kGroupCommit,     ///< write(2) per append; fdatasync by bytes/time.
};

struct KeyPointWalOptions {
  /// Directory holding the segment files; created (recursively) by Open().
  std::string dir;

  WalDurability durability = WalDurability::kFlushEveryBatch;

  /// Quantization stamped into every segment header. Changing it between
  /// runs over the same directory is unsupported (recovery dequantizes
  /// with the newest header's quanta); start a fresh directory instead.
  wal::WalQuantization quant;

  /// Rotate to a new segment once the current one reaches this size. A
  /// single oversized record still goes out whole (rotation happens on
  /// the boundary before it).
  std::size_t segment_bytes = std::size_t{4} << 20;

  /// kNone only: user-space buffer size that triggers a flush.
  std::size_t buffer_bytes = std::size_t{64} << 10;

  /// kGroupCommit: fdatasync once this many unsynced bytes accumulate...
  std::size_t group_commit_bytes = std::size_t{256} << 10;
  /// ...or this much wall time has passed since the last sync.
  double group_commit_interval_ms = 50.0;

  /// Deterministic fault injection for tests; nullptr in production. Sites
  /// consulted: kWriteShortAtByte (per flush), kFsyncFail (per sync),
  /// kCrashAfterWrite (per append). Must outlive the writer.
  FaultInjector* fault_injector = nullptr;
};

/// Writer-side counters, snapshotted via KeyPointWal::stats().
struct KeyPointWalStats {
  uint64_t checkpoints_appended = 0;  ///< Acked Append() calls.
  uint64_t points_appended = 0;       ///< Key points inside acked appends.
  uint64_t bytes_appended = 0;        ///< Record bytes encoded (not headers).
  uint64_t segments_opened = 0;
  uint64_t flushes = 0;               ///< write(2) batches handed to the OS.
  uint64_t syncs = 0;                 ///< Successful fdatasync calls.
  uint64_t faults_injected = 0;       ///< Injector firings the writer obeyed.
  /// What killed the writer, when dead: the fsync-gate cause, recorded at
  /// the moment of death so a monitor sees *why* without scraping append
  /// errors. kOk/empty while healthy.
  StatusCode last_error_code = StatusCode::kOk;
  std::string last_error;

  /// True while the fsync gate has not tripped (the snapshot-side view of
  /// KeyPointWal::dead(), so one stats() call answers "is it fine and if
  /// not, why not").
  bool healthy() const { return last_error_code == StatusCode::kOk; }
};

/// What an acked Append() promises, in replayable terms: the sequence the
/// record carries and where the segment stream ends once the record is
/// fully encoded. The crash-point sweep uses end_offset to know, for every
/// byte-level truncation, exactly which acked prefix must survive.
struct WalAppendAck {
  uint64_t seq = 0;
  uint64_t segment_index = 0;    ///< 1-based segment file number.
  uint64_t end_offset = 0;       ///< Segment byte size after this record.
};

class KeyPointWal {
 public:
  explicit KeyPointWal(const KeyPointWalOptions& options);
  /// Best-effort Close(); errors are swallowed (call Close() to see them).
  ~KeyPointWal();

  KeyPointWal(const KeyPointWal&) = delete;
  KeyPointWal& operator=(const KeyPointWal&) = delete;

  /// Creates the directory if needed and opens a fresh segment numbered
  /// past any existing one (existing segments are never appended to —
  /// their tails may be torn, and recovery owns them). `first_seq` seeds
  /// the sequence counter; pass WalRecovery::next_seq when resuming a
  /// directory after recovery.
  Status Open(uint64_t first_seq = 1);

  /// Quantizes and appends one checkpoint for `device`, assigning the next
  /// sequence number. OK means durable per the configured WalDurability
  /// (the ack contract above). `keys` must be non-empty.
  Result<WalAppendAck> Append(DeviceId device, std::span<const KeyPoint> keys);

  /// Appends an already-quantized checkpoint (seq is still writer-assigned;
  /// checkpoint.seq is ignored). The hook the round-trip fuzzer and the
  /// format tests drive directly.
  Result<WalAppendAck> AppendCheckpoint(const wal::WalCheckpoint& checkpoint);

  /// Flushes the user-space buffer and fdatasyncs, regardless of policy.
  Status Sync();

  /// Flushes, then syncs under kFsyncEveryBatch/kGroupCommit (matching the
  /// policy's promise; call Sync() first for more), then closes the file.
  /// Idempotent; a dead writer closes its descriptor and returns OK (the
  /// error was already reported by the append that died).
  Status Close();

  /// True once a write or sync failed (real or injected): the fsync gate.
  bool dead() const;
  /// Sequence the next acked Append() will carry.
  uint64_t next_seq() const;
  /// 1-based index of the segment currently being appended to (0 before
  /// Open()). The compactor's bound: passing this to CompactOnce() drains
  /// every *sealed* segment and leaves the active one alone.
  uint64_t current_segment_index() const;
  KeyPointWalStats stats() const;
  const KeyPointWalOptions& options() const { return options_; }

 private:
  Status AppendLocked(DeviceId device, std::span<const wal::WalPoint> points,
                      WalAppendAck* ack) REQUIRES(mu_);
  Status OpenSegmentLocked() REQUIRES(mu_);
  Status RotateLocked() REQUIRES(mu_);
  /// Hands the user-space buffer to the OS (kWriteShortAtByte hook).
  Status FlushLocked() REQUIRES(mu_);
  /// fdatasync (kFsyncFail hook). Precondition: buffer already flushed.
  Status SyncLocked() REQUIRES(mu_);
  Status WriteFully(const char* data, std::size_t size) REQUIRES(mu_);
  void MarkDeadLocked(const Status& cause) REQUIRES(mu_);

  const KeyPointWalOptions options_;

  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
  bool open_ GUARDED_BY(mu_) = false;
  bool dead_ GUARDED_BY(mu_) = false;
  uint64_t segment_index_ GUARDED_BY(mu_) = 0;
  /// Bytes of the current segment already written to the OS.
  uint64_t segment_written_ GUARDED_BY(mu_) = 0;
  /// Encoded-but-unwritten bytes (kNone batching; transient otherwise).
  std::string buffer_ GUARDED_BY(mu_);
  /// Bytes written since the last successful fdatasync.
  uint64_t unsynced_bytes_ GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point last_sync_ GUARDED_BY(mu_);
  uint64_t next_seq_ GUARDED_BY(mu_) = 1;
  KeyPointWalStats stats_ GUARDED_BY(mu_);
  std::string scratch_ GUARDED_BY(mu_);  ///< Record encoding, reused.
  /// Quantized-point staging for Append(), reused.
  std::vector<wal::WalPoint> points_scratch_ GUARDED_BY(mu_);
};

/// Per-reason accounting of what recovery replayed and what it could not.
/// The invariant the crash tests gate on: every byte of every scanned
/// segment is either inside a record counted in records_recovered or
/// counted in bytes_dropped — loss is never silent.
struct WalRecoveryReport {
  uint64_t segments_scanned = 0;
  /// Segments whose header was missing or garbled; their entire contents
  /// (all bytes past offset 0) go to bytes_dropped. Empty files are clean.
  uint64_t segments_bad_header = 0;
  uint64_t records_recovered = 0;
  /// Tail-truncation events: a CRC-failed record in the last segment, or
  /// lost framing (implausible/overrunning length) in any segment. Counts
  /// events, not records — the torn region's record count is unknowable.
  uint64_t torn_tail = 0;
  /// CRC-failed records skipped individually in closed segments.
  uint64_t bad_crc = 0;
  /// CRC-valid records whose payload failed to decode; skipped.
  uint64_t bad_varint = 0;
  /// Partial (< 8 byte) record header at the end of a segment's data.
  uint64_t short_header = 0;
  /// Bytes not attributable to any recovered record.
  uint64_t bytes_dropped = 0;

  /// Countable records lost (excludes records inside torn regions).
  uint64_t records_skipped() const { return bad_crc + bad_varint; }
  /// Loss events of any kind.
  uint64_t loss_events() const {
    return segments_bad_header + torn_tail + bad_crc + bad_varint +
           short_header;
  }
  /// True iff the log replayed with no loss of any kind.
  bool clean() const { return loss_events() == 0 && bytes_dropped == 0; }
};

/// Everything Recover() gives back.
struct WalRecovery {
  std::vector<wal::WalCheckpoint> checkpoints;  ///< In replay order.
  WalRecoveryReport report;
  /// Quantization from the newest valid segment header (defaults if none).
  wal::WalQuantization quant;
  /// Safe seed for KeyPointWal::Open() on the same directory: one past the
  /// highest sequence seen (recovered records and segment headers both).
  uint64_t next_seq = 1;
};

/// One "wal-NNNNNN.log" file found in a WAL directory.
struct WalSegmentFile {
  uint64_t index = 0;
  std::string path;
};

/// Segment files under `dir`, sorted by index. Foreign names are ignored
/// silently; two dirty-directory shapes are quarantined *deterministically*
/// and reported through `ignored` (when non-null):
///   * stale "*.tmp" files — debris of a crashed atomic publication;
///   * duplicate segment indices ("wal-1.log" vs "wal-000001.log" both
///     parse to 1): the lexicographically smallest path wins, the rest are
///     ignored — replaying both would double every record in them.
/// NotFound when the directory does not exist.
Result<std::vector<WalSegmentFile>> ListWalSegments(
    const std::string& dir, std::vector<std::string>* ignored = nullptr);

class WalReader {
 public:
  /// Replays one whole segment image (header included). `is_last` selects
  /// torn-tail truncation (last segment) vs isolated-corruption skipping
  /// (closed segments) on CRC failure. Appends recovered checkpoints to
  /// `out` and accumulates into `report`. Total: consumes arbitrary bytes
  /// without crashing — the fuzzer drives this exact entry point.
  static void RecoverSegment(std::span<const uint8_t> segment, bool is_last,
                             std::vector<wal::WalCheckpoint>* out,
                             WalRecoveryReport* report);

  /// Replays every segment under `dir` in filename order. IoError only for
  /// environmental failures (unreadable directory or file); corruption is
  /// never an error — it is what the report is for.
  static Result<WalRecovery> Recover(const std::string& dir);
};

}  // namespace bqs

#endif  // BQS_STORAGE_KEYPOINT_WAL_H_
