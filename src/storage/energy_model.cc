#include "storage/energy_model.h"

#include <algorithm>

namespace bqs {

double DailyEnergyJoules(const EnergyModel& model, const PlatformSpec& spec,
                         double compression_rate) {
  const double fixes_per_day = 86400.0 / spec.sample_interval_s;
  const double stored_bytes_per_day =
      fixes_per_day * compression_rate * spec.bytes_per_sample;
  double joules = model.idle_j_per_day;
  joules += fixes_per_day * model.gps_fix_j;
  joules += fixes_per_day * model.cpu_j_per_point;
  joules += stored_bytes_per_day * model.flash_j_per_byte;
  // Every stored byte is eventually offloaded once.
  joules += stored_bytes_per_day * model.radio_j_per_byte;
  return joules;
}

double EstimateEnergyLimitedDays(const EnergyModel& model,
                                 const PlatformSpec& spec,
                                 double compression_rate) {
  const double net_per_day =
      DailyEnergyJoules(model, spec, compression_rate) -
      model.solar_j_per_day;
  if (net_per_day <= 0.0) return 1.0e9;  // harvest-sustained
  return model.battery_j / net_per_day;
}

double EstimateCombinedDays(const EnergyModel& model,
                            const PlatformSpec& spec,
                            double compression_rate) {
  return std::min(EstimateOperationalDays(spec, compression_rate),
                  EstimateEnergyLimitedDays(model, spec, compression_rate));
}

}  // namespace bqs
