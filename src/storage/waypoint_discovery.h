// Waypoint discovery and trip prediction over compressed trajectories —
// the paper's future-work application (Conclusion: "Individualized
// trajectory and waypoint discovery can also be used to facilitate
// advanced applications like real-time trip prediction").
//
// Works directly on compressed output: a stay reveals itself in the key
// points as consecutive keys that are spatially close but temporally far
// apart (the compressor collapses the dwell into one segment). Stays are
// clustered online into waypoints; transitions between waypoints feed a
// first-order trip model used for next-destination prediction.
//
// Caveat: shape-only compression can merge "long stay, then straight
// travel" into a single segment, hiding the stay boundary entirely. Feed
// this class the output of TimeSensitiveCompressor (which must keep a key
// at every stop to honour its spatio-temporal bound) when stays matter —
// examples/trip_database and the tests demonstrate the combination.
#ifndef BQS_STORAGE_WAYPOINT_DISCOVERY_H_
#define BQS_STORAGE_WAYPOINT_DISCOVERY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "storage/grid_index.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// A recurrent stay region (roost, forage site, home, work...).
struct Waypoint {
  uint32_t id = 0;
  Vec2 center;                  ///< Running mean of member stays.
  uint64_t visits = 0;          ///< Stays absorbed into this waypoint.
  double total_dwell_s = 0.0;   ///< Accumulated stay time.
  double first_seen_t = 0.0;
  double last_seen_t = 0.0;
};

/// One observed transition between waypoints.
struct Trip {
  uint32_t from = 0;
  uint32_t to = 0;
  double depart_t = 0.0;
  double arrive_t = 0.0;
};

/// Options for detection and clustering.
struct WaypointOptions {
  /// A key-pair counts as a stay when the object moved less than this...
  double max_stay_drift_m = 120.0;
  /// ...while at least this much time passed.
  double min_dwell_s = 600.0;
  /// Stays within this distance of a waypoint's center join it.
  double cluster_radius_m = 250.0;
};

/// Online waypoint discoverer. Feed compressed trajectories in order.
class WaypointDiscovery {
 public:
  explicit WaypointDiscovery(const WaypointOptions& options = {});

  /// Consumes one compressed trajectory (its key points in stream order).
  void Observe(const CompressedTrajectory& compressed);

  /// Waypoints with at least `min_visits` stays, most-visited first.
  std::vector<Waypoint> Waypoints(uint64_t min_visits = 1) const;

  /// All observed waypoint-to-waypoint trips, in order.
  const std::vector<Trip>& trips() const { return trips_; }

  /// Most likely next waypoint after leaving `from`, with its empirical
  /// probability; nullopt when `from` has no outgoing trips.
  std::optional<std::pair<uint32_t, double>> PredictNext(
      uint32_t from) const;

  std::size_t waypoint_count() const { return waypoints_.size(); }

 private:
  /// Returns the waypoint id a stay at `pos` belongs to, creating one if
  /// no existing center is within the cluster radius.
  uint32_t Assign(Vec2 pos);
  void RecordStay(Vec2 pos, double t_start, double t_end);

  WaypointOptions options_;
  std::vector<Waypoint> waypoints_;
  GridIndex index_;  ///< Waypoint centers (id -> insertion position).
  /// Transition counts keyed by (from << 32 | to).
  std::unordered_map<uint64_t, uint64_t> transitions_;
  std::vector<Trip> trips_;
  bool have_last_waypoint_ = false;
  uint32_t last_waypoint_ = 0;
  double last_departure_t_ = 0.0;
};

}  // namespace bqs

#endif  // BQS_STORAGE_WAYPOINT_DISCOVERY_H_
