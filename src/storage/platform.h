// Camazotz platform model (paper Section III-A): CC430F5137 SoC with 32 KB
// ROM / 4 KB RAM and 1 MB external flash shared among sensor streams. The
// operational-time estimate reproduces Table II: how many days of fixes fit
// into the GPS storage budget at a given compression rate.
#ifndef BQS_STORAGE_PLATFORM_H_
#define BQS_STORAGE_PLATFORM_H_

#include <cstdint>

namespace bqs {

/// Hardware and data-budget parameters (defaults = the paper's Table II
/// setup: 50 KB of the 1 MB flash for GPS, 12-byte samples, 1 fix/minute).
struct PlatformSpec {
  double flash_bytes = 1.0e6;
  double gps_budget_bytes = 50.0e3;
  double bytes_per_sample = 12.0;  ///< latitude, longitude, timestamp.
  double sample_interval_s = 60.0;
  double ram_bytes = 4096.0;
  double rom_bytes = 32768.0;
};

/// Days until the GPS budget fills with no data loss, given the fraction of
/// points kept by compression (Table II). Lower rate -> longer operation.
double EstimateOperationalDays(const PlatformSpec& spec,
                               double compression_rate);

/// Byte-level accounting of the on-flash GPS area: a tiny simulator used by
/// the device examples to show storage exhaustion with/without compression.
class FlashStore {
 public:
  explicit FlashStore(const PlatformSpec& spec) : spec_(spec) {}

  /// Records one retained sample; false when the GPS budget is exhausted.
  bool AppendSample() {
    if (used_bytes_ + spec_.bytes_per_sample > spec_.gps_budget_bytes) {
      return false;
    }
    used_bytes_ += spec_.bytes_per_sample;
    ++samples_;
    return true;
  }

  /// Marks the store offloaded to a base station (budget reclaimed).
  void Offload() {
    used_bytes_ = 0.0;
    samples_ = 0;
  }

  double used_bytes() const { return used_bytes_; }
  uint64_t samples() const { return samples_; }
  double utilization() const {
    return spec_.gps_budget_bytes > 0.0 ? used_bytes_ / spec_.gps_budget_bytes
                                        : 1.0;
  }
  const PlatformSpec& spec() const { return spec_; }

 private:
  PlatformSpec spec_;
  double used_bytes_ = 0.0;
  uint64_t samples_ = 0;
};

}  // namespace bqs

#endif  // BQS_STORAGE_PLATFORM_H_
