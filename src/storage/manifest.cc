#include "storage/manifest.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/fault_injector.h"

namespace bqs {

namespace {

/// errno -> status, with disk-full made classifiable: IsEnospc() keys on
/// the "ENOSPC" prefix, which this is the only real-I/O source of.
Status ErrnoError(const std::string& what) {
  if (errno == ENOSPC) {
    return Status::IoError("ENOSPC: " + what + ": " + std::strerror(errno));
  }
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status InjectedEnospc(const std::string& what) {
  return Status::IoError("ENOSPC (injected): " + what);
}

Status WriteFully(int fd, const char* data, std::size_t size,
                  const std::string& what) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write " + what);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& dir) {
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd < 0) return ErrnoError("open dir " + dir);
  if (::fsync(dirfd) != 0) {
    const Status st = ErrnoError("fsync dir " + dir);
    (void)::close(dirfd);
    return st;
  }
  (void)::close(dirfd);
  return Status::OK();
}

}  // namespace

// --- codec ----------------------------------------------------------------

void EncodeManifest(const Manifest& manifest, std::string* out) {
  const std::size_t base = out->size();
  wal::PutU32(out, manifestfmt::kManifestMagic);
  wal::PutU16(out, manifestfmt::kManifestFormatVersion);
  wal::PutU16(out, 0);  // flags
  wal::PutF64(out, manifest.quant.time_quantum);
  wal::PutF64(out, manifest.quant.coord_quantum);
  wal::PutU64(out, manifest.last_applied_seq);
  wal::PutU32(out, static_cast<uint32_t>(manifest.files.size()));
  const uint32_t crc =
      crc32c::Value(out->data() + base, manifestfmt::kManifestHeaderBytes - 4);
  wal::PutU32(out, crc32c::Mask(crc));

  std::string payload;
  for (const ManifestBlockFile& file : manifest.files) {
    payload.clear();
    varint::PutU64(&payload, file.file_id);
    varint::PutU64(&payload, file.file_bytes);
    varint::PutU64(&payload, file.blocks.size());
    for (const ManifestBlockEntry& block : file.blocks) {
      varint::PutU64(&payload, block.offset);
      blk::PutBlockMeta(&payload, block.meta);
    }
    std::string header;
    wal::PutU32(&header, static_cast<uint32_t>(payload.size()));
    uint32_t entry_crc = crc32c::Value(header.data(), 4);
    entry_crc = crc32c::Extend(entry_crc, payload.data(), payload.size());
    wal::PutU32(&header, crc32c::Mask(entry_crc));
    out->append(header);
    out->append(payload);
  }
}

bool DecodeManifest(std::span<const uint8_t> bytes, Manifest* out) {
  if (bytes.size() < manifestfmt::kManifestHeaderBytes) return false;
  const uint8_t* p = bytes.data();
  if (wal::GetU32(p) != manifestfmt::kManifestMagic) return false;
  const uint32_t stored = crc32c::Unmask(
      wal::GetU32(p + manifestfmt::kManifestHeaderBytes - 4));
  if (crc32c::Value(p, manifestfmt::kManifestHeaderBytes - 4) != stored) {
    return false;
  }
  Manifest m;
  const uint16_t version = wal::GetU16(p + 4);
  if (version == 0 || version > manifestfmt::kManifestFormatVersion) {
    return false;
  }
  m.quant.time_quantum = wal::GetF64(p + 8);
  m.quant.coord_quantum = wal::GetF64(p + 16);
  if (!(std::isfinite(m.quant.time_quantum) && m.quant.time_quantum > 0.0 &&
        std::isfinite(m.quant.coord_quantum) &&
        m.quant.coord_quantum > 0.0)) {
    return false;
  }
  m.last_applied_seq = wal::GetU64(p + 24);
  const uint32_t file_count = wal::GetU32(p + 32);
  // Each entry costs >= 8 framing bytes; a count that cannot fit is
  // corruption without further reads.
  if (file_count >
      (bytes.size() - manifestfmt::kManifestHeaderBytes) /
              manifestfmt::kEntryHeaderBytes +
          1) {
    return false;
  }

  std::size_t offset = manifestfmt::kManifestHeaderBytes;
  m.files.reserve(file_count);
  for (uint32_t i = 0; i < file_count; ++i) {
    const std::size_t rem = bytes.size() - offset;
    if (rem < manifestfmt::kEntryHeaderBytes) return false;
    const uint8_t* const e = bytes.data() + offset;
    const std::size_t len = wal::GetU32(e);
    const uint32_t entry_stored = crc32c::Unmask(wal::GetU32(e + 4));
    if (len > manifestfmt::kMaxEntryPayload ||
        len > rem - manifestfmt::kEntryHeaderBytes) {
      return false;
    }
    uint32_t entry_crc = crc32c::Value(e, 4);
    entry_crc = crc32c::Extend(
        entry_crc, e + manifestfmt::kEntryHeaderBytes, len);
    if (entry_crc != entry_stored) return false;

    const uint8_t* q = e + manifestfmt::kEntryHeaderBytes;
    const uint8_t* const qend = q + len;
    ManifestBlockFile file;
    uint64_t block_count = 0;
    if (!varint::GetU64(&q, qend, &file.file_id)) return false;
    if (!varint::GetU64(&q, qend, &file.file_bytes)) return false;
    if (!varint::GetU64(&q, qend, &block_count)) return false;
    // A block entry is >= 12 varint bytes (offset + 11 meta fields).
    if (block_count > len / 12 + 1) return false;
    file.blocks.reserve(static_cast<std::size_t>(block_count));
    for (uint64_t b = 0; b < block_count; ++b) {
      ManifestBlockEntry block;
      if (!varint::GetU64(&q, qend, &block.offset)) return false;
      if (!blk::GetBlockMeta(&q, qend, &block.meta)) return false;
      file.blocks.push_back(block);
    }
    if (q != qend) return false;  // trailing garbage inside the entry
    m.files.push_back(std::move(file));
    offset += manifestfmt::kEntryHeaderBytes + len;
  }
  if (offset != bytes.size()) return false;  // trailing bytes after entries
  *out = std::move(m);
  return true;
}

// --- file naming ----------------------------------------------------------

std::string BlockFileName(uint64_t file_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "blk-%06llu.bqb",
                static_cast<unsigned long long>(file_id));
  return buf;
}

std::string BlockTempFileName(uint64_t file_id) {
  // WriteFileAtomic's temp naming (final + ".tmp"), so the quarantine scan
  // for stale "*.tmp" covers crashed block publication too.
  return BlockFileName(file_id) + ".tmp";
}

bool ParseBlockFileName(const std::string& name, uint64_t* file_id) {
  constexpr std::string_view kPrefix = "blk-";
  constexpr std::string_view kSuffix = ".bqb";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  const std::string digits = name.substr(
      kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty() || digits.size() > 19) return false;  // > 19: overflow
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *file_id = value;
  return true;
}

// --- I/O ------------------------------------------------------------------

Status WriteFileAtomic(const std::string& dir, const std::string& final_name,
                       std::string_view bytes, FaultInjector* injector,
                       const std::function<Status()>& crash_point) {
  const std::string tmp_path = dir + "/" + final_name + ".tmp";
  const std::string final_path = dir + "/" + final_name;

  if (injector != nullptr &&
      injector->ShouldFire(FaultSite::kEnospc)) {
    return InjectedEnospc("write " + tmp_path);
  }
  const int fd = ::open(tmp_path.c_str(),
                        O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open " + tmp_path);
  Status st = WriteFully(fd, bytes.data(), bytes.size(), tmp_path);
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoError("fsync " + tmp_path);
  if (::close(fd) != 0 && st.ok()) st = ErrnoError("close " + tmp_path);
  if (!st.ok()) return st;

  if (crash_point) BQS_RETURN_NOT_OK(crash_point());  // temp durable

  if (injector != nullptr &&
      injector->ShouldFire(FaultSite::kRenameFail)) {
    return Status::IoError("injected rename failure: " + tmp_path + " -> " +
                           final_path);
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoError("rename " + tmp_path + " -> " + final_path);
  }

  if (crash_point) BQS_RETURN_NOT_OK(crash_point());  // renamed, dir not yet

  BQS_RETURN_NOT_OK(FsyncDir(dir));
  return Status::OK();
}

Status WriteManifest(const std::string& dir, const Manifest& manifest,
                     FaultInjector* injector,
                     const std::function<Status()>& crash_point) {
  std::string bytes;
  EncodeManifest(manifest, &bytes);
  return WriteFileAtomic(dir, kManifestName, bytes, injector, crash_point);
}

Status ReadManifest(const std::string& dir, Manifest* out) {
  const std::string path = dir + "/" + kManifestName;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no manifest at " + path);
  std::string bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("size " + path + " failed");
  in.seekg(0, std::ios::beg);
  bytes.resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(bytes.data(), size)) {
    return Status::IoError("read " + path + " failed");
  }
  if (!DecodeManifest(
          {reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()},
          out)) {
    return Status::Corruption("manifest at " + path + " failed to decode");
  }
  return Status::OK();
}

bool IsEnospc(const Status& status) {
  return !status.ok() && status.message().rfind("ENOSPC", 0) == 0;
}

}  // namespace bqs
