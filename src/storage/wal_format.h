// On-disk format of the key-point write-ahead log (storage/keypoint_wal.h).
//
// A WAL directory holds numbered segment files ("wal-000001.log", ...).
// Each segment is:
//
//   SegmentHeader (36 bytes, fixed):
//     magic         u32  LE   'BQWL'
//     version       u16  LE   kWalFormatVersion
//     flags         u16  LE   reserved, 0
//     time_quantum  f64  LE   seconds per timestamp quantum
//     coord_quantum f64  LE   metres per coordinate quantum
//     first_seq     u64  LE   sequence of the first record appended here
//     crc           u32  LE   masked CRC32C over the 32 bytes above
//
//   Record (length-prefixed, append-only):
//     length  u32 LE   payload byte count (<= kMaxRecordPayload)
//     crc     u32 LE   masked CRC32C over (length bytes || payload)
//     payload          varint-coded checkpoint, below
//
//   Record payload — one checkpoint (the WAL's ack unit: a batch of key
//   points one device session emitted):
//     device  varint
//     seq     varint   writer-assigned, monotone across segments
//     count   varint   number of points, >= 1
//     point0: index varint, then qt, qx, qy zigzag-varint (absolute)
//     pointK: dindex, dqt, dqx, dqy zigzag-varint (delta from point K-1)
//
// Why this shape:
//   * Coordinates and timestamps are *quantized* (llround(v / quantum))
//     before encoding, per the split-error-budget design: the compressor
//     guarantees eps_simplify, the log adds at most quantum/2 per axis,
//     and the combined bound eps_simplify + coord_quantum is what the
//     recovery tests assert end to end. Quantized integers also make
//     "bit-exact recovery" a well-defined property — the WalCheckpoint
//     *is* the acked unit, identical before write and after replay.
//   * Delta + zigzag + varint makes consecutive key points cheap: a key
//     point every few seconds and tens of metres encodes in 6-10 bytes
//     against 32 raw.
//   * The CRC covers the length prefix too, so a corrupted length cannot
//     silently reframe the record stream; CRCs are stored masked
//     (common/crc32c.h) so CRC-bearing payloads never checksum to
//     themselves.
//
// Everything here is pure encode/decode over in-memory buffers — no file
// I/O — so the recovery fuzzer and the crash-point sweep drive the exact
// production codec without touching a filesystem.
#ifndef BQS_STORAGE_WAL_FORMAT_H_
#define BQS_STORAGE_WAL_FORMAT_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/varint.h"
#include "trajectory/point.h"

namespace bqs {
namespace wal {

inline constexpr uint32_t kWalMagic = 0x4c575142u;  // 'BQWL' little-endian
inline constexpr uint16_t kWalFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 36;
inline constexpr std::size_t kRecordHeaderBytes = 8;  // length + crc
/// Upper bound on one record payload; a decoded length above this is
/// corruption by definition, which bounds how far a corrupt length can
/// send the reader.
inline constexpr std::size_t kMaxRecordPayload = std::size_t{1} << 24;

/// The split error budget's quantization half: how coarsely the log stores
/// what the compressor kept. The defaults (1 mm, 1 ms) are effectively
/// lossless for GPS-scale data while still letting deltas encode short.
struct WalQuantization {
  double coord_quantum = 1e-3;  ///< Metres per coordinate step.
  double time_quantum = 1e-3;   ///< Seconds per timestamp step.

  constexpr bool operator==(const WalQuantization&) const = default;
};

/// One key point in quantized (on-disk) form.
struct WalPoint {
  uint64_t index = 0;  ///< Position in the device's original stream.
  int64_t qt = 0;      ///< Timestamp in time_quantum steps.
  int64_t qx = 0;      ///< Coordinates in coord_quantum steps.
  int64_t qy = 0;

  constexpr bool operator==(const WalPoint&) const = default;
};

/// The WAL's ack unit: a batch of key points from one device session.
/// What Append() persists and Recover() returns — comparing these for
/// equality is the "bit-exact recovery" the crash tests gate on.
struct WalCheckpoint {
  DeviceId device = 0;
  uint64_t seq = 0;  ///< Writer-assigned, monotone across segments.
  std::vector<WalPoint> points;

  bool operator==(const WalCheckpoint&) const = default;
};

/// One value in quantum steps, clamped to a range llround handles without
/// tripping the implementation-defined overflow path (non-finite or
/// astronomically scaled inputs saturate instead — the codec must stay
/// total even when a fuzzer invents the coordinates).
inline int64_t QuantizeValue(double v, double quantum) {
  const double scaled = v / quantum;
  constexpr double kLimit = 4.6e18;  // < 2^62, comfortably inside int64
  if (!(scaled > -kLimit)) return static_cast<int64_t>(-kLimit);
  if (!(scaled < kLimit)) return static_cast<int64_t>(kLimit);
  return std::llround(scaled);
}

/// Quantizes one emitted key point. Velocity is deliberately dropped: it
/// is derivable context, not paper-precious state.
inline WalPoint Quantize(const KeyPoint& key, const WalQuantization& q) {
  WalPoint p;
  p.index = key.index;
  p.qt = QuantizeValue(key.point.t, q.time_quantum);
  p.qx = QuantizeValue(key.point.pos.x, q.coord_quantum);
  p.qy = QuantizeValue(key.point.pos.y, q.coord_quantum);
  return p;
}

/// Reconstructs the key point a WalPoint stands for. Within quantum/2 of
/// the original on every axis, by construction.
inline KeyPoint Dequantize(const WalPoint& p, const WalQuantization& q) {
  KeyPoint key;
  key.index = p.index;
  key.point.t = static_cast<double>(p.qt) * q.time_quantum;
  key.point.pos.x = static_cast<double>(p.qx) * q.coord_quantum;
  key.point.pos.y = static_cast<double>(p.qy) * q.coord_quantum;
  return key;
}

// --- little-endian fixed-width primitives ---------------------------------

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

inline double GetF64(const uint8_t* p) {
  const uint64_t bits = GetU64(p);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

// --- segment header -------------------------------------------------------

/// Appends a segment header for a segment whose first record will carry
/// sequence `first_seq`.
inline void EncodeSegmentHeader(const WalQuantization& quant,
                                uint64_t first_seq, std::string* out) {
  const std::size_t base = out->size();
  PutU32(out, kWalMagic);
  PutU16(out, kWalFormatVersion);
  PutU16(out, 0);  // flags
  PutF64(out, quant.time_quantum);
  PutF64(out, quant.coord_quantum);
  PutU64(out, first_seq);
  const uint32_t crc =
      crc32c::Value(out->data() + base, kSegmentHeaderBytes - 4);
  PutU32(out, crc32c::Mask(crc));
}

struct SegmentHeaderInfo {
  uint16_t version = 0;
  WalQuantization quant;
  uint64_t first_seq = 0;
};

/// Validates and decodes a segment header. False on short input, bad
/// magic, bad CRC, an unknown (future) version, or non-finite/non-positive
/// quanta — a header this reader cannot trust end to end.
inline bool DecodeSegmentHeader(std::span<const uint8_t> bytes,
                                SegmentHeaderInfo* info) {
  if (bytes.size() < kSegmentHeaderBytes) return false;
  const uint8_t* p = bytes.data();
  if (GetU32(p) != kWalMagic) return false;
  const uint32_t stored = crc32c::Unmask(GetU32(p + kSegmentHeaderBytes - 4));
  if (crc32c::Value(p, kSegmentHeaderBytes - 4) != stored) return false;
  SegmentHeaderInfo out;
  out.version = GetU16(p + 4);
  if (out.version == 0 || out.version > kWalFormatVersion) return false;
  out.quant.time_quantum = GetF64(p + 8);
  out.quant.coord_quantum = GetF64(p + 16);
  out.first_seq = GetU64(p + 24);
  if (!(std::isfinite(out.quant.time_quantum) &&
        out.quant.time_quantum > 0.0 &&
        std::isfinite(out.quant.coord_quantum) &&
        out.quant.coord_quantum > 0.0)) {
    return false;
  }
  *info = out;
  return true;
}

// --- records --------------------------------------------------------------

/// a - b and a + b in wrapping (unsigned) arithmetic, so arbitrary int64
/// patterns — which the recovery fuzzer synthesizes on purpose — round-trip
/// without signed overflow.
inline int64_t WrapDiff(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

/// Appends the length-prefixed, CRC-stamped encoding of one checkpoint
/// given as its parts (the writer's no-copy path). Precondition: `points`
/// is non-empty.
inline void EncodeRecord(DeviceId device, uint64_t seq,
                         std::span<const WalPoint> points, std::string* out) {
  std::string payload;
  varint::PutU64(&payload, device);
  varint::PutU64(&payload, seq);
  varint::PutU64(&payload, points.size());
  WalPoint prev;
  bool first = true;
  for (const WalPoint& p : points) {
    if (first) {
      varint::PutU64(&payload, p.index);
      varint::PutI64(&payload, p.qt);
      varint::PutI64(&payload, p.qx);
      varint::PutI64(&payload, p.qy);
      first = false;
    } else {
      // Index deltas are encoded zigzag too: stream indices are monotone
      // in practice, but the codec must not rely on it. Deltas are
      // computed in unsigned arithmetic so adversarial WalPoint values
      // (the round-trip fuzzer feeds raw int64 patterns) wrap instead of
      // overflowing; decode reverses with the same wrapping adds.
      varint::PutI64(&payload,
                     static_cast<int64_t>(p.index - prev.index));
      varint::PutI64(&payload, WrapDiff(p.qt, prev.qt));
      varint::PutI64(&payload, WrapDiff(p.qx, prev.qx));
      varint::PutI64(&payload, WrapDiff(p.qy, prev.qy));
    }
    prev = p;
  }

  std::string header;
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  uint32_t crc = crc32c::Value(header.data(), 4);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  PutU32(&header, crc32c::Mask(crc));
  out->append(header);
  out->append(payload);
}

/// Appends the length-prefixed, CRC-stamped encoding of one checkpoint.
/// Precondition: checkpoint.points is non-empty.
inline void EncodeRecord(const WalCheckpoint& checkpoint, std::string* out) {
  EncodeRecord(checkpoint.device, checkpoint.seq, checkpoint.points, out);
}

/// Decodes a record payload (the bytes after the 8-byte record header).
/// False when the varint stream is truncated, malformed, or disagrees
/// with its own point count — the payload passed its CRC, so a decode
/// failure here means an encoder bug or a deliberately crafted record;
/// either way the reader must reject it cleanly, never trust it.
inline bool DecodeRecordPayload(std::span<const uint8_t> payload,
                                WalCheckpoint* out) {
  const uint8_t* p = payload.data();
  const uint8_t* end = p + payload.size();
  uint64_t device = 0, seq = 0, count = 0;
  if (!varint::GetU64(&p, end, &device)) return false;
  if (!varint::GetU64(&p, end, &seq)) return false;
  if (!varint::GetU64(&p, end, &count)) return false;
  // Each point needs >= 4 payload bytes; anything claiming more points
  // than could fit is malformed without further reads (this also caps the
  // reserve below, so a lying count cannot balloon memory).
  if (count == 0 || count > payload.size() / 4 + 1) return false;
  WalCheckpoint checkpoint;
  checkpoint.device = device;
  checkpoint.seq = seq;
  checkpoint.points.reserve(static_cast<std::size_t>(count));
  WalPoint prev;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t dindex = 0, dqt = 0, dqx = 0, dqy = 0;
    WalPoint point;
    if (i == 0) {
      uint64_t index = 0;
      if (!varint::GetU64(&p, end, &index)) return false;
      if (!varint::GetI64(&p, end, &point.qt)) return false;
      if (!varint::GetI64(&p, end, &point.qx)) return false;
      if (!varint::GetI64(&p, end, &point.qy)) return false;
      point.index = index;
    } else {
      if (!varint::GetI64(&p, end, &dindex)) return false;
      if (!varint::GetI64(&p, end, &dqt)) return false;
      if (!varint::GetI64(&p, end, &dqx)) return false;
      if (!varint::GetI64(&p, end, &dqy)) return false;
      point.index = prev.index + static_cast<uint64_t>(dindex);
      point.qt = WrapAdd(prev.qt, dqt);
      point.qx = WrapAdd(prev.qx, dqx);
      point.qy = WrapAdd(prev.qy, dqy);
    }
    checkpoint.points.push_back(point);
    prev = point;
  }
  if (p != end) return false;  // trailing garbage inside a CRC-valid record
  *out = std::move(checkpoint);
  return true;
}

}  // namespace wal
}  // namespace bqs

#endif  // BQS_STORAGE_WAL_FORMAT_H_
