// On-device historical trajectory store with the two maintenance
// procedures of paper Section V-F:
//   * error-bounded merging — a newly compressed segment that an existing
//     stored segment already represents (within a merge tolerance) is
//     deduplicated into a visit count instead of being stored again;
//   * error-bounded ageing — stored polylines are re-compressed with a
//     greater tolerance, trading accuracy of old trips for space.
#ifndef BQS_STORAGE_TRAJECTORY_STORE_H_
#define BQS_STORAGE_TRAJECTORY_STORE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/line2.h"
#include "storage/grid_index.h"
#include "storage/keypoint_wal.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// Symmetric Hausdorff distance between segments (a,b) and (c,d) under the
/// point-to-segment metric; 0 means identical paths. Orientation-agnostic.
double SegmentHausdorff(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Options for the store.
struct TrajectoryStoreOptions {
  /// Max Hausdorff distance at which a new segment is considered a repeat
  /// of a stored one ("minor error" in the paper).
  double merge_tolerance = 15.0;
  /// Grid cell size for the similar-segment index; should be >= the merge
  /// tolerance scale.
  double cell_size = 500.0;
  /// Storage accounting: bytes per stored key point.
  double bytes_per_point = 12.0;
};

/// A stored compressed segment (one edge of a stored polyline).
struct StoredSegment {
  uint64_t id = 0;
  Vec2 a, b;
  double t_start = 0.0, t_end = 0.0;
  uint32_t visits = 1;  ///< 1 + number of merges absorbed.
  bool alive = true;
};

/// Historical trajectory database. Single-threaded, bounded only by what is
/// appended (the device offloads before exhaustion; see FlashStore).
class TrajectoryStore {
 public:
  explicit TrajectoryStore(const TrajectoryStoreOptions& options = {});

  /// Outcome of appending one compressed trajectory.
  struct AppendResult {
    std::size_t segments_in = 0;      ///< Segments in the new trajectory.
    std::size_t segments_merged = 0;  ///< Deduplicated into stored ones.
    std::size_t segments_stored = 0;  ///< Newly stored.
  };

  /// What a WAL replay rebuilt (RestoreFromWal).
  struct WalRestoreStats {
    std::size_t checkpoints_applied = 0;
    std::size_t points_restored = 0;
    std::size_t trajectories_appended = 0;
    /// Recovered runs of < 2 points — nothing storable (e.g. a session
    /// whose only other key points were lost with the torn tail).
    std::size_t short_trajectories = 0;
    AppendResult totals;  ///< Summed over every appended trajectory.
  };

  /// Appends a compressed trajectory, merging duplicate segments.
  /// Errors instead of silently storing nothing: InvalidArgument for an
  /// empty or single-point trajectory (no segment to store) and for
  /// non-finite coordinates or timestamps (they would poison the spatial
  /// index and every Hausdorff comparison after them). On error the store
  /// is unchanged.
  Result<AppendResult> Append(const CompressedTrajectory& compressed);

  /// Rebuilds store contents from a WAL replay: recovered checkpoints are
  /// grouped per device in sequence order, dequantized with the
  /// recovery's quanta, split into trajectories where the key-point index
  /// restarts (a new session), and appended. Deviation bound of the
  /// rebuilt polylines: compressor epsilon + coord_quantum (the split
  /// error budget). The store need not be empty — replay after a partial
  /// flush just merges duplicates, by design.
  Result<WalRestoreStats> RestoreFromWal(const WalRecovery& recovery);

  /// Re-compresses every stored polyline with tolerance `new_epsilon`
  /// (Douglas-Peucker over the stored key points) and rebuilds the index.
  /// Returns the number of key points dropped. The deviation of the old key
  /// points from the aged polylines is bounded by new_epsilon.
  std::size_t Age(double new_epsilon);

  std::size_t segment_count() const { return live_segments_; }
  uint64_t visit_total() const { return visit_total_; }
  /// Bytes the store would occupy on flash.
  double StorageBytes() const;
  const std::vector<StoredSegment>& segments() const { return segments_; }

  /// Stored segment ids whose path is within `tolerance` of (a, b).
  std::vector<uint64_t> FindSimilar(Vec2 a, Vec2 b, double tolerance) const;

 private:
  uint64_t NextId() { return next_id_++; }
  void IndexSegment(const StoredSegment& seg);

  TrajectoryStoreOptions options_;
  std::vector<StoredSegment> segments_;  ///< Dense; `alive` marks deletion.
  /// Polylines as runs of segment ids, used by ageing.
  std::vector<std::vector<uint64_t>> polylines_;
  GridIndex index_;
  uint64_t next_id_ = 0;
  std::size_t live_segments_ = 0;
  uint64_t visit_total_ = 0;
};

}  // namespace bqs

#endif  // BQS_STORAGE_TRAJECTORY_STORE_H_
