// Energy model for the tracking platform — extends the paper's Table II
// storage analysis with an energy-limited operational-time estimate in the
// spirit of the Camazotz paper ([4]: multimodal duty cycling) and [1]
// (energy-efficient localisation). Constants are illustrative defaults for
// a CC430-class tag with a small Li-ion cell; all are overridable.
#ifndef BQS_STORAGE_ENERGY_MODEL_H_
#define BQS_STORAGE_ENERGY_MODEL_H_

#include "storage/platform.h"

namespace bqs {

/// Energy budget and per-operation costs (joules).
struct EnergyModel {
  /// Usable battery capacity: ~180 mAh at 3.7 V, 60% usable.
  double battery_j = 1440.0;
  /// Mean solar harvest per day. Camazotz carries a solar panel (paper
  /// Section III-A); the default roughly covers the 1 fix/min duty cycle,
  /// which is exactly why the paper treats *storage* as the binding
  /// constraint. Set to 0 to model a panel-less tag.
  double solar_j_per_day = 450.0;
  /// One GPS fix (warm acquisition + tracking window): ~30 mA * 3 V * 3 s.
  double gps_fix_j = 0.27;
  /// CPU cost of compressing one point (FBQS-class arithmetic on a 16-bit
  /// MCU at a few MHz).
  double cpu_j_per_point = 2.0e-4;
  /// Writing one byte to external flash.
  double flash_j_per_byte = 2.5e-6;
  /// Radio offload cost per byte (short-range 900 MHz).
  double radio_j_per_byte = 4.0e-6;
  /// Baseline sleep/housekeeping draw per day (~8 uA average).
  double idle_j_per_day = 7.0;
};

/// Per-day energy spend (joules/day) for a given platform duty cycle and
/// compression rate. Compression shrinks flash and radio traffic but not
/// the GPS or CPU cost of acquiring/processing every fix.
double DailyEnergyJoules(const EnergyModel& model, const PlatformSpec& spec,
                         double compression_rate);

/// Days until the battery is exhausted (solar harvest subtracts from the
/// daily spend; returns +inf-like large value when harvest covers it).
double EstimateEnergyLimitedDays(const EnergyModel& model,
                                 const PlatformSpec& spec,
                                 double compression_rate);

/// Min(storage-limited, energy-limited) operational days — the full
/// platform picture.
double EstimateCombinedDays(const EnergyModel& model,
                            const PlatformSpec& spec,
                            double compression_rate);

}  // namespace bqs

#endif  // BQS_STORAGE_ENERGY_MODEL_H_
