// Uniform-grid spatial index over 2-D points: the lookup structure behind
// the trajectory store's similar-segment search (merging, Section V-F).
// Cells are hashed, so memory scales with occupied cells only.
#ifndef BQS_STORAGE_GRID_INDEX_H_
#define BQS_STORAGE_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/vec2.h"

namespace bqs {

/// Maps ids to positions and answers radius queries in O(cells touched).
class GridIndex {
 public:
  /// `cell_size` should be on the order of typical query radii.
  explicit GridIndex(double cell_size);

  void Insert(uint64_t id, Vec2 pos);

  /// Removes one (id, pos) entry; false when absent.
  bool Remove(uint64_t id, Vec2 pos);

  /// Ids with position within `radius` of `center` (exact filter after the
  /// cell sweep). Duplicate-free if ids were inserted once.
  std::vector<uint64_t> Query(Vec2 center, double radius) const;

  std::size_t size() const { return size_; }
  void Clear();

 private:
  struct Entry {
    uint64_t id;
    Vec2 pos;
  };

  int64_t CellKey(Vec2 pos) const;

  double cell_size_;
  std::unordered_map<int64_t, std::vector<Entry>> cells_;
  std::size_t size_ = 0;
};

}  // namespace bqs

#endif  // BQS_STORAGE_GRID_INDEX_H_
