// On-disk format of compacted key-point block files — the read-optimized
// half of the storage layer (the WAL in wal_format.h is the write half).
//
// A block directory holds numbered block files ("blk-000001.bqb", ...)
// published by the compactor (storage/compaction.h) plus a MANIFEST
// (storage/manifest.h) naming which of them are live. Each block file is:
//
//   BlockFileHeader (32 bytes, fixed):
//     magic         u32  LE   'BQBK'
//     version       u16  LE   kBlockFormatVersion
//     flags         u16  LE   reserved, 0
//     time_quantum  f64  LE   seconds per timestamp quantum
//     coord_quantum f64  LE   metres per coordinate quantum
//     block_count   u32  LE   device blocks that follow
//     crc           u32  LE   masked CRC32C over the 28 bytes above
//
//   Block (length-prefixed, CRC-framed exactly like a WAL record):
//     length  u32 LE   payload byte count (<= kMaxBlockPayload)
//     crc     u32 LE   masked CRC32C over (length bytes || payload)
//     payload          one device's column runs, below
//
//   Block payload — whole WAL checkpoints from ONE device, seq-ascending,
//   re-encoded columnarly:
//     device            varint
//     checkpoint_count  varint   n >= 1
//     seq run:          seq0 varint, then zigzag deltas (n-1 values)
//     count run:        points per checkpoint, varint each (all >= 1)
//     point_count       varint   sum of the count run (redundancy check)
//     bbox:             qt_min qt_max qx_min qx_max qy_min qy_max, zigzag
//     index column:     index0 varint, then zigzag deltas over ALL points
//     qt column:        qt0 zigzag, then wrap-safe zigzag deltas
//     qx column, qy column: same shape
//
// Why this shape:
//   * Checkpoint boundaries (seq + count runs) survive compaction, so a
//     decoded block reproduces the exact WalCheckpoints the WAL acked —
//     "recovers exactly the acked prefix" stays a bit-level equality even
//     after records have been rewritten into blocks.
//   * Columns delta-code the whole device run, not per-checkpoint, so the
//     first point of checkpoint k is a small delta from the last point of
//     checkpoint k-1 — denser than the WAL's per-record absolutes.
//   * The bbox + time span ride in the payload (and again in the MANIFEST)
//     so a range query prunes blocks without decoding them; the decoder
//     re-derives both and rejects a payload whose embedded metadata lies.
//   * Same CRC/length framing and masking discipline as the WAL: a
//     corrupted length can never silently reframe the stream.
//
// Everything here is pure encode/decode over in-memory buffers — no file
// I/O — so fuzz_manifest_recovery drives the exact production codec.
#ifndef BQS_STORAGE_BLOCK_FORMAT_H_
#define BQS_STORAGE_BLOCK_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/varint.h"
#include "storage/wal_format.h"
#include "trajectory/point.h"

namespace bqs {
namespace blk {

inline constexpr uint32_t kBlockMagic = 0x4b425142u;  // 'BQBK' little-endian
inline constexpr uint16_t kBlockFormatVersion = 1;
inline constexpr std::size_t kBlockFileHeaderBytes = 32;
inline constexpr std::size_t kBlockHeaderBytes = 8;  // length + crc
/// Upper bound on one block payload; a decoded length above this is
/// corruption by definition.
inline constexpr std::size_t kMaxBlockPayload = std::size_t{1} << 26;

/// Everything a reader may know about a block without decoding it — the
/// pruning metadata. Stored inside the block payload (self-check) and in
/// the MANIFEST entry referencing the block (prune without I/O).
struct BlockMeta {
  DeviceId device = 0;
  uint64_t first_seq = 0;         ///< Lowest WAL checkpoint seq inside.
  uint64_t last_seq = 0;          ///< Highest.
  uint64_t checkpoint_count = 0;
  uint64_t point_count = 0;
  int64_t qt_min = 0, qt_max = 0;  ///< Time span, quantum steps.
  int64_t qx_min = 0, qx_max = 0;  ///< Bounding box, quantum steps.
  int64_t qy_min = 0, qy_max = 0;

  constexpr bool operator==(const BlockMeta&) const = default;
};

/// Appends the varint encoding of a BlockMeta (manifest entries and the
/// block payload share this layout).
inline void PutBlockMeta(std::string* out, const BlockMeta& m) {
  varint::PutU64(out, m.device);
  varint::PutU64(out, m.first_seq);
  varint::PutU64(out, m.last_seq);
  varint::PutU64(out, m.checkpoint_count);
  varint::PutU64(out, m.point_count);
  varint::PutI64(out, m.qt_min);
  varint::PutI64(out, m.qt_max);
  varint::PutI64(out, m.qx_min);
  varint::PutI64(out, m.qx_max);
  varint::PutI64(out, m.qy_min);
  varint::PutI64(out, m.qy_max);
}

inline bool GetBlockMeta(const uint8_t** pos, const uint8_t* end,
                         BlockMeta* m) {
  uint64_t device = 0;
  if (!varint::GetU64(pos, end, &device)) return false;
  m->device = device;
  if (!varint::GetU64(pos, end, &m->first_seq)) return false;
  if (!varint::GetU64(pos, end, &m->last_seq)) return false;
  if (!varint::GetU64(pos, end, &m->checkpoint_count)) return false;
  if (!varint::GetU64(pos, end, &m->point_count)) return false;
  if (!varint::GetI64(pos, end, &m->qt_min)) return false;
  if (!varint::GetI64(pos, end, &m->qt_max)) return false;
  if (!varint::GetI64(pos, end, &m->qx_min)) return false;
  if (!varint::GetI64(pos, end, &m->qx_max)) return false;
  if (!varint::GetI64(pos, end, &m->qy_min)) return false;
  if (!varint::GetI64(pos, end, &m->qy_max)) return false;
  return true;
}

/// Computes the pruning metadata of a run of checkpoints (all from one
/// device, seq-ascending). Precondition: at least one checkpoint, every
/// checkpoint non-empty.
inline BlockMeta ComputeBlockMeta(
    std::span<const wal::WalCheckpoint> checkpoints) {
  BlockMeta m;
  m.device = checkpoints.front().device;
  m.first_seq = checkpoints.front().seq;
  m.last_seq = checkpoints.back().seq;
  m.checkpoint_count = checkpoints.size();
  bool first = true;
  for (const wal::WalCheckpoint& c : checkpoints) {
    m.point_count += c.points.size();
    for (const wal::WalPoint& p : c.points) {
      if (first) {
        m.qt_min = m.qt_max = p.qt;
        m.qx_min = m.qx_max = p.qx;
        m.qy_min = m.qy_max = p.qy;
        first = false;
        continue;
      }
      if (p.qt < m.qt_min) m.qt_min = p.qt;
      if (p.qt > m.qt_max) m.qt_max = p.qt;
      if (p.qx < m.qx_min) m.qx_min = p.qx;
      if (p.qx > m.qx_max) m.qx_max = p.qx;
      if (p.qy < m.qy_min) m.qy_min = p.qy;
      if (p.qy > m.qy_max) m.qy_max = p.qy;
    }
  }
  return m;
}

// --- block file header ----------------------------------------------------

struct BlockFileHeaderInfo {
  uint16_t version = 0;
  wal::WalQuantization quant;
  uint32_t block_count = 0;
};

inline void EncodeBlockFileHeader(const wal::WalQuantization& quant,
                                  uint32_t block_count, std::string* out) {
  const std::size_t base = out->size();
  wal::PutU32(out, kBlockMagic);
  wal::PutU16(out, kBlockFormatVersion);
  wal::PutU16(out, 0);  // flags
  wal::PutF64(out, quant.time_quantum);
  wal::PutF64(out, quant.coord_quantum);
  wal::PutU32(out, block_count);
  const uint32_t crc =
      crc32c::Value(out->data() + base, kBlockFileHeaderBytes - 4);
  wal::PutU32(out, crc32c::Mask(crc));
}

/// Validates and decodes a block file header; same trust rules as the WAL
/// segment header (bad magic/CRC/version/quanta all reject).
inline bool DecodeBlockFileHeader(std::span<const uint8_t> bytes,
                                  BlockFileHeaderInfo* info) {
  if (bytes.size() < kBlockFileHeaderBytes) return false;
  const uint8_t* p = bytes.data();
  if (wal::GetU32(p) != kBlockMagic) return false;
  const uint32_t stored =
      crc32c::Unmask(wal::GetU32(p + kBlockFileHeaderBytes - 4));
  if (crc32c::Value(p, kBlockFileHeaderBytes - 4) != stored) return false;
  BlockFileHeaderInfo out;
  out.version = wal::GetU16(p + 4);
  if (out.version == 0 || out.version > kBlockFormatVersion) return false;
  out.quant.time_quantum = wal::GetF64(p + 8);
  out.quant.coord_quantum = wal::GetF64(p + 16);
  out.block_count = wal::GetU32(p + 24);
  if (!(std::isfinite(out.quant.time_quantum) &&
        out.quant.time_quantum > 0.0 &&
        std::isfinite(out.quant.coord_quantum) &&
        out.quant.coord_quantum > 0.0)) {
    return false;
  }
  *info = out;
  return true;
}

// --- blocks ---------------------------------------------------------------

/// Appends the length-prefixed, CRC-stamped columnar encoding of one
/// device's checkpoint run and reports its pruning metadata. Precondition:
/// `checkpoints` non-empty, every checkpoint non-empty, one device,
/// seq-ascending (the compactor's grouping guarantees all three).
inline void EncodeBlock(std::span<const wal::WalCheckpoint> checkpoints,
                        std::string* out, BlockMeta* meta = nullptr) {
  const BlockMeta m = ComputeBlockMeta(checkpoints);
  if (meta != nullptr) *meta = m;

  std::string payload;
  varint::PutU64(&payload, m.device);
  varint::PutU64(&payload, m.checkpoint_count);
  uint64_t prev_seq = 0;
  bool first = true;
  for (const wal::WalCheckpoint& c : checkpoints) {
    if (first) {
      varint::PutU64(&payload, c.seq);
      first = false;
    } else {
      varint::PutI64(&payload,
                     static_cast<int64_t>(c.seq - prev_seq));
    }
    prev_seq = c.seq;
  }
  for (const wal::WalCheckpoint& c : checkpoints) {
    varint::PutU64(&payload, c.points.size());
  }
  varint::PutU64(&payload, m.point_count);
  varint::PutI64(&payload, m.qt_min);
  varint::PutI64(&payload, m.qt_max);
  varint::PutI64(&payload, m.qx_min);
  varint::PutI64(&payload, m.qx_max);
  varint::PutI64(&payload, m.qy_min);
  varint::PutI64(&payload, m.qy_max);

  // Column runs: delta-coded across the whole device run, wrap-safe like
  // the WAL record codec (hostile int64 patterns must round-trip).
  wal::WalPoint prev;
  bool first_point = true;
  for (int column = 0; column < 4; ++column) {
    prev = wal::WalPoint{};
    first_point = true;
    for (const wal::WalCheckpoint& c : checkpoints) {
      for (const wal::WalPoint& p : c.points) {
        if (first_point) {
          switch (column) {
            case 0: varint::PutU64(&payload, p.index); break;
            case 1: varint::PutI64(&payload, p.qt); break;
            case 2: varint::PutI64(&payload, p.qx); break;
            case 3: varint::PutI64(&payload, p.qy); break;
          }
          first_point = false;
        } else {
          switch (column) {
            case 0:
              varint::PutI64(
                  &payload, static_cast<int64_t>(p.index - prev.index));
              break;
            case 1:
              varint::PutI64(&payload, wal::WrapDiff(p.qt, prev.qt));
              break;
            case 2:
              varint::PutI64(&payload, wal::WrapDiff(p.qx, prev.qx));
              break;
            case 3:
              varint::PutI64(&payload, wal::WrapDiff(p.qy, prev.qy));
              break;
          }
        }
        prev = p;
      }
    }
  }

  std::string header;
  wal::PutU32(&header, static_cast<uint32_t>(payload.size()));
  uint32_t crc = crc32c::Value(header.data(), 4);
  crc = crc32c::Extend(crc, payload.data(), payload.size());
  wal::PutU32(&header, crc32c::Mask(crc));
  out->append(header);
  out->append(payload);
}

/// Decodes a block payload (the bytes after the 8-byte framing header)
/// back into the exact checkpoints it was encoded from. Total on arbitrary
/// bytes; false on truncation, malformed varints, count implausibility, or
/// embedded metadata that disagrees with the decoded points — a CRC-valid
/// payload that lies about its own bbox/counts is rejected, never trusted.
inline bool DecodeBlockPayload(std::span<const uint8_t> payload,
                               BlockMeta* meta,
                               std::vector<wal::WalCheckpoint>* out) {
  const uint8_t* p = payload.data();
  const uint8_t* end = p + payload.size();
  uint64_t device = 0, ckpt_count = 0;
  if (!varint::GetU64(&p, end, &device)) return false;
  if (!varint::GetU64(&p, end, &ckpt_count)) return false;
  // Each checkpoint costs >= 2 payload bytes (seq + count varints); each
  // point >= 4 bytes (one per column). Lying counts are rejected before
  // any reserve so they cannot balloon memory.
  if (ckpt_count == 0 || ckpt_count > payload.size() / 2 + 1) return false;

  std::vector<uint64_t> seqs;
  seqs.reserve(static_cast<std::size_t>(ckpt_count));
  uint64_t prev_seq = 0;
  for (uint64_t i = 0; i < ckpt_count; ++i) {
    if (i == 0) {
      if (!varint::GetU64(&p, end, &prev_seq)) return false;
    } else {
      int64_t d = 0;
      if (!varint::GetI64(&p, end, &d)) return false;
      prev_seq += static_cast<uint64_t>(d);
    }
    seqs.push_back(prev_seq);
  }

  std::vector<uint64_t> counts;
  counts.reserve(static_cast<std::size_t>(ckpt_count));
  uint64_t total_from_counts = 0;
  for (uint64_t i = 0; i < ckpt_count; ++i) {
    uint64_t c = 0;
    if (!varint::GetU64(&p, end, &c)) return false;
    if (c == 0 || c > payload.size() / 4 + 1) return false;
    total_from_counts += c;
    if (total_from_counts > payload.size() / 4 + 1) return false;
    counts.push_back(c);
  }

  uint64_t point_count = 0;
  if (!varint::GetU64(&p, end, &point_count)) return false;
  if (point_count != total_from_counts) return false;

  BlockMeta m;
  m.device = device;
  m.first_seq = seqs.front();
  m.last_seq = seqs.back();
  m.checkpoint_count = ckpt_count;
  m.point_count = point_count;
  if (!varint::GetI64(&p, end, &m.qt_min)) return false;
  if (!varint::GetI64(&p, end, &m.qt_max)) return false;
  if (!varint::GetI64(&p, end, &m.qx_min)) return false;
  if (!varint::GetI64(&p, end, &m.qx_max)) return false;
  if (!varint::GetI64(&p, end, &m.qy_min)) return false;
  if (!varint::GetI64(&p, end, &m.qy_max)) return false;

  std::vector<wal::WalPoint> points(static_cast<std::size_t>(point_count));
  for (int column = 0; column < 4; ++column) {
    wal::WalPoint prev;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i == 0) {
        switch (column) {
          case 0: {
            uint64_t index = 0;
            if (!varint::GetU64(&p, end, &index)) return false;
            points[i].index = index;
            break;
          }
          case 1:
            if (!varint::GetI64(&p, end, &points[i].qt)) return false;
            break;
          case 2:
            if (!varint::GetI64(&p, end, &points[i].qx)) return false;
            break;
          case 3:
            if (!varint::GetI64(&p, end, &points[i].qy)) return false;
            break;
        }
      } else {
        int64_t d = 0;
        if (!varint::GetI64(&p, end, &d)) return false;
        switch (column) {
          case 0:
            points[i].index = points[i - 1].index + static_cast<uint64_t>(d);
            break;
          case 1:
            points[i].qt = wal::WrapAdd(points[i - 1].qt, d);
            break;
          case 2:
            points[i].qx = wal::WrapAdd(points[i - 1].qx, d);
            break;
          case 3:
            points[i].qy = wal::WrapAdd(points[i - 1].qy, d);
            break;
        }
      }
    }
  }
  if (p != end) return false;  // trailing garbage inside a CRC-valid block

  std::vector<wal::WalCheckpoint> checkpoints;
  checkpoints.reserve(static_cast<std::size_t>(ckpt_count));
  std::size_t offset = 0;
  for (uint64_t i = 0; i < ckpt_count; ++i) {
    wal::WalCheckpoint c;
    c.device = device;
    c.seq = seqs[static_cast<std::size_t>(i)];
    const std::size_t n =
        static_cast<std::size_t>(counts[static_cast<std::size_t>(i)]);
    c.points.assign(points.begin() + static_cast<std::ptrdiff_t>(offset),
                    points.begin() + static_cast<std::ptrdiff_t>(offset + n));
    offset += n;
    checkpoints.push_back(std::move(c));
  }

  // The embedded metadata must match what the points actually say; a
  // mismatch means an encoder bug or a crafted payload, and trusting a
  // lying bbox would make pruning silently wrong.
  if (ComputeBlockMeta(checkpoints) != m) return false;

  if (meta != nullptr) *meta = m;
  *out = std::move(checkpoints);
  return true;
}

}  // namespace blk
}  // namespace bqs

#endif  // BQS_STORAGE_BLOCK_FORMAT_H_
