#include "storage/platform.h"

namespace bqs {

double EstimateOperationalDays(const PlatformSpec& spec,
                               double compression_rate) {
  if (compression_rate <= 0.0) compression_rate = 1e-12;
  const double samples_per_day = 86400.0 / spec.sample_interval_s;
  const double stored_bytes_per_day =
      samples_per_day * compression_rate * spec.bytes_per_sample;
  if (stored_bytes_per_day <= 0.0) return 0.0;
  return spec.gps_budget_bytes / stored_bytes_per_day;
}

}  // namespace bqs
