#include "storage/keypoint_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/fault_injector.h"

namespace bqs {

namespace {

std::string SegmentFileName(uint64_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(index));
  return buf;
}

/// Parses "wal-NNNNNN.log" (any digit count) into its index; false for
/// every other name — foreign files in the directory are simply ignored.
bool ParseSegmentFileName(const std::string& name, uint64_t* index) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  const std::string digits =
      name.substr(kPrefix.size(),
                  name.size() - kPrefix.size() - kSuffix.size());
  if (digits.empty() || digits.size() > 19) return false;  // > 19: overflow
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *index = value;
  return true;
}

Status ErrnoError(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

/// Reads a whole file into `out`. Segments are bounded by the writer's
/// rotation threshold, so whole-file images are the right granularity for
/// recovery (and what RecoverSegment wants anyway).
Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("open " + path + " for read failed");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return Status::IoError("size " + path + " failed");
  in.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  if (size > 0 && !in.read(out->data(), size)) {
    return Status::IoError("read " + path + " failed");
  }
  return Status::OK();
}

}  // namespace

// --- writer ---------------------------------------------------------------

KeyPointWal::KeyPointWal(const KeyPointWalOptions& options)
    : options_(options) {}

KeyPointWal::~KeyPointWal() { (void)Close(); }

Status KeyPointWal::Open(uint64_t first_seq) {
  MutexLock lock(mu_);
  if (open_) return Status::Internal("wal already open");
  if (dead_) return Status::IoError("key-point wal is dead");
  if (options_.dir.empty()) {
    return Status::InvalidArgument("wal dir is empty");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IoError("create " + options_.dir + ": " + ec.message());
  }
  // Existing segments are recovery's property: their tails may be torn, so
  // this writer starts a fresh segment numbered past all of them.
  uint64_t max_index = 0;
  Result<std::vector<WalSegmentFile>> existing = ListWalSegments(options_.dir);
  if (!existing.ok()) return existing.status();
  for (const WalSegmentFile& file : existing.value()) {
    max_index = std::max(max_index, file.index);
  }
  segment_index_ = max_index;  // OpenSegmentLocked() pre-increments
  next_seq_ = first_seq == 0 ? 1 : first_seq;
  last_sync_ = std::chrono::steady_clock::now();
  BQS_RETURN_NOT_OK(OpenSegmentLocked());
  open_ = true;
  return Status::OK();
}

Result<WalAppendAck> KeyPointWal::Append(DeviceId device,
                                         std::span<const KeyPoint> keys) {
  MutexLock lock(mu_);
  points_scratch_.clear();
  points_scratch_.reserve(keys.size());
  for (const KeyPoint& key : keys) {
    points_scratch_.push_back(wal::Quantize(key, options_.quant));
  }
  WalAppendAck ack;
  const Status st = AppendLocked(device, points_scratch_, &ack);
  if (!st.ok()) return st;
  return ack;
}

Result<WalAppendAck> KeyPointWal::AppendCheckpoint(
    const wal::WalCheckpoint& checkpoint) {
  MutexLock lock(mu_);
  WalAppendAck ack;
  const Status st = AppendLocked(checkpoint.device, checkpoint.points, &ack);
  if (!st.ok()) return st;
  return ack;
}

Status KeyPointWal::AppendLocked(DeviceId device,
                                 std::span<const wal::WalPoint> points,
                                 WalAppendAck* ack) {
  if (dead_) return Status::IoError("key-point wal is dead (fsync gate)");
  if (!open_) return Status::Internal("wal not open");
  if (points.empty()) {
    return Status::InvalidArgument("empty wal checkpoint");
  }
  scratch_.clear();
  wal::EncodeRecord(device, next_seq_, points, &scratch_);

  // Rotate on the boundary *before* a record that would overflow the
  // segment — a record is never split across segments, so an oversized one
  // simply makes its segment oversized.
  const uint64_t logical = segment_written_ + buffer_.size();
  if (logical + scratch_.size() > options_.segment_bytes &&
      logical > wal::kSegmentHeaderBytes) {
    BQS_RETURN_NOT_OK(RotateLocked());
  }
  buffer_.append(scratch_);

  switch (options_.durability) {
    case WalDurability::kNone:
      if (buffer_.size() >= options_.buffer_bytes) {
        BQS_RETURN_NOT_OK(FlushLocked());
      }
      break;
    case WalDurability::kFlushEveryBatch:
      BQS_RETURN_NOT_OK(FlushLocked());
      break;
    case WalDurability::kFsyncEveryBatch:
      BQS_RETURN_NOT_OK(FlushLocked());
      BQS_RETURN_NOT_OK(SyncLocked());
      break;
    case WalDurability::kGroupCommit: {
      BQS_RETURN_NOT_OK(FlushLocked());
      bool due = unsynced_bytes_ >= options_.group_commit_bytes;
      if (!due && options_.group_commit_interval_ms >= 0.0) {
        const auto elapsed =
            std::chrono::steady_clock::now() - last_sync_;
        due = std::chrono::duration<double, std::milli>(elapsed).count() >=
              options_.group_commit_interval_ms;
      }
      if (due) BQS_RETURN_NOT_OK(SyncLocked());
      break;
    }
  }

  if (FaultInjector* const injector = options_.fault_injector) {
    if (injector->ShouldFire(FaultSite::kCrashAfterWrite)) {
      // The record went out per policy; the "process" dies right here:
      // user-space bytes not yet written vanish, nothing more is flushed
      // or synced, and the append is not acked (a real crash loses the
      // ack in flight the same way).
      ++stats_.faults_injected;
      buffer_.clear();
      const Status st = Status::IoError("injected crash after write");
      MarkDeadLocked(st);
      return st;
    }
  }

  ack->seq = next_seq_++;
  ack->segment_index = segment_index_;
  ack->end_offset = segment_written_ + buffer_.size();
  ++stats_.checkpoints_appended;
  stats_.points_appended += points.size();
  stats_.bytes_appended += scratch_.size();
  return Status::OK();
}

Status KeyPointWal::OpenSegmentLocked() {
  ++segment_index_;
  const std::string path =
      options_.dir + "/" + SegmentFileName(segment_index_);
  // O_EXCL: Open() numbered this segment past every existing one, so a
  // collision means two writers own the directory — refuse, don't clobber.
  const int fd =
      ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoError("open " + path);
  fd_ = fd;
  segment_written_ = 0;
  ++stats_.segments_opened;
  // The header rides the normal buffered path so the policy's write and
  // fault behavior applies to it like to any record bytes.
  wal::EncodeSegmentHeader(options_.quant, next_seq_, &buffer_);
  if (options_.durability != WalDurability::kNone) {
    BQS_RETURN_NOT_OK(FlushLocked());
  }
  if (options_.durability == WalDurability::kFsyncEveryBatch ||
      options_.durability == WalDurability::kGroupCommit) {
    // Make the new directory entry itself durable: a crash that keeps the
    // inode but loses the name loses the data with it. Best-effort — the
    // data-path fsyncs are what gate the acks.
    const int dirfd =
        ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dirfd >= 0) {
      (void)::fsync(dirfd);
      (void)::close(dirfd);
    }
  }
  return Status::OK();
}

Status KeyPointWal::RotateLocked() {
  BQS_RETURN_NOT_OK(FlushLocked());
  if (options_.durability == WalDurability::kFsyncEveryBatch ||
      options_.durability == WalDurability::kGroupCommit) {
    // The segment is closed for good: its contents must be at the policy's
    // full durability before the writer moves on and never looks back.
    BQS_RETURN_NOT_OK(SyncLocked());
  }
  if (fd_ >= 0) {
    (void)::close(fd_);  // data already flushed/synced per policy
    fd_ = -1;
  }
  return OpenSegmentLocked();
}

Status KeyPointWal::FlushLocked() {
  if (buffer_.empty()) return Status::OK();
  if (FaultInjector* const injector = options_.fault_injector) {
    if (injector->ShouldFire(FaultSite::kWriteShortAtByte)) {
      // Torn write: the first `cut` pending bytes reach the OS, the rest
      // never will. Modulo pending+1 so a sweep's param can land anywhere
      // from "nothing written" to "all but the ack".
      ++stats_.faults_injected;
      const std::size_t cut = static_cast<std::size_t>(
          injector->param(FaultSite::kWriteShortAtByte) %
          (buffer_.size() + 1));
      const Status st = WriteFully(buffer_.data(), cut);
      if (st.ok()) {
        segment_written_ += cut;
        unsynced_bytes_ += cut;
      }
      buffer_.clear();
      const Status dead_st = Status::IoError("injected short write after " +
                                             std::to_string(cut) + " bytes");
      MarkDeadLocked(dead_st);
      return dead_st;
    }
  }
  const Status st = WriteFully(buffer_.data(), buffer_.size());
  if (!st.ok()) {
    MarkDeadLocked(st);
    return st;
  }
  segment_written_ += buffer_.size();
  unsynced_bytes_ += buffer_.size();
  buffer_.clear();
  ++stats_.flushes;
  return Status::OK();
}

Status KeyPointWal::SyncLocked() {
  if (FaultInjector* const injector = options_.fault_injector) {
    if (injector->ShouldFire(FaultSite::kFsyncFail)) {
      ++stats_.faults_injected;
      const Status st = Status::IoError("injected fsync failure");
      MarkDeadLocked(st);
      return st;
    }
  }
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
    const Status st = ErrnoError("fdatasync");
    MarkDeadLocked(st);
    return st;
  }
  unsynced_bytes_ = 0;
  last_sync_ = std::chrono::steady_clock::now();
  ++stats_.syncs;
  return Status::OK();
}

Status KeyPointWal::WriteFully(const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd_, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write");
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

void KeyPointWal::MarkDeadLocked(const Status& cause) {
  // The fsync gate: after a failed (or injected-failed) write or sync the
  // durable state is unknowable, so the writer never acks again. The
  // descriptor is closed without sync — trusting it further would be the
  // exact mistake the gate exists to prevent.
  dead_ = true;
  stats_.last_error_code =
      cause.ok() ? StatusCode::kIoError : cause.code();
  stats_.last_error = cause.message();
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

Status KeyPointWal::Sync() {
  MutexLock lock(mu_);
  if (dead_) return Status::IoError("key-point wal is dead (fsync gate)");
  if (!open_) return Status::Internal("wal not open");
  BQS_RETURN_NOT_OK(FlushLocked());
  return SyncLocked();
}

Status KeyPointWal::Close() {
  MutexLock lock(mu_);
  if (!open_) return Status::OK();
  open_ = false;
  if (dead_) return Status::OK();  // error already reported at the append
  Status st = FlushLocked();
  if (st.ok() && (options_.durability == WalDurability::kFsyncEveryBatch ||
                  options_.durability == WalDurability::kGroupCommit)) {
    st = SyncLocked();
  }
  if (fd_ >= 0) {
    if (::close(fd_) != 0 && st.ok()) st = ErrnoError("close");
    fd_ = -1;
  }
  return st;
}

bool KeyPointWal::dead() const {
  MutexLock lock(mu_);
  return dead_;
}

uint64_t KeyPointWal::next_seq() const {
  MutexLock lock(mu_);
  return next_seq_;
}

uint64_t KeyPointWal::current_segment_index() const {
  MutexLock lock(mu_);
  return segment_index_;
}

KeyPointWalStats KeyPointWal::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

// --- recovery -------------------------------------------------------------

Result<std::vector<WalSegmentFile>> ListWalSegments(
    const std::string& dir, std::vector<std::string>* ignored) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    if (ec == std::errc::no_such_file_or_directory) {
      return Status::NotFound("wal dir " + dir + " does not exist");
    }
    return Status::IoError("list " + dir + ": " + ec.message());
  }
  std::vector<WalSegmentFile> out;
  const std::filesystem::directory_iterator end;
  while (it != end) {
    const std::filesystem::directory_entry& entry = *it;
    const std::string name = entry.path().filename().string();
    uint64_t index = 0;
    if (ParseSegmentFileName(name, &index)) {
      out.push_back(WalSegmentFile{index, entry.path().string()});
    } else if (ignored != nullptr && name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // Debris of a crashed atomic publication sharing the directory.
      ignored->push_back(entry.path().string());
    }
    it.increment(ec);
    if (ec) return Status::IoError("list " + dir + ": " + ec.message());
  }
  // Index order; ties (e.g. "wal-1.log" vs "wal-000001.log") broken by
  // path so the winner is the same on every filesystem.
  std::sort(out.begin(), out.end(),
            [](const WalSegmentFile& a, const WalSegmentFile& b) {
              return a.index != b.index ? a.index < b.index : a.path < b.path;
            });
  // Duplicate indices carry the same records twice (a copy, a hard link, a
  // renamed zero-pad); replaying both would double-count. Keep the first
  // per index, quarantine the rest.
  std::size_t w = 0;
  for (std::size_t r = 0; r < out.size(); ++r) {
    if (w > 0 && out[r].index == out[w - 1].index) {
      if (ignored != nullptr) ignored->push_back(std::move(out[r].path));
      continue;
    }
    if (w != r) out[w] = std::move(out[r]);
    ++w;
  }
  out.resize(w);
  return out;
}

void WalReader::RecoverSegment(std::span<const uint8_t> segment, bool is_last,
                               std::vector<wal::WalCheckpoint>* out,
                               WalRecoveryReport* report) {
  ++report->segments_scanned;
  if (segment.empty()) return;  // crash before the header: clean, no data
  wal::SegmentHeaderInfo header;
  if (!wal::DecodeSegmentHeader(segment, &header)) {
    // Nothing after an untrusted header can be framed: drop the segment.
    ++report->segments_bad_header;
    report->bytes_dropped += segment.size();
    return;
  }
  std::size_t offset = wal::kSegmentHeaderBytes;
  while (offset < segment.size()) {
    const std::size_t rem = segment.size() - offset;
    if (rem < wal::kRecordHeaderBytes) {
      ++report->short_header;  // partial record header: a torn final write
      report->bytes_dropped += rem;
      return;
    }
    const uint8_t* const p = segment.data() + offset;
    const std::size_t len = wal::GetU32(p);
    const uint32_t stored_crc = crc32c::Unmask(wal::GetU32(p + 4));
    if (len > wal::kMaxRecordPayload ||
        len > rem - wal::kRecordHeaderBytes) {
      // Implausible or overrunning length: framing is lost and there is no
      // way to resynchronize, in any segment. Everything from here on is
      // a torn (or trashed) tail.
      ++report->torn_tail;
      report->bytes_dropped += rem;
      return;
    }
    const std::size_t record_bytes = wal::kRecordHeaderBytes + len;
    uint32_t crc = crc32c::Value(p, 4);
    crc = crc32c::Extend(crc, p + wal::kRecordHeaderBytes, len);
    if (crc != stored_crc) {
      if (is_last) {
        // The crashed-mid-write shape: truncate at the first bad CRC.
        // (An isolated flip earlier in the live segment truncates too —
        // torn and flipped are indistinguishable without a seal record.)
        ++report->torn_tail;
        report->bytes_dropped += rem;
        return;
      }
      // Closed segment: the writer sealed it whole, so a bad CRC here is
      // isolated media corruption. Skip the record, keep replaying.
      ++report->bad_crc;
      report->bytes_dropped += record_bytes;
      offset += record_bytes;
      continue;
    }
    wal::WalCheckpoint checkpoint;
    if (!wal::DecodeRecordPayload({p + wal::kRecordHeaderBytes, len},
                                  &checkpoint)) {
      // CRC-valid but undecodable: an encoder bug or a crafted record.
      // The framing is still trustworthy, so only this record is lost.
      ++report->bad_varint;
      report->bytes_dropped += record_bytes;
      offset += record_bytes;
      continue;
    }
    out->push_back(std::move(checkpoint));
    ++report->records_recovered;
    offset += record_bytes;
  }
}

Result<WalRecovery> WalReader::Recover(const std::string& dir) {
  Result<std::vector<WalSegmentFile>> segments = ListWalSegments(dir);
  if (!segments.ok()) return segments.status();
  const std::vector<WalSegmentFile>& files = segments.value();
  WalRecovery recovery;
  std::string bytes;
  for (std::size_t i = 0; i < files.size(); ++i) {
    BQS_RETURN_NOT_OK(ReadFileBytes(files[i].path, &bytes));
    const std::span<const uint8_t> image(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    wal::SegmentHeaderInfo header;
    if (wal::DecodeSegmentHeader(image, &header)) {
      recovery.quant = header.quant;  // newest valid header wins
      recovery.next_seq = std::max(recovery.next_seq, header.first_seq);
    }
    RecoverSegment(image, /*is_last=*/i + 1 == files.size(),
                   &recovery.checkpoints, &recovery.report);
  }
  for (const wal::WalCheckpoint& checkpoint : recovery.checkpoints) {
    if (checkpoint.seq != UINT64_MAX &&
        checkpoint.seq >= recovery.next_seq) {
      recovery.next_seq = checkpoint.seq + 1;
    }
  }
  return recovery;
}

}  // namespace bqs
