// The MANIFEST: the single versioned file that says which compacted block
// files are live and how much of the WAL they cover.
//
// Layout ("MANIFEST" in the block directory):
//
//   ManifestHeader (40 bytes, fixed):
//     magic            u32  LE   'BQMF'
//     version          u16  LE   kManifestFormatVersion
//     flags            u16  LE   reserved, 0
//     time_quantum     f64  LE
//     coord_quantum    f64  LE
//     last_applied_seq u64  LE   WAL watermark, below
//     file_count       u32  LE   entries that follow
//     crc              u32  LE   masked CRC32C over the 36 bytes above
//
//   Entry (length-prefixed, CRC-framed like a WAL record), one per block
//   file:
//     length  u32 LE, crc u32 LE over (length bytes || payload)
//     payload: file_id varint, file_bytes varint, block_count varint,
//              then per block: offset varint (byte offset of the block's
//              length prefix inside the file), then its BlockMeta
//              (block_format.h varint layout)
//
// The watermark contract — the heart of crash consistency: every WAL
// checkpoint with seq <= last_applied_seq is present in the referenced
// blocks, and nothing above the watermark is. Recovery is therefore a
// union with no overlap: blocks ∪ {WAL checkpoints with seq > watermark}.
// Publication is atomic (write MANIFEST.tmp, fsync, rename over MANIFEST,
// fsync the directory), so a reader sees the old manifest or the new one,
// never a torn one; WAL segments are deleted only *after* the rename, so
// a crash anywhere leaves every acked checkpoint reachable from one side
// of the union or the other.
//
// Decoding is total on arbitrary bytes (fuzz_manifest_recovery's
// invariant). A manifest that fails to decode is treated by recovery as
// absent — the fallback scans block files directly and dedupes against
// the WAL by seq, so even manifest corruption (which atomic publication
// makes a media event, not a crash event) degrades to a slower recovery,
// not a wrong one.
#ifndef BQS_STORAGE_MANIFEST_H_
#define BQS_STORAGE_MANIFEST_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/block_format.h"
#include "storage/wal_format.h"

namespace bqs {

class FaultInjector;  // common/fault_injector.h (test harness; see lint)

namespace manifestfmt {

inline constexpr uint32_t kManifestMagic = 0x464d5142u;  // 'BQMF' LE
inline constexpr uint16_t kManifestFormatVersion = 1;
inline constexpr std::size_t kManifestHeaderBytes = 40;
inline constexpr std::size_t kEntryHeaderBytes = 8;  // length + crc
inline constexpr std::size_t kMaxEntryPayload = std::size_t{1} << 24;

}  // namespace manifestfmt

/// One block inside a block file, as the manifest references it: where it
/// starts (so a range query can pread exactly one block) and its pruning
/// metadata (so most queries never read the file at all).
struct ManifestBlockEntry {
  uint64_t offset = 0;  ///< Byte offset of the block's length prefix.
  blk::BlockMeta meta;

  constexpr bool operator==(const ManifestBlockEntry&) const = default;
};

/// One live block file.
struct ManifestBlockFile {
  uint64_t file_id = 0;     ///< Names "blk-<id>.bqb".
  uint64_t file_bytes = 0;  ///< Exact size at publication (a cheap check).
  std::vector<ManifestBlockEntry> blocks;

  bool operator==(const ManifestBlockFile&) const = default;
};

/// The decoded MANIFEST.
struct Manifest {
  wal::WalQuantization quant;
  /// Every WAL checkpoint with seq <= this lives in the blocks below;
  /// nothing above it does. 0 = nothing compacted yet.
  uint64_t last_applied_seq = 0;
  std::vector<ManifestBlockFile> files;

  bool operator==(const Manifest&) const = default;
};

/// Appends the full MANIFEST image (header + entries) to `out`.
void EncodeManifest(const Manifest& manifest, std::string* out);

/// Decodes a MANIFEST image. Total on arbitrary bytes: false on any
/// corruption (bad magic/CRC/version/quanta, torn entry, trailing bytes,
/// malformed varints) — all-or-nothing, a half-trusted manifest is worse
/// than none.
bool DecodeManifest(std::span<const uint8_t> bytes, Manifest* out);

// --- file naming ----------------------------------------------------------

inline constexpr const char* kManifestName = "MANIFEST";
inline constexpr const char* kManifestTempName = "MANIFEST.tmp";

std::string BlockFileName(uint64_t file_id);      // "blk-%06llu.bqb"
std::string BlockTempFileName(uint64_t file_id);  // "blk-%06llu.bqb.tmp"

/// Parses "blk-NNNNNN.bqb" into its id; false for every other name.
bool ParseBlockFileName(const std::string& name, uint64_t* file_id);

// --- I/O ------------------------------------------------------------------

/// Writes `bytes` as `dir`/`final_name` atomically: write `final_name`.tmp,
/// fsync it, rename over `final_name`, fsync the directory. Consults the
/// fault injector's kEnospc site at the write/fsync and kRenameFail at the
/// rename (both also map real ENOSPC errno to a status whose message
/// starts with "ENOSPC", which is how the compactor classifies disk-full).
/// `crash_point`, when set, is invoked after the temp file is durable and
/// again after the rename — the compactor's crash gate aborts there to
/// simulate dying between sub-steps.
Status WriteFileAtomic(const std::string& dir, const std::string& final_name,
                       std::string_view bytes, FaultInjector* injector,
                       const std::function<Status()>& crash_point = {});

/// Encodes and atomically publishes `manifest` as dir/MANIFEST.
Status WriteManifest(const std::string& dir, const Manifest& manifest,
                     FaultInjector* injector = nullptr,
                     const std::function<Status()>& crash_point = {});

/// Reads and decodes dir/MANIFEST. NotFound when the file does not exist,
/// Corruption when it exists but fails DecodeManifest.
Status ReadManifest(const std::string& dir, Manifest* out);

/// True when a status smells like disk-full: statuses minted by this
/// layer's I/O prefix "ENOSPC" onto errno==ENOSPC failures and injected
/// kEnospc firings alike.
bool IsEnospc(const Status& status);

}  // namespace bqs

#endif  // BQS_STORAGE_MANIFEST_H_
