#include "storage/trajectory_store.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <utility>

#include "baselines/douglas_peucker.h"

namespace bqs {

double SegmentHausdorff(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  // For straight segments the directed Hausdorff distance is attained at an
  // endpoint, so the symmetric distance needs only four point-to-segment
  // distances.
  const double forward = std::max(PointToSegmentDistance(a, c, d),
                                  PointToSegmentDistance(b, c, d));
  const double backward = std::max(PointToSegmentDistance(c, a, b),
                                   PointToSegmentDistance(d, a, b));
  return std::max(forward, backward);
}

TrajectoryStore::TrajectoryStore(const TrajectoryStoreOptions& options)
    : options_(options), index_(options.cell_size) {}

void TrajectoryStore::IndexSegment(const StoredSegment& seg) {
  index_.Insert(seg.id, (seg.a + seg.b) * 0.5);
}

std::vector<uint64_t> TrajectoryStore::FindSimilar(Vec2 a, Vec2 b,
                                                   double tolerance) const {
  // Candidate segments have midpoints within (half length + tolerance) of
  // the query midpoint; the Hausdorff check is the exact filter.
  const Vec2 mid = (a + b) * 0.5;
  const double radius = Distance(a, b) * 0.5 + tolerance + options_.cell_size;
  std::vector<uint64_t> out;
  for (uint64_t id : index_.Query(mid, radius)) {
    const StoredSegment& seg = segments_[id];
    if (!seg.alive) continue;
    if (SegmentHausdorff(a, b, seg.a, seg.b) <= tolerance) {
      out.push_back(id);
    }
  }
  return out;
}

Result<TrajectoryStore::AppendResult> TrajectoryStore::Append(
    const CompressedTrajectory& compressed) {
  AppendResult result;
  const auto& keys = compressed.keys;
  if (keys.empty()) {
    return Status::InvalidArgument("empty trajectory: nothing to store");
  }
  if (keys.size() < 2) {
    return Status::InvalidArgument(
        "trajectory has a single key point: no segment to store");
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const TrackPoint& pt = keys[i].point;
    if (!(std::isfinite(pt.pos.x) && std::isfinite(pt.pos.y) &&
          std::isfinite(pt.t))) {
      return Status::InvalidArgument(
          "non-finite key point at position " + std::to_string(i));
    }
  }

  std::vector<uint64_t> current_polyline;
  for (std::size_t i = 0; i + 1 < keys.size(); ++i) {
    ++result.segments_in;
    const Vec2 a = keys[i].point.pos;
    const Vec2 b = keys[i + 1].point.pos;

    const auto similar = FindSimilar(a, b, options_.merge_tolerance);
    if (!similar.empty()) {
      // Duplicate information: merge into the first (oldest) match.
      StoredSegment& seg = segments_[similar.front()];
      ++seg.visits;
      seg.t_end = std::max(seg.t_end, keys[i + 1].point.t);
      ++visit_total_;
      ++result.segments_merged;
      // A merge interrupts the run of novel segments.
      if (!current_polyline.empty()) {
        polylines_.push_back(std::move(current_polyline));
        current_polyline.clear();
      }
      continue;
    }

    StoredSegment seg;
    seg.id = NextId();
    seg.a = a;
    seg.b = b;
    seg.t_start = keys[i].point.t;
    seg.t_end = keys[i + 1].point.t;
    segments_.push_back(seg);
    IndexSegment(seg);
    ++live_segments_;
    ++visit_total_;
    ++result.segments_stored;
    current_polyline.push_back(seg.id);
  }
  if (!current_polyline.empty()) {
    polylines_.push_back(std::move(current_polyline));
  }
  return result;
}

Result<TrajectoryStore::WalRestoreStats> TrajectoryStore::RestoreFromWal(
    const WalRecovery& recovery) {
  WalRestoreStats stats;
  // Per-device rebuild state. Checkpoints arrive in replay order, which is
  // sequence (append) order within each device, so concatenating per
  // device reconstructs each session's emitted key-point stream; a
  // non-increasing index marks the next session's stream starting over.
  struct DeviceBuild {
    CompressedTrajectory trajectory;
    uint64_t last_index = 0;
  };
  std::map<DeviceId, DeviceBuild> devices;

  const auto flush = [&](DeviceBuild& build) -> Status {
    if (build.trajectory.keys.size() < 2) {
      if (!build.trajectory.keys.empty()) ++stats.short_trajectories;
      build.trajectory.keys.clear();
      return Status::OK();
    }
    const Result<AppendResult> appended = Append(build.trajectory);
    BQS_RETURN_NOT_OK(appended.status());
    ++stats.trajectories_appended;
    stats.totals.segments_in += appended.value().segments_in;
    stats.totals.segments_merged += appended.value().segments_merged;
    stats.totals.segments_stored += appended.value().segments_stored;
    build.trajectory.keys.clear();
    return Status::OK();
  };

  for (const wal::WalCheckpoint& checkpoint : recovery.checkpoints) {
    DeviceBuild& build = devices[checkpoint.device];
    for (const wal::WalPoint& point : checkpoint.points) {
      if (!build.trajectory.keys.empty() &&
          point.index <= build.last_index) {
        BQS_RETURN_NOT_OK(flush(build));
      }
      build.trajectory.keys.push_back(
          wal::Dequantize(point, recovery.quant));
      build.last_index = point.index;
      ++stats.points_restored;
    }
    ++stats.checkpoints_applied;
  }
  for (auto& [device, build] : devices) {
    (void)device;
    BQS_RETURN_NOT_OK(flush(build));
  }
  return stats;
}

std::size_t TrajectoryStore::Age(double new_epsilon) {
  std::size_t dropped_points = 0;
  DouglasPeucker dp(DpOptions{new_epsilon, DistanceMetric::kPointToLine});

  for (auto& polyline : polylines_) {
    if (polyline.size() < 2) continue;
    // Reconstruct the stored key-point chain of this polyline. Segments in
    // a polyline are contiguous by construction (b of one == a of next).
    Trajectory chain;
    chain.reserve(polyline.size() + 1);
    bool contiguous = true;
    for (std::size_t i = 0; i < polyline.size(); ++i) {
      const StoredSegment& seg = segments_[polyline[i]];
      if (!seg.alive) {
        contiguous = false;
        break;
      }
      if (i == 0) {
        chain.push_back(TrackPoint{seg.a, seg.t_start, {0, 0}});
      }
      chain.push_back(TrackPoint{seg.b, seg.t_end, {0, 0}});
    }
    if (!contiguous || chain.size() < 3) continue;

    const CompressedTrajectory aged = dp.Compress(chain);
    if (aged.keys.size() >= chain.size()) continue;  // Nothing gained.
    dropped_points += chain.size() - aged.keys.size();

    // Retire the old segments and store the aged ones.
    uint32_t carried_visits = 0;
    for (uint64_t id : polyline) {
      StoredSegment& seg = segments_[id];
      seg.alive = false;
      carried_visits = std::max(carried_visits, seg.visits);
      index_.Remove(id, (seg.a + seg.b) * 0.5);
      --live_segments_;
    }
    std::vector<uint64_t> new_ids;
    for (std::size_t i = 0; i + 1 < aged.keys.size(); ++i) {
      StoredSegment seg;
      seg.id = NextId();
      seg.a = aged.keys[i].point.pos;
      seg.b = aged.keys[i + 1].point.pos;
      seg.t_start = aged.keys[i].point.t;
      seg.t_end = aged.keys[i + 1].point.t;
      seg.visits = carried_visits;
      segments_.push_back(seg);
      IndexSegment(segments_.back());
      ++live_segments_;
      new_ids.push_back(seg.id);
    }
    polyline = std::move(new_ids);
  }
  return dropped_points;
}

double TrajectoryStore::StorageBytes() const {
  // Each live segment stores one key point plus one shared endpoint per
  // polyline; counting one point per segment + one per polyline is exact
  // for contiguous chains and a safe overestimate otherwise.
  return options_.bytes_per_point *
         (static_cast<double>(live_segments_) +
          static_cast<double>(polylines_.size()));
}

}  // namespace bqs
