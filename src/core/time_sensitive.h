// Time-sensitive compression (paper Section V-G, citing Cao et al.'s
// deterministic spatio-temporal error): the 2-D stream is lifted into 3-D
// with z = (t - t0) * time_scale and compressed by the 3-D BQS, so the
// error bound covers *where the object was at a given time*, not just the
// path shape.
#ifndef BQS_CORE_TIME_SENSITIVE_H_
#define BQS_CORE_TIME_SENSITIVE_H_

#include <vector>

#include "core/bqs3d_compressor.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Options for the time-sensitive wrapper.
struct TimeSensitiveOptions {
  /// Spatio-temporal tolerance (metres in the lifted space).
  double epsilon = 10.0;
  /// Metres of error one second of temporal displacement is worth. E.g.
  /// 1.0 means being 10 s early/late counts like being 10 m off-path.
  double time_scale = 1.0;
  /// Significant-point scheme of the underlying 3-D BQS.
  Bounds3dMode mode = Bounds3dMode::kClippedHull;
  /// Exact (buffered) or fast (constant-space) 3-D engine.
  bool exact = false;

  Status Validate() const {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (!(time_scale >= 0.0)) {
      return Status::InvalidArgument("time_scale must be >= 0");
    }
    return Status::OK();
  }
};

/// StreamCompressor adapter: consumes ordinary 2-D TrackPoints, guarantees
/// the 3-D spatio-temporal bound internally, emits ordinary KeyPoints.
class TimeSensitiveCompressor final : public StreamCompressor {
 public:
  explicit TimeSensitiveCompressor(const TimeSensitiveOptions& options = {});

  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) override;
  void Finish(std::vector<KeyPoint>* out) override;
  void Reset() override;
  std::string_view name() const override { return "TSBQS"; }
  double ErrorBound() const override { return options_.epsilon; }

  const DecisionStats& stats() const { return inner_.stats(); }
  const TimeSensitiveOptions& options() const { return options_; }

  /// The 3-D lift applied to inputs (exposed so tests can verify bounds in
  /// the lifted space).
  TrackPoint3 Lift(const TrackPoint& pt) const;

 private:
  void Drain(std::vector<KeyPoint>* out);

  TimeSensitiveOptions options_;
  Bqs3dCompressor inner_;
  std::vector<KeyPoint3> pending_;
  bool have_t0_ = false;
  double t0_ = 0.0;
  /// Original 2-D points of emitted keys are reconstructed from the lift;
  /// velocity is not preserved (keys carry zero velocity).
};

}  // namespace bqs

#endif  // BQS_CORE_TIME_SENSITIVE_H_
