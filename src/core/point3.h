// Sample types for the 3-D BQS variant (paper Section V-G): the third axis
// is either altitude (3-D tracking) or scaled time (time-sensitive error).
#ifndef BQS_CORE_POINT3_H_
#define BQS_CORE_POINT3_H_

#include <cstdint>
#include <vector>

#include "geometry/vec3.h"

namespace bqs {

/// A projected 3-D fix in metres (z already scaled if it encodes time).
struct TrackPoint3 {
  Vec3 pos;
  double t = 0.0;

  constexpr bool operator==(const TrackPoint3&) const = default;
};

/// A retained key point of a 3-D compression.
struct KeyPoint3 {
  TrackPoint3 point;
  uint64_t index = 0;
};

/// Output of a 3-D compressor.
struct CompressedTrajectory3 {
  std::vector<KeyPoint3> keys;

  std::size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }
  double CompressionRate(std::size_t original_points) const {
    if (original_points == 0) return 0.0;
    return static_cast<double>(keys.size()) /
           static_cast<double>(original_points);
  }
};

}  // namespace bqs

#endif  // BQS_CORE_POINT3_H_
