// The 3-D BQS compressor (paper Section V-G): octant systems with bounding
// prisms and bounding planes replace the 2-D quadrant systems. Exact mode
// mirrors BQS (buffer + scan on inconclusive bounds); fast mode mirrors
// FBQS (constant space, aggressive split).
#ifndef BQS_CORE_BQS3D_COMPRESSOR_H_
#define BQS_CORE_BQS3D_COMPRESSOR_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/bounds3d.h"
#include "core/decision_stats.h"
#include "core/octant_bound.h"
#include "core/point3.h"
#include "geometry/line2.h"
#include "trajectory/deviation.h"

namespace bqs {

/// Options for the 3-D compressor.
struct Bqs3dOptions {
  /// Error tolerance in the 3-D space (metres; for time-sensitive use the
  /// z axis is pre-scaled so this stays a single scalar).
  double epsilon = 10.0;
  /// 3-D point-to-line (default) or point-to-segment deviation.
  DistanceMetric metric = DistanceMetric::kPointToLine;
  /// Significant-point scheme for the upper bound.
  Bounds3dMode mode = Bounds3dMode::kClippedHull;

  /// Paper-faithful unconditional include of near-start points; see
  /// BqsOptions::paper_trivial_include for why the default is the safe
  /// end-validity check.
  bool paper_trivial_include = false;

  Status Validate() const {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    return Status::OK();
  }
};

/// Online, error-bounded 3-D trajectory compressor.
class Bqs3dCompressor {
 public:
  /// `exact_mode` true = 3-D BQS (buffered exact fallback); false = fast
  /// 3-D BQS (constant space).
  explicit Bqs3dCompressor(const Bqs3dOptions& options = {},
                           bool exact_mode = false);

  void Push(const TrackPoint3& pt, std::vector<KeyPoint3>* out);
  void Finish(std::vector<KeyPoint3>* out);
  void Reset();

  std::string_view name() const { return exact_mode_ ? "BQS3D" : "FBQS3D"; }
  const DecisionStats& stats() const { return stats_; }
  const Bqs3dOptions& options() const { return options_; }
  const OctantBound& octant(int i) const {
    return octants_[static_cast<std::size_t>(i)];
  }

 private:
  enum class Decision { kInclude, kSplit };

  void ProcessPoint(const TrackPoint3& pt, uint64_t index,
                    std::vector<KeyPoint3>* out, int depth);
  Decision Assess(const TrackPoint3& pt);
  void StartSegment(const TrackPoint3& pt, uint64_t index);
  void EmitKey(const TrackPoint3& pt, uint64_t index,
               std::vector<KeyPoint3>* out);
  DeviationBounds AggregateBounds(Vec3 end_rel) const;
  double BufferDeviation3(Vec3 start_abs, Vec3 end_abs) const;

  Bqs3dOptions options_;
  bool exact_mode_;
  DecisionStats stats_;

  bool have_first_ = false;
  uint64_t next_index_ = 0;
  TrackPoint3 segment_start_{};
  TrackPoint3 prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;

  std::array<OctantBound, 8> octants_;
  std::vector<TrackPoint3> buffer_;  ///< Exact mode only.
};

/// Runs a 3-D compressor over a whole stream.
CompressedTrajectory3 Compress3dAll(Bqs3dCompressor& compressor,
                                    std::span<const TrackPoint3> points);

/// Exact per-segment deviation verification in 3-D (ground truth for the
/// error-bound property tests).
DeviationReport Evaluate3dCompression(std::span<const TrackPoint3> original,
                                      const CompressedTrajectory3& compressed,
                                      DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_CORE_BQS3D_COMPRESSOR_H_
