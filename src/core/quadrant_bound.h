// The per-quadrant bounding structure at the heart of the BQS (paper
// Section V-B): a minimum bounding box over the quadrant's buffered points
// plus two angular bounding lines recording the smallest and greatest angle
// from the origin to any point. The box corners and the intersections of
// the bounding lines with the box are the "significant points" from which
// the deviation bounds of Theorems 5.3-5.5 are computed.
//
// Two maintenance kernels feed the same state (ISSUE 4):
//  - AddCross(): transcendental-free. Within one quadrant every pair of
//    directions is less than a quarter turn apart, so angular order is
//    exactly the sign of the 2-D cross product; the extreme-angle points
//    are tracked by two cross comparisons and no angle is ever computed.
//  - Add()/AddWithAngle(): the seed's atan2-based tracking, kept as the
//    reference implementation (BoundKernel::kReference) and for
//    differential tests.
// Both use strict comparisons, so ties (equal angle / zero cross — e.g.
// collinear scalings of the same direction, or +-0.0 coordinates on the
// same axis) keep the earlier point. Distinct directions within ~1e-12
// rad of each other sit in a guard band where atan2 rounding could
// collapse an order the exact cross product resolves; AddCross detects
// the band and replicates the reference's theta compare there, so the
// two kernels select bit-identical extreme points on every input.
//
// The significant points depend only on the box and the two extreme-angle
// points — not on the candidate end point — so they are cached and only
// invalidated when the quadrant absorbs a point.
//
// All coordinates are relative to the segment start point (the quadrant
// system's origin), already rotated if data-centric rotation is active.
#ifndef BQS_CORE_QUADRANT_BOUND_H_
#define BQS_CORE_QUADRANT_BOUND_H_

#include <array>
#include <cstdint>

#include "geometry/box2.h"
#include "geometry/vec2.h"

namespace bqs {

/// Verdict of the fast wedge-membership test against one slack boundary:
/// +1 definitely inside, -1 definitely outside, 0 inside the guard band
/// (caller falls back). `t` is the signed cross product; `slack_sq` is
/// the square of the reference's relative slack for this pair. The
/// reference condition is t >= -slack: t >= 0 settles it; t < 0 reduces
/// to t^2 <= slack^2, tested with a relative band wide enough to absorb
/// the reference's hypot-vs-NormSq rounding (~1e-15 relative vs a 1e-10
/// band). The test is end-independent, which is what lets
/// ComputeSignificant() classify the corners once per quadrant mutation
/// (SignificantPoints::corner_in_wedge / wedge_ok) instead of the fast
/// composition and the vector screen redoing it per point.
inline int FastWedgeSide(double t, double slack_sq) {
  if (t >= 0.0) return 1;
  const double t2 = t * t;
  if (t2 <= slack_sq * (1.0 - 1e-10)) return 1;
  if (t2 >= slack_sq * (1.0 + 1e-10)) return -1;
  return 0;
}

/// One quadrant's bounding state. Constant-size: a box, two angles, and a
/// point count — this is what makes FBQS O(1) space.
class QuadrantBound {
 public:
  QuadrantBound() : QuadrantBound(0) {}
  /// `quadrant` in {0,1,2,3}; see QuadrantOf() for the angular convention.
  explicit QuadrantBound(int quadrant);

  /// Clears to the empty state (keeps the quadrant id).
  void Reset();

  /// Folds a point (relative to the origin) into the box and angular
  /// bounds, tracking the angular extremes with atan2 (reference kernel).
  /// Precondition: QuadrantOf(p) == quadrant() and p != (0,0).
  void Add(Vec2 p);

  /// Add() with the angle already in hand: `theta` must be
  /// NormalizeAngle2Pi(atan2(p.y, p.x)). Lets the engine classify and add
  /// from one atan2 per point instead of two (hoisted classification).
  void AddWithAngle(Vec2 p, double theta);

  /// Transcendental-free Add(): tracks the angular extremes by cross
  /// products (see the file comment for the tie semantics). The stored
  /// min/max angles stay unset; min_angle()/max_angle() derive them on
  /// demand for diagnostics. Returns true when a pair of distinct
  /// directions fell inside the ~1e-12 rad guard band where atan2
  /// rounding could order them differently and the reference's theta
  /// compare was replicated instead (the engine counts it as a kernel
  /// fallback); false on the pure cross-product path.
  ///
  /// `changed`, when non-null, is set to whether the call changed the
  /// bounding geometry (box or extreme points) at all. Interior points of
  /// a well-covered quadrant leave it false, in which case the cached
  /// significant points — and anything derived from them, like the vector
  /// screen's marshalled candidate sets — remain valid.
  bool AddCross(Vec2 p, bool* changed = nullptr);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  int quadrant() const { return quadrant_; }
  const Box2& box() const { return box_; }
  /// Smallest/greatest angle (in [0, 2*pi), within the quadrant's range)
  /// from the origin to any added point. Under AddCross maintenance these
  /// are computed on demand from the extreme points (cold diagnostics
  /// path); under Add they are the incrementally tracked values.
  double min_angle() const;
  double max_angle() const;

  /// The (at most 8) significant points of this quadrant system: the four
  /// bounding-box corners and the entry/exit intersections of each
  /// bounding line with the box. Some may coincide (paper: "some of the
  /// points may overlap").
  struct SignificantPoints {
    std::array<Vec2, 4> corners;  ///< c1..c4 (CCW from box min).
    Vec2 l1, l2;  ///< Lower bounding line: entry (near) / exit (far).
    Vec2 u1, u2;  ///< Upper bounding line: entry (near) / exit (far).
    Vec2 near_corner;  ///< Corner closest to the origin (c_n).
    Vec2 far_corner;   ///< Corner farthest from the origin (c_f).
    /// Indices of near_corner/far_corner within `corners` (they are
    /// bitwise copies of those entries), so value computations over the
    /// corner set can be reused instead of re-evaluated.
    std::size_t near_corner_index = 0;
    std::size_t far_corner_index = 0;
    /// The buffered points that realize the extreme angles. Kept so the
    /// bound computation stays sound when a bounding ray grazes a box
    /// corner and the ray/box intersection degenerates numerically.
    Vec2 min_angle_point, max_angle_point;
    /// End-independent wedge classification of the corners against the
    /// angular extremes (fast kernel): corner_in_wedge[i] marks corners
    /// strictly inside the wedge (their value joins the in-quadrant upper
    /// bound); wedge_ok is false when any corner sits inside the guard
    /// band of the wedge test, forcing in-quadrant ends to the reference
    /// fallback. Cached here because the per-end fast composition would
    /// otherwise redo eight cross products per point.
    std::array<bool, 4> corner_in_wedge{};
    bool wedge_ok = true;
  };

  /// The significant points, cached: recomputed at most once per
  /// geometry-changing Add*() and shared by every bounds query until the
  /// next such mutation (the fast kernel's per-push saving).
  /// Precondition: !empty().
  const SignificantPoints& Significant() const {
    if (!sig_valid_) {
      sig_cache_ = ComputeSignificant();
      sig_valid_ = true;
    }
    return sig_cache_;
  }

  /// Unconditionally recomputes the significant points (the seed's
  /// per-push cost; reference kernel and the cached-vs-recomputed micro
  /// bench). Bit-identical to Significant(). Precondition: !empty().
  SignificantPoints ComputeSignificant() const;

 private:
  int quadrant_;
  uint64_t count_ = 0;
  Box2 box_;
  double min_angle_ = 0.0;
  double max_angle_ = 0.0;
  Vec2 min_angle_point_;
  Vec2 max_angle_point_;
  mutable SignificantPoints sig_cache_{};
  mutable bool sig_valid_ = false;
};

}  // namespace bqs

#endif  // BQS_CORE_QUADRANT_BOUND_H_
