// The per-quadrant bounding structure at the heart of the BQS (paper
// Section V-B): a minimum bounding box over the quadrant's buffered points
// plus two angular bounding lines recording the smallest and greatest angle
// from the origin to any point. The box corners and the intersections of
// the bounding lines with the box are the "significant points" from which
// the deviation bounds of Theorems 5.3-5.5 are computed.
//
// All coordinates are relative to the segment start point (the quadrant
// system's origin), already rotated if data-centric rotation is active.
#ifndef BQS_CORE_QUADRANT_BOUND_H_
#define BQS_CORE_QUADRANT_BOUND_H_

#include <array>
#include <cstdint>

#include "geometry/box2.h"
#include "geometry/vec2.h"

namespace bqs {

/// One quadrant's bounding state. Constant-size: a box, two angles, and a
/// point count — this is what makes FBQS O(1) space.
class QuadrantBound {
 public:
  QuadrantBound() : QuadrantBound(0) {}
  /// `quadrant` in {0,1,2,3}; see QuadrantOf() for the angular convention.
  explicit QuadrantBound(int quadrant);

  /// Clears to the empty state (keeps the quadrant id).
  void Reset();

  /// Folds a point (relative to the origin) into the box and angular
  /// bounds. Precondition: QuadrantOf(p) == quadrant() and p != (0,0).
  void Add(Vec2 p);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  int quadrant() const { return quadrant_; }
  const Box2& box() const { return box_; }
  /// Smallest/greatest angle (in [0, 2*pi), within the quadrant's range)
  /// from the origin to any added point.
  double min_angle() const { return min_angle_; }
  double max_angle() const { return max_angle_; }

  /// The (at most 8) significant points of this quadrant system: the four
  /// bounding-box corners and the entry/exit intersections of each
  /// bounding line with the box. Some may coincide (paper: "some of the
  /// points may overlap").
  struct SignificantPoints {
    std::array<Vec2, 4> corners;  ///< c1..c4 (CCW from box min).
    Vec2 l1, l2;  ///< Lower bounding line: entry (near) / exit (far).
    Vec2 u1, u2;  ///< Upper bounding line: entry (near) / exit (far).
    Vec2 near_corner;  ///< Corner closest to the origin (c_n).
    Vec2 far_corner;   ///< Corner farthest from the origin (c_f).
    /// The buffered points that realize the extreme angles. Kept so the
    /// bound computation stays sound when a bounding ray grazes a box
    /// corner and the ray/box intersection degenerates numerically.
    Vec2 min_angle_point, max_angle_point;
  };

  /// Computes the significant points. Precondition: !empty().
  SignificantPoints Significant() const;

 private:
  int quadrant_;
  uint64_t count_ = 0;
  Box2 box_;
  double min_angle_ = 0.0;
  double max_angle_ = 0.0;
  Vec2 min_angle_point_;
  Vec2 max_angle_point_;
};

}  // namespace bqs

#endif  // BQS_CORE_QUADRANT_BOUND_H_
