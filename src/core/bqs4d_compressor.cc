#include "core/bqs4d_compressor.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bqs {

namespace {

double PathDistance4(Vec4 p, Vec4 end, DistanceMetric metric) {
  return metric == DistanceMetric::kPointToLine
             ? PointToLineDistance4(p, Vec4{}, end)
             : PointToSegmentDistance4(p, Vec4{}, end);
}

}  // namespace

void OrthantBound4::Reset() {
  count_ = 0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  min_ = Vec4{kInf, kInf, kInf, kInf};
  max_ = Vec4{-kInf, -kInf, -kInf, -kInf};
  extremes_ = {};
}

void OrthantBound4::Add(Vec4 p) {
  if (count_ == 0) Reset();
  ++count_;
  const double pv[4] = {p.x, p.y, p.z, p.w};
  double mn[4] = {min_.x, min_.y, min_.z, min_.w};
  double mx[4] = {max_.x, max_.y, max_.z, max_.w};
  for (std::size_t axis = 0; axis < 4; ++axis) {
    if (pv[axis] < mn[axis]) {
      mn[axis] = pv[axis];
      extremes_[axis * 2] = p;
    }
    if (pv[axis] > mx[axis]) {
      mx[axis] = pv[axis];
      extremes_[axis * 2 + 1] = p;
    }
  }
  min_ = Vec4{mn[0], mn[1], mn[2], mn[3]};
  max_ = Vec4{mx[0], mx[1], mx[2], mx[3]};
}

std::array<Vec4, 16> OrthantBound4::Corners() const {
  std::array<Vec4, 16> out;
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = Vec4{(i & 1) ? max_.x : min_.x, (i & 2) ? max_.y : min_.y,
                  (i & 4) ? max_.z : min_.z, (i & 8) ? max_.w : min_.w};
  }
  return out;
}

Bqs4dCompressor::Bqs4dCompressor(const Bqs4dOptions& options,
                                 bool exact_mode)
    : options_(options), exact_mode_(exact_mode) {
  Reset();
}

void Bqs4dCompressor::Reset() {
  stats_ = DecisionStats{};
  have_first_ = false;
  next_index_ = 0;
  prev_ = TrackPoint4{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  StartSegment(TrackPoint4{}, 0);
}

int Bqs4dCompressor::OrthantOf4(Vec4 v) {
  int idx = 0;
  if (v.x < 0.0) idx |= 1;
  if (v.y < 0.0) idx |= 2;
  if (v.z < 0.0) idx |= 4;
  if (v.w < 0.0) idx |= 8;
  return idx;
}

void Bqs4dCompressor::Push(const TrackPoint4& pt,
                           std::vector<KeyPoint4>* out) {
  const uint64_t index = next_index_++;
  ++stats_.points;
  if (!have_first_) {
    have_first_ = true;
    EmitKey(pt, index, out);
    StartSegment(pt, index);
    return;
  }
  ProcessPoint(pt, index, out, 0);
}

void Bqs4dCompressor::Finish(std::vector<KeyPoint4>* out) {
  if (have_first_ && prev_index_ != last_emitted_index_) {
    EmitKey(prev_, prev_index_, out);
  }
}

void Bqs4dCompressor::ProcessPoint(const TrackPoint4& pt, uint64_t index,
                                   std::vector<KeyPoint4>* out, int depth) {
  assert(depth <= 1);
  if (Assess(pt) == Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  ProcessPoint(pt, index, out, depth + 1);
}

Bqs4dCompressor::Decision Bqs4dCompressor::Assess(const TrackPoint4& pt) {
  const Vec4 rel = pt.pos - segment_start_.pos;
  const double eps = options_.epsilon;

  // Theorem 5.1 holds in any dimension: a near-start point deviates at
  // most |p - s| from any path through s. As in 2-D/3-D, it must still be
  // validated as a potential segment end.
  const bool trivial = rel.NormSq() <= eps * eps;

  const DeviationBounds bounds = AggregateBounds(rel);
  if (bounds.upper <= eps) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.upper_bound_includes;
      orthants_[static_cast<std::size_t>(OrthantOf4(rel))].Add(rel);
      if (exact_mode_) buffer_.push_back(pt);
    }
    return Decision::kInclude;
  }
  if (bounds.lower > eps) {
    ++stats_.lower_bound_splits;
    return Decision::kSplit;
  }
  if (!exact_mode_) {
    ++stats_.uncertain_splits;
    return Decision::kSplit;
  }

  ++stats_.exact_computations;
  double dev = 0.0;
  for (const TrackPoint4& p : buffer_) {
    const double d = options_.metric == DistanceMetric::kPointToLine
                         ? PointToLineDistance4(p.pos, segment_start_.pos,
                                                pt.pos)
                         : PointToSegmentDistance4(p.pos, segment_start_.pos,
                                                   pt.pos);
    dev = std::max(dev, d);
  }
  if (dev <= eps) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.exact_includes;
      orthants_[static_cast<std::size_t>(OrthantOf4(rel))].Add(rel);
      buffer_.push_back(pt);
    }
    return Decision::kInclude;
  }
  ++stats_.exact_splits;
  return Decision::kSplit;
}

void Bqs4dCompressor::StartSegment(const TrackPoint4& pt, uint64_t index) {
  segment_start_ = pt;
  prev_ = pt;
  prev_index_ = index;
  for (OrthantBound4& o : orthants_) o.Reset();
  buffer_.clear();
}

void Bqs4dCompressor::EmitKey(const TrackPoint4& pt, uint64_t index,
                              std::vector<KeyPoint4>* out) {
  out->push_back(KeyPoint4{pt, index});
  last_emitted_index_ = index;
}

DeviationBounds Bqs4dCompressor::AggregateBounds(Vec4 end_rel) const {
  DeviationBounds bounds;
  for (const OrthantBound4& o : orthants_) {
    if (o.empty()) continue;
    DeviationBounds b;
    // Upper: max over hyper-box corners (convexity; sound in any
    // dimension). Lower: max over actual extreme points.
    for (const Vec4& c : o.Corners()) {
      b.upper = std::max(b.upper, PathDistance4(c, end_rel, options_.metric));
    }
    for (const Vec4& p : o.extreme_points()) {
      b.lower = std::max(b.lower, PathDistance4(p, end_rel, options_.metric));
    }
    if (b.lower > b.upper) b.lower = b.upper;
    bounds.MergeMax(b);
  }
  return bounds;
}

CompressedTrajectory4 Compress4dAll(Bqs4dCompressor& compressor,
                                    std::span<const TrackPoint4> points) {
  CompressedTrajectory4 out;
  compressor.Reset();
  for (const TrackPoint4& p : points) compressor.Push(p, &out.keys);
  compressor.Finish(&out.keys);
  return out;
}

DeviationReport Evaluate4dCompression(std::span<const TrackPoint4> original,
                                      const CompressedTrajectory4& compressed,
                                      DistanceMetric metric) {
  DeviationReport report;
  const auto& keys = compressed.keys;
  if (keys.size() < 2) return report;
  report.per_segment.reserve(keys.size() - 1);
  for (std::size_t s = 0; s + 1 < keys.size(); ++s) {
    const std::size_t from = static_cast<std::size_t>(keys[s].index);
    std::size_t to = static_cast<std::size_t>(keys[s + 1].index);
    if (to >= original.size()) to = original.size() - 1;
    double dev = 0.0;
    const Vec4 a = original[from].pos;
    const Vec4 b = original[to].pos;
    for (std::size_t i = from + 1; i < to; ++i) {
      const double d = metric == DistanceMetric::kPointToLine
                           ? PointToLineDistance4(original[i].pos, a, b)
                           : PointToSegmentDistance4(original[i].pos, a, b);
      dev = std::max(dev, d);
    }
    report.per_segment.push_back(dev);
    if (dev > report.max_deviation) {
      report.max_deviation = dev;
      report.worst_segment = s;
    }
  }
  return report;
}

}  // namespace bqs
