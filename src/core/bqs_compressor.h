// The BQS compressor (paper Algorithm 1): online, error-bounded, with exact
// deviation scans only when the convex-hull bounds are inconclusive.
// Expected time is ~O(n) for the stream thanks to >90% pruning power;
// worst-case O(n^2) time and O(n) space (Table I discussion).
#ifndef BQS_CORE_BQS_COMPRESSOR_H_
#define BQS_CORE_BQS_COMPRESSOR_H_

#include "core/segment_state.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Error-bounded streaming compressor. Every compressed segment's deviation
/// (max distance from an original interior point to the segment's path) is
/// guaranteed <= options.epsilon.
///
/// Usage:
///   BqsCompressor bqs({.epsilon = 10.0});
///   std::vector<KeyPoint> keys;
///   for (const TrackPoint& p : stream) bqs.Push(p, &keys);
///   bqs.Finish(&keys);
class BqsCompressor final : public StreamCompressor {
 public:
  explicit BqsCompressor(const BqsOptions& options = {})
      : engine_(options, /*exact_mode=*/true) {}

  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) override {
    engine_.Push(pt, out);
  }
  void PushBatch(std::span<const TrackPoint> points,
                 std::vector<KeyPoint>* out) override {
    engine_.PushBatch(points, out);
  }
  void PushRun(std::span<const FleetRecord> run,
               std::vector<TrackPoint>& /*gather*/,
               std::vector<KeyPoint>* out) override {
    // Fleet span runs enter the batch (and vector) kernel through a
    // strided view of the records — no gather copy.
    engine_.PushRecords(run, out);
  }
  void Finish(std::vector<KeyPoint>* out) override { engine_.Finish(out); }
  void Reset() override { engine_.Reset(); }
  std::string_view name() const override { return "BQS"; }
  const DecisionStats* decision_stats() const override {
    return &engine_.stats();
  }
  std::size_t StateBytes() const override { return engine_.StateBytes(); }
  double ErrorBound() const override { return engine_.options().epsilon; }

  /// Decision counters (pruning power, split mix).
  const DecisionStats& stats() const { return engine_.stats(); }
  const BqsOptions& options() const { return engine_.options(); }

  /// Instrumentation hook for bound-vs-actual traces (Fig. 3).
  void SetProbe(std::function<void(const internal::BoundsProbe&)> probe) {
    engine_.SetProbe(std::move(probe));
  }

  /// Test/diagnostic access to the underlying engine.
  const internal::SegmentEngine& engine() const { return engine_; }

 private:
  internal::SegmentEngine engine_;
};

}  // namespace bqs

#endif  // BQS_CORE_BQS_COMPRESSOR_H_
