// The per-octant bounding structure of the 3-D BQS (paper Section V-G): a
// bounding right rectangular prism plus two pairs of bounding planes — the
// "vertical" planes through the z axis tracking the azimuth extent, and the
// "inclined" planes through the octant's anchor line tracking the
// inclination extent. Their intersection is a convex polyhedron whose
// vertices are the 3-D significant points.
//
// Internally every point is reflected into the canonical all-positive
// octant (reflections are isometries, so distances to the reflected path
// line are unchanged); this collapses the eight octant cases into one.
#ifndef BQS_CORE_OCTANT_BOUND_H_
#define BQS_CORE_OCTANT_BOUND_H_

#include <cstdint>
#include <vector>

#include "geometry/box3.h"
#include "geometry/plane.h"
#include "geometry/vec3.h"

namespace bqs {

/// One octant's bounding state. Constant-size, like the 2-D QuadrantBound.
class OctantBound {
 public:
  OctantBound() : OctantBound(0) {}
  /// `octant` in {0..7}; see OctantOf() for the sign convention.
  explicit OctantBound(int octant);

  void Reset();

  /// Folds a point (relative to the origin) into the prism and the two
  /// angular ranges. Precondition: OctantOf(p) == octant() and p != 0.
  void Add(Vec3 p);

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  int octant() const { return octant_; }

  /// Canonical-frame prism (all coordinates >= 0).
  const Box3& box() const { return box_; }
  /// Azimuth extent of the points in the canonical frame, within [0, pi/2].
  double az_min() const { return az_min_; }
  double az_max() const { return az_max_; }
  /// Inclination extent (angle of the anchored inclined plane to the XY
  /// plane), within [0, pi/2].
  double incl_min() const { return incl_min_; }
  double incl_max() const { return incl_max_; }

  /// Reflects an original-frame vector into the canonical frame (and back:
  /// the mapping is an involution).
  Vec3 Flip(Vec3 p) const;

  /// The four bounding half-space planes in the canonical frame (kept side
  /// Eval <= 0). All pass through the origin.
  std::vector<Plane3> WedgePlanes() const;

  /// Vertices of (prism intersect wedge), canonical frame: the exact 3-D
  /// significant points. The hull provably contains every added point.
  /// Cached: the vertex set depends only on the octant state, not on the
  /// candidate end point, so it is recomputed at most once per Add() and
  /// shared by every per-push bounds query in between (the 3-D/4-D family's
  /// version of the 2-D cached significant points).
  const std::vector<Vec3>& HullVertices() const;

  /// The paper's cheaper scheme: intersection points of each bounding
  /// plane with the prism plus the prism vertex farthest from the origin
  /// (<= 17 points). Slightly larger polyhedron in theory; compared against
  /// HullVertices() in the ablation bench. Cached like HullVertices().
  const std::vector<Vec3>& PaperSignificantPoints() const;

 private:
  std::vector<Vec3> ComputePaperSignificantPoints() const;

  int octant_;
  Vec3 sign_;  ///< Componentwise +-1 reflection into the canonical octant.
  uint64_t count_ = 0;
  Box3 box_;
  double az_min_ = 0.0, az_max_ = 0.0;
  double incl_min_ = 0.0, incl_max_ = 0.0;
  mutable std::vector<Vec3> hull_cache_;
  mutable std::vector<Vec3> paper_cache_;
  mutable bool hull_cache_valid_ = false;
  mutable bool paper_cache_valid_ = false;
};

}  // namespace bqs

#endif  // BQS_CORE_OCTANT_BOUND_H_
