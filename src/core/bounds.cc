#include "core/bounds.h"

#include <algorithm>
#include <cmath>

#include "common/op_counters.h"
#include "geometry/angle.h"

namespace bqs {

namespace {

// Distance from a significant point to the path (origin -> end) under the
// configured metric. The quadrant frame puts the segment start at (0,0).
// Every call carries a square root (hypot under the segment metric, a norm
// under the line metric); the counter is what lets the micro bench prove
// the fast kernel's conclusive path never comes here.
double PathDistance(Vec2 p, Vec2 end, DistanceMetric metric) {
  ops::CountSqrt();
  return PointDeviation(p, Vec2{0.0, 0.0}, end, metric);
}


}  // namespace

DeviationBounds QuadrantDeviationBounds(
    const QuadrantBound& qb, Vec2 end, DistanceMetric metric, BoundsMode mode,
    const QuadrantBound::SignificantPoints* provided_sig) {
  const QuadrantBound::SignificantPoints sig_storage =
      provided_sig == nullptr ? qb.ComputeSignificant()
                              : QuadrantBound::SignificantPoints{};
  const QuadrantBound::SignificantPoints& sig =
      provided_sig == nullptr ? sig_storage : *provided_sig;

  const double dl1 = PathDistance(sig.l1, end, metric);
  const double dl2 = PathDistance(sig.l2, end, metric);
  const double du1 = PathDistance(sig.u1, end, metric);
  const double du2 = PathDistance(sig.u2, end, metric);
  const double dc[4] = {PathDistance(sig.corners[0], end, metric),
                        PathDistance(sig.corners[1], end, metric),
                        PathDistance(sig.corners[2], end, metric),
                        PathDistance(sig.corners[3], end, metric)};
  const double dcn = PathDistance(sig.near_corner, end, metric);
  const double dcf = PathDistance(sig.far_corner, end, metric);
  // The extreme-angle points are actual buffered points: their deviation is
  // always a valid lower-bound candidate, and folding them into the upper
  // bound guards the corner-grazing case where l1==l2 (or u1==u2)
  // degenerates to the point itself.
  const double dpmin = PathDistance(sig.min_angle_point, end, metric);
  const double dpmax = PathDistance(sig.max_angle_point, end, metric);
  const double dpoints = std::max(dpmin, dpmax);

  // Corners inside the angular wedge [min_angle, max_angle] are true
  // vertices of (box intersect wedge) and must join the upper bound: the
  // paper's intersection-only Eq. (8) silently assumes the bounding rays
  // sweep the full box, which fails under floating point for hair-thin
  // boxes (collinear runs after rotation) — the ray exits through the long
  // side and the far corners' deviation is missed. The wedge test uses
  // cross products against the extreme-angle points, so it has no 0/2pi
  // wrap issues; the relative slack only ever adds corners (safe side).
  double dwedge_corners = 0.0;
  {
    const Vec2 pmin = sig.min_angle_point;
    const Vec2 pmax = sig.max_angle_point;
    for (std::size_t i = 0; i < 4; ++i) {
      const Vec2 c = sig.corners[i];
      const double slack_min = 1e-9 * pmin.Norm() * c.Norm();
      const double slack_max = 1e-9 * pmax.Norm() * c.Norm();
      if (pmin.Cross(c) >= -slack_min && c.Cross(pmax) >= -slack_max) {
        dwedge_corners = std::max(dwedge_corners, dc[i]);
      }
    }
  }

  // "In quadrant" test (paper Section V-B): with point-to-line distance a
  // line is in exactly two opposite quadrants; with point-to-segment the
  // property is directional (Section V-G), so test the ray towards `end`.
  // A degenerate path (end == origin, e.g. a duplicate fix) collapses the
  // distance to |p - s|; only the corner-based Theorem 5.5 bounds remain
  // valid there, so force that branch.
  const bool degenerate = end == Vec2{0.0, 0.0};
  bool in_quadrant = false;
  if (!degenerate) {
    ops::CountAtan2();  // end.Angle() below, on either metric branch.
    in_quadrant = metric == DistanceMetric::kPointToLine
                      ? LineInQuadrant(end.Angle(), qb.quadrant())
                      : RayInQuadrant(end.Angle(), qb.quadrant());
  }

  DeviationBounds bounds;
  if (mode == BoundsMode::kPaperEq8) {
    // The paper's literal formulas (ablation only; see DESIGN.md for the
    // counterexamples that make these unsound in general).
    if (in_quadrant) {
      bounds.lower = std::max({std::min(dl1, dl2), std::min(du1, du2),
                               std::max(dcn, dcf)});
      bounds.upper = metric == DistanceMetric::kPointToLine
                         ? std::max({dl1, dl2, du1, du2})            // (8)
                         : std::max({dl1, dl2, du1, du2, dcn, dcf});  // (11)
    } else {
      bounds.lower = std::max({std::min(dl1, dl2), std::min(du1, du2),
                               detail::ThirdLargest(dc[0], dc[1], dc[2], dc[3])});
      bounds.upper = std::max({dc[0], dc[1], dc[2], dc[3]});  // (10)
    }
    if (bounds.lower > bounds.upper) bounds.lower = bounds.upper;
    return bounds;
  }

  if (metric == DistanceMetric::kPointToSegment) {
    // The paper's Theorem 5.3/5.5 *lower* bounds do not survive the switch
    // to segment distance (the distance field around the end point breaks
    // the edge-endpoint argument; randomized testing confirms violations).
    // A provably valid replacement: every box edge carries at least one
    // buffered point, whose deviation is at least the exact distance from
    // the path segment to that edge.
    const auto& c = sig.corners;
    const Vec2 s{0.0, 0.0};
    double edge_lb = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      ops::CountSqrt();
      edge_lb = std::max(
          edge_lb, SegmentToSegmentDistance(c[i], c[(i + 1) % 4], s, end));
    }
    bounds.lower = std::max(edge_lb, dpoints);
    if (in_quadrant) {
      // Eq. (11): the segment metric needs the near-far corner distances
      // in the upper bound on top of the intersections.
      bounds.upper = std::max(
          {dl1, dl2, du1, du2, dcn, dcf, dpoints, dwedge_corners});
    } else {
      bounds.upper = std::max({dc[0], dc[1], dc[2], dc[3]});  // Eq. (10)
    }
  } else if (in_quadrant) {
    // Theorems 5.3 / 5.4 (identical bounds whether the path line lies
    // between or outside the two bounding lines).
    bounds.lower = std::max({std::min(dl1, dl2), std::min(du1, du2),
                             std::max(dcn, dcf), dpoints});
    // Eq. (8) is max{d_intersection} only; the near/far corners and any
    // corner inside the wedge must join it (see the dwedge_corners note
    // above and DESIGN.md). When the paper's triangle argument holds these
    // extra candidates are dominated by the intersections, so the bound is
    // exactly Eq. (8)-tight on non-degenerate data.
    bounds.upper = std::max(
        {dl1, dl2, du1, du2, dcn, dcf, dpoints, dwedge_corners});
  } else {
    // Theorem 5.5. Note: the paper's Eq. (9) second term reads
    // min{d(u1), d(l2)}; by symmetry with Eq. (7) we implement the safe
    // reading min{d(u1), d(u2)} (see DESIGN.md, paper-faithfulness notes).
    bounds.lower = std::max({std::min(dl1, dl2), std::min(du1, du2),
                             detail::ThirdLargest(dc[0], dc[1], dc[2], dc[3]),
                             dpoints});
    bounds.upper = std::max({dc[0], dc[1], dc[2], dc[3]});  // Eq. (10)
  }

  // The bounds sandwich the true maximum, so lower <= upper must hold; any
  // floating-point inversion is collapsed conservatively.
  if (bounds.lower > bounds.upper) bounds.lower = bounds.upper;
  return bounds;
}

DeviationBounds BoxDeviationBounds(const QuadrantBound& qb, Vec2 end,
                                   DistanceMetric metric) {
  const auto corners = qb.box().Corners();
  DeviationBounds bounds;
  double mn = PathDistance(corners[0], end, metric);
  double mx = mn;
  for (std::size_t i = 1; i < 4; ++i) {
    const double d = PathDistance(corners[i], end, metric);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
  }
  if (metric == DistanceMetric::kPointToSegment) {
    // Theorem 5.2's min-corner lower bound is a line-metric result; under
    // the segment metric the valid form is the exact distance from the
    // path segment to each (point-carrying) box edge.
    mn = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      mn = std::max(mn, SegmentToSegmentDistance(corners[i],
                                                 corners[(i + 1) % 4],
                                                 Vec2{0.0, 0.0}, end));
    }
  }
  bounds.lower = mn;  // Theorem 5.2, Eq. (5)
  bounds.upper = mx;  // Theorem 5.2, Eq. (6)
  return bounds;
}

}  // namespace bqs
