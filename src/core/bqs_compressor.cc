// BqsCompressor is header-implemented over SegmentEngine; this translation
// unit anchors the class (keeps one out-of-line symbol for the archive).
#include "core/bqs_compressor.h"

namespace bqs {

static_assert(sizeof(BqsCompressor) > 0, "anchor");

}  // namespace bqs
