// FbqsCompressor is header-implemented over SegmentEngine; this translation
// unit anchors the class.
#include "core/fbqs_compressor.h"

namespace bqs {

static_assert(sizeof(FbqsCompressor) > 0, "anchor");

}  // namespace bqs
