// Deviation bounds for the 3-D BQS. The upper bound is the max distance
// from a significant-point set to the path; with the clipped hull that set
// provably contains every buffered point (distance-to-line is convex, so
// its max over a convex polytope is attained at a vertex). The lower bound
// generalizes the 2-D edge argument: every prism face carries at least one
// buffered point, so the max deviation is at least the distance from the
// path line to the farthest face.
#ifndef BQS_CORE_BOUNDS3D_H_
#define BQS_CORE_BOUNDS3D_H_

#include <array>

#include "core/bounds.h"
#include "core/octant_bound.h"
#include "geometry/line2.h"
#include "geometry/vec3.h"

namespace bqs {

/// Which significant-point set the 3-D upper bound uses.
enum class Bounds3dMode {
  /// Exact vertices of (prism intersect wedges); provably safe. Default.
  kClippedHull,
  /// The paper's cheaper <= 17-point scheme (plane/prism intersections
  /// plus the far corner). Evaluated as an ablation.
  kPaperSignificant,
};

/// Bounds on the max deviation of the points summarized by `ob` to the
/// 3-D path from the origin to `end` (original frame, relative to the
/// octant system's origin). Precondition: !ob.empty() and end != 0.
DeviationBounds OctantDeviationBounds(const OctantBound& ob, Vec3 end,
                                      DistanceMetric metric,
                                      Bounds3dMode mode);

/// Distance from the infinite line (a, b) to a rectangle given by its four
/// corners (coplanar); 0 when the line pierces the rectangle. Exposed for
/// tests.
double LineToRectDistance(Vec3 a, Vec3 b, const std::array<Vec3, 4>& rect);

}  // namespace bqs

#endif  // BQS_CORE_BOUNDS3D_H_
