// Deviation bounds from a quadrant's significant points (paper Theorems
// 5.2-5.5 and the Eq. 11 point-to-segment adjustment). Given a quadrant
// bound and a candidate end point, these functions produce a pair
// <d_lb, d_ub> sandwiching the maximum deviation of every buffered point in
// that quadrant to the path line, without touching the buffer.
#ifndef BQS_CORE_BOUNDS_H_
#define BQS_CORE_BOUNDS_H_

#include "core/options.h"
#include "core/quadrant_bound.h"
#include "geometry/line2.h"
#include "geometry/vec2.h"

namespace bqs {

/// A lower/upper bound pair on the maximum deviation.
struct DeviationBounds {
  double lower = 0.0;
  double upper = 0.0;

  /// Aggregates per-quadrant bounds (Algorithm 1 line 5): both the global
  /// lower and the global upper bound are maxima over the quadrants,
  /// because the segment deviation is the max over all buffered points.
  void MergeMax(const DeviationBounds& other) {
    lower = lower > other.lower ? lower : other.lower;
    upper = upper > other.upper ? upper : other.upper;
  }
};

/// Bounds on max deviation of the points summarized by `qb` to the path
/// from the origin to `end` (both in the quadrant system's rotated frame).
/// Chooses Theorem 5.3/5.4 ("line in quadrant") or Theorem 5.5 (line not
/// in quadrant) internally; with DistanceMetric::kPointToSegment the upper
/// bound follows Eq. (11) and the in-quadrant test is directional.
/// `mode` selects the sound corrected bounds (default) or the paper's
/// literal formulas (see BoundsMode).
/// Precondition: !qb.empty() and end != origin.
DeviationBounds QuadrantDeviationBounds(
    const QuadrantBound& qb, Vec2 end, DistanceMetric metric,
    BoundsMode mode = BoundsMode::kSound);

/// Loose whole-box bounds of Theorem 5.2 (min/max corner distance). Used as
/// a baseline in the bound-tightness ablation; the compressors use
/// QuadrantDeviationBounds.
DeviationBounds BoxDeviationBounds(const QuadrantBound& qb, Vec2 end,
                                   DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_CORE_BOUNDS_H_
