// Deviation bounds from a quadrant's significant points (paper Theorems
// 5.2-5.5 and the Eq. 11 point-to-segment adjustment). Given a quadrant
// bound and a candidate end point, these functions produce a pair
// <d_lb, d_ub> sandwiching the maximum deviation of every buffered point in
// that quadrant to the path line, without touching the buffer.
#ifndef BQS_CORE_BOUNDS_H_
#define BQS_CORE_BOUNDS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "core/options.h"
#include "core/quadrant_bound.h"
#include "geometry/line2.h"
#include "geometry/vec2.h"

namespace bqs {

namespace detail {
/// Third largest of four values (Theorem 5.5's corner term): the classic
/// 4-element median network — second smallest = min(max of the pairwise
/// minima, min of the pairwise maxima). Branch-free, same value a sort
/// would select.
inline double ThirdLargest(double a, double b, double c, double d) {
  const double lo_ab = std::min(a, b);
  const double hi_ab = std::max(a, b);
  const double lo_cd = std::min(c, d);
  const double hi_cd = std::max(c, d);
  return std::min(std::max(lo_ab, lo_cd), std::min(hi_ab, hi_cd));
}
}  // namespace detail

/// A lower/upper bound pair on the maximum deviation.
struct DeviationBounds {
  double lower = 0.0;
  double upper = 0.0;

  /// Aggregates per-quadrant bounds (Algorithm 1 line 5): both the global
  /// lower and the global upper bound are maxima over the quadrants,
  /// because the segment deviation is the max over all buffered points.
  void MergeMax(const DeviationBounds& other) {
    lower = lower > other.lower ? lower : other.lower;
    upper = upper > other.upper ? upper : other.upper;
  }
};

/// Bounds on max deviation of the points summarized by `qb` to the path
/// from the origin to `end` (both in the quadrant system's rotated frame).
/// Chooses Theorem 5.3/5.4 ("line in quadrant") or Theorem 5.5 (line not
/// in quadrant) internally; with DistanceMetric::kPointToSegment the upper
/// bound follows Eq. (11) and the in-quadrant test is directional.
/// `mode` selects the sound corrected bounds (default) or the paper's
/// literal formulas (see BoundsMode).
///
/// This is the reference (transcendental) composition: distances carry
/// their square roots and the in-quadrant test normalizes an atan2 angle.
/// `sig`, when non-null, supplies precomputed significant points (the fast
/// kernel's fallback path reuses the cache); null recomputes them, which is
/// the seed's per-push cost profile.
/// Precondition: !qb.empty() and end != origin.
DeviationBounds QuadrantDeviationBounds(
    const QuadrantBound& qb, Vec2 end, DistanceMetric metric,
    BoundsMode mode = BoundsMode::kSound,
    const QuadrantBound::SignificantPoints* sig = nullptr);

/// One quadrant's deviation bounds in the fast kernel's sqrt-free
/// comparison domain: under kPointToLine, `lower`/`upper` are
/// |cross(end, p)| magnitudes (distance numerators — divide by |end| for
/// metres); under kPointToSegment they are squared distances. The min/max
/// compositions mirror QuadrantDeviationBounds exactly, and both domains
/// map to the reference's rounded distances through a weakly monotone
/// function, so threshold comparisons against epsilon agree with the
/// reference outside a ~1e-12 relative guard band (the engine falls back
/// to the reference composition inside it).
///
/// `ok == false` reports that an internal guard band was hit (a corner
/// sat exactly on the wedge-membership slack boundary); the caller must
/// fall back to QuadrantDeviationBounds for the whole push.
///
/// `end_in_quadrant` is the caller's transcendental-free in-quadrant test:
/// quadrant parity match for the line metric, quadrant equality for the
/// segment metric (see DESIGN notes in bounds.cc).
/// Precondition: !qb.empty() and end != origin.
struct FastQuadrantBounds {
  double lower = 0.0;
  double upper = 0.0;
  bool ok = true;

  void MergeMax(const FastQuadrantBounds& other) {
    lower = lower > other.lower ? lower : other.lower;
    upper = upper > other.upper ? upper : other.upper;
    ok = ok && other.ok;
  }
};
/// Inline: the conclusive fast path calls this a few times per assessed
/// point, and keeping it visible to the caller's TU removes the hottest
/// cross-TU call in the engine.
inline FastQuadrantBounds QuadrantFastBounds(const QuadrantBound& qb,
                                             Vec2 end, bool end_in_quadrant,
                                             DistanceMetric metric,
                                             BoundsMode mode) {
  const QuadrantBound::SignificantPoints& sig = qb.Significant();
  FastQuadrantBounds out;

  // Candidate values in the comparison domain. Line metric: the |cross|
  // magnitude is computed with the same expression as the reference's
  // PointToLineDistance numerator (end.Cross(p)), so the min/max
  // compositions below select the same candidates the reference selects
  // after its (monotone) division by |end|. Segment metric: squared
  // distances from the same closest points the reference uses.
  const bool line = metric == DistanceMetric::kPointToLine;
  const Vec2 s{0.0, 0.0};
  const auto value = [&](Vec2 p) {
    return line ? std::fabs(end.Cross(p)) : PointToSegmentDistanceSq(p, s, end);
  };

  const double vl1 = value(sig.l1);
  const double vl2 = value(sig.l2);
  const double vu1 = value(sig.u1);
  const double vu2 = value(sig.u2);
  const double vc[4] = {value(sig.corners[0]), value(sig.corners[1]),
                        value(sig.corners[2]), value(sig.corners[3])};
  // near/far corners are bitwise copies of corner entries: reuse their
  // already-computed values instead of re-evaluating.
  const double vcn = vc[sig.near_corner_index];
  const double vcf = vc[sig.far_corner_index];

  if (mode == BoundsMode::kPaperEq8) {
    if (end_in_quadrant) {
      out.lower = std::max({std::min(vl1, vl2), std::min(vu1, vu2),
                            std::max(vcn, vcf)});
      out.upper = line ? std::max({vl1, vl2, vu1, vu2})
                       : std::max({vl1, vl2, vu1, vu2, vcn, vcf});
    } else {
      out.lower = std::max({std::min(vl1, vl2), std::min(vu1, vu2),
                            detail::ThirdLargest(vc[0], vc[1], vc[2], vc[3])});
      out.upper = std::max({vc[0], vc[1], vc[2], vc[3]});
    }
    if (out.lower > out.upper) out.lower = out.upper;
    return out;
  }

  // Only the kSound compositions consume the extreme-point term.
  const double vpoints =
      std::max(value(sig.min_angle_point), value(sig.max_angle_point));

  // In-wedge corners (see the reference composition). Only the in-quadrant
  // upper bound consumes this term; the band-sensitive classification is
  // end-independent and cached with the significant points.
  double vwedge = 0.0;
  if (end_in_quadrant) {
    if (!sig.wedge_ok) {
      out.ok = false;
      return out;
    }
    for (std::size_t i = 0; i < 4; ++i) {
      if (sig.corner_in_wedge[i]) vwedge = std::max(vwedge, vc[i]);
    }
  }

  if (!line) {
    double edge_lb = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
      edge_lb = std::max(edge_lb,
                         SegmentToSegmentDistanceSq(
                             sig.corners[i], sig.corners[(i + 1) % 4], s, end));
    }
    out.lower = std::max(edge_lb, vpoints);
    out.upper = end_in_quadrant
                    ? std::max({vl1, vl2, vu1, vu2, vcn, vcf, vpoints, vwedge})
                    : std::max({vc[0], vc[1], vc[2], vc[3]});
  } else if (end_in_quadrant) {
    out.lower = std::max({std::min(vl1, vl2), std::min(vu1, vu2),
                          std::max(vcn, vcf), vpoints});
    out.upper = std::max({vl1, vl2, vu1, vu2, vcn, vcf, vpoints, vwedge});
  } else {
    out.lower = std::max({std::min(vl1, vl2), std::min(vu1, vu2),
                          detail::ThirdLargest(vc[0], vc[1], vc[2], vc[3]),
                          vpoints});
    out.upper = std::max({vc[0], vc[1], vc[2], vc[3]});
  }

  // The bounds sandwich the true maximum, so lower <= upper must hold; any
  // floating-point inversion is collapsed conservatively.
  if (out.lower > out.upper) out.lower = out.upper;
  return out;
}

/// Loose whole-box bounds of Theorem 5.2 (min/max corner distance). Used as
/// a baseline in the bound-tightness ablation; the compressors use
/// QuadrantDeviationBounds.
DeviationBounds BoxDeviationBounds(const QuadrantBound& qb, Vec2 end,
                                   DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_CORE_BOUNDS_H_
