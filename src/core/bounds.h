// Deviation bounds from a quadrant's significant points (paper Theorems
// 5.2-5.5 and the Eq. 11 point-to-segment adjustment). Given a quadrant
// bound and a candidate end point, these functions produce a pair
// <d_lb, d_ub> sandwiching the maximum deviation of every buffered point in
// that quadrant to the path line, without touching the buffer.
#ifndef BQS_CORE_BOUNDS_H_
#define BQS_CORE_BOUNDS_H_

#include "core/options.h"
#include "core/quadrant_bound.h"
#include "geometry/line2.h"
#include "geometry/vec2.h"

namespace bqs {

/// A lower/upper bound pair on the maximum deviation.
struct DeviationBounds {
  double lower = 0.0;
  double upper = 0.0;

  /// Aggregates per-quadrant bounds (Algorithm 1 line 5): both the global
  /// lower and the global upper bound are maxima over the quadrants,
  /// because the segment deviation is the max over all buffered points.
  void MergeMax(const DeviationBounds& other) {
    lower = lower > other.lower ? lower : other.lower;
    upper = upper > other.upper ? upper : other.upper;
  }
};

/// Bounds on max deviation of the points summarized by `qb` to the path
/// from the origin to `end` (both in the quadrant system's rotated frame).
/// Chooses Theorem 5.3/5.4 ("line in quadrant") or Theorem 5.5 (line not
/// in quadrant) internally; with DistanceMetric::kPointToSegment the upper
/// bound follows Eq. (11) and the in-quadrant test is directional.
/// `mode` selects the sound corrected bounds (default) or the paper's
/// literal formulas (see BoundsMode).
///
/// This is the reference (transcendental) composition: distances carry
/// their square roots and the in-quadrant test normalizes an atan2 angle.
/// `sig`, when non-null, supplies precomputed significant points (the fast
/// kernel's fallback path reuses the cache); null recomputes them, which is
/// the seed's per-push cost profile.
/// Precondition: !qb.empty() and end != origin.
DeviationBounds QuadrantDeviationBounds(
    const QuadrantBound& qb, Vec2 end, DistanceMetric metric,
    BoundsMode mode = BoundsMode::kSound,
    const QuadrantBound::SignificantPoints* sig = nullptr);

/// One quadrant's deviation bounds in the fast kernel's sqrt-free
/// comparison domain: under kPointToLine, `lower`/`upper` are
/// |cross(end, p)| magnitudes (distance numerators — divide by |end| for
/// metres); under kPointToSegment they are squared distances. The min/max
/// compositions mirror QuadrantDeviationBounds exactly, and both domains
/// map to the reference's rounded distances through a weakly monotone
/// function, so threshold comparisons against epsilon agree with the
/// reference outside a ~1e-12 relative guard band (the engine falls back
/// to the reference composition inside it).
///
/// `ok == false` reports that an internal guard band was hit (a corner
/// sat exactly on the wedge-membership slack boundary); the caller must
/// fall back to QuadrantDeviationBounds for the whole push.
///
/// `end_in_quadrant` is the caller's transcendental-free in-quadrant test:
/// quadrant parity match for the line metric, quadrant equality for the
/// segment metric (see DESIGN notes in bounds.cc).
/// Precondition: !qb.empty() and end != origin.
struct FastQuadrantBounds {
  double lower = 0.0;
  double upper = 0.0;
  bool ok = true;

  void MergeMax(const FastQuadrantBounds& other) {
    lower = lower > other.lower ? lower : other.lower;
    upper = upper > other.upper ? upper : other.upper;
    ok = ok && other.ok;
  }
};
FastQuadrantBounds QuadrantFastBounds(const QuadrantBound& qb, Vec2 end,
                                      bool end_in_quadrant,
                                      DistanceMetric metric, BoundsMode mode);

/// Loose whole-box bounds of Theorem 5.2 (min/max corner distance). Used as
/// a baseline in the bound-tightness ablation; the compressors use
/// QuadrantDeviationBounds.
DeviationBounds BoxDeviationBounds(const QuadrantBound& qb, Vec2 end,
                                   DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_CORE_BOUNDS_H_
