#include "core/bounds3d.h"

#include <algorithm>
#include <cmath>

#include "geometry/line3.h"
#include "geometry/plane.h"

namespace bqs {

namespace {

double PathDistance3(Vec3 p, Vec3 end, DistanceMetric metric) {
  return metric == DistanceMetric::kPointToLine
             ? PointToLineDistance3(p, Vec3{}, end)
             : PointToSegmentDistance3(p, Vec3{}, end);
}

}  // namespace

double LineToRectDistance(Vec3 a, Vec3 b, const std::array<Vec3, 4>& rect) {
  // The distance-to-line function restricted to the rectangle's plane is
  // convex; its unconstrained minimizer is the pierce point (distance 0)
  // for a transversal line, or the projection of the whole line (distance
  // = plane offset) for a parallel line. Only when that minimizer lies
  // outside the rectangle is the minimum attained on the boundary.
  const auto plane_opt = Plane3::FromPoints(rect[0], rect[1], rect[2]);
  if (plane_opt.has_value()) {
    const Plane3 plane = plane_opt->Normalized();
    const Vec3 dir = b - a;
    const double dir_norm = dir.Norm();
    const double denom = plane.normal.Dot(dir);
    const Vec3 e0 = rect[1] - rect[0];
    const Vec3 e1 = rect[3] - rect[0];
    const double l0 = e0.NormSq();
    const double l1 = e1.NormSq();
    const auto inside = [&](Vec3 p) {
      const Vec3 rel = p - rect[0];
      const double u = l0 > 0.0 ? rel.Dot(e0) / l0 : 0.0;
      const double v = l1 > 0.0 ? rel.Dot(e1) / l1 : 0.0;
      return u >= -1e-9 && u <= 1.0 + 1e-9 && v >= -1e-9 && v <= 1.0 + 1e-9;
    };
    if (std::fabs(denom) > 1e-12 * dir_norm) {
      // Transversal: zero if the pierce point is inside the rectangle.
      const double t = -plane.Eval(a) / denom;
      if (inside(a + t * dir)) return 0.0;
    } else if (dir_norm > 0.0) {
      // Parallel: the minimizing set is the line's projection onto the
      // plane; if that projected line crosses the rectangle, the distance
      // is the perpendicular plane offset.
      const double offset = plane.Eval(a);
      const Vec3 a_proj = a - offset * plane.normal;
      const Vec3 b_proj = b - plane.Eval(b) * plane.normal;
      // The infinite projected line crosses the convex rectangle iff the
      // corners do not all lie strictly on one side of it (within the
      // plane). Use the plane normal to orient the side test.
      const Vec3 line_dir = b_proj - a_proj;
      int pos = 0;
      int neg = 0;
      for (const Vec3& c : rect) {
        const double side = plane.normal.Dot(line_dir.Cross(c - a_proj));
        if (side > 0.0) ++pos;
        if (side < 0.0) ++neg;
      }
      if (pos == 0 || neg == 0) {
        // All corners on one side: the minimum is on the boundary below.
      } else {
        return std::fabs(offset);
      }
    }
  }
  double best = LineToSegmentDistance3(a, b, rect[0], rect[1]);
  best = std::min(best, LineToSegmentDistance3(a, b, rect[1], rect[2]));
  best = std::min(best, LineToSegmentDistance3(a, b, rect[2], rect[3]));
  best = std::min(best, LineToSegmentDistance3(a, b, rect[3], rect[0]));
  return best;
}

DeviationBounds OctantDeviationBounds(const OctantBound& ob, Vec3 end,
                                      DistanceMetric metric,
                                      Bounds3dMode mode) {
  // Work in the canonical (reflected) frame; the reflection is an isometry
  // so all distances match the original frame.
  const Vec3 end_c = ob.Flip(end);

  DeviationBounds bounds;

  // Upper bound: max distance over the significant points (cached in the
  // octant; only an Add() invalidates them).
  const std::vector<Vec3>& sig = mode == Bounds3dMode::kClippedHull
                                     ? ob.HullVertices()
                                     : ob.PaperSignificantPoints();
  for (const Vec3& v : sig) {
    bounds.upper = std::max(bounds.upper, PathDistance3(v, end_c, metric));
  }
  // Fallback: if clipping degenerated (e.g. a flat prism whose wedge cuts
  // removed everything within tolerance), bound by the prism corners,
  // which always contain the points.
  if (sig.empty()) {
    for (const Vec3& c : ob.box().Corners()) {
      bounds.upper = std::max(bounds.upper, PathDistance3(c, end_c, metric));
    }
  }

  // Lower bound: every prism face holds at least one buffered point, so
  // d_max >= max over faces of dist(path line, face). (Using the line
  // distance keeps the bound valid for the segment metric as well, since
  // segment distance dominates line distance.)
  for (int f = 0; f < 6; ++f) {
    bounds.lower = std::max(
        bounds.lower, LineToRectDistance(Vec3{}, end_c, ob.box().Face(f)));
  }

  if (bounds.lower > bounds.upper) bounds.lower = bounds.upper;
  return bounds;
}

}  // namespace bqs
