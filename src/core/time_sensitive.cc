#include "core/time_sensitive.h"

namespace bqs {

TimeSensitiveCompressor::TimeSensitiveCompressor(
    const TimeSensitiveOptions& options)
    : options_(options),
      inner_(Bqs3dOptions{options.epsilon, DistanceMetric::kPointToLine,
                          options.mode},
             options.exact) {}

TrackPoint3 TimeSensitiveCompressor::Lift(const TrackPoint& pt) const {
  TrackPoint3 out;
  out.pos = Vec3{pt.pos.x, pt.pos.y, (pt.t - t0_) * options_.time_scale};
  out.t = pt.t;
  return out;
}

void TimeSensitiveCompressor::Push(const TrackPoint& pt,
                                   std::vector<KeyPoint>* out) {
  if (!have_t0_) {
    have_t0_ = true;
    t0_ = pt.t;
  }
  inner_.Push(Lift(pt), &pending_);
  Drain(out);
}

void TimeSensitiveCompressor::Finish(std::vector<KeyPoint>* out) {
  inner_.Finish(&pending_);
  Drain(out);
}

void TimeSensitiveCompressor::Reset() {
  inner_.Reset();
  pending_.clear();
  have_t0_ = false;
  t0_ = 0.0;
}

void TimeSensitiveCompressor::Drain(std::vector<KeyPoint>* out) {
  for (const KeyPoint3& k : pending_) {
    KeyPoint flat;
    flat.index = k.index;
    flat.point.pos = k.point.pos.XY();
    flat.point.t = k.point.t;
    out->push_back(flat);
  }
  pending_.clear();
}

}  // namespace bqs
