// The streaming engine behind BqsCompressor and FbqsCompressor: Algorithm 1
// of the paper plus data-centric rotation (Section V-D). The two public
// compressors differ only in how the inconclusive case
// (d_lb <= epsilon < d_ub) is resolved: BQS scans the segment buffer for
// the exact deviation; FBQS aggressively splits, which removes the buffer
// entirely and makes per-point time and space O(1) (Section V-E).
#ifndef BQS_CORE_SEGMENT_STATE_H_
#define BQS_CORE_SEGMENT_STATE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/bounds.h"
#include "core/decision_stats.h"
#include "core/options.h"
#include "core/quadrant_bound.h"
#include "trajectory/point.h"

namespace bqs {
namespace internal {

/// Observation of one bound-based decision, for instrumentation (Fig. 3).
struct BoundsProbe {
  uint64_t index = 0;        ///< Stream index of the assessed point.
  double lower = 0.0;        ///< Aggregated d_lb.
  double upper = 0.0;        ///< Aggregated d_ub.
  double actual = -1.0;      ///< Exact deviation; -1 when no buffer exists
                             ///< (fast mode) to compute it from.
  double epsilon = 0.0;      ///< Tolerance in force.
};

/// Single-stream state machine. Not thread-safe.
class SegmentEngine {
 public:
  /// `exact_mode` selects BQS (true: keep a buffer, scan on inconclusive
  /// bounds) or FBQS (false: constant space, split on inconclusive bounds).
  SegmentEngine(const BqsOptions& options, bool exact_mode);

  void Reset();
  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out);
  void Finish(std::vector<KeyPoint>* out);

  const DecisionStats& stats() const { return stats_; }
  const BqsOptions& options() const { return options_; }
  bool exact_mode() const { return exact_mode_; }

  /// Instrumentation hook invoked on every bound-based assessment. Keep it
  /// cheap or unset in production runs.
  void SetProbe(std::function<void(const BoundsProbe&)> probe) {
    probe_ = std::move(probe);
  }

  // --- Introspection for tests -------------------------------------------
  bool rotation_established() const { return rotation_established_; }
  double rotation_angle() const { return rotation_angle_; }
  std::size_t buffer_size() const { return buffer_.size(); }
  const QuadrantBound& quadrant(int q) const {
    return quadrants_[static_cast<std::size_t>(q)];
  }

 private:
  enum class Decision { kInclude, kSplit };

  void ProcessPoint(const TrackPoint& pt, uint64_t index,
                    std::vector<KeyPoint>* out, int depth);
  Decision Assess(const TrackPoint& pt, uint64_t index);
  void IncludeNonTrivial(const TrackPoint& pt);
  void StartSegment(const TrackPoint& pt, uint64_t index);
  void EstablishRotation();
  void EmitKey(const TrackPoint& pt, uint64_t index,
               std::vector<KeyPoint>* out);
  double WarmupDeviation(Vec2 end_abs) const;
  DeviationBounds AggregateBounds(Vec2 end_rel_rotated) const;

  BqsOptions options_;
  bool exact_mode_;
  DecisionStats stats_;

  bool have_first_ = false;
  uint64_t next_index_ = 0;
  TrackPoint segment_start_{};
  uint64_t segment_start_index_ = 0;
  TrackPoint prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;

  bool rotation_established_ = false;
  double rotation_angle_ = 0.0;
  std::size_t warmup_count_ = 0;
  std::array<TrackPoint, BqsOptions::kMaxRotationWarmup> warmup_{};

  std::array<QuadrantBound, 4> quadrants_;

  /// Absolute-coordinate segment buffer; used (and non-empty) only in
  /// exact mode. FBQS never touches it, preserving O(1) space.
  std::vector<TrackPoint> buffer_;

  std::function<void(const BoundsProbe&)> probe_;
};

}  // namespace internal
}  // namespace bqs

#endif  // BQS_CORE_SEGMENT_STATE_H_
