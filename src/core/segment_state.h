// The streaming engine behind BqsCompressor and FbqsCompressor: Algorithm 1
// of the paper plus data-centric rotation (Section V-D). The two public
// compressors differ only in how the inconclusive case
// (d_lb <= epsilon < d_ub) is resolved: BQS computes the exact deviation;
// FBQS aggressively splits, which removes all per-point state and makes
// per-point time and space O(1) (Section V-E).
//
// Per-point decision kernel (BqsOptions::bound_kernel): the default kFast
// path classifies quadrants by coordinate sign tests, tracks angular
// extremes by cross products, reuses each quadrant's cached significant
// points, and compares squared deviations against epsilon^2 — no atan2 and
// no square root on the conclusive path. Comparisons inside a ~1e-12
// relative guard band of the threshold (and degenerate/near-axis end
// vectors) re-run the reference transcendental composition, so decisions
// are bit-identical to kReference by construction.
//
// BQS's exact resolve is driven by ExactResolver: kAdaptive (default)
// rescans the flat segment buffer while it is short and migrates to an
// incrementally-maintained Melkman hull at adaptive_resolver_threshold
// points; kHull always maintains the hull (O(h) resolves, O(h) space);
// kBruteForce keeps the paper's O(n)-per-resolve whole-buffer rescan as the
// reference implementation the other paths are verified against.
#ifndef BQS_CORE_SEGMENT_STATE_H_
#define BQS_CORE_SEGMENT_STATE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/simd.h"
#include "core/bounds.h"
#include "core/decision_stats.h"
#include "core/options.h"
#include "core/quadrant_bound.h"
#include "geometry/melkman_hull.h"
#include "trajectory/point.h"

namespace bqs {
namespace internal {

/// Borrowed view of track points embedded in a larger record array at a
/// fixed byte stride (TrackPoint spans, or the `point` member of
/// FleetRecord runs). This is what lets the fleet span-dispatch path hand
/// per-device runs straight to the batch kernel without gathering them
/// into a contiguous vector first: the SoA pre-rotation kernel reads the
/// two leading coordinates through the stride directly.
class PointView {
 public:
  explicit PointView(std::span<const TrackPoint> pts)
      : base_(reinterpret_cast<const unsigned char*>(pts.data())),
        stride_(sizeof(TrackPoint)),
        size_(pts.size()) {}
  explicit PointView(std::span<const FleetRecord> run)
      : base_(reinterpret_cast<const unsigned char*>(run.data()) +
              offsetof(FleetRecord, point)),
        stride_(sizeof(FleetRecord)),
        size_(run.size()) {}

  const TrackPoint& operator[](std::size_t i) const {
    return *reinterpret_cast<const TrackPoint*>(base_ + i * stride_);
  }
  PointView Sub(std::size_t offset, std::size_t count) const {
    return PointView(base_ + offset * stride_, stride_, count);
  }
  const unsigned char* base() const { return base_; }
  std::size_t stride() const { return stride_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  PointView(const unsigned char* base, std::size_t stride, std::size_t size)
      : base_(base), stride_(stride), size_(size) {}

  const unsigned char* base_;
  std::size_t stride_;
  std::size_t size_;
};

/// Observation of one bound-based decision, for instrumentation (Fig. 3).
struct BoundsProbe {
  uint64_t index = 0;        ///< Stream index of the assessed point.
  double lower = 0.0;        ///< Aggregated d_lb.
  double upper = 0.0;        ///< Aggregated d_ub.
  double actual = -1.0;      ///< Exact deviation; -1 when no exact state
                             ///< exists (fast mode) to compute it from.
  double epsilon = 0.0;      ///< Tolerance in force.
};

/// Single-stream state machine. Not thread-safe.
class SegmentEngine {
 public:
  /// `exact_mode` selects BQS (true: keep exact per-segment state, resolve
  /// inconclusive bounds) or FBQS (false: constant space, split on
  /// inconclusive bounds).
  SegmentEngine(const BqsOptions& options, bool exact_mode);

  void Reset();
  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out);
  /// Batched ingest: identical decisions to per-point Push, but hoists the
  /// first-point setup, the probe dispatch and the per-point stats updates
  /// out of the loop, and pre-rotates whole runs of points into an SoA
  /// scratch (structure-of-arrays: rotated x, rotated y, |rel|^2) using the
  /// cached rotation cos/sin, so the decision loop reads straight-line
  /// precomputed values. This is the hot path CompressAll and the benches
  /// use.
  void PushBatch(std::span<const TrackPoint> pts, std::vector<KeyPoint>* out);
  /// PushBatch over a fleet span run: the per-device records enter the
  /// batch (and vector) kernel directly through a strided view — no
  /// gather copy. Decisions are identical to pushing each record's point.
  void PushRecords(std::span<const FleetRecord> run,
                   std::vector<KeyPoint>* out);
  void Finish(std::vector<KeyPoint>* out);

  const DecisionStats& stats() const { return stats_; }
  const BqsOptions& options() const { return options_; }
  bool exact_mode() const { return exact_mode_; }

  /// Heap bytes of growable per-segment state (brute-force buffer, hull,
  /// pending hull batch). 0 in fast mode, which keeps no such state. The
  /// PushBatch SoA scratch is excluded: it is constant-bounded working
  /// memory (kBatchChunk doubles per lane), not per-segment growth.
  std::size_t StateBytes() const {
    return buffer_.capacity() * sizeof(TrackPoint) +
           hull_pending_.capacity() * sizeof(Vec2) + hull_.StateBytes();
  }

  /// Instrumentation hook invoked on every bound-based assessment. Keep it
  /// cheap or unset in production runs. While a probe is set, assessments
  /// take the reference composition (the probe reports bound values in
  /// metres); decisions are unchanged.
  void SetProbe(std::function<void(const BoundsProbe&)> probe) {
    probe_ = std::move(probe);
  }

  /// SoA scratch + screen state for the batch kernel, 32-byte aligned so
  /// the vector tiers can use full-width loads/stores on the lane arrays.
  /// Allocated lazily on the first prepared chunk.
  struct alignas(32) BatchScratch {
    static constexpr std::size_t kCapacity = 128;
    alignas(32) double rx[kCapacity];
    alignas(32) double ry[kCapacity];
    alignas(32) double nsq[kCapacity];
    /// Per-lane conclusive-include verdicts from the vector screen.
    unsigned char screen[kCapacity];
    /// Marshalled per-quadrant screen context (see MarshalScreenState).
    simd::ScreenState state;
    /// quad_epoch_ value `state` was marshalled against; 0 = never.
    uint64_t state_epoch = 0;
  };

  // --- Introspection for tests -------------------------------------------
  bool rotation_established() const { return rotation_established_; }
  /// SIMD tier the engine snapshotted at construction.
  simd::Tier batch_tier() const { return kernels_->tier; }
  /// Lazily-allocated batch scratch; null before the first prepared chunk.
  const BatchScratch* batch_scratch() const { return scratch_.get(); }
  double rotation_angle() const { return rotation_angle_; }
  /// Flat-buffer size (brute-force resolver, or adaptive before its
  /// migration point); 0 once the hull owns the segment.
  std::size_t buffer_size() const { return buffer_.size(); }
  /// Hull vertex count of the current segment (hull-owned segments only).
  std::size_t hull_size() const { return hull_.size(); }
  /// True when the current segment's exact state lives in the hull.
  bool hull_active() const { return hull_active_; }
  const QuadrantBound& quadrant(int q) const {
    return quadrants_[static_cast<std::size_t>(q)];
  }

 private:
  enum class Decision { kInclude, kSplit };
  /// Verdict of the fast kernel's aggregated threshold test.
  enum class FastOutcome { kInclude, kSplit, kInconclusive, kFallback };

  template <bool kProbed>
  void ProcessPoint(const TrackPoint& pt, uint64_t index,
                    std::vector<KeyPoint>* out, int depth);
  /// ProcessPoint for a batch point whose rotated frame was precomputed in
  /// the SoA scratch. On a split the point re-enters through the scalar
  /// ProcessPoint (the new segment has a different origin/rotation).
  template <bool kProbed>
  void ProcessPrepared(const TrackPoint& pt, uint64_t index, Vec2 rel_rot,
                       double rel_norm_sq, std::vector<KeyPoint>* out);
  /// Shared PushBatch/PushRecords body over the strided view.
  void PushView(PointView pts, std::vector<KeyPoint>* out);
  template <bool kProbed>
  void RunBatch(PointView pts, std::vector<KeyPoint>* out);
  template <bool kProbed>
  Decision Assess(const TrackPoint& pt, uint64_t index);
  /// Assess() once the rotated frame and |rel|^2 are in hand (shared by the
  /// scalar and the SoA-prepared paths; both compute the inputs with the
  /// same expressions, so decisions are bit-identical).
  template <bool kProbed>
  Decision AssessPrepared(const TrackPoint& pt, uint64_t index, Vec2 rel_rot,
                          double rel_norm_sq);
  /// The bound-vs-epsilon decision core on the rotated end vector.
  template <bool kProbed>
  Decision AssessRotated(const TrackPoint& pt, uint64_t index, Vec2 rel_rot,
                         bool trivial);
  /// Aggregated fast-kernel bounds + squared threshold test. kFallback:
  /// guard band hit, degenerate end, or near-axis end — caller re-runs the
  /// reference composition.
  FastOutcome FastAssess(Vec2 end_rel_rotated, double eps) const;
  /// Sign-test quadrant classification with the sub-ulp axis-sliver
  /// deferral to the atan2 semantics (counts a kernel fallback).
  int FastClassify(Vec2 rel_rot);
  /// Classifies rel_rot once (per the active kernel's hoisted scheme) and
  /// folds it into its QuadrantBound. Shared by the include path and the
  /// warm-up replay in EstablishRotation.
  void AddToQuadrants(Vec2 rel_rot);
  /// Conclusive-include tail (d_ub <= eps) shared by both kernels.
  Decision IncludeByUpper(const TrackPoint& pt, Vec2 rel_rot, bool trivial);
  /// Inconclusive tail: exact resolve (BQS) or aggressive split (FBQS).
  Decision ResolveInconclusive(const TrackPoint& pt, Vec2 rel_rot,
                               bool trivial);
  void IncludeNonTrivial(const TrackPoint& pt, Vec2 rel_rot);
  /// Routes a buffered point into the active exact structure: flat buffer
  /// (brute force / adaptive pre-migration, with the adaptive migration
  /// into the hull at the threshold) or the Melkman hull.
  void AddExactPoint(const TrackPoint& pt);
  void StartSegment(const TrackPoint& pt, uint64_t index);
  void EstablishRotation();
  void EmitKey(const TrackPoint& pt, uint64_t index,
               std::vector<KeyPoint>* out);
  /// rel mapped into the rotated quadrant frame; bit-identical to
  /// rel.Rotated(-rotation_angle_) but reuses the cached cos/sin instead of
  /// re-deriving them per point. The exact-identity shortcut matches the
  /// one in the vector prepare kernels (simd_lanes.h) so both paths emit
  /// the same bits even where 1.0 * x + 0.0 * y would rewrite a signed
  /// zero; it is the common case for every pre-rotation segment.
  Vec2 ToRotatedFrame(Vec2 rel) const {
    if (rot_sin_ == 0.0 && rot_cos_ == 1.0) return rel;
    return {rot_cos_ * rel.x + rot_sin_ * rel.y,
            -rot_sin_ * rel.x + rot_cos_ * rel.y};
  }
  /// Fills the SoA scratch with the rotated frame and |rel|^2 of `pts`
  /// against the current segment origin/rotation, through the active
  /// SIMD tier's pre-rotation kernel (the scalar tier runs the identical
  /// expressions lane by lane).
  void PrepareBatch(PointView pts);
  /// Rebuilds the vector screen's per-quadrant context (candidate point
  /// sets, wedge guard flags, parity) from the current quadrant state.
  /// Called lazily when the screen observes a stale state_epoch; the
  /// wedge test and candidate selection are end-independent, which is
  /// what makes this a per-mutation (not per-point) cost.
  void MarshalScreenState();
  /// Rebuilds the vector screen's pre-rotation context: the trivial test
  /// alone when the warm-up buffer is empty (or the paper rule is on),
  /// else the buffered warm-up candidates relative to the segment start
  /// so the screen can run the warm-up deviation verdict lane-parallel.
  void MarshalWarmupScreen();
  /// Stages a buffered point for the hull. Hull maintenance is lazy: the
  /// point lands in a small pending batch (cap kHullDrainBatch, so space
  /// stays O(h)) and is only folded in when an exact resolve needs the
  /// hull — streams whose bounds stay conclusive never pay for hull
  /// construction at all.
  void AddHullPoint(Vec2 pos);
  void DrainPendingHull();
  /// Exact deviation of the current segment's interior points against the
  /// path (segment start, end_abs), via the configured resolver. Non-const:
  /// drains the pending hull batch.
  double ExactDeviation(Vec2 end_abs);
  /// Exact deviation of the warm-up points (pre-rotation segment prefix).
  double WarmupDeviation(Vec2 end_abs) const;
  DeviationBounds AggregateBounds(Vec2 end_rel_rotated) const;

  BqsOptions options_;
  bool exact_mode_;
  bool fast_kernel_;  ///< options_.bound_kernel == BoundKernel::kFast.
  DecisionStats stats_;

  bool have_first_ = false;
  uint64_t next_index_ = 0;
  TrackPoint segment_start_{};
  uint64_t segment_start_index_ = 0;
  TrackPoint prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;

  bool rotation_established_ = false;
  double rotation_angle_ = 0.0;
  double rot_cos_ = 1.0;
  double rot_sin_ = 0.0;
  std::size_t warmup_count_ = 0;
  std::array<TrackPoint, BqsOptions::kMaxRotationWarmup> warmup_{};

  std::array<QuadrantBound, 4> quadrants_;

  /// Incremental hull of the segment buffer (hull-owned segments). BQS-
  /// only: FBQS keeps no exact state of any kind (O(1) space).
  MelkmanHull hull_;
  /// True when the hull is the live exact structure for this segment:
  /// always under kHull, past the migration point under kAdaptive.
  bool hull_active_ = false;
  /// Points staged for the hull but not yet folded in (lazy maintenance).
  static constexpr std::size_t kHullDrainBatch = 256;
  std::vector<Vec2> hull_pending_;

  /// Absolute-coordinate segment buffer; non-empty only under
  /// ExactResolver::kBruteForce and kAdaptive before migration.
  std::vector<TrackPoint> buffer_;

  /// SoA scratch for PushBatch (see PrepareBatch and BatchScratch). The
  /// fill window starts at kBatchSeed after every split and doubles to
  /// kBatchChunk while chunks run to completion, so split-heavy streams do
  /// not pay for discarded pre-rotation work.
  static constexpr std::size_t kBatchChunk = BatchScratch::kCapacity;
  static constexpr std::size_t kBatchSeed = 16;
  std::unique_ptr<BatchScratch> scratch_;
  std::size_t batch_fill_ = kBatchSeed;

  /// Kernel table snapshotted at construction (runtime CPUID dispatch +
  /// the BQS_FORCE_SCALAR override; see common/simd.h).
  const simd::KernelTable* kernels_;
  /// True when the vector conclusive screen applies: a vector tier is
  /// active and the decision for a trivial point is the pure function of
  /// (rel_rot, quadrant state) the screen replicates — the fast kernel
  /// under the line metric, or the paper's unconditional trivial include
  /// under any kernel/metric.
  bool screen_enabled_ = false;
  /// A vector tier is active at all (necessary condition for any screen).
  bool screen_vector_ = false;
  /// The pre-rotation warm-up verdict is screenable: fast kernel under
  /// the line metric (the vectorized verdict replicates exactly that
  /// scalar path; the segment metric and the reference kernel stay
  /// scalar). Trivial-only pre-rotation screening (empty warm-up buffer,
  /// or the paper rule) needs only screen_vector_.
  bool screen_warmup_ok_ = false;
  /// Lanes screened per screen_lanes call; a small multiple of the vector
  /// width, trading call overhead against re-screening after a mutation.
  std::size_t screen_group_ = 0;
  /// epsilon^2 with the same expression as the scalar trivial test.
  double trivial_eps_sq_ = 0.0;
  /// Monotone version of the decision state the screen depends on
  /// (bumped by AddToQuadrants, StartSegment, and warm-up buffer growth);
  /// screened-ahead verdicts and the marshalled screen context are valid
  /// only while it is unchanged.
  uint64_t quad_epoch_ = 0;

  std::function<void(const BoundsProbe&)> probe_;
};

}  // namespace internal
}  // namespace bqs

#endif  // BQS_CORE_SEGMENT_STATE_H_
