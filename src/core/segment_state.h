// The streaming engine behind BqsCompressor and FbqsCompressor: Algorithm 1
// of the paper plus data-centric rotation (Section V-D). The two public
// compressors differ only in how the inconclusive case
// (d_lb <= epsilon < d_ub) is resolved: BQS computes the exact deviation;
// FBQS aggressively splits, which removes all per-point state and makes
// per-point time and space O(1) (Section V-E).
//
// BQS's exact resolve is driven by ExactResolver: the default maintains a
// Melkman convex hull of the segment buffer incrementally and scans only its
// vertices (O(h) per resolve, amortized O(1) maintenance per point — the max
// deviation from a chord is attained at a hull vertex), while kBruteForce
// keeps the paper's O(n)-per-resolve whole-buffer rescan as the reference
// implementation the hull path is verified against.
#ifndef BQS_CORE_SEGMENT_STATE_H_
#define BQS_CORE_SEGMENT_STATE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/bounds.h"
#include "core/decision_stats.h"
#include "core/options.h"
#include "core/quadrant_bound.h"
#include "geometry/melkman_hull.h"
#include "trajectory/point.h"

namespace bqs {
namespace internal {

/// Observation of one bound-based decision, for instrumentation (Fig. 3).
struct BoundsProbe {
  uint64_t index = 0;        ///< Stream index of the assessed point.
  double lower = 0.0;        ///< Aggregated d_lb.
  double upper = 0.0;        ///< Aggregated d_ub.
  double actual = -1.0;      ///< Exact deviation; -1 when no exact state
                             ///< exists (fast mode) to compute it from.
  double epsilon = 0.0;      ///< Tolerance in force.
};

/// Single-stream state machine. Not thread-safe.
class SegmentEngine {
 public:
  /// `exact_mode` selects BQS (true: keep exact per-segment state, resolve
  /// inconclusive bounds) or FBQS (false: constant space, split on
  /// inconclusive bounds).
  SegmentEngine(const BqsOptions& options, bool exact_mode);

  void Reset();
  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out);
  /// Batched ingest: identical decisions to per-point Push, but hoists the
  /// first-point setup, the probe dispatch and the per-point stats updates
  /// out of the loop. This is the hot path CompressAll and the benches use.
  void PushBatch(std::span<const TrackPoint> pts, std::vector<KeyPoint>* out);
  void Finish(std::vector<KeyPoint>* out);

  const DecisionStats& stats() const { return stats_; }
  const BqsOptions& options() const { return options_; }
  bool exact_mode() const { return exact_mode_; }

  /// Heap bytes of growable per-segment state (brute-force buffer, hull,
  /// pending hull batch). 0 in fast mode, which keeps no such state.
  std::size_t StateBytes() const {
    return buffer_.capacity() * sizeof(TrackPoint) +
           hull_pending_.capacity() * sizeof(Vec2) + hull_.StateBytes();
  }

  /// Instrumentation hook invoked on every bound-based assessment. Keep it
  /// cheap or unset in production runs.
  void SetProbe(std::function<void(const BoundsProbe&)> probe) {
    probe_ = std::move(probe);
  }

  // --- Introspection for tests -------------------------------------------
  bool rotation_established() const { return rotation_established_; }
  double rotation_angle() const { return rotation_angle_; }
  /// Brute-force-resolver buffer size; 0 under the (default) hull resolver.
  std::size_t buffer_size() const { return buffer_.size(); }
  /// Hull vertex count of the current segment (hull resolver only).
  std::size_t hull_size() const { return hull_.size(); }
  const QuadrantBound& quadrant(int q) const {
    return quadrants_[static_cast<std::size_t>(q)];
  }

 private:
  enum class Decision { kInclude, kSplit };

  template <bool kProbed>
  void ProcessPoint(const TrackPoint& pt, uint64_t index,
                    std::vector<KeyPoint>* out, int depth);
  template <bool kProbed>
  void RunBatch(std::span<const TrackPoint> pts, std::vector<KeyPoint>* out);
  template <bool kProbed>
  Decision Assess(const TrackPoint& pt, uint64_t index);
  void IncludeNonTrivial(const TrackPoint& pt, Vec2 rel_rot);
  void StartSegment(const TrackPoint& pt, uint64_t index);
  void EstablishRotation();
  void EmitKey(const TrackPoint& pt, uint64_t index,
               std::vector<KeyPoint>* out);
  /// rel mapped into the rotated quadrant frame; bit-identical to
  /// rel.Rotated(-rotation_angle_) but reuses the cached cos/sin instead of
  /// re-deriving them per point.
  Vec2 ToRotatedFrame(Vec2 rel) const {
    return {rot_cos_ * rel.x + rot_sin_ * rel.y,
            -rot_sin_ * rel.x + rot_cos_ * rel.y};
  }
  /// Stages a buffered point for the hull. Hull maintenance is lazy: the
  /// point lands in a small pending batch (cap kHullDrainBatch, so space
  /// stays O(h)) and is only folded in when an exact resolve needs the
  /// hull — streams whose bounds stay conclusive never pay for hull
  /// construction at all.
  void AddHullPoint(Vec2 pos);
  void DrainPendingHull();
  /// Exact deviation of the current segment's interior points against the
  /// path (segment start, end_abs), via the configured resolver. Non-const:
  /// drains the pending hull batch.
  double ExactDeviation(Vec2 end_abs);
  /// Exact deviation of the warm-up points (pre-rotation segment prefix).
  double WarmupDeviation(Vec2 end_abs) const;
  DeviationBounds AggregateBounds(Vec2 end_rel_rotated) const;

  BqsOptions options_;
  bool exact_mode_;
  /// Exact state is a Melkman hull (default) instead of the flat buffer.
  bool use_hull_;
  DecisionStats stats_;

  bool have_first_ = false;
  uint64_t next_index_ = 0;
  TrackPoint segment_start_{};
  uint64_t segment_start_index_ = 0;
  TrackPoint prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;

  bool rotation_established_ = false;
  double rotation_angle_ = 0.0;
  double rot_cos_ = 1.0;
  double rot_sin_ = 0.0;
  std::size_t warmup_count_ = 0;
  std::array<TrackPoint, BqsOptions::kMaxRotationWarmup> warmup_{};

  std::array<QuadrantBound, 4> quadrants_;

  /// Incremental hull of the segment buffer (hull resolver). BQS-only:
  /// FBQS keeps no exact state of any kind (O(1) space).
  MelkmanHull hull_;
  /// Points staged for the hull but not yet folded in (lazy maintenance).
  static constexpr std::size_t kHullDrainBatch = 256;
  std::vector<Vec2> hull_pending_;

  /// Absolute-coordinate segment buffer; used (and non-empty) only by BQS
  /// under ExactResolver::kBruteForce.
  std::vector<TrackPoint> buffer_;

  std::function<void(const BoundsProbe&)> probe_;
};

}  // namespace internal
}  // namespace bqs

#endif  // BQS_CORE_SEGMENT_STATE_H_
