// The Fast BQS compressor (paper Section V-E): identical to BQS except the
// inconclusive-bounds case aggressively splits instead of scanning, which
// eliminates the segment buffer. Per-point time and space are O(1); for
// the whole stream, O(n) time and O(1) space (Table I).
#ifndef BQS_CORE_FBQS_COMPRESSOR_H_
#define BQS_CORE_FBQS_COMPRESSOR_H_

#include "core/segment_state.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Constant-space error-bounded streaming compressor, suitable for the
/// 4 KB-RAM tracker class the paper targets: the entire streaming state is
/// this object (no heap growth during steady-state operation).
class FbqsCompressor final : public StreamCompressor {
 public:
  explicit FbqsCompressor(const BqsOptions& options = {})
      : engine_(options, /*exact_mode=*/false) {}

  void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) override {
    engine_.Push(pt, out);
  }
  void PushBatch(std::span<const TrackPoint> points,
                 std::vector<KeyPoint>* out) override {
    engine_.PushBatch(points, out);
  }
  void PushRun(std::span<const FleetRecord> run,
               std::vector<TrackPoint>& /*gather*/,
               std::vector<KeyPoint>* out) override {
    // Fleet span runs enter the batch (and vector) kernel through a
    // strided view of the records — no gather copy.
    engine_.PushRecords(run, out);
  }
  void Finish(std::vector<KeyPoint>* out) override { engine_.Finish(out); }
  void Reset() override { engine_.Reset(); }
  std::string_view name() const override { return "FBQS"; }
  const DecisionStats* decision_stats() const override {
    return &engine_.stats();
  }
  std::size_t StateBytes() const override { return engine_.StateBytes(); }
  double ErrorBound() const override { return engine_.options().epsilon; }

  /// Decision counters (pruning power, split mix).
  const DecisionStats& stats() const { return engine_.stats(); }
  const BqsOptions& options() const { return engine_.options(); }

  /// Instrumentation hook (bounds only; no exact deviation in fast mode).
  void SetProbe(std::function<void(const internal::BoundsProbe&)> probe) {
    engine_.SetProbe(std::move(probe));
  }

  /// Test/diagnostic access to the underlying engine.
  const internal::SegmentEngine& engine() const { return engine_; }

 private:
  internal::SegmentEngine engine_;
};

}  // namespace bqs

#endif  // BQS_CORE_FBQS_COMPRESSOR_H_
