#include "core/quadrant_bound.h"

#include <cmath>
#include <limits>

#include "geometry/angle.h"

namespace bqs {

QuadrantBound::QuadrantBound(int quadrant) : quadrant_(quadrant) { Reset(); }

void QuadrantBound::Reset() {
  count_ = 0;
  box_ = Box2();
  min_angle_ = std::numeric_limits<double>::infinity();
  max_angle_ = -std::numeric_limits<double>::infinity();
}

void QuadrantBound::Add(Vec2 p) {
  ++count_;
  box_.Extend(p);
  const double theta = NormalizeAngle2Pi(std::atan2(p.y, p.x));
  // Quadrant ranges [q*pi/2, (q+1)*pi/2) do not wrap in [0, 2*pi), so plain
  // min/max tracks the angular extent exactly.
  if (theta < min_angle_ || count_ == 1) {
    min_angle_ = theta;
    min_angle_point_ = p;
  }
  if (theta > max_angle_ || count_ == 1) {
    max_angle_ = theta;
    max_angle_point_ = p;
  }
}

QuadrantBound::SignificantPoints QuadrantBound::Significant() const {
  SignificantPoints sig;
  sig.corners = box_.Corners();

  // Nearest / farthest corner by distance to the origin. In a single
  // quadrant these are diagonal opposites, but computing by distance also
  // handles degenerate boxes exactly.
  double best_near = std::numeric_limits<double>::infinity();
  double best_far = -1.0;
  for (const Vec2& c : sig.corners) {
    const double d2 = c.NormSq();
    if (d2 < best_near) {
      best_near = d2;
      sig.near_corner = c;
    }
    if (d2 > best_far) {
      best_far = d2;
      sig.far_corner = c;
    }
  }

  // Bounding-line / box intersections. Each bounding line passes through
  // the extreme-angle buffered point inside the box, so the ray from the
  // origin in that point's direction always hits the box in exact
  // arithmetic. When the extreme point grazes a box corner the slab
  // intervals can come out empty under floating point; the extreme point
  // itself is then the (single-point) intersection.
  sig.min_angle_point = min_angle_point_;
  sig.max_angle_point = max_angle_point_;
  if (const auto hit = box_.IntersectRay({0.0, 0.0}, min_angle_point_)) {
    sig.l1 = hit->entry;
    sig.l2 = hit->exit;
  } else {
    sig.l1 = min_angle_point_;
    sig.l2 = min_angle_point_;
  }
  if (const auto hit = box_.IntersectRay({0.0, 0.0}, max_angle_point_)) {
    sig.u1 = hit->entry;
    sig.u2 = hit->exit;
  } else {
    sig.u1 = max_angle_point_;
    sig.u2 = max_angle_point_;
  }
  return sig;
}

}  // namespace bqs
