#include "core/quadrant_bound.h"

#include <cmath>
#include <cstddef>
#include <limits>

#include "common/op_counters.h"
#include "geometry/angle.h"

namespace bqs {

QuadrantBound::QuadrantBound(int quadrant) : quadrant_(quadrant) { Reset(); }

void QuadrantBound::Reset() {
  count_ = 0;
  box_ = Box2();
  min_angle_ = std::numeric_limits<double>::infinity();
  max_angle_ = -std::numeric_limits<double>::infinity();
  sig_valid_ = false;
}

void QuadrantBound::Add(Vec2 p) {
  ops::CountAtan2();
  AddWithAngle(p, NormalizeAngle2Pi(std::atan2(p.y, p.x)));
}

void QuadrantBound::AddWithAngle(Vec2 p, double theta) {
  ++count_;
  box_.Extend(p);
  sig_valid_ = false;
  // Quadrant ranges [q*pi/2, (q+1)*pi/2) do not wrap in [0, 2*pi), so plain
  // min/max tracks the angular extent exactly.
  if (theta < min_angle_ || count_ == 1) {
    min_angle_ = theta;
    min_angle_point_ = p;
  }
  if (theta > max_angle_ || count_ == 1) {
    max_angle_ = theta;
    max_angle_point_ = p;
  }
}

bool QuadrantBound::AddCross(Vec2 p, bool* changed) {
  ++count_;
  // Geometry-change detection: a point inside the box that displaces
  // neither extreme leaves every significant point bit-identical, so the
  // cache (and the caller's derived state) can survive the add. The
  // Contains pre-test is conservative for non-finite coordinates (they
  // compare false and take the Extend path).
  bool grew = count_ == 1 || !box_.Contains(p);
  if (grew) box_.Extend(p);
  if (count_ == 1) {
    min_angle_point_ = p;
    max_angle_point_ = p;
    sig_valid_ = false;
    if (changed != nullptr) *changed = true;
    return false;
  }
  const Vec2 old_min = min_angle_point_;
  const Vec2 old_max = max_angle_point_;
  // Within one quadrant the angular spread is < pi/2, so cross sign is
  // angle order: cross(a, b) > 0 iff theta(b) > theta(a). min_angle_/
  // max_angle_ stay at their Reset() sentinels; the accessors derive
  // angles on demand.
  //
  // Guard band: two *distinct* directions closer than ~1e-12 rad
  // (cross^2 <= 1e-24 * |e|^2 * |p|^2; the atan2 quantum is ~4e-16) can
  // round to the same atan2 double, where the reference's strict
  // comparison keeps the earlier point while the exact cross sign would
  // switch — so inside the band the reference's theta compare is
  // replicated literally (counted by the caller as a kernel fallback).
  // A bitwise-identical point is a pure tie for both kernels and skips
  // the band (stationary runs stay transcendental-free). Outside the
  // band, cross sign and the strict theta compare provably agree.
  if (p == min_angle_point_ && p == max_angle_point_) {
    if (grew) sig_valid_ = false;
    if (changed != nullptr) *changed = grew;
    return false;
  }
  const auto theta_of = [](Vec2 v) {
    ops::CountAtan2();
    return NormalizeAngle2Pi(std::atan2(v.y, v.x));
  };
  bool deferred = false;
  double theta_p = 0.0;
  bool have_theta_p = false;
  const double p_norm_sq = p.NormSq();

  const double cross_min = min_angle_point_.Cross(p);
  if (cross_min * cross_min <=
          1e-24 * min_angle_point_.NormSq() * p_norm_sq &&
      !(p == min_angle_point_)) {
    theta_p = theta_of(p);
    have_theta_p = true;
    if (theta_p < theta_of(min_angle_point_)) min_angle_point_ = p;
    deferred = true;
  } else if (cross_min < 0.0) {
    min_angle_point_ = p;
  }

  const double cross_max = max_angle_point_.Cross(p);
  if (cross_max * cross_max <=
          1e-24 * max_angle_point_.NormSq() * p_norm_sq &&
      !(p == max_angle_point_)) {
    if (!have_theta_p) theta_p = theta_of(p);
    if (theta_p > theta_of(max_angle_point_)) max_angle_point_ = p;
    deferred = true;
  } else if (cross_max > 0.0) {
    max_angle_point_ = p;
  }
  const bool moved =
      grew || !(min_angle_point_ == old_min) || !(max_angle_point_ == old_max);
  if (moved) sig_valid_ = false;
  if (changed != nullptr) *changed = moved;
  return deferred;
}

double QuadrantBound::min_angle() const {
  if (count_ > 0 && std::isinf(min_angle_)) {
    return NormalizeAngle2Pi(
        std::atan2(min_angle_point_.y, min_angle_point_.x));
  }
  return min_angle_;
}

double QuadrantBound::max_angle() const {
  if (count_ > 0 && std::isinf(max_angle_)) {
    return NormalizeAngle2Pi(
        std::atan2(max_angle_point_.y, max_angle_point_.x));
  }
  return max_angle_;
}

QuadrantBound::SignificantPoints QuadrantBound::ComputeSignificant() const {
  ops::CountSignificantRebuild();
  SignificantPoints sig;
  sig.corners = box_.Corners();

  // Nearest / farthest corner by distance to the origin. In a single
  // quadrant these are diagonal opposites, but computing by distance also
  // handles degenerate boxes exactly.
  double best_near = std::numeric_limits<double>::infinity();
  double best_far = -1.0;
  for (std::size_t i = 0; i < sig.corners.size(); ++i) {
    const Vec2 c = sig.corners[i];
    const double d2 = c.NormSq();
    if (d2 < best_near) {
      best_near = d2;
      sig.near_corner = c;
      sig.near_corner_index = i;
    }
    if (d2 > best_far) {
      best_far = d2;
      sig.far_corner = c;
      sig.far_corner_index = i;
    }
  }

  // Bounding-line / box intersections. Each bounding line passes through
  // the extreme-angle buffered point inside the box, so the ray from the
  // origin in that point's direction always hits the box in exact
  // arithmetic. When the extreme point grazes a box corner the slab
  // intervals can come out empty under floating point; the extreme point
  // itself is then the (single-point) intersection.
  sig.min_angle_point = min_angle_point_;
  sig.max_angle_point = max_angle_point_;
  if (const auto hit = box_.IntersectRay({0.0, 0.0}, min_angle_point_)) {
    sig.l1 = hit->entry;
    sig.l2 = hit->exit;
  } else {
    sig.l1 = min_angle_point_;
    sig.l2 = min_angle_point_;
  }
  if (const auto hit = box_.IntersectRay({0.0, 0.0}, max_angle_point_)) {
    sig.u1 = hit->entry;
    sig.u2 = hit->exit;
  } else {
    sig.u1 = max_angle_point_;
    sig.u2 = max_angle_point_;
  }

  // End-independent wedge classification (fast kernel; see FastWedgeSide).
  // Hoisted here so neither the per-point composition nor the vector
  // screen's marshalling redoes the eight cross products per use.
  const double nmin = min_angle_point_.NormSq();
  const double nmax = max_angle_point_.NormSq();
  sig.wedge_ok = true;
  for (std::size_t i = 0; i < 4; ++i) {
    const Vec2 c = sig.corners[i];
    const double nc = c.NormSq();
    const int side_min =
        FastWedgeSide(min_angle_point_.Cross(c), 1e-18 * nmin * nc);
    const int side_max =
        FastWedgeSide(c.Cross(max_angle_point_), 1e-18 * nmax * nc);
    if (side_min == 0 || side_max == 0) sig.wedge_ok = false;
    sig.corner_in_wedge[i] = side_min > 0 && side_max > 0;
  }
  return sig;
}

}  // namespace bqs
