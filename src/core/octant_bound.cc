#include "core/octant_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_utils.h"
#include "geometry/polyhedron.h"

namespace bqs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kInvSqrt2 = 0.70710678118654752440;
}  // namespace

OctantBound::OctantBound(int octant)
    : octant_(octant),
      sign_{(octant & 1) ? -1.0 : 1.0, (octant & 2) ? -1.0 : 1.0,
            (octant & 4) ? -1.0 : 1.0} {
  Reset();
}

void OctantBound::Reset() {
  count_ = 0;
  box_ = Box3();
  az_min_ = kInf;
  az_max_ = -kInf;
  incl_min_ = kInf;
  incl_max_ = -kInf;
  hull_cache_valid_ = false;
  paper_cache_valid_ = false;
}

Vec3 OctantBound::Flip(Vec3 p) const {
  return {p.x * sign_.x, p.y * sign_.y, p.z * sign_.z};
}

void OctantBound::Add(Vec3 p) {
  const Vec3 c = Flip(p);  // canonical frame: all components >= 0.
  ++count_;
  hull_cache_valid_ = false;
  paper_cache_valid_ = false;
  box_.Extend(c);
  // Azimuth about the z axis; points on the z axis contribute azimuth 0.
  const double az = (c.x == 0.0 && c.y == 0.0) ? 0.0 : std::atan2(c.y, c.x);
  az_min_ = std::min(az_min_, az);
  az_max_ = std::max(az_max_, az);
  // Inclination of the anchored plane through this point: the anchor line
  // is the XY diagonal perpendicular to the octant's radial diagonal
  // (paper: anchors (sign(x), -sign(y), 0) and (-sign(x), sign(y), 0)), so
  // the dihedral angle to the XY plane is atan2(z, (x + y)/sqrt(2)).
  const double s = (c.x + c.y) * kInvSqrt2;
  const double incl = (s == 0.0 && c.z == 0.0) ? 0.0 : std::atan2(c.z, s);
  incl_min_ = std::min(incl_min_, incl);
  incl_max_ = std::max(incl_max_, incl);
}

std::vector<Plane3> OctantBound::WedgePlanes() const {
  std::vector<Plane3> planes;
  if (empty()) return planes;
  planes.reserve(4);
  // Vertical planes contain the z axis; Eval(p) = r_xy * sin(az - az_p).
  planes.push_back(
      Plane3{{std::sin(az_min_), -std::cos(az_min_), 0.0}, 0.0});
  planes.push_back(
      Plane3{{-std::sin(az_max_), std::cos(az_max_), 0.0}, 0.0});
  // Inclined planes contain the anchor line; Eval(p) = rho * sin(incl -
  // incl_p) up to a positive factor.
  planes.push_back(Plane3{{std::sin(incl_min_) * kInvSqrt2,
                           std::sin(incl_min_) * kInvSqrt2,
                           -std::cos(incl_min_)},
                          0.0});
  planes.push_back(Plane3{{-std::sin(incl_max_) * kInvSqrt2,
                           -std::sin(incl_max_) * kInvSqrt2,
                           std::cos(incl_max_)},
                          0.0});
  return planes;
}

const std::vector<Vec3>& OctantBound::HullVertices() const {
  if (hull_cache_valid_) return hull_cache_;
  if (empty()) {
    hull_cache_.clear();
  } else {
    // Tolerance scaled to the prism size so huge coordinates stay robust.
    const double scale =
        std::max({box_.max().x, box_.max().y, box_.max().z, 1.0});
    hull_cache_ = ClipBoxVertices(box_, WedgePlanes(), 1e-9 * scale);
  }
  hull_cache_valid_ = true;
  return hull_cache_;
}

const std::vector<Vec3>& OctantBound::PaperSignificantPoints() const {
  if (paper_cache_valid_) return paper_cache_;
  paper_cache_ = ComputePaperSignificantPoints();
  paper_cache_valid_ = true;
  return paper_cache_;
}

std::vector<Vec3> OctantBound::ComputePaperSignificantPoints() const {
  if (empty()) return {};
  const double scale =
      std::max({box_.max().x, box_.max().y, box_.max().z, 1.0});
  const double eps = 1e-9 * scale;
  std::vector<Vec3> points;
  const std::vector<Plane3> box_planes = BoxPlanes(box_);
  for (const Plane3& cut : WedgePlanes()) {
    // The section polygon of the cutting plane with the prism: constrain
    // the plane from both sides and enumerate.
    std::vector<Plane3> planes = box_planes;
    planes.push_back(cut);
    planes.push_back(Plane3{-cut.normal, -cut.offset});
    for (const Vec3& v : EnumerateVertices(std::move(planes), eps)) {
      bool duplicate = false;
      for (const Vec3& u : points) {
        if (DistanceSq(u, v) <= eps * eps) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) points.push_back(v);
    }
  }
  // Plus the prism vertex farthest from the origin.
  Vec3 far{};
  double best = -1.0;
  for (const Vec3& c : box_.Corners()) {
    if (c.NormSq() > best) {
      best = c.NormSq();
      far = c;
    }
  }
  points.push_back(far);
  return points;
}

}  // namespace bqs
