// 4-D BQS — the extension the paper closes with ("Exploring the potential
// of a 4-D BQS could be another interesting extension"): compress
// <x, y, altitude, scaled time> streams with a hard 4-D deviation bound.
//
// The bounding structure generalizes Theorem 5.2 to hyper-boxes per
// orthant (16 orthants): the upper bound is the max deviation over the 16
// hyper-box corners (distance-to-line is convex, so its max over the box
// is attained at a corner — provably sound in any dimension); the lower
// bound is the max deviation over the tracked per-axis extreme points,
// which are actual buffered points. The angular bounding machinery of the
// 2-D/3-D systems (whose 4-D analogue the paper does not define) is
// intentionally omitted; the corner bounds alone already prune the easy
// decisions, and the exact engine resolves the rest.
#ifndef BQS_CORE_BQS4D_COMPRESSOR_H_
#define BQS_CORE_BQS4D_COMPRESSOR_H_

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/bounds.h"
#include "core/decision_stats.h"
#include "geometry/line2.h"
#include "geometry/vec4.h"
#include "trajectory/deviation.h"

namespace bqs {

/// A 4-D fix (w is typically (t - t0) * time_scale).
struct TrackPoint4 {
  Vec4 pos;
  double t = 0.0;

  constexpr bool operator==(const TrackPoint4&) const = default;
};

/// A retained key point of a 4-D compression.
struct KeyPoint4 {
  TrackPoint4 point;
  uint64_t index = 0;
};

/// Output of the 4-D compressor.
struct CompressedTrajectory4 {
  std::vector<KeyPoint4> keys;

  std::size_t size() const { return keys.size(); }
  double CompressionRate(std::size_t original_points) const {
    if (original_points == 0) return 0.0;
    return static_cast<double>(keys.size()) /
           static_cast<double>(original_points);
  }
};

/// Per-orthant bounding state: hyper-box + per-axis extreme points.
class OrthantBound4 {
 public:
  OrthantBound4() = default;

  void Reset();
  /// Folds a point (relative to the origin) into the box and extremes.
  void Add(Vec4 p);
  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }

  /// The 16 hyper-box corners.
  std::array<Vec4, 16> Corners() const;
  /// The (up to 8) buffered points realizing per-axis minima/maxima.
  const std::array<Vec4, 8>& extreme_points() const { return extremes_; }

 private:
  uint64_t count_ = 0;
  Vec4 min_{}, max_{};
  std::array<Vec4, 8> extremes_{};  ///< [axis*2] = argmin, [axis*2+1] = argmax.
};

/// Options for the 4-D compressor.
struct Bqs4dOptions {
  double epsilon = 10.0;
  DistanceMetric metric = DistanceMetric::kPointToLine;

  Status Validate() const {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    return Status::OK();
  }
};

/// Online, error-bounded 4-D trajectory compressor (exact or fast engine,
/// mirroring the 2-D/3-D family).
class Bqs4dCompressor {
 public:
  explicit Bqs4dCompressor(const Bqs4dOptions& options = {},
                           bool exact_mode = false);

  void Push(const TrackPoint4& pt, std::vector<KeyPoint4>* out);
  void Finish(std::vector<KeyPoint4>* out);
  void Reset();

  std::string_view name() const { return exact_mode_ ? "BQS4D" : "FBQS4D"; }
  const DecisionStats& stats() const { return stats_; }
  const Bqs4dOptions& options() const { return options_; }

 private:
  enum class Decision { kInclude, kSplit };

  void ProcessPoint(const TrackPoint4& pt, uint64_t index,
                    std::vector<KeyPoint4>* out, int depth);
  Decision Assess(const TrackPoint4& pt);
  void StartSegment(const TrackPoint4& pt, uint64_t index);
  void EmitKey(const TrackPoint4& pt, uint64_t index,
               std::vector<KeyPoint4>* out);
  DeviationBounds AggregateBounds(Vec4 end_rel) const;
  static int OrthantOf4(Vec4 v);

  Bqs4dOptions options_;
  bool exact_mode_;
  DecisionStats stats_;

  bool have_first_ = false;
  uint64_t next_index_ = 0;
  TrackPoint4 segment_start_{};
  TrackPoint4 prev_{};
  uint64_t prev_index_ = 0;
  uint64_t last_emitted_index_ = UINT64_MAX;

  std::array<OrthantBound4, 16> orthants_;
  std::vector<TrackPoint4> buffer_;  ///< Exact mode only.
};

/// Runs a 4-D compressor over a whole stream.
CompressedTrajectory4 Compress4dAll(Bqs4dCompressor& compressor,
                                    std::span<const TrackPoint4> points);

/// Exact per-segment deviation verification in 4-D.
DeviationReport Evaluate4dCompression(std::span<const TrackPoint4> original,
                                      const CompressedTrajectory4& compressed,
                                      DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_CORE_BQS4D_COMPRESSOR_H_
