// Configuration shared by the BQS family of compressors.
#ifndef BQS_CORE_OPTIONS_H_
#define BQS_CORE_OPTIONS_H_

#include "common/status.h"
#include "geometry/line2.h"

namespace bqs {

/// Which deviation-bound formulas the quadrant system uses.
enum class BoundsMode {
  /// Provably sound bounds: the paper's candidates plus the in-wedge box
  /// corners and extreme-angle points on the upper side, and the
  /// edge-distance lower bound under the segment metric (see DESIGN.md,
  /// paper-faithfulness notes). Guarantees the error bound; slightly
  /// looser on imperfectly-rotated straight runs. Default.
  kSound,
  /// The paper's literal Theorem 5.3-5.5 / Eq. (8)/(11) bounds. Tighter
  /// (higher pruning power, better FBQS compression — these reproduce the
  /// paper's Figs. 6-7) but *unsound* in degenerate and adversarial
  /// configurations: the error bound can be exceeded. For ablation only.
  kPaperEq8,
};

/// How BQS resolves the inconclusive case (d_lb <= epsilon < d_ub) exactly.
enum class ExactResolver {
  /// Brute-force below adaptive_resolver_threshold buffered points, hull
  /// above: short segments pay the flat rescan (which beats hull
  /// maintenance overhead on well-behaved streams, where segments rarely
  /// grow long), adversarial segments get the O(h) hull. Byte-identical
  /// to both pure modes because the two resolvers agree exactly (the
  /// deviation maximum is attained at a hull vertex). Default.
  kAdaptive,
  /// Scan the vertices of an incrementally-maintained convex hull of the
  /// segment buffer (Melkman). O(h) per resolve, O(h) space, h << n; the
  /// maximum deviation from a chord is attained at a hull vertex, so the
  /// result matches the full scan.
  kHull,
  /// The paper's literal Table I behaviour: rescan the whole segment
  /// buffer. O(n) per resolve, O(n) space — worst-case O(n^2) streams.
  /// Kept as the reference implementation the hull path is checksummed
  /// against (tests and bench_throughput).
  kBruteForce,
};

/// Which per-point bound-maintenance kernel the engine runs.
enum class BoundKernel {
  /// Transcendental-free kernel: sign-test quadrant classification,
  /// cross-product angular-extreme tracking, cached significant points,
  /// and squared-deviation threshold tests (cross^2 vs eps^2*|end|^2 under
  /// the line metric) with sqrt deferred to the inconclusive path. Any
  /// comparison that lands inside a ~1e-12 relative guard band of the
  /// threshold falls back to the reference composition for that push, so
  /// decisions are reference-identical by construction. Default.
  kFast,
  /// The seed's transcendental path: atan2 classification + angular
  /// tracking, significant points rebuilt per push, hypot-based distances
  /// compared against epsilon. Reference implementation the fast kernel is
  /// checksummed against (tests, bench_micro_ops, bench_throughput).
  kReference,
};

/// Options for BqsCompressor / FbqsCompressor (and the 3-D variants, which
/// reuse epsilon/metric). Defaults follow the paper's evaluation setup.
struct BqsOptions {
  /// Error tolerance d in metres: every compressed segment's deviation is
  /// guaranteed <= epsilon.
  double epsilon = 10.0;

  /// Deviation metric. The paper proves its theorems for point-to-line and
  /// gives the Eq. (11) adjustment for point-to-segment.
  DistanceMetric metric = DistanceMetric::kPointToLine;

  /// Data-centric rotation (paper Section V-D): rotate the axes toward the
  /// centroid of the first `rotation_warmup` out-of-epsilon points so the
  /// data splits across two quadrants and the hulls are tighter.
  bool data_centric_rotation = true;

  /// Number of out-of-epsilon points buffered before the rotation is fixed.
  /// The paper suggests ~5; we default slightly higher because a longer
  /// baseline reduces the rotation-estimate bias, which directly tightens
  /// the sound upper bound on straight runs. Must be in
  /// [1, kMaxRotationWarmup].
  int rotation_warmup = 8;

  /// Upper limit for rotation_warmup (fixed-capacity warm-up buffer keeps
  /// FBQS free of dynamic allocation).
  static constexpr int kMaxRotationWarmup = 16;

  /// Paper-faithful handling of points within epsilon of the segment start:
  /// Algorithm 1 includes them unconditionally (Theorem 5.1). That is sound
  /// for them as *interior* points but not as segment *endpoints*: if such
  /// a point ends a segment (split-at-previous or stream end), the deviation
  /// of the earlier buffered points against that end was never verified and
  /// the error bound can be exceeded. With this flag false (default), near-
  /// start points still skip all structure updates (the real content of
  /// Theorem 5.1) but run the O(1) bound check for end-validity. Set true
  /// to reproduce the paper's exact behaviour (ablation only).
  bool paper_trivial_include = false;

  /// Bound formulas; see BoundsMode. kPaperEq8 + paper_trivial_include
  /// together reproduce the paper's Algorithm 1 verbatim.
  BoundsMode bounds_mode = BoundsMode::kSound;

  /// Exact-deviation resolver for BQS (FBQS never resolves exactly after
  /// warm-up). kBruteForce reproduces the seed implementation bit-for-bit
  /// and exists for differential tests and the bench reference.
  ExactResolver exact_resolver = ExactResolver::kAdaptive;

  /// kAdaptive switch-over: segments with fewer buffered points than this
  /// resolve brute-force; at the threshold the buffer migrates into the
  /// Melkman hull and stays there for the segment's remainder. Default
  /// measured on the empirical stream (bench_throughput), whose segments
  /// peak below this: flat rescans of a few dozen points beat Melkman
  /// maintenance (robust orientation tests per insert) until segments grow
  /// into the hundreds, and the O(h)-resolve win only dominates on
  /// adversarial segments growing into the thousands.
  int adaptive_resolver_threshold = 256;

  /// Per-point bound-maintenance kernel; see BoundKernel. kReference
  /// reproduces the seed's transcendental path bit-for-bit.
  BoundKernel bound_kernel = BoundKernel::kFast;

  /// Validates ranges; returns InvalidArgument with an explanation if bad.
  Status Validate() const {
    if (!(epsilon > 0.0)) {
      return Status::InvalidArgument("epsilon must be positive");
    }
    if (rotation_warmup < 1 || rotation_warmup > kMaxRotationWarmup) {
      return Status::InvalidArgument(
          "rotation_warmup must be in [1, kMaxRotationWarmup]");
    }
    if (adaptive_resolver_threshold < 1) {
      return Status::InvalidArgument(
          "adaptive_resolver_threshold must be >= 1");
    }
    return Status::OK();
  }
};

}  // namespace bqs

#endif  // BQS_CORE_OPTIONS_H_
