#include "core/segment_state.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_utils.h"
#include "common/op_counters.h"
#include "geometry/angle.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace internal {

namespace {

/// True when v lies within the sub-ulp sliver of a coordinate axis where
/// the sign-test classifier and the reference's atan2+fmod formula can
/// disagree (the fmod normalization absorbs angles within ~half an ulp of
/// a pi/2 multiple into the boundary; see QuadrantOf). Exactly-on-axis
/// vectors (a zero coordinate) agree by design and are not slivers. The
/// 1e-12 window is ~1e4 times wider than the actual disagreement band.
/// Not hypothetical: data-centric rotation of a stationary or perfectly
/// straight run lands rel vectors exactly here (TLS axis through
/// collinear points leaves rounding-level residuals).
bool NearAxisSliver(Vec2 v) {
  const double ax = std::fabs(v.x);
  const double ay = std::fabs(v.y);
  const double mn = std::min(ax, ay);
  return mn != 0.0 && mn <= 1e-12 * std::max(ax, ay);
}

/// Squared-domain epsilon verdict for a flat scan of buffered points
/// against the path (a, b): +1 when the maximum deviation is definitely
/// <= eps, -1 when definitely greater, 0 inside a ~1e-12 relative guard
/// band of the threshold (caller recomputes with the reference scan). The
/// per-point value is the same |cross| / squared-distance candidate the
/// sqrt-bearing scan would feed into its max, so the verdict matches the
/// reference comparison outside the band by monotonicity.
int SquaredDeviationVerdict(const TrackPoint* pts, std::size_t n, Vec2 a,
                            Vec2 b, DistanceMetric metric, double eps,
                            const simd::KernelTable& kernels) {
  constexpr double kBandLo = 1.0 - 1e-12;
  constexpr double kBandHi = 1.0 + 1e-12;
  double vmax = 0.0;
  double threshold;
  if (metric == DistanceMetric::kPointToLine) {
    const Vec2 d = b - a;
    if (d == Vec2{0.0, 0.0}) return 0;  // degenerate: reference semantics.
    // max over |d x (p - a)| through the active SIMD tier: max over fabs
    // values is associative/commutative bitwise, so the lane-parallel
    // reduction returns the same bits as the scalar scan.
    vmax = kernels.max_abs_cross(reinterpret_cast<const unsigned char*>(pts),
                                 sizeof(TrackPoint), n, a.x, a.y, d.x, d.y);
    vmax *= vmax;
    threshold = eps * eps * d.NormSq();
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      vmax = std::max(vmax, PointToSegmentDistanceSq(pts[i].pos, a, b));
    }
    threshold = eps * eps;
  }
  if (vmax <= threshold * kBandLo) return 1;
  if (vmax > threshold * kBandHi) return -1;
  return 0;
}

}  // namespace

SegmentEngine::SegmentEngine(const BqsOptions& options, bool exact_mode)
    : options_(options),
      exact_mode_(exact_mode),
      fast_kernel_(options.bound_kernel == BoundKernel::kFast),
      quadrants_{QuadrantBound(0), QuadrantBound(1), QuadrantBound(2),
                 QuadrantBound(3)},
      kernels_(&simd::KernelsFor(simd::ActiveTier())) {
  // Misconfiguration is a caller bug (BqsOptions::Validate() rejects it),
  // but nothing forces callers through Validate() and an out-of-range
  // warm-up length would index past the fixed warm-up buffer — so assert
  // in debug and clamp as a release-mode backstop. options() reports the
  // clamped value actually in force.
  assert(options_.Validate().ok());
  options_.rotation_warmup = std::clamp(options_.rotation_warmup, 1,
                                        BqsOptions::kMaxRotationWarmup);
  options_.adaptive_resolver_threshold =
      std::max(options_.adaptive_resolver_threshold, 1);
  trivial_eps_sq_ = options_.epsilon * options_.epsilon;
  // The vector conclusive screen mass-includes trivial points whose
  // decision is a pure function of (rel_rot, quadrant state): the fast
  // kernel's upper-bound test under the line metric, or the paper's
  // unconditional trivial include (any kernel/metric). The segment metric
  // without the paper rule keeps per-point directional state, so it stays
  // on the scalar path.
  screen_vector_ = kernels_->tier != simd::Tier::kScalar;
  screen_enabled_ =
      screen_vector_ &&
      (options_.paper_trivial_include ||
       (fast_kernel_ && options_.metric == DistanceMetric::kPointToLine));
  screen_warmup_ok_ = screen_vector_ && fast_kernel_ &&
                      options_.metric == DistanceMetric::kPointToLine;
  // Screen a few vector-widths per call: enough lanes to amortize the
  // dispatch-call overhead, few enough that a quadrant mutation (which
  // invalidates screened-ahead verdicts) discards little work.
  screen_group_ = 8 * kernels_->lanes;
  Reset();
}

void SegmentEngine::Reset() {
  stats_ = DecisionStats{};
  have_first_ = false;
  next_index_ = 0;
  segment_start_ = TrackPoint{};
  segment_start_index_ = 0;
  prev_ = TrackPoint{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  batch_fill_ = kBatchSeed;
  StartSegment(TrackPoint{}, 0);
}

void SegmentEngine::Push(const TrackPoint& pt, std::vector<KeyPoint>* out) {
  const uint64_t index = next_index_++;
  ++stats_.points;
  if (!have_first_) {
    have_first_ = true;
    EmitKey(pt, index, out);
    StartSegment(pt, index);
    return;
  }
  if (probe_) {
    ProcessPoint<true>(pt, index, out, 0);
  } else {
    ProcessPoint<false>(pt, index, out, 0);
  }
}

void SegmentEngine::PushBatch(std::span<const TrackPoint> pts,
                              std::vector<KeyPoint>* out) {
  PushView(PointView(pts), out);
}

void SegmentEngine::PushRecords(std::span<const FleetRecord> run,
                                std::vector<KeyPoint>* out) {
  PushView(PointView(run), out);
}

void SegmentEngine::PushView(PointView pts, std::vector<KeyPoint>* out) {
  if (pts.empty()) return;
  if (!have_first_) {
    have_first_ = true;
    const uint64_t index = next_index_++;
    ++stats_.points;
    EmitKey(pts[0], index, out);
    StartSegment(pts[0], index);
    pts = pts.Sub(1, pts.size() - 1);
    if (pts.empty()) return;
  }
  stats_.points += pts.size();
  if (probe_) {
    RunBatch<true>(pts, out);
  } else {
    RunBatch<false>(pts, out);
  }
}

void SegmentEngine::PrepareBatch(PointView pts) {
  if (!scratch_) scratch_ = std::make_unique<BatchScratch>();
  // Straight-line SoA transform through the active tier's pre-rotation
  // kernel: the origin subtraction, the cached-cos/sin rotation and
  // |rel|^2 use the same expressions as the scalar path (Assess) on every
  // tier, so the prepared values are bit-identical to what Push would
  // compute point by point.
  const Vec2 origin = segment_start_.pos;
  kernels_->prepare_rotated(pts.base(), pts.stride(), pts.size(), origin.x,
                            origin.y, rot_cos_, rot_sin_, scratch_->rx,
                            scratch_->ry, scratch_->nsq);
}

template <bool kProbed>
void SegmentEngine::RunBatch(PointView pts, std::vector<KeyPoint>* out) {
  std::size_t i = 0;
  const std::size_t n = pts.size();
  // Lane accounting is accumulated locally and bulk-flushed once per
  // batch so the fast path never touches an atomic per point.
  uint64_t screened_points = 0;
  uint64_t scalar_points = 0;
  while (i < n) {
    if (!rotation_established_) {
      if constexpr (!kProbed) {
        // Pre-rotation chunks. Stationary runs spend their whole life
        // here: trivial points never feed the warm-up buffer, so a
        // parked device's segment never establishes a rotation — which
        // makes this path, not the rotated screen, the volume carrier
        // on stop-and-go streams.
        const bool trivial_only_mode =
            options_.paper_trivial_include || warmup_count_ == 0;
        if (screen_vector_ && trivial_only_mode) {
          // Trivial-only screen: the decision for a trivial lane is the
          // trivial test itself (the paper rule, or an empty warm-up
          // buffer), so the fused kernel computes it in one pass with no
          // SoA stores and no separate screen call.
          const std::size_t chunk = std::min(n - i, batch_fill_);
          if (!scratch_) scratch_ = std::make_unique<BatchScratch>();
          BatchScratch& s = *scratch_;
          const PointView sub = pts.Sub(i, chunk);
          const Vec2 origin = segment_start_.pos;
          kernels_->prepare_trivial(sub.base(), sub.stride(), sub.size(),
                                    origin.x, origin.y, trivial_eps_sq_,
                                    s.screen);
          const uint64_t seg_mark = segment_start_index_;
          bool split = false;
          std::size_t j = 0;
          while (j < chunk) {
            if (s.screen[j] != 0) {
              // Run of trivial lanes: include in bulk. Trivial includes
              // mutate no decision state on this path.
              std::size_t k = j + 1;
              while (k < chunk && s.screen[k] != 0) ++k;
              const std::size_t m = k - j;
              stats_.trivial_includes += m;
              next_index_ += m;
              prev_ = pts[i + k - 1];
              prev_index_ = next_index_ - 1;
              screened_points += m;
              j = k;
              continue;
            }
            ProcessPoint<kProbed>(pts[i + j], next_index_++, out, 0);
            ++scalar_points;
            ++j;
            split = segment_start_index_ != seg_mark;
            if (split || rotation_established_ ||
                (!options_.paper_trivial_include && warmup_count_ != 0)) {
              // The origin moved, the frame changed, or trivial lanes now
              // need the warm-up verdict: the fused verdicts are stale.
              break;
            }
          }
          i += j;
          // Same fill adaptation as the rotated loop; establishment is
          // expected once per segment and does not shrink the window.
          batch_fill_ =
              split ? kBatchSeed : std::min(batch_fill_ * 4, kBatchChunk);
          continue;
        }
        if (screen_vector_ && screen_warmup_ok_) {
          // Warm-up screen: trivial lanes must pass the warm-up deviation
          // verdict against the buffered candidates. The frame is still
          // the identity rotation, so the prepared rx/ry are exactly the
          // unrotated rel the verdict consumes.
          const std::size_t chunk = std::min(n - i, batch_fill_);
          PrepareBatch(pts.Sub(i, chunk));
          BatchScratch& s = *scratch_;
          const uint64_t seg_mark = segment_start_index_;
          bool split = false;
          std::size_t screened_until = 0;
          std::size_t j = 0;
          while (j < chunk) {
            if (j >= screened_until && s.nsq[j] <= trivial_eps_sq_) {
              if (s.state_epoch != quad_epoch_) MarshalWarmupScreen();
              const std::size_t g = std::min(chunk - j, screen_group_);
              kernels_->screen_lanes(s.state, s.rx + j, s.ry + j,
                                     s.nsq + j, g, s.screen + j);
              screened_until = j + g;
            }
            if (j < screened_until && s.screen[j] != 0) {
              std::size_t k = j + 1;
              while (k < screened_until && s.screen[k] != 0) ++k;
              const std::size_t m = k - j;
              // Replicated scalar effects: each lane passed the warm-up
              // check and was a trivial include.
              stats_.warmup_checks += m;
              stats_.trivial_includes += m;
              next_index_ += m;
              prev_ = pts[i + k - 1];
              prev_index_ = next_index_ - 1;
              screened_points += m;
              j = k;
              continue;
            }
            const uint64_t epoch_mark = quad_epoch_;
            ProcessPoint<kProbed>(pts[i + j], next_index_++, out, 0);
            ++scalar_points;
            ++j;
            split = segment_start_index_ != seg_mark;
            if (split || rotation_established_) {
              // A split moved the origin; establishment changed the
              // frame. The prepared values are stale either way.
              break;
            }
            if (quad_epoch_ != epoch_mark) screened_until = j;
          }
          i += j;
          batch_fill_ =
              split ? kBatchSeed : std::min(batch_fill_ * 4, kBatchChunk);
          continue;
        }
      }
      // Probe runs and unscreenable configurations: the scalar path,
      // point by point.
      ProcessPoint<kProbed>(pts[i], next_index_++, out, 0);
      ++scalar_points;
      ++i;
      continue;
    }
    const std::size_t chunk = std::min(n - i, batch_fill_);
    PrepareBatch(pts.Sub(i, chunk));
    BatchScratch& s = *scratch_;
    const uint64_t seg_mark = segment_start_index_;
    bool stale = false;
    std::size_t j = 0;
    // Lanes in [0, screened_until) hold screen verdicts computed against
    // the current quadrant state; a mutation invalidates the remainder.
    std::size_t screened_until = 0;
    while (j < chunk) {
      if constexpr (!kProbed) {
        if (screen_enabled_) {
          // Lazy group screen, gated on lane j being trivial: streams
          // with few trivial points never pay for the screen at all. A
          // screened group still resolves its non-trivial lanes (verdict
          // 2 under kQuadrant mode), so mixed trivial/non-trivial runs
          // harvest vector decisions for both kinds.
          if (j >= screened_until && s.nsq[j] <= trivial_eps_sq_) {
            if (s.state_epoch != quad_epoch_) MarshalScreenState();
            const std::size_t g = std::min(chunk - j, screen_group_);
            kernels_->screen_lanes(s.state, s.rx + j, s.ry + j, s.nsq + j, g,
                                   s.screen + j);
            screened_until = j + g;
          }
          if (j < screened_until && s.screen[j] == 1) {
            // Run of conclusively-included trivial lanes: apply the
            // scalar per-lane effects in bulk. Trivial includes never
            // mutate the quadrant/exact state, so the whole run only
            // advances the stream cursor and the stats counter.
            std::size_t k = j + 1;
            while (k < screened_until && s.screen[k] == 1) ++k;
            const std::size_t m = k - j;
            stats_.trivial_includes += m;
            next_index_ += m;
            prev_ = pts[i + k - 1];
            prev_index_ = next_index_ - 1;
            screened_points += m;
            j = k;
            continue;
          }
          if (j < screened_until && s.screen[j] == 2) {
            // Non-trivial conclusive include: the vector proof implies
            // FastAssess would return kInclude, so skip the scalar bound
            // composition and apply IncludeByUpper's effects directly.
            // The quadrant add can mutate decision state, invalidating
            // screened-ahead verdicts like any scalar-lane mutation.
            const uint64_t epoch_mark = quad_epoch_;
            ++stats_.upper_bound_includes;
            IncludeNonTrivial(pts[i + j], Vec2{s.rx[j], s.ry[j]});
            prev_ = pts[i + j];
            prev_index_ = next_index_++;
            ++screened_points;
            ++j;
            if (quad_epoch_ != epoch_mark) screened_until = j;
            continue;
          }
        }
      }
      const uint64_t epoch_mark = quad_epoch_;
      ProcessPrepared<kProbed>(pts[i + j], next_index_++,
                               Vec2{s.rx[j], s.ry[j]}, s.nsq[j], out);
      ++scalar_points;
      ++j;
      if (segment_start_index_ != seg_mark || !rotation_established_) {
        // A split moved the segment origin (and possibly reset the
        // rotation): the remaining prepared values are stale.
        stale = true;
        break;
      }
      if (quad_epoch_ != epoch_mark) {
        // The lane mutated the quadrant state: screened-ahead verdicts
        // no longer reflect it.
        screened_until = j;
      }
    }
    i += j;
    // Adaptive fill window: grow while chunks run to completion, shrink
    // after a split so split-heavy streams discard little prepared work.
    // (A split on the chunk's last element is still a split — the flag,
    // not j == chunk, decides.)
    batch_fill_ = stale ? kBatchSeed : std::min(batch_fill_ * 4, kBatchChunk);
  }
  ops::CountBatchLanePoints(kernels_->lanes, screened_points);
  ops::CountBatchScalarPoints(scalar_points);
}

void SegmentEngine::MarshalScreenState() {
  simd::ScreenState& st = scratch_->state;
  st.num_quads = 0;
  st.eps_sq = trivial_eps_sq_;
  st.mode = options_.paper_trivial_include ? simd::ScreenMode::kTrivialOnly
                                           : simd::ScreenMode::kQuadrant;
  if (st.mode == simd::ScreenMode::kQuadrant) {
    // Per occupied quadrant, precompute the two candidate sets whose
    // max |end x p| reproduces QuadrantFastBounds' upper bound for any
    // end: the in-quadrant composition (intersections, angular extremes,
    // near/far and wedge-interior corners — duplicates are harmless under
    // max) and the out-of-quadrant corner composition. The wedge test is
    // end-independent, so its guard band collapses to one flag: lanes
    // whose end lands in a blocked quadrant are left to the scalar path,
    // which re-runs the per-point test and takes the reference fallback
    // exactly as an unscreened push would.
    const bool paper = options_.bounds_mode == BoundsMode::kPaperEq8;
    for (const QuadrantBound& q : quadrants_) {
      if (q.empty()) continue;
      const QuadrantBound::SignificantPoints& sig = q.Significant();
      simd::ScreenQuadrant& sq = st.quads[st.num_quads++];
      sq.parity = q.quadrant() & 1;
      sq.wedge_blocked = false;
      int count = 0;
      const auto add_in = [&sq, &count](Vec2 p) {
        sq.in_px[count] = p.x;
        sq.in_py[count] = p.y;
        ++count;
      };
      add_in(sig.l1);
      add_in(sig.l2);
      add_in(sig.u1);
      add_in(sig.u2);
      bool corner_in[4] = {false, false, false, false};
      if (!paper) {
        add_in(sig.min_angle_point);
        add_in(sig.max_angle_point);
        corner_in[sig.near_corner_index] = true;
        corner_in[sig.far_corner_index] = true;
        // Wedge classification comes cached with the significant points
        // (end-independent; see ComputeSignificant), so the marshal and
        // the per-point composition agree by construction.
        sq.wedge_blocked = !sig.wedge_ok;
        for (std::size_t k = 0; k < 4; ++k) {
          if (sig.corner_in_wedge[k]) corner_in[k] = true;
        }
      }
      for (std::size_t k = 0; k < 4; ++k) {
        sq.out_px[k] = sig.corners[k].x;
        sq.out_py[k] = sig.corners[k].y;
        if (corner_in[k]) add_in(sig.corners[k]);
      }
      sq.in_count = count;
    }
  }
  scratch_->state_epoch = quad_epoch_;
}

void SegmentEngine::MarshalWarmupScreen() {
  static_assert(simd::kWarmupPointCap >= BqsOptions::kMaxRotationWarmup,
                "screen warm-up capacity must cover the warm-up buffer");
  simd::ScreenState& st = scratch_->state;
  st.eps_sq = trivial_eps_sq_;
  if (options_.paper_trivial_include || warmup_count_ == 0) {
    // No warm-up check runs for these lanes scalar-side (the paper rule
    // short-circuits before it; an empty buffer skips it), so the screen
    // is the trivial test alone.
    st.mode = simd::ScreenMode::kTrivialOnly;
  } else {
    st.mode = simd::ScreenMode::kWarmup;
    st.warm_count = static_cast<int>(warmup_count_);
    for (std::size_t k = 0; k < warmup_count_; ++k) {
      // The same p - a subtraction SquaredDeviationVerdict's scan
      // performs, hoisted out of the per-lane loop (end-independent).
      const Vec2 q = warmup_[k].pos - segment_start_.pos;
      st.warm_px[k] = q.x;
      st.warm_py[k] = q.y;
    }
  }
  scratch_->state_epoch = quad_epoch_;
}

void SegmentEngine::Finish(std::vector<KeyPoint>* out) {
  if (have_first_ && prev_index_ != last_emitted_index_) {
    EmitKey(prev_, prev_index_, out);
  }
}

template <bool kProbed>
void SegmentEngine::ProcessPoint(const TrackPoint& pt, uint64_t index,
                                 std::vector<KeyPoint>* out, int depth) {
  // A point can be re-processed at most once: after a split the new segment
  // contains no interior points, so the second assessment always includes.
  assert(depth <= 1);
  const Decision decision = Assess<kProbed>(pt, index);
  if (decision == Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  // Split: the previous point becomes a key point ending the current
  // segment; the new segment starts there and `pt` re-enters (Fig. 1(d)).
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  ProcessPoint<kProbed>(pt, index, out, depth + 1);
}

template <bool kProbed>
void SegmentEngine::ProcessPrepared(const TrackPoint& pt, uint64_t index,
                                    Vec2 rel_rot, double rel_norm_sq,
                                    std::vector<KeyPoint>* out) {
  if (AssessPrepared<kProbed>(pt, index, rel_rot, rel_norm_sq) ==
      Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  // The prepared frame died with the old segment; re-enter scalar.
  ProcessPoint<kProbed>(pt, index, out, 1);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::Assess(const TrackPoint& pt,
                                              uint64_t index) {
  const Vec2 rel = pt.pos - segment_start_.pos;
  const double eps = options_.epsilon;

  // Theorem 5.1: a point within epsilon of the start can never *itself*
  // deviate by more than epsilon from any path out of the start, so it
  // never enters the bounding structures or the buffer. It may still end
  // the segment later, so by default it must pass the same end-validity
  // assessment as any other candidate end (see BqsOptions::
  // paper_trivial_include for the paper's unconditional include).
  const bool trivial = rel.NormSq() <= eps * eps;
  if (trivial && options_.paper_trivial_include) {
    ++stats_.trivial_includes;
    return Decision::kInclude;
  }

  if (!rotation_established_) {
    // Rotation warm-up (Section V-D): the first few out-of-epsilon points
    // are kept in a tiny fixed buffer and checked exactly; this is a
    // constant-size scan (<= rotation_warmup points, or their hull).
    if (warmup_count_ > 0) {
      ++stats_.warmup_checks;
      // Fast kernel: the warm-up scan is a per-point conclusive-path cost,
      // so it runs in the squared domain too (one sqrt-free pass; the
      // reference scan only on a guard-band hit).
      int verdict = 0;
      if (fast_kernel_) {
        verdict = SquaredDeviationVerdict(warmup_.data(), warmup_count_,
                                          segment_start_.pos, pt.pos,
                                          options_.metric, eps, *kernels_);
        if (verdict == 0) ++stats_.kernel_fallbacks;
      }
      if (verdict < 0) return Decision::kSplit;
      if (verdict == 0 && WarmupDeviation(pt.pos) > eps) {
        return Decision::kSplit;
      }
    }
    if (trivial) {
      ++stats_.trivial_includes;
      return Decision::kInclude;
    }
    // The warm-up buffer is screen-visible state: growing it invalidates
    // screened-ahead pre-rotation verdicts (they were computed against
    // the smaller candidate set).
    ++quad_epoch_;
    warmup_[warmup_count_++] = pt;
    if (exact_mode_) {
      // Warm-up points are segment-buffer points: they must be visible to
      // every later exact resolve. FBQS has no exact state at all — its
      // warm-up checks scan the warmup_ array directly.
      AddExactPoint(pt);
    }
    if (warmup_count_ >= static_cast<std::size_t>(options_.rotation_warmup)) {
      EstablishRotation();
    }
    return Decision::kInclude;
  }

  return AssessRotated<kProbed>(pt, index, ToRotatedFrame(rel), trivial);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::AssessPrepared(const TrackPoint& pt,
                                                      uint64_t index,
                                                      Vec2 rel_rot,
                                                      double rel_norm_sq) {
  // Prepared points only exist for established segments, so this is
  // Assess() minus the warm-up branch, on precomputed inputs.
  const double eps = options_.epsilon;
  const bool trivial = rel_norm_sq <= eps * eps;
  if (trivial && options_.paper_trivial_include) {
    ++stats_.trivial_includes;
    return Decision::kInclude;
  }
  return AssessRotated<kProbed>(pt, index, rel_rot, trivial);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::AssessRotated(const TrackPoint& pt,
                                                     uint64_t index,
                                                     Vec2 rel_rot,
                                                     bool trivial) {
  const double eps = options_.epsilon;

  // Fast kernel: squared-domain threshold test, no transcendentals. A set
  // probe forces the reference composition (it reports bounds in metres);
  // kProbed implies probe_ is set, so the branch folds at compile time.
  if constexpr (!kProbed) {
    if (fast_kernel_) {
      switch (FastAssess(rel_rot, eps)) {
        case FastOutcome::kInclude:
          return IncludeByUpper(pt, rel_rot, trivial);
        case FastOutcome::kSplit:
          ++stats_.lower_bound_splits;
          return Decision::kSplit;
        case FastOutcome::kInconclusive:
          return ResolveInconclusive(pt, rel_rot, trivial);
        case FastOutcome::kFallback:
          ++stats_.kernel_fallbacks;
          break;  // re-decide via the reference composition below.
      }
    }
  }

  const DeviationBounds bounds = AggregateBounds(rel_rot);

  if constexpr (kProbed) {
    if (probe_) {
      BoundsProbe probe;
      probe.index = index;
      probe.lower = bounds.lower;
      probe.upper = bounds.upper;
      probe.epsilon = eps;
      probe.actual = exact_mode_ ? ExactDeviation(pt.pos) : -1.0;
      probe_(probe);
    }
  }

  if (bounds.upper <= eps) {
    // Guaranteed within tolerance: include without any deviation scan.
    return IncludeByUpper(pt, rel_rot, trivial);
  }
  if (bounds.lower > eps) {
    // Guaranteed to break tolerance: split without any deviation scan.
    ++stats_.lower_bound_splits;
    return Decision::kSplit;
  }
  return ResolveInconclusive(pt, rel_rot, trivial);
}

SegmentEngine::FastOutcome SegmentEngine::FastAssess(Vec2 end,
                                                     double eps) const {
  // Degenerate ends (duplicate fixes) force the reference's Theorem 5.5
  // branch; near-axis ends (direction within 1e-12 relative of an axis,
  // but not exactly on it) are where the reference's atan2-normalizing
  // in-quadrant test can round onto a quadrant boundary that the sign
  // tests resolve exactly (see QuadrantOf). Both take the reference path;
  // the guard is ~1e4x wider than the actual disagreement sliver (~5e-16).
  if (end == Vec2{0.0, 0.0}) return FastOutcome::kFallback;
  if (NearAxisSliver(end)) return FastOutcome::kFallback;

  const bool line = options_.metric == DistanceMetric::kPointToLine;
  const int end_q = QuadrantOf(end);
  FastQuadrantBounds agg;
  for (const QuadrantBound& q : quadrants_) {
    if (q.empty()) continue;
    // Line metric: an undirected line lies in the two opposite quadrants of
    // matching parity. Segment metric: the in-quadrant property is
    // directional (paper Section V-G) — the end's own quadrant only.
    const bool in_q = line ? (end_q & 1) == (q.quadrant() & 1)
                           : end_q == q.quadrant();
    agg.MergeMax(QuadrantFastBounds(q, end, in_q, options_.metric,
                                    options_.bounds_mode));
    if (!agg.ok) return FastOutcome::kFallback;
  }

  // Threshold test in the squared domain: the reference compares
  // max|cross|/|end| (resp. hypot distances) against eps; squaring both
  // sides is exact in real arithmetic, and every floating-point
  // discrepancy between the two formulations is bounded well under the
  // 1e-12 relative guard band, inside which we defer to the reference.
  const double eps_sq = eps * eps;
  const double threshold = line ? eps_sq * end.NormSq() : eps_sq;
  constexpr double kBandLo = 1.0 - 1e-12;
  constexpr double kBandHi = 1.0 + 1e-12;
  const double upper_sq = line ? agg.upper * agg.upper : agg.upper;
  if (upper_sq <= threshold * kBandLo) return FastOutcome::kInclude;
  if (upper_sq <= threshold * kBandHi) return FastOutcome::kFallback;
  const double lower_sq = line ? agg.lower * agg.lower : agg.lower;
  if (lower_sq > threshold * kBandHi) return FastOutcome::kSplit;
  if (lower_sq > threshold * kBandLo) return FastOutcome::kFallback;
  return FastOutcome::kInconclusive;
}

int SegmentEngine::FastClassify(Vec2 rel_rot) {
  // The sign tests are the classifier; points inside the sub-ulp axis
  // sliver defer to the reference's atan2 semantics (bit-compatibility
  // with the transcendental path), counted like any other guard-band
  // fallback.
  if (NearAxisSliver(rel_rot)) {
    ++stats_.kernel_fallbacks;
    return QuadrantOfAtan2(rel_rot);
  }
  return QuadrantOf(rel_rot);
}

SegmentEngine::Decision SegmentEngine::IncludeByUpper(const TrackPoint& pt,
                                                      Vec2 rel_rot,
                                                      bool trivial) {
  if (trivial) {
    ++stats_.trivial_includes;
  } else {
    ++stats_.upper_bound_includes;
    IncludeNonTrivial(pt, rel_rot);
  }
  return Decision::kInclude;
}

SegmentEngine::Decision SegmentEngine::ResolveInconclusive(
    const TrackPoint& pt, Vec2 rel_rot, bool trivial) {
  if (!exact_mode_) {
    // FBQS (Section V-E): when uncertain, aggressively take the point and
    // start a new segment — no buffer, no full deviation calculation.
    ++stats_.uncertain_splits;
    return Decision::kSplit;
  }

  // BQS: resolve exactly — over the hull vertices of the segment buffer
  // (O(h), the deviation maximum is attained there) or over the flat
  // buffer (O(n): brute force, or adaptive before its migration point).
  ++stats_.exact_computations;
  const double dev = ExactDeviation(pt.pos);  // drains the pending batch
  stats_.exact_points_scanned += hull_active_ ? hull_.size() : buffer_.size();
  if (dev <= options_.epsilon) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.exact_includes;
      IncludeNonTrivial(pt, rel_rot);
    }
    return Decision::kInclude;
  }
  ++stats_.exact_splits;
  return Decision::kSplit;
}

void SegmentEngine::AddToQuadrants(Vec2 rel_rot) {
  // Every quadrant mutation funnels through here (or StartSegment's
  // reset); the epoch bump below is what invalidates the vector screen's
  // marshalled context and screened-ahead verdicts. The fast kernel skips
  // the bump for adds that provably change no bounding geometry (interior
  // points), which keeps screen state hot through dense traffic.
  // Hoisted classification (one per point): the fast kernel needs no angle
  // at all — sign tests pick the quadrant and AddCross tracks extremes by
  // cross products; the reference kernel computes its one atan2 here and
  // shares it between classification and the angular-extreme update.
  if (fast_kernel_) {
    bool changed = false;
    if (quadrants_[static_cast<std::size_t>(FastClassify(rel_rot))].AddCross(
            rel_rot, &changed)) {
      ++stats_.kernel_fallbacks;  // extreme-tracking tie-band deferral.
    }
    if (changed) ++quad_epoch_;
  } else {
    ++quad_epoch_;
    ops::CountAtan2();
    const double theta = NormalizeAngle2Pi(std::atan2(rel_rot.y, rel_rot.x));
    quadrants_[static_cast<std::size_t>(ThetaQuadrant(theta))].AddWithAngle(
        rel_rot, theta);
  }
}

void SegmentEngine::IncludeNonTrivial(const TrackPoint& pt, Vec2 rel_rot) {
  AddToQuadrants(rel_rot);
  if (exact_mode_) AddExactPoint(pt);
}

void SegmentEngine::AddExactPoint(const TrackPoint& pt) {
  if (hull_active_) {
    AddHullPoint(pt.pos);
    return;
  }
  buffer_.push_back(pt);
  stats_.peak_exact_state =
      std::max<uint64_t>(stats_.peak_exact_state, buffer_.size());
  if (options_.exact_resolver == ExactResolver::kAdaptive &&
      buffer_.size() >=
          static_cast<std::size_t>(options_.adaptive_resolver_threshold)) {
    // Migration point: hand the segment to the hull. Feeding the buffer in
    // arrival order makes the hull state identical to a kHull run that saw
    // the same stream, and the resolvers agree exactly on the deviation
    // maximum, so the switch never changes a decision.
    for (const TrackPoint& p : buffer_) AddHullPoint(p.pos);
    buffer_.clear();
    hull_active_ = true;
  }
}

void SegmentEngine::AddHullPoint(Vec2 pos) {
  hull_pending_.push_back(pos);
  if (hull_pending_.size() >= kHullDrainBatch) DrainPendingHull();
  stats_.peak_exact_state = std::max<uint64_t>(
      stats_.peak_exact_state, hull_.size() + hull_pending_.size());
}

void SegmentEngine::DrainPendingHull() {
  for (const Vec2 p : hull_pending_) hull_.Add(p);
  hull_pending_.clear();
}

void SegmentEngine::StartSegment(const TrackPoint& pt, uint64_t index) {
  ++quad_epoch_;  // quadrants reset below: stale screen state must die.
  segment_start_ = pt;
  segment_start_index_ = index;
  prev_ = pt;
  prev_index_ = index;
  rotation_angle_ = 0.0;
  rot_cos_ = 1.0;
  rot_sin_ = 0.0;
  // Without data-centric rotation the quadrant system is active (unrotated)
  // from the first point on; with it, warm-up gathers points first.
  rotation_established_ = !options_.data_centric_rotation;
  warmup_count_ = 0;
  for (QuadrantBound& q : quadrants_) q.Reset();
  hull_.Clear();
  hull_pending_.clear();
  buffer_.clear();
  hull_active_ = options_.exact_resolver == ExactResolver::kHull;
  if (exact_mode_ && !hull_active_) {
    // The warm-up points land here before any split can happen; reserving
    // them up front avoids the first few reallocations of every segment.
    buffer_.reserve(static_cast<std::size_t>(options_.rotation_warmup));
  }
}

void SegmentEngine::EstablishRotation() {
  // Rotate the +x axis onto the warm-up points' principal direction so the
  // data straddles the first and fourth quadrants, tightening both hulls
  // (paper Section V-D / Fig. 4). The paper rotates toward the centroid;
  // we use the total-least-squares axis through the segment start (the
  // start is on the path by construction), which estimates the direction
  // of a noisy straight run with far less bias — and the bound tightness
  // of the rotated frame degrades linearly with that bias.
  Vec2 centroid{0.0, 0.0};
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    const Vec2 rel = warmup_[i].pos - segment_start_.pos;
    centroid += rel;
    sxx += rel.x * rel.x;
    syy += rel.y * rel.y;
    sxy += rel.x * rel.y;
  }
  if (centroid == Vec2{0.0, 0.0}) {
    rotation_angle_ = 0.0;
  } else {
    double axis = 0.5 * std::atan2(2.0 * sxy, sxx - syy);
    // The principal axis is undirected; orient it toward the data.
    if (std::cos(axis) * centroid.x + std::sin(axis) * centroid.y < 0.0) {
      axis += kPi;
    }
    rotation_angle_ = axis;
  }
  rot_cos_ = std::cos(rotation_angle_);
  rot_sin_ = std::sin(rotation_angle_);
  rotation_established_ = true;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    AddToQuadrants(ToRotatedFrame(warmup_[i].pos - segment_start_.pos));
  }
  warmup_count_ = 0;
}

void SegmentEngine::EmitKey(const TrackPoint& pt, uint64_t index,
                            std::vector<KeyPoint>* out) {
  out->push_back(KeyPoint{pt, index});
  last_emitted_index_ = index;
}

double SegmentEngine::ExactDeviation(Vec2 end_abs) {
  if (hull_active_) {
    DrainPendingHull();
    return hull_.MaxDeviation(segment_start_.pos, end_abs, options_.metric);
  }
  return BufferDeviation(buffer_, segment_start_.pos, end_abs,
                         options_.metric);
}

double SegmentEngine::WarmupDeviation(Vec2 end_abs) const {
  // The warm-up window is a constant <= kMaxRotationWarmup points, so the
  // flat scan is already O(1) and beats paying hull maintenance this early;
  // the hull (fed the same points) takes over for every post-rotation
  // exact resolve.
  double dev = 0.0;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    dev = std::max(dev, PointDeviation(warmup_[i].pos, segment_start_.pos,
                                       end_abs, options_.metric));
  }
  return dev;
}

DeviationBounds SegmentEngine::AggregateBounds(Vec2 end_rel_rotated) const {
  DeviationBounds bounds;  // (0, 0): correct when every quadrant is empty.
  for (const QuadrantBound& q : quadrants_) {
    if (q.empty()) continue;
    // The fast kernel's fallback path reuses the cached significant points
    // (bit-identical to a recompute); the reference kernel recomputes them
    // per push, which is the seed's honest cost profile.
    const QuadrantBound::SignificantPoints* sig =
        fast_kernel_ ? &q.Significant() : nullptr;
    bounds.MergeMax(QuadrantDeviationBounds(q, end_rel_rotated,
                                            options_.metric,
                                            options_.bounds_mode, sig));
  }
  return bounds;
}

}  // namespace internal
}  // namespace bqs
