#include "core/segment_state.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_utils.h"
#include "common/op_counters.h"
#include "geometry/angle.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace internal {

namespace {

/// True when v lies within the sub-ulp sliver of a coordinate axis where
/// the sign-test classifier and the reference's atan2+fmod formula can
/// disagree (the fmod normalization absorbs angles within ~half an ulp of
/// a pi/2 multiple into the boundary; see QuadrantOf). Exactly-on-axis
/// vectors (a zero coordinate) agree by design and are not slivers. The
/// 1e-12 window is ~1e4 times wider than the actual disagreement band.
/// Not hypothetical: data-centric rotation of a stationary or perfectly
/// straight run lands rel vectors exactly here (TLS axis through
/// collinear points leaves rounding-level residuals).
bool NearAxisSliver(Vec2 v) {
  const double ax = std::fabs(v.x);
  const double ay = std::fabs(v.y);
  const double mn = std::min(ax, ay);
  return mn != 0.0 && mn <= 1e-12 * std::max(ax, ay);
}

/// Squared-domain epsilon verdict for a flat scan of buffered points
/// against the path (a, b): +1 when the maximum deviation is definitely
/// <= eps, -1 when definitely greater, 0 inside a ~1e-12 relative guard
/// band of the threshold (caller recomputes with the reference scan). The
/// per-point value is the same |cross| / squared-distance candidate the
/// sqrt-bearing scan would feed into its max, so the verdict matches the
/// reference comparison outside the band by monotonicity.
int SquaredDeviationVerdict(const TrackPoint* pts, std::size_t n, Vec2 a,
                            Vec2 b, DistanceMetric metric, double eps) {
  constexpr double kBandLo = 1.0 - 1e-12;
  constexpr double kBandHi = 1.0 + 1e-12;
  double vmax = 0.0;
  double threshold;
  if (metric == DistanceMetric::kPointToLine) {
    const Vec2 d = b - a;
    if (d == Vec2{0.0, 0.0}) return 0;  // degenerate: reference semantics.
    for (std::size_t i = 0; i < n; ++i) {
      vmax = std::max(vmax, std::fabs(d.Cross(pts[i].pos - a)));
    }
    vmax *= vmax;
    threshold = eps * eps * d.NormSq();
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      vmax = std::max(vmax, PointToSegmentDistanceSq(pts[i].pos, a, b));
    }
    threshold = eps * eps;
  }
  if (vmax <= threshold * kBandLo) return 1;
  if (vmax > threshold * kBandHi) return -1;
  return 0;
}

}  // namespace

SegmentEngine::SegmentEngine(const BqsOptions& options, bool exact_mode)
    : options_(options),
      exact_mode_(exact_mode),
      fast_kernel_(options.bound_kernel == BoundKernel::kFast),
      quadrants_{QuadrantBound(0), QuadrantBound(1), QuadrantBound(2),
                 QuadrantBound(3)} {
  // Misconfiguration is a caller bug (BqsOptions::Validate() rejects it),
  // but nothing forces callers through Validate() and an out-of-range
  // warm-up length would index past the fixed warm-up buffer — so assert
  // in debug and clamp as a release-mode backstop. options() reports the
  // clamped value actually in force.
  assert(options_.Validate().ok());
  options_.rotation_warmup = std::clamp(options_.rotation_warmup, 1,
                                        BqsOptions::kMaxRotationWarmup);
  options_.adaptive_resolver_threshold =
      std::max(options_.adaptive_resolver_threshold, 1);
  Reset();
}

void SegmentEngine::Reset() {
  stats_ = DecisionStats{};
  have_first_ = false;
  next_index_ = 0;
  segment_start_ = TrackPoint{};
  segment_start_index_ = 0;
  prev_ = TrackPoint{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  batch_fill_ = kBatchSeed;
  StartSegment(TrackPoint{}, 0);
}

void SegmentEngine::Push(const TrackPoint& pt, std::vector<KeyPoint>* out) {
  const uint64_t index = next_index_++;
  ++stats_.points;
  if (!have_first_) {
    have_first_ = true;
    EmitKey(pt, index, out);
    StartSegment(pt, index);
    return;
  }
  if (probe_) {
    ProcessPoint<true>(pt, index, out, 0);
  } else {
    ProcessPoint<false>(pt, index, out, 0);
  }
}

void SegmentEngine::PushBatch(std::span<const TrackPoint> pts,
                              std::vector<KeyPoint>* out) {
  if (pts.empty()) return;
  if (!have_first_) {
    have_first_ = true;
    const uint64_t index = next_index_++;
    ++stats_.points;
    EmitKey(pts.front(), index, out);
    StartSegment(pts.front(), index);
    pts = pts.subspan(1);
    if (pts.empty()) return;
  }
  stats_.points += pts.size();
  if (probe_) {
    RunBatch<true>(pts, out);
  } else {
    RunBatch<false>(pts, out);
  }
}

void SegmentEngine::PrepareBatch(std::span<const TrackPoint> pts) {
  const std::size_t n = pts.size();
  if (batch_rx_.size() < n) {
    batch_rx_.resize(kBatchChunk);
    batch_ry_.resize(kBatchChunk);
    batch_nsq_.resize(kBatchChunk);
  }
  // Straight-line SoA transform: the origin subtraction, the cached-cos/sin
  // rotation and |rel|^2 use the same expressions as the scalar path
  // (Assess), so the prepared values are bit-identical to what Push would
  // compute point by point.
  const Vec2 origin = segment_start_.pos;
  for (std::size_t j = 0; j < n; ++j) {
    const Vec2 rel = pts[j].pos - origin;
    batch_nsq_[j] = rel.NormSq();
    const Vec2 rot = ToRotatedFrame(rel);
    batch_rx_[j] = rot.x;
    batch_ry_[j] = rot.y;
  }
}

template <bool kProbed>
void SegmentEngine::RunBatch(std::span<const TrackPoint> pts,
                             std::vector<KeyPoint>* out) {
  std::size_t i = 0;
  const std::size_t n = pts.size();
  while (i < n) {
    if (!rotation_established_) {
      // Warm-up (or rotation disabled mid-establishment): the segment
      // frame is still in flux, take the scalar path point by point.
      ProcessPoint<kProbed>(pts[i], next_index_++, out, 0);
      ++i;
      continue;
    }
    const std::size_t chunk = std::min(n - i, batch_fill_);
    PrepareBatch(pts.subspan(i, chunk));
    const uint64_t seg_mark = segment_start_index_;
    bool stale = false;
    std::size_t j = 0;
    for (; j < chunk; ++j) {
      ProcessPrepared<kProbed>(pts[i + j], next_index_++,
                               Vec2{batch_rx_[j], batch_ry_[j]},
                               batch_nsq_[j], out);
      if (segment_start_index_ != seg_mark || !rotation_established_) {
        // A split moved the segment origin (and possibly reset the
        // rotation): the remaining prepared values are stale.
        stale = true;
        ++j;
        break;
      }
    }
    i += j;
    // Adaptive fill window: grow while chunks run to completion, shrink
    // after a split so split-heavy streams discard little prepared work.
    // (A split on the chunk's last element is still a split — the flag,
    // not j == chunk, decides.)
    batch_fill_ = stale ? kBatchSeed : std::min(batch_fill_ * 2, kBatchChunk);
  }
}

void SegmentEngine::Finish(std::vector<KeyPoint>* out) {
  if (have_first_ && prev_index_ != last_emitted_index_) {
    EmitKey(prev_, prev_index_, out);
  }
}

template <bool kProbed>
void SegmentEngine::ProcessPoint(const TrackPoint& pt, uint64_t index,
                                 std::vector<KeyPoint>* out, int depth) {
  // A point can be re-processed at most once: after a split the new segment
  // contains no interior points, so the second assessment always includes.
  assert(depth <= 1);
  const Decision decision = Assess<kProbed>(pt, index);
  if (decision == Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  // Split: the previous point becomes a key point ending the current
  // segment; the new segment starts there and `pt` re-enters (Fig. 1(d)).
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  ProcessPoint<kProbed>(pt, index, out, depth + 1);
}

template <bool kProbed>
void SegmentEngine::ProcessPrepared(const TrackPoint& pt, uint64_t index,
                                    Vec2 rel_rot, double rel_norm_sq,
                                    std::vector<KeyPoint>* out) {
  if (AssessPrepared<kProbed>(pt, index, rel_rot, rel_norm_sq) ==
      Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  // The prepared frame died with the old segment; re-enter scalar.
  ProcessPoint<kProbed>(pt, index, out, 1);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::Assess(const TrackPoint& pt,
                                              uint64_t index) {
  const Vec2 rel = pt.pos - segment_start_.pos;
  const double eps = options_.epsilon;

  // Theorem 5.1: a point within epsilon of the start can never *itself*
  // deviate by more than epsilon from any path out of the start, so it
  // never enters the bounding structures or the buffer. It may still end
  // the segment later, so by default it must pass the same end-validity
  // assessment as any other candidate end (see BqsOptions::
  // paper_trivial_include for the paper's unconditional include).
  const bool trivial = rel.NormSq() <= eps * eps;
  if (trivial && options_.paper_trivial_include) {
    ++stats_.trivial_includes;
    return Decision::kInclude;
  }

  if (!rotation_established_) {
    // Rotation warm-up (Section V-D): the first few out-of-epsilon points
    // are kept in a tiny fixed buffer and checked exactly; this is a
    // constant-size scan (<= rotation_warmup points, or their hull).
    if (warmup_count_ > 0) {
      ++stats_.warmup_checks;
      // Fast kernel: the warm-up scan is a per-point conclusive-path cost,
      // so it runs in the squared domain too (one sqrt-free pass; the
      // reference scan only on a guard-band hit).
      int verdict = 0;
      if (fast_kernel_) {
        verdict = SquaredDeviationVerdict(warmup_.data(), warmup_count_,
                                          segment_start_.pos, pt.pos,
                                          options_.metric, eps);
        if (verdict == 0) ++stats_.kernel_fallbacks;
      }
      if (verdict < 0) return Decision::kSplit;
      if (verdict == 0 && WarmupDeviation(pt.pos) > eps) {
        return Decision::kSplit;
      }
    }
    if (trivial) {
      ++stats_.trivial_includes;
      return Decision::kInclude;
    }
    warmup_[warmup_count_++] = pt;
    if (exact_mode_) {
      // Warm-up points are segment-buffer points: they must be visible to
      // every later exact resolve. FBQS has no exact state at all — its
      // warm-up checks scan the warmup_ array directly.
      AddExactPoint(pt);
    }
    if (warmup_count_ >= static_cast<std::size_t>(options_.rotation_warmup)) {
      EstablishRotation();
    }
    return Decision::kInclude;
  }

  return AssessRotated<kProbed>(pt, index, ToRotatedFrame(rel), trivial);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::AssessPrepared(const TrackPoint& pt,
                                                      uint64_t index,
                                                      Vec2 rel_rot,
                                                      double rel_norm_sq) {
  // Prepared points only exist for established segments, so this is
  // Assess() minus the warm-up branch, on precomputed inputs.
  const double eps = options_.epsilon;
  const bool trivial = rel_norm_sq <= eps * eps;
  if (trivial && options_.paper_trivial_include) {
    ++stats_.trivial_includes;
    return Decision::kInclude;
  }
  return AssessRotated<kProbed>(pt, index, rel_rot, trivial);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::AssessRotated(const TrackPoint& pt,
                                                     uint64_t index,
                                                     Vec2 rel_rot,
                                                     bool trivial) {
  const double eps = options_.epsilon;

  // Fast kernel: squared-domain threshold test, no transcendentals. A set
  // probe forces the reference composition (it reports bounds in metres);
  // kProbed implies probe_ is set, so the branch folds at compile time.
  if constexpr (!kProbed) {
    if (fast_kernel_) {
      switch (FastAssess(rel_rot, eps)) {
        case FastOutcome::kInclude:
          return IncludeByUpper(pt, rel_rot, trivial);
        case FastOutcome::kSplit:
          ++stats_.lower_bound_splits;
          return Decision::kSplit;
        case FastOutcome::kInconclusive:
          return ResolveInconclusive(pt, rel_rot, trivial);
        case FastOutcome::kFallback:
          ++stats_.kernel_fallbacks;
          break;  // re-decide via the reference composition below.
      }
    }
  }

  const DeviationBounds bounds = AggregateBounds(rel_rot);

  if constexpr (kProbed) {
    if (probe_) {
      BoundsProbe probe;
      probe.index = index;
      probe.lower = bounds.lower;
      probe.upper = bounds.upper;
      probe.epsilon = eps;
      probe.actual = exact_mode_ ? ExactDeviation(pt.pos) : -1.0;
      probe_(probe);
    }
  }

  if (bounds.upper <= eps) {
    // Guaranteed within tolerance: include without any deviation scan.
    return IncludeByUpper(pt, rel_rot, trivial);
  }
  if (bounds.lower > eps) {
    // Guaranteed to break tolerance: split without any deviation scan.
    ++stats_.lower_bound_splits;
    return Decision::kSplit;
  }
  return ResolveInconclusive(pt, rel_rot, trivial);
}

SegmentEngine::FastOutcome SegmentEngine::FastAssess(Vec2 end,
                                                     double eps) const {
  // Degenerate ends (duplicate fixes) force the reference's Theorem 5.5
  // branch; near-axis ends (direction within 1e-12 relative of an axis,
  // but not exactly on it) are where the reference's atan2-normalizing
  // in-quadrant test can round onto a quadrant boundary that the sign
  // tests resolve exactly (see QuadrantOf). Both take the reference path;
  // the guard is ~1e4x wider than the actual disagreement sliver (~5e-16).
  if (end == Vec2{0.0, 0.0}) return FastOutcome::kFallback;
  if (NearAxisSliver(end)) return FastOutcome::kFallback;

  const bool line = options_.metric == DistanceMetric::kPointToLine;
  const int end_q = QuadrantOf(end);
  FastQuadrantBounds agg;
  for (const QuadrantBound& q : quadrants_) {
    if (q.empty()) continue;
    // Line metric: an undirected line lies in the two opposite quadrants of
    // matching parity. Segment metric: the in-quadrant property is
    // directional (paper Section V-G) — the end's own quadrant only.
    const bool in_q = line ? (end_q & 1) == (q.quadrant() & 1)
                           : end_q == q.quadrant();
    agg.MergeMax(QuadrantFastBounds(q, end, in_q, options_.metric,
                                    options_.bounds_mode));
    if (!agg.ok) return FastOutcome::kFallback;
  }

  // Threshold test in the squared domain: the reference compares
  // max|cross|/|end| (resp. hypot distances) against eps; squaring both
  // sides is exact in real arithmetic, and every floating-point
  // discrepancy between the two formulations is bounded well under the
  // 1e-12 relative guard band, inside which we defer to the reference.
  const double eps_sq = eps * eps;
  const double threshold = line ? eps_sq * end.NormSq() : eps_sq;
  constexpr double kBandLo = 1.0 - 1e-12;
  constexpr double kBandHi = 1.0 + 1e-12;
  const double upper_sq = line ? agg.upper * agg.upper : agg.upper;
  if (upper_sq <= threshold * kBandLo) return FastOutcome::kInclude;
  if (upper_sq <= threshold * kBandHi) return FastOutcome::kFallback;
  const double lower_sq = line ? agg.lower * agg.lower : agg.lower;
  if (lower_sq > threshold * kBandHi) return FastOutcome::kSplit;
  if (lower_sq > threshold * kBandLo) return FastOutcome::kFallback;
  return FastOutcome::kInconclusive;
}

int SegmentEngine::FastClassify(Vec2 rel_rot) {
  // The sign tests are the classifier; points inside the sub-ulp axis
  // sliver defer to the reference's atan2 semantics (bit-compatibility
  // with the transcendental path), counted like any other guard-band
  // fallback.
  if (NearAxisSliver(rel_rot)) {
    ++stats_.kernel_fallbacks;
    return QuadrantOfAtan2(rel_rot);
  }
  return QuadrantOf(rel_rot);
}

SegmentEngine::Decision SegmentEngine::IncludeByUpper(const TrackPoint& pt,
                                                      Vec2 rel_rot,
                                                      bool trivial) {
  if (trivial) {
    ++stats_.trivial_includes;
  } else {
    ++stats_.upper_bound_includes;
    IncludeNonTrivial(pt, rel_rot);
  }
  return Decision::kInclude;
}

SegmentEngine::Decision SegmentEngine::ResolveInconclusive(
    const TrackPoint& pt, Vec2 rel_rot, bool trivial) {
  if (!exact_mode_) {
    // FBQS (Section V-E): when uncertain, aggressively take the point and
    // start a new segment — no buffer, no full deviation calculation.
    ++stats_.uncertain_splits;
    return Decision::kSplit;
  }

  // BQS: resolve exactly — over the hull vertices of the segment buffer
  // (O(h), the deviation maximum is attained there) or over the flat
  // buffer (O(n): brute force, or adaptive before its migration point).
  ++stats_.exact_computations;
  const double dev = ExactDeviation(pt.pos);  // drains the pending batch
  stats_.exact_points_scanned += hull_active_ ? hull_.size() : buffer_.size();
  if (dev <= options_.epsilon) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.exact_includes;
      IncludeNonTrivial(pt, rel_rot);
    }
    return Decision::kInclude;
  }
  ++stats_.exact_splits;
  return Decision::kSplit;
}

void SegmentEngine::AddToQuadrants(Vec2 rel_rot) {
  // Hoisted classification (one per point): the fast kernel needs no angle
  // at all — sign tests pick the quadrant and AddCross tracks extremes by
  // cross products; the reference kernel computes its one atan2 here and
  // shares it between classification and the angular-extreme update.
  if (fast_kernel_) {
    if (quadrants_[static_cast<std::size_t>(FastClassify(rel_rot))].AddCross(
            rel_rot)) {
      ++stats_.kernel_fallbacks;  // extreme-tracking tie-band deferral.
    }
  } else {
    ops::CountAtan2();
    const double theta = NormalizeAngle2Pi(std::atan2(rel_rot.y, rel_rot.x));
    quadrants_[static_cast<std::size_t>(ThetaQuadrant(theta))].AddWithAngle(
        rel_rot, theta);
  }
}

void SegmentEngine::IncludeNonTrivial(const TrackPoint& pt, Vec2 rel_rot) {
  AddToQuadrants(rel_rot);
  if (exact_mode_) AddExactPoint(pt);
}

void SegmentEngine::AddExactPoint(const TrackPoint& pt) {
  if (hull_active_) {
    AddHullPoint(pt.pos);
    return;
  }
  buffer_.push_back(pt);
  stats_.peak_exact_state =
      std::max<uint64_t>(stats_.peak_exact_state, buffer_.size());
  if (options_.exact_resolver == ExactResolver::kAdaptive &&
      buffer_.size() >=
          static_cast<std::size_t>(options_.adaptive_resolver_threshold)) {
    // Migration point: hand the segment to the hull. Feeding the buffer in
    // arrival order makes the hull state identical to a kHull run that saw
    // the same stream, and the resolvers agree exactly on the deviation
    // maximum, so the switch never changes a decision.
    for (const TrackPoint& p : buffer_) AddHullPoint(p.pos);
    buffer_.clear();
    hull_active_ = true;
  }
}

void SegmentEngine::AddHullPoint(Vec2 pos) {
  hull_pending_.push_back(pos);
  if (hull_pending_.size() >= kHullDrainBatch) DrainPendingHull();
  stats_.peak_exact_state = std::max<uint64_t>(
      stats_.peak_exact_state, hull_.size() + hull_pending_.size());
}

void SegmentEngine::DrainPendingHull() {
  for (const Vec2 p : hull_pending_) hull_.Add(p);
  hull_pending_.clear();
}

void SegmentEngine::StartSegment(const TrackPoint& pt, uint64_t index) {
  segment_start_ = pt;
  segment_start_index_ = index;
  prev_ = pt;
  prev_index_ = index;
  rotation_angle_ = 0.0;
  rot_cos_ = 1.0;
  rot_sin_ = 0.0;
  // Without data-centric rotation the quadrant system is active (unrotated)
  // from the first point on; with it, warm-up gathers points first.
  rotation_established_ = !options_.data_centric_rotation;
  warmup_count_ = 0;
  for (QuadrantBound& q : quadrants_) q.Reset();
  hull_.Clear();
  hull_pending_.clear();
  buffer_.clear();
  hull_active_ = options_.exact_resolver == ExactResolver::kHull;
  if (exact_mode_ && !hull_active_) {
    // The warm-up points land here before any split can happen; reserving
    // them up front avoids the first few reallocations of every segment.
    buffer_.reserve(static_cast<std::size_t>(options_.rotation_warmup));
  }
}

void SegmentEngine::EstablishRotation() {
  // Rotate the +x axis onto the warm-up points' principal direction so the
  // data straddles the first and fourth quadrants, tightening both hulls
  // (paper Section V-D / Fig. 4). The paper rotates toward the centroid;
  // we use the total-least-squares axis through the segment start (the
  // start is on the path by construction), which estimates the direction
  // of a noisy straight run with far less bias — and the bound tightness
  // of the rotated frame degrades linearly with that bias.
  Vec2 centroid{0.0, 0.0};
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    const Vec2 rel = warmup_[i].pos - segment_start_.pos;
    centroid += rel;
    sxx += rel.x * rel.x;
    syy += rel.y * rel.y;
    sxy += rel.x * rel.y;
  }
  if (centroid == Vec2{0.0, 0.0}) {
    rotation_angle_ = 0.0;
  } else {
    double axis = 0.5 * std::atan2(2.0 * sxy, sxx - syy);
    // The principal axis is undirected; orient it toward the data.
    if (std::cos(axis) * centroid.x + std::sin(axis) * centroid.y < 0.0) {
      axis += kPi;
    }
    rotation_angle_ = axis;
  }
  rot_cos_ = std::cos(rotation_angle_);
  rot_sin_ = std::sin(rotation_angle_);
  rotation_established_ = true;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    AddToQuadrants(ToRotatedFrame(warmup_[i].pos - segment_start_.pos));
  }
  warmup_count_ = 0;
}

void SegmentEngine::EmitKey(const TrackPoint& pt, uint64_t index,
                            std::vector<KeyPoint>* out) {
  out->push_back(KeyPoint{pt, index});
  last_emitted_index_ = index;
}

double SegmentEngine::ExactDeviation(Vec2 end_abs) {
  if (hull_active_) {
    DrainPendingHull();
    return hull_.MaxDeviation(segment_start_.pos, end_abs, options_.metric);
  }
  return BufferDeviation(buffer_, segment_start_.pos, end_abs,
                         options_.metric);
}

double SegmentEngine::WarmupDeviation(Vec2 end_abs) const {
  // The warm-up window is a constant <= kMaxRotationWarmup points, so the
  // flat scan is already O(1) and beats paying hull maintenance this early;
  // the hull (fed the same points) takes over for every post-rotation
  // exact resolve.
  double dev = 0.0;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    dev = std::max(dev, PointDeviation(warmup_[i].pos, segment_start_.pos,
                                       end_abs, options_.metric));
  }
  return dev;
}

DeviationBounds SegmentEngine::AggregateBounds(Vec2 end_rel_rotated) const {
  DeviationBounds bounds;  // (0, 0): correct when every quadrant is empty.
  for (const QuadrantBound& q : quadrants_) {
    if (q.empty()) continue;
    // The fast kernel's fallback path reuses the cached significant points
    // (bit-identical to a recompute); the reference kernel recomputes them
    // per push, which is the seed's honest cost profile.
    const QuadrantBound::SignificantPoints* sig =
        fast_kernel_ ? &q.Significant() : nullptr;
    bounds.MergeMax(QuadrantDeviationBounds(q, end_rel_rotated,
                                            options_.metric,
                                            options_.bounds_mode, sig));
  }
  return bounds;
}

}  // namespace internal
}  // namespace bqs
