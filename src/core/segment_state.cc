#include "core/segment_state.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_utils.h"
#include "geometry/angle.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace internal {

SegmentEngine::SegmentEngine(const BqsOptions& options, bool exact_mode)
    : options_(options),
      exact_mode_(exact_mode),
      use_hull_(options.exact_resolver == ExactResolver::kHull),
      quadrants_{QuadrantBound(0), QuadrantBound(1), QuadrantBound(2),
                 QuadrantBound(3)} {
  // Misconfiguration is a caller bug (BqsOptions::Validate() rejects it),
  // but nothing forces callers through Validate() and an out-of-range
  // warm-up length would index past the fixed warm-up buffer — so assert
  // in debug and clamp as a release-mode backstop. options() reports the
  // clamped value actually in force.
  assert(options_.Validate().ok());
  options_.rotation_warmup = std::clamp(options_.rotation_warmup, 1,
                                        BqsOptions::kMaxRotationWarmup);
  Reset();
}

void SegmentEngine::Reset() {
  stats_ = DecisionStats{};
  have_first_ = false;
  next_index_ = 0;
  segment_start_ = TrackPoint{};
  segment_start_index_ = 0;
  prev_ = TrackPoint{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  StartSegment(TrackPoint{}, 0);
}

void SegmentEngine::Push(const TrackPoint& pt, std::vector<KeyPoint>* out) {
  const uint64_t index = next_index_++;
  ++stats_.points;
  if (!have_first_) {
    have_first_ = true;
    EmitKey(pt, index, out);
    StartSegment(pt, index);
    return;
  }
  if (probe_) {
    ProcessPoint<true>(pt, index, out, 0);
  } else {
    ProcessPoint<false>(pt, index, out, 0);
  }
}

void SegmentEngine::PushBatch(std::span<const TrackPoint> pts,
                              std::vector<KeyPoint>* out) {
  if (pts.empty()) return;
  if (!have_first_) {
    have_first_ = true;
    const uint64_t index = next_index_++;
    ++stats_.points;
    EmitKey(pts.front(), index, out);
    StartSegment(pts.front(), index);
    pts = pts.subspan(1);
    if (pts.empty()) return;
  }
  stats_.points += pts.size();
  if (probe_) {
    RunBatch<true>(pts, out);
  } else {
    RunBatch<false>(pts, out);
  }
}

template <bool kProbed>
void SegmentEngine::RunBatch(std::span<const TrackPoint> pts,
                             std::vector<KeyPoint>* out) {
  for (const TrackPoint& pt : pts) {
    ProcessPoint<kProbed>(pt, next_index_++, out, 0);
  }
}

void SegmentEngine::Finish(std::vector<KeyPoint>* out) {
  if (have_first_ && prev_index_ != last_emitted_index_) {
    EmitKey(prev_, prev_index_, out);
  }
}

template <bool kProbed>
void SegmentEngine::ProcessPoint(const TrackPoint& pt, uint64_t index,
                                 std::vector<KeyPoint>* out, int depth) {
  // A point can be re-processed at most once: after a split the new segment
  // contains no interior points, so the second assessment always includes.
  assert(depth <= 1);
  const Decision decision = Assess<kProbed>(pt, index);
  if (decision == Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  // Split: the previous point becomes a key point ending the current
  // segment; the new segment starts there and `pt` re-enters (Fig. 1(d)).
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  ProcessPoint<kProbed>(pt, index, out, depth + 1);
}

template <bool kProbed>
SegmentEngine::Decision SegmentEngine::Assess(const TrackPoint& pt,
                                              uint64_t index) {
  const Vec2 rel = pt.pos - segment_start_.pos;
  const double eps = options_.epsilon;

  // Theorem 5.1: a point within epsilon of the start can never *itself*
  // deviate by more than epsilon from any path out of the start, so it
  // never enters the bounding structures or the buffer. It may still end
  // the segment later, so by default it must pass the same end-validity
  // assessment as any other candidate end (see BqsOptions::
  // paper_trivial_include for the paper's unconditional include).
  const bool trivial = rel.NormSq() <= eps * eps;
  if (trivial && options_.paper_trivial_include) {
    ++stats_.trivial_includes;
    return Decision::kInclude;
  }

  if (!rotation_established_) {
    // Rotation warm-up (Section V-D): the first few out-of-epsilon points
    // are kept in a tiny fixed buffer and checked exactly; this is a
    // constant-size scan (<= rotation_warmup points, or their hull).
    if (warmup_count_ > 0) {
      ++stats_.warmup_checks;
      if (WarmupDeviation(pt.pos) > eps) return Decision::kSplit;
    }
    if (trivial) {
      ++stats_.trivial_includes;
      return Decision::kInclude;
    }
    warmup_[warmup_count_++] = pt;
    if (exact_mode_) {
      // Warm-up points are segment-buffer points: they must be visible to
      // every later exact resolve. FBQS has no exact state at all — its
      // warm-up checks scan the warmup_ array directly.
      if (use_hull_) {
        AddHullPoint(pt.pos);
      } else {
        buffer_.push_back(pt);
        stats_.peak_exact_state =
            std::max<uint64_t>(stats_.peak_exact_state, buffer_.size());
      }
    }
    if (warmup_count_ >= static_cast<std::size_t>(options_.rotation_warmup)) {
      EstablishRotation();
    }
    return Decision::kInclude;
  }

  const Vec2 rel_rot = ToRotatedFrame(rel);
  const DeviationBounds bounds = AggregateBounds(rel_rot);

  if constexpr (kProbed) {
    if (probe_) {
      BoundsProbe probe;
      probe.index = index;
      probe.lower = bounds.lower;
      probe.upper = bounds.upper;
      probe.epsilon = eps;
      probe.actual = exact_mode_ ? ExactDeviation(pt.pos) : -1.0;
      probe_(probe);
    }
  }

  if (bounds.upper <= eps) {
    // Guaranteed within tolerance: include without any deviation scan.
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.upper_bound_includes;
      IncludeNonTrivial(pt, rel_rot);
    }
    return Decision::kInclude;
  }
  if (bounds.lower > eps) {
    // Guaranteed to break tolerance: split without any deviation scan.
    ++stats_.lower_bound_splits;
    return Decision::kSplit;
  }

  if (!exact_mode_) {
    // FBQS (Section V-E): when uncertain, aggressively take the point and
    // start a new segment — no buffer, no full deviation calculation.
    ++stats_.uncertain_splits;
    return Decision::kSplit;
  }

  // BQS: resolve exactly — over the hull vertices of the segment buffer
  // (O(h), the deviation maximum is attained there) or, as the reference
  // implementation, over the whole buffer (O(n)).
  ++stats_.exact_computations;
  const double dev = ExactDeviation(pt.pos);  // drains the pending batch
  stats_.exact_points_scanned += use_hull_ ? hull_.size() : buffer_.size();
  if (dev <= eps) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.exact_includes;
      IncludeNonTrivial(pt, rel_rot);
    }
    return Decision::kInclude;
  }
  ++stats_.exact_splits;
  return Decision::kSplit;
}

void SegmentEngine::IncludeNonTrivial(const TrackPoint& pt, Vec2 rel_rot) {
  quadrants_[static_cast<std::size_t>(QuadrantOf(rel_rot))].Add(rel_rot);
  if (!exact_mode_) return;
  if (use_hull_) {
    AddHullPoint(pt.pos);
  } else {
    buffer_.push_back(pt);
    stats_.peak_exact_state =
        std::max<uint64_t>(stats_.peak_exact_state, buffer_.size());
  }
}

void SegmentEngine::AddHullPoint(Vec2 pos) {
  hull_pending_.push_back(pos);
  if (hull_pending_.size() >= kHullDrainBatch) DrainPendingHull();
  stats_.peak_exact_state = std::max<uint64_t>(
      stats_.peak_exact_state, hull_.size() + hull_pending_.size());
}

void SegmentEngine::DrainPendingHull() {
  for (const Vec2 p : hull_pending_) hull_.Add(p);
  hull_pending_.clear();
}

void SegmentEngine::StartSegment(const TrackPoint& pt, uint64_t index) {
  segment_start_ = pt;
  segment_start_index_ = index;
  prev_ = pt;
  prev_index_ = index;
  rotation_angle_ = 0.0;
  rot_cos_ = 1.0;
  rot_sin_ = 0.0;
  // Without data-centric rotation the quadrant system is active (unrotated)
  // from the first point on; with it, warm-up gathers points first.
  rotation_established_ = !options_.data_centric_rotation;
  warmup_count_ = 0;
  for (QuadrantBound& q : quadrants_) q.Reset();
  hull_.Clear();
  hull_pending_.clear();
  buffer_.clear();
  if (exact_mode_ && !use_hull_) {
    // The warm-up points land here before any split can happen; reserving
    // them up front avoids the first few reallocations of every segment.
    buffer_.reserve(static_cast<std::size_t>(options_.rotation_warmup));
  }
}

void SegmentEngine::EstablishRotation() {
  // Rotate the +x axis onto the warm-up points' principal direction so the
  // data straddles the first and fourth quadrants, tightening both hulls
  // (paper Section V-D / Fig. 4). The paper rotates toward the centroid;
  // we use the total-least-squares axis through the segment start (the
  // start is on the path by construction), which estimates the direction
  // of a noisy straight run with far less bias — and the bound tightness
  // of the rotated frame degrades linearly with that bias.
  Vec2 centroid{0.0, 0.0};
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    const Vec2 rel = warmup_[i].pos - segment_start_.pos;
    centroid += rel;
    sxx += rel.x * rel.x;
    syy += rel.y * rel.y;
    sxy += rel.x * rel.y;
  }
  if (centroid == Vec2{0.0, 0.0}) {
    rotation_angle_ = 0.0;
  } else {
    double axis = 0.5 * std::atan2(2.0 * sxy, sxx - syy);
    // The principal axis is undirected; orient it toward the data.
    if (std::cos(axis) * centroid.x + std::sin(axis) * centroid.y < 0.0) {
      axis += kPi;
    }
    rotation_angle_ = axis;
  }
  rot_cos_ = std::cos(rotation_angle_);
  rot_sin_ = std::sin(rotation_angle_);
  rotation_established_ = true;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    const Vec2 rel_rot = ToRotatedFrame(warmup_[i].pos - segment_start_.pos);
    quadrants_[static_cast<std::size_t>(QuadrantOf(rel_rot))].Add(rel_rot);
  }
  warmup_count_ = 0;
}

void SegmentEngine::EmitKey(const TrackPoint& pt, uint64_t index,
                            std::vector<KeyPoint>* out) {
  out->push_back(KeyPoint{pt, index});
  last_emitted_index_ = index;
}

double SegmentEngine::ExactDeviation(Vec2 end_abs) {
  if (use_hull_) {
    DrainPendingHull();
    return hull_.MaxDeviation(segment_start_.pos, end_abs, options_.metric);
  }
  return BufferDeviation(buffer_, segment_start_.pos, end_abs,
                         options_.metric);
}

double SegmentEngine::WarmupDeviation(Vec2 end_abs) const {
  // The warm-up window is a constant <= kMaxRotationWarmup points, so the
  // flat scan is already O(1) and beats paying hull maintenance this early;
  // the hull (fed the same points) takes over for every post-rotation
  // exact resolve.
  double dev = 0.0;
  for (std::size_t i = 0; i < warmup_count_; ++i) {
    dev = std::max(dev, PointDeviation(warmup_[i].pos, segment_start_.pos,
                                       end_abs, options_.metric));
  }
  return dev;
}

DeviationBounds SegmentEngine::AggregateBounds(Vec2 end_rel_rotated) const {
  DeviationBounds bounds;  // (0, 0): correct when every quadrant is empty.
  for (const QuadrantBound& q : quadrants_) {
    if (q.empty()) continue;
    bounds.MergeMax(QuadrantDeviationBounds(q, end_rel_rotated,
                                            options_.metric,
                                            options_.bounds_mode));
  }
  return bounds;
}

}  // namespace internal
}  // namespace bqs
