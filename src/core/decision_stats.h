// Per-stream decision counters. These power the paper's pruning-power
// metric (Fig. 6) and the decision-mix analysis in EXPERIMENTS.md.
#ifndef BQS_CORE_DECISION_STATS_H_
#define BQS_CORE_DECISION_STATS_H_

#include <cstdint>

namespace bqs {

/// Counts how each pushed point was decided. One counter fires per point
/// (re-processing a point after a split does not double-count).
struct DecisionStats {
  uint64_t points = 0;                ///< Total points pushed.
  uint64_t trivial_includes = 0;      ///< Theorem 5.1: d(s,e) <= epsilon.
  uint64_t warmup_checks = 0;         ///< Exact checks over the <=W warm-up
                                      ///< buffer before rotation is fixed.
  uint64_t upper_bound_includes = 0;  ///< d_ub <= epsilon: include, no scan.
  uint64_t lower_bound_splits = 0;    ///< d_lb > epsilon: split, no scan.
  uint64_t exact_computations = 0;    ///< Full buffer scans (BQS only).
  uint64_t exact_includes = 0;        ///< Scans that allowed inclusion.
  uint64_t exact_splits = 0;          ///< Scans that forced a split.
  uint64_t uncertain_splits = 0;      ///< FBQS aggressive splits when
                                      ///< d_lb <= epsilon < d_ub.
  uint64_t segments = 0;              ///< Segments closed (splits).
  uint64_t exact_points_scanned = 0;  ///< Points examined across all exact
                                      ///< resolves: hull vertices with
                                      ///< ExactResolver::kHull, whole-buffer
                                      ///< points with kBruteForce. The
                                      ///< O(n^2)-vs-O(nh) story in one number.
  uint64_t peak_exact_state = 0;      ///< Largest per-segment exact-resolve
                                      ///< structure (hull vertices or
                                      ///< buffered points) seen so far.
  uint64_t kernel_fallbacks = 0;      ///< Fast-kernel guard-band *events*
                                      ///< (not pushes — one push can log
                                      ///< several): a bound within ~1e-12
                                      ///< relative of epsilon, a near-axis
                                      ///< or degenerate end, a sliver
                                      ///< classification, or an extreme-
                                      ///< tracking tie band, each re-run
                                      ///< with the reference semantics.
                                      ///< 0 under BoundKernel::kReference.

  /// Paper definition: 1 - N_computed / N_total. Full-buffer scans only;
  /// warm-up checks touch a constant-size (<=W) buffer and are reported
  /// separately (see PruningPowerInclWarmup).
  double PruningPower() const {
    if (points == 0) return 1.0;
    return 1.0 - static_cast<double>(exact_computations) /
                     static_cast<double>(points);
  }

  /// Stricter variant counting warm-up mini-scans as computations.
  double PruningPowerInclWarmup() const {
    if (points == 0) return 1.0;
    return 1.0 - static_cast<double>(exact_computations + warmup_checks) /
                     static_cast<double>(points);
  }

  /// Fraction of points decided purely by bounds among bound-assessed ones.
  double BoundDecisiveness() const {
    const uint64_t assessed = upper_bound_includes + lower_bound_splits +
                              exact_computations + uncertain_splits;
    if (assessed == 0) return 1.0;
    return static_cast<double>(upper_bound_includes + lower_bound_splits) /
           static_cast<double>(assessed);
  }
};

}  // namespace bqs

#endif  // BQS_CORE_DECISION_STATS_H_
