#include "core/bqs3d_compressor.h"

#include <algorithm>
#include <cassert>

#include "geometry/angle.h"
#include "geometry/line3.h"

namespace bqs {

Bqs3dCompressor::Bqs3dCompressor(const Bqs3dOptions& options, bool exact_mode)
    : options_(options),
      exact_mode_(exact_mode),
      octants_{OctantBound(0), OctantBound(1), OctantBound(2), OctantBound(3),
               OctantBound(4), OctantBound(5), OctantBound(6),
               OctantBound(7)} {
  Reset();
}

void Bqs3dCompressor::Reset() {
  stats_ = DecisionStats{};
  have_first_ = false;
  next_index_ = 0;
  prev_ = TrackPoint3{};
  prev_index_ = 0;
  last_emitted_index_ = UINT64_MAX;
  StartSegment(TrackPoint3{}, 0);
}

void Bqs3dCompressor::Push(const TrackPoint3& pt,
                           std::vector<KeyPoint3>* out) {
  const uint64_t index = next_index_++;
  ++stats_.points;
  if (!have_first_) {
    have_first_ = true;
    EmitKey(pt, index, out);
    StartSegment(pt, index);
    return;
  }
  ProcessPoint(pt, index, out, 0);
}

void Bqs3dCompressor::Finish(std::vector<KeyPoint3>* out) {
  if (have_first_ && prev_index_ != last_emitted_index_) {
    EmitKey(prev_, prev_index_, out);
  }
}

void Bqs3dCompressor::ProcessPoint(const TrackPoint3& pt, uint64_t index,
                                   std::vector<KeyPoint3>* out, int depth) {
  assert(depth <= 1);
  if (Assess(pt) == Decision::kInclude) {
    prev_ = pt;
    prev_index_ = index;
    return;
  }
  EmitKey(prev_, prev_index_, out);
  ++stats_.segments;
  StartSegment(prev_, prev_index_);
  ProcessPoint(pt, index, out, depth + 1);
}

Bqs3dCompressor::Decision Bqs3dCompressor::Assess(const TrackPoint3& pt) {
  const Vec3 rel = pt.pos - segment_start_.pos;
  const double eps = options_.epsilon;

  // Theorem 5.1 generalizes verbatim to 3-D: near-start points never enter
  // the bounding structures. As in 2-D they must still pass the
  // end-validity assessment unless paper-faithful mode is requested.
  const bool trivial = rel.NormSq() <= eps * eps;
  if (trivial && options_.paper_trivial_include) {
    ++stats_.trivial_includes;
    return Decision::kInclude;
  }

  const DeviationBounds bounds = AggregateBounds(rel);
  if (bounds.upper <= eps) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.upper_bound_includes;
      octants_[static_cast<std::size_t>(OctantOf(rel))].Add(rel);
      if (exact_mode_) buffer_.push_back(pt);
    }
    return Decision::kInclude;
  }
  if (bounds.lower > eps) {
    ++stats_.lower_bound_splits;
    return Decision::kSplit;
  }

  if (!exact_mode_) {
    ++stats_.uncertain_splits;
    return Decision::kSplit;
  }

  ++stats_.exact_computations;
  const double dev = BufferDeviation3(segment_start_.pos, pt.pos);
  if (dev <= eps) {
    if (trivial) {
      ++stats_.trivial_includes;
    } else {
      ++stats_.exact_includes;
      octants_[static_cast<std::size_t>(OctantOf(rel))].Add(rel);
      buffer_.push_back(pt);
    }
    return Decision::kInclude;
  }
  ++stats_.exact_splits;
  return Decision::kSplit;
}

void Bqs3dCompressor::StartSegment(const TrackPoint3& pt, uint64_t index) {
  segment_start_ = pt;
  prev_ = pt;
  prev_index_ = index;
  for (OctantBound& o : octants_) o.Reset();
  buffer_.clear();
}

void Bqs3dCompressor::EmitKey(const TrackPoint3& pt, uint64_t index,
                              std::vector<KeyPoint3>* out) {
  out->push_back(KeyPoint3{pt, index});
  last_emitted_index_ = index;
}

DeviationBounds Bqs3dCompressor::AggregateBounds(Vec3 end_rel) const {
  DeviationBounds bounds;
  for (const OctantBound& o : octants_) {
    if (o.empty()) continue;
    bounds.MergeMax(
        OctantDeviationBounds(o, end_rel, options_.metric, options_.mode));
  }
  return bounds;
}

double Bqs3dCompressor::BufferDeviation3(Vec3 start_abs, Vec3 end_abs) const {
  double dev = 0.0;
  for (const TrackPoint3& p : buffer_) {
    const double d = options_.metric == DistanceMetric::kPointToLine
                         ? PointToLineDistance3(p.pos, start_abs, end_abs)
                         : PointToSegmentDistance3(p.pos, start_abs, end_abs);
    dev = std::max(dev, d);
  }
  return dev;
}

CompressedTrajectory3 Compress3dAll(Bqs3dCompressor& compressor,
                                    std::span<const TrackPoint3> points) {
  CompressedTrajectory3 out;
  compressor.Reset();
  for (const TrackPoint3& p : points) compressor.Push(p, &out.keys);
  compressor.Finish(&out.keys);
  return out;
}

DeviationReport Evaluate3dCompression(std::span<const TrackPoint3> original,
                                      const CompressedTrajectory3& compressed,
                                      DistanceMetric metric) {
  DeviationReport report;
  const auto& keys = compressed.keys;
  if (keys.size() < 2) return report;
  report.per_segment.reserve(keys.size() - 1);
  for (std::size_t s = 0; s + 1 < keys.size(); ++s) {
    const std::size_t from = static_cast<std::size_t>(keys[s].index);
    std::size_t to = static_cast<std::size_t>(keys[s + 1].index);
    if (to >= original.size()) to = original.size() - 1;
    double dev = 0.0;
    const Vec3 a = original[from].pos;
    const Vec3 b = original[to].pos;
    for (std::size_t i = from + 1; i < to; ++i) {
      const double d = metric == DistanceMetric::kPointToLine
                           ? PointToLineDistance3(original[i].pos, a, b)
                           : PointToSegmentDistance3(original[i].pos, a, b);
      dev = std::max(dev, d);
    }
    report.per_segment.push_back(dev);
    if (dev > report.max_deviation) {
      report.max_deviation = dev;
      report.worst_segment = s;
    }
  }
  return report;
}

}  // namespace bqs
