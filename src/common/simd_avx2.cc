// AVX2 4-wide kernel tier. This translation unit (and simd_sse2.cc) are
// the only files allowed to touch intrinsics — repo_lint enforces the
// containment. The file is compiled with -mavx2 (see CMakeLists.txt);
// its functions are only ever reached through the dispatch table after
// DetectedTier() has confirmed AVX2 support.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

#include "common/simd.h"
#include "common/simd_lanes.h"

namespace bqs::simd {
namespace {

struct V4 {
  __m256d v;

  static constexpr std::size_t kLanes = 4;
  static V4 Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static V4 Zero() { return {_mm256_setzero_pd()}; }
  static V4 LoadU(const double* p) { return {_mm256_loadu_pd(p)}; }
  void StoreU(double* p) const { _mm256_storeu_pd(p, v); }

  friend V4 operator+(V4 a, V4 b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend V4 operator-(V4 a, V4 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  friend V4 operator*(V4 a, V4 b) { return {_mm256_mul_pd(a.v, b.v)}; }

  V4 Abs() const {
    return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), v)};
  }
  static V4 Min(V4 a, V4 b) { return {_mm256_min_pd(a.v, b.v)}; }
  static V4 Max(V4 a, V4 b) { return {_mm256_max_pd(a.v, b.v)}; }

  V4 Le(V4 o) const { return {_mm256_cmp_pd(v, o.v, _CMP_LE_OQ)}; }
  V4 Lt(V4 o) const { return {_mm256_cmp_pd(v, o.v, _CMP_LT_OQ)}; }
  V4 Gt(V4 o) const { return {_mm256_cmp_pd(v, o.v, _CMP_GT_OQ)}; }
  V4 Eq(V4 o) const { return {_mm256_cmp_pd(v, o.v, _CMP_EQ_OQ)}; }
  V4 NeUQ(V4 o) const { return {_mm256_cmp_pd(v, o.v, _CMP_NEQ_UQ)}; }

  V4 And(V4 o) const { return {_mm256_and_pd(v, o.v)}; }
  V4 Or(V4 o) const { return {_mm256_or_pd(v, o.v)}; }
  static V4 AndNot(V4 a, V4 b) { return {_mm256_andnot_pd(a.v, b.v)}; }
  static V4 Select(V4 mask, V4 a, V4 b) {
    return {_mm256_blendv_pd(b.v, a.v, mask.v)};
  }

  int MoveMask() const { return _mm256_movemask_pd(v); }
  double Lane(std::size_t k) const {
    alignas(32) double tmp[4];
    _mm256_store_pd(tmp, v);
    return tmp[k];
  }

  // Strided (x, y) pair gather for kLanes consecutive points whose two
  // leading doubles are x then y: four 128-bit pair loads and a 4x2
  // transpose (pure loads and lane moves — the values are bit-identical
  // to scalar loads, just cheaper than eight of them).
  static void GatherXY(const unsigned char* base, std::size_t stride, V4* x,
                       V4* y) {
    const __m128d p0 = _mm_loadu_pd(reinterpret_cast<const double*>(base));
    const __m128d p1 =
        _mm_loadu_pd(reinterpret_cast<const double*>(base + stride));
    const __m128d p2 =
        _mm_loadu_pd(reinterpret_cast<const double*>(base + 2 * stride));
    const __m128d p3 =
        _mm_loadu_pd(reinterpret_cast<const double*>(base + 3 * stride));
    const __m256d a02 = _mm256_insertf128_pd(_mm256_castpd128_pd256(p0), p2, 1);
    const __m256d a13 = _mm256_insertf128_pd(_mm256_castpd128_pd256(p1), p3, 1);
    x->v = _mm256_unpacklo_pd(a02, a13);
    y->v = _mm256_unpackhi_pd(a02, a13);
  }
};

void PrepareRotatedAvx2(const unsigned char* base, std::size_t stride,
                        std::size_t n, double origin_x, double origin_y,
                        double rot_cos, double rot_sin, double* rx, double* ry,
                        double* nsq) {
  lanes::PrepareRotatedImpl<V4>(base, stride, n, origin_x, origin_y, rot_cos,
                                rot_sin, rx, ry, nsq);
}

void ScreenLanesAvx2(const ScreenState& state, const double* rx,
                     const double* ry, const double* nsq, std::size_t n,
                     unsigned char* verdicts) {
  lanes::ScreenLanesImpl<V4>(state, rx, ry, nsq, n, verdicts);
}

double MaxAbsCrossAvx2(const unsigned char* base, std::size_t stride,
                       std::size_t n, double ax, double ay, double dx,
                       double dy) {
  return lanes::MaxAbsCrossImpl<V4>(base, stride, n, ax, ay, dx, dy);
}

void PrepareTrivialAvx2(const unsigned char* base, std::size_t stride,
                        std::size_t n, double origin_x, double origin_y,
                        double eps_sq, unsigned char* verdicts) {
  lanes::PrepareTrivialImpl<V4>(base, stride, n, origin_x, origin_y, eps_sq,
                                verdicts);
}

}  // namespace

namespace internal {
const KernelTable kAvx2Kernels = {PrepareRotatedAvx2, ScreenLanesAvx2,
                                  PrepareTrivialAvx2, MaxAbsCrossAvx2,
                                  Tier::kAvx2, 4};
}  // namespace internal

}  // namespace bqs::simd

#endif  // x86-64
