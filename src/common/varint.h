// LEB128 varint and zigzag codecs — the WAL's integer wire format.
//
// Unsigned values are base-128 encoded, 7 bits per byte, continuation bit
// in the MSB, least-significant group first (protobuf/LevelDB layout).
// Signed values go through zigzag first (0,-1,1,-2,... -> 0,1,2,3,...) so
// small-magnitude deltas of either sign stay short — exactly the shape of
// the WAL's delta-coded timestamps and quantized coordinates.
//
// Decoding is hardened for the recovery path: every decoder takes an
// explicit end pointer, never reads past it, and rejects encodings longer
// than 10 bytes or with set bits beyond the 64th — arbitrary bytes must
// decode or fail cleanly, never overrun (the WAL fuzzer's core invariant).
#ifndef BQS_COMMON_VARINT_H_
#define BQS_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bqs {
namespace varint {

/// Longest possible encoding of a uint64 (ceil(64 / 7) bytes).
inline constexpr std::size_t kMaxBytes = 10;

/// Zigzag: interleaves signed values into unsigned so small magnitudes of
/// either sign encode short.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);  // arithmetic shift: 0 or ~0
}

inline int64_t ZigZagDecode(uint64_t u) {
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

/// Appends the LEB128 encoding of `v` to `out`.
inline void PutU64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, ZigZagEncode(v));
}

/// Decodes one LEB128 value from [*pos, end). On success advances *pos
/// past the encoding and returns true; on truncation or a malformed
/// encoding (length > 10 bytes, or bits beyond 64) leaves *pos unchanged
/// and returns false.
inline bool GetU64(const uint8_t** pos, const uint8_t* end, uint64_t* v) {
  const uint8_t* p = *pos;
  uint64_t result = 0;
  for (std::size_t shift = 0; shift < 70 && p < end; shift += 7) {
    const uint64_t byte = *p++;
    if (shift == 63 && (byte & 0xfe) != 0) {
      return false;  // 10th byte may only contribute the 64th bit
    }
    result |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *v = result;
      return true;
    }
  }
  return false;  // ran off `end`, or an 11th continuation byte
}

inline bool GetI64(const uint8_t** pos, const uint8_t* end, int64_t* v) {
  uint64_t u = 0;
  if (!GetU64(pos, end, &u)) return false;
  *v = ZigZagDecode(u);
  return true;
}

}  // namespace varint
}  // namespace bqs

#endif  // BQS_COMMON_VARINT_H_
