#ifndef BQS_COMMON_SIMD_LANES_H_
#define BQS_COMMON_SIMD_LANES_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/simd.h"

// Width-generic kernel bodies, instantiated once per vector tier with a
// lane-wrapper type V (simd_avx2.cc / simd_sse2.cc). This header is
// intrinsics-free: V supplies the lane ops, this file supplies the exact
// scalar expressions replicated per lane. Keeping one body for both
// widths is what makes the byte-identity argument auditable — there is a
// single place to compare against the scalar kernel in
// src/core/segment_state.cc and src/core/bounds.cc.
//
// Required V interface:
//   static constexpr std::size_t kLanes;
//   static V Broadcast(double), Zero(), LoadU(const double*);
//   static void GatherXY(const unsigned char* base, std::size_t stride,
//                        V* x, V* y);   // kLanes strided (x, y) pairs
//   void StoreU(double*) const;
//   operators + - * ; V Abs() const;
//   static V Min(V, V), Max(V, V);              // lane-wise minpd/maxpd
//   V Le(V) const, Lt(V) const, Gt(V) const,    // ordered compares
//     Eq(V) const, NeUQ(V) const;               // NeUQ: unordered-or-!=
//   V And(V) const, Or(V) const; static V AndNot(V a, V b);  // ~a & b
//   static V Select(V mask, V a, V b);          // mask ? a : b
//   int MoveMask() const;                       // sign bit per lane
//   double Lane(std::size_t) const;

namespace bqs::simd::lanes {

template <typename V>
inline void PrepareRotatedImpl(const unsigned char* base, std::size_t stride,
                               std::size_t n, double origin_x, double origin_y,
                               double rot_cos, double rot_sin, double* rx,
                               double* ry, double* nsq) {
  constexpr std::size_t kW = V::kLanes;
  const V ox = V::Broadcast(origin_x);
  const V oy = V::Broadcast(origin_y);
  std::size_t i = 0;
  if (rot_sin == 0.0 && rot_cos == 1.0) {
    // Exact identity rotation — the guaranteed state of every
    // pre-rotation segment, where most of the stream lives. Skipping the
    // rotation multiplies also skips their signed-zero rewrites, matching
    // the identical shortcut in SegmentEngine::ToRotatedFrame bit for
    // bit.
    for (; i + kW <= n; i += kW) {
      V px, py;
      V::GatherXY(base + i * stride, stride, &px, &py);
      const V relx = px - ox;
      const V rely = py - oy;
      (relx * relx + rely * rely).StoreU(nsq + i);
      relx.StoreU(rx + i);
      rely.StoreU(ry + i);
    }
    for (; i < n; ++i) {
      const double* p = reinterpret_cast<const double*>(base + i * stride);
      const double relx = p[0] - origin_x;
      const double rely = p[1] - origin_y;
      nsq[i] = relx * relx + rely * rely;
      rx[i] = relx;
      ry[i] = rely;
    }
    return;
  }
  const V c = V::Broadcast(rot_cos);
  const V s = V::Broadcast(rot_sin);
  const V ns = V::Broadcast(-rot_sin);
  for (; i + kW <= n; i += kW) {
    V px, py;
    V::GatherXY(base + i * stride, stride, &px, &py);
    const V relx = px - ox;
    const V rely = py - oy;
    (relx * relx + rely * rely).StoreU(nsq + i);
    (c * relx + s * rely).StoreU(rx + i);
    (ns * relx + c * rely).StoreU(ry + i);
  }
  for (; i < n; ++i) {
    const double* p = reinterpret_cast<const double*>(base + i * stride);
    const double relx = p[0] - origin_x;
    const double rely = p[1] - origin_y;
    nsq[i] = relx * relx + rely * rely;
    rx[i] = rot_cos * relx + rot_sin * rely;
    ry[i] = -rot_sin * relx + rot_cos * rely;
  }
}

template <typename V>
inline void PrepareTrivialImpl(const unsigned char* base, std::size_t stride,
                               std::size_t n, double origin_x, double origin_y,
                               double eps_sq, unsigned char* verdicts) {
  constexpr std::size_t kW = V::kLanes;
  const V ox = V::Broadcast(origin_x);
  const V oy = V::Broadcast(origin_y);
  const V eps = V::Broadcast(eps_sq);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    V px, py;
    V::GatherXY(base + i * stride, stride, &px, &py);
    const V relx = px - ox;
    const V rely = py - oy;
    const int mask = (relx * relx + rely * rely).Le(eps).MoveMask();
    for (std::size_t k = 0; k < kW; ++k) {
      verdicts[i + k] = static_cast<unsigned char>((mask >> k) & 1);
    }
  }
  // Scalar tail: leave the decision to the per-point path.
  for (; i < n; ++i) verdicts[i] = 0;
}

template <typename V>
inline void ScreenLanesImpl(const ScreenState& state, const double* rx,
                            const double* ry, const double* nsq, std::size_t n,
                            unsigned char* verdicts) {
  constexpr std::size_t kW = V::kLanes;
  const V zero = V::Zero();
  const V eps_sq = V::Broadcast(state.eps_sq);
  const V all = zero.Eq(zero);
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    const V x = V::LoadU(rx + i);
    const V y = V::LoadU(ry + i);
    const V q = V::LoadU(nsq + i);
    // Trivial test: |rel|^2 <= eps^2 (ordered, so NaN lanes decline
    // here exactly as the scalar compare does).
    const V trivial = q.Le(eps_sq);
    if (state.mode == ScreenMode::kTrivialOnly) {
      const int mask = trivial.MoveMask();
      for (std::size_t k = 0; k < kW; ++k) {
        verdicts[i + k] = static_cast<unsigned char>((mask >> k) & 1);
      }
      continue;
    }
    if (state.mode == ScreenMode::kWarmup) {
      V ok = trivial;
      if (ok.MoveMask() == 0) {
        for (std::size_t k = 0; k < kW; ++k) verdicts[i + k] = 0;
        continue;
      }
      // Fallback hazard handled scalar-side: a degenerate end (the scalar
      // verdict reports 0 and recomputes via the reference scan).
      const V xz = x.Eq(zero);
      const V yz = y.Eq(zero);
      ok = V::AndNot(xz.And(yz), ok);
      // Pre-rotation warm-up verdict, lane-parallel: max |end x (p - a)|
      // over the buffered warm-up candidates must land conclusively below
      // the guard band (verdict +1), i.e. vmax^2 <= eps^2 * |end|^2 *
      // (1 - 1e-12). The candidates are marshalled relative to the
      // segment start with the same subtraction the scalar scan performs,
      // and the cross/threshold expressions match it term for term.
      V vmax = zero;
      for (int k = 0; k < state.warm_count; ++k) {
        const V v = x * V::Broadcast(state.warm_py[k]) -
                    y * V::Broadcast(state.warm_px[k]);
        vmax = V::Max(vmax, v.Abs());
      }
      const V threshold = eps_sq * (x * x + y * y);
      ok = ok.And(
          (vmax * vmax).Le(threshold * V::Broadcast(1.0 - 1e-12)));
      const int mask = ok.MoveMask();
      for (std::size_t k = 0; k < kW; ++k) {
        verdicts[i + k] = static_cast<unsigned char>((mask >> k) & 1);
      }
      continue;
    }
    // kQuadrant: the conclusive-include proof is the same for every lane
    // (it replays FastAssess's upper-bound include condition exactly), so
    // the screen is not gated on the trivial test — a non-trivial lane
    // that proves conclusive is reported as verdict 2, which lets the
    // batch loop skip the scalar bound composition and go straight to the
    // include effects (quadrant add + exact-state append).
    V ok = all;
    // Degenerate end: FastAssess's reference fallback. (Always trivial —
    // |rel|^2 == 0 — but excluded explicitly for the proof.)
    const V xz = x.Eq(zero);
    const V yz = y.Eq(zero);
    ok = V::AndNot(xz.And(yz), ok);
    // The near-axis sliver guard is a further scalar-side hazard
    // (mn != 0 && mn <= 1e-12 * mx over |coords|).
    const V ax = x.Abs();
    const V ay = y.Abs();
    const V mn = V::Min(ax, ay);
    const V mx = V::Max(ax, ay);
    const V sliver = mn.NeUQ(zero).And(mn.Le(V::Broadcast(1e-12) * mx));
    ok = V::AndNot(sliver, ok);
    // Quadrant parity of the end point, matching QuadrantOf(): odd
    // quadrants (1, 3) are x>0&&y<0, x<0&&y>0, or x==0&&y!=0.
    const V xgt = x.Gt(zero);
    const V xlt = x.Lt(zero);
    const V ygt = y.Gt(zero);
    const V ylt = y.Lt(zero);
    const V odd = xgt.And(ylt).Or(xlt.And(ygt)).Or(
        V::AndNot(xgt.Or(xlt), ygt.Or(ylt)));
    // Upper-bound composition: per occupied quadrant, max |end x p| over
    // the lane-selected candidate set (in-quadrant set when the end's
    // parity matches, the four corners otherwise), max-merged across
    // quadrants. All values are fabs results, so the max tree commutes
    // bitwise with the scalar reduction order.
    V upper = zero;
    for (int qi = 0; qi < state.num_quads; ++qi) {
      const ScreenQuadrant& sq = state.quads[qi];
      const V in_q = sq.parity != 0 ? odd : V::AndNot(odd, all);
      V up_in = zero;
      for (int k = 0; k < sq.in_count; ++k) {
        const V v = x * V::Broadcast(sq.in_py[k]) -
                    y * V::Broadcast(sq.in_px[k]);
        up_in = V::Max(up_in, v.Abs());
      }
      V up_out = zero;
      for (int k = 0; k < 4; ++k) {
        const V v = x * V::Broadcast(sq.out_py[k]) -
                    y * V::Broadcast(sq.out_px[k]);
        up_out = V::Max(up_out, v.Abs());
      }
      upper = V::Max(upper, V::Select(in_q, up_in, up_out));
      if (sq.wedge_blocked) ok = V::AndNot(in_q, ok);
    }
    // Conclusive include in the squared domain, below the guard band:
    // upper^2 <= eps^2 * |end|^2 * (1 - 1e-12).
    const V threshold = eps_sq * (x * x + y * y);
    ok = ok.And((upper * upper).Le(threshold * V::Broadcast(1.0 - 1e-12)));
    const int inc = ok.MoveMask();
    const int triv = trivial.MoveMask();
    for (std::size_t k = 0; k < kW; ++k) {
      const unsigned char t = static_cast<unsigned char>((triv >> k) & 1);
      verdicts[i + k] =
          ((inc >> k) & 1) != 0 ? static_cast<unsigned char>(2 - t) : 0;
    }
  }
  // Scalar tail: leave the decision to the per-point path.
  for (; i < n; ++i) verdicts[i] = 0;
}

template <typename V>
inline double MaxAbsCrossImpl(const unsigned char* base, std::size_t stride,
                              std::size_t n, double ax, double ay, double dx,
                              double dy) {
  constexpr std::size_t kW = V::kLanes;
  const V vax = V::Broadcast(ax);
  const V vay = V::Broadcast(ay);
  const V vdx = V::Broadcast(dx);
  const V vdy = V::Broadcast(dy);
  V acc = V::Zero();
  std::size_t i = 0;
  for (; i + kW <= n; i += kW) {
    V px, py;
    V::GatherXY(base + i * stride, stride, &px, &py);
    const V relx = px - vax;
    const V rely = py - vay;
    acc = V::Max(acc, (vdx * rely - vdy * relx).Abs());
  }
  double vmax = 0.0;
  for (std::size_t k = 0; k < kW; ++k) vmax = std::max(vmax, acc.Lane(k));
  for (; i < n; ++i) {
    const double* p = reinterpret_cast<const double*>(base + i * stride);
    vmax = std::max(vmax,
                    std::fabs(dx * (p[1] - ay) - dy * (p[0] - ax)));
  }
  return vmax;
}

}  // namespace bqs::simd::lanes

#endif  // BQS_COMMON_SIMD_LANES_H_
