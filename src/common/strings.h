// Minimal string helpers for CSV I/O and table formatting. Deliberately
// small; no locale dependence (all numeric formatting is "C" locale).
#ifndef BQS_COMMON_STRINGS_H_
#define BQS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace bqs {

/// Splits on a single delimiter; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts, std::string_view delim);

/// Strict string->double; fails on empty / trailing garbage / inf overflow.
Result<double> ParseDouble(std::string_view s);

/// Strict string->int64.
Result<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into std::string (type-checked by the compiler).
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace bqs

#endif  // BQS_COMMON_STRINGS_H_
