#include "common/status.h"

namespace bqs {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace bqs
