// Streaming and batch statistics. RunningStats implements Welford's online
// mean/variance update — the semi-numeric algorithm the paper cites (Knuth,
// TAOCP vol. 2) for fitting a Gaussian interpolation distribution online.
#ifndef BQS_COMMON_STATS_H_
#define BQS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace bqs {

/// Online mean/variance accumulator (Welford / Knuth TAOCP 4.2.2).
/// Constant space; numerically stable for long streams.
class RunningStats {
 public:
  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Number of observations so far.
  int64_t count() const { return count_; }
  /// Mean of observations; 0 when empty.
  double mean() const { return mean_; }
  /// Population variance (divides by n); 0 for n < 2.
  double variance() const;
  /// Sample variance (divides by n-1); 0 for n < 2.
  double sample_variance() const;
  /// sqrt(variance()).
  double stddev() const;
  /// Smallest observation; +inf when empty.
  double min() const { return min_; }
  /// Largest observation; -inf when empty.
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStats& other);

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch percentile over a copy of the data (nearest-rank with linear
/// interpolation). `q` in [0, 1]. Returns 0 for empty input.
double Percentile(std::vector<double> values, double q);

/// Fixed-bin histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x);
  /// Count in bin i.
  int64_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t num_bins() const { return counts_.size(); }
  int64_t total() const { return total_; }
  /// Inclusive lower edge of bin i.
  double bin_lo(std::size_t i) const;
  /// Fraction of mass at or below x (empirical CDF on bin granularity).
  double CdfAt(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace bqs

#endif  // BQS_COMMON_STATS_H_
