#include "common/rng.h"

#include <algorithm>

namespace bqs {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::Exponential(double mean) {
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::LogNormal(double mu, double sigma) {
  std::lognormal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(std::clamp(p, 0.0, 1.0));
  return dist(engine_);
}

uint64_t Rng::Fork() {
  // splitmix64 step over a fresh draw keeps child streams decorrelated.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace bqs
