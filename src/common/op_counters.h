// Global operation counters for the expensive per-point primitives on the
// bound-decision path (transcendentals, square roots, significant-point
// rebuilds). They exist so the micro bench can *prove* — not eyeball — that
// the fast bound kernel never touches a transcendental on the conclusive
// decision path (ISSUE 4 acceptance criterion), and so regressions that
// quietly reintroduce one are caught by the perf-smoke gate.
//
// The counters are relaxed atomics: they are only ever read for reporting
// (never for synchronization), and the increment sites sit next to calls
// that cost 1-2 orders of magnitude more than the increment (atan2, hypot,
// a full significant-point rebuild), so the counted reference paths keep an
// honest cost profile. Fleet shards may increment concurrently; relaxed
// atomics keep that TSan-clean.
#ifndef BQS_COMMON_OP_COUNTERS_H_
#define BQS_COMMON_OP_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace bqs {
namespace ops {

struct Counters {
  /// std::atan2 evaluations on the decision path (classification, angular
  /// extreme tracking, the reference in-quadrant test). Excludes the
  /// once-per-segment rotation estimation, which is not a per-point cost.
  std::atomic<uint64_t> atan2_calls{0};
  /// Square-root-bearing distance evaluations (hypot/sqrt) performed while
  /// composing deviation bounds. Excludes exact resolves, which are the
  /// inconclusive path and legitimately need real distances.
  std::atomic<uint64_t> sqrt_calls{0};
  /// Full QuadrantBound significant-point recomputations.
  std::atomic<uint64_t> significant_rebuilds{0};
  /// Batch-kernel points decided by the 4-wide (AVX2) conclusive screen.
  std::atomic<uint64_t> batch_lanes4_points{0};
  /// Batch-kernel points decided by the 2-wide (SSE2) conclusive screen.
  std::atomic<uint64_t> batch_lanes2_points{0};
  /// Batch-kernel points decided on the per-point scalar path (warm-up,
  /// inconclusive/fallback lanes, scalar tails, and the scalar tier).
  std::atomic<uint64_t> batch_scalar_points{0};
};

inline Counters& Global() {
  static Counters counters;
  return counters;
}

inline void CountAtan2() {
  Global().atan2_calls.fetch_add(1, std::memory_order_relaxed);
}
inline void CountSqrt(uint64_t n = 1) {
  Global().sqrt_calls.fetch_add(n, std::memory_order_relaxed);
}
inline void CountSignificantRebuild() {
  Global().significant_rebuilds.fetch_add(1, std::memory_order_relaxed);
}
/// Bulk-flushed once per batch (not per point) so the vector fast path
/// never pays a per-point atomic.
inline void CountBatchLanePoints(std::size_t lanes, uint64_t n) {
  if (n == 0) return;
  Counters& c = Global();
  if (lanes >= 4) {
    c.batch_lanes4_points.fetch_add(n, std::memory_order_relaxed);
  } else {
    c.batch_lanes2_points.fetch_add(n, std::memory_order_relaxed);
  }
}
inline void CountBatchScalarPoints(uint64_t n) {
  if (n == 0) return;
  Global().batch_scalar_points.fetch_add(n, std::memory_order_relaxed);
}

/// Plain-value snapshot for before/after deltas in benches and tests.
struct Snapshot {
  uint64_t atan2_calls = 0;
  uint64_t sqrt_calls = 0;
  uint64_t significant_rebuilds = 0;
  uint64_t batch_lanes4_points = 0;
  uint64_t batch_lanes2_points = 0;
  uint64_t batch_scalar_points = 0;

  Snapshot Delta(const Snapshot& earlier) const {
    return {atan2_calls - earlier.atan2_calls,
            sqrt_calls - earlier.sqrt_calls,
            significant_rebuilds - earlier.significant_rebuilds,
            batch_lanes4_points - earlier.batch_lanes4_points,
            batch_lanes2_points - earlier.batch_lanes2_points,
            batch_scalar_points - earlier.batch_scalar_points};
  }
};

inline Snapshot Read() {
  const Counters& c = Global();
  return {c.atan2_calls.load(std::memory_order_relaxed),
          c.sqrt_calls.load(std::memory_order_relaxed),
          c.significant_rebuilds.load(std::memory_order_relaxed),
          c.batch_lanes4_points.load(std::memory_order_relaxed),
          c.batch_lanes2_points.load(std::memory_order_relaxed),
          c.batch_scalar_points.load(std::memory_order_relaxed)};
}

}  // namespace ops
}  // namespace bqs

#endif  // BQS_COMMON_OP_COUNTERS_H_
