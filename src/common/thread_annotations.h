// Clang Thread Safety Analysis annotations, plus the small capability
// vocabulary the service layer is written in.
//
// The macros expand to clang's `capability`-family attributes when the
// compiler supports them (clang with -Wthread-safety) and to nothing
// everywhere else, so annotated code builds identically under gcc. CI
// compiles the tree with clang and -Werror=thread-safety, turning the
// service layer's ownership comments ("worker-owned, read by the caller
// only after WaitIdle") into compile errors when violated.
//
// Two kinds of capability are used:
//
//  - Mutex / MutexLock: a std::mutex wrapped as a real CAPABILITY, with a
//    SCOPED_CAPABILITY guard that exposes the underlying unique_lock so
//    condition variables still work. Data a mutex protects is declared
//    GUARDED_BY(mu_).
//
//  - ThreadRole: a zero-size capability that names a *thread ownership
//    role* rather than a lock — "the single producer thread", "the shard
//    worker (or the caller after WaitIdle proved the shard idle)". Code
//    acquires a role not by locking but by being the right thread at the
//    right point of the protocol; those trust points are spelled
//    AssumeRole(role) (an ASSERT_CAPABILITY function) and are the only
//    places the analysis takes on faith. Everything downstream —
//    REQUIRES(role) functions, GUARDED_BY(role) members — is checked.
#ifndef BQS_COMMON_THREAD_ANNOTATIONS_H_
#define BQS_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BQS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BQS_THREAD_ANNOTATION
#define BQS_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define CAPABILITY(x) BQS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY BQS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) BQS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) BQS_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) \
  BQS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  BQS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) BQS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) BQS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  BQS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) BQS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(...) \
  BQS_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define RETURN_CAPABILITY(x) BQS_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  BQS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bqs {

/// std::mutex wrapped as an analyzable capability. The standard library's
/// own mutex carries no annotations under libstdc++, so data guarded by a
/// bare std::mutex is invisible to the analysis; this wrapper is the
/// repo-standard replacement (the service-layer lint budgets naked
/// std::mutex members for exactly that reason).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for condition_variable interop. Lock state changes
  /// made through the native handle bypass the analysis; keep them inside
  /// a MutexLock scope (condition_variable::wait unlocks and re-locks,
  /// which is invisible but balanced, so the static state stays truthful).
  std::mutex& native() RETURN_CAPABILITY(this) { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex, built on unique_lock so condition variables can
/// wait on it: cv.wait(lock.native(), pred).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// A capability that names a thread ownership role instead of a lock: who
/// may touch single-owner state, enforced statically. Roles are never
/// "locked" — a thread holds one by protocol (it is the worker; it is the
/// single producer; it called WaitIdle) — and the protocol's trust points
/// are spelled AssumeRole(). Zero-size, zero-cost.
class CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

/// Declares that the calling context holds `role` by protocol. Each call
/// site is a trust point of the ownership story — keep them rare and
/// commented (worker loop entry, post-WaitIdle, inline mode's
/// everything-on-one-thread shortcut).
inline void AssumeRole(const ThreadRole& role) ASSERT_CAPABILITY(role) {
  (void)role;
}

}  // namespace bqs

#endif  // BQS_COMMON_THREAD_ANNOTATIONS_H_
