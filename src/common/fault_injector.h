// Deterministic fault injection for the fleet service layer and the
// key-point WAL.
//
// Overload and failure paths (full rings, exhausted arenas, stalled
// workers, mid-batch evictions, torn writes, failed fsyncs) are nearly
// impossible to hit on cue from the outside: they depend on scheduling,
// machine speed, queue depths and the kernel's page cache. A
// FaultInjector makes them reproducible: tests arm a site with a firing
// probability and the engine consults ShouldFire() at that site's hook.
// Every decision is a pure function of (seed, site, per-site call index) —
// splitmix64 over an atomic counter — so a given seed replays the exact
// same fault schedule on every run, machine and thread interleaving
// (provided the per-site call sequence itself is deterministic, which the
// engine's single-producer / per-shard-worker structure — and the WAL's
// internal append lock — guarantees for a fixed feed and shard count).
//
// The file lived in src/service until the WAL landed; it is in common now
// because storage sits below service in the layer DAG and both consume
// the same deterministic schedule (a crash-point sweep that arms
// kCrashAfterWrite and an overload test that arms kRingFull must replay
// from the same (seed, site, call index) triple).
//
// The hooks are compiled into FleetEngine and KeyPointWal unconditionally
// — a null-check per seal/acquire/write, nothing more — but the type is a
// test harness, not a production feature: the repo lint's
// fault-injection-containment rule keeps any other src/ code from
// reaching for it.
//
// Thread contract: Arm() before the engine runs (or between drained
// phases); ShouldFire() is called concurrently from producer and worker
// threads and is lock-free. The worker-stall site is special: when it
// fires, the worker parks in WaitStallReleased() until the test calls
// ReleaseStalls() — release before Flush()/destruction or the drain will
// (by design) never finish.
#ifndef BQS_COMMON_FAULT_INJECTOR_H_
#define BQS_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>

#include "common/thread_annotations.h"

namespace bqs {

/// Engine hook points a test can force.
enum class FaultSite : uint8_t {
  kRingFull,        ///< Seal sees a (synthetically) full shard ring.
  kWorkerStall,     ///< Worker parks before processing its next command.
  kArenaExhausted,  ///< Producer's block Acquire is denied.
  kMidBatchEvict,   ///< Session force-evicted right after a dispatched run.

  // --- key-point WAL sites (storage/keypoint_wal.cc) ---------------------
  /// A record write stops short after param(site) bytes (param taken
  /// modulo the record size), leaving a torn record on disk. The writer
  /// reports an IoError and goes dead, exactly like a crashed process.
  kWriteShortAtByte,
  /// The durability sync (fsync/fdatasync) reports failure. Fsync-gate
  /// semantics: the writer goes dead — after a failed fsync nothing about
  /// the file's durable state can be trusted, so pretending to continue
  /// would forge the ack contract.
  kFsyncFail,
  /// Process "crashes" immediately after a record write: the writer's
  /// user-space buffer (bytes not yet written to the OS under kNone
  /// batching) is discarded and the writer goes dead without flushing.
  kCrashAfterWrite,

  // --- compaction sites (storage/compaction.cc) --------------------------
  /// The compactor "crashes" at state-machine transition param(site): the
  /// in-flight compaction aborts mid-step, leaving whatever temp files /
  /// half-published state exists on disk for recovery to sort out. The
  /// crash-point sweep arms this with param = 0, 1, 2, ... to kill the
  /// pipeline at every transition in turn.
  kCompactionCrashAt,
  /// The atomic rename (block or manifest publication) reports failure.
  /// Retried under the backoff policy; persistent failure degrades the
  /// compactor, never the WAL ingest path.
  kRenameFail,
  /// A write/fsync reports ENOSPC (disk full). In the WAL this trips the
  /// fsync gate (fail-stop); in the compactor it is retried and then
  /// degrades to WAL-only mode (degrade-and-continue).
  kEnospc,
};
inline constexpr std::size_t kFaultSiteCount = 10;

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `site`: each ShouldFire(site) fires with `probability` (clamped
  /// to [0,1]), at most `max_fires` times total. Call before the engine
  /// consults the site (armed state is read without synchronization on
  /// the hot path). `param` is a site-specific knob the firing hook reads
  /// back through param(site) — kWriteShortAtByte uses it as the byte
  /// offset at which the torn write stops, which is what lets a crash-
  /// point sweep enumerate every offset deterministically.
  void Arm(FaultSite site, double probability,
           uint64_t max_fires = UINT64_MAX, uint64_t param = 0) {
    State& s = state_[Index(site)];
    s.probability = probability < 0.0 ? 0.0
                    : probability > 1.0 ? 1.0
                                        : probability;
    s.max_fires = max_fires;
    s.param = param;
  }

  /// The site's Arm() parameter (0 when never armed).
  uint64_t param(FaultSite site) const { return state_[Index(site)].param; }

  /// The engine's hook: true when the armed site fires for this call.
  /// Deterministic: decision i for a site depends only on (seed, site, i).
  bool ShouldFire(FaultSite site) {
    State& s = state_[Index(site)];
    if (s.probability <= 0.0) return false;
    const uint64_t n = s.calls.fetch_add(1, std::memory_order_relaxed);
    const uint64_t h =
        Mix(seed_ ^ (0x9e3779b97f4a7c15ULL * (Index(site) + 1)) ^ n);
    const double coin =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (coin >= s.probability) return false;
    // Reserve a firing slot; over-subscribed reservations past max_fires
    // simply decline (fired_ keeps counting attempts, fires() reports the
    // capped value).
    const uint64_t f = s.fired.fetch_add(1, std::memory_order_relaxed);
    return f < s.max_fires;
  }

  /// Worker-side gate for kWorkerStall: parks until ReleaseStalls(). The
  /// released flag is an atomic read by the wait predicate (the same
  /// pattern as the engine's idle protocol) with the store made under the
  /// mutex, closing the predicate-to-block window.
  void WaitStallReleased() {
    MutexLock lock(stall_mu_);
    stall_cv_.wait(lock.native(), [&] {
      return stalls_released_.load(std::memory_order_relaxed);
    });
  }

  /// Unparks every stalled worker, permanently (a released injector never
  /// stalls again; re-arm with a fresh injector instead).
  void ReleaseStalls() {
    {
      MutexLock lock(stall_mu_);
      stalls_released_.store(true, std::memory_order_seq_cst);
    }
    stall_cv_.notify_all();
  }

  /// True once ReleaseStalls() has run.
  bool stalls_released() const {
    return stalls_released_.load(std::memory_order_relaxed);
  }

  /// Times the site actually fired (capped by max_fires).
  uint64_t fires(FaultSite site) const {
    const State& s = state_[Index(site)];
    const uint64_t f = s.fired.load(std::memory_order_relaxed);
    return f < s.max_fires ? f : s.max_fires;
  }

  /// Times the engine consulted the site.
  uint64_t calls(FaultSite site) const {
    return state_[Index(site)].calls.load(std::memory_order_relaxed);
  }

  uint64_t seed() const { return seed_; }

 private:
  struct State {
    double probability = 0.0;
    uint64_t max_fires = 0;
    uint64_t param = 0;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> fired{0};
  };

  static std::size_t Index(FaultSite site) {
    return static_cast<std::size_t>(site);
  }

  /// splitmix64 finalizer (the repo-standard mixer).
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  const uint64_t seed_;
  State state_[kFaultSiteCount];

  Mutex stall_mu_;
  std::condition_variable stall_cv_;
  std::atomic<bool> stalls_released_{false};
};

}  // namespace bqs

#endif  // BQS_COMMON_FAULT_INJECTOR_H_
