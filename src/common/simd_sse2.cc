// SSE2 2-wide kernel tier: the x86-64 baseline, so this file needs no
// extra compile flags, but it still lives behind the dispatch layer and
// the same intrinsics-containment lint rule as the AVX2 tier.

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include <cstddef>

#include "common/simd.h"
#include "common/simd_lanes.h"

namespace bqs::simd {
namespace {

struct V2 {
  __m128d v;

  static constexpr std::size_t kLanes = 2;
  static V2 Broadcast(double x) { return {_mm_set1_pd(x)}; }
  static V2 Zero() { return {_mm_setzero_pd()}; }
  static V2 LoadU(const double* p) { return {_mm_loadu_pd(p)}; }
  void StoreU(double* p) const { _mm_storeu_pd(p, v); }

  friend V2 operator+(V2 a, V2 b) { return {_mm_add_pd(a.v, b.v)}; }
  friend V2 operator-(V2 a, V2 b) { return {_mm_sub_pd(a.v, b.v)}; }
  friend V2 operator*(V2 a, V2 b) { return {_mm_mul_pd(a.v, b.v)}; }

  V2 Abs() const { return {_mm_andnot_pd(_mm_set1_pd(-0.0), v)}; }
  static V2 Min(V2 a, V2 b) { return {_mm_min_pd(a.v, b.v)}; }
  static V2 Max(V2 a, V2 b) { return {_mm_max_pd(a.v, b.v)}; }

  V2 Le(V2 o) const { return {_mm_cmple_pd(v, o.v)}; }
  V2 Lt(V2 o) const { return {_mm_cmplt_pd(v, o.v)}; }
  V2 Gt(V2 o) const { return {_mm_cmpgt_pd(v, o.v)}; }
  V2 Eq(V2 o) const { return {_mm_cmpeq_pd(v, o.v)}; }
  V2 NeUQ(V2 o) const { return {_mm_cmpneq_pd(v, o.v)}; }

  V2 And(V2 o) const { return {_mm_and_pd(v, o.v)}; }
  V2 Or(V2 o) const { return {_mm_or_pd(v, o.v)}; }
  static V2 AndNot(V2 a, V2 b) { return {_mm_andnot_pd(a.v, b.v)}; }
  static V2 Select(V2 mask, V2 a, V2 b) {
    // SSE2 has no blendv; compare masks are all-ones/all-zero lanes, so
    // the and/andnot form is exact.
    return {_mm_or_pd(_mm_and_pd(mask.v, a.v),
                      _mm_andnot_pd(mask.v, b.v))};
  }

  int MoveMask() const { return _mm_movemask_pd(v); }
  double Lane(std::size_t k) const {
    alignas(16) double tmp[2];
    _mm_store_pd(tmp, v);
    return tmp[k];
  }

  // Strided (x, y) pair gather: two 128-bit pair loads and an unpack
  // (bit-identical to scalar loads).
  static void GatherXY(const unsigned char* base, std::size_t stride, V2* x,
                       V2* y) {
    const __m128d p0 = _mm_loadu_pd(reinterpret_cast<const double*>(base));
    const __m128d p1 =
        _mm_loadu_pd(reinterpret_cast<const double*>(base + stride));
    x->v = _mm_unpacklo_pd(p0, p1);
    y->v = _mm_unpackhi_pd(p0, p1);
  }
};

void PrepareRotatedSse2(const unsigned char* base, std::size_t stride,
                        std::size_t n, double origin_x, double origin_y,
                        double rot_cos, double rot_sin, double* rx, double* ry,
                        double* nsq) {
  lanes::PrepareRotatedImpl<V2>(base, stride, n, origin_x, origin_y, rot_cos,
                                rot_sin, rx, ry, nsq);
}

void ScreenLanesSse2(const ScreenState& state, const double* rx,
                     const double* ry, const double* nsq, std::size_t n,
                     unsigned char* verdicts) {
  lanes::ScreenLanesImpl<V2>(state, rx, ry, nsq, n, verdicts);
}

double MaxAbsCrossSse2(const unsigned char* base, std::size_t stride,
                       std::size_t n, double ax, double ay, double dx,
                       double dy) {
  return lanes::MaxAbsCrossImpl<V2>(base, stride, n, ax, ay, dx, dy);
}

void PrepareTrivialSse2(const unsigned char* base, std::size_t stride,
                        std::size_t n, double origin_x, double origin_y,
                        double eps_sq, unsigned char* verdicts) {
  lanes::PrepareTrivialImpl<V2>(base, stride, n, origin_x, origin_y, eps_sq,
                                verdicts);
}

}  // namespace

namespace internal {
const KernelTable kSse2Kernels = {PrepareRotatedSse2, ScreenLanesSse2,
                                  PrepareTrivialSse2, MaxAbsCrossSse2,
                                  Tier::kSse2, 2};
}  // namespace internal

}  // namespace bqs::simd

#endif  // x86-64
