#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace bqs {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  const std::string_view t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty number");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing garbage in number: '" + buf + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of double range: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  const std::string_view t = Trim(s);
  if (t.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(t);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("trailing garbage in integer: '" + buf +
                                   "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of int64 range: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace bqs
