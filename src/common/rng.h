// Deterministic random number generation for simulators and property tests.
// Every consumer takes an explicit seed so all results are reproducible;
// nothing in the library reads wall-clock entropy.
#ifndef BQS_COMMON_RNG_H_
#define BQS_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace bqs {

/// Seeded pseudo-random source wrapping std::mt19937_64 with the handful of
/// distributions the simulators need. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Normal (Gaussian) with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given mean (= 1/lambda). Used for Poisson-process
  /// event durations in the correlated random walk (paper Section VI-A).
  double Exponential(double mean);

  /// Log-normal such that the underlying normal has (mu, sigma).
  double LogNormal(double mu, double sigma);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent child seed; lets one master seed fan out to
  /// sub-simulators without correlated streams.
  uint64_t Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace bqs

#endif  // BQS_COMMON_RNG_H_
