#include "common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

namespace bqs::simd {
namespace {

// -1 = no forced tier; otherwise the int value of the forced Tier.
std::atomic<int> g_forced_tier{-1};

Tier DetectOnce() {
#if defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
#endif
  // SSE2 is part of the x86-64 baseline.
  return Tier::kSse2;
#else
  return Tier::kScalar;
#endif
}

// Read (not cached) so tests can flip the environment between engine
// constructions; engines snapshot the table once, so this is off the
// per-point path.
bool ForceScalarEnv() {
  const char* e = std::getenv("BQS_FORCE_SCALAR");
  if (e == nullptr || e[0] == '\0') return false;
  return !(e[0] == '0' && e[1] == '\0');
}

// ---------------------------------------------------------------------------
// Scalar tier: the same expressions the engine's own scalar loops use.
// ---------------------------------------------------------------------------

void PrepareRotatedScalar(const unsigned char* base, std::size_t stride,
                          std::size_t n, double origin_x, double origin_y,
                          double rot_cos, double rot_sin, double* rx,
                          double* ry, double* nsq) {
  if (rot_sin == 0.0 && rot_cos == 1.0) {
    // Exact-identity shortcut, mirrored in simd_lanes.h and
    // SegmentEngine::ToRotatedFrame (see the note there on signed zeros).
    for (std::size_t i = 0; i < n; ++i) {
      const double* p = reinterpret_cast<const double*>(base + i * stride);
      const double relx = p[0] - origin_x;
      const double rely = p[1] - origin_y;
      nsq[i] = relx * relx + rely * rely;
      rx[i] = relx;
      ry[i] = rely;
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = reinterpret_cast<const double*>(base + i * stride);
    const double relx = p[0] - origin_x;
    const double rely = p[1] - origin_y;
    nsq[i] = relx * relx + rely * rely;
    rx[i] = rot_cos * relx + rot_sin * rely;
    ry[i] = -rot_sin * relx + rot_cos * rely;
  }
}

// The scalar tier never mass-screens: every lane goes through the
// per-point path, which is the identity the vector tiers are checked
// against.
void ScreenLanesScalar(const ScreenState& /*state*/, const double* /*rx*/,
                       const double* /*ry*/, const double* /*nsq*/,
                       std::size_t n, unsigned char* verdicts) {
  for (std::size_t i = 0; i < n; ++i) verdicts[i] = 0;
}

void PrepareTrivialScalar(const unsigned char* /*base*/,
                          std::size_t /*stride*/, std::size_t n,
                          double /*origin_x*/, double /*origin_y*/,
                          double /*eps_sq*/, unsigned char* verdicts) {
  for (std::size_t i = 0; i < n; ++i) verdicts[i] = 0;
}

double MaxAbsCrossScalar(const unsigned char* base, std::size_t stride,
                         std::size_t n, double ax, double ay, double dx,
                         double dy) {
  double vmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* p = reinterpret_cast<const double*>(base + i * stride);
    vmax = std::max(vmax, std::fabs(dx * (p[1] - ay) - dy * (p[0] - ax)));
  }
  return vmax;
}

const KernelTable kScalarKernels = {PrepareRotatedScalar, ScreenLanesScalar,
                                    PrepareTrivialScalar, MaxAbsCrossScalar,
                                    Tier::kScalar, 1};

Tier CapTier(Tier tier, Tier cap) {
  return static_cast<int>(tier) < static_cast<int>(cap) ? tier : cap;
}

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Tier DetectedTier() {
  static const Tier tier = DetectOnce();
  return tier;
}

Tier ActiveTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return CapTier(static_cast<Tier>(forced), DetectedTier());
  }
  if (ForceScalarEnv()) return Tier::kScalar;
  return DetectedTier();
}

void ForceTier(Tier tier) {
  g_forced_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearForcedTier() {
  g_forced_tier.store(-1, std::memory_order_relaxed);
}

const KernelTable& KernelsFor(Tier tier) {
#if defined(__x86_64__) || defined(_M_X64)
  const Tier capped = CapTier(tier, DetectedTier());
  if (capped == Tier::kAvx2) return internal::kAvx2Kernels;
  if (capped == Tier::kSse2) return internal::kSse2Kernels;
#else
  (void)tier;
#endif
  return kScalarKernels;
}

}  // namespace bqs::simd
