#ifndef BQS_COMMON_SIMD_H_
#define BQS_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

// Runtime SIMD dispatch layer for the batch kernel.
//
// This header is the only SIMD surface the rest of the repo sees: plain
// enums, POD context structs over raw doubles, and function pointers.
// The intrinsics themselves live in src/common/simd_avx2.cc (compiled
// with -mavx2) and src/common/simd_sse2.cc (the x86-64 baseline); a
// repo-lint rule keeps them confined there. The common layer sits below
// geometry, so everything here is expressed in raw doubles rather than
// Vec2/TrackPoint.
//
// Dispatch contract:
//   - the CPU is probed once per process (DetectedTier());
//   - `BQS_FORCE_SCALAR` in the environment demotes the active tier to
//     scalar (read on every ActiveTier() call so tests can flip it);
//   - ForceTier()/ClearForcedTier() override both for differential
//     testing, clamped to what the CPU actually supports;
//   - callers snapshot KernelsFor(ActiveTier()) once (the engine does so
//     at construction) and call through the table.
//
// Byte-identity contract: every kernel evaluates exactly the scalar
// expressions, lane-parallel. The reductions are max/min over fabs
// values (associative and commutative bitwise for non-NaN inputs), and
// nothing is fused (the build never enables FMA), so vector and scalar
// tiers produce bit-identical doubles. The screen kernel is additionally
// conservative: any lane it cannot prove conclusively included is left
// for the scalar path, which makes the decision stream byte-identical
// even for non-finite inputs (such lanes always fail the ordered
// compares and fall through to scalar).

namespace bqs::simd {

enum class Tier : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// Human-readable tier name ("scalar", "sse2", "avx2").
const char* TierName(Tier tier);

// Raw CPUID capability, probed once per process. Ignores the env knob
// and any forced tier.
Tier DetectedTier();

// Tier the next kernel-table snapshot should use: the forced tier if one
// is set, else scalar when BQS_FORCE_SCALAR is set (to anything but "0"),
// else the detected tier.
Tier ActiveTier();

// Test hooks: force a tier (clamped to DetectedTier()) or restore normal
// detection. Affects subsequently constructed engines, not live ones.
void ForceTier(Tier tier);
void ClearForcedTier();

// RAII guard for differential tests/fuzzers.
class ScopedForceTier {
 public:
  explicit ScopedForceTier(Tier tier) { ForceTier(tier); }
  ~ScopedForceTier() { ClearForcedTier(); }
  ScopedForceTier(const ScopedForceTier&) = delete;
  ScopedForceTier& operator=(const ScopedForceTier&) = delete;
};

// ---------------------------------------------------------------------------
// Screen context, marshalled by the engine once per quadrant-state epoch.
// ---------------------------------------------------------------------------

// Upper-bound candidate cap per quadrant: l1,l2,u1,u2, min/max angular
// extreme, plus at most the four box corners (near/far and wedge-interior
// corners overlap in the same four slots).
inline constexpr int kScreenPointCap = 10;
// Warm-up candidate cap (mirrors BqsOptions::kMaxRotationWarmup; the
// engine static_asserts the two agree).
inline constexpr int kWarmupPointCap = 16;

// What the screen tests per lane. A verdict of 1 always means "trivial
// point, conclusively include, no state mutation and no fallback
// hazard"; kQuadrant mode can additionally report verdict 2 for a
// non-trivial lane whose conclusive include is proven — the decision is
// final, but the include's state effects (quadrant add, exact-state
// append) still run scalar-side.
enum class ScreenMode : int {
  // The trivial test alone: the paper's unconditional Lemma 1 include,
  // or a pre-rotation segment whose warm-up buffer is still empty.
  kTrivialOnly = 0,
  // Pre-rotation: the warm-up deviation check (max |rel x q| over the
  // buffered warm-up candidates) must conclusively pass below the guard
  // band, with a non-degenerate end. Trivial lanes only.
  kWarmup = 1,
  // Established rotation: the fast kernel's aggregated quadrant
  // upper-bound compare (see ScreenQuadrant), on every lane.
  kQuadrant = 2,
};

struct ScreenQuadrant {
  // In-quadrant upper-bound candidates (rotated frame).
  double in_px[kScreenPointCap];
  double in_py[kScreenPointCap];
  int in_count;
  // Out-of-quadrant candidates: the four box corners.
  double out_px[4];
  double out_py[4];
  // Quadrant index parity (q & 1); the line metric folds opposite
  // quadrants together, so parity alone selects in/out per lane.
  int parity;
  // True when any corner sits inside the wedge guard band: lanes whose
  // end lands in this quadrant must take the scalar fallback path.
  bool wedge_blocked;
};

struct ScreenState {
  // kQuadrant mode: per-quadrant candidate sets.
  ScreenQuadrant quads[4];
  int num_quads;
  // kWarmup mode: buffered warm-up candidates, relative to the segment
  // start (the same p - a subtraction the scalar deviation scan performs).
  double warm_px[kWarmupPointCap];
  double warm_py[kWarmupPointCap];
  int warm_count;
  // epsilon * epsilon, the trivial-include threshold on |rel|^2.
  double eps_sq;
  ScreenMode mode;
};

// ---------------------------------------------------------------------------
// Kernel table.
// ---------------------------------------------------------------------------

// Pre-rotation: for each of n points at `base + i * stride` (two leading
// doubles: x then y), compute rel = p - origin, |rel|^2, and the rotated
// coordinates {c*rel.x + s*rel.y, -s*rel.x + c*rel.y} into rx/ry/nsq.
using PrepareRotatedFn = void (*)(const unsigned char* base,
                                  std::size_t stride, std::size_t n,
                                  double origin_x, double origin_y,
                                  double rot_cos, double rot_sin, double* rx,
                                  double* ry, double* nsq);

// Conclusive-include screen. verdicts[i] = 1 iff lane i is a trivial
// point (nsq <= eps_sq) that the decision kernel would include
// conclusively (kQuadrant: upper_sq <= eps_sq * |end|^2 * (1 - 1e-12))
// with no fallback hazard (degenerate end, near-axis sliver, wedge guard
// band); in kQuadrant mode verdicts[i] = 2 iff the same conclusive proof
// holds for a non-trivial lane (decision final, include effects applied
// scalar-side); 0 otherwise. Lanes past the last full vector group are
// written 0 — the scalar tail of the batch loop decides them, which
// keeps non-lane-multiple chunks byte-identical.
using ScreenLanesFn = void (*)(const ScreenState& state, const double* rx,
                               const double* ry, const double* nsq,
                               std::size_t n, unsigned char* verdicts);

// Fused trivial screen for pre-rotation chunks in kTrivialOnly mode: one
// pass computing |p_i - origin|^2 and writing verdicts[i] = 1 iff it is
// <= eps_sq (the same ordered compare as the scalar trivial test; NaN
// lanes decline). No SoA arrays are written — the mode needs neither the
// rotated frame nor the norm downstream, so the fused form halves the
// memory traffic of the dominant parked-device path. Lanes past the last
// full vector group are written 0 (scalar tail decides).
using PrepareTrivialFn = void (*)(const unsigned char* base,
                                  std::size_t stride, std::size_t n,
                                  double origin_x, double origin_y,
                                  double eps_sq, unsigned char* verdicts);

// Warm-up deviation scan: max over i of |d x (p_i - a)| for points at
// `base + i * stride` (two leading doubles: x then y).
using MaxAbsCrossFn = double (*)(const unsigned char* base, std::size_t stride,
                                 std::size_t n, double ax, double ay,
                                 double dx, double dy);

struct KernelTable {
  PrepareRotatedFn prepare_rotated;
  ScreenLanesFn screen_lanes;
  PrepareTrivialFn prepare_trivial;
  MaxAbsCrossFn max_abs_cross;
  Tier tier;
  // Vector width in doubles (1 for the scalar table).
  std::size_t lanes;
};

// Table for a tier; tiers the CPU (or build target) lacks degrade to the
// scalar table.
const KernelTable& KernelsFor(Tier tier);

namespace internal {
#if defined(__x86_64__) || defined(_M_X64)
extern const KernelTable kAvx2Kernels;  // simd_avx2.cc
extern const KernelTable kSse2Kernels;  // simd_sse2.cc
#endif
}  // namespace internal

}  // namespace bqs::simd

#endif  // BQS_COMMON_SIMD_H_
