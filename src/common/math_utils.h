// Small numeric helpers shared across modules. Header-only.
#ifndef BQS_COMMON_MATH_UTILS_H_
#define BQS_COMMON_MATH_UTILS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace bqs {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kHalfPi = 0.5 * kPi;

/// Degrees to radians.
constexpr double DegToRad(double deg) { return deg * kPi / 180.0; }

/// Radians to degrees.
constexpr double RadToDeg(double rad) { return rad * 180.0 / kPi; }

/// True when |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
inline bool ApproxEqual(double a, double b, double abs_tol = 1e-9,
                        double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

/// x clamped to [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

/// Square of x; clearer than std::pow(x, 2) in distance formulas.
constexpr double Sq(double x) { return x * x; }

/// Linear interpolation a + t * (b - a); t outside [0,1] extrapolates.
constexpr double Lerp(double a, double b, double t) { return a + t * (b - a); }

/// Sign of x as -1.0, 0.0 or +1.0.
inline double Sign(double x) {
  if (x > 0.0) return 1.0;
  if (x < 0.0) return -1.0;
  return 0.0;
}

}  // namespace bqs

#endif  // BQS_COMMON_MATH_UTILS_H_
