// RocksDB-style status/error handling. Fallible operations (I/O, parsing,
// configuration validation) return Status or Result<T>; geometry and
// compression hot paths are infallible by construction and do not use these.
#ifndef BQS_COMMON_STATUS_H_
#define BQS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace bqs {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("Ok", "IoError"...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error value. Cheap to copy on the OK path (no
/// allocation); error path carries a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Mirrors arrow::Result: either holds a T or a non-OK
/// Status explaining why the T could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit from value (OK result).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK.
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of this result; OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace bqs

/// Propagates a non-OK status to the caller, RocksDB-style.
#define BQS_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::bqs::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

#endif  // BQS_COMMON_STATUS_H_
