// Deterministic retry with jittered exponential backoff — the I/O retry
// discipline for the compaction pipeline.
//
// Transient storage failures (EINTR-adjacent hiccups, a rename racing a
// scanner, a disk that reports full until a reaper frees space) are worth
// a few bounded retries before giving up; unbounded or wall-clock-driven
// retries are not, because they make failure schedules unreproducible.
// This policy is deterministic end to end: the delay for attempt k is a
// pure function of (policy, seed, k) — exponential growth capped at
// max_delay_us, with the top `jitter` fraction randomized through the
// repo's seeded Rng — so a test that replays a fault schedule sees the
// exact same retry timeline every run.
//
// Nothing here actually sleeps unless asked to: the sleep hook is
// injected, tests pass a recorder (or nothing), and production callers
// pass a real sleeper. Retrying is capped by attempts, never by time, so
// a retry loop can be stepped through a fault injector deterministically.
#ifndef BQS_COMMON_BACKOFF_H_
#define BQS_COMMON_BACKOFF_H_

#include <cstdint>
#include <utility>

#include "common/rng.h"
#include "common/status.h"

namespace bqs {

/// Shape of a retry schedule. Delays grow base * 2^k capped at max, and
/// the top `jitter` fraction of each delay is randomized (0 = fully
/// deterministic ladder, 1 = full-jitter).
struct BackoffPolicy {
  /// Total tries, including the first (1 = no retry).
  uint32_t max_attempts = 4;
  /// Delay after the first failed attempt, microseconds.
  uint64_t base_delay_us = 100;
  /// Cap applied before jitter.
  uint64_t max_delay_us = 50000;
  /// Fraction of each delay randomized, clamped to [0, 1].
  double jitter = 0.5;
};

/// Sleep hook: receives the jittered delay in microseconds. Null-state
/// hooks (default) skip sleeping entirely — correct for tests and for the
/// synchronous compaction path, where the retry *sequence* matters and
/// wall-clock pauses would only slow the suite.
using BackoffSleepFn = void (*)(uint64_t micros, void* ctx);

/// One retry schedule instance. Not thread-safe; make one per operation
/// (cheap) or per owning thread.
class Backoff {
 public:
  Backoff(const BackoffPolicy& policy, uint64_t seed,
          BackoffSleepFn sleep = nullptr, void* sleep_ctx = nullptr)
      : policy_(policy),
        rng_(seed),
        sleep_(sleep),
        sleep_ctx_(sleep_ctx) {}

  /// Jittered delay after failed attempt k (k = 0 for the first failure).
  /// Consumes rng state: call in attempt order to replay a schedule.
  uint64_t DelayForAttempt(uint32_t k) {
    uint64_t delay = policy_.base_delay_us;
    for (uint32_t i = 0; i < k && delay < policy_.max_delay_us; ++i) {
      delay *= 2;
    }
    if (delay > policy_.max_delay_us) delay = policy_.max_delay_us;
    const double j = policy_.jitter < 0.0   ? 0.0
                     : policy_.jitter > 1.0 ? 1.0
                                            : policy_.jitter;
    if (j <= 0.0 || delay == 0) return delay;
    const double fixed = static_cast<double>(delay) * (1.0 - j);
    const double spread = static_cast<double>(delay) * j;
    return static_cast<uint64_t>(fixed + rng_.Uniform(0.0, spread));
  }

  /// Runs `op` (a callable returning Status) up to max_attempts times,
  /// sleeping the jittered delay between failures. Returns the first OK
  /// status, or the *last* failure once attempts are exhausted. Every
  /// non-OK status is treated as retryable — callers that can classify
  /// terminal errors should return early inside `op` by succeeding with a
  /// side channel, or simply accept the bounded extra attempts (the
  /// compactor does the latter: its ops are idempotent).
  template <typename Op>
  Status Run(Op&& op) {
    Status last;
    for (uint32_t k = 0; k < policy_.max_attempts; ++k) {
      last = op();
      ++attempts_;
      if (last.ok()) return last;
      if (k + 1 < policy_.max_attempts) {
        const uint64_t d = DelayForAttempt(k);
        slept_us_ += d;
        if (sleep_ != nullptr) sleep_(d, sleep_ctx_);
      }
    }
    return last;
  }

  /// Attempts made across all Run() calls on this instance.
  uint64_t attempts() const { return attempts_; }

  /// Total delay scheduled (whether or not a sleep hook consumed it).
  uint64_t slept_us() const { return slept_us_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  BackoffSleepFn sleep_;
  void* sleep_ctx_;
  uint64_t attempts_ = 0;
  uint64_t slept_us_ = 0;
};

}  // namespace bqs

#endif  // BQS_COMMON_BACKOFF_H_
