#include "common/crc32c.h"

#include <array>
#include <bit>
#include <cstring>

namespace bqs {
namespace crc32c {

namespace {

// Slice-by-8 lookup tables, generated at compile time from the reflected
// Castagnoli polynomial. table[0] is the classic byte-at-a-time table;
// table[k][b] is the CRC of byte b followed by k zero bytes, which lets the
// hot loop fold 8 input bytes with 8 independent loads and xors.
constexpr uint32_t kPoly = 0x82f63b78u;

constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][b] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      const uint32_t prev = tables[k - 1][b];
      tables[k][b] = tables[0][prev & 0xffu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr auto kTables = MakeTables();

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, std::size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;

  // Head: byte-at-a-time until 8-byte progress is possible.
  while (size != 0 && (reinterpret_cast<uintptr_t>(p) & 7u) != 0) {
    crc = kTables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --size;
  }

  // Body: slice-by-8. The memcpy compiles to one unaligned load; going
  // through it (instead of casting) keeps the read well-defined under
  // UBSan and on strict-alignment targets. The 8-byte fold assumes the
  // load presents p[0] in the low byte, i.e. little-endian; big-endian
  // hosts take the (correct, slower) byte loop below instead.
  while (std::endian::native == std::endian::little && size >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= crc;
    crc = kTables[7][chunk & 0xffu] ^
          kTables[6][(chunk >> 8) & 0xffu] ^
          kTables[5][(chunk >> 16) & 0xffu] ^
          kTables[4][(chunk >> 24) & 0xffu] ^
          kTables[3][(chunk >> 32) & 0xffu] ^
          kTables[2][(chunk >> 40) & 0xffu] ^
          kTables[1][(chunk >> 48) & 0xffu] ^
          kTables[0][(chunk >> 56) & 0xffu];
    p += 8;
    size -= 8;
  }

  // Tail.
  while (size != 0) {
    crc = kTables[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --size;
  }
  return ~crc;
}

}  // namespace crc32c
}  // namespace bqs
