// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum the WAL stamps on every record and segment header. CRC32C is
// the storage-industry choice (iSCSI, ext4, RocksDB/LevelDB logs) because
// its error-detection properties are proven for exactly this job: catching
// torn writes and bit rot in length-prefixed log records.
//
// This is the portable slice-by-8 software implementation (~1-2 GB/s, far
// above the WAL's append rate, which is bounded by fsync anyway). No SSE4.2
// here on purpose: the repo's intrinsics-containment lint confines vector
// instructions to the SIMD dispatch tiers, and a checksum that computes
// identically on every build — scalar, sanitizer, fuzzer — is worth more
// to the recovery tests than the last factor of hardware speed.
//
// Like LevelDB/RocksDB, stored CRCs are *masked* (rotate + constant) so a
// log that embeds CRC-protected payloads never stores the CRC of data that
// itself starts with a CRC — a degenerate case where corruption of both
// goes undetected.
#ifndef BQS_COMMON_CRC32C_H_
#define BQS_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bqs {
namespace crc32c {

/// Extends `crc` (the running checksum of bytes seen so far, 0 for the
/// first chunk) with `size` bytes at `data`.
uint32_t Extend(uint32_t crc, const void* data, std::size_t size);

/// CRC32C of one contiguous buffer.
inline uint32_t Value(const void* data, std::size_t size) {
  return Extend(0, data, size);
}

/// LevelDB-style masking for CRCs stored next to the bytes they cover.
inline constexpr uint32_t kMaskDelta = 0xa282ead8u;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  const uint32_t rot = masked - kMaskDelta;
  return (rot << 15) | (rot >> 17);
}

}  // namespace crc32c
}  // namespace bqs

#endif  // BQS_COMMON_CRC32C_H_
