#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bqs {

void RunningStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {}

void Histogram::Add(double x) {
  std::ptrdiff_t idx =
      static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::CdfAt(double x) const {
  if (total_ == 0) return 0.0;
  int64_t below = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) + width_ <= x) {
      below += counts_[i];
    }
  }
  return static_cast<double>(below) / static_cast<double>(total_);
}

}  // namespace bqs
