// CSV persistence for traces and compressed trajectories. The on-disk
// formats are deliberately simple (one sample per line) so traces can be
// exchanged with plotting scripts and external datasets.
#ifndef BQS_TRAJECTORY_CSV_IO_H_
#define BQS_TRAJECTORY_CSV_IO_H_

#include <string>

#include "common/status.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// Writes "lat,lon,t" lines (with header).
Status WriteGeoTraceCsv(const GeoTrace& trace, const std::string& path);

/// Reads a GeoTrace written by WriteGeoTraceCsv (header optional).
/// Malformed rows — truncated fields, non-numeric or non-finite values —
/// fail with a Corruption status naming the file, line and column; no
/// partial or garbage samples are ever returned.
Result<GeoTrace> ReadGeoTraceCsv(const std::string& path);

/// Writes "x,y,t,vx,vy" lines (with header).
Status WriteTrajectoryCsv(const Trajectory& trajectory,
                          const std::string& path);

/// Reads a Trajectory written by WriteTrajectoryCsv. Velocity columns are
/// optional; missing velocities are recomputed by finite differences.
/// Malformed rows fail with a located Corruption status (see
/// ReadGeoTraceCsv); nothing malformed is silently skipped or zeroed.
Result<Trajectory> ReadTrajectoryCsv(const std::string& path);

/// Writes "index,x,y,t" lines for the retained key points (with header).
Status WriteCompressedCsv(const CompressedTrajectory& compressed,
                          const std::string& path);

/// Reads a CompressedTrajectory written by WriteCompressedCsv — the
/// writer/reader round trip the durability tests rely on. Tolerant of a
/// missing trailing newline on the last row and of a missing header;
/// malformed rows (bad index, non-finite values, too few fields) fail with
/// a located Corruption status like the other readers. Velocities are not
/// stored in this format and come back zero.
Result<CompressedTrajectory> ReadCompressedCsv(const std::string& path);

}  // namespace bqs

#endif  // BQS_TRAJECTORY_CSV_IO_H_
