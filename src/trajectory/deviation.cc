#include "trajectory/deviation.h"

#include <algorithm>

namespace bqs {

double SegmentDeviation(std::span<const TrackPoint> points, std::size_t from,
                        std::size_t to, DistanceMetric metric) {
  double dev = 0.0;
  if (to >= points.size()) to = points.size() - 1;
  if (to <= from + 1) return 0.0;
  const Vec2 a = points[from].pos;
  const Vec2 b = points[to].pos;
  for (std::size_t i = from + 1; i < to; ++i) {
    dev = std::max(dev, PointDeviation(points[i].pos, a, b, metric));
  }
  return dev;
}

double BufferDeviation(std::span<const TrackPoint> buffer, Vec2 a, Vec2 b,
                       DistanceMetric metric) {
  double dev = 0.0;
  for (const TrackPoint& p : buffer) {
    dev = std::max(dev, PointDeviation(p.pos, a, b, metric));
  }
  return dev;
}

DeviationReport EvaluateCompression(std::span<const TrackPoint> original,
                                    const CompressedTrajectory& compressed,
                                    DistanceMetric metric) {
  DeviationReport report;
  const auto& keys = compressed.keys;
  if (keys.size() < 2) return report;
  report.per_segment.reserve(keys.size() - 1);
  for (std::size_t s = 0; s + 1 < keys.size(); ++s) {
    const std::size_t from = static_cast<std::size_t>(keys[s].index);
    const std::size_t to = static_cast<std::size_t>(keys[s + 1].index);
    const double dev = SegmentDeviation(original, from, to, metric);
    report.per_segment.push_back(dev);
    if (dev > report.max_deviation) {
      report.max_deviation = dev;
      report.worst_segment = s;
    }
  }
  return report;
}

}  // namespace bqs
