#include "trajectory/compressor.h"

namespace bqs {

CompressedTrajectory CompressAll(StreamCompressor& compressor,
                                 std::span<const TrackPoint> points) {
  CompressedTrajectory out;
  compressor.Reset();
  for (const TrackPoint& p : points) {
    compressor.Push(p, &out.keys);
  }
  compressor.Finish(&out.keys);
  return out;
}

}  // namespace bqs
