#include "trajectory/compressor.h"

namespace bqs {

CompressedTrajectory CompressAll(StreamCompressor& compressor,
                                 std::span<const TrackPoint> points) {
  CompressedTrajectory out;
  compressor.Reset();
  compressor.PushBatch(points, &out.keys);
  compressor.Finish(&out.keys);
  return out;
}

}  // namespace bqs
