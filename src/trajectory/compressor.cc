#include "trajectory/compressor.h"

namespace bqs {

void StreamCompressor::PushTo(const TrackPoint& pt, KeyPointSink& sink) {
  sink_scratch_.clear();
  Push(pt, &sink_scratch_);
  for (const KeyPoint& key : sink_scratch_) sink.Emit(key);
}

void StreamCompressor::PushBatchTo(std::span<const TrackPoint> points,
                                   KeyPointSink& sink) {
  sink_scratch_.clear();
  PushBatch(points, &sink_scratch_);
  for (const KeyPoint& key : sink_scratch_) sink.Emit(key);
}

void StreamCompressor::PushRun(std::span<const FleetRecord> run,
                               std::vector<TrackPoint>& gather,
                               std::vector<KeyPoint>* out) {
  gather.clear();
  if (gather.capacity() < run.size()) gather.reserve(run.size());
  for (const FleetRecord& record : run) gather.push_back(record.point);
  PushBatch(gather, out);
}

void StreamCompressor::PushRunTo(std::span<const FleetRecord> run,
                                 std::vector<TrackPoint>& gather,
                                 KeyPointSink& sink) {
  sink_scratch_.clear();
  PushRun(run, gather, &sink_scratch_);
  for (const KeyPoint& key : sink_scratch_) sink.Emit(key);
}

void StreamCompressor::FinishTo(KeyPointSink& sink) {
  sink_scratch_.clear();
  Finish(&sink_scratch_);
  for (const KeyPoint& key : sink_scratch_) sink.Emit(key);
}

CompressedTrajectory CompressAll(StreamCompressor& compressor,
                                 std::span<const TrackPoint> points) {
  CompressedTrajectory out;
  out.keys.reserve(CompressedSizeHint(points.size()));
  compressor.Reset();
  compressor.PushBatch(points, &out.keys);
  compressor.Finish(&out.keys);
  return out;
}

}  // namespace bqs
