// Temporal reconstruction of a compressed trajectory (paper Eq. 1-3): the
// location at time t inside a compressed segment is interpolated between
// the key points through a distribution function P. P can reconstruct the
// uniform distribution (Eq. 2) or a Gaussian fitted online to the original
// timestamps with the semi-numeric (Welford/Knuth) update the paper cites.
#ifndef BQS_TRAJECTORY_RECONSTRUCT_H_
#define BQS_TRAJECTORY_RECONSTRUCT_H_

#include <optional>
#include <vector>

#include "common/stats.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// The interpolation distribution P for one compressed segment.
struct SegmentTimeModel {
  enum class Kind { kUniform, kGaussian };
  Kind kind = Kind::kUniform;
  /// Gaussian parameters over absolute timestamps (kGaussian only).
  double mu = 0.0;
  double sigma = 1.0;

  /// P(t): fraction of the segment's spatial path covered by time t,
  /// monotone from 0 at `t_start` to 1 at `t_end`.
  double Fraction(double t_start, double t_end, double t) const;
};

/// Online fitter for a segment's Gaussian time model (constant space).
class OnlineGaussianFitter {
 public:
  void Add(double t) { stats_.Add(t); }
  void Reset() { stats_ = RunningStats(); }
  /// Falls back to uniform when fewer than 2 observations were seen.
  SegmentTimeModel Model() const;

 private:
  RunningStats stats_;
};

/// Fits one Gaussian time model per compressed segment from the original
/// stream (offline convenience mirroring what an online compressor would
/// accumulate with OnlineGaussianFitter).
std::vector<SegmentTimeModel> FitGaussianTimeModels(
    std::span<const TrackPoint> original, const CompressedTrajectory& keys);

/// Reconstructs the location at time t from the compressed trajectory.
/// `models` may be empty (uniform interpolation) or hold one model per
/// segment. Returns nullopt when t is outside the compressed time range.
std::optional<TrackPoint> ReconstructAt(
    const CompressedTrajectory& compressed, double t,
    const std::vector<SegmentTimeModel>& models = {});

/// Reconstructs the whole original sampling grid (one point per original
/// timestamp) — used to measure reconstruction error end-to-end.
std::vector<TrackPoint> ReconstructSeries(
    const CompressedTrajectory& compressed, std::span<const double> times,
    const std::vector<SegmentTimeModel>& models = {});

}  // namespace bqs

#endif  // BQS_TRAJECTORY_RECONSTRUCT_H_
