// Sample types shared by compressors, simulators and evaluation.
// A GeoSample is what the GPS receiver produces (paper: "location point
// v = <latitude, longitude, timestamp>"); a TrackPoint is its projection
// into a local metric plane, which is what all compressors operate on.
#ifndef BQS_TRAJECTORY_POINT_H_
#define BQS_TRAJECTORY_POINT_H_

#include <cstdint>

#include "geo/utm.h"
#include "geometry/vec2.h"

namespace bqs {

/// A raw GPS fix.
struct GeoSample {
  LatLon pos;
  double t = 0.0;  ///< Seconds since an arbitrary epoch.

  constexpr bool operator==(const GeoSample&) const = default;
};

/// A projected fix in metres. The velocity field is optional context used
/// only by Dead Reckoning (the paper notes DR needs speed readings, which
/// real Camazotz GPS fixes and the synthetic model both provide).
struct TrackPoint {
  Vec2 pos;
  double t = 0.0;        ///< Seconds.
  Vec2 velocity{0, 0};   ///< Metres/second; zero when unknown.

  constexpr bool operator==(const TrackPoint&) const = default;
};

/// A retained point of the compressed trajectory, remembering its position
/// in the original stream so evaluation can re-segment the original.
struct KeyPoint {
  TrackPoint point;
  uint64_t index = 0;  ///< 0-based index in the original stream.

  constexpr bool operator==(const KeyPoint&) const = default;
};

/// Identifies one device stream in a fleet feed. Opaque to the library;
/// assignment is the ingest frontend's concern.
using DeviceId = uint64_t;

/// One sample of an interleaved fleet feed: a track point tagged with the
/// device that produced it. Records for the same device must arrive in
/// stream order; records for different devices interleave arbitrarily.
struct FleetRecord {
  DeviceId device = 0;
  TrackPoint point;

  constexpr bool operator==(const FleetRecord&) const = default;
};

}  // namespace bqs

#endif  // BQS_TRAJECTORY_POINT_H_
