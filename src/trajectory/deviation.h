// Exact deviation computation and compression verification. This is the
// ground truth the BQS bounds are checked against: the paper's deviation
// metric is the max distance from any interior point of a segment to the
// line (or segment) through its endpoints.
#ifndef BQS_TRAJECTORY_DEVIATION_H_
#define BQS_TRAJECTORY_DEVIATION_H_

#include <cstddef>
#include <span>
#include <vector>

#include "geometry/line2.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// Max deviation of points[from+1 .. to-1] to the path through points[from]
/// and points[to]. Returns 0 when the range has no interior points.
double SegmentDeviation(std::span<const TrackPoint> points, std::size_t from,
                        std::size_t to, DistanceMetric metric);

/// Max deviation of an explicit buffer against the path (a, b). Counts every
/// point in the buffer (used by compressors whose buffers exclude endpoints).
double BufferDeviation(std::span<const TrackPoint> buffer, Vec2 a, Vec2 b,
                       DistanceMetric metric);

/// Result of verifying a compression against the original stream.
struct DeviationReport {
  double max_deviation = 0.0;       ///< Over all compressed segments.
  std::size_t worst_segment = 0;    ///< Index into segments (key i -> i+1).
  std::vector<double> per_segment;  ///< One entry per compressed segment.

  /// True when every segment deviation is within `epsilon`.
  bool BoundedBy(double epsilon) const { return max_deviation <= epsilon; }
};

/// Re-segments `original` by the key-point indices in `compressed` and
/// measures every segment's exact deviation. Key points must be a
/// subsequence of the original stream (all algorithms in this library emit
/// original points), with strictly increasing indices.
DeviationReport EvaluateCompression(std::span<const TrackPoint> original,
                                    const CompressedTrajectory& compressed,
                                    DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_TRAJECTORY_DEVIATION_H_
