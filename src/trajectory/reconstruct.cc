#include "trajectory/reconstruct.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace bqs {

namespace {

double GaussianCdf(double x, double mu, double sigma) {
  return 0.5 * (1.0 + std::erf((x - mu) / (sigma * std::sqrt(2.0))));
}

}  // namespace

double SegmentTimeModel::Fraction(double t_start, double t_end,
                                  double t) const {
  if (t_end <= t_start) return 0.0;
  const double u = Clamp((t - t_start) / (t_end - t_start), 0.0, 1.0);
  if (kind == Kind::kUniform || sigma <= 0.0) return u;
  const double lo = GaussianCdf(t_start, mu, sigma);
  const double hi = GaussianCdf(t_end, mu, sigma);
  if (hi - lo < 1e-12) return u;
  const double p = (GaussianCdf(t, mu, sigma) - lo) / (hi - lo);
  return Clamp(p, 0.0, 1.0);
}

SegmentTimeModel OnlineGaussianFitter::Model() const {
  SegmentTimeModel model;
  if (stats_.count() < 2 || stats_.stddev() <= 0.0) {
    model.kind = SegmentTimeModel::Kind::kUniform;
    return model;
  }
  model.kind = SegmentTimeModel::Kind::kGaussian;
  model.mu = stats_.mean();
  model.sigma = stats_.stddev();
  return model;
}

std::vector<SegmentTimeModel> FitGaussianTimeModels(
    std::span<const TrackPoint> original, const CompressedTrajectory& keys) {
  std::vector<SegmentTimeModel> models;
  if (keys.size() < 2) return models;
  models.reserve(keys.size() - 1);
  for (std::size_t s = 0; s + 1 < keys.keys.size(); ++s) {
    OnlineGaussianFitter fitter;
    const std::size_t from = static_cast<std::size_t>(keys.keys[s].index);
    const std::size_t to = static_cast<std::size_t>(keys.keys[s + 1].index);
    for (std::size_t i = from; i <= to && i < original.size(); ++i) {
      fitter.Add(original[i].t);
    }
    models.push_back(fitter.Model());
  }
  return models;
}

std::optional<TrackPoint> ReconstructAt(
    const CompressedTrajectory& compressed, double t,
    const std::vector<SegmentTimeModel>& models) {
  const auto& keys = compressed.keys;
  if (keys.size() < 2) return std::nullopt;
  if (t < keys.front().point.t || t > keys.back().point.t) {
    return std::nullopt;
  }
  // Find the segment whose [start.t, end.t] covers t.
  const auto it = std::lower_bound(
      keys.begin(), keys.end(), t,
      [](const KeyPoint& k, double value) { return k.point.t < value; });
  std::size_t seg = it == keys.begin()
                        ? 0
                        : static_cast<std::size_t>(it - keys.begin()) - 1;
  seg = std::min(seg, keys.size() - 2);

  const TrackPoint& a = keys[seg].point;
  const TrackPoint& b = keys[seg + 1].point;
  SegmentTimeModel model;
  if (seg < models.size()) model = models[seg];
  const double p = model.Fraction(a.t, b.t, t);

  TrackPoint out;
  out.t = t;
  out.pos = a.pos + p * (b.pos - a.pos);
  const double dt = b.t - a.t;
  out.velocity = dt > 0.0 ? (b.pos - a.pos) / dt : Vec2{0.0, 0.0};
  return out;
}

std::vector<TrackPoint> ReconstructSeries(
    const CompressedTrajectory& compressed, std::span<const double> times,
    const std::vector<SegmentTimeModel>& models) {
  std::vector<TrackPoint> out;
  out.reserve(times.size());
  for (double t : times) {
    const auto pt = ReconstructAt(compressed, t, models);
    if (pt.has_value()) out.push_back(*pt);
  }
  return out;
}

}  // namespace bqs
