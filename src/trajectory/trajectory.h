// Trajectory containers and projection from geographic traces to the metric
// planes the compressors run in.
#ifndef BQS_TRAJECTORY_TRAJECTORY_H_
#define BQS_TRAJECTORY_TRAJECTORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "geo/geodesy.h"
#include "geometry/box2.h"
#include "trajectory/point.h"

namespace bqs {

/// A geographic trace (ordered GPS fixes).
using GeoTrace = std::vector<GeoSample>;

/// A projected trace (ordered planar fixes). The unit of `pos` is metres.
using Trajectory = std::vector<TrackPoint>;

/// The output of a compressor: the retained key points, in stream order.
/// Consecutive key points delimit the compressed segments.
struct CompressedTrajectory {
  std::vector<KeyPoint> keys;

  std::size_t size() const { return keys.size(); }
  bool empty() const { return keys.empty(); }

  /// N_compressed / N_original, the paper's compression-rate definition
  /// (lower is better). Returns 0 for an empty input.
  double CompressionRate(std::size_t original_points) const;
};

/// Total polyline length in metres.
double PathLength(std::span<const TrackPoint> points);

/// Time covered by the trace in seconds (last.t - first.t; 0 if < 2 points).
double Duration(std::span<const TrackPoint> points);

/// Tight bounding box of the positions.
Box2 BoundsOf(std::span<const TrackPoint> points);

/// Populates per-point velocities by finite differences (central where
/// possible). Leaves a single-point trace untouched.
void FillVelocities(Trajectory* trajectory);

/// How a GeoTrace is mapped into a plane.
enum class ProjectionKind {
  kUtm,           ///< UTM zone of the first fix (paper's choice).
  kTangentPlane,  ///< Equirectangular around the first fix.
};

/// Projects a geographic trace into one continuous metric plane. All fixes
/// use the zone/anchor of the first fix so the plane has no seams. Fails on
/// empty input or out-of-range coordinates.
Result<Trajectory> ProjectTrace(const GeoTrace& trace,
                                ProjectionKind kind = ProjectionKind::kUtm);

/// Concatenates traces into one stream (paper: "we combine all the data
/// points into a single data stream"). Timestamps are shifted so streams
/// remain monotonic with `gap_seconds` between consecutive traces.
Trajectory ConcatenateStreams(const std::vector<Trajectory>& traces,
                              double gap_seconds = 60.0);

}  // namespace bqs

#endif  // BQS_TRAJECTORY_TRAJECTORY_H_
