// The streaming compressor interface all algorithms implement (BQS, FBQS,
// BDP, BGD, Dead Reckoning) plus the offline interface (Douglas-Peucker).
//
// Emission protocol: the compressed trajectory is the sequence of segment
// endpoints v1, k1, k2, ..., vn. Push() emits the first point immediately
// and one key point per segment split; Finish() emits the final point of
// the stream (closing the open segment). Consecutive emitted key points are
// exactly the paper's compressed segments.
#ifndef BQS_TRAJECTORY_COMPRESSOR_H_
#define BQS_TRAJECTORY_COMPRESSOR_H_

#include <span>
#include <string_view>
#include <vector>

#include "trajectory/point.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// Push-based online compressor. Implementations are single-stream state
/// machines; call Reset() to reuse across streams.
class StreamCompressor {
 public:
  virtual ~StreamCompressor() = default;

  /// Processes the next sample; appends any newly-final key points to *out.
  virtual void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) = 0;

  /// Processes a batch of consecutive samples. Semantically identical to
  /// pushing each point, but overridable so implementations can hoist
  /// per-point dispatch out of their hot loop (SegmentEngine does). This is
  /// what CompressAll and the benches feed whole streams through.
  virtual void PushBatch(std::span<const TrackPoint> points,
                         std::vector<KeyPoint>* out) {
    for (const TrackPoint& pt : points) Push(pt, out);
  }

  /// Ends the stream; appends the closing key point(s) to *out.
  virtual void Finish(std::vector<KeyPoint>* out) = 0;

  /// Restores the freshly-constructed state.
  virtual void Reset() = 0;

  /// Stable short name used in benchmark tables ("BQS", "FBQS", ...).
  virtual std::string_view name() const = 0;
};

/// Batch compressor (offline algorithms; also used to re-compress stored
/// trajectories during ageing).
class OfflineCompressor {
 public:
  virtual ~OfflineCompressor() = default;

  /// Returns the retained key points of `points`, in order, including the
  /// first and last point for non-empty input.
  virtual CompressedTrajectory Compress(
      std::span<const TrackPoint> points) = 0;

  virtual std::string_view name() const = 0;
};

/// Runs a stream compressor over a full trajectory.
CompressedTrajectory CompressAll(StreamCompressor& compressor,
                                 std::span<const TrackPoint> points);

}  // namespace bqs

#endif  // BQS_TRAJECTORY_COMPRESSOR_H_
