// The streaming compressor interface all algorithms implement (BQS, FBQS,
// BDP, BGD, Dead Reckoning) plus the offline interface (Douglas-Peucker).
//
// Emission protocol: the compressed trajectory is the sequence of segment
// endpoints v1, k1, k2, ..., vn. Push() emits the first point immediately
// and one key point per segment split; Finish() emits the final point of
// the stream (closing the open segment). Consecutive emitted key points are
// exactly the paper's compressed segments.
//
// Two emission paths exist side by side: the vector path (append to a
// caller-owned std::vector<KeyPoint>, the original API every algorithm
// implements) and the sink path (forward each newly-final key point to a
// KeyPointSink), which is what the service layer's session multiplexer
// consumes. The sink path is a thin adapter over the vector path, so both
// are guaranteed to produce identical key points in identical order.
#ifndef BQS_TRAJECTORY_COMPRESSOR_H_
#define BQS_TRAJECTORY_COMPRESSOR_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "trajectory/point.h"
#include "trajectory/trajectory.h"

namespace bqs {

struct DecisionStats;  // core/decision_stats.h; trajectory stays below core.

/// Receives key points as they become final. Implementations decide what a
/// key point means downstream (append to storage, serialize to a socket,
/// fan into a per-device queue); the compressor guarantees calls arrive in
/// stream order.
class KeyPointSink {
 public:
  virtual ~KeyPointSink() = default;

  /// One newly-final key point. Must not re-enter the emitting compressor.
  virtual void Emit(const KeyPoint& key) = 0;
};

/// KeyPointSink that appends into a caller-owned vector; bridges sink-based
/// plumbing back to the vector world (tests, adapters).
class VectorSink final : public KeyPointSink {
 public:
  explicit VectorSink(std::vector<KeyPoint>* out) : out_(out) {}
  void Emit(const KeyPoint& key) override { out_->push_back(key); }

 private:
  std::vector<KeyPoint>* out_;
};

/// Capacity hint for a stream's compressed output. Streams the paper
/// evaluates compress to ~2-10% of the input, so reserving n/8 (+ slack for
/// the mandatory endpoints) absorbs the common case in one allocation while
/// wasting little when compression is stronger; pathological keep-everything
/// streams grow geometrically from there as usual.
inline std::size_t CompressedSizeHint(std::size_t stream_points) {
  return stream_points / 8 + 2;
}

/// Push-based online compressor. Implementations are single-stream state
/// machines; call Reset() to reuse across streams.
class StreamCompressor {
 public:
  virtual ~StreamCompressor() = default;

  /// Processes the next sample; appends any newly-final key points to *out.
  virtual void Push(const TrackPoint& pt, std::vector<KeyPoint>* out) = 0;

  /// Processes a batch of consecutive samples. Semantically identical to
  /// pushing each point, but overridable so implementations can hoist
  /// per-point dispatch out of their hot loop (SegmentEngine does). This is
  /// what CompressAll and the benches feed whole streams through.
  virtual void PushBatch(std::span<const TrackPoint> points,
                         std::vector<KeyPoint>* out) {
    for (const TrackPoint& pt : points) Push(pt, out);
  }

  /// Ends the stream; appends the closing key point(s) to *out.
  virtual void Finish(std::vector<KeyPoint>* out) = 0;

  /// Sink-based emission path: same protocol, forwarding each newly-final
  /// key point to `sink` instead of a vector. Runs through a reused scratch
  /// buffer, so output is identical to the vector path by construction.
  /// (Named distinctly from Push/Finish on purpose: overloads would be
  /// hidden by the derived classes' vector-path overrides, making the sink
  /// path uncallable on concrete compressor types.)
  void PushTo(const TrackPoint& pt, KeyPointSink& sink);
  void PushBatchTo(std::span<const TrackPoint> points, KeyPointSink& sink);
  void FinishTo(KeyPointSink& sink);

  /// Span-dispatch hook for fleet routers: pushes one coalesced
  /// single-device run of an interleaved fleet feed, straight from the
  /// caller's record buffer — semantically identical to pushing each
  /// record's point, which is what the run-coalescing differential tests
  /// enforce. The default gathers the strided TrackPoints through
  /// `gather` (caller-owned and reused across runs, so steady state does
  /// not allocate) and hands the contiguous result to the PushBatch fast
  /// path; the BQS family overrides it to stream the records into the
  /// batch (and vector) kernel through a strided view, skipping the
  /// gather copy entirely. All records in `run` must belong to the same
  /// device; the caller's router guarantees that by construction.
  virtual void PushRun(std::span<const FleetRecord> run,
                       std::vector<TrackPoint>& gather,
                       std::vector<KeyPoint>* out);

  /// Sink-path adapter over PushRun (see PushTo for the naming rationale).
  void PushRunTo(std::span<const FleetRecord> run,
                 std::vector<TrackPoint>& gather, KeyPointSink& sink);

  /// Restores the freshly-constructed state.
  virtual void Reset() = 0;

  /// Stable short name used in benchmark tables ("BQS", "FBQS", ...).
  virtual std::string_view name() const = 0;

  /// Decision counters since the last Reset(), for implementations that
  /// keep them (the BQS family); nullptr otherwise. Lets the service layer
  /// aggregate pruning-power stats without downcasting.
  virtual const DecisionStats* decision_stats() const { return nullptr; }

  /// Approximate heap bytes of growable per-stream state (segment buffers,
  /// hulls). Excludes the fixed object footprint; 0 means constant-space.
  /// The service layer's memory accounting sums this across live sessions.
  virtual std::size_t StateBytes() const { return 0; }

  /// The deviation bound this compressor guarantees for every segment it
  /// emits (its configured epsilon, in the configured metric); 0 when the
  /// implementation makes no such guarantee. This is the reporting half of
  /// runtime eps widening: a session manager under memory pressure may end
  /// the stream at a segment boundary (FinishTo) and continue the same
  /// device stream on a compressor minted at a scaled epsilon — each
  /// emitted segment honors the bound of the compressor that produced it,
  /// so the stream-wide guarantee is the maximum ErrorBound() reported
  /// over the stream's lifetime, which the manager surfaces to its sink.
  virtual double ErrorBound() const { return 0.0; }

 private:
  /// Scratch for the sink adapters; reused so steady-state sink emission
  /// does not allocate.
  std::vector<KeyPoint> sink_scratch_;
};

/// Batch compressor (offline algorithms; also used to re-compress stored
/// trajectories during ageing).
class OfflineCompressor {
 public:
  virtual ~OfflineCompressor() = default;

  /// Returns the retained key points of `points`, in order, including the
  /// first and last point for non-empty input.
  virtual CompressedTrajectory Compress(
      std::span<const TrackPoint> points) = 0;

  virtual std::string_view name() const = 0;
};

/// Runs a stream compressor over a full trajectory.
CompressedTrajectory CompressAll(StreamCompressor& compressor,
                                 std::span<const TrackPoint> points);

}  // namespace bqs

#endif  // BQS_TRAJECTORY_COMPRESSOR_H_
