#include "trajectory/trajectory.h"

#include <algorithm>

namespace bqs {

double CompressedTrajectory::CompressionRate(
    std::size_t original_points) const {
  if (original_points == 0) return 0.0;
  return static_cast<double>(keys.size()) /
         static_cast<double>(original_points);
}

double PathLength(std::span<const TrackPoint> points) {
  double length = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    length += Distance(points[i - 1].pos, points[i].pos);
  }
  return length;
}

double Duration(std::span<const TrackPoint> points) {
  if (points.size() < 2) return 0.0;
  return points.back().t - points.front().t;
}

Box2 BoundsOf(std::span<const TrackPoint> points) {
  Box2 box;
  for (const TrackPoint& p : points) box.Extend(p.pos);
  return box;
}

void FillVelocities(Trajectory* trajectory) {
  Trajectory& tr = *trajectory;
  const std::size_t n = tr.size();
  if (n < 2) return;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = (i == 0) ? 0 : i - 1;
    const std::size_t b = (i + 1 == n) ? i : i + 1;
    const double dt = tr[b].t - tr[a].t;
    if (dt > 0.0) {
      tr[i].velocity = (tr[b].pos - tr[a].pos) / dt;
    } else {
      tr[i].velocity = {0.0, 0.0};
    }
  }
}

Result<Trajectory> ProjectTrace(const GeoTrace& trace, ProjectionKind kind) {
  if (trace.empty()) {
    return Status::InvalidArgument("cannot project an empty trace");
  }
  Trajectory out;
  out.reserve(trace.size());
  if (kind == ProjectionKind::kUtm) {
    const auto first = LatLonToUtm(trace.front().pos);
    BQS_RETURN_NOT_OK(first.status());
    const int zone = first.value().zone;
    const bool north = first.value().north;
    for (const GeoSample& s : trace) {
      auto coord = LatLonToUtmZone(s.pos, zone, north);
      BQS_RETURN_NOT_OK(coord.status());
      out.push_back(TrackPoint{coord.value().xy(), s.t, {0.0, 0.0}});
    }
  } else {
    const LocalTangentPlane plane(trace.front().pos);
    for (const GeoSample& s : trace) {
      out.push_back(TrackPoint{plane.Project(s.pos), s.t, {0.0, 0.0}});
    }
  }
  FillVelocities(&out);
  return out;
}

Trajectory ConcatenateStreams(const std::vector<Trajectory>& traces,
                              double gap_seconds) {
  Trajectory out;
  double t_offset = 0.0;
  for (const Trajectory& tr : traces) {
    if (tr.empty()) continue;
    const double base = tr.front().t;
    for (const TrackPoint& p : tr) {
      TrackPoint q = p;
      q.t = t_offset + (p.t - base);
      out.push_back(q);
    }
    t_offset = out.back().t + gap_seconds;
  }
  return out;
}

}  // namespace bqs
