#include "trajectory/csv_io.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace bqs {

namespace {

bool LooksLikeHeader(const std::string& line) {
  // A header contains at least one alphabetic character other than the
  // exponent marker.
  for (char ch : line) {
    if ((ch >= 'a' && ch <= 'z' && ch != 'e') ||
        (ch >= 'A' && ch <= 'Z' && ch != 'E')) {
      return true;
    }
  }
  return false;
}

/// One CSV field as a finite double, or a Corruption status that names the
/// file, line and column — a malformed row must be diagnosable from the
/// message alone, and "inf"/"nan" (which strtod happily accepts) are
/// malformed here: a non-finite coordinate or timestamp poisons every
/// geometric predicate downstream.
Result<double> ParseField(const std::string& path, std::size_t line_no,
                          const char* column, const std::string& text) {
  const auto value = ParseDouble(text);
  if (!value.ok()) {
    return Status::Corruption(
        StrPrintf("%s:%zu: bad %s field '%s': %s", path.c_str(), line_no,
                  column, text.c_str(), value.status().message().c_str()));
  }
  if (!std::isfinite(value.value())) {
    return Status::Corruption(StrPrintf("%s:%zu: non-finite %s field '%s'",
                                        path.c_str(), line_no, column,
                                        text.c_str()));
  }
  return value.value();
}

}  // namespace

Status WriteGeoTraceCsv(const GeoTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "lat,lon,t\n";
  for (const GeoSample& s : trace) {
    out << StrPrintf("%.8f,%.8f,%.3f\n", s.pos.lat_deg, s.pos.lon_deg, s.t);
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<GeoTrace> ReadGeoTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  GeoTrace trace;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    if (first && LooksLikeHeader(line)) {
      first = false;
      continue;
    }
    first = false;
    const auto fields = Split(line, ',');
    if (fields.size() < 3) {
      return Status::Corruption(
          StrPrintf("%s:%zu: expected 3 fields", path.c_str(), line_no));
    }
    const auto lat = ParseField(path, line_no, "lat", fields[0]);
    const auto lon = ParseField(path, line_no, "lon", fields[1]);
    const auto t = ParseField(path, line_no, "t", fields[2]);
    if (!lat.ok()) return lat.status();
    if (!lon.ok()) return lon.status();
    if (!t.ok()) return t.status();
    trace.push_back(GeoSample{{lat.value(), lon.value()}, t.value()});
  }
  return trace;
}

Status WriteTrajectoryCsv(const Trajectory& trajectory,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "x,y,t,vx,vy\n";
  for (const TrackPoint& p : trajectory) {
    out << StrPrintf("%.4f,%.4f,%.3f,%.4f,%.4f\n", p.pos.x, p.pos.y, p.t,
                     p.velocity.x, p.velocity.y);
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Trajectory> ReadTrajectoryCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Trajectory trajectory;
  std::string line;
  bool first = true;
  bool any_velocity = false;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    if (first && LooksLikeHeader(line)) {
      first = false;
      continue;
    }
    first = false;
    const auto fields = Split(line, ',');
    if (fields.size() < 3) {
      return Status::Corruption(
          StrPrintf("%s:%zu: expected >= 3 fields", path.c_str(), line_no));
    }
    const auto x = ParseField(path, line_no, "x", fields[0]);
    const auto y = ParseField(path, line_no, "y", fields[1]);
    const auto t = ParseField(path, line_no, "t", fields[2]);
    if (!x.ok()) return x.status();
    if (!y.ok()) return y.status();
    if (!t.ok()) return t.status();
    TrackPoint p;
    p.pos = {x.value(), y.value()};
    p.t = t.value();
    if (fields.size() >= 5) {
      const auto vx = ParseField(path, line_no, "vx", fields[3]);
      const auto vy = ParseField(path, line_no, "vy", fields[4]);
      if (!vx.ok()) return vx.status();
      if (!vy.ok()) return vy.status();
      p.velocity = {vx.value(), vy.value()};
      any_velocity = true;
    }
    trajectory.push_back(p);
  }
  if (!any_velocity) FillVelocities(&trajectory);
  return trajectory;
}

Status WriteCompressedCsv(const CompressedTrajectory& compressed,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "index,x,y,t\n";
  for (const KeyPoint& k : compressed.keys) {
    out << StrPrintf("%llu,%.4f,%.4f,%.3f\n",
                     static_cast<unsigned long long>(k.index), k.point.pos.x,
                     k.point.pos.y, k.point.t);
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<CompressedTrajectory> ReadCompressedCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  CompressedTrajectory compressed;
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  // getline delivers the final row whether or not the file ends in a
  // newline, so a foreign file trimmed by another tool round-trips too.
  while (std::getline(in, line)) {
    ++line_no;
    if (Trim(line).empty()) continue;
    if (first && LooksLikeHeader(line)) {
      first = false;
      continue;
    }
    first = false;
    const auto fields = Split(line, ',');
    if (fields.size() < 4) {
      return Status::Corruption(
          StrPrintf("%s:%zu: expected 4 fields", path.c_str(), line_no));
    }
    const std::string index_text(Trim(fields[0]));
    uint64_t index = 0;
    bool index_ok = !index_text.empty() && index_text.size() <= 19;
    for (char ch : index_text) {
      if (ch < '0' || ch > '9') {
        index_ok = false;
        break;
      }
      index = index * 10 + static_cast<uint64_t>(ch - '0');
    }
    if (!index_ok) {
      return Status::Corruption(StrPrintf("%s:%zu: bad index field '%s'",
                                          path.c_str(), line_no,
                                          index_text.c_str()));
    }
    const auto x = ParseField(path, line_no, "x", fields[1]);
    const auto y = ParseField(path, line_no, "y", fields[2]);
    const auto t = ParseField(path, line_no, "t", fields[3]);
    if (!x.ok()) return x.status();
    if (!y.ok()) return y.status();
    if (!t.ok()) return t.status();
    KeyPoint key;
    key.index = index;
    key.point.pos = {x.value(), y.value()};
    key.point.t = t.value();
    compressed.keys.push_back(key);
  }
  return compressed;
}

}  // namespace bqs
