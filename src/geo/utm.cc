#include "geo/utm.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/strings.h"
#include "geo/wgs84.h"

namespace bqs {

namespace {

constexpr double kK0 = 0.9996;           // UTM scale on the central meridian.
constexpr double kFalseEasting = 500000.0;
constexpr double kFalseNorthingSouth = 10000000.0;

// Third flattening and rectifying radius for WGS-84.
constexpr double kN = Wgs84::kF / (2.0 - Wgs84::kF);
const double kA =
    Wgs84::kA / (1.0 + kN) *
    (1.0 + kN * kN / 4.0 + std::pow(kN, 4) / 64.0 + std::pow(kN, 6) / 256.0);

// Karney's series coefficients, order n^6.
struct SeriesCoeffs {
  double alpha[6];
  double beta[6];
  double delta[6];
};

SeriesCoeffs ComputeCoeffs() {
  const double n1 = kN;
  const double n2 = n1 * n1;
  const double n3 = n2 * n1;
  const double n4 = n3 * n1;
  const double n5 = n4 * n1;
  const double n6 = n5 * n1;
  SeriesCoeffs c;
  c.alpha[0] = n1 / 2.0 - 2.0 * n2 / 3.0 + 5.0 * n3 / 16.0 +
               41.0 * n4 / 180.0 - 127.0 * n5 / 288.0 + 7891.0 * n6 / 37800.0;
  c.alpha[1] = 13.0 * n2 / 48.0 - 3.0 * n3 / 5.0 + 557.0 * n4 / 1440.0 +
               281.0 * n5 / 630.0 - 1983433.0 * n6 / 1935360.0;
  c.alpha[2] = 61.0 * n3 / 240.0 - 103.0 * n4 / 140.0 +
               15061.0 * n5 / 26880.0 + 167603.0 * n6 / 181440.0;
  c.alpha[3] = 49561.0 * n4 / 161280.0 - 179.0 * n5 / 168.0 +
               6601661.0 * n6 / 7257600.0;
  c.alpha[4] = 34729.0 * n5 / 80640.0 - 3418889.0 * n6 / 1995840.0;
  c.alpha[5] = 212378941.0 * n6 / 319334400.0;

  c.beta[0] = n1 / 2.0 - 2.0 * n2 / 3.0 + 37.0 * n3 / 96.0 - n4 / 360.0 -
              81.0 * n5 / 512.0 + 96199.0 * n6 / 604800.0;
  c.beta[1] = n2 / 48.0 + n3 / 15.0 - 437.0 * n4 / 1440.0 +
              46.0 * n5 / 105.0 - 1118711.0 * n6 / 3870720.0;
  c.beta[2] = 17.0 * n3 / 480.0 - 37.0 * n4 / 840.0 - 209.0 * n5 / 4480.0 +
              5569.0 * n6 / 90720.0;
  c.beta[3] = 4397.0 * n4 / 161280.0 - 11.0 * n5 / 504.0 -
              830251.0 * n6 / 7257600.0;
  c.beta[4] = 4583.0 * n5 / 161280.0 - 108847.0 * n6 / 3991680.0;
  c.beta[5] = 20648693.0 * n6 / 638668800.0;

  c.delta[0] = 2.0 * n1 - 2.0 * n2 / 3.0 - 2.0 * n3 + 116.0 * n4 / 45.0 +
               26.0 * n5 / 45.0 - 2854.0 * n6 / 675.0;
  c.delta[1] = 7.0 * n2 / 3.0 - 8.0 * n3 / 5.0 - 227.0 * n4 / 45.0 +
               2704.0 * n5 / 315.0 + 2323.0 * n6 / 945.0;
  c.delta[2] = 56.0 * n3 / 15.0 - 136.0 * n4 / 35.0 - 1262.0 * n5 / 105.0 +
               73814.0 * n6 / 2835.0;
  c.delta[3] = 4279.0 * n4 / 630.0 - 332.0 * n5 / 35.0 -
               399572.0 * n6 / 14175.0;
  c.delta[4] = 4174.0 * n5 / 315.0 - 144838.0 * n6 / 6237.0;
  c.delta[5] = 601676.0 * n6 / 22275.0;
  return c;
}

const SeriesCoeffs& Coeffs() {
  static const SeriesCoeffs c = ComputeCoeffs();
  return c;
}

}  // namespace

int UtmZoneFor(double lat_deg, double lon_deg) {
  // Wrap longitude into [-180, 180).
  double lon = std::fmod(lon_deg + 180.0, 360.0);
  if (lon < 0.0) lon += 360.0;
  lon -= 180.0;

  int zone = static_cast<int>(std::floor((lon + 180.0) / 6.0)) + 1;
  if (zone > 60) zone = 60;

  // Norway: zone 32 extended over 3..12 E for 56..64 N.
  if (lat_deg >= 56.0 && lat_deg < 64.0 && lon >= 3.0 && lon < 12.0) {
    zone = 32;
  }
  // Svalbard bands (72..84 N).
  if (lat_deg >= 72.0 && lat_deg < 84.0) {
    if (lon >= 0.0 && lon < 9.0) {
      zone = 31;
    } else if (lon >= 9.0 && lon < 21.0) {
      zone = 33;
    } else if (lon >= 21.0 && lon < 33.0) {
      zone = 35;
    } else if (lon >= 33.0 && lon < 42.0) {
      zone = 37;
    }
  }
  return zone;
}

double UtmCentralMeridianDeg(int zone) {
  return static_cast<double>(zone) * 6.0 - 183.0;
}

Result<UtmCoord> LatLonToUtm(const LatLon& pos) {
  return LatLonToUtmZone(pos, UtmZoneFor(pos.lat_deg, pos.lon_deg),
                         pos.lat_deg >= 0.0);
}

Result<UtmCoord> LatLonToUtmZone(const LatLon& pos, int zone, bool north) {
  if (std::fabs(pos.lat_deg) > 84.0) {
    return Status::OutOfRange(
        StrPrintf("latitude %.4f outside UTM band (|lat| <= 84)",
                  pos.lat_deg));
  }
  if (pos.lon_deg < -180.0 || pos.lon_deg > 180.0) {
    return Status::OutOfRange(
        StrPrintf("longitude %.4f outside [-180, 180]", pos.lon_deg));
  }
  if (zone < 1 || zone > 60) {
    return Status::InvalidArgument(StrPrintf("invalid UTM zone %d", zone));
  }

  const SeriesCoeffs& c = Coeffs();
  const double phi = DegToRad(pos.lat_deg);
  const double dlam = DegToRad(pos.lon_deg - UtmCentralMeridianDeg(zone));

  // Conformal latitude via Karney's tau form.
  const double sin_phi = std::sin(phi);
  const double two_sqrt_n = 2.0 * std::sqrt(kN) / (1.0 + kN);
  const double t =
      std::sinh(std::atanh(sin_phi) - two_sqrt_n * std::atanh(two_sqrt_n * sin_phi));

  const double xi_p = std::atan2(t, std::cos(dlam));
  const double eta_p =
      std::asinh(std::sin(dlam) / std::hypot(t, std::cos(dlam)));

  double xi = xi_p;
  double eta = eta_p;
  for (int j = 1; j <= 6; ++j) {
    const double a = c.alpha[j - 1];
    xi += a * std::sin(2.0 * j * xi_p) * std::cosh(2.0 * j * eta_p);
    eta += a * std::cos(2.0 * j * xi_p) * std::sinh(2.0 * j * eta_p);
  }

  UtmCoord out;
  out.zone = zone;
  out.north = north;
  out.easting = kFalseEasting + kK0 * kA * eta;
  out.northing = kK0 * kA * xi + (north ? 0.0 : kFalseNorthingSouth);
  return out;
}

Result<LatLon> UtmToLatLon(const UtmCoord& coord) {
  if (coord.zone < 1 || coord.zone > 60) {
    return Status::InvalidArgument(
        StrPrintf("invalid UTM zone %d", coord.zone));
  }
  const SeriesCoeffs& c = Coeffs();
  const double x = coord.easting - kFalseEasting;
  const double y =
      coord.northing - (coord.north ? 0.0 : kFalseNorthingSouth);

  const double xi = y / (kK0 * kA);
  const double eta = x / (kK0 * kA);

  double xi_p = xi;
  double eta_p = eta;
  for (int j = 1; j <= 6; ++j) {
    const double b = c.beta[j - 1];
    xi_p -= b * std::sin(2.0 * j * xi) * std::cosh(2.0 * j * eta);
    eta_p -= b * std::cos(2.0 * j * xi) * std::sinh(2.0 * j * eta);
  }

  const double chi = std::asin(std::sin(xi_p) / std::cosh(eta_p));
  double phi = chi;
  for (int j = 1; j <= 6; ++j) {
    phi += c.delta[j - 1] * std::sin(2.0 * j * chi);
  }
  const double lam = std::atan2(std::sinh(eta_p), std::cos(xi_p));

  LatLon out;
  out.lat_deg = RadToDeg(phi);
  out.lon_deg = UtmCentralMeridianDeg(coord.zone) + RadToDeg(lam);
  return out;
}

}  // namespace bqs
