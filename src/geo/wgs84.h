// WGS-84 ellipsoid constants. Header-only.
#ifndef BQS_GEO_WGS84_H_
#define BQS_GEO_WGS84_H_

namespace bqs {

/// WGS-84 reference ellipsoid.
struct Wgs84 {
  /// Semi-major axis (metres).
  static constexpr double kA = 6378137.0;
  /// Flattening.
  static constexpr double kF = 1.0 / 298.257223563;
  /// Semi-minor axis (metres).
  static constexpr double kB = kA * (1.0 - kF);
  /// Mean earth radius used for spherical approximations (metres), IUGG R1.
  static constexpr double kMeanRadius = 6371008.8;
};

}  // namespace bqs

#endif  // BQS_GEO_WGS84_H_
