// Universal Transverse Mercator projection (WGS-84), implemented from
// scratch with the Karney–Krüger series (order n^6; sub-millimetre accuracy
// within a zone). The paper projects GPS fixes to UTM x/y before building
// quadrant systems (Section V-A step 1).
#ifndef BQS_GEO_UTM_H_
#define BQS_GEO_UTM_H_

#include "common/status.h"
#include "geometry/vec2.h"

namespace bqs {

/// A projected UTM coordinate. `easting`/`northing` are metres.
struct UtmCoord {
  int zone = 0;             ///< Longitudinal zone 1..60.
  bool north = true;        ///< Hemisphere.
  double easting = 0.0;     ///< Metres, false easting 500 km applied.
  double northing = 0.0;    ///< Metres, false northing 10,000 km if south.

  /// The planar point used by the compressors.
  Vec2 xy() const { return {easting, northing}; }
};

/// Geodetic position in degrees.
struct LatLon {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  constexpr bool operator==(const LatLon&) const = default;
};

/// Standard UTM zone for a position, including the Norway (32V) and
/// Svalbard (31X/33X/35X/37X) exceptions.
int UtmZoneFor(double lat_deg, double lon_deg);

/// Central meridian of a zone, degrees.
double UtmCentralMeridianDeg(int zone);

/// Forward projection. Fails for |lat| > 84 (outside UTM's defined band)
/// or longitude outside [-180, 180].
Result<UtmCoord> LatLonToUtm(const LatLon& pos);

/// Forward projection into an explicit zone (needed to keep a trajectory in
/// one continuous plane when it straddles a zone boundary).
Result<UtmCoord> LatLonToUtmZone(const LatLon& pos, int zone, bool north);

/// Inverse projection.
Result<LatLon> UtmToLatLon(const UtmCoord& coord);

}  // namespace bqs

#endif  // BQS_GEO_UTM_H_
