// Spherical-earth helpers: great-circle distance, bearings, destination
// points, and a light local tangent-plane projection. The simulators build
// geographic traces with these; the compressors consume projected planes.
#ifndef BQS_GEO_GEODESY_H_
#define BQS_GEO_GEODESY_H_

#include "geo/utm.h"
#include "geometry/vec2.h"

namespace bqs {

/// Great-circle (haversine) distance in metres.
double HaversineMeters(const LatLon& a, const LatLon& b);

/// Initial bearing from a to b, radians CW from true north in [0, 2*pi).
double InitialBearing(const LatLon& a, const LatLon& b);

/// Point reached from `origin` travelling `distance_m` metres along
/// `bearing_rad` (CW from north) on the spherical earth.
LatLon DestinationPoint(const LatLon& origin, double bearing_rad,
                        double distance_m);

/// Equirectangular local tangent-plane projection anchored at `origin`.
/// Accurate to ~0.1% within a few tens of km — adequate for simulators and
/// unit tests; production code paths use UTM.
class LocalTangentPlane {
 public:
  explicit LocalTangentPlane(const LatLon& origin);

  /// East/north metres of `pos` relative to the origin.
  Vec2 Project(const LatLon& pos) const;

  /// Inverse of Project.
  LatLon Unproject(Vec2 xy) const;

  const LatLon& origin() const { return origin_; }

 private:
  LatLon origin_;
  double cos_lat0_;
};

}  // namespace bqs

#endif  // BQS_GEO_GEODESY_H_
