#include "geo/geodesy.h"

#include <cmath>

#include "common/math_utils.h"
#include "geo/wgs84.h"
#include "geometry/angle.h"

namespace bqs {

double HaversineMeters(const LatLon& a, const LatLon& b) {
  const double phi1 = DegToRad(a.lat_deg);
  const double phi2 = DegToRad(b.lat_deg);
  const double dphi = phi2 - phi1;
  const double dlam = DegToRad(b.lon_deg - a.lon_deg);
  const double s = Sq(std::sin(dphi / 2.0)) +
                   std::cos(phi1) * std::cos(phi2) * Sq(std::sin(dlam / 2.0));
  return 2.0 * Wgs84::kMeanRadius * std::asin(std::sqrt(Clamp(s, 0.0, 1.0)));
}

double InitialBearing(const LatLon& a, const LatLon& b) {
  const double phi1 = DegToRad(a.lat_deg);
  const double phi2 = DegToRad(b.lat_deg);
  const double dlam = DegToRad(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlam) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlam);
  double bearing = std::atan2(y, x);
  if (bearing < 0.0) bearing += kTwoPi;
  return bearing;
}

LatLon DestinationPoint(const LatLon& origin, double bearing_rad,
                        double distance_m) {
  const double delta = distance_m / Wgs84::kMeanRadius;
  const double phi1 = DegToRad(origin.lat_deg);
  const double lam1 = DegToRad(origin.lon_deg);
  const double sin_phi2 = std::sin(phi1) * std::cos(delta) +
                          std::cos(phi1) * std::sin(delta) * std::cos(bearing_rad);
  const double phi2 = std::asin(Clamp(sin_phi2, -1.0, 1.0));
  const double y = std::sin(bearing_rad) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  const double lam2 = lam1 + std::atan2(y, x);
  LatLon out;
  out.lat_deg = RadToDeg(phi2);
  out.lon_deg = RadToDeg(NormalizeAngle(lam2));
  return out;
}

LocalTangentPlane::LocalTangentPlane(const LatLon& origin)
    : origin_(origin), cos_lat0_(std::cos(DegToRad(origin.lat_deg))) {}

Vec2 LocalTangentPlane::Project(const LatLon& pos) const {
  const double x = DegToRad(pos.lon_deg - origin_.lon_deg) * cos_lat0_ *
                   Wgs84::kMeanRadius;
  const double y =
      DegToRad(pos.lat_deg - origin_.lat_deg) * Wgs84::kMeanRadius;
  return {x, y};
}

LatLon LocalTangentPlane::Unproject(Vec2 xy) const {
  LatLon out;
  out.lat_deg = origin_.lat_deg + RadToDeg(xy.y / Wgs84::kMeanRadius);
  out.lon_deg = origin_.lon_deg +
                RadToDeg(xy.x / (Wgs84::kMeanRadius * cos_lat0_));
  return out;
}

}  // namespace bqs
