// Axis-aligned 2-D bounding box with the ray-intersection machinery the BQS
// needs: each angular bounding line is a ray from the quadrant origin, and
// its entry/exit points with the box are BQS "significant points".
#ifndef BQS_GEOMETRY_BOX2_H_
#define BQS_GEOMETRY_BOX2_H_

#include <array>
#include <optional>

#include "geometry/vec2.h"

namespace bqs {

/// Closed axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
/// A default-constructed box is empty; Extend() grows it to cover points.
class Box2 {
 public:
  Box2();
  /// Box covering exactly one point (degenerate allowed).
  explicit Box2(Vec2 p);
  Box2(Vec2 mn, Vec2 mx);

  /// True when no point has been added.
  bool empty() const;

  /// Grows the box to cover p.
  void Extend(Vec2 p);

  /// Grows the box to cover another box (no-op if `other` is empty).
  void Extend(const Box2& other);

  Vec2 min() const { return min_; }
  Vec2 max() const { return max_; }
  Vec2 Center() const { return (min_ + max_) * 0.5; }
  double Width() const { return max_.x - min_.x; }
  double Height() const { return max_.y - min_.y; }
  double Area() const { return Width() * Height(); }

  /// True when p lies inside or on the boundary. Empty boxes contain nothing.
  bool Contains(Vec2 p) const;

  /// The four corners in CCW order starting at min:
  /// (min.x,min.y), (max.x,min.y), (max.x,max.y), (min.x,max.y).
  std::array<Vec2, 4> Corners() const;

  /// Intersection points of the ray origin + t*dir (t >= 0) with the box
  /// boundary: entry (smaller t) and exit (larger t). Collapses to a single
  /// repeated point when the ray grazes a corner or the box is degenerate.
  /// nullopt when the ray misses the box entirely.
  struct RayHit {
    Vec2 entry;
    Vec2 exit;
    double t_entry;
    double t_exit;
  };
  std::optional<RayHit> IntersectRay(Vec2 origin, Vec2 dir) const;

 private:
  Vec2 min_;
  Vec2 max_;
};

}  // namespace bqs

#endif  // BQS_GEOMETRY_BOX2_H_
