// 3-D plane and half-space used by the 3-D BQS bounding planes.
#ifndef BQS_GEOMETRY_PLANE_H_
#define BQS_GEOMETRY_PLANE_H_

#include <optional>

#include "geometry/vec3.h"

namespace bqs {

/// Plane {x : normal . x + offset = 0}. The half-space "kept" by clipping
/// routines is {x : normal . x + offset <= 0}, i.e. the normal points out of
/// the kept region.
struct Plane3 {
  Vec3 normal;
  double offset = 0.0;

  /// Signed distance times |normal|; negative/zero means inside the kept
  /// half-space. Callers that need true distance should normalize first.
  double Eval(Vec3 p) const { return normal.Dot(p) + offset; }

  /// Plane through three points with normal (b-a) x (c-a). Returns nullopt
  /// when the points are (near-)collinear.
  static std::optional<Plane3> FromPoints(Vec3 a, Vec3 b, Vec3 c);

  /// Plane through `point` with the given normal.
  static Plane3 FromPointNormal(Vec3 point, Vec3 normal);

  /// Same plane with |normal| == 1 (Eval then returns true signed distance).
  Plane3 Normalized() const;
};

/// Intersection point of three planes; nullopt when the 3x3 system is
/// singular (two planes parallel, or all three share a line).
std::optional<Vec3> IntersectPlanes(const Plane3& p0, const Plane3& p1,
                                    const Plane3& p2);

}  // namespace bqs

#endif  // BQS_GEOMETRY_PLANE_H_
