#include "geometry/box3.h"

#include <algorithm>
#include <limits>

namespace bqs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Box3::Box3() : min_(kInf, kInf, kInf), max_(-kInf, -kInf, -kInf) {}

Box3::Box3(Vec3 p) : min_(p), max_(p) {}

Box3::Box3(Vec3 mn, Vec3 mx) : min_(mn), max_(mx) {}

bool Box3::empty() const {
  return min_.x > max_.x || min_.y > max_.y || min_.z > max_.z;
}

void Box3::Extend(Vec3 p) {
  min_.x = std::min(min_.x, p.x);
  min_.y = std::min(min_.y, p.y);
  min_.z = std::min(min_.z, p.z);
  max_.x = std::max(max_.x, p.x);
  max_.y = std::max(max_.y, p.y);
  max_.z = std::max(max_.z, p.z);
}

double Box3::Volume() const {
  if (empty()) return 0.0;
  return (max_.x - min_.x) * (max_.y - min_.y) * (max_.z - min_.z);
}

bool Box3::Contains(Vec3 p) const {
  return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y &&
         p.z >= min_.z && p.z <= max_.z;
}

std::array<Vec3, 8> Box3::Corners() const {
  std::array<Vec3, 8> out;
  for (std::size_t i = 0; i < 8; ++i) {
    out[i] = Vec3{(i & 1) ? max_.x : min_.x, (i & 2) ? max_.y : min_.y,
                  (i & 4) ? max_.z : min_.z};
  }
  return out;
}

std::array<Vec3, 4> Box3::Face(int face) const {
  const Vec3 mn = min_;
  const Vec3 mx = max_;
  switch (face) {
    case 0:  // -x
      return {Vec3{mn.x, mn.y, mn.z}, Vec3{mn.x, mn.y, mx.z},
              Vec3{mn.x, mx.y, mx.z}, Vec3{mn.x, mx.y, mn.z}};
    case 1:  // +x
      return {Vec3{mx.x, mn.y, mn.z}, Vec3{mx.x, mx.y, mn.z},
              Vec3{mx.x, mx.y, mx.z}, Vec3{mx.x, mn.y, mx.z}};
    case 2:  // -y
      return {Vec3{mn.x, mn.y, mn.z}, Vec3{mx.x, mn.y, mn.z},
              Vec3{mx.x, mn.y, mx.z}, Vec3{mn.x, mn.y, mx.z}};
    case 3:  // +y
      return {Vec3{mn.x, mx.y, mn.z}, Vec3{mn.x, mx.y, mx.z},
              Vec3{mx.x, mx.y, mx.z}, Vec3{mx.x, mx.y, mn.z}};
    case 4:  // -z
      return {Vec3{mn.x, mn.y, mn.z}, Vec3{mn.x, mx.y, mn.z},
              Vec3{mx.x, mx.y, mn.z}, Vec3{mx.x, mn.y, mn.z}};
    default:  // +z
      return {Vec3{mn.x, mn.y, mx.z}, Vec3{mx.x, mn.y, mx.z},
              Vec3{mx.x, mx.y, mx.z}, Vec3{mn.x, mx.y, mx.z}};
  }
}

}  // namespace bqs
