// 2-D convex hull (Andrew monotone chain) and point-in-convex-polygon tests.
// Used by property tests to validate the BQS bounding structures and by the
// trajectory store's segment-similarity search.
#ifndef BQS_GEOMETRY_CONVEX_HULL2_H_
#define BQS_GEOMETRY_CONVEX_HULL2_H_

#include <vector>

#include "geometry/vec2.h"

namespace bqs {

/// Convex hull of `points` in counter-clockwise order, first vertex is the
/// lexicographically smallest point. Collinear interior points are dropped.
/// Returns the input unchanged for fewer than 3 points (after dedup).
std::vector<Vec2> ConvexHull(std::vector<Vec2> points);

/// True when p is inside or on the boundary of the CCW convex polygon
/// `hull`. `eps` expands the polygon by an absolute tolerance to absorb
/// floating-point error. Hulls with fewer than 3 vertices degrade to
/// segment/point containment.
bool ConvexPolygonContains(const std::vector<Vec2>& hull, Vec2 p,
                           double eps = 1e-9);

/// Twice the signed area of a polygon (positive when CCW).
double PolygonSignedArea2(const std::vector<Vec2>& polygon);

}  // namespace bqs

#endif  // BQS_GEOMETRY_CONVEX_HULL2_H_
