#include "geometry/convex_hull2.h"

#include <algorithm>

#include "geometry/line2.h"

namespace bqs {

std::vector<Vec2> ConvexHull(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) return points;

  std::vector<Vec2> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).Cross(points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size &&
           (hull[k - 1] - hull[k - 2]).Cross(points[i] - hull[k - 2]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

bool ConvexPolygonContains(const std::vector<Vec2>& hull, Vec2 p, double eps) {
  if (hull.empty()) return false;
  if (hull.size() == 1) return Distance(hull[0], p) <= eps;
  if (hull.size() == 2) {
    return PointToSegmentDistance(p, hull[0], hull[1]) <= eps;
  }
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % hull.size()];
    const Vec2 edge = b - a;
    const double cross = edge.Cross(p - a);
    // For a CCW polygon the interior is on the left of every edge; allow
    // an eps-scaled band outside.
    if (cross < -eps * (edge.Norm() + 1.0)) return false;
  }
  return true;
}

double PolygonSignedArea2(const std::vector<Vec2>& polygon) {
  double area2 = 0.0;
  const std::size_t n = polygon.size();
  for (std::size_t i = 0; i < n; ++i) {
    area2 += polygon[i].Cross(polygon[(i + 1) % n]);
  }
  return area2;
}

}  // namespace bqs
