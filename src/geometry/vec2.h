// 2-D vector/point type used throughout the library. Header-only.
// Coordinates are metres in a locally-projected plane (UTM or tangent plane).
#ifndef BQS_GEOMETRY_VEC2_H_
#define BQS_GEOMETRY_VEC2_H_

#include <cmath>

namespace bqs {

/// Plain 2-D vector (also used as a point). All operations are value
/// semantics and constexpr-friendly; no dynamic allocation anywhere.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr Vec2 operator/(double k) const { return {x / k, y / k}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double k) {
    x *= k;
    y *= k;
    return *this;
  }
  constexpr bool operator==(const Vec2&) const = default;

  /// Dot product.
  constexpr double Dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// Z-component of the 3-D cross product; >0 when `o` is CCW from *this.
  constexpr double Cross(Vec2 o) const { return x * o.y - y * o.x; }
  /// Squared Euclidean norm.
  constexpr double NormSq() const { return x * x + y * y; }
  /// Euclidean norm.
  double Norm() const { return std::hypot(x, y); }
  /// Unit vector; returns (0,0) for the zero vector.
  Vec2 Normalized() const {
    const double n = Norm();
    if (n == 0.0) return {0.0, 0.0};
    return {x / n, y / n};
  }
  /// Rotated CCW by `angle` radians about the origin.
  Vec2 Rotated(double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
  /// atan2 angle of this vector in (-pi, pi].
  double Angle() const { return std::atan2(y, x); }
};

constexpr Vec2 operator*(double k, Vec2 v) { return {k * v.x, k * v.y}; }

/// Euclidean distance between two points.
inline double Distance(Vec2 a, Vec2 b) { return (a - b).Norm(); }

/// Squared distance between two points.
constexpr double DistanceSq(Vec2 a, Vec2 b) { return (a - b).NormSq(); }

}  // namespace bqs

#endif  // BQS_GEOMETRY_VEC2_H_
