// 4-D vector/point type for the 4-D BQS extension (x, y, altitude, scaled
// time). Header-only.
#ifndef BQS_GEOMETRY_VEC4_H_
#define BQS_GEOMETRY_VEC4_H_

#include <cmath>

#include "geometry/vec3.h"

namespace bqs {

/// Plain 4-D vector (also used as a point).
struct Vec4 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  double w = 0.0;

  constexpr Vec4() = default;
  constexpr Vec4(double xx, double yy, double zz, double ww)
      : x(xx), y(yy), z(zz), w(ww) {}
  /// Lifts a 3-D point into the w = ww hyper-plane.
  constexpr explicit Vec4(Vec3 v, double ww = 0.0)
      : x(v.x), y(v.y), z(v.z), w(ww) {}

  constexpr Vec4 operator+(Vec4 o) const {
    return {x + o.x, y + o.y, z + o.z, w + o.w};
  }
  constexpr Vec4 operator-(Vec4 o) const {
    return {x - o.x, y - o.y, z - o.z, w - o.w};
  }
  constexpr Vec4 operator*(double k) const {
    return {x * k, y * k, z * k, w * k};
  }
  constexpr Vec4 operator/(double k) const {
    return {x / k, y / k, z / k, w / k};
  }
  constexpr bool operator==(const Vec4&) const = default;

  constexpr double Dot(Vec4 o) const {
    return x * o.x + y * o.y + z * o.z + w * o.w;
  }
  constexpr double NormSq() const { return Dot(*this); }
  double Norm() const { return std::sqrt(NormSq()); }
  constexpr Vec3 XYZ() const { return {x, y, z}; }

  double operator[](int axis) const {
    switch (axis) {
      case 0:
        return x;
      case 1:
        return y;
      case 2:
        return z;
      default:
        return w;
    }
  }
};

constexpr Vec4 operator*(double k, Vec4 v) {
  return {k * v.x, k * v.y, k * v.z, k * v.w};
}

/// Euclidean distance between two points.
inline double Distance(Vec4 a, Vec4 b) { return (a - b).Norm(); }

/// Distance from p to the infinite line through a and b; |p - a| if a == b.
inline double PointToLineDistance4(Vec4 p, Vec4 a, Vec4 b) {
  const Vec4 d = b - a;
  const double len_sq = d.NormSq();
  const Vec4 rel = p - a;
  if (len_sq == 0.0) return rel.Norm();
  const double proj = rel.Dot(d);
  const double perp_sq = rel.NormSq() - proj * proj / len_sq;
  return std::sqrt(perp_sq > 0.0 ? perp_sq : 0.0);
}

/// Distance from p to the closed segment [a, b].
inline double PointToSegmentDistance4(Vec4 p, Vec4 a, Vec4 b) {
  const Vec4 d = b - a;
  const double len_sq = d.NormSq();
  if (len_sq == 0.0) return Distance(p, a);
  double t = (p - a).Dot(d) / len_sq;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return Distance(p, a + d * t);
}

}  // namespace bqs

#endif  // BQS_GEOMETRY_VEC4_H_
