// 3-D vector/point type for the 3-D BQS variant (altitude or scaled time as
// the third axis). Header-only.
#ifndef BQS_GEOMETRY_VEC3_H_
#define BQS_GEOMETRY_VEC3_H_

#include <cmath>

#include "geometry/vec2.h"

namespace bqs {

/// Plain 3-D vector (also used as a point).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz) {}
  /// Lifts a 2-D point into the z = 0 plane.
  constexpr explicit Vec3(Vec2 v, double zz = 0.0) : x(v.x), y(v.y), z(zz) {}

  constexpr Vec3 operator+(Vec3 o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(Vec3 o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double k) const { return {x * k, y * k, z * k}; }
  constexpr Vec3 operator/(double k) const { return {x / k, y / k, z / k}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr bool operator==(const Vec3&) const = default;

  /// Dot product.
  constexpr double Dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  /// Cross product.
  constexpr Vec3 Cross(Vec3 o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  /// Squared Euclidean norm.
  constexpr double NormSq() const { return x * x + y * y + z * z; }
  /// Euclidean norm.
  double Norm() const { return std::sqrt(NormSq()); }
  /// Unit vector; returns the zero vector unchanged.
  Vec3 Normalized() const {
    const double n = Norm();
    if (n == 0.0) return {0.0, 0.0, 0.0};
    return {x / n, y / n, z / n};
  }
  /// Projection onto the XY plane.
  constexpr Vec2 XY() const { return {x, y}; }
};

constexpr Vec3 operator*(double k, Vec3 v) {
  return {k * v.x, k * v.y, k * v.z};
}

/// Euclidean distance between two points.
inline double Distance(Vec3 a, Vec3 b) { return (a - b).Norm(); }

/// Squared distance between two points.
constexpr double DistanceSq(Vec3 a, Vec3 b) { return (a - b).NormSq(); }

}  // namespace bqs

#endif  // BQS_GEOMETRY_VEC3_H_
