#include "geometry/box2.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bqs {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Box2::Box2() : min_(kInf, kInf), max_(-kInf, -kInf) {}

Box2::Box2(Vec2 p) : min_(p), max_(p) {}

Box2::Box2(Vec2 mn, Vec2 mx) : min_(mn), max_(mx) {}

bool Box2::empty() const { return min_.x > max_.x || min_.y > max_.y; }

void Box2::Extend(Vec2 p) {
  min_.x = std::min(min_.x, p.x);
  min_.y = std::min(min_.y, p.y);
  max_.x = std::max(max_.x, p.x);
  max_.y = std::max(max_.y, p.y);
}

void Box2::Extend(const Box2& other) {
  if (other.empty()) return;
  Extend(other.min_);
  Extend(other.max_);
}

bool Box2::Contains(Vec2 p) const {
  return p.x >= min_.x && p.x <= max_.x && p.y >= min_.y && p.y <= max_.y;
}

std::array<Vec2, 4> Box2::Corners() const {
  return {Vec2{min_.x, min_.y}, Vec2{max_.x, min_.y}, Vec2{max_.x, max_.y},
          Vec2{min_.x, max_.y}};
}

std::optional<Box2::RayHit> Box2::IntersectRay(Vec2 origin, Vec2 dir) const {
  if (empty()) return std::nullopt;
  // Slab method. Track the parametric overlap of the ray with both slabs.
  double t0 = 0.0;
  double t1 = kInf;

  const double o[2] = {origin.x, origin.y};
  const double d[2] = {dir.x, dir.y};
  const double lo[2] = {min_.x, min_.y};
  const double hi[2] = {max_.x, max_.y};

  for (int axis = 0; axis < 2; ++axis) {
    if (d[axis] == 0.0) {
      // Ray parallel to this slab: must already be inside it.
      if (o[axis] < lo[axis] || o[axis] > hi[axis]) return std::nullopt;
      continue;
    }
    double ta = (lo[axis] - o[axis]) / d[axis];
    double tb = (hi[axis] - o[axis]) / d[axis];
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return std::nullopt;
  }
  if (!std::isfinite(t1)) {
    // Degenerate zero direction: treat as a miss unless origin is inside,
    // in which case the "ray" is the single point origin.
    if (dir.x == 0.0 && dir.y == 0.0) {
      if (!Contains(origin)) return std::nullopt;
      return RayHit{origin, origin, 0.0, 0.0};
    }
    return std::nullopt;
  }
  RayHit hit;
  hit.t_entry = t0;
  hit.t_exit = t1;
  hit.entry = origin + t0 * dir;
  hit.exit = origin + t1 * dir;
  return hit;
}

}  // namespace bqs
