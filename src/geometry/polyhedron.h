// Convex polytope support for the 3-D BQS: the bounding prism clipped by the
// vertical/inclined bounding planes is a convex polyhedron whose vertices
// are the "significant points" from which deviation bounds are computed.
//
// We use half-space representation and direct vertex enumeration (all
// 3-plane intersections filtered by feasibility). For the BQS workload the
// plane count is at most 10 (6 prism faces + 4 bounding planes), so the
// cubic enumeration is both simple and fast.
#ifndef BQS_GEOMETRY_POLYHEDRON_H_
#define BQS_GEOMETRY_POLYHEDRON_H_

#include <vector>

#include "geometry/box3.h"
#include "geometry/plane.h"

namespace bqs {

/// The six half-space planes of a box, normals pointing outward (kept region
/// is Eval <= 0). Empty vector for an empty box.
std::vector<Plane3> BoxPlanes(const Box3& box);

/// True when p satisfies every half-space within an absolute tolerance
/// `eps` (planes are normalized internally; eps is in length units).
bool PolytopeContains(const std::vector<Plane3>& planes, Vec3 p,
                      double eps = 1e-7);

/// Vertices of the convex polytope formed by intersecting the half-spaces.
/// Every unordered triple of planes is intersected; intersection points
/// feasible for all half-spaces (within eps) are kept and deduplicated.
/// Unbounded polytopes return only the vertices that exist (callers in this
/// library always pass bounded systems: a box plus cutting planes).
std::vector<Vec3> EnumerateVertices(std::vector<Plane3> planes,
                                    double eps = 1e-7);

/// Convenience: vertices of (box intersect cutting half-spaces).
std::vector<Vec3> ClipBoxVertices(const Box3& box,
                                  const std::vector<Plane3>& cuts,
                                  double eps = 1e-7);

}  // namespace bqs

#endif  // BQS_GEOMETRY_POLYHEDRON_H_
