// Angle arithmetic and the quadrant/octant classification that gives the
// Bounded Quadrant System its name (paper Section V-B and Appendix).
#ifndef BQS_GEOMETRY_ANGLE_H_
#define BQS_GEOMETRY_ANGLE_H_

#include "geometry/vec2.h"
#include "geometry/vec3.h"

namespace bqs {

/// Normalizes an angle to (-pi, pi].
double NormalizeAngle(double angle);

/// Normalizes an angle to [0, 2*pi).
double NormalizeAngle2Pi(double angle);

/// Normalizes an undirected line angle to [0, pi). A line at angle t is the
/// same line at angle t + pi.
double NormalizeLineAngle(double angle);

/// Quadrant index in {0,1,2,3} of a non-zero vector, using half-open angular
/// ranges so points on the axes classify deterministically:
///   q0: theta in [0, pi/2)     q1: theta in [pi/2, pi)
///   q2: theta in [pi, 3pi/2)   q3: theta in [3pi/2, 2pi)
/// (theta measured CCW from +x in [0, 2pi)).
///
/// Implemented by coordinate sign tests — no transcendentals. Tie/boundary
/// semantics (the canonical definition for the whole BQS family):
///   x > 0, y == +-0  -> q0   (theta == 0; both signed zeros)
///   x == +-0, y > 0  -> q1   (theta == pi/2)
///   x < 0, y == +-0  -> q2   (theta == pi; atan2 of -0 is -pi -> pi)
///   x == +-0, y < 0  -> q3   (theta == 3*pi/2)
/// The zero vector maps to q0 (callers exclude it by precondition). These
/// match QuadrantOfAtan2() exactly on axis-aligned and signed-zero input
/// and everywhere min(|x|,|y|) / max(|x|,|y|) > ~5e-16. Inside that
/// sub-ulp sliver the atan2 formula itself misclassifies: fmod-normalizing
/// an angle within half an ulp of 2*pi absorbs a q3 direction into 0 -> q0
/// (and similarly at the other multiples of pi/2, which are not exactly
/// representable). The sign tests are the ground truth there.
int QuadrantOf(Vec2 v);

/// The seed's transcendental classifier: atan2, normalize to [0, 2*pi),
/// divide by pi/2. Kept as the reference implementation the sign-test
/// classifier is differentially tested and micro-benchmarked against (and
/// used by BoundKernel::kReference). Counts into ops::atan2_calls.
int QuadrantOfAtan2(Vec2 v);

/// Quadrant of an already-normalized angle theta in [0, 2*pi): the tail of
/// QuadrantOfAtan2 once the angle is in hand. Lets the engine classify and
/// feed QuadrantBound from a single atan2 under the reference kernel.
int ThetaQuadrant(double theta);

/// Inclusive-exclusive angular range [start, end) of a quadrant, with
/// start = q * pi/2 measured in [0, 2pi).
struct QuadrantRange {
  double start;
  double end;
};
QuadrantRange QuadrantAngles(int quadrant);

/// True when the undirected line with direction angle `line_angle` is "in"
/// quadrant q per the paper's definition: theta_l in [start, end) modulo pi.
/// A line is therefore in exactly two (opposite) quadrants.
bool LineInQuadrant(double line_angle, int quadrant);

/// True when the *ray* at angle `ray_angle` (in (-pi, pi]) lies in quadrant
/// q. Used by the point-to-segment distance variant, where the "in quadrant"
/// property is directional (paper Section V-G).
bool RayInQuadrant(double ray_angle, int quadrant);

/// Octant index in {0..7} of a non-zero 3-D vector: bit 0 = (x < 0),
/// bit 1 = (y < 0), bit 2 = (z < 0). Octant 0 is x>=0, y>=0, z>=0.
int OctantOf(Vec3 v);

/// Counter-clockwise angular difference from `from` to `to` in [0, 2*pi).
double CcwDelta(double from, double to);

}  // namespace bqs

#endif  // BQS_GEOMETRY_ANGLE_H_
