#include "geometry/polyhedron.h"

#include <cmath>

namespace bqs {

std::vector<Plane3> BoxPlanes(const Box3& box) {
  if (box.empty()) return {};
  const Vec3 mn = box.min();
  const Vec3 mx = box.max();
  return {
      Plane3::FromPointNormal(mn, {-1.0, 0.0, 0.0}),
      Plane3::FromPointNormal(mx, {1.0, 0.0, 0.0}),
      Plane3::FromPointNormal(mn, {0.0, -1.0, 0.0}),
      Plane3::FromPointNormal(mx, {0.0, 1.0, 0.0}),
      Plane3::FromPointNormal(mn, {0.0, 0.0, -1.0}),
      Plane3::FromPointNormal(mx, {0.0, 0.0, 1.0}),
  };
}

bool PolytopeContains(const std::vector<Plane3>& planes, Vec3 p, double eps) {
  for (const Plane3& pl : planes) {
    if (pl.Normalized().Eval(p) > eps) return false;
  }
  return true;
}

std::vector<Vec3> EnumerateVertices(std::vector<Plane3> planes, double eps) {
  for (Plane3& pl : planes) pl = pl.Normalized();
  std::vector<Vec3> vertices;
  const std::size_t n = planes.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t k = j + 1; k < n; ++k) {
        const auto pt = IntersectPlanes(planes[i], planes[j], planes[k]);
        if (!pt.has_value()) continue;
        bool feasible = true;
        for (const Plane3& pl : planes) {
          if (pl.Eval(*pt) > eps) {
            feasible = false;
            break;
          }
        }
        if (!feasible) continue;
        bool duplicate = false;
        for (const Vec3& v : vertices) {
          if (DistanceSq(v, *pt) <= eps * eps) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) vertices.push_back(*pt);
      }
    }
  }
  return vertices;
}

std::vector<Vec3> ClipBoxVertices(const Box3& box,
                                  const std::vector<Plane3>& cuts,
                                  double eps) {
  std::vector<Plane3> planes = BoxPlanes(box);
  planes.insert(planes.end(), cuts.begin(), cuts.end());
  return EnumerateVertices(std::move(planes), eps);
}

}  // namespace bqs
