// 3-D line/segment distance primitives for the 3-D BQS variant.
#ifndef BQS_GEOMETRY_LINE3_H_
#define BQS_GEOMETRY_LINE3_H_

#include "geometry/vec3.h"

namespace bqs {

/// Distance from p to the infinite line through a and b.
/// When a == b it is the distance |p - a|.
double PointToLineDistance3(Vec3 p, Vec3 a, Vec3 b);

/// Distance from p to the closed segment [a, b].
double PointToSegmentDistance3(Vec3 p, Vec3 a, Vec3 b);

/// Parameter t of the orthogonal projection of p onto a + t*(b-a); 0 if a==b.
double ProjectParam3(Vec3 p, Vec3 a, Vec3 b);

/// Closest point to p on segment [a, b].
Vec3 ClosestPointOnSegment3(Vec3 p, Vec3 a, Vec3 b);

/// Shortest distance between the infinite line through (a, b) and the closed
/// segment [c, d]. Used for line-to-box-face lower bounds in 3-D BQS.
double LineToSegmentDistance3(Vec3 a, Vec3 b, Vec3 c, Vec3 d);

}  // namespace bqs

#endif  // BQS_GEOMETRY_LINE3_H_
