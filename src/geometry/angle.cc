#include "geometry/angle.h"

#include <cmath>

#include "common/math_utils.h"
#include "common/op_counters.h"

namespace bqs {

double NormalizeAngle(double angle) {
  double a = std::fmod(angle, kTwoPi);
  if (a <= -kPi) a += kTwoPi;
  if (a > kPi) a -= kTwoPi;
  return a;
}

double NormalizeAngle2Pi(double angle) {
  double a = std::fmod(angle, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  // fmod can return exactly 2*pi-eps rounding to 2*pi after the add.
  if (a >= kTwoPi) a -= kTwoPi;
  return a;
}

double NormalizeLineAngle(double angle) {
  double a = std::fmod(angle, kPi);
  if (a < 0.0) a += kPi;
  if (a >= kPi) a -= kPi;
  return a;
}

int QuadrantOf(Vec2 v) {
  // Sign tests only; see the header for the boundary semantics. The
  // comparisons treat -0.0 like +0.0 (IEEE: -0.0 < 0.0 is false), which is
  // exactly the axis convention the angular ranges prescribe.
  if (v.x > 0.0) {
    if (v.y > 0.0) return 0;
    return v.y < 0.0 ? 3 : 0;  // +-0 on the +x side: theta == 0.
  }
  if (v.x < 0.0) {
    if (v.y > 0.0) return 1;
    return 2;  // y < 0 or +-0: theta in (pi, 3pi/2) or exactly pi.
  }
  // x == +-0: the +y axis is q1, the -y axis q3; the zero vector q0.
  if (v.y > 0.0) return 1;
  return v.y < 0.0 ? 3 : 0;
}

int QuadrantOfAtan2(Vec2 v) {
  ops::CountAtan2();
  const double theta = NormalizeAngle2Pi(std::atan2(v.y, v.x));
  return ThetaQuadrant(theta);
}

int ThetaQuadrant(double theta) {
  const int q = static_cast<int>(theta / kHalfPi);
  return q > 3 ? 3 : q;  // guard against theta == 2*pi rounding.
}

QuadrantRange QuadrantAngles(int quadrant) {
  const double start = static_cast<double>(quadrant) * kHalfPi;
  return {start, start + kHalfPi};
}

bool LineInQuadrant(double line_angle, int quadrant) {
  const double a = NormalizeLineAngle(line_angle);
  // Quadrants 0 and 2 cover undirected angles [0, pi/2); 1 and 3 the rest.
  const bool low_half = a < kHalfPi;
  return (quadrant % 2 == 0) ? low_half : !low_half;
}

bool RayInQuadrant(double ray_angle, int quadrant) {
  const double a = NormalizeAngle2Pi(ray_angle);
  const QuadrantRange r = QuadrantAngles(quadrant);
  return a >= r.start && a < r.end;
}

int OctantOf(Vec3 v) {
  int idx = 0;
  if (v.x < 0.0) idx |= 1;
  if (v.y < 0.0) idx |= 2;
  if (v.z < 0.0) idx |= 4;
  return idx;
}

double CcwDelta(double from, double to) {
  return NormalizeAngle2Pi(to - from);
}

}  // namespace bqs
