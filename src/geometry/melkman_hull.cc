#include "geometry/melkman_hull.h"

#include <algorithm>
#include <cmath>

#include "geometry/convex_hull2.h"

namespace bqs {
namespace {

/// >0 when (a, b, c) is a strict left (CCW) turn.
double Turn(Vec2 a, Vec2 b, Vec2 c) { return (b - a).Cross(c - a); }

/// Conservative upper bound on the absolute floating-point error of
/// Turn(a, b, c): the coordinate subtractions contribute error proportional
/// to the coordinate magnitudes times the opposite difference, the products
/// and final subtraction a few ulps of the term magnitudes. The constant is
/// dozens of ulps (2^-53 ~ 1.1e-16) for safety margin.
///
/// Sign decisions are only trusted outside this band; borderline cases are
/// resolved conservatively (keep the point / rebuild), never by dropping a
/// potential extreme. This is what makes the hull safe on the nearly
/// collinear slivers that straight trajectory runs produce, where exact-sign
/// Melkman silently loses macroscopic hull extent.
constexpr double kTurnErr = 1e-14;

double TurnErrorBound(Vec2 a, Vec2 b, Vec2 c) {
  const double sa = std::fabs(a.x) + std::fabs(a.y);
  const double sb = std::fabs(b.x) + std::fabs(b.y);
  const double sc = std::fabs(c.x) + std::fabs(c.y);
  const double du = std::fabs(b.x - a.x) + std::fabs(b.y - a.y);
  const double dv = std::fabs(c.x - a.x) + std::fabs(c.y - a.y);
  return kTurnErr * ((sa + sb) * dv + (sa + sc) * du + du * dv);
}

}  // namespace

void MelkmanHull::Clear() {
  bot_ = 0;
  top_ = 0;
  degenerate_ = true;
  line_a_ = Vec2{};
  line_b_ = Vec2{};
  points_added_ = 0;
  scale_ = 0.0;
  coarse_band_ = 0.0;
}

double MelkmanHull::Band(double cross, Vec2 a, Vec2 b, Vec2 c) const {
  // coarse_band_ >= TurnErrorBound for any three points seen so far
  // (each |.|_1 <= scale_, each difference <= 2 * scale_, so the detailed
  // bound is at most 12 * kTurnErr * scale_^2 < coarse_band_), making one
  // compare sufficient for the overwhelmingly common clear-signed case.
  if (std::fabs(cross) > coarse_band_) return 0.0;
  return TurnErrorBound(a, b, c);
}

std::vector<Vec2> MelkmanHull::Vertices() const {
  std::vector<Vec2> out;
  out.reserve(size());
  ForEachVertex([&](Vec2 v) { out.push_back(v); });
  return out;
}

double MelkmanHull::MaxDeviation(Vec2 a, Vec2 b,
                                 DistanceMetric metric) const {
  double dev = 0.0;
  ForEachVertex([&](Vec2 v) {
    dev = std::max(dev, PointDeviation(v, a, b, metric));
  });
  return dev;
}

void MelkmanHull::AddDegenerate(Vec2 p) {
  if (points_added_ == 1) {
    line_a_ = p;
    line_b_ = p;
    return;
  }
  if (line_a_ == line_b_) {
    if (!(p == line_a_)) line_b_ = p;
    return;
  }
  const double turn = Turn(line_a_, line_b_, p);
  if (std::fabs(turn) <= Band(turn, line_a_, line_b_, p)) {
    // Collinear to within floating-point resolution: keep only the chain
    // extremes. A dropped mid-chain point sits within the error band of the
    // chain itself, so MaxDeviation changes by a correspondingly negligible
    // amount; extent is always preserved via the extreme updates.
    const Vec2 d = line_b_ - line_a_;
    const double t = d.Dot(p - line_a_);
    if (t < 0.0) {
      line_a_ = p;
    } else if (t > d.NormSq()) {
      line_b_ = p;
    }
    return;
  }
  // First point confidently off the line: seed the deque with the CCW
  // triangle.
  Vec2 a = line_a_;
  Vec2 b = line_b_;
  if (turn < 0.0) std::swap(a, b);
  const Vec2 verts[3] = {p, a, b};
  degenerate_ = false;
  Place(verts, 3);
}

void MelkmanHull::Place(const Vec2* verts, std::size_t m) {
  const std::size_t slack = std::max<std::size_t>(32, m);
  const std::size_t want = m + 1 + 2 * slack;
  if (ring_.size() < want) ring_.resize(std::max<std::size_t>(want, 128));
  bot_ = (ring_.size() - (m + 1)) / 2;
  top_ = bot_ + m;
  std::copy(verts, verts + m,
            ring_.begin() + static_cast<std::ptrdiff_t>(bot_));
  ring_[top_] = verts[0];
}

void MelkmanHull::Recenter() {
  scratch_.assign(ring_.begin() + static_cast<std::ptrdiff_t>(bot_),
                  ring_.begin() + static_cast<std::ptrdiff_t>(top_));
  Place(scratch_.data(), scratch_.size());
}

void MelkmanHull::Rebuild(Vec2 p) {
  scratch_.assign(ring_.begin() + static_cast<std::ptrdiff_t>(bot_),
                  ring_.begin() + static_cast<std::ptrdiff_t>(top_));
  RebuildWith(p);
}

void MelkmanHull::RebuildWith(Vec2 p) {
  scratch_.push_back(p);
  const std::vector<Vec2> hull = ConvexHull(scratch_);
  if (hull.size() < 3) {
    // Collapsed to a segment or point: back to the degenerate phase.
    // ConvexHull returns the sorted deduplicated points here, so front and
    // back are the chain extremes.
    degenerate_ = true;
    line_a_ = hull.empty() ? p : hull.front();
    line_b_ = hull.empty() ? p : hull.back();
    return;
  }
  Place(hull.data(), hull.size());
}

bool MelkmanHull::Contains(Vec2 p) const {
  // Returns true only when p is CONFIDENTLY inside (every decisive
  // orientation outside its error band); everything borderline returns
  // false and the caller rebuilds, which keeps the point when in doubt.
  const std::size_t m = top_ - bot_;
  const Vec2 v0 = ring_[bot_];
  {
    const Vec2 v1 = ring_[bot_ + 1];
    const double c = Turn(v0, v1, p);
    if (c <= Band(c, v0, v1, p)) return false;
  }
  {
    const Vec2 vl = ring_[bot_ + m - 1];
    const double c = Turn(v0, vl, p);
    if (c >= -Band(c, v0, vl, p)) return false;
  }
  // Binary search for the fan wedge whose triangle (v0, v_lo, v_lo+1)
  // should contain p. The comparisons inside the search only pick the
  // candidate; the final confident test decides, so a borderline pick can
  // only cause a conservative rebuild, never a wrong "inside".
  const Vec2 d = p - v0;
  std::size_t lo = 1;
  std::size_t hi = m - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if ((ring_[bot_ + mid] - v0).Cross(d) >= 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Vec2 a = ring_[bot_ + lo];
  const Vec2 b = ring_[bot_ + lo + 1];
  const double c = Turn(a, b, p);
  return c > Band(c, a, b, p);
}

void MelkmanHull::Add(Vec2 p) {
  ++points_added_;
  const double magnitude = std::fabs(p.x) + std::fabs(p.y);
  if (magnitude > scale_) {
    scale_ = magnitude;
    coarse_band_ = 16.0 * kTurnErr * scale_ * scale_;
  }
  if (degenerate_) {
    AddDegenerate(p);
    return;
  }

  const double cross_bot = Turn(ring_[bot_], ring_[bot_ + 1], p);
  const double err_bot = Band(cross_bot, ring_[bot_], ring_[bot_ + 1], p);
  const double cross_top = Turn(ring_[top_ - 1], ring_[top_], p);
  const double err_top = Band(cross_top, ring_[top_ - 1], ring_[top_], p);

  if (cross_bot > err_bot && cross_top > err_top) {
    // Confidently inside the wedge at the anchor vertex. Melkman stops
    // here, which is only sound for simple polylines; a self-intersecting
    // trajectory can exit the hull through a far edge while staying inside
    // this wedge, so confirm against the whole hull before dropping the
    // point.
    if (Contains(p)) return;
    Rebuild(p);
    return;
  }

  if (!(cross_bot < -err_bot || cross_top < -err_top)) {
    // Borderline at the anchor (nearly collinear sliver): no sign can be
    // trusted, so take the conservative O(h log h) path.
    Rebuild(p);
    return;
  }

  // p is confidently outside and the anchor lies on its visible chain: the
  // standard Melkman restore, popping only on confident turns. A vertex a
  // confident pop discards ends up inside or on the new hull, so no
  // deviation extreme is ever lost; a borderline vertex is simply kept
  // (hull vertices are all genuine input points, so extras are harmless).
  if (bot_ == 0 || top_ + 1 == ring_.size()) Recenter();
  std::size_t bot = bot_;
  std::size_t top = top_;
  while (top > bot + 1) {
    const double t = Turn(ring_[bot], ring_[bot + 1], p);
    if (t >= -Band(t, ring_[bot], ring_[bot + 1], p)) break;
    ++bot;
  }
  while (top > bot + 1) {
    const double t = Turn(ring_[top - 1], ring_[top], p);
    if (t >= -Band(t, ring_[top - 1], ring_[top], p)) break;
    --top;
  }
  const double closing = Turn(ring_[bot], ring_[top], p);
  if (top == bot + 1 &&
      std::fabs(closing) <= Band(closing, ring_[bot], ring_[top], p)) {
    // Everything popped down to one edge that is itself collinear with p:
    // the deque would close with (near-)zero area. Let the batch hull sort
    // it out.
    scratch_.assign({ring_[bot], ring_[top]});
    RebuildWith(p);
    return;
  }
  --bot;
  ++top;
  ring_[bot] = p;
  ring_[top] = p;
  bot_ = bot;
  top_ = top;

  const double area =
      top_ - bot_ == 3
          ? Turn(ring_[bot_], ring_[bot_ + 1], ring_[bot_ + 2])
          : 1.0;
  if (top_ - bot_ == 3 &&
      std::fabs(area) <=
          Band(area, ring_[bot_], ring_[bot_ + 1], ring_[bot_ + 2])) {
    // A triangle squashed onto a line: demote to the collinear phase so
    // later wedge tests stay sound.
    Rebuild(p);
  }
}

}  // namespace bqs
