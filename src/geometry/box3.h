// Axis-aligned 3-D bounding box ("bounding right rectangular prism" in the
// paper's 3-D BQS, Section V-G).
#ifndef BQS_GEOMETRY_BOX3_H_
#define BQS_GEOMETRY_BOX3_H_

#include <array>

#include "geometry/vec3.h"

namespace bqs {

/// Closed axis-aligned cuboid. Default-constructed box is empty.
class Box3 {
 public:
  Box3();
  explicit Box3(Vec3 p);
  Box3(Vec3 mn, Vec3 mx);

  bool empty() const;
  void Extend(Vec3 p);

  Vec3 min() const { return min_; }
  Vec3 max() const { return max_; }
  Vec3 Center() const { return (min_ + max_) * 0.5; }
  double Volume() const;

  /// True when p lies inside or on the boundary.
  bool Contains(Vec3 p) const;

  /// The eight corners; corner i has bit 0 -> max x, bit 1 -> max y,
  /// bit 2 -> max z.
  std::array<Vec3, 8> Corners() const;

  /// One rectangular face as its four corner points (CCW seen from outside).
  /// face in {0..5}: -x, +x, -y, +y, -z, +z.
  std::array<Vec3, 4> Face(int face) const;

 private:
  Vec3 min_;
  Vec3 max_;
};

}  // namespace bqs

#endif  // BQS_GEOMETRY_BOX3_H_
