// Online convex hull of a streamed point sequence, built on Melkman's
// deque algorithm. This is the structure that turns the BQS exact-deviation
// resolve from an O(n) buffer rescan into an O(h) hull-vertex scan: both
// point-to-line and point-to-segment distances are convex functions of the
// point, so their maximum over any point set is attained at a vertex of the
// set's convex hull.
//
// Melkman's algorithm is O(1) amortized per point but is only correct for
// *simple* polylines, and trajectory segments self-intersect freely. This
// implementation keeps the Melkman deque and its O(1) outside fast path
// (valid for arbitrary input, because a point that fails a wedge test at the
// anchor vertex always sees the anchor), and replaces the unsound O(1)
// "inside" conclusion with an exact O(log h) convex-polygon containment
// check; the rare point that is outside the hull yet invisible from the
// anchor falls back to a full O(h log h) rebuild.
#ifndef BQS_GEOMETRY_MELKMAN_HULL_H_
#define BQS_GEOMETRY_MELKMAN_HULL_H_

#include <cstddef>
#include <vector>

#include "geometry/line2.h"
#include "geometry/vec2.h"

namespace bqs {

/// Incremental convex hull of a point stream. Not thread-safe.
class MelkmanHull {
 public:
  MelkmanHull() = default;

  /// Removes every point; keeps the allocated arena so per-segment reuse
  /// (StartSegment in the BQS engine) does not reallocate.
  void Clear();

  /// Folds the next stream point into the hull. O(1) amortized when the
  /// point lands outside the current hull, O(log h) when inside.
  void Add(Vec2 p);

  /// Points ever Add()ed since the last Clear().
  std::size_t points_added() const { return points_added_; }
  bool empty() const { return points_added_ == 0; }

  /// Number of distinct hull vertices (0, 1 or 2 while the input is
  /// degenerate: empty, a single repeated point, or all collinear).
  std::size_t size() const {
    if (degenerate_) {
      if (points_added_ == 0) return 0;
      return line_a_ == line_b_ ? 1 : 2;
    }
    return top_ - bot_;
  }

  /// Calls f(v) for every distinct hull vertex, in CCW order (the starting
  /// vertex is arbitrary). Collinear input visits the two chain extremes.
  template <typename F>
  void ForEachVertex(F&& f) const {
    if (degenerate_) {
      if (points_added_ == 0) return;
      f(line_a_);
      if (!(line_b_ == line_a_)) f(line_b_);
      return;
    }
    for (std::size_t i = bot_; i < top_; ++i) f(ring_[i]);
  }

  /// Hull vertices in CCW order (copy; for tests and diagnostics).
  std::vector<Vec2> Vertices() const;

  /// Heap bytes currently held (arena + staging); memory accounting only.
  std::size_t StateBytes() const {
    return (ring_.capacity() + scratch_.capacity()) * sizeof(Vec2);
  }

  /// max over the hull's vertices of PointDeviation(v, a, b, metric),
  /// which equals the max over every point ever added (convexity of both
  /// metrics in the point argument). O(h).
  double MaxDeviation(Vec2 a, Vec2 b, DistanceMetric metric) const;

 private:
  void AddDegenerate(Vec2 p);
  /// Error band for a computed Turn(a, b, c): 0 when |cross| clears the
  /// coarse band (sign trusted with one compare), else the detailed bound.
  double Band(double cross, Vec2 a, Vec2 b, Vec2 c) const;
  /// Exact non-strict containment in the current hull, O(log h) via a fan
  /// binary search from the anchor vertex. Precondition: !degenerate_.
  bool Contains(Vec2 p) const;
  /// Re-anchors the deque as `verts[0..m-1]` + duplicated verts[0], leaving
  /// growth slack on both sides. `verts` must not alias ring_.
  void Place(const Vec2* verts, std::size_t m);
  /// Moves the chain to the arena centre when a deque end runs out of room.
  void Recenter();
  /// Fallback for the cases the deque cannot handle locally: rebuilds from
  /// the current vertices plus p via the batch hull. O(h log h), rare.
  void Rebuild(Vec2 p);
  /// Rebuild tail shared with the degenerate-edge case: scratch_ already
  /// holds the base points; p is appended before the batch hull runs.
  void RebuildWith(Vec2 p);

  // ring_[bot_..top_] holds the hull CCW with ring_[bot_] == ring_[top_]
  // (the classic Melkman deque layout in a flat arena).
  std::vector<Vec2> ring_;
  std::vector<Vec2> scratch_;  ///< Recenter/Rebuild staging, reused.
  std::size_t bot_ = 0;
  std::size_t top_ = 0;

  // Degenerate phase (fewer than 3 non-collinear points): the hull is the
  // chain of collinear points, represented by its two extremes.
  bool degenerate_ = true;
  Vec2 line_a_{};
  Vec2 line_b_{};
  std::size_t points_added_ = 0;

  /// Largest |x|+|y| over all added points; coarse_band_ derived from it
  /// dominates every TurnErrorBound, so a cross outside the band has a
  /// trusted sign with a single compare (the hot-path fast gate).
  double scale_ = 0.0;
  double coarse_band_ = 0.0;
};

}  // namespace bqs

#endif  // BQS_GEOMETRY_MELKMAN_HULL_H_
