#include "geometry/line2.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace bqs {

double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  const double len = d.Norm();
  if (len == 0.0) return Distance(p, a);
  return std::fabs(d.Cross(p - a)) / len;
}

double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b) {
  return Distance(p, ClosestPointOnSegment(p, a, b));
}

double PointToSegmentDistanceSq(Vec2 p, Vec2 a, Vec2 b) {
  return DistanceSq(p, ClosestPointOnSegment(p, a, b));
}

double PointDeviation(Vec2 p, Vec2 a, Vec2 b, DistanceMetric metric) {
  return metric == DistanceMetric::kPointToLine
             ? PointToLineDistance(p, a, b)
             : PointToSegmentDistance(p, a, b);
}

double ProjectParam(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  const double den = d.NormSq();
  if (den == 0.0) return 0.0;
  return d.Dot(p - a) / den;
}

Vec2 ClosestPointOnSegment(Vec2 p, Vec2 a, Vec2 b) {
  const double t = Clamp(ProjectParam(p, a, b), 0.0, 1.0);
  return a + t * (b - a);
}

double SignedLineOffset(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  const double len = d.Norm();
  if (len == 0.0) return 0.0;
  return d.Cross(p - a) / len;
}

namespace {

int Orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double cr = (b - a).Cross(c - a);
  if (cr > 0.0) return 1;
  if (cr < 0.0) return -1;
  return 0;
}

bool OnSegment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace

double SegmentToSegmentDistance(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  if (SegmentsIntersect(a, b, c, d)) return 0.0;
  double best = PointToSegmentDistance(a, c, d);
  best = std::min(best, PointToSegmentDistance(b, c, d));
  best = std::min(best, PointToSegmentDistance(c, a, b));
  best = std::min(best, PointToSegmentDistance(d, a, b));
  return best;
}

double SegmentToSegmentDistanceSq(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  if (SegmentsIntersect(a, b, c, d)) return 0.0;
  double best = PointToSegmentDistanceSq(a, c, d);
  best = std::min(best, PointToSegmentDistanceSq(b, c, d));
  best = std::min(best, PointToSegmentDistanceSq(c, a, b));
  best = std::min(best, PointToSegmentDistanceSq(d, a, b));
  return best;
}

bool SegmentsIntersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  const int o1 = Orientation(a, b, c);
  const int o2 = Orientation(a, b, d);
  const int o3 = Orientation(c, d, a);
  const int o4 = Orientation(c, d, b);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && OnSegment(a, b, c)) return true;
  if (o2 == 0 && OnSegment(a, b, d)) return true;
  if (o3 == 0 && OnSegment(c, d, a)) return true;
  if (o4 == 0 && OnSegment(c, d, b)) return true;
  return false;
}

}  // namespace bqs
