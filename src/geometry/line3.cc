#include "geometry/line3.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"

namespace bqs {

double PointToLineDistance3(Vec3 p, Vec3 a, Vec3 b) {
  const Vec3 d = b - a;
  const double len = d.Norm();
  if (len == 0.0) return Distance(p, a);
  return d.Cross(p - a).Norm() / len;
}

double ProjectParam3(Vec3 p, Vec3 a, Vec3 b) {
  const Vec3 d = b - a;
  const double den = d.NormSq();
  if (den == 0.0) return 0.0;
  return d.Dot(p - a) / den;
}

Vec3 ClosestPointOnSegment3(Vec3 p, Vec3 a, Vec3 b) {
  const double t = Clamp(ProjectParam3(p, a, b), 0.0, 1.0);
  return a + t * (b - a);
}

double PointToSegmentDistance3(Vec3 p, Vec3 a, Vec3 b) {
  return Distance(p, ClosestPointOnSegment3(p, a, b));
}

double LineToSegmentDistance3(Vec3 a, Vec3 b, Vec3 c, Vec3 d) {
  const Vec3 u = b - a;  // line direction
  const Vec3 v = d - c;  // segment direction
  const double uu = u.NormSq();
  if (uu == 0.0) return PointToSegmentDistance3(a, c, d);
  const double vv = v.NormSq();
  if (vv == 0.0) return PointToLineDistance3(c, a, b);

  // Minimize |(a + s*u) - (c + t*v)| over s in R, t in [0, 1].
  const Vec3 w = a - c;
  const double uv = u.Dot(v);
  const double uw = u.Dot(w);
  const double vw = v.Dot(w);
  const double den = uu * vv - uv * uv;

  double t;
  if (den <= 1e-14 * uu * vv) {
    // Parallel: any t gives the same perpendicular distance; clamp endpoints.
    t = 0.0;
  } else {
    // Stationary point of |w + s*u - t*v|^2 over (s, t).
    t = (uu * vw - uv * uw) / den;
  }
  t = Clamp(t, 0.0, 1.0);
  // With t fixed, the optimum over the unconstrained line is the
  // point-to-line distance from (c + t*v).
  const Vec3 pt = c + t * v;
  double best = PointToLineDistance3(pt, a, b);
  // Clamping may move the optimum to a segment endpoint; check both.
  best = std::min(best, PointToLineDistance3(c, a, b));
  best = std::min(best, PointToLineDistance3(d, a, b));
  return best;
}

}  // namespace bqs
