#include "geometry/plane.h"

#include <cmath>

namespace bqs {

std::optional<Plane3> Plane3::FromPoints(Vec3 a, Vec3 b, Vec3 c) {
  const Vec3 n = (b - a).Cross(c - a);
  const double len = n.Norm();
  // Collinearity threshold relative to the edge lengths involved.
  const double scale = (b - a).Norm() * (c - a).Norm();
  if (len <= 1e-12 * (scale > 0.0 ? scale : 1.0)) return std::nullopt;
  Plane3 out;
  out.normal = n / len;
  out.offset = -out.normal.Dot(a);
  return out;
}

Plane3 Plane3::FromPointNormal(Vec3 point, Vec3 normal) {
  Plane3 out;
  out.normal = normal;
  out.offset = -normal.Dot(point);
  return out;
}

Plane3 Plane3::Normalized() const {
  const double len = normal.Norm();
  if (len == 0.0) return *this;
  return Plane3{normal / len, offset / len};
}

std::optional<Vec3> IntersectPlanes(const Plane3& p0, const Plane3& p1,
                                    const Plane3& p2) {
  // Solve [n0; n1; n2] x = -[d0; d1; d2] by Cramer's rule.
  const Vec3 n0 = p0.normal;
  const Vec3 n1 = p1.normal;
  const Vec3 n2 = p2.normal;
  const double det = n0.Dot(n1.Cross(n2));
  const double scale =
      n0.Norm() * n1.Norm() * n2.Norm();
  if (std::fabs(det) <= 1e-10 * (scale > 0.0 ? scale : 1.0)) {
    return std::nullopt;
  }
  const Vec3 b{-p0.offset, -p1.offset, -p2.offset};
  // x = (b.x * (n1 x n2) + b.y * (n2 x n0) + b.z * (n0 x n1)) / det
  const Vec3 x = (b.x * n1.Cross(n2) + b.y * n2.Cross(n0) +
                  b.z * n0.Cross(n1)) /
                 det;
  return x;
}

}  // namespace bqs
