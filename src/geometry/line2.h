// 2-D line/segment distance primitives. The paper's deviation metric is the
// distance from a point to the (infinite) line through the segment start and
// end; the point-to-line-segment variant is also supported (Section V-G).
#ifndef BQS_GEOMETRY_LINE2_H_
#define BQS_GEOMETRY_LINE2_H_

#include "geometry/vec2.h"

namespace bqs {

/// Which deviation metric a compressor uses.
enum class DistanceMetric {
  /// Distance to the infinite line through (start, end). Paper default.
  kPointToLine,
  /// Distance to the closed segment [start, end]. Paper Eq. (11) variant.
  kPointToSegment,
};

/// Distance from p to the infinite line through a and b.
/// Degenerates gracefully: when a == b it is the distance |p - a|.
double PointToLineDistance(Vec2 p, Vec2 a, Vec2 b);

/// Distance from p to the closed segment [a, b].
double PointToSegmentDistance(Vec2 p, Vec2 a, Vec2 b);

/// Squared distance from p to the closed segment [a, b]. No square root:
/// this is the fast bound kernel's building block. Computed from the same
/// closest point as PointToSegmentDistance, so sqrt of this value matches
/// the rounded distance to within ~2 ulp (the kernel's fallback band
/// absorbs the difference).
double PointToSegmentDistanceSq(Vec2 p, Vec2 a, Vec2 b);

/// Dispatches on `metric`.
double PointDeviation(Vec2 p, Vec2 a, Vec2 b, DistanceMetric metric);

/// Parameter t of the orthogonal projection of p onto the line a + t*(b-a).
/// Returns 0 when a == b.
double ProjectParam(Vec2 p, Vec2 a, Vec2 b);

/// Closest point to p on segment [a, b].
Vec2 ClosestPointOnSegment(Vec2 p, Vec2 a, Vec2 b);

/// Signed perpendicular offset of p from the directed line a->b
/// (positive on the left of the direction of travel). 0 when a == b.
double SignedLineOffset(Vec2 p, Vec2 a, Vec2 b);

/// Intersection of segments [a,b] and [c,d] exists?  Touching counts.
bool SegmentsIntersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Shortest distance between closed segments [a,b] and [c,d]; 0 when they
/// intersect.
double SegmentToSegmentDistance(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// Squared shortest distance between closed segments; 0 when they
/// intersect. sqrt-free counterpart of SegmentToSegmentDistance (min of
/// squared endpoint-to-segment distances commutes with the square root up
/// to ulp-level rounding, which the kernel's fallback band absorbs).
double SegmentToSegmentDistanceSq(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

}  // namespace bqs

#endif  // BQS_GEOMETRY_LINE2_H_
