// The paper's synthetic workload (Section VI-A): an event-based correlated
// random walk. Waiting and moving events alternate; the object holds
// position during waits and moves with a freshly drawn speed and von Mises
// turning angle during moves. Move/wait durations are exponential (Poisson
// process); trajectories are confined to a square area by reflection.
// Sampling is continuous and high-frequency with exact velocities, which is
// what makes the Dead Reckoning comparison (Fig. 8) possible.
#ifndef BQS_SIMULATION_RANDOM_WALK_H_
#define BQS_SIMULATION_RANDOM_WALK_H_

#include <cstdint>

#include "trajectory/trajectory.h"

namespace bqs {

/// Parameters of the correlated random walk. Defaults approximate the
/// paper's setup: 30,000 points on a 10 km x 10 km area with bat-like
/// speed dynamics (cruise ~35 km/h, bursts to ~50 km/h).
struct RandomWalkOptions {
  std::size_t num_points = 30000;
  double area_m = 10000.0;           ///< Side of the bounding square.
  double sample_interval_s = 2.0;    ///< High-frequency sampling.
  double mean_wait_s = 40.0;         ///< Exponential wait duration.
  double mean_move_s = 90.0;         ///< Exponential move duration.
  double speed_mode_mps = 9.7;       ///< ~35 km/h cruising speed.
  double speed_sigma = 0.35;         ///< Log-normal spread of speeds.
  double max_speed_mps = 13.9;       ///< ~50 km/h ceiling.
  double turn_kappa = 3.0;           ///< Heading persistence (von Mises).
  /// Per-sample heading wobble while moving (wind drift / path texture),
  /// von Mises concentration. Large values = nearly straight moves. This
  /// is what makes Dead Reckoning's report count tolerance-dependent
  /// (Fig. 8(b)): with perfectly linear moves DR would only report at
  /// event boundaries.
  double move_jitter_kappa = 350.0;
  double jitter_m = 0.0;             ///< Optional stationary GPS jitter.
  uint64_t seed = 20150415;          ///< ICDE'15 vintage.
};

/// Generates the walk. Points carry exact instantaneous velocities.
Trajectory GenerateRandomWalk(const RandomWalkOptions& options);

}  // namespace bqs

#endif  // BQS_SIMULATION_RANDOM_WALK_H_
