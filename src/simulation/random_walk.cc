#include "simulation/random_walk.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "geometry/angle.h"
#include "simulation/von_mises.h"

namespace bqs {

namespace {

// Reflects a coordinate into [0, size], flipping the matching velocity
// component, to keep the walk inside the area (paper: "bounded by a
// rectangular area of 10 km x 10 km").
void ReflectAxis(double* coord, double* vel, double size) {
  while (*coord < 0.0 || *coord > size) {
    if (*coord < 0.0) {
      *coord = -*coord;
      *vel = -*vel;
    } else {
      *coord = 2.0 * size - *coord;
      *vel = -*vel;
    }
  }
}

}  // namespace

Trajectory GenerateRandomWalk(const RandomWalkOptions& options) {
  Trajectory out;
  out.reserve(options.num_points);
  Rng rng(options.seed);

  Vec2 pos{options.area_m / 2.0, options.area_m / 2.0};
  double heading = rng.Uniform(-kPi, kPi);
  double t = 0.0;
  bool moving = false;  // Start with a waiting event, as animals roost.

  while (out.size() < options.num_points) {
    const double duration = moving ? rng.Exponential(options.mean_move_s)
                                   : rng.Exponential(options.mean_wait_s);
    double speed = 0.0;
    Vec2 vel{0.0, 0.0};
    if (moving) {
      heading = NormalizeAngle(
          heading + SampleVonMises(rng, 0.0, options.turn_kappa));
      speed = std::min(options.max_speed_mps,
                       options.speed_mode_mps *
                           std::exp(rng.Normal(0.0, options.speed_sigma)));
      vel = Vec2{std::cos(heading), std::sin(heading)} * speed;
    }

    double elapsed = 0.0;
    while (elapsed < duration && out.size() < options.num_points) {
      TrackPoint p;
      p.t = t;
      p.pos = pos;
      if (options.jitter_m > 0.0 && !moving) {
        p.pos += Vec2{rng.Normal(0.0, options.jitter_m),
                      rng.Normal(0.0, options.jitter_m)};
      }
      p.velocity = vel;
      out.push_back(p);

      const double step = options.sample_interval_s;
      pos += vel * step;
      ReflectAxis(&pos.x, &vel.x, options.area_m);
      ReflectAxis(&pos.y, &vel.y, options.area_m);
      if (moving && (vel.x != 0.0 || vel.y != 0.0)) {
        heading = vel.Angle();  // Keep heading consistent after bounces.
        // Per-sample wobble around the event heading.
        heading = NormalizeAngle(
            heading + SampleVonMises(rng, 0.0, options.move_jitter_kappa));
        vel = Vec2{std::cos(heading), std::sin(heading)} * speed;
      }
      t += step;
      elapsed += step;
    }
    moving = !moving;
  }
  return out;
}

}  // namespace bqs
