#include "simulation/vehicle.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "geo/geodesy.h"

namespace bqs {

GeoTrace GenerateVehicleTrace(const VehicleOptions& options) {
  Rng rng(options.seed);
  const LocalTangentPlane plane(
      LatLon{options.anchor_lat, options.anchor_lon});
  GeoTrace out;

  double t = 0.0;
  const double half_area = options.area_km * 500.0;  // km -> m, halved.

  Vec2 bias{rng.Normal(0.0, options.gps_drift_m),
            rng.Normal(0.0, options.gps_drift_m)};
  const double rho = options.gps_drift_rho;
  const double innovation =
      options.gps_drift_m * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  const auto emit = [&](Vec2 p) {
    bias = bias * rho + Vec2{rng.Normal(0.0, innovation),
                             rng.Normal(0.0, innovation)};
    const Vec2 noisy = p + bias +
                       Vec2{rng.Normal(0.0, options.gps_white_m),
                            rng.Normal(0.0, options.gps_white_m)};
    out.push_back(GeoSample{plane.Unproject(noisy), t});
  };

  for (int trip = 0; trip < options.num_trips; ++trip) {
    Vec2 pos{rng.Uniform(-half_area, half_area),
             rng.Uniform(-half_area, half_area)};
    // Streets follow one of two orthogonal grid orientations per trip.
    const double grid = rng.Uniform(0.0, kHalfPi);
    double heading = grid + kHalfPi * static_cast<double>(rng.UniformInt(0, 3));
    double trip_left_m =
        rng.Uniform(options.min_trip_km, options.max_trip_km) * 1000.0;

    emit(pos);
    while (trip_left_m > 0.0) {
      // One straight leg.
      double leg = options.mean_leg_m *
                   std::exp(rng.Normal(0.0, options.leg_sigma));
      leg = std::min(leg, trip_left_m);
      const bool highway = leg > 3000.0;
      const double base_speed =
          (highway ? options.highway_speed_kmh : options.urban_speed_kmh) /
          3.6;
      // A fraction of legs are gentle arcs (ring roads, bends): curvature
      // turns the heading gradually over the leg.
      double curvature = 0.0;  // rad per metre; sign = turn direction.
      if (rng.Bernoulli(options.curve_probability)) {
        const double radius = rng.Uniform(options.min_curve_radius_m,
                                          options.max_curve_radius_m);
        curvature = (rng.Bernoulli(0.5) ? 1.0 : -1.0) / radius;
      }

      double covered = 0.0;
      while (covered < leg) {
        const double speed = base_speed * rng.Uniform(0.9, 1.05);
        const double step =
            std::min(speed * options.sample_interval_s, leg - covered);
        const Vec2 dir{std::cos(heading), std::sin(heading)};
        pos += dir * step;
        heading += curvature * step;
        covered += step;
        t += options.sample_interval_s;
        emit(pos);
      }
      trip_left_m -= leg;

      // Intersection: possible stop, then turn left/right or continue.
      if (rng.Bernoulli(options.stop_probability)) {
        const double wait = rng.Uniform(10.0, options.max_stop_s);
        const int fixes =
            static_cast<int>(wait / options.sample_interval_s);
        for (int i = 0; i < fixes; ++i) {
          t += options.sample_interval_s;
          emit(pos);
        }
      }
      const double turn = rng.Bernoulli(0.5) ? kHalfPi : -kHalfPi;
      if (!rng.Bernoulli(0.45)) {  // 55%: turn; 45%: continue straight.
        heading += turn;
      }
      // Steer back into the area by U-turning when out of bounds.
      if (std::fabs(pos.x) > half_area || std::fabs(pos.y) > half_area) {
        heading += kPi;
      }
    }
    t += options.trip_gap_s;
  }
  return out;
}

}  // namespace bqs
