#include "simulation/flying_fox.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "geo/geodesy.h"
#include "simulation/von_mises.h"

namespace bqs {

namespace {
constexpr double kDaySeconds = 86400.0;
}  // namespace

GeoTrace GenerateFlyingFoxTrace(const FlyingFoxOptions& options) {
  Rng rng(options.seed);
  const LocalTangentPlane plane(LatLon{options.camp_lat, options.camp_lon});
  GeoTrace out;

  Vec2 pos{0.0, 0.0};  // Camp at the tangent-plane origin.
  double t = 0.0;      // t = 0 is dusk of the first tracked night.

  // AR(1) receiver bias + white noise (see FlyingFoxOptions::gps_drift_m).
  Vec2 bias{rng.Normal(0.0, options.gps_drift_m),
            rng.Normal(0.0, options.gps_drift_m)};
  const double rho = options.gps_drift_rho;
  const double innovation =
      options.gps_drift_m * std::sqrt(std::max(0.0, 1.0 - rho * rho));
  const auto emit = [&](Vec2 p) {
    bias = bias * rho + Vec2{rng.Normal(0.0, innovation),
                             rng.Normal(0.0, innovation)};
    const Vec2 noisy = p + bias +
                       Vec2{rng.Normal(0.0, options.gps_white_m),
                            rng.Normal(0.0, options.gps_white_m)};
    out.push_back(GeoSample{plane.Unproject(noisy), t});
  };

  // Flies towards `target` with heading wobble; emits one fix per sample
  // interval. The iteration guard covers pathological wobble draws.
  const auto fly_to = [&](Vec2 target) {
    int guard = 0;
    while (Distance(pos, target) > 150.0 && ++guard < 5000) {
      const double desired = (target - pos).Angle();
      const double heading =
          desired + SampleVonMises(rng, 0.0, options.heading_kappa);
      const double speed =
          std::min(options.max_speed_mps,
                   options.cruise_speed_mps *
                       std::exp(rng.Normal(0.0, 0.2)));
      const double step = std::min(
          speed * options.sample_interval_s, Distance(pos, target));
      pos += Vec2{std::cos(heading), std::sin(heading)} * step;
      t += options.sample_interval_s;
      emit(pos);
    }
  };

  // Stays near `center` for `duration`, crawling tree-to-tree.
  const auto dwell = [&](Vec2 center, double duration, double jitter) {
    const int fixes =
        std::max(1, static_cast<int>(duration / options.sample_interval_s));
    for (int i = 0; i < fixes; ++i) {
      pos = center + Vec2{rng.Normal(0.0, jitter), rng.Normal(0.0, jitter)};
      t += options.sample_interval_s;
      emit(pos);
    }
  };

  for (int night = 0; night < options.num_nights; ++night) {
    const double night_start = static_cast<double>(night) * kDaySeconds;
    const double night_end = night_start + options.night_hours * 3600.0;
    t = std::max(t, night_start);

    // Nightly foraging loop: camp -> sites -> camp.
    const int sites = static_cast<int>(rng.UniformInt(
        options.forage_sites_min, options.forage_sites_max));
    for (int s = 0; s < sites && t < night_end; ++s) {
      const double bearing = rng.Uniform(-kPi, kPi);
      const double range =
          rng.Uniform(0.15 * options.forage_radius_m, options.forage_radius_m);
      const Vec2 site =
          Vec2{std::cos(bearing), std::sin(bearing)} * range;
      fly_to(site);
      dwell(site,
            rng.Uniform(options.forage_dwell_min_s, options.forage_dwell_max_s),
            options.roost_jitter_m * 1.5);
    }
    fly_to(Vec2{0.0, 0.0});

    // Daytime roost: fixes at the camp until the next dusk. Time advances
    // before emitting so timestamps stay strictly increasing across the
    // night/day hand-over.
    const double next_dusk = night_start + kDaySeconds;
    while (t + options.day_fix_interval_s < next_dusk) {
      t += options.day_fix_interval_s;
      pos = Vec2{rng.Normal(0.0, options.roost_jitter_m),
                 rng.Normal(0.0, options.roost_jitter_m)};
      emit(pos);
    }
    t = std::max(t, next_dusk);
  }
  return out;
}

}  // namespace bqs
