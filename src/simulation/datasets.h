// Canned evaluation datasets: the three streams the paper's experiments run
// on (bat, vehicle, synthetic), pre-projected into metric planes and merged
// into single streams ("we combine all the data points into a single data
// stream"). `scale` shrinks/grows the workload proportionally so unit tests
// stay fast while benches run at paper-comparable sizes.
#ifndef BQS_SIMULATION_DATASETS_H_
#define BQS_SIMULATION_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trajectory/trajectory.h"

namespace bqs {

/// A named, ready-to-compress stream.
struct Dataset {
  std::string name;
  Trajectory stream;
};

/// Flying-fox dataset: several tagged bats, UTM-projected, concatenated.
/// scale = 1.0 gives ~5 bats x 14 nights (tens of thousands of fixes).
Dataset BuildBatDataset(double scale = 1.0, uint64_t seed = 1001);

/// Vehicle dataset: one car, multiple trips, UTM-projected.
Dataset BuildVehicleDataset(double scale = 1.0, uint64_t seed = 2002);

/// The paper's synthetic correlated random walk (30,000 points at scale 1).
Dataset BuildSyntheticDataset(double scale = 1.0, uint64_t seed = 20150415);

/// Both real-data stand-ins, bat then vehicle (the paper's run-time test
/// feeds 87,704 empirical points as one stream).
Dataset BuildEmpiricalMergedDataset(double scale = 1.0, uint64_t seed = 3003);

/// Worst-case stream for the BQS exact path: a slow drift whose lateral
/// oscillation hovers just under `epsilon_hint`, so the quadrant bounds are
/// inconclusive (d_lb <= eps < d_ub) on a large fraction of points while
/// segments grow thousands of points long. Under the brute-force resolver
/// every inconclusive point rescans that huge buffer (the paper's Table I
/// O(n^2) degradation); the hull resolver scans a few dozen vertices.
/// scale = 1.0 gives 40,000 points.
Dataset BuildAdversarialDriftDataset(double scale = 1.0,
                                     double epsilon_hint = 10.0,
                                     uint64_t seed = 4004);

/// An interleaved multi-vehicle fleet feed plus the per-device reference
/// streams it was woven from. `feed` is what a fleet frontend receives (one
/// stream of (device, point) records, devices interleaved in bursty arrival
/// order, each device's records in stream order); `devices` holds each
/// device's stream alone, in feed order per device — the sequential
/// reference the FleetEngine differential tests compress with CompressAll.
struct FleetDataset {
  std::string name;
  std::vector<FleetRecord> feed;
  std::vector<std::pair<DeviceId, Trajectory>> devices;
};

/// Interleaved fleet feed: `num_devices` correlated-random-walk vehicles
/// with per-device speed/persistence variation, merged into one feed in
/// random bursts of 1-8 records per device (deterministic in `seed`).
/// scale = 1.0 gives ~6,000 points per device.
FleetDataset BuildFleetDataset(std::size_t num_devices = 16,
                               double scale = 1.0, uint64_t seed = 5005);

/// All datasets used across the benches.
std::vector<Dataset> BuildAllDatasets(double scale = 1.0);

}  // namespace bqs

#endif  // BQS_SIMULATION_DATASETS_H_
