// Behavioural simulator standing in for the paper's vehicle dataset: one
// Camazotz node on a car dashboard for two weeks / 1,187 km in urban road
// networks (Section III-A, VI-A). The model reproduces the road-network
// signature the paper leans on: long straight legs, sharp turns only at
// intersections, 60-100 km/h speeds, stops at lights — yielding smoother
// headings (higher BQS pruning power) but less discardable dithering than
// the bat data (worse compression rate at equal epsilon).
#ifndef BQS_SIMULATION_VEHICLE_H_
#define BQS_SIMULATION_VEHICLE_H_

#include <cstdint>

#include "trajectory/trajectory.h"

namespace bqs {

/// Parameters of the synthetic vehicle trace.
struct VehicleOptions {
  int num_trips = 10;
  double sample_interval_s = 5.0;   ///< Dashboard GPS cadence.
  double anchor_lat = -27.4698;     ///< Trip origin region (Brisbane).
  double anchor_lon = 153.0251;
  double mean_leg_m = 420.0;        ///< Straight run between turns.
  double leg_sigma = 0.9;           ///< Log-normal spread of leg lengths.
  double min_trip_km = 4.0;         ///< Trip length range (paper: a few
  double max_trip_km = 60.0;        ///<  km up to 1,000 km).
  double urban_speed_kmh = 60.0;    ///< Common roads.
  double highway_speed_kmh = 100.0; ///< Highways (legs > 3 km).
  /// Fraction of legs that are gentle arcs (ring roads, ramps, bends)
  /// rather than straight grid segments; their curvature radius is drawn
  /// from [min_curve_radius_m, max_curve_radius_m].
  double curve_probability = 0.15;
  double min_curve_radius_m = 800.0;
  double max_curve_radius_m = 2500.0;
  double stop_probability = 0.45;   ///< Traffic light at an intersection.
  double max_stop_s = 60.0;
  /// AR(1)-drifting receiver bias + white noise, as in FlyingFoxOptions.
  double gps_drift_m = 2.5;
  double gps_drift_rho = 0.97;
  double gps_white_m = 0.6;
  double area_km = 50.0;            ///< Steering box around the anchor.
  double trip_gap_s = 3600.0;       ///< Parked time between trips.
  uint64_t seed = 9;
};

/// The full multi-trip geographic trace (fixes only while driving).
GeoTrace GenerateVehicleTrace(const VehicleOptions& options);

}  // namespace bqs

#endif  // BQS_SIMULATION_VEHICLE_H_
