// Behavioural simulator standing in for the paper's flying-fox (megabat)
// GPS dataset: five Camazotz-tagged bats tracked for six months around
// Brisbane (Section III-A, VI-A). The model reproduces the dataset's
// compression-relevant statistics: long camp (roost) stays with metre-scale
// GPS jitter, nightly foraging trips of ~10 km at 20-50 km/h, unconstrained
// 3-D flight giving arbitrary heading changes, and 1-fix-per-minute
// sampling. See DESIGN.md for the substitution rationale.
#ifndef BQS_SIMULATION_FLYING_FOX_H_
#define BQS_SIMULATION_FLYING_FOX_H_

#include <cstdint>

#include "trajectory/trajectory.h"

namespace bqs {

/// Parameters of one bat's trace.
struct FlyingFoxOptions {
  int num_nights = 14;               ///< Nights of tracking.
  double sample_interval_s = 60.0;   ///< Paper: 1 GPS fix per minute.
  double camp_lat = -27.4698;        ///< Roost camp (Brisbane).
  double camp_lon = 153.0251;
  double forage_radius_m = 8000.0;   ///< Typical trip reach (~10 km trips).
  double cruise_speed_mps = 9.7;     ///< ~35 km/h.
  double max_speed_mps = 13.9;       ///< ~50 km/h.
  /// Commuting flight is quite direct at the 1-minute fix scale; the wobble
  /// around the goal direction has sd ~ 1/sqrt(kappa) radians per fix.
  double heading_kappa = 2200.0;
  /// GPS error is modelled as a slowly-drifting AR(1) bias (multipath /
  /// ephemeris drift) plus a small white component: consecutive fixes of a
  /// stationary receiver differ by ~1-2 m even though the absolute error
  /// is several metres, matching real stationary GPS scatter.
  double gps_drift_m = 3.0;          ///< Stationary sd of the AR(1) bias.
  double gps_drift_rho = 0.995;      ///< AR(1) coefficient per fix.
  double gps_white_m = 0.6;          ///< White component sd.
  double roost_jitter_m = 2.0;       ///< Movement within the camp tree.
  int forage_sites_min = 1;          ///< Foraging stops per night.
  int forage_sites_max = 3;
  double forage_dwell_min_s = 1200.0;   ///< 20 min..
  double forage_dwell_max_s = 5400.0;   ///< ..90 min per stop.
  double night_hours = 9.0;          ///< Active window per night.
  /// The paper's budget assumes 1 fix/min around the clock; long roost
  /// stays are exactly what makes bat data so compressible (Section VI-C).
  double day_fix_interval_s = 60.0;
  uint64_t seed = 7;
};

/// One bat's geographic trace across `num_nights` nights.
GeoTrace GenerateFlyingFoxTrace(const FlyingFoxOptions& options);

}  // namespace bqs

#endif  // BQS_SIMULATION_FLYING_FOX_H_
