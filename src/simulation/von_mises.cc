#include "simulation/von_mises.h"

#include <cmath>

#include "common/math_utils.h"
#include "geometry/angle.h"

namespace bqs {

double SampleVonMises(Rng& rng, double mu, double kappa) {
  if (kappa < 1e-8) {
    return NormalizeAngle(rng.Uniform(-kPi, kPi) + mu);
  }
  // Best & Fisher (1979) wrapped-Cauchy envelope rejection sampling.
  const double a = 1.0 + std::sqrt(1.0 + 4.0 * kappa * kappa);
  const double b = (a - std::sqrt(2.0 * a)) / (2.0 * kappa);
  const double r = (1.0 + b * b) / (2.0 * b);

  while (true) {
    const double u1 = rng.Uniform(0.0, 1.0);
    const double u2 = rng.Uniform(0.0, 1.0);
    const double z = std::cos(kPi * u1);
    const double f = (1.0 + r * z) / (r + z);
    const double c = kappa * (r - f);
    if (c * (2.0 - c) - u2 > 0.0 ||
        std::log(c / u2) + 1.0 - c >= 0.0) {
      const double u3 = rng.Uniform(0.0, 1.0);
      const double theta = (u3 > 0.5 ? 1.0 : -1.0) *
                           std::acos(Clamp(f, -1.0, 1.0));
      return NormalizeAngle(theta + mu);
    }
  }
}

double BesselI0(double x) {
  // Power series sum_k (x/2)^(2k) / (k!)^2; converges quickly for the
  // kappa range used by the simulators.
  const double half_x = x / 2.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 64; ++k) {
    term *= (half_x / k) * (half_x / k);
    sum += term;
    if (term < 1e-16 * sum) break;
  }
  return sum;
}

double VonMisesPdf(double theta, double mu, double kappa) {
  return std::exp(kappa * std::cos(theta - mu)) /
         (kTwoPi * BesselI0(kappa));
}

}  // namespace bqs
