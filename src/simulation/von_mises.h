// Von Mises circular distribution sampling (Best-Fisher rejection method).
// The paper's synthetic dataset draws turning angles from a von Mises
// distribution (Section VI-A, citing Risken's Fokker-Planck treatment).
#ifndef BQS_SIMULATION_VON_MISES_H_
#define BQS_SIMULATION_VON_MISES_H_

#include "common/rng.h"

namespace bqs {

/// Draws one angle from VonMises(mu, kappa), in (-pi, pi] around mu.
/// kappa = 0 degenerates to the uniform circular distribution; large kappa
/// concentrates tightly around mu (stddev ~ 1/sqrt(kappa)).
double SampleVonMises(Rng& rng, double mu, double kappa);

/// Von Mises density (for tests); I0 is computed by series expansion.
double VonMisesPdf(double theta, double mu, double kappa);

/// Modified Bessel function of the first kind, order zero (series).
double BesselI0(double x);

}  // namespace bqs

#endif  // BQS_SIMULATION_VON_MISES_H_
