#include "simulation/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "simulation/flying_fox.h"
#include "simulation/random_walk.h"
#include "simulation/vehicle.h"

namespace bqs {

namespace {

Trajectory ProjectOrDie(const GeoTrace& trace) {
  auto projected = ProjectTrace(trace, ProjectionKind::kUtm);
  // The simulators keep coordinates well inside UTM validity; a failure
  // here is a programming error, not an input error.
  return projected.ok() ? std::move(projected).value() : Trajectory{};
}

}  // namespace

Dataset BuildBatDataset(double scale, uint64_t seed) {
  const int num_bats = std::max(1, static_cast<int>(std::lround(5 * scale)));
  const int nights =
      std::max(2, static_cast<int>(std::lround(14 * std::sqrt(scale))));
  std::vector<Trajectory> streams;
  streams.reserve(static_cast<std::size_t>(num_bats));
  for (int b = 0; b < num_bats; ++b) {
    FlyingFoxOptions options;
    options.num_nights = nights;
    options.seed = seed + static_cast<uint64_t>(b) * 977;
    // Individual variation between animals.
    options.forage_radius_m = 6000.0 + 1500.0 * b;
    options.heading_kappa = 2000.0 + 250.0 * b;
    streams.push_back(ProjectOrDie(GenerateFlyingFoxTrace(options)));
  }
  return Dataset{"bat", ConcatenateStreams(streams)};
}

Dataset BuildVehicleDataset(double scale, uint64_t seed) {
  VehicleOptions options;
  options.num_trips = std::max(2, static_cast<int>(std::lround(12 * scale)));
  options.seed = seed;
  return Dataset{"vehicle", ProjectOrDie(GenerateVehicleTrace(options))};
}

Dataset BuildSyntheticDataset(double scale, uint64_t seed) {
  RandomWalkOptions options;
  options.num_points = std::max<std::size_t>(
      500, static_cast<std::size_t>(std::lround(30000 * scale)));
  options.seed = seed;
  return Dataset{"synthetic", GenerateRandomWalk(options)};
}

Dataset BuildEmpiricalMergedDataset(double scale, uint64_t seed) {
  Dataset bat = BuildBatDataset(scale, seed);
  Dataset vehicle = BuildVehicleDataset(scale, seed + 1);
  return Dataset{"empirical",
                 ConcatenateStreams({bat.stream, vehicle.stream})};
}

Dataset BuildAdversarialDriftDataset(double scale, double epsilon_hint,
                                     uint64_t seed) {
  const std::size_t n = std::max<std::size_t>(
      2000, static_cast<std::size_t>(std::lround(40000 * scale)));
  Rng rng(seed);
  Trajectory out;
  out.reserve(n);
  // Amplitude a hair under the tolerance keeps the exact deviation in the
  // include range, while the noise keeps the aggregated upper bound above
  // it; the slow phase drift eventually forces a split, so segment length
  // stays in the thousands rather than covering the whole stream.
  const double step = 5.0;
  const double amplitude = 0.93 * epsilon_hint;
  const double noise = 0.06 * epsilon_hint;
  const double period_points = 4000.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        kTwoPi * static_cast<double>(i) / period_points;
    const double x = static_cast<double>(i) * step;
    const double y = amplitude * std::sin(phase) + rng.Normal(0.0, noise);
    out.push_back(TrackPoint{{x, y}, static_cast<double>(i), {step, 0.0}});
  }
  return Dataset{"adversarial_drift", std::move(out)};
}

std::vector<Dataset> BuildAllDatasets(double scale) {
  std::vector<Dataset> out;
  out.push_back(BuildBatDataset(scale));
  out.push_back(BuildVehicleDataset(scale));
  out.push_back(BuildSyntheticDataset(scale));
  return out;
}

}  // namespace bqs
