#include "simulation/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/math_utils.h"
#include "common/rng.h"
#include "simulation/flying_fox.h"
#include "simulation/random_walk.h"
#include "simulation/vehicle.h"

namespace bqs {

namespace {

Trajectory ProjectOrDie(const GeoTrace& trace) {
  auto projected = ProjectTrace(trace, ProjectionKind::kUtm);
  // The simulators keep coordinates well inside UTM validity; a failure
  // here is a programming error, not an input error.
  return projected.ok() ? std::move(projected).value() : Trajectory{};
}

}  // namespace

Dataset BuildBatDataset(double scale, uint64_t seed) {
  const int num_bats = std::max(1, static_cast<int>(std::lround(5 * scale)));
  const int nights =
      std::max(2, static_cast<int>(std::lround(14 * std::sqrt(scale))));
  std::vector<Trajectory> streams;
  streams.reserve(static_cast<std::size_t>(num_bats));
  for (int b = 0; b < num_bats; ++b) {
    FlyingFoxOptions options;
    options.num_nights = nights;
    options.seed = seed + static_cast<uint64_t>(b) * 977;
    // Individual variation between animals.
    options.forage_radius_m = 6000.0 + 1500.0 * b;
    options.heading_kappa = 2000.0 + 250.0 * b;
    streams.push_back(ProjectOrDie(GenerateFlyingFoxTrace(options)));
  }
  return Dataset{"bat", ConcatenateStreams(streams)};
}

Dataset BuildVehicleDataset(double scale, uint64_t seed) {
  VehicleOptions options;
  options.num_trips = std::max(2, static_cast<int>(std::lround(12 * scale)));
  options.seed = seed;
  return Dataset{"vehicle", ProjectOrDie(GenerateVehicleTrace(options))};
}

Dataset BuildSyntheticDataset(double scale, uint64_t seed) {
  RandomWalkOptions options;
  options.num_points = std::max<std::size_t>(
      500, static_cast<std::size_t>(std::lround(30000 * scale)));
  options.seed = seed;
  return Dataset{"synthetic", GenerateRandomWalk(options)};
}

Dataset BuildEmpiricalMergedDataset(double scale, uint64_t seed) {
  Dataset bat = BuildBatDataset(scale, seed);
  Dataset vehicle = BuildVehicleDataset(scale, seed + 1);
  return Dataset{"empirical",
                 ConcatenateStreams({bat.stream, vehicle.stream})};
}

Dataset BuildAdversarialDriftDataset(double scale, double epsilon_hint,
                                     uint64_t seed) {
  const std::size_t n = std::max<std::size_t>(
      2000, static_cast<std::size_t>(std::lround(40000 * scale)));
  Rng rng(seed);
  Trajectory out;
  out.reserve(n);
  // Amplitude a hair under the tolerance keeps the exact deviation in the
  // include range, while the noise keeps the aggregated upper bound above
  // it; the slow phase drift eventually forces a split, so segment length
  // stays in the thousands rather than covering the whole stream.
  const double step = 5.0;
  const double amplitude = 0.93 * epsilon_hint;
  const double noise = 0.06 * epsilon_hint;
  const double period_points = 4000.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase =
        kTwoPi * static_cast<double>(i) / period_points;
    const double x = static_cast<double>(i) * step;
    const double y = amplitude * std::sin(phase) + rng.Normal(0.0, noise);
    out.push_back(TrackPoint{{x, y}, static_cast<double>(i), {step, 0.0}});
  }
  return Dataset{"adversarial_drift", std::move(out)};
}

FleetDataset BuildFleetDataset(std::size_t num_devices, double scale,
                               uint64_t seed) {
  num_devices = std::max<std::size_t>(num_devices, 1);
  const std::size_t points_per_device = std::max<std::size_t>(
      200, static_cast<std::size_t>(std::lround(6000 * scale)));

  FleetDataset out;
  out.name = "fleet";
  out.devices.reserve(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) {
    RandomWalkOptions options;
    options.num_points = points_per_device;
    options.seed = seed + d * 7919;
    // Per-vehicle character: speed, heading persistence and area vary so
    // shards do not get identical work.
    options.speed_mode_mps = 7.0 + 0.8 * static_cast<double>(d % 8);
    options.turn_kappa = 2.0 + 0.5 * static_cast<double>(d % 5);
    options.area_m = 8000.0 + 500.0 * static_cast<double>(d % 4);
    // Sparse, non-sequential ids: shard routing must not depend on ids
    // being dense.
    const DeviceId device = 1000 + 7919 * static_cast<DeviceId>(d);
    out.devices.emplace_back(device, GenerateRandomWalk(options));
  }

  // Weave the per-device streams into one bursty arrival feed: repeatedly
  // pick a random unfinished device and take 1-8 of its next records.
  std::size_t total = 0;
  for (const auto& [device, stream] : out.devices) total += stream.size();
  out.feed.reserve(total);
  std::vector<std::size_t> cursor(num_devices, 0);
  std::vector<std::size_t> unfinished(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) unfinished[d] = d;
  Rng rng(seed ^ 0x5eedf1ee7ULL);
  while (!unfinished.empty()) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int64_t>(unfinished.size()) - 1));
    const std::size_t d = unfinished[pick];
    const auto& [device, stream] = out.devices[d];
    const std::size_t burst = static_cast<std::size_t>(rng.UniformInt(1, 8));
    for (std::size_t b = 0; b < burst && cursor[d] < stream.size(); ++b) {
      out.feed.push_back(FleetRecord{device, stream[cursor[d]++]});
    }
    if (cursor[d] >= stream.size()) {
      unfinished[pick] = unfinished.back();
      unfinished.pop_back();
    }
  }
  return out;
}

std::vector<Dataset> BuildAllDatasets(double scale) {
  std::vector<Dataset> out;
  out.push_back(BuildBatDataset(scale));
  out.push_back(BuildVehicleDataset(scale));
  out.push_back(BuildSyntheticDataset(scale));
  return out;
}

}  // namespace bqs
