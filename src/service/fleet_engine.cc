#include "service/fleet_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fault_injector.h"
#include "storage/compaction.h"
#include "storage/keypoint_wal.h"

namespace bqs {

namespace {

/// splitmix64 finalizer: device ids are often sequential, so shard
/// assignment needs a real mixer, not `id % shards`.
uint64_t MixDeviceId(DeviceId device) {
  uint64_t x = device + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void AccumulateDecisionStats(DecisionStats& into, const DecisionStats& s) {
  into.points += s.points;
  into.trivial_includes += s.trivial_includes;
  into.warmup_checks += s.warmup_checks;
  into.upper_bound_includes += s.upper_bound_includes;
  into.lower_bound_splits += s.lower_bound_splits;
  into.exact_computations += s.exact_computations;
  into.exact_includes += s.exact_includes;
  into.exact_splits += s.exact_splits;
  into.uncertain_splits += s.uncertain_splits;
  into.segments += s.segments;
  into.exact_points_scanned += s.exact_points_scanned;
  into.peak_exact_state = std::max(into.peak_exact_state, s.peak_exact_state);
  into.kernel_fallbacks += s.kernel_fallbacks;
}

FleetEngine::FleetEngine(const FleetEngineOptions& options, FleetSink& sink)
    : options_(options), sink_(sink), factory_(options.algorithm) {
  // The single-shard shortcut: one worker cannot outrun the caller doing
  // the work itself (it only adds a copy, a handoff and a cache round
  // trip), so num_shards <= 1 runs inline. Threads start at 2 shards.
  inline_ = options_.num_shards <= 1;
  const std::size_t shard_count = inline_ ? 1 : options_.num_shards;
  options_.block_capacity = std::clamp<std::size_t>(
      options_.block_capacity, 16, std::size_t{1} << 20);
  options_.max_pending_blocks =
      std::max<std::size_t>(options_.max_pending_blocks, 1);
  options_.wal_checkpoint_points =
      std::max<std::size_t>(options_.wal_checkpoint_points, 1);
  eager_accounting_ = options_.memory_budget_bytes > 0;
  if (eager_accounting_) {
    per_shard_budget_ = std::max<std::size_t>(
        options_.memory_budget_bytes / shard_count, 1);
  }
  // Shedding is a property of the producer->worker handoff; inline mode
  // has no queue to overflow, so the policy only engages when sharded.
  shedding_ = !inline_ && options_.overload.policy != OverloadPolicy::kBlock;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        sink_, options_.block_capacity, options_.max_pending_blocks));
  }
  if (!inline_) {
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
    }
  }
}

FleetEngine::~FleetEngine() {
  // Records already handed to IngestBatch still get compressed: seal the
  // partial blocks, then let the rings drain before the workers exit.
  SealAll();
  for (auto& shard : shards_) shard->ring.Stop();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t FleetEngine::ShardOf(DeviceId device) const {
  return static_cast<std::size_t>(MixDeviceId(device) % shards_.size());
}

void FleetEngine::Enqueue(Shard& shard, ShardCommand cmd) {
  if (!shard.ring.Push(cmd)) return;  // stopped (destructor teardown only)
  ++shard.enqueued;
  shard.peak_depth = std::max(shard.peak_depth, shard.ring.size());
}

void FleetEngine::Seal(Shard& shard) {
  if (shard.filling == nullptr || shard.filling->empty()) return;
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kBlock;
  cmd.block = shard.filling;
  shard.filling = nullptr;
  ++shard.blocks_dispatched;
  Enqueue(shard, cmd);
}

void FleetEngine::SealAll() {
  for (auto& shard : shards_) {
    AssumeProducer(*shard);  // single-producer API contract
    Seal(*shard);
  }
}

void FleetEngine::IngestBatch(std::span<const FleetRecord> records) {
  if (records.empty()) return;
  if (!factory_.streaming()) {
    records_dropped_ += records.size();
    return;
  }
  if (inline_) {
    InlineDispatch(records);
  } else {
    RouteSharded(records);
  }
}

void FleetEngine::RouteSharded(std::span<const FleetRecord> records) {
  // Single-producer API contract: this thread owns every shard's routing
  // side (record->shard assignment is dynamic, so assert them all once).
  for (auto& shard : shards_) AssumeProducer(*shard);
  const std::size_t cap = options_.block_capacity;
  FaultInjector* const injector = options_.fault_injector;
  // One deadline per IngestBatch: every seal this batch triggers shares
  // it, so the caller's worst-case latency is one budget, not one per
  // seal. Taken lazily — the clock read is paid only by shed configs.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
  if (shedding_ && options_.overload.latency_budget_ms > 0.0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(static_cast<int64_t>(
                   options_.overload.latency_budget_ms * 1000.0));
    has_deadline = true;
  }
  batch_shed_ = false;
  for (const FleetRecord& record : records) {
    Shard& shard = *shards_[ShardOf(record.device)];
    if (shard.filling == nullptr) {
      if (injector != nullptr &&
          injector->ShouldFire(FaultSite::kArenaExhausted)) {
        ++shard.shed.faults;
        if (shedding_) {
          // Denied a block: the triggering record is shed, accounted as
          // arena exhaustion. Under kBlock the fault is counted only (a
          // real allocator would block or die, neither useful in a test).
          ++shard.shed.records;
          ++shard.shed.arena;
          batch_shed_ = true;
          continue;
        }
      }
      shard.filling = shard.arena.Acquire();
    }
    shard.filling->Append(record.device, record.point);
    if (shard.filling->size() >= cap) {
      if (shedding_) {
        SealForIngest(shard, deadline, has_deadline);
      } else {
        if (injector != nullptr &&
            injector->ShouldFire(FaultSite::kRingFull)) {
          ++shard.shed.faults;  // kBlock: counted, behavior unchanged
        }
        Seal(shard);
      }
    }
  }
  if (batch_shed_) ++shed_batches_;
}

void FleetEngine::SealForIngest(
    Shard& shard, std::chrono::steady_clock::time_point deadline,
    bool has_deadline) {
  if (shard.filling == nullptr || shard.filling->empty()) return;
  RecordBlock* const block = shard.filling;
  // A fired kRingFull fault makes the ring look full without waiting for
  // the worker to actually fall behind — the deterministic trigger the
  // shed tests replay from a seed.
  bool synthetic_full = false;
  if (FaultInjector* const injector = options_.fault_injector) {
    if (injector->ShouldFire(FaultSite::kRingFull)) {
      ++shard.shed.faults;
      synthetic_full = true;
    }
  }
  bool pushed = false;
  if (!synthetic_full) {
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::kBlock;
    cmd.block = block;
    pushed = has_deadline ? shard.ring.PushUntil(cmd, deadline)
                          : shard.ring.TryPush(cmd);
  }
  if (pushed) {
    shard.filling = nullptr;
    ++shard.blocks_dispatched;
    ++shard.enqueued;
    shard.peak_depth = std::max(shard.peak_depth, shard.ring.size());
    return;
  }
  if (shard.ring.stopped()) return;  // destructor teardown; keep the block
  // Ring still full past the budget: shed. kShedByDevice first compacts
  // the block through the token buckets — over-rate (hot) devices lose
  // their over-rate suffix, everyone else's records survive in place and
  // re-queue with the block's next seal. Only when compaction removes
  // nothing (no device over rate: the worker is simply behind) does the
  // block shed whole, like kShedNewest.
  if (options_.overload.policy == OverloadPolicy::kShedByDevice &&
      options_.overload.device_rate_per_second > 0.0) {
    if (CompactByDevice(shard)) {
      batch_shed_ = true;
      return;  // survivors stay as shard.filling
    }
  }
  const uint64_t count = static_cast<uint64_t>(block->size());
  shard.shed.records += count;
  if (has_deadline) {
    shard.shed.latency += count;
  } else {
    shard.shed.ring_full += count;
  }
  batch_shed_ = true;
  block->Clear();  // stays acquired as shard.filling, capacity reused
}

bool FleetEngine::CompactByDevice(Shard& shard) {
  RecordBlock& block = *shard.filling;
  const double rate = options_.overload.device_rate_per_second;
  double burst = options_.overload.device_burst;
  if (burst <= 0.0) burst = std::max(rate * 2.0, 1.0);
  const uint64_t seed = options_.overload.shed_seed;
  std::vector<TrackPoint>& points = block.points;
  shard.run_scratch.clear();
  std::size_t read = 0;
  std::size_t write = 0;
  uint64_t shed = 0;
  for (const DeviceRun& run : block.runs) {
    DeviceTokenBucket& bucket = shard.buckets[run.device];
    // Refill on the run's newest stream time; the grant is a pure
    // function of (seed, feed, configuration) — wall-clock never enters.
    const double t = points[read + run.count - 1].t;
    const uint64_t salt =
        seed ^ MixDeviceId(run.device) ^ (shard.shed_events++);
    const uint32_t keep = bucket.Grant(t, run.count, rate, burst, salt);
    // Keep the run's oldest `keep` records (per-device order preserved).
    for (uint32_t k = 0; k < keep; ++k) points[write + k] = points[read + k];
    if (keep > 0) {
      if (!shard.run_scratch.empty() &&
          shard.run_scratch.back().device == run.device) {
        shard.run_scratch.back().count += keep;
      } else {
        shard.run_scratch.push_back(DeviceRun{run.device, keep});
      }
    }
    shed += run.count - keep;
    write += keep;
    read += run.count;
  }
  if (shed == 0) return false;
  points.resize(write);
  block.runs.swap(shard.run_scratch);
  shard.shed.records += shed;
  shard.shed.rate_limited += shed;
  return true;
}

void FleetEngine::InlineDispatch(std::span<const FleetRecord> records) {
  Shard& shard = *shards_[0];
  // Inline mode: no worker thread exists, so the caller holds both sides.
  AssumeProducer(shard);
  AssumeWorker(shard);

  // Staging-free fast path: a batch that is one single-device run (the
  // per-device upload shape) dispatches from the caller's buffer through
  // the PushRunTo span hook — no grouping, no blocks, just the one
  // strided gather into a reused scratch that any dispatch pays. Nothing
  // is ever pending here: inline mode flushes before returning, so the
  // grouped state is empty at every InlineDispatch entry.
  const DeviceId first_device = records.front().device;
  {
    std::size_t j = 1;
    while (j < records.size() && records[j].device == first_device) ++j;
    if (j == records.size()) {
      Session& session = SessionFor(shard, first_device);
      shard.sink.set_device(first_device);
      shard.sink.set_stage(
          options_.wal != nullptr ? &session.staged : nullptr);
      session.compressor->PushRunTo(records, shard.gather, shard.sink);
      ++shard.counters.coalesced_runs;
      shard.counters.records_ingested += records.size();
      shard.counters.max_device_backlog =
          std::max(shard.counters.max_device_backlog, records.size());
      AfterRun(shard, session, first_device, records.back().point.t);
      MaybeInjectEvict(shard, first_device);
      if (options_.idle_timeout_seconds > 0.0) CloseIdleSessions(shard);
      return;
    }
  }

  // Grouped routing: append each maximal same-device run to the device's
  // window group (DeviceSlotMap lookup once per run, not per record), so a
  // device scattered across hundreds of short bursts reaches the
  // compressor as one PushBatch per window instead of one per burst.
  // Interleaving across devices is reordered inside a window; per-device
  // record order — the only order FleetSink guarantees — is preserved.
  const std::size_t window = options_.block_capacity;
  std::size_t pending = 0;  ///< Records accumulated in the current window.
  std::size_t i = 0;
  while (i < records.size()) {
    const DeviceId device = records[i].device;
    std::size_t j = i + 1;
    while (j < records.size() && records[j].device == device) ++j;
    std::vector<TrackPoint>& points =
        GroupFor(shard, device)->points;
    for (std::size_t k = i; k < j; ++k) points.push_back(records[k].point);
    pending += j - i;
    i = j;
    if (pending >= window) {
      FlushInlineGroups(shard);
      pending = 0;
    }
  }
  // Inline mode never defers work past the IngestBatch that delivered it.
  FlushInlineGroups(shard);
}

void FleetEngine::FlushInlineGroups(Shard& shard) {
  DispatchGroups(shard);
  if (options_.idle_timeout_seconds > 0.0) CloseIdleSessions(shard);
}

void FleetEngine::Ingest(DeviceId device, const TrackPoint& pt) {
  const FleetRecord record{device, pt};
  IngestBatch(std::span<const FleetRecord>(&record, 1));
}

void FleetEngine::FinishDevice(DeviceId device) {
  if (!factory_.streaming()) return;  // no sessions can exist
  Shard& shard = *shards_[ShardOf(device)];
  if (inline_) {
    AssumeWorker(shard);  // inline mode: the caller is the worker
    if (shard.sessions.contains(device)) {
      CloseSession(shard, device, SessionEndReason::kFinished);
    }
    return;
  }
  AssumeProducer(shard);  // single-producer API contract
  // Pending records for the device must compress before the finish does.
  Seal(shard);
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kFinishDevice;
  cmd.device = device;
  Enqueue(shard, cmd);
}

void FleetEngine::FinishAll() {
  if (!factory_.streaming()) return;
  SealAll();
  if (inline_) {
    Shard& shard = *shards_[0];
    AssumeWorker(shard);  // inline mode: the caller is the worker
    shard.device_scratch.clear();
    for (const auto& [device, session] : shard.sessions) {
      (void)session;
      shard.device_scratch.push_back(device);
    }
    for (const DeviceId device : shard.device_scratch) {
      CloseSession(shard, device, SessionEndReason::kFinished);
    }
    return;
  }
  for (auto& shard : shards_) {
    AssumeProducer(*shard);  // single-producer API contract
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::kFinishAll;
    Enqueue(*shard, cmd);
  }
  Flush();
}

void FleetEngine::Flush() {
  SealAll();
  for (auto& shard : shards_) WaitIdle(*shard);
}

void FleetEngine::WaitIdle(Shard& shard) {
  if (inline_) return;  // the caller already holds the worker side
  const uint64_t target = shard.enqueued;
  if (shard.completed.load(std::memory_order_acquire) >= target) return;
  MutexLock lock(shard.idle_mu);
  shard.caller_waiting.store(true, std::memory_order_seq_cst);
  shard.cv_idle.wait(lock.native(), [&] {
    return shard.completed.load(std::memory_order_seq_cst) >= target;
  });
  shard.caller_waiting.store(false, std::memory_order_relaxed);
}

FleetStats FleetEngine::Stats() {
  SealAll();
  FleetStats total;
  total.records_dropped = records_dropped_;
  total.shed_batches = shed_batches_;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    AssumeProducer(shard);  // single-producer API contract
    WaitIdle(shard);        // grants shard.worker_role (idle protocol)
    // The shard is drained: the seq_cst completed==enqueued read makes the
    // worker's writes visible and — with the single-producer API keeping
    // new work out — exclusive to this thread until the next Enqueue.
    if (!eager_accounting_) {
      // Lazy accounting: the run fast path skipped StateBytes entirely, so
      // compute the live footprint here, where it is actually asked for.
      std::size_t live = 0;
      for (const auto& [device, session] : shard.sessions) {
        (void)device;
        live += kSessionBaseBytes + session.compressor->StateBytes();
      }
      shard.state_bytes = live;
      shard.counters.peak_state_bytes =
          std::max(shard.counters.peak_state_bytes,
                   shard.state_bytes + shard.pool_bytes);
    }
    const FleetStats& c = shard.counters;
    total.records_ingested += c.records_ingested;
    total.key_points_emitted += shard.sink.emitted();
    total.sessions_opened += c.sessions_opened;
    total.sessions_finished += c.sessions_finished;
    total.sessions_evicted += c.sessions_evicted;
    total.sessions_idled += c.sessions_idled;
    total.sessions_recycled += c.sessions_recycled;
    total.coalesced_runs += c.coalesced_runs;
    total.blocks_dispatched += shard.blocks_dispatched;
    total.blocks_allocated += shard.arena.allocated();
    total.blocks_recycled += shard.arena.recycled();
    total.worker_wakes += shard.ring.consumer_waits();
    total.backpressure_waits += shard.ring.producer_waits();
    total.peak_queue_depth = std::max(total.peak_queue_depth,
                                      shard.peak_depth);
    total.live_sessions += shard.sessions.size();
    total.state_bytes += shard.state_bytes;
    total.pooled_bytes += shard.pool_bytes;
    total.peak_state_bytes += c.peak_state_bytes;
    total.records_shed += shard.shed.records;
    total.shed_ring_full += shard.shed.ring_full;
    total.shed_latency += shard.shed.latency;
    total.shed_rate_limited += shard.shed.rate_limited;
    total.shed_arena += shard.shed.arena;
    total.sessions_degraded += c.sessions_degraded;
    total.sessions_recovered += c.sessions_recovered;
    total.wal_checkpoints += c.wal_checkpoints;
    total.wal_points += c.wal_points;
    total.wal_append_failures += c.wal_append_failures;
    total.wal_failures_io += c.wal_failures_io;
    total.wal_failures_writer_dead += c.wal_failures_writer_dead;
    total.faults_injected += shard.shed.faults + c.faults_injected;
    total.max_error_bound = std::max(total.max_error_bound,
                                     c.max_error_bound);
    total.max_device_backlog = std::max(total.max_device_backlog,
                                        c.max_device_backlog);
    AccumulateDecisionStats(total.decisions, c.decisions);
    for (const auto& [device, session] : shard.sessions) {
      (void)device;
      if (const DecisionStats* s = session.compressor->decision_stats()) {
        AccumulateDecisionStats(total.decisions, *s);
      }
      if (session.eps_level > 0) ++total.degraded_sessions;
      total.max_error_bound = std::max(total.max_error_bound,
                                       session.compressor->ErrorBound());
      if (shard.has_stream_t) {
        total.max_session_age_seconds =
            std::max(total.max_session_age_seconds,
                     shard.max_stream_t - session.last_t);
      }
    }
  }
  total.compaction_runs = compaction_runs_;
  total.compaction_failures = compaction_failures_;
  if (options_.wal != nullptr) {
    total.storage_healthy = !options_.wal->dead();
    if (options_.compactor != nullptr && options_.compactor->degraded()) {
      total.storage_healthy = false;
    }
  }
  return total;
}

void FleetEngine::CheckpointWal() {
  if (options_.wal == nullptr) return;
  SealAll();
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    AssumeProducer(shard);  // single-producer API contract
    WaitIdle(shard);        // grants shard.worker_role (idle protocol)
    for (auto& [device, session] : shard.sessions) {
      CheckpointSession(shard, device, session);
    }
  }
  // The checkpoint barrier is the compaction trigger: every staged point
  // is in the WAL now, so draining sealed segments into blocks moves a
  // maximal prefix. Skipped outright when degraded — WAL-only mode; the
  // error already lives in the compactor's stats and storage_healthy.
  if (options_.compactor != nullptr && !options_.compactor->degraded()) {
    const Status st =
        options_.compactor->CompactOnce(options_.wal->current_segment_index());
    if (st.ok()) {
      ++compaction_runs_;
    } else {
      ++compaction_failures_;
    }
  }
}

void FleetEngine::WorkerLoop(Shard& shard) {
  // This thread IS the shard's worker for the engine's whole lifetime.
  AssumeWorker(shard);
  FaultInjector* const injector = options_.fault_injector;
  ShardCommand cmd;
  while (shard.ring.Pop(cmd)) {
    if (injector != nullptr &&
        injector->ShouldFire(FaultSite::kWorkerStall)) {
      // The deterministic worker-outage: park until the test releases the
      // gate. Commands queue behind the stall exactly as they would behind
      // a descheduled or wedged worker thread.
      ++shard.counters.faults_injected;
      injector->WaitStallReleased();
    }
    switch (cmd.kind) {
      case ShardCommand::Kind::kBlock:
        ProcessBlock(shard, *cmd.block);
        shard.arena.Release(cmd.block);
        break;
      case ShardCommand::Kind::kFinishDevice:
        if (shard.sessions.contains(cmd.device)) {
          CloseSession(shard, cmd.device, SessionEndReason::kFinished);
        }
        break;
      case ShardCommand::Kind::kFinishAll:
        shard.device_scratch.clear();
        for (const auto& [device, session] : shard.sessions) {
          (void)session;
          shard.device_scratch.push_back(device);
        }
        for (const DeviceId device : shard.device_scratch) {
          CloseSession(shard, device, SessionEndReason::kFinished);
        }
        break;
    }
    shard.completed.fetch_add(1, std::memory_order_seq_cst);
    if (shard.caller_waiting.load(std::memory_order_seq_cst)) {
      MutexLock lock(shard.idle_mu);
      shard.cv_idle.notify_all();
    }
  }
}

void FleetEngine::ProcessBlock(Shard& shard, const RecordBlock& block) {
  const TrackPoint* points = block.points.data();
  if (block.runs.size() == 1) {
    // Single-device block: dispatch straight from block memory, no regroup.
    DispatchRun(shard, block.runs[0].device,
                std::span<const TrackPoint>(points, block.runs[0].count));
  } else {
    // Regroup the block's runs per device (one window per block): the
    // extra memmove per point buys one PushBatch per device instead of
    // one per burst — the same trade the inline router makes.
    for (const DeviceRun& run : block.runs) {
      std::vector<TrackPoint>& pts = GroupFor(shard, run.device)->points;
      pts.insert(pts.end(), points, points + run.count);
      points += run.count;
    }
    DispatchGroups(shard);
  }
  if (options_.idle_timeout_seconds > 0.0) CloseIdleSessions(shard);
}

RouteGroup* FleetEngine::GroupFor(Shard& shard, DeviceId device) {
  uint32_t slot = shard.group_of_device.Lookup(device);
  if (slot == DeviceSlotMap::kAbsent) {
    slot = static_cast<uint32_t>(shard.used_groups.size());
    if (shard.groups.size() <= slot) shard.groups.emplace_back();
    shard.groups[slot].device = device;
    shard.used_groups.push_back(slot);
    shard.group_of_device.Bind(device, slot);
  }
  return &shard.groups[slot];
}

void FleetEngine::DispatchGroups(Shard& shard) {
  if (shard.used_groups.empty()) return;
  for (const uint32_t slot : shard.used_groups) {
    RouteGroup& group = shard.groups[slot];
    DispatchRun(shard, group.device,
                std::span<const TrackPoint>(group.points));
    group.points.clear();
  }
  shard.used_groups.clear();
  shard.group_of_device.NewWindow();
}

void FleetEngine::DispatchRun(Shard& shard, DeviceId device,
                              std::span<const TrackPoint> points) {
  Session& session = SessionFor(shard, device);
  shard.sink.set_device(device);
  shard.sink.set_stage(options_.wal != nullptr ? &session.staged : nullptr);
  session.compressor->PushBatchTo(points, shard.sink);
  ++shard.counters.coalesced_runs;
  shard.counters.records_ingested += points.size();
  shard.counters.max_device_backlog =
      std::max(shard.counters.max_device_backlog, points.size());
  AfterRun(shard, session, device, points.back().t);
  MaybeInjectEvict(shard, device);  // `session` may dangle past this call
}

void FleetEngine::MaybeInjectEvict(Shard& shard, DeviceId device) {
  FaultInjector* const injector = options_.fault_injector;
  if (injector == nullptr) return;
  if (!injector->ShouldFire(FaultSite::kMidBatchEvict)) return;
  ++shard.counters.faults_injected;
  if (shard.sessions.contains(device)) {
    CloseSession(shard, device, SessionEndReason::kEvicted);
  }
}

FleetEngine::Session& FleetEngine::SessionFor(Shard& shard, DeviceId device) {
  auto it = shard.sessions.find(device);
  if (it != shard.sessions.end()) return it->second;
  Session session;
  if (!shard.pool.empty()) {
    session.compressor = std::move(shard.pool.back());
    shard.pool.pop_back();
    // The unit's heap charge moves from the pool back to its session.
    shard.pool_bytes -= session.compressor->StateBytes();
    session.compressor->Reset();
    ++shard.counters.sessions_recycled;
  } else {
    session.compressor = factory_.Make();
  }
  ++shard.counters.sessions_opened;
  if (eager_accounting_) {
    session.accounted_bytes =
        kSessionBaseBytes + session.compressor->StateBytes();
    shard.state_bytes += session.accounted_bytes;
    shard.counters.peak_state_bytes = std::max(
        shard.counters.peak_state_bytes,
        shard.state_bytes + shard.pool_bytes);
  }
  return shard.sessions.emplace(device, std::move(session)).first->second;
}

void FleetEngine::AfterRun(Shard& shard, Session& session, DeviceId device,
                           double last_t) {
  // Maintained unconditionally (two stores and a compare) so the
  // session-age watermark in Stats() works without the idle machinery.
  session.last_t = last_t;
  NoteStreamTime(shard, last_t);
  if (options_.wal != nullptr &&
      session.staged.size() >= options_.wal_checkpoint_points) {
    CheckpointSession(shard, device, session);
  }
  if (!eager_accounting_) return;  // the lazy fast path: no StateBytes calls
  if (session.last_active != 0) shard.lru.erase(session.last_active);
  session.last_active = ++shard.activity_clock;
  shard.lru.emplace(session.last_active, device);
  const std::size_t now_bytes =
      kSessionBaseBytes + session.compressor->StateBytes();
  shard.state_bytes = shard.state_bytes - session.accounted_bytes + now_bytes;
  session.accounted_bytes = now_bytes;
  shard.counters.peak_state_bytes =
      std::max(shard.counters.peak_state_bytes,
               shard.state_bytes + shard.pool_bytes);
  // Recovery half of the eps ladder: once pressure clears the hysteresis
  // headroom, a degraded session steps one rung back down at its next
  // block boundary (here), re-tightening the reported bound.
  if (session.eps_level > 0 &&
      shard.state_bytes + shard.pool_bytes <
          static_cast<std::size_t>(
              options_.overload.recover_headroom *
              static_cast<double>(per_shard_budget_))) {
    ReseatSession(shard, device, session, session.eps_level - 1);
  }
  EnforceBudget(shard);
}

void FleetEngine::NoteStreamTime(Shard& shard, double t) {
  if (!shard.has_stream_t || t > shard.max_stream_t) {
    shard.max_stream_t = t;
    shard.has_stream_t = true;
  }
}

void FleetEngine::CloseSession(Shard& shard, DeviceId device,
                               SessionEndReason reason) {
  auto it = shard.sessions.find(device);
  Session& session = it->second;
  shard.sink.set_device(device);
  shard.sink.set_stage(options_.wal != nullptr ? &session.staged : nullptr);
  session.compressor->FinishTo(shard.sink);
  // The closing key points are staged now: make the whole session durable
  // before it disappears. Every close reason takes this path, so finish,
  // idle sweep and memory eviction all checkpoint.
  CheckpointSession(shard, device, session);
  shard.sink.set_stage(nullptr);  // the staging buffer dies with `session`
  if (const DecisionStats* stats = session.compressor->decision_stats()) {
    AccumulateDecisionStats(shard.counters.decisions, *stats);
  }
  shard.counters.max_error_bound = std::max(
      shard.counters.max_error_bound, session.compressor->ErrorBound());
  sink_.OnSessionEnd(device, reason);
  switch (reason) {
    case SessionEndReason::kFinished:
      ++shard.counters.sessions_finished;
      break;
    case SessionEndReason::kEvicted:
      ++shard.counters.sessions_evicted;
      break;
    case SessionEndReason::kIdle:
      ++shard.counters.sessions_idled;
      break;
  }
  if (eager_accounting_) {
    shard.state_bytes -= session.accounted_bytes;
    if (session.last_active != 0) shard.lru.erase(session.last_active);
  }
  // Recycled compressors keep their heap capacity across Reset(), so a
  // pooled unit still costs real memory: charge it to pool_bytes (counted
  // against the budget), and never pool past the budget — idle sweeps and
  // FinishAll close sessions outside EnforceBudget, so the cap must hold
  // here, at the only point the pool grows. Memory evictions exist to give
  // memory back, so those compressors are destroyed instead of pooled.
  // Degraded sessions (eps_level > 0) run a compressor minted at a scaled
  // epsilon; pooling one would poison recycling (Reset keeps the scaled
  // options), so they are destroyed too.
  const std::size_t unit_bytes = session.compressor->StateBytes();
  const bool fits_budget =
      !eager_accounting_ ||
      shard.state_bytes + shard.pool_bytes + unit_bytes <= per_shard_budget_;
  if (reason != SessionEndReason::kEvicted && session.eps_level == 0 &&
      fits_budget &&
      shard.pool.size() < options_.max_pooled_compressors) {
    shard.pool_bytes += unit_bytes;
    shard.pool.push_back(std::move(session.compressor));
  }
  shard.sessions.erase(it);
}

void FleetEngine::CheckpointSession(Shard& shard, DeviceId device,
                                    Session& session) {
  if (options_.wal == nullptr || session.staged.empty()) return;
  const bool was_dead = options_.wal->dead();
  const Result<WalAppendAck> ack =
      options_.wal->Append(device, session.staged);
  if (ack.ok()) {
    ++shard.counters.wal_checkpoints;
    shard.counters.wal_points += session.staged.size();
  } else {
    // The WAL refused (typically its fsync gate tripped). The points were
    // already delivered to the sink — the log just has a hole, which the
    // failure counter reports. Dropping the staged batch instead of
    // retrying keeps a dead WAL from turning into per-run overhead. The
    // reason split: the append that hit the error itself vs refusals by a
    // writer already known dead.
    ++shard.counters.wal_append_failures;
    if (was_dead) {
      ++shard.counters.wal_failures_writer_dead;
    } else {
      ++shard.counters.wal_failures_io;
    }
  }
  session.staged.clear();
}

void FleetEngine::EnforceBudget(Shard& shard) {
  // Cheapest memory first: pooled compressors hold heap but no stream
  // state, so they are dropped before any live session is cut short.
  while (shard.state_bytes + shard.pool_bytes > per_shard_budget_ &&
         !shard.pool.empty()) {
    shard.pool_bytes -= shard.pool.back()->StateBytes();
    shard.pool.pop_back();
  }
  // Second resort, when an eps ladder is configured: degrade instead of
  // drop. Sessions step up the ladder breadth-first in LRU order — every
  // session reaches rung k before any reaches k+1 — each step closing the
  // open segment under the old bound and re-minting the compressor at the
  // widened epsilon (freeing its accumulated heap). Data keeps flowing at
  // reduced fidelity; eviction below remains the backstop once the whole
  // shard sits at the top rung.
  const std::vector<double>& ladder = options_.overload.eps_ladder;
  if (!ladder.empty()) {
    for (uint32_t rung = 1;
         rung <= ladder.size() &&
         shard.state_bytes + shard.pool_bytes > per_shard_budget_;
         ++rung) {
      for (auto it = shard.lru.begin();
           it != shard.lru.end() &&
           shard.state_bytes + shard.pool_bytes > per_shard_budget_;
           ++it) {
        const DeviceId device = it->second;
        Session& session = shard.sessions.find(device)->second;
        if (session.eps_level < rung) {
          ReseatSession(shard, device, session, rung);
        }
      }
    }
  }
  while (shard.state_bytes + shard.pool_bytes > per_shard_budget_ &&
         !shard.sessions.empty()) {
    CloseSession(shard, shard.lru.begin()->second,
                 SessionEndReason::kEvicted);
  }
}

void FleetEngine::ReseatSession(Shard& shard, DeviceId device,
                                Session& session, uint32_t level) {
  // Segment-boundary hand-off: the closing key point emitted here honors
  // the *current* bound, so everything already emitted keeps its
  // guarantee; the stream then continues on a compressor minted at the
  // new rung's epsilon. The old compressor is destroyed outright — this
  // is the step that actually returns heap to the budget.
  shard.sink.set_device(device);
  shard.sink.set_stage(options_.wal != nullptr ? &session.staged : nullptr);
  session.compressor->FinishTo(shard.sink);
  // A reseat closes the compressed segment under the old bound — a
  // durability edge like any close: checkpoint what the old compressor
  // emitted before the stream continues under the new epsilon.
  CheckpointSession(shard, device, session);
  if (const DecisionStats* stats = session.compressor->decision_stats()) {
    AccumulateDecisionStats(shard.counters.decisions, *stats);
  }
  const double scale =
      level == 0 ? 1.0 : options_.overload.eps_ladder[level - 1];
  session.compressor = factory_.MakeScaled(scale);
  if (level > session.eps_level) {
    ++shard.counters.sessions_degraded;
  } else {
    ++shard.counters.sessions_recovered;
  }
  session.eps_level = level;
  const double bound = session.compressor->ErrorBound();
  shard.counters.max_error_bound =
      std::max(shard.counters.max_error_bound, bound);
  sink_.OnErrorBoundChanged(device, bound);
  const std::size_t now_bytes =
      kSessionBaseBytes + session.compressor->StateBytes();
  shard.state_bytes = shard.state_bytes - session.accounted_bytes + now_bytes;
  session.accounted_bytes = now_bytes;
  shard.counters.peak_state_bytes =
      std::max(shard.counters.peak_state_bytes,
               shard.state_bytes + shard.pool_bytes);
}

void FleetEngine::CloseIdleSessions(Shard& shard) {
  if (!shard.has_stream_t) return;
  const double cutoff = shard.max_stream_t - options_.idle_timeout_seconds;
  shard.device_scratch.clear();
  for (const auto& [device, session] : shard.sessions) {
    if (session.last_t < cutoff) shard.device_scratch.push_back(device);
  }
  for (const DeviceId device : shard.device_scratch) {
    CloseSession(shard, device, SessionEndReason::kIdle);
  }
}

}  // namespace bqs
