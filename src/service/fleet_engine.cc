#include "service/fleet_engine.h"

#include <algorithm>
#include <utility>

namespace bqs {

namespace {

/// splitmix64 finalizer: device ids are often sequential, so shard
/// assignment needs a real mixer, not `id % shards`.
uint64_t MixDeviceId(DeviceId device) {
  uint64_t x = device + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void AccumulateDecisionStats(DecisionStats& into, const DecisionStats& s) {
  into.points += s.points;
  into.trivial_includes += s.trivial_includes;
  into.warmup_checks += s.warmup_checks;
  into.upper_bound_includes += s.upper_bound_includes;
  into.lower_bound_splits += s.lower_bound_splits;
  into.exact_computations += s.exact_computations;
  into.exact_includes += s.exact_includes;
  into.exact_splits += s.exact_splits;
  into.uncertain_splits += s.uncertain_splits;
  into.segments += s.segments;
  into.exact_points_scanned += s.exact_points_scanned;
  into.peak_exact_state = std::max(into.peak_exact_state, s.peak_exact_state);
  into.kernel_fallbacks += s.kernel_fallbacks;
}

FleetEngine::FleetEngine(const FleetEngineOptions& options, FleetSink& sink)
    : options_(options), sink_(sink), factory_(options.algorithm) {
  // The single-shard shortcut: one worker cannot outrun the caller doing
  // the work itself (it only adds a copy, a handoff and a cache round
  // trip), so num_shards <= 1 runs inline. Threads start at 2 shards.
  inline_ = options_.num_shards <= 1;
  const std::size_t shard_count = inline_ ? 1 : options_.num_shards;
  options_.block_capacity = std::clamp<std::size_t>(
      options_.block_capacity, 16, std::size_t{1} << 20);
  options_.max_pending_blocks =
      std::max<std::size_t>(options_.max_pending_blocks, 1);
  eager_accounting_ = options_.memory_budget_bytes > 0;
  if (eager_accounting_) {
    per_shard_budget_ = std::max<std::size_t>(
        options_.memory_budget_bytes / shard_count, 1);
  }
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        sink_, options_.block_capacity, options_.max_pending_blocks));
  }
  if (!inline_) {
    for (auto& shard : shards_) {
      shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
    }
  }
}

FleetEngine::~FleetEngine() {
  // Records already handed to IngestBatch still get compressed: seal the
  // partial blocks, then let the rings drain before the workers exit.
  SealAll();
  for (auto& shard : shards_) shard->ring.Stop();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t FleetEngine::ShardOf(DeviceId device) const {
  return static_cast<std::size_t>(MixDeviceId(device) % shards_.size());
}

void FleetEngine::Enqueue(Shard& shard, ShardCommand cmd) {
  if (!shard.ring.Push(cmd)) return;  // stopped (destructor teardown only)
  ++shard.enqueued;
  shard.peak_depth = std::max(shard.peak_depth, shard.ring.size());
}

void FleetEngine::Seal(Shard& shard) {
  if (shard.filling == nullptr || shard.filling->empty()) return;
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kBlock;
  cmd.block = shard.filling;
  shard.filling = nullptr;
  ++shard.blocks_dispatched;
  Enqueue(shard, cmd);
}

void FleetEngine::SealAll() {
  for (auto& shard : shards_) {
    AssumeProducer(*shard);  // single-producer API contract
    Seal(*shard);
  }
}

void FleetEngine::IngestBatch(std::span<const FleetRecord> records) {
  if (records.empty()) return;
  if (!factory_.streaming()) {
    records_dropped_ += records.size();
    return;
  }
  if (inline_) {
    InlineDispatch(records);
  } else {
    RouteSharded(records);
  }
}

void FleetEngine::RouteSharded(std::span<const FleetRecord> records) {
  // Single-producer API contract: this thread owns every shard's routing
  // side (record->shard assignment is dynamic, so assert them all once).
  for (auto& shard : shards_) AssumeProducer(*shard);
  const std::size_t cap = options_.block_capacity;
  for (const FleetRecord& record : records) {
    Shard& shard = *shards_[ShardOf(record.device)];
    if (shard.filling == nullptr) shard.filling = shard.arena.Acquire();
    shard.filling->Append(record.device, record.point);
    if (shard.filling->size() >= cap) Seal(shard);
  }
}

void FleetEngine::InlineDispatch(std::span<const FleetRecord> records) {
  Shard& shard = *shards_[0];
  // Inline mode: no worker thread exists, so the caller holds both sides.
  AssumeProducer(shard);
  AssumeWorker(shard);

  // Staging-free fast path: a batch that is one single-device run (the
  // per-device upload shape) dispatches from the caller's buffer through
  // the PushRunTo span hook — no grouping, no blocks, just the one
  // strided gather into a reused scratch that any dispatch pays. Nothing
  // is ever pending here: inline mode flushes before returning, so the
  // grouped state is empty at every InlineDispatch entry.
  const DeviceId first_device = records.front().device;
  {
    std::size_t j = 1;
    while (j < records.size() && records[j].device == first_device) ++j;
    if (j == records.size()) {
      Session& session = SessionFor(shard, first_device);
      shard.sink.set_device(first_device);
      session.compressor->PushRunTo(records, shard.gather, shard.sink);
      ++shard.counters.coalesced_runs;
      shard.counters.records_ingested += records.size();
      AfterRun(shard, session, first_device, records.back().point.t);
      if (options_.idle_timeout_seconds > 0.0) CloseIdleSessions(shard);
      return;
    }
  }

  // Grouped routing: append each maximal same-device run to the device's
  // window group (DeviceSlotMap lookup once per run, not per record), so a
  // device scattered across hundreds of short bursts reaches the
  // compressor as one PushBatch per window instead of one per burst.
  // Interleaving across devices is reordered inside a window; per-device
  // record order — the only order FleetSink guarantees — is preserved.
  const std::size_t window = options_.block_capacity;
  std::size_t pending = 0;  ///< Records accumulated in the current window.
  std::size_t i = 0;
  while (i < records.size()) {
    const DeviceId device = records[i].device;
    std::size_t j = i + 1;
    while (j < records.size() && records[j].device == device) ++j;
    std::vector<TrackPoint>& points =
        GroupFor(shard, device)->points;
    for (std::size_t k = i; k < j; ++k) points.push_back(records[k].point);
    pending += j - i;
    i = j;
    if (pending >= window) {
      FlushInlineGroups(shard);
      pending = 0;
    }
  }
  // Inline mode never defers work past the IngestBatch that delivered it.
  FlushInlineGroups(shard);
}

void FleetEngine::FlushInlineGroups(Shard& shard) {
  DispatchGroups(shard);
  if (options_.idle_timeout_seconds > 0.0) CloseIdleSessions(shard);
}

void FleetEngine::Ingest(DeviceId device, const TrackPoint& pt) {
  const FleetRecord record{device, pt};
  IngestBatch(std::span<const FleetRecord>(&record, 1));
}

void FleetEngine::FinishDevice(DeviceId device) {
  if (!factory_.streaming()) return;  // no sessions can exist
  Shard& shard = *shards_[ShardOf(device)];
  if (inline_) {
    AssumeWorker(shard);  // inline mode: the caller is the worker
    if (shard.sessions.contains(device)) {
      CloseSession(shard, device, SessionEndReason::kFinished);
    }
    return;
  }
  AssumeProducer(shard);  // single-producer API contract
  // Pending records for the device must compress before the finish does.
  Seal(shard);
  ShardCommand cmd;
  cmd.kind = ShardCommand::Kind::kFinishDevice;
  cmd.device = device;
  Enqueue(shard, cmd);
}

void FleetEngine::FinishAll() {
  if (!factory_.streaming()) return;
  SealAll();
  if (inline_) {
    Shard& shard = *shards_[0];
    AssumeWorker(shard);  // inline mode: the caller is the worker
    shard.device_scratch.clear();
    for (const auto& [device, session] : shard.sessions) {
      (void)session;
      shard.device_scratch.push_back(device);
    }
    for (const DeviceId device : shard.device_scratch) {
      CloseSession(shard, device, SessionEndReason::kFinished);
    }
    return;
  }
  for (auto& shard : shards_) {
    AssumeProducer(*shard);  // single-producer API contract
    ShardCommand cmd;
    cmd.kind = ShardCommand::Kind::kFinishAll;
    Enqueue(*shard, cmd);
  }
  Flush();
}

void FleetEngine::Flush() {
  SealAll();
  for (auto& shard : shards_) WaitIdle(*shard);
}

void FleetEngine::WaitIdle(Shard& shard) {
  if (inline_) return;  // the caller already holds the worker side
  const uint64_t target = shard.enqueued;
  if (shard.completed.load(std::memory_order_acquire) >= target) return;
  MutexLock lock(shard.idle_mu);
  shard.caller_waiting.store(true, std::memory_order_seq_cst);
  shard.cv_idle.wait(lock.native(), [&] {
    return shard.completed.load(std::memory_order_seq_cst) >= target;
  });
  shard.caller_waiting.store(false, std::memory_order_relaxed);
}

FleetStats FleetEngine::Stats() {
  SealAll();
  FleetStats total;
  total.records_dropped = records_dropped_;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    AssumeProducer(shard);  // single-producer API contract
    WaitIdle(shard);        // grants shard.worker_role (idle protocol)
    // The shard is drained: the seq_cst completed==enqueued read makes the
    // worker's writes visible and — with the single-producer API keeping
    // new work out — exclusive to this thread until the next Enqueue.
    if (!eager_accounting_) {
      // Lazy accounting: the run fast path skipped StateBytes entirely, so
      // compute the live footprint here, where it is actually asked for.
      std::size_t live = 0;
      for (const auto& [device, session] : shard.sessions) {
        (void)device;
        live += kSessionBaseBytes + session.compressor->StateBytes();
      }
      shard.state_bytes = live;
      shard.counters.peak_state_bytes =
          std::max(shard.counters.peak_state_bytes,
                   shard.state_bytes + shard.pool_bytes);
    }
    const FleetStats& c = shard.counters;
    total.records_ingested += c.records_ingested;
    total.key_points_emitted += shard.sink.emitted();
    total.sessions_opened += c.sessions_opened;
    total.sessions_finished += c.sessions_finished;
    total.sessions_evicted += c.sessions_evicted;
    total.sessions_idled += c.sessions_idled;
    total.sessions_recycled += c.sessions_recycled;
    total.coalesced_runs += c.coalesced_runs;
    total.blocks_dispatched += shard.blocks_dispatched;
    total.blocks_allocated += shard.arena.allocated();
    total.blocks_recycled += shard.arena.recycled();
    total.worker_wakes += shard.ring.consumer_waits();
    total.backpressure_waits += shard.ring.producer_waits();
    total.peak_queue_depth = std::max(total.peak_queue_depth,
                                      shard.peak_depth);
    total.live_sessions += shard.sessions.size();
    total.state_bytes += shard.state_bytes;
    total.pooled_bytes += shard.pool_bytes;
    total.peak_state_bytes += c.peak_state_bytes;
    AccumulateDecisionStats(total.decisions, c.decisions);
    for (const auto& [device, session] : shard.sessions) {
      (void)device;
      if (const DecisionStats* s = session.compressor->decision_stats()) {
        AccumulateDecisionStats(total.decisions, *s);
      }
    }
  }
  return total;
}

void FleetEngine::WorkerLoop(Shard& shard) {
  // This thread IS the shard's worker for the engine's whole lifetime.
  AssumeWorker(shard);
  ShardCommand cmd;
  while (shard.ring.Pop(cmd)) {
    switch (cmd.kind) {
      case ShardCommand::Kind::kBlock:
        ProcessBlock(shard, *cmd.block);
        shard.arena.Release(cmd.block);
        break;
      case ShardCommand::Kind::kFinishDevice:
        if (shard.sessions.contains(cmd.device)) {
          CloseSession(shard, cmd.device, SessionEndReason::kFinished);
        }
        break;
      case ShardCommand::Kind::kFinishAll:
        shard.device_scratch.clear();
        for (const auto& [device, session] : shard.sessions) {
          (void)session;
          shard.device_scratch.push_back(device);
        }
        for (const DeviceId device : shard.device_scratch) {
          CloseSession(shard, device, SessionEndReason::kFinished);
        }
        break;
    }
    shard.completed.fetch_add(1, std::memory_order_seq_cst);
    if (shard.caller_waiting.load(std::memory_order_seq_cst)) {
      MutexLock lock(shard.idle_mu);
      shard.cv_idle.notify_all();
    }
  }
}

void FleetEngine::ProcessBlock(Shard& shard, const RecordBlock& block) {
  const TrackPoint* points = block.points.data();
  if (block.runs.size() == 1) {
    // Single-device block: dispatch straight from block memory, no regroup.
    DispatchRun(shard, block.runs[0].device,
                std::span<const TrackPoint>(points, block.runs[0].count));
  } else {
    // Regroup the block's runs per device (one window per block): the
    // extra memmove per point buys one PushBatch per device instead of
    // one per burst — the same trade the inline router makes.
    for (const DeviceRun& run : block.runs) {
      std::vector<TrackPoint>& pts = GroupFor(shard, run.device)->points;
      pts.insert(pts.end(), points, points + run.count);
      points += run.count;
    }
    DispatchGroups(shard);
  }
  if (options_.idle_timeout_seconds > 0.0) CloseIdleSessions(shard);
}

RouteGroup* FleetEngine::GroupFor(Shard& shard, DeviceId device) {
  uint32_t slot = shard.group_of_device.Lookup(device);
  if (slot == DeviceSlotMap::kAbsent) {
    slot = static_cast<uint32_t>(shard.used_groups.size());
    if (shard.groups.size() <= slot) shard.groups.emplace_back();
    shard.groups[slot].device = device;
    shard.used_groups.push_back(slot);
    shard.group_of_device.Bind(device, slot);
  }
  return &shard.groups[slot];
}

void FleetEngine::DispatchGroups(Shard& shard) {
  if (shard.used_groups.empty()) return;
  for (const uint32_t slot : shard.used_groups) {
    RouteGroup& group = shard.groups[slot];
    DispatchRun(shard, group.device,
                std::span<const TrackPoint>(group.points));
    group.points.clear();
  }
  shard.used_groups.clear();
  shard.group_of_device.NewWindow();
}

void FleetEngine::DispatchRun(Shard& shard, DeviceId device,
                              std::span<const TrackPoint> points) {
  Session& session = SessionFor(shard, device);
  shard.sink.set_device(device);
  session.compressor->PushBatchTo(points, shard.sink);
  ++shard.counters.coalesced_runs;
  shard.counters.records_ingested += points.size();
  AfterRun(shard, session, device, points.back().t);
}

FleetEngine::Session& FleetEngine::SessionFor(Shard& shard, DeviceId device) {
  auto it = shard.sessions.find(device);
  if (it != shard.sessions.end()) return it->second;
  Session session;
  if (!shard.pool.empty()) {
    session.compressor = std::move(shard.pool.back());
    shard.pool.pop_back();
    // The unit's heap charge moves from the pool back to its session.
    shard.pool_bytes -= session.compressor->StateBytes();
    session.compressor->Reset();
    ++shard.counters.sessions_recycled;
  } else {
    session.compressor = factory_.Make();
  }
  ++shard.counters.sessions_opened;
  if (eager_accounting_) {
    session.accounted_bytes =
        kSessionBaseBytes + session.compressor->StateBytes();
    shard.state_bytes += session.accounted_bytes;
    shard.counters.peak_state_bytes = std::max(
        shard.counters.peak_state_bytes,
        shard.state_bytes + shard.pool_bytes);
  }
  return shard.sessions.emplace(device, std::move(session)).first->second;
}

void FleetEngine::AfterRun(Shard& shard, Session& session, DeviceId device,
                           double last_t) {
  if (options_.idle_timeout_seconds > 0.0) {
    session.last_t = last_t;
    NoteStreamTime(shard, last_t);
  }
  if (!eager_accounting_) return;  // the lazy fast path: no StateBytes calls
  if (session.last_active != 0) shard.lru.erase(session.last_active);
  session.last_active = ++shard.activity_clock;
  shard.lru.emplace(session.last_active, device);
  const std::size_t now_bytes =
      kSessionBaseBytes + session.compressor->StateBytes();
  shard.state_bytes = shard.state_bytes - session.accounted_bytes + now_bytes;
  session.accounted_bytes = now_bytes;
  shard.counters.peak_state_bytes =
      std::max(shard.counters.peak_state_bytes,
               shard.state_bytes + shard.pool_bytes);
  EnforceBudget(shard);
}

void FleetEngine::NoteStreamTime(Shard& shard, double t) {
  if (!shard.has_stream_t || t > shard.max_stream_t) {
    shard.max_stream_t = t;
    shard.has_stream_t = true;
  }
}

void FleetEngine::CloseSession(Shard& shard, DeviceId device,
                               SessionEndReason reason) {
  auto it = shard.sessions.find(device);
  Session& session = it->second;
  shard.sink.set_device(device);
  session.compressor->FinishTo(shard.sink);
  if (const DecisionStats* stats = session.compressor->decision_stats()) {
    AccumulateDecisionStats(shard.counters.decisions, *stats);
  }
  sink_.OnSessionEnd(device, reason);
  switch (reason) {
    case SessionEndReason::kFinished:
      ++shard.counters.sessions_finished;
      break;
    case SessionEndReason::kEvicted:
      ++shard.counters.sessions_evicted;
      break;
    case SessionEndReason::kIdle:
      ++shard.counters.sessions_idled;
      break;
  }
  if (eager_accounting_) {
    shard.state_bytes -= session.accounted_bytes;
    if (session.last_active != 0) shard.lru.erase(session.last_active);
  }
  // Recycled compressors keep their heap capacity across Reset(), so a
  // pooled unit still costs real memory: charge it to pool_bytes (counted
  // against the budget), and never pool past the budget — idle sweeps and
  // FinishAll close sessions outside EnforceBudget, so the cap must hold
  // here, at the only point the pool grows. Memory evictions exist to give
  // memory back, so those compressors are destroyed instead of pooled.
  const std::size_t unit_bytes = session.compressor->StateBytes();
  const bool fits_budget =
      !eager_accounting_ ||
      shard.state_bytes + shard.pool_bytes + unit_bytes <= per_shard_budget_;
  if (reason != SessionEndReason::kEvicted && fits_budget &&
      shard.pool.size() < options_.max_pooled_compressors) {
    shard.pool_bytes += unit_bytes;
    shard.pool.push_back(std::move(session.compressor));
  }
  shard.sessions.erase(it);
}

void FleetEngine::EnforceBudget(Shard& shard) {
  // Cheapest memory first: pooled compressors hold heap but no stream
  // state, so they are dropped before any live session is cut short.
  while (shard.state_bytes + shard.pool_bytes > per_shard_budget_ &&
         !shard.pool.empty()) {
    shard.pool_bytes -= shard.pool.back()->StateBytes();
    shard.pool.pop_back();
  }
  while (shard.state_bytes + shard.pool_bytes > per_shard_budget_ &&
         !shard.sessions.empty()) {
    CloseSession(shard, shard.lru.begin()->second,
                 SessionEndReason::kEvicted);
  }
}

void FleetEngine::CloseIdleSessions(Shard& shard) {
  if (!shard.has_stream_t) return;
  const double cutoff = shard.max_stream_t - options_.idle_timeout_seconds;
  shard.device_scratch.clear();
  for (const auto& [device, session] : shard.sessions) {
    if (session.last_t < cutoff) shard.device_scratch.push_back(device);
  }
  for (const DeviceId device : shard.device_scratch) {
    CloseSession(shard, device, SessionEndReason::kIdle);
  }
}

}  // namespace bqs
