#include "service/fleet_engine.h"

#include <algorithm>
#include <map>
#include <utility>

namespace bqs {

namespace {

/// splitmix64 finalizer: device ids are often sequential, so shard
/// assignment needs a real mixer, not `id % shards`.
uint64_t MixDeviceId(DeviceId device) {
  uint64_t x = device + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void AccumulateDecisionStats(DecisionStats& into, const DecisionStats& s) {
  into.points += s.points;
  into.trivial_includes += s.trivial_includes;
  into.warmup_checks += s.warmup_checks;
  into.upper_bound_includes += s.upper_bound_includes;
  into.lower_bound_splits += s.lower_bound_splits;
  into.exact_computations += s.exact_computations;
  into.exact_includes += s.exact_includes;
  into.exact_splits += s.exact_splits;
  into.uncertain_splits += s.uncertain_splits;
  into.segments += s.segments;
  into.exact_points_scanned += s.exact_points_scanned;
  into.peak_exact_state = std::max(into.peak_exact_state, s.peak_exact_state);
  into.kernel_fallbacks += s.kernel_fallbacks;
}

/// One queued unit of shard work.
struct FleetEngine::Command {
  enum class Kind { kBatch, kFinishDevice, kFinishAll };
  Kind kind = Kind::kBatch;
  std::vector<FleetRecord> records;  ///< kBatch payload (this shard only).
  DeviceId device = 0;               ///< kFinishDevice target.
};

/// One live device stream.
struct FleetEngine::Session {
  std::unique_ptr<StreamCompressor> compressor;
  uint64_t last_active = 0;        ///< Shard activity clock at last record.
  double last_t = 0.0;             ///< Stream time of the last record.
  std::size_t accounted_bytes = 0; ///< Current charge against the budget.
};

/// KeyPointSink forwarding to the FleetSink under the device id currently
/// being processed; also counts emissions for FleetStats.
class FleetEngine::ShardSink final : public KeyPointSink {
 public:
  explicit ShardSink(FleetSink& fleet) : fleet_(fleet) {}
  void set_device(DeviceId device) { device_ = device; }
  uint64_t emitted() const { return emitted_; }
  void Emit(const KeyPoint& key) override {
    ++emitted_;
    fleet_.OnKeyPoint(device_, key);
  }

 private:
  FleetSink& fleet_;
  DeviceId device_ = 0;
  uint64_t emitted_ = 0;
};

/// One worker thread plus the state it owns. The queue fields are guarded
/// by `mu`; everything below the marker is touched only by the worker while
/// `busy`, or by the producer thread while holding `mu` with the shard idle
/// (queue empty and not busy) — the busy flag's mutex-ordered transitions
/// make that exclusive.
struct FleetEngine::Shard {
  explicit Shard(FleetSink& fleet) : sink(fleet) {}

  std::mutex mu;
  std::condition_variable cv_work;    ///< Signals the worker: work/stop.
  std::condition_variable cv_caller;  ///< Signals producers: space/idle.
  std::deque<Command> queue;
  bool busy = false;
  bool stop = false;
  std::thread worker;

  // --- worker-owned state ------------------------------------------------
  std::unordered_map<DeviceId, Session> sessions;
  std::vector<std::unique_ptr<StreamCompressor>> pool;
  /// Eviction index: last_active -> device (last_active values are unique,
  /// the activity clock is monotone). Maintained only under a memory
  /// budget; gives O(log S) LRU eviction instead of an O(S) scan.
  std::map<uint64_t, DeviceId> lru;
  ShardSink sink;
  std::vector<TrackPoint> point_scratch;   ///< Per-run PushBatch staging.
  std::vector<DeviceId> device_scratch;    ///< Bulk-close staging.
  uint64_t activity_clock = 0;
  double max_stream_t = 0.0;               ///< Newest record time seen.
  bool has_stream_t = false;
  std::size_t state_bytes = 0;             ///< Accounted live-session total.
  std::size_t pool_bytes = 0;              ///< Heap held by pooled units.
  FleetStats counters;                     ///< Closed-session aggregates.
};

FleetEngine::FleetEngine(const FleetEngineOptions& options, FleetSink& sink)
    : options_(options), sink_(sink), factory_(options.algorithm) {
  options_.num_shards = std::max<std::size_t>(options_.num_shards, 1);
  options_.max_pending_batches =
      std::max<std::size_t>(options_.max_pending_batches, 1);
  if (options_.memory_budget_bytes > 0) {
    per_shard_budget_ = std::max<std::size_t>(
        options_.memory_budget_bytes / options_.num_shards, 1);
  }
  shards_.reserve(options_.num_shards);
  staging_.resize(options_.num_shards);
  for (std::size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(sink_));
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { WorkerLoop(*s); });
  }
}

FleetEngine::~FleetEngine() {
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->cv_work.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t FleetEngine::ShardOf(DeviceId device) const {
  return static_cast<std::size_t>(MixDeviceId(device) % shards_.size());
}

void FleetEngine::Enqueue(std::size_t shard_index, Command cmd) {
  Shard& shard = *shards_[shard_index];
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.cv_caller.wait(lock, [&] {
      return shard.queue.size() < options_.max_pending_batches;
    });
    shard.queue.push_back(std::move(cmd));
  }
  shard.cv_work.notify_one();
}

void FleetEngine::IngestBatch(std::span<const FleetRecord> records) {
  if (records.empty()) return;
  if (!factory_.streaming()) {
    records_dropped_ += records.size();
    return;
  }
  if (shards_.size() == 1) {
    Command cmd;
    cmd.records.assign(records.begin(), records.end());
    Enqueue(0, std::move(cmd));
    return;
  }
  // Staging vectors were moved into Commands last batch, so they start
  // empty with no capacity; reserving the expected share turns the
  // grow-by-doubling chain into one allocation per shard per batch.
  const std::size_t expected_share =
      records.size() / shards_.size() + records.size() / 8 + 8;
  for (auto& staged : staging_) {
    if (staged.capacity() < expected_share) staged.reserve(expected_share);
  }
  for (const FleetRecord& record : records) {
    staging_[ShardOf(record.device)].push_back(record);
  }
  for (std::size_t i = 0; i < staging_.size(); ++i) {
    if (staging_[i].empty()) continue;
    Command cmd;
    cmd.records = std::move(staging_[i]);
    staging_[i] = {};
    Enqueue(i, std::move(cmd));
  }
}

void FleetEngine::Ingest(DeviceId device, const TrackPoint& pt) {
  const FleetRecord record{device, pt};
  IngestBatch(std::span<const FleetRecord>(&record, 1));
}

void FleetEngine::FinishDevice(DeviceId device) {
  Command cmd;
  cmd.kind = Command::Kind::kFinishDevice;
  cmd.device = device;
  Enqueue(ShardOf(device), std::move(cmd));
}

void FleetEngine::FinishAll() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Command cmd;
    cmd.kind = Command::Kind::kFinishAll;
    Enqueue(i, std::move(cmd));
  }
  Flush();
}

void FleetEngine::Flush() {
  for (auto& shard : shards_) WaitIdle(*shard);
}

void FleetEngine::WaitIdle(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu);
  shard.cv_caller.wait(lock,
                       [&] { return shard.queue.empty() && !shard.busy; });
}

FleetStats FleetEngine::Stats() {
  FleetStats total;
  total.records_dropped = records_dropped_;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.cv_caller.wait(lock,
                         [&] { return shard.queue.empty() && !shard.busy; });
    // The shard is provably idle and we hold its mutex, so reading the
    // worker-owned state is exclusive (single-producer API: no new work
    // can arrive while this thread is in Stats()).
    const FleetStats& c = shard.counters;
    total.records_ingested += c.records_ingested;
    total.key_points_emitted += shard.sink.emitted();
    total.sessions_opened += c.sessions_opened;
    total.sessions_finished += c.sessions_finished;
    total.sessions_evicted += c.sessions_evicted;
    total.sessions_idled += c.sessions_idled;
    total.sessions_recycled += c.sessions_recycled;
    total.live_sessions += shard.sessions.size();
    total.state_bytes += shard.state_bytes;
    total.pooled_bytes += shard.pool_bytes;
    total.peak_state_bytes += c.peak_state_bytes;
    AccumulateDecisionStats(total.decisions, c.decisions);
    for (const auto& [device, session] : shard.sessions) {
      (void)device;
      if (const DecisionStats* s = session.compressor->decision_stats()) {
        AccumulateDecisionStats(total.decisions, *s);
      }
    }
  }
  return total;
}

void FleetEngine::WorkerLoop(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    shard.cv_work.wait(lock,
                       [&] { return shard.stop || !shard.queue.empty(); });
    if (shard.queue.empty()) return;  // stop requested, queue drained
    Command cmd = std::move(shard.queue.front());
    shard.queue.pop_front();
    shard.busy = true;
    lock.unlock();
    shard.cv_caller.notify_all();  // a queue slot freed up

    switch (cmd.kind) {
      case Command::Kind::kBatch:
        ProcessBatch(shard, cmd.records);
        break;
      case Command::Kind::kFinishDevice:
        if (shard.sessions.contains(cmd.device)) {
          CloseSession(shard, cmd.device, SessionEndReason::kFinished);
        }
        break;
      case Command::Kind::kFinishAll:
        shard.device_scratch.clear();
        for (const auto& [device, session] : shard.sessions) {
          (void)session;
          shard.device_scratch.push_back(device);
        }
        for (const DeviceId device : shard.device_scratch) {
          CloseSession(shard, device, SessionEndReason::kFinished);
        }
        break;
    }

    lock.lock();
    shard.busy = false;
    if (shard.queue.empty()) shard.cv_caller.notify_all();
  }
}

FleetEngine::Session& FleetEngine::SessionFor(Shard& shard, DeviceId device) {
  auto it = shard.sessions.find(device);
  if (it != shard.sessions.end()) return it->second;
  Session session;
  if (!shard.pool.empty()) {
    session.compressor = std::move(shard.pool.back());
    shard.pool.pop_back();
    // The unit's heap charge moves from the pool back to its session.
    shard.pool_bytes -= session.compressor->StateBytes();
    session.compressor->Reset();
    ++shard.counters.sessions_recycled;
  } else {
    session.compressor = factory_.Make();
  }
  ++shard.counters.sessions_opened;
  session.accounted_bytes =
      kSessionBaseBytes + session.compressor->StateBytes();
  shard.state_bytes += session.accounted_bytes;
  shard.counters.peak_state_bytes = std::max(
      shard.counters.peak_state_bytes, shard.state_bytes + shard.pool_bytes);
  return shard.sessions.emplace(device, std::move(session)).first->second;
}

void FleetEngine::ProcessBatch(Shard& shard,
                               std::span<const FleetRecord> records) {
  std::size_t i = 0;
  while (i < records.size()) {
    const DeviceId device = records[i].device;
    std::size_t j = i + 1;
    while (j < records.size() && records[j].device == device) ++j;

    shard.point_scratch.clear();
    for (std::size_t k = i; k < j; ++k) {
      shard.point_scratch.push_back(records[k].point);
    }
    Session& session = SessionFor(shard, device);
    shard.sink.set_device(device);
    session.compressor->PushBatchTo(shard.point_scratch, shard.sink);

    if (per_shard_budget_ > 0) {
      if (session.last_active != 0) shard.lru.erase(session.last_active);
      session.last_active = ++shard.activity_clock;
      shard.lru.emplace(session.last_active, device);
    } else {
      session.last_active = ++shard.activity_clock;
    }
    session.last_t = records[j - 1].point.t;
    const std::size_t now_bytes =
        kSessionBaseBytes + session.compressor->StateBytes();
    shard.state_bytes = shard.state_bytes - session.accounted_bytes +
                        now_bytes;
    session.accounted_bytes = now_bytes;
    shard.counters.peak_state_bytes =
        std::max(shard.counters.peak_state_bytes,
                 shard.state_bytes + shard.pool_bytes);
    shard.counters.records_ingested += j - i;

    if (per_shard_budget_ > 0) EnforceBudget(shard);
    i = j;
  }

  if (options_.idle_timeout_seconds > 0.0) {
    for (const FleetRecord& record : records) {
      if (!shard.has_stream_t || record.point.t > shard.max_stream_t) {
        shard.max_stream_t = record.point.t;
        shard.has_stream_t = true;
      }
    }
    CloseIdleSessions(shard);
  }
}

void FleetEngine::CloseSession(Shard& shard, DeviceId device,
                               SessionEndReason reason) {
  auto it = shard.sessions.find(device);
  Session& session = it->second;
  shard.sink.set_device(device);
  session.compressor->FinishTo(shard.sink);
  if (const DecisionStats* stats = session.compressor->decision_stats()) {
    AccumulateDecisionStats(shard.counters.decisions, *stats);
  }
  sink_.OnSessionEnd(device, reason);
  switch (reason) {
    case SessionEndReason::kFinished:
      ++shard.counters.sessions_finished;
      break;
    case SessionEndReason::kEvicted:
      ++shard.counters.sessions_evicted;
      break;
    case SessionEndReason::kIdle:
      ++shard.counters.sessions_idled;
      break;
  }
  shard.state_bytes -= session.accounted_bytes;
  if (per_shard_budget_ > 0 && session.last_active != 0) {
    shard.lru.erase(session.last_active);
  }
  // Recycled compressors keep their heap capacity across Reset(), so a
  // pooled unit still costs real memory: charge it to pool_bytes (counted
  // against the budget), and never pool past the budget — idle sweeps and
  // FinishAll close sessions outside EnforceBudget, so the cap must hold
  // here, at the only point the pool grows. Memory evictions exist to give
  // memory back, so those compressors are destroyed instead of pooled.
  const std::size_t unit_bytes = session.compressor->StateBytes();
  const bool fits_budget =
      per_shard_budget_ == 0 ||
      shard.state_bytes + shard.pool_bytes + unit_bytes <= per_shard_budget_;
  if (reason != SessionEndReason::kEvicted && fits_budget &&
      shard.pool.size() < options_.max_pooled_compressors) {
    shard.pool_bytes += unit_bytes;
    shard.pool.push_back(std::move(session.compressor));
  }
  shard.sessions.erase(it);
}

void FleetEngine::EnforceBudget(Shard& shard) {
  // Cheapest memory first: pooled compressors hold heap but no stream
  // state, so they are dropped before any live session is cut short.
  while (shard.state_bytes + shard.pool_bytes > per_shard_budget_ &&
         !shard.pool.empty()) {
    shard.pool_bytes -= shard.pool.back()->StateBytes();
    shard.pool.pop_back();
  }
  while (shard.state_bytes + shard.pool_bytes > per_shard_budget_ &&
         !shard.sessions.empty()) {
    CloseSession(shard, shard.lru.begin()->second,
                 SessionEndReason::kEvicted);
  }
}

void FleetEngine::CloseIdleSessions(Shard& shard) {
  if (!shard.has_stream_t) return;
  const double cutoff = shard.max_stream_t - options_.idle_timeout_seconds;
  shard.device_scratch.clear();
  for (const auto& [device, session] : shard.sessions) {
    if (session.last_t < cutoff) shard.device_scratch.push_back(device);
  }
  for (const DeviceId device : shard.device_scratch) {
    CloseSession(shard, device, SessionEndReason::kIdle);
  }
}

}  // namespace bqs
