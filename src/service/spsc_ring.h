// Bounded single-producer/single-consumer ring buffer — the shard ingest
// queue behind FleetEngine.
//
// The PR 3 ingest queue was a std::deque<Command> under a mutex with a
// condition_variable signalled on every enqueue. Once the PR 4 kernel made
// compressing a point cheaper than a contended lock, that handoff became
// the fleet bottleneck: at shards=1 the engine ingested *slower* than the
// sequential reference. This ring replaces it:
//
//  - Fixed slot array, head/tail as atomics. The fast paths (push with
//    space, pop with items available) touch no mutex and allocate nothing.
//  - Edge-triggered condvar wakes: the consumer advertises that it is
//    about to sleep (`consumer_asleep_`), and the producer only takes the
//    mutex to notify when that flag is set — a stream of enqueues into an
//    awake consumer costs zero notifications instead of one per item.
//    Backpressure mirrors it on the producer side.
//  - The sleep/wake handshake is the classic Dekker pattern: the sleeper
//    stores its flag then re-reads the opposing cursor inside the wait
//    predicate; the waker publishes its cursor then reads the flag. Both
//    flag and cursor accesses on that path are seq_cst, so one of the two
//    sides always observes the other; the notify itself happens under the
//    mutex, closing the remaining predicate-to-block window.
//
// Threading contract: exactly one producer thread may call Push/TryPush
// and exactly one consumer thread may call Pop/TryPop. The contract is
// encoded for Clang Thread Safety Analysis: Push-side entry points REQUIRE
// the `producer_role` capability and Pop-side entry points the
// `consumer_role`; the owning threads assert their role once (AssumeRole)
// and the analysis rejects any call path that crosses sides. Stop() may be
// called from any thread (FleetEngine calls it from the destructor).
// size() is an approximation when read from other threads.
#ifndef BQS_SERVICE_SPSC_RING_H_
#define BQS_SERVICE_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace bqs {

template <typename T>
class SpscRing {
 public:
  /// Capacity is clamped to >= 1 and is exact (not rounded to a power of
  /// two): the ring indexes with a modulo, trading a division per access
  /// for predictable memory use at the caller's chosen depth.
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity), slots_(capacity_) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Approximate occupancy. Exact when called by the producer between its
  /// own pushes (the consumer can only shrink it concurrently).
  std::size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// Producer: enqueue, blocking while the ring is full (backpressure).
  /// Returns false — with `item` dropped — only if the ring was stopped.
  bool Push(T item) REQUIRES(producer_role) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
      producer_waits_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(mu_);
      producer_asleep_.store(true, std::memory_order_seq_cst);
      cv_producer_.wait(lock.native(), [&] {
        return stop_.load(std::memory_order_relaxed) ||
               tail - head_.load(std::memory_order_seq_cst) < capacity_;
      });
      producer_asleep_.store(false, std::memory_order_relaxed);
      if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
        return false;  // stopped while still full
      }
    }
    if (stop_.load(std::memory_order_relaxed)) return false;
    slots_[static_cast<std::size_t>(tail % capacity_)] = std::move(item);
    tail_.store(tail + 1, std::memory_order_seq_cst);
    if (consumer_asleep_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      cv_consumer_.notify_one();
    }
    return true;
  }

  /// Producer: enqueue, blocking until space frees, `deadline` passes, or
  /// the ring is stopped — the bounded-latency variant of Push() behind
  /// the fleet engine's shed policies. Returns false — with `item`
  /// dropped — on timeout or stop. Same Dekker sleep/wake discipline as
  /// Push(); a timed-out wait still counts as a producer_wait.
  bool PushUntil(T item, std::chrono::steady_clock::time_point deadline)
      REQUIRES(producer_role) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
      producer_waits_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(mu_);
      producer_asleep_.store(true, std::memory_order_seq_cst);
      cv_producer_.wait_until(lock.native(), deadline, [&] {
        return stop_.load(std::memory_order_relaxed) ||
               tail - head_.load(std::memory_order_seq_cst) < capacity_;
      });
      producer_asleep_.store(false, std::memory_order_relaxed);
      if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
        return false;  // deadline passed (or stopped) while still full
      }
    }
    if (stop_.load(std::memory_order_relaxed)) return false;
    slots_[static_cast<std::size_t>(tail % capacity_)] = std::move(item);
    tail_.store(tail + 1, std::memory_order_seq_cst);
    if (consumer_asleep_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      cv_consumer_.notify_one();
    }
    return true;
  }

  /// Producer: non-blocking enqueue. False when full or stopped.
  bool TryPush(T item) REQUIRES(producer_role) {
    if (stop_.load(std::memory_order_relaxed)) return false;
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
      return false;
    }
    slots_[static_cast<std::size_t>(tail % capacity_)] = std::move(item);
    tail_.store(tail + 1, std::memory_order_seq_cst);
    if (consumer_asleep_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      cv_consumer_.notify_one();
    }
    return true;
  }

  /// Consumer: dequeue, blocking while the ring is empty. After Stop() the
  /// remaining items still drain in order; returns false once stopped AND
  /// empty (the worker-thread exit condition).
  bool Pop(T& out) REQUIRES(consumer_role) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) {
      consumer_waits_.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(mu_);
      consumer_asleep_.store(true, std::memory_order_seq_cst);
      cv_consumer_.wait(lock.native(), [&] {
        return stop_.load(std::memory_order_relaxed) ||
               head != tail_.load(std::memory_order_seq_cst);
      });
      consumer_asleep_.store(false, std::memory_order_relaxed);
      if (head == tail_.load(std::memory_order_acquire)) {
        return false;  // stopped and drained
      }
    }
    out = std::move(slots_[static_cast<std::size_t>(head % capacity_)]);
    head_.store(head + 1, std::memory_order_seq_cst);
    if (producer_asleep_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      cv_producer_.notify_one();
    }
    return true;
  }

  /// Consumer: non-blocking dequeue. False when empty.
  bool TryPop(T& out) REQUIRES(consumer_role) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[static_cast<std::size_t>(head % capacity_)]);
    head_.store(head + 1, std::memory_order_seq_cst);
    if (producer_asleep_.load(std::memory_order_seq_cst)) {
      MutexLock lock(mu_);
      cv_producer_.notify_one();
    }
    return true;
  }

  /// Wakes both sides. A blocked Push returns false (its item is dropped);
  /// Pop keeps returning queued items until the ring is drained.
  void Stop() {
    MutexLock lock(mu_);
    stop_.store(true, std::memory_order_seq_cst);
    cv_consumer_.notify_all();
    cv_producer_.notify_all();
  }

  /// Times the consumer found the ring empty and entered the slow path
  /// (i.e. worker sleeps). Edge-triggered wakes make this the number of
  /// producer->consumer notifications that actually mattered.
  uint64_t consumer_waits() const {
    return consumer_waits_.load(std::memory_order_relaxed);
  }

  /// Times the producer found the ring full and blocked (backpressure).
  uint64_t producer_waits() const {
    return producer_waits_.load(std::memory_order_relaxed);
  }

  /// Capability held by the single thread allowed to Push/TryPush. Held by
  /// protocol (being that thread), asserted via AssumeRole at the owner's
  /// trust point, never locked.
  ThreadRole producer_role;
  /// Capability held by the single thread allowed to Pop/TryPop.
  ThreadRole consumer_role;

 private:
  const std::size_t capacity_;
  /// Slot i is written by the producer before the tail_ release-store and
  /// read by the consumer after the matching acquire-load; that per-slot
  /// handoff is the SPSC invariant itself, finer-grained than a capability
  /// can express, so slots_ carries no GUARDED_BY.
  std::vector<T> slots_;
  std::atomic<uint64_t> head_{0};  ///< Next slot to pop (consumer-owned).
  std::atomic<uint64_t> tail_{0};  ///< Next slot to fill (producer-owned).
  std::atomic<bool> stop_{false};
  std::atomic<bool> consumer_asleep_{false};
  std::atomic<bool> producer_asleep_{false};
  std::atomic<uint64_t> consumer_waits_{0};
  std::atomic<uint64_t> producer_waits_{0};
  /// Serializes only the sleep/wake handshake; every shared field is an
  /// atomic, so nothing is GUARDED_BY it.
  Mutex mu_;
  std::condition_variable cv_consumer_;
  std::condition_variable cv_producer_;
};

}  // namespace bqs

#endif  // BQS_SERVICE_SPSC_RING_H_
