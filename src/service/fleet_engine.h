// The fleet ingest layer: a session manager that multiplexes many
// concurrent device streams over the single-stream StreamCompressor family.
//
// The paper's compressors are per-device state machines; a deployment
// serving a fleet receives one interleaved feed of (device, point) records.
// FleetEngine owns that multiplexing: records are routed to a per-device
// session (device -> shard by hash), each session runs its own compressor
// minted from a shared CompressorFactory, and newly-final key points are
// forwarded to a FleetSink with per-device ordering guaranteed.
//
// Ingest pipeline (rebuilt so the service layer stays out of the kernel's
// way — the mutex+condvar queue of the first fleet engine cost more per
// record than compressing the record once the fast kernel landed):
//
//   IngestBatch(records)
//        │  router: one pass, coalescing consecutive same-device records
//        │  into DeviceRuns while writing points into pooled RecordBlocks
//        ▼
//   RecordBlock (arena-recycled; the single copy of the pipeline)
//        │  bounded SPSC ring per shard, edge-triggered condvar wakes,
//        │  backpressure when max_pending_blocks behind
//        ▼
//   shard worker: for each run, one PushBatchTo straight from block
//   memory into the compressor's SoA fast path — no per-record replay,
//   no second copy, no steady-state allocation.
//
// Inline mode (the single-shard shortcut): num_shards <= 1 bypasses
// threads and queues entirely and compresses on the caller thread inside
// IngestBatch. A one-worker pipeline cannot beat the caller doing the work
// itself — it only adds a copy, a handoff and a cache round trip — so one
// shard IS the inline case. The inline router group-coalesces a window of
// records (window size = block_capacity) per device through a
// DeviceSlotMap, so a device interleaved into hundreds of short bursts
// still reaches the compressor as a handful of PushBatch dispatches; a
// batch that is one single-device run skips the grouping machinery and
// dispatches from the caller's buffer via PushRunTo (paying only the one
// strided gather into reused scratch that any dispatch pays). That is the
// embedded/single-core deployment shape; everything else about the engine
// (sessions, budgets, stats, sinks) behaves identically. Worker threads
// start at num_shards >= 2.
//
// Sharding: the session table is split across N worker threads. Each shard
// owns its sessions outright (no shared compressor state), so throughput
// scales with cores while the per-device output stays byte-identical to
// running that device's stream alone through CompressAll — the invariant
// the differential tests enforce for every shard count, inline mode
// included. Determinism caveat: idle/budget-driven session closure depends
// on which devices share a shard, so the invariant is stated for the
// default unbounded configuration (no memory budget, no idle timeout) and
// any explicit Finish calls.
//
// Batching caveat (sharded mode): records accumulate in a partial block
// until it fills, so compression of the newest records may be deferred
// until the next block boundary, Flush(), Finish*(), or Stats() — all of
// which seal and drain. Inline mode never defers past the IngestBatch
// call that delivered the records. Output order and content are
// unaffected either way (the chunking-independence tests cover this).
//
// Threading contract: the public API (IngestBatch, Finish*, Flush, Stats)
// is single-producer — call it from one thread, or serialize externally.
// FleetSink methods are invoked from shard worker threads (from the caller
// thread in inline mode): calls for one device are ordered, calls for
// different devices may be concurrent.
//
// The contract is encoded for Clang Thread Safety Analysis (compiled with
// -Werror=thread-safety in CI). Each Shard carries two ThreadRole
// capabilities:
//
//  - `producer_role`: the single API-caller thread. Guards the routing
//    state (partial block, enqueue counters) and is required by the ring
//    push / arena acquire side.
//  - `worker_role`: the shard's dispatching thread. Guards the session
//    table, compressor pool, LRU, grouped-dispatch state and counters.
//
// The idle protocol is the interesting part: WaitIdle() is annotated
// ASSERT_CAPABILITY(shard.worker_role), so the caller thread *gains* the
// worker capability by draining the shard — exactly the protocol the
// comments used to state ("worker-owned, read by Stats() only under the
// idle+lock protocol"), now checked at compile time. The remaining trust
// points (worker loop entry, inline mode's everything-on-one-thread
// shortcut, the single-producer API contract itself) are the AssumeProducer
// / AssumeWorker assertions in fleet_engine.cc.
#ifndef BQS_SERVICE_FLEET_ENGINE_H_
#define BQS_SERVICE_FLEET_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "core/decision_stats.h"
#include "eval/algorithms.h"
#include "service/device_slot_map.h"
#include "service/overload_policy.h"
#include "service/record_block.h"
#include "service/spsc_ring.h"
#include "trajectory/compressor.h"
#include "trajectory/point.h"

namespace bqs {

class FaultInjector;  // common/fault_injector.h (test harness; see lint)
class KeyPointWal;    // storage/keypoint_wal.h
class Compactor;      // storage/compaction.h

/// Why a device session was closed.
enum class SessionEndReason {
  kFinished,  ///< Explicit FinishDevice()/FinishAll().
  kEvicted,   ///< Memory-budget pressure; the device may reappear later.
  kIdle,      ///< Idle longer than FleetEngineOptions::idle_timeout_seconds.
};

/// Downstream consumer of the fleet's compressed output.
class FleetSink {
 public:
  virtual ~FleetSink() = default;

  /// A newly-final key point of `device`'s compressed stream. Per-device
  /// calls arrive in stream order; distinct devices may call concurrently
  /// from different shard threads. Must not re-enter the FleetEngine.
  virtual void OnKeyPoint(DeviceId device, const KeyPoint& key) = 0;

  /// `device`'s session closed; its closing key point(s) were already
  /// delivered via OnKeyPoint. A later record for the device transparently
  /// opens a fresh session (i.e. starts a new compressed segment).
  virtual void OnSessionEnd(DeviceId device, SessionEndReason reason) {
    (void)device;
    (void)reason;
  }

  /// The error bound `device`'s live session honors changed: the engine
  /// degraded the session one eps-coarsening rung under memory pressure,
  /// or recovered it when pressure cleared. Key points emitted before this
  /// call honor the previous bound, later ones honor `error_bound`; the
  /// session itself stays open (no OnSessionEnd). Threading as OnKeyPoint.
  virtual void OnErrorBoundChanged(DeviceId device, double error_bound) {
    (void)device;
    (void)error_bound;
  }
};

struct FleetEngineOptions {
  /// Algorithm every session runs (must be a streaming one; records for an
  /// offline algorithm are dropped and counted in FleetStats).
  AlgorithmConfig algorithm;

  /// Worker threads / session-table shards. 0 and 1 are both inline mode
  /// (the single-shard shortcut): no threads or queues, records are routed
  /// and compressed synchronously on the caller thread, reported as one
  /// logical shard by num_shards(). Worker threads start at 2.
  std::size_t num_shards = 1;

  /// Approximate budget for growable compressor state across the whole
  /// engine, in bytes: live sessions (each also charged a fixed
  /// kSessionBaseBytes) plus pooled recycled compressors, whose heap
  /// capacity survives Reset(). 0 = unbounded. A shard over its share
  /// first drops pooled compressors, then finalizes least-recently-active
  /// sessions (SessionEndReason::kEvicted) until back under budget;
  /// memory-evicted compressors are destroyed, not pooled. Setting a
  /// budget switches session accounting from lazy (computed at Stats()
  /// time, zero per-run cost) to eager (updated after every run).
  std::size_t memory_budget_bytes = 0;

  /// Sessions whose last record is older than this many seconds of stream
  /// time (relative to the newest record their shard has seen) are
  /// finalized with SessionEndReason::kIdle at block boundaries. 0 = never.
  double idle_timeout_seconds = 0.0;

  /// Records per pooled routing block — the granularity of producer-to-
  /// worker handoff and of the arena's recycling; in inline mode, the
  /// grouped router's window size. Clamped to [16, 2^20].
  std::size_t block_capacity = 4096;

  /// Per-shard ingest ring depth, in blocks; IngestBatch blocks
  /// (backpressure) when the target shard is this many sealed blocks
  /// behind. Clamped to >= 1. Unused in inline mode.
  std::size_t max_pending_blocks = 64;

  /// Finalized sessions return their compressor to a per-shard free pool
  /// of at most this size; new sessions Reset() a pooled compressor
  /// instead of allocating (the Reset-equivalence differential test backs
  /// this). 0 disables recycling.
  std::size_t max_pooled_compressors = 16;

  /// Overload semantics: admission policy, per-IngestBatch latency budget,
  /// per-device token-bucket fairness and the eps-coarsening ladder. The
  /// defaults (kBlock, no ladder) preserve the original lossless blocking
  /// behavior — and with it the byte-identity guarantee. Shedding applies
  /// to sharded mode only (inline mode has no queue to overflow); the eps
  /// ladder engages in any mode once memory_budget_bytes is set.
  OverloadOptions overload;

  /// Deterministic fault injection for tests; nullptr in production (the
  /// hooks then cost one pointer check). Must outlive the engine. See
  /// common/fault_injector.h; the repo lint confines use to tests.
  FaultInjector* fault_injector = nullptr;

  /// Optional durability sink: an opened KeyPointWal the engine checkpoints
  /// emitted key points into (nullptr = no WAL; must outlive the engine).
  /// Each session stages its emitted points and appends them as one WAL
  /// checkpoint when the staged count reaches wal_checkpoint_points, when
  /// the session closes (finish/idle/evict), and when an eps-ladder reseat
  /// closes its compressed segment — so every lifecycle edge that finalizes
  /// output also makes it durable. The WAL is crash insurance, not the data
  /// path: an append failure (e.g. the WAL's fsync gate tripped) is counted
  /// in FleetStats::wal_append_failures and ingest continues; the sink
  /// still receives everything.
  KeyPointWal* wal = nullptr;

  /// Staged key points per session that trigger a WAL checkpoint between
  /// lifecycle edges. Smaller = tighter crash-loss window, more WAL
  /// records. Clamped to >= 1.
  std::size_t wal_checkpoint_points = 256;

  /// Optional compaction driver (requires `wal`; must outlive the engine).
  /// After every CheckpointWal() barrier the engine runs one compaction
  /// over the WAL's sealed segments (the active segment is never touched).
  /// A degraded compactor — persistent ENOSPC — is skipped entirely: the
  /// engine falls back to WAL-only durability, keeps ingesting, and
  /// reports storage_healthy = false. Never on the ingest path.
  Compactor* compactor = nullptr;
};

/// Aggregate engine counters. Snapshot via FleetEngine::Stats(), which
/// seals partial blocks and drains in-flight work first.
struct FleetStats {
  uint64_t records_ingested = 0;   ///< Records accepted into a session.
  uint64_t records_dropped = 0;    ///< Records with no streaming algorithm.
  uint64_t key_points_emitted = 0; ///< OnKeyPoint calls made.
  uint64_t sessions_opened = 0;
  uint64_t sessions_finished = 0;  ///< Explicit finishes.
  uint64_t sessions_evicted = 0;   ///< Budget evictions.
  uint64_t sessions_idled = 0;     ///< Idle-timeout finalizations.
  uint64_t sessions_recycled = 0;  ///< Sessions built on a pooled compressor.
  std::size_t live_sessions = 0;

  // --- ingest pipeline counters (all zero in inline mode except
  // coalesced_runs, which counts inline dispatches too) -------------------
  /// Coalesced single-device dispatches into the PushBatch fast path:
  /// consecutive-run spans from the block pipeline, window-grouped spans
  /// from the inline router. records_ingested / coalesced_runs is the mean
  /// dispatch length — the number that says how much coalescing bought.
  uint64_t coalesced_runs = 0;
  uint64_t blocks_dispatched = 0;  ///< Sealed blocks handed to workers.
  uint64_t blocks_allocated = 0;   ///< Fresh block allocations (arena).
  uint64_t blocks_recycled = 0;    ///< Blocks reused from the arena.
  /// Times a shard worker found its ring empty and slept; edge-triggered
  /// wakes make this the count of condvar notifications that mattered.
  uint64_t worker_wakes = 0;
  /// Times IngestBatch blocked on a full shard ring (backpressure).
  uint64_t backpressure_waits = 0;
  /// Largest number of sealed blocks observed waiting in any single shard
  /// ring at enqueue time.
  std::size_t peak_queue_depth = 0;

  // --- overload / degradation (all zero under the default kBlock policy
  // with no eps ladder and no fault injector) -----------------------------
  uint64_t records_shed = 0;       ///< Records dropped by the shed policies.
  uint64_t shed_batches = 0;       ///< IngestBatch calls that shed >= 1 record.
  uint64_t shed_ring_full = 0;     ///< ...ring full with no latency budget.
  uint64_t shed_latency = 0;       ///< ...ring still full at budget expiry.
  uint64_t shed_rate_limited = 0;  ///< ...device over its token-bucket rate.
  uint64_t shed_arena = 0;         ///< ...injected arena exhaustion.
  uint64_t sessions_degraded = 0;  ///< Eps-ladder step-ups (cumulative).
  uint64_t sessions_recovered = 0; ///< Eps-ladder step-downs (cumulative).
  std::size_t degraded_sessions = 0; ///< Live sessions above base eps now.
  /// Widest error bound any session ever honored (== configured epsilon
  /// unless the eps ladder engaged); the fleet-wide guarantee.
  double max_error_bound = 0.0;
  uint64_t faults_injected = 0;    ///< FaultInjector firings the engine obeyed.
  /// Largest single-device run handed to one compressor dispatch — the
  /// per-device backlog watermark (a hot device shows up here first).
  std::size_t max_device_backlog = 0;
  /// Oldest live session's age in stream-time seconds, relative to the
  /// newest record its shard has seen, as observed at drain points.
  double max_session_age_seconds = 0.0;

  // --- WAL checkpointing (all zero without FleetEngineOptions::wal) ------
  uint64_t wal_checkpoints = 0;       ///< Acked WAL appends.
  uint64_t wal_points = 0;            ///< Key points inside acked appends.
  /// Appends the WAL refused (dead writer, I/O error). The affected points
  /// were delivered to the sink but are NOT durable in the log. Split by
  /// reason below: exactly one append trips the fsync gate (_io), every
  /// later refusal is the already-dead writer (_writer_dead).
  uint64_t wal_append_failures = 0;
  uint64_t wal_failures_io = 0;          ///< The append that hit the error.
  uint64_t wal_failures_writer_dead = 0; ///< Refused by a dead writer.

  // --- compaction (all zero without FleetEngineOptions::compactor) -------
  uint64_t compaction_runs = 0;      ///< CompactOnce calls that succeeded.
  uint64_t compaction_failures = 0;  ///< ...that failed (or found the
                                     ///< compactor already degraded).

  /// False as soon as the durability substrate is impaired: the WAL's
  /// fsync gate tripped, or the compactor degraded on persistent ENOSPC.
  /// Ingest and the sink keep working either way — this flag is how a
  /// monitor learns new data stopped being (fully) durable. True when no
  /// WAL is configured (nothing was promised, nothing is impaired).
  bool storage_healthy = true;

  /// Accounted footprint of live sessions (StateBytes + base charge).
  std::size_t state_bytes = 0;
  /// Heap capacity held by pooled (recycled but idle) compressors; counted
  /// against the memory budget alongside state_bytes.
  std::size_t pooled_bytes = 0;
  /// Sum over shards of each shard's own peak of (state + pooled) bytes.
  /// Per-shard peaks need not co-occur, so this is an upper bound on the
  /// true simultaneous fleet peak, not the peak itself. Without a memory
  /// budget the accounting is lazy, so this tracks peaks as observed at
  /// Stats() calls and session events rather than after every run.
  std::size_t peak_state_bytes = 0;
  /// Sum of per-session DecisionStats (closed + live sessions); meaningful
  /// for the BQS family, all-zero otherwise.
  DecisionStats decisions;
};

/// Sums `s` into `into` (counters add; peaks take the max). The engine uses
/// it to fold per-session DecisionStats into the fleet aggregate.
void AccumulateDecisionStats(DecisionStats& into, const DecisionStats& s);

class FleetEngine {
 public:
  /// Fixed accounting charge per live session (map slot, compressor object,
  /// bookkeeping) on top of StreamCompressor::StateBytes().
  static constexpr std::size_t kSessionBaseBytes = 256;

  FleetEngine(const FleetEngineOptions& options, FleetSink& sink);
  /// Seals partial blocks and stops after draining queued work. Sessions
  /// still live are dropped without their closing key points — call
  /// FinishAll() first for a clean shutdown.
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Routes an interleaved batch into per-shard blocks (or compresses it
  /// synchronously in inline mode). Records are routed in order, so
  /// per-device order is preserved. Blocks only on shard backpressure.
  void IngestBatch(std::span<const FleetRecord> records);

  /// Single-record convenience. Accumulates into the target shard's
  /// partial block like any other record.
  void Ingest(DeviceId device, const TrackPoint& pt);

  /// Finalizes `device`'s session (closing key points, then
  /// OnSessionEnd(kFinished)); asynchronous when sharded, immediate in
  /// inline mode. Pending records for the device are compressed first.
  /// No-op if the device has no live session by the time the command is
  /// processed.
  void FinishDevice(DeviceId device);

  /// Finalizes every live session and blocks until all output is emitted.
  void FinishAll();

  /// Seals partial blocks and blocks until every queued block has been
  /// processed (no finalization).
  void Flush();

  /// Seals partial blocks, drains in-flight work, then returns aggregate
  /// counters.
  ///
  /// Accounting modes (the lazy-vs-eager contract the stats tests pin):
  /// without a memory budget, live-session footprint is computed *lazily*
  /// — here, after the drain — so state_bytes is exact at return but
  /// peak_state_bytes only advances at Stats() calls and session events.
  /// With a budget the engine accounts *eagerly* after every run and the
  /// peak is run-accurate. Either way the snapshot reflects every record
  /// from ingests that happened-before this call (the drain guarantees
  /// visibility, Flush() likewise), and all cumulative counters —
  /// records_*, blocks_*, *_waits, shed/degrade counts, peaks — are
  /// monotone non-decreasing across snapshots.
  FleetStats Stats();

  /// Drains in-flight work, then appends every live session's staged key
  /// points to the WAL as one checkpoint per session — the fleet-wide
  /// durability barrier (periodic snapshots, pre-shutdown flush). After it
  /// returns, every key point emitted by records that happened-before this
  /// call is either in the WAL (per its durability policy) or counted in
  /// wal_append_failures. No-op without a configured WAL.
  void CheckpointWal();

  const FleetEngineOptions& options() const { return options_; }
  /// Logical shard count: 1 in inline mode, num_shards otherwise.
  std::size_t num_shards() const { return shards_.size(); }
  bool inline_mode() const { return inline_; }

  /// Shard owning `device` (splitmix64 of the id, mod shard count).
  std::size_t ShardOf(DeviceId device) const;

 private:
  /// One slot of a shard's ingest ring: either a sealed routing block or a
  /// finalization command, in submission order.
  struct ShardCommand {
    enum class Kind : uint8_t { kBlock, kFinishDevice, kFinishAll };
    Kind kind = Kind::kBlock;
    DeviceId device = 0;           ///< kFinishDevice target.
    RecordBlock* block = nullptr;  ///< kBlock payload (arena-owned).
  };

  /// One live device stream.
  struct Session {
    std::unique_ptr<StreamCompressor> compressor;
    uint64_t last_active = 0;        ///< Shard activity clock at last record.
    double last_t = 0.0;             ///< Stream time of the last record.
    std::size_t accounted_bytes = 0; ///< Current charge (eager mode only).
    /// Eps-coarsening rung: 0 = base epsilon, k = eps_ladder[k-1] scale.
    /// Non-zero sessions run a re-minted compressor and are never pooled.
    uint32_t eps_level = 0;
    /// Key points emitted since the last WAL checkpoint (WAL mode only).
    /// Dropped, not checkpointed, if the engine is destroyed with the
    /// session live — same contract as the sink's closing key points.
    std::vector<KeyPoint> staged;
  };

  /// KeyPointSink forwarding to the FleetSink under the device id currently
  /// being processed; also counts emissions for FleetStats.
  class ShardSink final : public KeyPointSink {
   public:
    explicit ShardSink(FleetSink& fleet) : fleet_(fleet) {}
    void set_device(DeviceId device) { device_ = device; }
    /// WAL staging buffer of the session being dispatched (nullptr = no
    /// WAL). Rebound alongside set_device at every dispatch — the pointer
    /// is only valid for the duration of one compressor call, since the
    /// session table may rehash between dispatches.
    void set_stage(std::vector<KeyPoint>* stage) { stage_ = stage; }
    uint64_t emitted() const { return emitted_; }
    void Emit(const KeyPoint& key) override {
      ++emitted_;
      if (stage_ != nullptr) stage_->push_back(key);
      fleet_.OnKeyPoint(device_, key);
    }

   private:
    FleetSink& fleet_;
    DeviceId device_ = 0;
    std::vector<KeyPoint>* stage_ = nullptr;
    uint64_t emitted_ = 0;
  };

  /// One shard: the producer-side routing state, the SPSC handoff, and the
  /// worker-owned session table.
  ///
  /// Ownership and visibility rules, in lieu of a queue mutex — each rule
  /// now a capability the analysis enforces:
  ///  - producer_role-guarded fields are touched only by the single API
  ///    caller thread (the engine's single-producer contract).
  ///  - worker_role-guarded fields are touched by the worker thread while
  ///    it runs commands — or by the caller thread after WaitIdle() proved
  ///    `completed == enqueued` (the seq_cst counter read gives the
  ///    happens-before edge; the next ring Push publishes any caller
  ///    writes back to the worker). WaitIdle's ASSERT_CAPABILITY is that
  ///    protocol, stated to the compiler. In inline mode there is no
  ///    worker and the caller holds both roles.
  struct Shard {
    Shard(FleetSink& fleet, std::size_t block_capacity,
          std::size_t ring_depth)
        : ring(ring_depth), arena(block_capacity, ring_depth), sink(fleet) {}

    /// Capability of the single API-caller (routing) thread.
    ThreadRole producer_role;
    /// Capability of the dispatching thread: the shard worker, or the
    /// caller after WaitIdle / in inline mode.
    ThreadRole worker_role;

    // --- producer-side ------------------------------------------------------
    /// Partial block still accepting records.
    RecordBlock* filling GUARDED_BY(producer_role) = nullptr;
    /// Commands successfully pushed.
    uint64_t enqueued GUARDED_BY(producer_role) = 0;
    uint64_t blocks_dispatched GUARDED_BY(producer_role) = 0;
    /// Max ring occupancy seen at enqueue.
    std::size_t peak_depth GUARDED_BY(producer_role) = 0;

    // --- overload (producer-side: shed decisions happen at seal time) ------
    /// Per-device admission buckets (kShedByDevice), refilled on record
    /// stream time so grants replay deterministically from the feed.
    std::unordered_map<DeviceId, DeviceTokenBucket> buckets
        GUARDED_BY(producer_role);
    /// Compaction scratch: the surviving run directory being rebuilt.
    std::vector<DeviceRun> run_scratch GUARDED_BY(producer_role);
    /// Monotone salt for seeded stochastic token rounding.
    uint64_t shed_events GUARDED_BY(producer_role) = 0;
    /// Shed accounting, mirrored into FleetStats at Stats() time.
    struct ShedCounters {
      uint64_t records = 0;       ///< Total records shed by this shard.
      uint64_t ring_full = 0;     ///< ...on a full ring with no budget.
      uint64_t latency = 0;       ///< ...after the latency budget expired.
      uint64_t rate_limited = 0;  ///< ...over the device token rate.
      uint64_t arena = 0;         ///< ...at injected arena exhaustion.
      uint64_t faults = 0;        ///< Producer-site injector firings obeyed.
    };
    ShedCounters shed GUARDED_BY(producer_role);

    // --- handoff ------------------------------------------------------------
    SpscRing<ShardCommand> ring;
    BlockArena arena;  ///< Producer acquires, worker releases.

    // --- idle protocol ------------------------------------------------------
    std::atomic<uint64_t> completed{0};  ///< Commands fully processed.
    std::atomic<bool> caller_waiting{false};
    Mutex idle_mu;
    std::condition_variable cv_idle;
    std::thread worker;

    // --- grouped-dispatch state: owned by whichever thread dispatches (the
    // worker when sharded, the caller in inline mode) ------------------------
    DeviceSlotMap group_of_device;
    /// Slot-indexed pool, reused.
    std::vector<RouteGroup> groups GUARDED_BY(worker_role);
    /// Slots active this window.
    std::vector<uint32_t> used_groups GUARDED_BY(worker_role);
    /// PushRunTo fast-path scratch.
    std::vector<TrackPoint> gather GUARDED_BY(worker_role);

    // --- worker-owned (see visibility rules above) --------------------------
    std::unordered_map<DeviceId, Session> sessions GUARDED_BY(worker_role);
    std::vector<std::unique_ptr<StreamCompressor>> pool
        GUARDED_BY(worker_role);
    /// Eviction index: last_active -> device (last_active values are
    /// unique, the activity clock is monotone). Maintained only under a
    /// memory budget; gives O(log S) LRU eviction instead of an O(S) scan.
    std::map<uint64_t, DeviceId> lru GUARDED_BY(worker_role);
    ShardSink sink GUARDED_BY(worker_role);
    /// Bulk-close staging.
    std::vector<DeviceId> device_scratch GUARDED_BY(worker_role);
    uint64_t activity_clock GUARDED_BY(worker_role) = 0;
    /// Newest record time seen.
    double max_stream_t GUARDED_BY(worker_role) = 0.0;
    bool has_stream_t GUARDED_BY(worker_role) = false;
    /// Live-session total (eager) or last Stats() snapshot (lazy).
    std::size_t state_bytes GUARDED_BY(worker_role) = 0;
    /// Heap held by pooled units.
    std::size_t pool_bytes GUARDED_BY(worker_role) = 0;
    /// Closed-session aggregates.
    FleetStats counters GUARDED_BY(worker_role);
  };

  /// Trust point: the calling thread is the engine's single producer (the
  /// public-API contract), so it holds the shard's routing-side
  /// capabilities. Zero-cost; exists for the analysis.
  static void AssumeProducer(Shard& shard)
      ASSERT_CAPABILITY(shard.producer_role)
      ASSERT_CAPABILITY(shard.ring.producer_role)
      ASSERT_CAPABILITY(shard.arena.producer_role) {
    (void)shard;
  }

  /// Trust point: the calling thread is the shard's dispatching thread —
  /// the worker loop, or the caller in inline mode (where there is no
  /// worker at all). The third way to hold worker_role, draining the shard
  /// first, is earned through WaitIdle(), not assumed.
  static void AssumeWorker(Shard& shard)
      ASSERT_CAPABILITY(shard.worker_role)
      ASSERT_CAPABILITY(shard.ring.consumer_role)
      ASSERT_CAPABILITY(shard.arena.consumer_role)
      ASSERT_CAPABILITY(shard.group_of_device.owner_role) {
    (void)shard;
  }

  void Enqueue(Shard& shard, ShardCommand cmd)
      REQUIRES(shard.producer_role, shard.ring.producer_role);
  void Seal(Shard& shard)
      REQUIRES(shard.producer_role, shard.ring.producer_role);
  /// Seal on the IngestBatch path: the only seal that may shed. Under
  /// kBlock (or inline mode) it defers to Seal(); under a kShed* policy a
  /// ring still full at `deadline` (TryPush when `has_deadline` is false)
  /// sheds per the policy instead of blocking. Flush/Finish/Stats use
  /// Seal() directly — draining never loses data.
  void SealForIngest(Shard& shard,
                     std::chrono::steady_clock::time_point deadline,
                     bool has_deadline)
      REQUIRES(shard.producer_role, shard.ring.producer_role);
  /// kShedByDevice: compacts shard.filling through the per-device token
  /// buckets (over-rate suffixes shed, survivors kept in place to re-queue
  /// with the next seal). Returns true when any record was shed.
  bool CompactByDevice(Shard& shard) REQUIRES(shard.producer_role);
  void SealAll();
  /// Blocks until the shard has processed every enqueued command. The
  /// ASSERT_CAPABILITY is the idle protocol: a drained shard's worker is
  /// parked on an empty ring, so the caller thread owns the worker-side
  /// state until its next Enqueue.
  void WaitIdle(Shard& shard) ASSERT_CAPABILITY(shard.worker_role);
  void WorkerLoop(Shard& shard);
  void RouteSharded(std::span<const FleetRecord> records);
  void InlineDispatch(std::span<const FleetRecord> records);
  void FlushInlineGroups(Shard& shard)
      REQUIRES(shard.worker_role, shard.group_of_device.owner_role);
  /// The device's accumulation group for the current window (creating and
  /// binding a pooled slot on first sight).
  RouteGroup* GroupFor(Shard& shard, DeviceId device)
      REQUIRES(shard.worker_role, shard.group_of_device.owner_role);
  /// Dispatches every active group in first-seen order, then opens a new
  /// window.
  void DispatchGroups(Shard& shard)
      REQUIRES(shard.worker_role, shard.group_of_device.owner_role);
  void ProcessBlock(Shard& shard, const RecordBlock& block)
      REQUIRES(shard.worker_role, shard.group_of_device.owner_role);
  void DispatchRun(Shard& shard, DeviceId device,
                   std::span<const TrackPoint> points)
      REQUIRES(shard.worker_role);
  Session& SessionFor(Shard& shard, DeviceId device)
      REQUIRES(shard.worker_role);
  /// Post-run session bookkeeping: activity clock / LRU / stream time /
  /// eager accounting, each only when the configured feature needs it.
  void AfterRun(Shard& shard, Session& session, DeviceId device,
                double last_t) REQUIRES(shard.worker_role);
  void NoteStreamTime(Shard& shard, double t) REQUIRES(shard.worker_role);
  void CloseSession(Shard& shard, DeviceId device, SessionEndReason reason)
      REQUIRES(shard.worker_role);
  /// Appends `session`'s staged key points to the WAL as one checkpoint
  /// (no-op when empty or WAL-less). Failures count, never propagate —
  /// the WAL is insurance, not the data path.
  void CheckpointSession(Shard& shard, DeviceId device, Session& session)
      REQUIRES(shard.worker_role);
  void EnforceBudget(Shard& shard) REQUIRES(shard.worker_role);
  void CloseIdleSessions(Shard& shard) REQUIRES(shard.worker_role);
  /// Moves `device`'s live session to eps-ladder rung `level`: closes the
  /// open compressed segment under the current bound, then continues the
  /// same stream on a compressor minted at the rung's scaled epsilon (the
  /// old compressor — and its heap — is destroyed). Counts a degrade or a
  /// recovery depending on direction and reports the new bound through
  /// FleetSink::OnErrorBoundChanged.
  void ReseatSession(Shard& shard, DeviceId device, Session& session,
                     uint32_t level) REQUIRES(shard.worker_role);
  /// kMidBatchEvict fault hook: force-closes `device`'s session with
  /// SessionEndReason::kEvicted when the armed injector fires.
  void MaybeInjectEvict(Shard& shard, DeviceId device)
      REQUIRES(shard.worker_role);

  FleetEngineOptions options_;
  FleetSink& sink_;
  CompressorFactory factory_;
  bool inline_ = false;
  bool eager_accounting_ = false;    ///< True iff a memory budget is set.
  bool shedding_ = false;  ///< kShed* policy active (sharded mode only).
  std::size_t per_shard_budget_ = 0; ///< 0 = unbounded.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Records refused because the configured algorithm is offline-only.
  /// Producer-thread only, like the rest of the ingest path.
  uint64_t records_dropped_ = 0;
  /// IngestBatch calls that shed >= 1 record; batch_shed_ is the per-call
  /// flag the shed paths set. Producer-thread only.
  uint64_t shed_batches_ = 0;
  bool batch_shed_ = false;
  /// Compaction outcomes (driven from CheckpointWal on the caller thread).
  uint64_t compaction_runs_ = 0;
  uint64_t compaction_failures_ = 0;
};

}  // namespace bqs

#endif  // BQS_SERVICE_FLEET_ENGINE_H_
