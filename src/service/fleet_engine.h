// The fleet ingest layer: a session manager that multiplexes many
// concurrent device streams over the single-stream StreamCompressor family.
//
// The paper's compressors are per-device state machines; a deployment
// serving a fleet receives one interleaved feed of (device, point) records.
// FleetEngine owns that multiplexing: records are routed to a per-device
// session (device -> shard by hash), each session runs its own compressor
// minted from a shared CompressorFactory, and newly-final key points are
// forwarded to a FleetSink with per-device ordering guaranteed.
//
// Sharding: the session table is split across N worker threads. Each shard
// owns its sessions outright (no shared compressor state), so throughput
// scales with cores while the per-device output stays byte-identical to
// running that device's stream alone through CompressAll — the invariant
// the differential tests enforce for every shard count. Determinism caveat:
// idle/budget-driven session closure depends on which devices share a
// shard, so the invariant is stated for the default unbounded configuration
// (no memory budget, no idle timeout) and any explicit Finish calls.
//
// Threading contract: the public API (IngestBatch, Finish*, Flush, Stats)
// is single-producer — call it from one thread, or serialize externally.
// FleetSink methods are invoked from shard worker threads: calls for one
// device are ordered, calls for different devices may be concurrent.
#ifndef BQS_SERVICE_FLEET_ENGINE_H_
#define BQS_SERVICE_FLEET_ENGINE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/decision_stats.h"
#include "eval/algorithms.h"
#include "trajectory/compressor.h"
#include "trajectory/point.h"

namespace bqs {

/// Why a device session was closed.
enum class SessionEndReason {
  kFinished,  ///< Explicit FinishDevice()/FinishAll().
  kEvicted,   ///< Memory-budget pressure; the device may reappear later.
  kIdle,      ///< Idle longer than FleetEngineOptions::idle_timeout_seconds.
};

/// Downstream consumer of the fleet's compressed output.
class FleetSink {
 public:
  virtual ~FleetSink() = default;

  /// A newly-final key point of `device`'s compressed stream. Per-device
  /// calls arrive in stream order; distinct devices may call concurrently
  /// from different shard threads. Must not re-enter the FleetEngine.
  virtual void OnKeyPoint(DeviceId device, const KeyPoint& key) = 0;

  /// `device`'s session closed; its closing key point(s) were already
  /// delivered via OnKeyPoint. A later record for the device transparently
  /// opens a fresh session (i.e. starts a new compressed segment).
  virtual void OnSessionEnd(DeviceId device, SessionEndReason reason) {
    (void)device;
    (void)reason;
  }
};

struct FleetEngineOptions {
  /// Algorithm every session runs (must be a streaming one; records for an
  /// offline algorithm are dropped and counted in FleetStats).
  AlgorithmConfig algorithm;

  /// Worker threads / session-table shards. Clamped to >= 1.
  std::size_t num_shards = 1;

  /// Approximate budget for growable compressor state across the whole
  /// engine, in bytes: live sessions (each also charged a fixed
  /// kSessionBaseBytes) plus pooled recycled compressors, whose heap
  /// capacity survives Reset(). 0 = unbounded. A shard over its share
  /// first drops pooled compressors, then finalizes least-recently-active
  /// sessions (SessionEndReason::kEvicted) until back under budget;
  /// memory-evicted compressors are destroyed, not pooled.
  std::size_t memory_budget_bytes = 0;

  /// Sessions whose last record is older than this many seconds of stream
  /// time (relative to the newest record their shard has seen) are
  /// finalized with SessionEndReason::kIdle at batch boundaries. 0 = never.
  double idle_timeout_seconds = 0.0;

  /// Per-shard ingest queue depth; IngestBatch blocks (backpressure) when
  /// the target shard is this many batches behind. Clamped to >= 1.
  std::size_t max_pending_batches = 64;

  /// Finalized sessions return their compressor to a per-shard free pool
  /// of at most this size; new sessions Reset() a pooled compressor
  /// instead of allocating (the Reset-equivalence differential test backs
  /// this). 0 disables recycling.
  std::size_t max_pooled_compressors = 16;
};

/// Aggregate engine counters. Snapshot via FleetEngine::Stats(), which
/// drains in-flight work first.
struct FleetStats {
  uint64_t records_ingested = 0;   ///< Records accepted into a session.
  uint64_t records_dropped = 0;    ///< Records with no streaming algorithm.
  uint64_t key_points_emitted = 0; ///< OnKeyPoint calls made.
  uint64_t sessions_opened = 0;
  uint64_t sessions_finished = 0;  ///< Explicit finishes.
  uint64_t sessions_evicted = 0;   ///< Budget evictions.
  uint64_t sessions_idled = 0;     ///< Idle-timeout finalizations.
  uint64_t sessions_recycled = 0;  ///< Sessions built on a pooled compressor.
  std::size_t live_sessions = 0;
  /// Accounted footprint of live sessions (StateBytes + base charge).
  std::size_t state_bytes = 0;
  /// Heap capacity held by pooled (recycled but idle) compressors; counted
  /// against the memory budget alongside state_bytes.
  std::size_t pooled_bytes = 0;
  /// Sum over shards of each shard's own peak of (state + pooled) bytes.
  /// Per-shard peaks need not co-occur, so this is an upper bound on the
  /// true simultaneous fleet peak, not the peak itself.
  std::size_t peak_state_bytes = 0;
  /// Sum of per-session DecisionStats (closed + live sessions); meaningful
  /// for the BQS family, all-zero otherwise.
  DecisionStats decisions;
};

/// Sums `s` into `into` (counters add; peaks take the max). The engine uses
/// it to fold per-session DecisionStats into the fleet aggregate.
void AccumulateDecisionStats(DecisionStats& into, const DecisionStats& s);

class FleetEngine {
 public:
  /// Fixed accounting charge per live session (map slot, compressor object,
  /// bookkeeping) on top of StreamCompressor::StateBytes().
  static constexpr std::size_t kSessionBaseBytes = 256;

  FleetEngine(const FleetEngineOptions& options, FleetSink& sink);
  /// Stops after draining queued work. Sessions still live are dropped
  /// without their closing key points — call FinishAll() first for a clean
  /// shutdown.
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Enqueues an interleaved batch. Records are routed to shards in order,
  /// so per-device order is preserved. Blocks only on shard backpressure.
  void IngestBatch(std::span<const FleetRecord> records);

  /// Single-record convenience.
  void Ingest(DeviceId device, const TrackPoint& pt);

  /// Asynchronously finalizes `device`'s session (closing key points, then
  /// OnSessionEnd(kFinished)). No-op if the device has no live session by
  /// the time the command is processed.
  void FinishDevice(DeviceId device);

  /// Finalizes every live session and blocks until all output is emitted.
  void FinishAll();

  /// Blocks until every queued batch has been processed (no finalization).
  void Flush();

  /// Drains in-flight work, then returns aggregate counters.
  FleetStats Stats();

  const FleetEngineOptions& options() const { return options_; }
  std::size_t num_shards() const { return shards_.size(); }

  /// Shard owning `device` (splitmix64 of the id, mod shard count).
  std::size_t ShardOf(DeviceId device) const;

 private:
  struct Command;
  struct Session;
  struct Shard;
  class ShardSink;

  void Enqueue(std::size_t shard_index, Command cmd);
  void WaitIdle(Shard& shard);
  void WorkerLoop(Shard& shard);
  void ProcessBatch(Shard& shard, std::span<const FleetRecord> records);
  Session& SessionFor(Shard& shard, DeviceId device);
  void CloseSession(Shard& shard, DeviceId device, SessionEndReason reason);
  void EnforceBudget(Shard& shard);
  void CloseIdleSessions(Shard& shard);

  FleetEngineOptions options_;
  FleetSink& sink_;
  CompressorFactory factory_;
  std::size_t per_shard_budget_ = 0;  ///< 0 = unbounded.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Caller-side routing scratch, one per shard (single-producer API).
  std::vector<std::vector<FleetRecord>> staging_;
  /// Records refused because the configured algorithm is offline-only.
  /// Producer-thread only, like the rest of the ingest path.
  uint64_t records_dropped_ = 0;
};

}  // namespace bqs

#endif  // BQS_SERVICE_FLEET_ENGINE_H_
