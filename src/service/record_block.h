// Pooled routing blocks: the unit of work a FleetEngine producer hands a
// shard worker.
//
// The PR 3 pipeline staged every IngestBatch into fresh std::vector<
// FleetRecord> commands (one allocation — typically a fresh mmap — per
// shard per batch) and the worker then re-copied each device run into a
// scratch vector before dispatching. A RecordBlock removes both costs:
//
//  - The router performs the single unavoidable copy for a cross-thread
//    handoff, writing each record's TrackPoint directly into the block and
//    coalescing consecutive same-device records into a DeviceRun as it
//    goes. The worker dispatches each run's contiguous points straight
//    into StreamCompressor::PushBatchTo — no second copy, no per-record
//    replay.
//  - Blocks recycle through a BlockArena: the worker returns a processed
//    block over a lock-free SPSC ring and the producer reuses it, heap
//    capacity (and warm pages) intact. Steady-state ingest allocates
//    nothing.
//
// Threading contract (mirrors the engine): one producer thread calls
// Acquire/metrics, one consumer thread calls Release. A block is owned by
// exactly one side at a time — producer while filling, consumer after it
// was enqueued — with the ingest ring providing the happens-before edge.
// The side split is encoded for Thread Safety Analysis: Acquire and the
// counters REQUIRE `producer_role`, Release REQUIRES `consumer_role`.
#ifndef BQS_SERVICE_RECORD_BLOCK_H_
#define BQS_SERVICE_RECORD_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "service/spsc_ring.h"
#include "trajectory/point.h"

namespace bqs {

/// A maximal stretch of consecutive same-device records, coalesced by the
/// router so the worker dispatches it with one PushBatch instead of
/// `count` single pushes.
struct DeviceRun {
  DeviceId device = 0;
  uint32_t count = 0;
};

/// One pooled chunk of routed records: the points of all runs back to
/// back, plus the run directory that says which device owns which stretch.
struct RecordBlock {
  std::vector<TrackPoint> points;
  std::vector<DeviceRun> runs;

  std::size_t size() const { return points.size(); }
  bool empty() const { return points.empty(); }

  /// Drops contents, keeps capacity (that is the point of pooling).
  void Clear() {
    points.clear();
    runs.clear();
  }

  /// Appends one record, extending the trailing run when the device
  /// matches (run coalescing happens here, once, on the router pass).
  void Append(DeviceId device, const TrackPoint& pt) {
    if (runs.empty() || runs.back().device != device) {
      runs.push_back(DeviceRun{device, 0});
    }
    ++runs.back().count;
    points.push_back(pt);
  }
};

/// One device's accumulation group inside a routing window: the grouped
/// dispatch stage (inline router, or a worker regrouping a block) gathers
/// all of a device's runs here so the compressor sees one PushBatch per
/// window instead of one per burst. Pooled slot-indexed; capacity reused.
struct RouteGroup {
  DeviceId device = 0;
  std::vector<TrackPoint> points;
};

/// Block pool for one shard. The producer Acquire()s blocks to fill; the
/// shard worker Release()s them after dispatch. Returns travel over an
/// SPSC ring sized so that every block the arena ever hands out fits back
/// (outstanding blocks <= ring depth + one filling + one in process), so
/// Release never blocks and neither side ever takes a lock.
class BlockArena {
 public:
  BlockArena(std::size_t block_capacity, std::size_t max_outstanding)
      : block_capacity_(block_capacity < 1 ? 1 : block_capacity),
        recycle_(max_outstanding + 2) {}

  std::size_t block_capacity() const { return block_capacity_; }

  /// Producer: a cleared block ready to fill — recycled when one is
  /// available, freshly allocated otherwise.
  RecordBlock* Acquire() REQUIRES(producer_role) {
    // The arena's producer is, by construction, the recycle ring's
    // consumer (blocks travel worker -> producer): holding producer_role
    // IS holding recycle_.consumer_role. The alias is asserted, not
    // derived — this is the one trust point of the reversed-ring design.
    AssumeRole(recycle_.consumer_role);
    RecordBlock* block = nullptr;
    if (recycle_.TryPop(block)) {
      ++recycled_;
      return block;
    }
    ++allocated_;
    owned_.push_back(std::make_unique<RecordBlock>());
    RecordBlock* fresh = owned_.back().get();
    fresh->points.reserve(block_capacity_);
    return fresh;
  }

  /// Consumer: returns a processed block to the pool. Clears it here, on
  /// release, so a stale handle held past this point reads as empty rather
  /// than replaying old records — the cheap poisoning the recycle tests
  /// lock in.
  void Release(RecordBlock* block) REQUIRES(consumer_role) {
    // Mirror of the Acquire alias: the arena's consumer is the recycle
    // ring's producer.
    AssumeRole(recycle_.producer_role);
    block->Clear();
    // By the sizing argument above TryPush cannot fail; if a miscounted
    // caller ever overflows the ring anyway, the block simply retires
    // (still owned by owned_, never reused) instead of corrupting state.
    (void)recycle_.TryPush(block);
  }

  /// Blocks ever allocated fresh (producer-side counter).
  uint64_t allocated() const REQUIRES(producer_role) { return allocated_; }
  /// Acquire() calls served from the recycle ring (producer-side counter).
  uint64_t recycled() const REQUIRES(producer_role) { return recycled_; }

  /// Capability of the single thread that fills blocks (Acquire/counters).
  ThreadRole producer_role;
  /// Capability of the single thread that processes and returns blocks.
  ThreadRole consumer_role;

 private:
  const std::size_t block_capacity_;
  /// All blocks ever created, in creation order; gives every block exactly
  /// one owner for destruction regardless of where its raw pointer sits.
  /// Producer-side only (Acquire appends, Release never touches it).
  std::vector<std::unique_ptr<RecordBlock>> owned_ GUARDED_BY(producer_role);
  SpscRing<RecordBlock*> recycle_;
  uint64_t allocated_ GUARDED_BY(producer_role) = 0;
  uint64_t recycled_ GUARDED_BY(producer_role) = 0;
};

}  // namespace bqs

#endif  // BQS_SERVICE_RECORD_BLOCK_H_
