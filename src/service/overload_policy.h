// Overload semantics for the fleet ingest pipeline: what FleetEngine does
// when a shard falls behind instead of unconditionally blocking the caller.
//
// The engine's default behavior (OverloadPolicy::kBlock) is unchanged from
// the original pipeline: IngestBatch blocks on a full shard ring until the
// worker catches up — correct, lossless, and unbounded in latency. A
// deployment serving live trackers usually prefers the opposite trade:
// ingest latency stays bounded and, past the configured budget, load is
// shed deterministically with full accounting (FleetStats::records_shed
// and the per-reason counters) rather than silently or randomly.
//
// Two shedding policies are offered:
//
//  - kShedNewest: when the ring is still full after the latency budget,
//    the sealed block is dropped whole (its records are the newest routed
//    to that shard) and its storage recycled. Cheapest, FIFO-biased.
//  - kShedByDevice: the sealed block is first compacted through per-device
//    token buckets (refilled on record *stream time*, so decisions are
//    reproducible from the feed alone): devices over their configured rate
//    lose their over-rate suffix, devices under it keep their records,
//    and the surviving prefix is re-queued as the shard's next filling
//    block instead of being lost. A Zipf-hot device therefore degrades
//    itself before it can starve cold devices — the fairness story of the
//    overload bench. Only when no device is over its rate (the worker is
//    simply too slow) does the whole block shed like kShedNewest.
//
// Fractional token grants use seeded stochastic rounding (splitmix64 of
// shed_seed, device and a per-shard event counter) so no device is
// systematically biased by rate values that are not whole records per
// block, while every decision stays reproducible from (seed, feed).
//
// Eps-coarsening degradation rides the same options struct: under memory
// pressure a shard steps live sessions through `eps_ladder` multipliers
// (closing the current compressed segment under the old bound, then
// continuing the stream on a compressor minted at the widened epsilon)
// before it resorts to evicting sessions outright; sessions step back down
// when usage clears `recover_headroom`. Every emitted point still honors
// the bound of the compressor that produced it, which the engine reports
// through FleetSink::OnErrorBoundChanged.
#ifndef BQS_SERVICE_OVERLOAD_POLICY_H_
#define BQS_SERVICE_OVERLOAD_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bqs {

/// What IngestBatch does when a shard ring stays full past the budget.
enum class OverloadPolicy : uint8_t {
  kBlock,        ///< Block until space (lossless, unbounded latency).
  kShedNewest,   ///< Drop the sealed block whole.
  kShedByDevice, ///< Token-bucket compaction; re-queue the fair survivors.
};

/// Why records were shed; each reason has a FleetStats counter.
enum class ShedReason : uint8_t {
  kRingFull,     ///< Ring full with no latency budget configured.
  kLatency,      ///< Ring still full when the latency budget expired.
  kRateLimited,  ///< Device over its token-bucket rate (kShedByDevice).
  kArena,        ///< Injected arena exhaustion (fault testing).
};

struct OverloadOptions {
  OverloadPolicy policy = OverloadPolicy::kBlock;

  /// Per-IngestBatch latency budget, milliseconds: every seal the batch
  /// triggers shares one deadline taken at batch entry. Under a kShed*
  /// policy, 0 means shed immediately on a full ring (a budget of zero);
  /// under kBlock the field is ignored. Flush/Finish/Stats seals always
  /// block regardless — draining never loses data.
  double latency_budget_ms = 0.0;

  /// Seed for the stochastic rounding of fractional token grants. Shed
  /// decisions are a pure function of (seed, feed, configuration).
  uint64_t shed_seed = 0x5eed5eedULL;

  /// Per-device admission rate for kShedByDevice, in records per second of
  /// *stream time* (the t field of the records themselves, so decisions
  /// replay identically regardless of wall-clock speed). 0 disables rate
  /// accounting, making kShedByDevice behave like kShedNewest.
  double device_rate_per_second = 0.0;

  /// Token-bucket capacity, records. 0 picks a default of twice the
  /// configured rate (one second of burst on top of steady state).
  double device_burst = 0.0;

  /// Eps-coarsening ladder: epsilon multipliers applied in order as memory
  /// pressure mounts (e.g. {2.0, 4.0} = degrade 1x -> 2x -> 4x). Empty
  /// disables degradation (budget pressure evicts, as before). Requires
  /// memory_budget_bytes > 0 to ever engage. Degraded sessions produce
  /// output that differs from the sequential reference — byte-identity is
  /// guaranteed only for configurations that never degrade.
  std::vector<double> eps_ladder;

  /// Hysteresis for recovery: a degraded session steps one ladder rung
  /// back down (at a block boundary, when it next receives records) once
  /// its shard's usage drops below this fraction of the shard budget.
  double recover_headroom = 0.5;
};

/// splitmix64 — the repo-standard mixer (same constants as the device
/// shard hash); used for seeded stochastic rounding of token grants.
inline uint64_t OverloadMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One device's admission bucket (kShedByDevice). Refill is driven by the
/// device's own record stream time, so the bucket is a deterministic
/// function of the feed: wall-clock speed, scheduling and shard count
/// never change a grant.
struct DeviceTokenBucket {
  double tokens = 0.0;  ///< Current allowance, records.
  double last_t = 0.0;  ///< Stream time of the last refill.
  bool primed = false;  ///< First sighting starts with a full burst.

  /// Advances stream time to `t` and returns how many of `want` records
  /// the device may keep. `salt` seeds the stochastic rounding of the
  /// fractional remainder.
  uint32_t Grant(double t, uint32_t want, double rate, double burst,
                 uint64_t salt) {
    if (!primed) {
      tokens = burst;
      last_t = t;
      primed = true;
    } else if (t > last_t) {
      tokens += (t - last_t) * rate;
      if (tokens > burst) tokens = burst;
      last_t = t;
    }
    double grant = tokens < static_cast<double>(want)
                       ? tokens
                       : static_cast<double>(want);
    if (grant <= 0.0) return 0;
    uint32_t whole = static_cast<uint32_t>(grant);
    const double frac = grant - static_cast<double>(whole);
    // Stochastic rounding: keep the fractional record with probability
    // `frac`, decided by the seeded mix — unbiased over many grants,
    // reproducible from the seed.
    if (frac > 0.0 && whole < want) {
      const double coin = static_cast<double>(OverloadMix(salt) >> 11) *
                          (1.0 / 9007199254740992.0);  // [0,1) from 53 bits
      if (coin < frac) ++whole;
    }
    tokens -= static_cast<double>(whole);
    return whole;
  }
};

}  // namespace bqs

#endif  // BQS_SERVICE_OVERLOAD_POLICY_H_
