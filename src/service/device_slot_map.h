// Epoch-versioned open-addressing map from DeviceId to a small slot index
// — the router's device->group lookup.
//
// The grouped router binds each device to a per-window accumulation slot.
// Windows turn over every few thousand records, so a conventional map
// would pay either a full clear() per window or per-entry deletes; this
// table instead stamps every binding with the window epoch and bumps the
// epoch to invalidate all bindings in O(1) (NewWindow). Entries themselves
// persist across windows (device ids are stable), so a returning device
// costs one probe + one stamp, not an insert.
//
// Deliberately minimal: no deletes (entries only accumulate, one per
// device ever seen — a fraction of the session table's footprint), linear
// probing over a power-of-two table with the same splitmix64 finalizer the
// engine routes shards with, resize at ~70% load. Single-threaded by
// design: it lives on whichever thread owns the router — an ownership
// encoded for Thread Safety Analysis as the `owner_role` capability every
// accessor REQUIRES.
#ifndef BQS_SERVICE_DEVICE_SLOT_MAP_H_
#define BQS_SERVICE_DEVICE_SLOT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "trajectory/point.h"

namespace bqs {

class DeviceSlotMap {
 public:
  /// Lookup result when the device has no binding in the current window.
  static constexpr uint32_t kAbsent = 0xffffffffu;

  explicit DeviceSlotMap(std::size_t initial_capacity = 64)
      : entries_(RoundUpPow2(initial_capacity < 16 ? 16 : initial_capacity)) {}

  /// The slot bound to `device` in the current window, or kAbsent (either
  /// never seen, or bound in an earlier — now stale — window).
  uint32_t Lookup(DeviceId device) const REQUIRES(owner_role) {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(Mix(device)) & mask;
    while (entries_[i].epoch != 0) {
      if (entries_[i].device == device) {
        return entries_[i].epoch == epoch_ ? entries_[i].slot : kAbsent;
      }
      i = (i + 1) & mask;
    }
    return kAbsent;
  }

  /// Binds `device` to `slot` for the current window (insert or restamp).
  void Bind(DeviceId device, uint32_t slot) REQUIRES(owner_role) {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(Mix(device)) & mask;
    while (entries_[i].epoch != 0) {
      if (entries_[i].device == device) {
        entries_[i].slot = slot;
        entries_[i].epoch = epoch_;
        return;
      }
      i = (i + 1) & mask;
    }
    entries_[i] = Entry{device, slot, epoch_};
    ++count_;
    if (count_ * 10 >= entries_.size() * 7) Grow();
  }

  /// Invalidates every binding in O(1). Entries persist for reuse.
  void NewWindow() REQUIRES(owner_role) { ++epoch_; }

  /// Distinct devices ever bound (table occupancy, not live bindings).
  std::size_t devices_seen() const REQUIRES(owner_role) { return count_; }
  std::size_t table_capacity() const REQUIRES(owner_role) {
    return entries_.size();
  }

  /// Capability of the single thread that owns this table (the dispatching
  /// thread: a shard worker, or the caller in inline mode).
  ThreadRole owner_role;

 private:
  struct Entry {
    DeviceId device = 0;
    uint32_t slot = 0;
    /// 0 = empty slot (epoch_ starts at 1, so no live entry carries 0).
    uint64_t epoch = 0;
  };

  static uint64_t Mix(DeviceId device) {
    uint64_t x = device + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static std::size_t RoundUpPow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  void Grow() REQUIRES(owner_role) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.size() * 2, Entry{});
    const std::size_t mask = entries_.size() - 1;
    for (const Entry& e : old) {
      if (e.epoch == 0) continue;
      std::size_t i = static_cast<std::size_t>(Mix(e.device)) & mask;
      while (entries_[i].epoch != 0) i = (i + 1) & mask;
      entries_[i] = e;
    }
  }

  std::vector<Entry> entries_ GUARDED_BY(owner_role);
  std::size_t count_ GUARDED_BY(owner_role) = 0;
  uint64_t epoch_ GUARDED_BY(owner_role) = 1;
};

}  // namespace bqs

#endif  // BQS_SERVICE_DEVICE_SLOT_MAP_H_
