// Fixed-width table printing and CSV export used by every bench binary so
// the regenerated tables/figures read like the paper's.
#ifndef BQS_EVAL_TABLE_H_
#define BQS_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace bqs {

/// Collects rows and prints them right-aligned under their headers.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os) const;

  /// Writes headers+rows as CSV (for plotting scripts).
  Status WriteCsv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shorthands for numeric cells.
std::string FmtDouble(double v, int precision = 3);
std::string FmtPercent(double ratio, int precision = 2);
std::string FmtInt(int64_t v);

}  // namespace bqs

#endif  // BQS_EVAL_TABLE_H_
