#include "eval/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace bqs {

namespace {
constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
}  // namespace

void AsciiChart::Print(std::ostream& os) const {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = std::numeric_limits<double>::infinity();
  double y_max = -y_min;
  bool any = false;
  for (const ChartSeries& s : series_) {
    for (std::size_t i = 0; i < s.xs.size() && i < s.ys.size(); ++i) {
      any = true;
      x_min = std::min(x_min, s.xs[i]);
      x_max = std::max(x_max, s.xs[i]);
      y_min = std::min(y_min, s.ys[i]);
      y_max = std::max(y_max, s.ys[i]);
    }
  }
  if (!any) return;
  if (y_max - y_min < 1e-12) y_max = y_min + 1.0;
  if (x_max - x_min < 1e-12) x_max = x_min + 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const auto col = [&](double x) {
    const double u = (x - x_min) / (x_max - x_min);
    return std::min(
        width_ - 1,
        static_cast<std::size_t>(u * static_cast<double>(width_ - 1) + 0.5));
  };
  const auto row = [&](double y) {
    const double v = (y - y_min) / (y_max - y_min);
    return height_ - 1 -
           std::min(height_ - 1,
                    static_cast<std::size_t>(
                        v * static_cast<double>(height_ - 1) + 0.5));
  };

  for (std::size_t si = 0; si < series_.size(); ++si) {
    const ChartSeries& s = series_[si];
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    // Connect consecutive samples with interpolated steps so sparse
    // series still read as lines.
    for (std::size_t i = 0; i + 1 < s.xs.size(); ++i) {
      const int steps = static_cast<int>(width_);
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        const double x = s.xs[i] + t * (s.xs[i + 1] - s.xs[i]);
        const double y = s.ys[i] + t * (s.ys[i + 1] - s.ys[i]);
        grid[row(y)][col(x)] = glyph;
      }
    }
    if (s.xs.size() == 1) grid[row(s.ys[0])][col(s.xs[0])] = glyph;
  }

  for (std::size_t r = 0; r < height_; ++r) {
    const double y =
        y_max - (y_max - y_min) * static_cast<double>(r) /
                    static_cast<double>(height_ - 1);
    os << StrPrintf("%9.3f |", y) << grid[r] << "\n";
  }
  os << StrPrintf("%9s +", "") << std::string(width_, '-') << "\n";
  os << StrPrintf("%9s  %-10.3g%*s%10.3g\n", "", x_min,
                  static_cast<int>(width_ - 20), "", x_max);
  for (std::size_t si = 0; si < series_.size(); ++si) {
    os << "  " << kGlyphs[si % sizeof(kGlyphs)] << " = "
       << series_[si].name << "\n";
  }
}

}  // namespace bqs
