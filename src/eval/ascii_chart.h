// Minimal ASCII line charts so the figure benches can *draw* their curves
// next to the numeric tables (Figs. 6-8 are plots in the paper).
#ifndef BQS_EVAL_ASCII_CHART_H_
#define BQS_EVAL_ASCII_CHART_H_

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

namespace bqs {

/// One named series of (x, y) samples.
struct ChartSeries {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
};

/// Renders series as a character grid with y axis labels and a shared x
/// axis. Each series is drawn with its own glyph; a legend follows.
class AsciiChart {
 public:
  /// Dimensions below the minimum are clamped: the renderer needs
  /// width > 20 for the x-axis label row and height > 1 for the y scale.
  AsciiChart(std::size_t width = 64, std::size_t height = 16)
      : width_(std::max<std::size_t>(width, 21)),
        height_(std::max<std::size_t>(height, 2)) {}

  void Add(ChartSeries series) { series_.push_back(std::move(series)); }

  /// Draws all added series. No-op when empty.
  void Print(std::ostream& os) const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<ChartSeries> series_;
};

}  // namespace bqs

#endif  // BQS_EVAL_ASCII_CHART_H_
