// Uniform façade over every compressor in the library so benches and
// examples can sweep algorithm x dataset x epsilon without bespoke glue.
#ifndef BQS_EVAL_ALGORITHMS_H_
#define BQS_EVAL_ALGORITHMS_H_

#include <cstddef>
#include <iterator>
#include <memory>
#include <span>
#include <string_view>

#include "core/decision_stats.h"
#include "core/options.h"
#include "trajectory/compressor.h"

namespace bqs {

/// Every algorithm the evaluation exercises.
enum class AlgorithmId {
  kBqs,      ///< Paper Algorithm 1 (exact fallback).
  kFbqs,     ///< Fast BQS, O(1)/point.
  kBdp,      ///< Buffered Douglas-Peucker.
  kBgd,      ///< Buffered Greedy Deviation (sliding window).
  kDp,       ///< Offline Douglas-Peucker.
  kDr,       ///< Dead Reckoning.
  kSquishE,  ///< SQUISH-E(epsilon) (SED metric; extension baseline).
};

/// Canonical list of every AlgorithmId value, in declaration order. Sweeps
/// and the enum-exhaustiveness test iterate this; it (and kAlgorithmCount)
/// must grow with the enum.
inline constexpr AlgorithmId kAllAlgorithms[] = {
    AlgorithmId::kBqs, AlgorithmId::kFbqs, AlgorithmId::kBdp,
    AlgorithmId::kBgd, AlgorithmId::kDp,   AlgorithmId::kDr,
    AlgorithmId::kSquishE,
};
inline constexpr std::size_t kAlgorithmCount = std::size(kAllAlgorithms);

/// Stable display name ("BQS", "FBQS", ...). Empty for out-of-range values
/// (never for a real enumerator; the exhaustiveness test enforces this).
std::string_view AlgorithmName(AlgorithmId id);

/// True when the id has a streaming (push-based) implementation, i.e. when
/// MakeStreamCompressor returns non-null for it.
bool IsStreaming(AlgorithmId id);

/// One concrete algorithm instantiation.
struct AlgorithmConfig {
  AlgorithmId id = AlgorithmId::kFbqs;
  double epsilon = 10.0;
  DistanceMetric metric = DistanceMetric::kPointToLine;
  /// Buffer size for BDP/BGD (paper default 32; 0 = unbounded BGD).
  std::size_t buffer_size = 32;
  /// Extra knobs for the BQS family (epsilon/metric above take precedence).
  BqsOptions bqs;
};

/// Result of one compression run.
struct RunOutput {
  CompressedTrajectory compressed;
  double runtime_ms = 0.0;
  DecisionStats stats;     ///< Meaningful for the BQS family only.
  bool has_stats = false;  ///< True when `stats` is populated.
};

/// Runs the configured algorithm over the stream, timing compression only
/// (no dataset generation, no verification).
RunOutput RunAlgorithm(const AlgorithmConfig& config,
                       std::span<const TrackPoint> points);

/// Builds a fresh streaming compressor for online algorithms; nullptr for
/// offline ones (DP, SQUISH-E).
std::unique_ptr<StreamCompressor> MakeStreamCompressor(
    const AlgorithmConfig& config);

/// A bound AlgorithmConfig that mints identically-configured compressors on
/// demand — the service layer holds one and calls Make() once per device
/// session, so every session in a fleet runs the same algorithm at the
/// same tolerance.
class CompressorFactory {
 public:
  CompressorFactory() = default;
  explicit CompressorFactory(const AlgorithmConfig& config)
      : config_(config) {}

  /// Fresh compressor; nullptr when the configured algorithm is offline.
  std::unique_ptr<StreamCompressor> Make() const {
    return MakeStreamCompressor(config_);
  }

  /// Fresh compressor at `eps_scale` x the configured epsilon, otherwise
  /// identically configured — the mint behind the service layer's
  /// eps-coarsening degradation, which widens a live stream's error
  /// budget at a segment boundary instead of evicting the session.
  std::unique_ptr<StreamCompressor> MakeScaled(double eps_scale) const {
    AlgorithmConfig scaled = config_;
    scaled.epsilon *= eps_scale;
    return MakeStreamCompressor(scaled);
  }

  /// True when Make() produces a compressor.
  bool streaming() const { return IsStreaming(config_.id); }

  const AlgorithmConfig& config() const { return config_; }

 private:
  AlgorithmConfig config_;
};

}  // namespace bqs

#endif  // BQS_EVAL_ALGORITHMS_H_
