// Sweep runner: algorithm x dataset x epsilon grids with verification,
// producing the rows every figure/table bench prints.
#ifndef BQS_EVAL_RUNNER_H_
#define BQS_EVAL_RUNNER_H_

#include <span>
#include <string>
#include <vector>

#include "eval/algorithms.h"
#include "eval/metrics.h"
#include "simulation/datasets.h"

namespace bqs {

/// One sweep cell.
struct SweepRow {
  std::string dataset;
  std::string algorithm;
  double epsilon = 0.0;
  std::size_t points_in = 0;
  std::size_t points_out = 0;
  double compression_rate = 0.0;
  double runtime_ms = 0.0;
  double max_deviation = 0.0;
  bool error_bounded = false;
  double pruning_power = -1.0;  ///< -1 when not applicable.
};

/// Runs every algorithm over every dataset at every epsilon.
/// `verify` additionally measures the exact max deviation (slower).
std::vector<SweepRow> RunSweep(std::span<const AlgorithmId> algorithms,
                               std::span<const Dataset> datasets,
                               std::span<const double> epsilons,
                               std::size_t buffer_size = 32,
                               bool verify = true);

/// Single cell convenience.
SweepRow RunCell(AlgorithmId algorithm, const Dataset& dataset,
                 double epsilon, std::size_t buffer_size = 32,
                 bool verify = true);

}  // namespace bqs

#endif  // BQS_EVAL_RUNNER_H_
