#include "eval/table.h"

#include <algorithm>
#include <fstream>

#include "common/strings.h"

namespace bqs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < headers_.size()) rule.append(2, '-');
  }
  os << rule << "\n";
  for (const auto& row : rows_) print_row(row);
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << Join(headers_, ",") << "\n";
  for (const auto& row : rows_) {
    out << Join(row, ",") << "\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string FmtDouble(double v, int precision) {
  return StrPrintf("%.*f", precision, v);
}

std::string FmtPercent(double ratio, int precision) {
  return StrPrintf("%.*f%%", precision, ratio * 100.0);
}

std::string FmtInt(int64_t v) {
  return StrPrintf("%lld", static_cast<long long>(v));
}

}  // namespace bqs
