#include "eval/runner.h"

namespace bqs {

SweepRow RunCell(AlgorithmId algorithm, const Dataset& dataset,
                 double epsilon, std::size_t buffer_size, bool verify) {
  AlgorithmConfig config;
  config.id = algorithm;
  config.epsilon = epsilon;
  config.buffer_size = buffer_size;

  const RunOutput out = RunAlgorithm(config, dataset.stream);

  SweepRow row;
  row.dataset = dataset.name;
  row.algorithm = std::string(AlgorithmName(algorithm));
  row.epsilon = epsilon;
  row.points_in = dataset.stream.size();
  row.points_out = out.compressed.size();
  row.compression_rate = CompressionRate(row.points_out, row.points_in);
  row.runtime_ms = out.runtime_ms;
  if (out.has_stats) row.pruning_power = out.stats.PruningPower();
  if (verify) {
    const CompressionQuality q =
        MeasureQuality(dataset.stream, out.compressed, epsilon,
                       config.metric);
    row.max_deviation = q.max_deviation;
    row.error_bounded = q.error_bounded;
  }
  return row;
}

std::vector<SweepRow> RunSweep(std::span<const AlgorithmId> algorithms,
                               std::span<const Dataset> datasets,
                               std::span<const double> epsilons,
                               std::size_t buffer_size, bool verify) {
  std::vector<SweepRow> rows;
  rows.reserve(algorithms.size() * datasets.size() * epsilons.size());
  for (const Dataset& dataset : datasets) {
    for (double epsilon : epsilons) {
      for (AlgorithmId algorithm : algorithms) {
        rows.push_back(
            RunCell(algorithm, dataset, epsilon, buffer_size, verify));
      }
    }
  }
  return rows;
}

}  // namespace bqs
