#include "eval/algorithms.h"

#include <chrono>

#include "baselines/buffered_dp.h"
#include "baselines/buffered_greedy.h"
#include "baselines/dead_reckoning.h"
#include "baselines/douglas_peucker.h"
#include "baselines/squish_e.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"

namespace bqs {

std::string_view AlgorithmName(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kBqs:
      return "BQS";
    case AlgorithmId::kFbqs:
      return "FBQS";
    case AlgorithmId::kBdp:
      return "BDP";
    case AlgorithmId::kBgd:
      return "BGD";
    case AlgorithmId::kDp:
      return "DP";
    case AlgorithmId::kDr:
      return "DR";
    case AlgorithmId::kSquishE:
      return "SQUISH-E";
  }
  return "";
}

bool IsStreaming(AlgorithmId id) {
  switch (id) {
    case AlgorithmId::kBqs:
    case AlgorithmId::kFbqs:
    case AlgorithmId::kBdp:
    case AlgorithmId::kBgd:
    case AlgorithmId::kDr:
      return true;
    case AlgorithmId::kDp:
    case AlgorithmId::kSquishE:
      return false;
  }
  return false;
}

std::unique_ptr<StreamCompressor> MakeStreamCompressor(
    const AlgorithmConfig& config) {
  switch (config.id) {
    case AlgorithmId::kBqs:
    case AlgorithmId::kFbqs: {
      BqsOptions options = config.bqs;
      options.epsilon = config.epsilon;
      options.metric = config.metric;
      if (config.id == AlgorithmId::kBqs) {
        return std::make_unique<BqsCompressor>(options);
      }
      return std::make_unique<FbqsCompressor>(options);
    }
    case AlgorithmId::kBdp: {
      BufferedDpOptions options;
      options.epsilon = config.epsilon;
      options.metric = config.metric;
      options.buffer_size = config.buffer_size;
      return std::make_unique<BufferedDp>(options);
    }
    case AlgorithmId::kBgd: {
      BufferedGreedyOptions options;
      options.epsilon = config.epsilon;
      options.metric = config.metric;
      options.buffer_size = config.buffer_size;
      return std::make_unique<BufferedGreedy>(options);
    }
    case AlgorithmId::kDr: {
      DeadReckoningOptions options;
      options.epsilon = config.epsilon;
      return std::make_unique<DeadReckoning>(options);
    }
    case AlgorithmId::kDp:
    case AlgorithmId::kSquishE:
      return nullptr;
  }
  return nullptr;
}

RunOutput RunAlgorithm(const AlgorithmConfig& config,
                       std::span<const TrackPoint> points) {
  RunOutput out;
  const auto start = std::chrono::steady_clock::now();

  if (auto stream = MakeStreamCompressor(config)) {
    out.compressed = CompressAll(*stream, points);
    if (const DecisionStats* stats = stream->decision_stats()) {
      out.stats = *stats;
      out.has_stats = true;
    }
  } else if (config.id == AlgorithmId::kDp) {
    DouglasPeucker dp(DpOptions{config.epsilon, config.metric});
    out.compressed = dp.Compress(points);
  } else {
    SquishEOptions options;
    options.epsilon = config.epsilon;
    SquishE squish(options);
    out.compressed = squish.Compress(points);
  }

  const auto end = std::chrono::steady_clock::now();
  out.runtime_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  return out;
}

}  // namespace bqs
