// Evaluation metrics shared by benches and tests: the paper's compression
// rate and pruning power, plus bound-verification glue.
#ifndef BQS_EVAL_METRICS_H_
#define BQS_EVAL_METRICS_H_

#include <cstddef>

#include "core/decision_stats.h"
#include "trajectory/deviation.h"
#include "trajectory/trajectory.h"

namespace bqs {

/// N_compressed / N_original (paper Section VI-B; lower is better).
double CompressionRate(std::size_t compressed_points,
                       std::size_t original_points);

/// 1 - N_computed / N_total (paper Section VI-B; higher is better).
double PruningPower(const DecisionStats& stats);

/// Convenience bundle of everything a bench row needs.
struct CompressionQuality {
  std::size_t points_in = 0;
  std::size_t points_out = 0;
  double compression_rate = 0.0;
  double max_deviation = 0.0;
  bool error_bounded = false;  ///< max_deviation <= epsilon.
};

/// Verifies a compression end to end against the original stream.
CompressionQuality MeasureQuality(std::span<const TrackPoint> original,
                                  const CompressedTrajectory& compressed,
                                  double epsilon, DistanceMetric metric);

}  // namespace bqs

#endif  // BQS_EVAL_METRICS_H_
