#include "eval/metrics.h"

namespace bqs {

double CompressionRate(std::size_t compressed_points,
                       std::size_t original_points) {
  if (original_points == 0) return 0.0;
  return static_cast<double>(compressed_points) /
         static_cast<double>(original_points);
}

double PruningPower(const DecisionStats& stats) {
  return stats.PruningPower();
}

CompressionQuality MeasureQuality(std::span<const TrackPoint> original,
                                  const CompressedTrajectory& compressed,
                                  double epsilon, DistanceMetric metric) {
  CompressionQuality q;
  q.points_in = original.size();
  q.points_out = compressed.size();
  q.compression_rate = CompressionRate(q.points_out, q.points_in);
  const DeviationReport report =
      EvaluateCompression(original, compressed, metric);
  q.max_deviation = report.max_deviation;
  q.error_bounded = report.BoundedBy(epsilon);
  return q;
}

}  // namespace bqs
