// Fleet ingest bench + machine-readable baseline (BENCH_fleet.json).
//
// Measures FleetEngine throughput (points/sec, interleaved multi-vehicle
// feed, ingest through FinishAll) across ingest modes — inline (shards=0,
// no threads or queues) and the sharded pipeline as the shard count grows
// — against the sequential reference: every device's stream compressed
// alone through CompressAll on one thread. Every fleet run is
// checksum-verified per device against that reference; the FleetEngine
// invariant is that ingest mode never changes any device's compressed
// output. Pipeline counters (coalesced runs, block recycling, wakes,
// backpressure, queue depth) are reported so regressions can be localized.
//
// The run FAILS (exit 1, so CI fails) if:
//   - any per-device output diverges from the sequential reference, or
//   - the shards=1 or inline configuration falls below --min-seq-ratio
//     (default 0.9) of sequential throughput — the service layer must not
//     eat the kernel's speed.
//
// Usage: bench_fleet [scale | --scale S] [--out PATH] [--reps N]
//                    [--threads N | --threads=N]   (env: BQS_BENCH_THREADS)
//                    [--devices N] [--min-seq-ratio R]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "eval/table.h"
#include "service/fleet_engine.h"
#include "simulation/datasets.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

constexpr double kEpsilon = 10.0;  // Paper's evaluation tolerance (metres).
constexpr std::size_t kIngestChunk = 8192;  // Records per IngestBatch call.

/// Per-device running checksums, sharded into buckets so concurrent shard
/// threads rarely contend on the same mutex.
class ChecksumSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    Bucket& bucket = buckets_[device % kBuckets];
    std::lock_guard<std::mutex> lock(bucket.mu);
    auto [it, inserted] = bucket.sums.try_emplace(device, bench::kFnvOffset);
    it->second = bench::MixKeyPoint(it->second, key);
  }

  std::map<DeviceId, uint64_t> Collect() const {
    std::map<DeviceId, uint64_t> out;
    for (const Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> lock(bucket.mu);
      out.insert(bucket.sums.begin(), bucket.sums.end());
    }
    return out;
  }

 private:
  static constexpr std::size_t kBuckets = 64;
  struct Bucket {
    mutable std::mutex mu;
    std::unordered_map<DeviceId, uint64_t> sums;
  };
  Bucket buckets_[kBuckets];
};

struct EngineRun {
  std::string label;       ///< "inline" or "shards=N".
  std::size_t shards = 0;  ///< num_shards passed to the engine (0=inline).
  double best_ms = 0.0;
  double points_per_sec = 0.0;
  bool byte_identical = true;
  FleetStats stats;        ///< Counters from the last rep.
};

struct AlgorithmReport {
  std::string name;
  double sequential_best_ms = 0.0;
  double sequential_points_per_sec = 0.0;
  std::vector<EngineRun> runs;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

int Run(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_fleet.json");
  const int reps = std::clamp(
      std::atoi(bench::StringFlag(argc, argv, "--reps", "3").c_str()), 1,
      100);
  const int max_threads =
      bench::IntFlag(argc, argv, "--threads", "BQS_BENCH_THREADS", 8);
  const std::size_t num_devices = static_cast<std::size_t>(
      bench::IntFlag(argc, argv, "--devices", nullptr, 24));
  // The service-overhead gate: inline and shards=1 ingest must reach this
  // fraction of sequential CompressAll throughput. CI smoke runs may relax
  // it for runner noise; the committed baseline is produced at the default.
  const double min_seq_ratio =
      bench::DoubleFlag(argc, argv, "--min-seq-ratio", nullptr, 0.9);

  bench::Banner(
      "Fleet ingest — points/sec through the FleetEngine pipeline (inline "
      "and sharded) vs the sequential per-device reference (eps = 10 m)",
      "Deployment shape beyond the paper: many concurrent device streams "
      "multiplexed over the single-stream compressors",
      scale);

  const FleetDataset fleet = BuildFleetDataset(num_devices, scale);
  const std::size_t total_points = fleet.feed.size();
  std::printf("fleet: %zu devices, %zu interleaved records, %d reps, "
              "inline + shard sweep up to %d threads, seq-ratio gate %.2f\n",
              fleet.devices.size(), total_points, reps, max_threads,
              min_seq_ratio);

  // Engine configurations: inline mode first, then the shard sweep.
  std::vector<std::pair<std::string, std::size_t>> configs;
  configs.emplace_back("inline", 0);
  for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    if (s <= static_cast<std::size_t>(max_threads)) {
      configs.emplace_back("shards=" + std::to_string(s), s);
    }
  }

  struct AlgorithmCase {
    const char* label;
    AlgorithmId id;
  };
  const AlgorithmCase algorithm_cases[] = {
      {"BQS", AlgorithmId::kBqs},
      {"FBQS", AlgorithmId::kFbqs},
  };

  bool all_identical = true;
  std::vector<std::string> gate_failures;
  std::vector<AlgorithmReport> reports;

  for (const AlgorithmCase& algorithm_case : algorithm_cases) {
    AlgorithmConfig config;
    config.id = algorithm_case.id;
    config.epsilon = kEpsilon;

    AlgorithmReport report;
    report.name = algorithm_case.label;

    // Sequential reference: one thread, each device's stream alone. Also
    // produces the per-device checksums every fleet run must reproduce.
    std::map<DeviceId, uint64_t> reference;
    for (int r = 0; r < reps; ++r) {
      reference.clear();
      auto compressor = MakeStreamCompressor(config);
      const auto start = std::chrono::steady_clock::now();
      for (const auto& [device, stream] : fleet.devices) {
        reference[device] = bench::ChecksumKeys(
            CompressAll(*compressor, stream).keys);
      }
      const double ms = MsSince(start);
      if (r == 0 || ms < report.sequential_best_ms) {
        report.sequential_best_ms = ms;
      }
    }
    report.sequential_points_per_sec =
        Ratio(static_cast<double>(total_points),
              report.sequential_best_ms / 1000.0);

    for (const auto& [label, shards] : configs) {
      EngineRun run;
      run.label = label;
      run.shards = shards;
      for (int r = 0; r < reps; ++r) {
        ChecksumSink sink;
        FleetEngineOptions options;
        options.algorithm = config;
        options.num_shards = shards;
        FleetEngine engine(options, sink);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < fleet.feed.size(); i += kIngestChunk) {
          const std::size_t n =
              std::min(kIngestChunk, fleet.feed.size() - i);
          engine.IngestBatch(
              std::span<const FleetRecord>(fleet.feed.data() + i, n));
        }
        engine.FinishAll();
        const double ms = MsSince(start);
        if (r == 0 || ms < run.best_ms) run.best_ms = ms;
        run.byte_identical = run.byte_identical &&
                             sink.Collect() == reference;
        run.stats = engine.Stats();
      }
      run.points_per_sec =
          Ratio(static_cast<double>(total_points), run.best_ms / 1000.0);
      all_identical = all_identical && run.byte_identical;
      report.runs.push_back(run);
    }
    reports.push_back(std::move(report));
  }

  // ---- human-readable table ----
  for (const AlgorithmReport& report : reports) {
    std::printf("\n-- %s --\n", report.name.c_str());
    TablePrinter table({"config", "points/sec", "best_ms", "vs_seq",
                        "runs/blk/wakes/bp", "identical"});
    table.AddRow({"sequential",
                  FmtDouble(report.sequential_points_per_sec, 0),
                  FmtDouble(report.sequential_best_ms, 2), "1.00", "-",
                  "ref"});
    for (const EngineRun& run : report.runs) {
      const double speedup = Ratio(report.sequential_best_ms, run.best_ms);
      const FleetStats& s = run.stats;
      table.AddRow(
          {run.label, FmtDouble(run.points_per_sec, 0),
           FmtDouble(run.best_ms, 2), FmtDouble(speedup, 2),
           std::to_string(s.coalesced_runs) + "/" +
               std::to_string(s.blocks_dispatched) + "/" +
               std::to_string(s.worker_wakes) + "/" +
               std::to_string(s.backpressure_waits),
           run.byte_identical ? "yes" : "DIVERGED"});
    }
    table.Print(std::cout);
  }

  // ---- machine-readable report ----
  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema").Value("bqs-bench-fleet-v2");
  json.Key("scale").Value(scale);
  json.Key("epsilon").Value(kEpsilon);
  json.Key("reps").Value(reps);
  json.Key("devices").Value(static_cast<uint64_t>(fleet.devices.size()));
  json.Key("records").Value(static_cast<uint64_t>(total_points));
  json.Key("ingest_chunk").Value(static_cast<uint64_t>(kIngestChunk));
  json.Key("min_seq_ratio").Value(min_seq_ratio);
  json.Key("algorithms").BeginArray();
  for (const AlgorithmReport& report : reports) {
    json.BeginObject();
    json.Key("name").Value(report.name);
    json.Key("sequential_best_ms").Value(report.sequential_best_ms);
    json.Key("sequential_points_per_sec")
        .Value(report.sequential_points_per_sec);
    json.Key("runs").BeginArray();
    double best_multi = 0.0;
    double one_shard = 0.0;
    for (const EngineRun& run : report.runs) {
      json.BeginObject();
      json.Key("config").Value(run.label);
      json.Key("shards").Value(static_cast<uint64_t>(run.shards));
      json.Key("best_ms").Value(run.best_ms);
      json.Key("points_per_sec").Value(run.points_per_sec);
      json.Key("speedup_vs_sequential")
          .Value(Ratio(report.sequential_best_ms, run.best_ms));
      json.Key("byte_identical").Value(run.byte_identical);
      const FleetStats& s = run.stats;
      json.Key("counters").BeginObject();
      json.Key("coalesced_runs").Value(s.coalesced_runs);
      json.Key("blocks_dispatched").Value(s.blocks_dispatched);
      json.Key("blocks_allocated").Value(s.blocks_allocated);
      json.Key("blocks_recycled").Value(s.blocks_recycled);
      json.Key("worker_wakes").Value(s.worker_wakes);
      json.Key("backpressure_waits").Value(s.backpressure_waits);
      json.Key("peak_queue_depth")
          .Value(static_cast<uint64_t>(s.peak_queue_depth));
      json.EndObject();
      json.EndObject();
      if (run.shards == 1) one_shard = run.points_per_sec;
      if (run.shards > 1) best_multi = std::max(best_multi,
                                                run.points_per_sec);
    }
    json.EndArray();
    json.Key("multi_shard_speedup_vs_1shard")
        .Value(Ratio(best_multi, one_shard));
    json.EndObject();
  }
  json.EndArray();
  json.Key("all_byte_identical").Value(all_identical);
  json.EndObject();

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  // ---- exit gates ----
  // 1. The service layer must not eat the kernel's speed: inline and
  //    shards=1 each have to reach min_seq_ratio of sequential.
  for (const AlgorithmReport& report : reports) {
    for (const EngineRun& run : report.runs) {
      if (run.shards > 1) continue;
      const double ratio = Ratio(report.sequential_best_ms, run.best_ms);
      if (ratio < min_seq_ratio) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s %s at %.2fx of sequential (gate %.2f)",
                      report.name.c_str(), run.label.c_str(), ratio,
                      min_seq_ratio);
        gate_failures.push_back(buf);
      }
    }
  }
  // 2. Byte identity across every ingest mode.
  if (!all_identical) {
    gate_failures.push_back(
        "per-device output diverged from the sequential CompressAll "
        "reference");
  }

  if (!gate_failures.empty()) {
    std::fprintf(stderr, "\nbench_fleet FAILED:\n");
    for (const std::string& failure : gate_failures) {
      std::fprintf(stderr, "  - %s\n", failure.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) { return bqs::Run(argc, argv); }
