// Fleet ingest bench + machine-readable baseline (BENCH_fleet.json).
//
// Measures FleetEngine throughput (points/sec, interleaved multi-vehicle
// feed, ingest through FinishAll) as the shard count grows, against the
// sequential reference: every device's stream compressed alone through
// CompressAll on one thread. Every fleet run is checksum-verified per
// device against that reference — the FleetEngine invariant is that shard
// count never changes any device's compressed output. The run FAILS
// (exit 1, so CI fails) on any divergence.
//
// Usage: bench_fleet [scale | --scale S] [--out PATH] [--reps N]
//                    [--threads N | --threads=N]   (env: BQS_BENCH_THREADS)
//                    [--devices N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "eval/table.h"
#include "service/fleet_engine.h"
#include "simulation/datasets.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

constexpr double kEpsilon = 10.0;  // Paper's evaluation tolerance (metres).
constexpr std::size_t kIngestChunk = 8192;  // Records per IngestBatch call.

/// Per-device running checksums, sharded into buckets so concurrent shard
/// threads rarely contend on the same mutex.
class ChecksumSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    Bucket& bucket = buckets_[device % kBuckets];
    std::lock_guard<std::mutex> lock(bucket.mu);
    auto [it, inserted] = bucket.sums.try_emplace(device, bench::kFnvOffset);
    it->second = bench::MixKeyPoint(it->second, key);
  }

  std::map<DeviceId, uint64_t> Collect() const {
    std::map<DeviceId, uint64_t> out;
    for (const Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> lock(bucket.mu);
      out.insert(bucket.sums.begin(), bucket.sums.end());
    }
    return out;
  }

 private:
  static constexpr std::size_t kBuckets = 64;
  struct Bucket {
    mutable std::mutex mu;
    std::unordered_map<DeviceId, uint64_t> sums;
  };
  Bucket buckets_[kBuckets];
};

struct ShardRun {
  std::size_t shards = 0;
  double best_ms = 0.0;
  double points_per_sec = 0.0;
  bool byte_identical = true;
};

struct AlgorithmReport {
  std::string name;
  double sequential_best_ms = 0.0;
  double sequential_points_per_sec = 0.0;
  std::vector<ShardRun> runs;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int Run(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_fleet.json");
  const int reps = std::clamp(
      std::atoi(bench::StringFlag(argc, argv, "--reps", "3").c_str()), 1,
      100);
  const int max_threads =
      bench::IntFlag(argc, argv, "--threads", "BQS_BENCH_THREADS", 8);
  const std::size_t num_devices = static_cast<std::size_t>(
      bench::IntFlag(argc, argv, "--devices", nullptr, 24));

  bench::Banner(
      "Fleet ingest — points/sec through the sharded FleetEngine vs the "
      "sequential per-device reference (eps = 10 m)",
      "Deployment shape beyond the paper: many concurrent device streams "
      "multiplexed over the single-stream compressors",
      scale);

  const FleetDataset fleet = BuildFleetDataset(num_devices, scale);
  const std::size_t total_points = fleet.feed.size();
  std::printf("fleet: %zu devices, %zu interleaved records, %d reps, "
              "shard sweep up to %d threads\n",
              fleet.devices.size(), total_points, reps, max_threads);

  std::vector<std::size_t> shard_counts;
  for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    if (s <= static_cast<std::size_t>(max_threads)) shard_counts.push_back(s);
  }
  if (shard_counts.empty()) shard_counts.push_back(1);

  struct AlgorithmCase {
    const char* label;
    AlgorithmId id;
  };
  const AlgorithmCase algorithm_cases[] = {
      {"BQS", AlgorithmId::kBqs},
      {"FBQS", AlgorithmId::kFbqs},
  };

  bool all_identical = true;
  std::vector<AlgorithmReport> reports;

  for (const AlgorithmCase& algorithm_case : algorithm_cases) {
    AlgorithmConfig config;
    config.id = algorithm_case.id;
    config.epsilon = kEpsilon;

    AlgorithmReport report;
    report.name = algorithm_case.label;

    // Sequential reference: one thread, each device's stream alone. Also
    // produces the per-device checksums every fleet run must reproduce.
    std::map<DeviceId, uint64_t> reference;
    for (int r = 0; r < reps; ++r) {
      reference.clear();
      auto compressor = MakeStreamCompressor(config);
      const auto start = std::chrono::steady_clock::now();
      for (const auto& [device, stream] : fleet.devices) {
        reference[device] = bench::ChecksumKeys(
            CompressAll(*compressor, stream).keys);
      }
      const double ms = MsSince(start);
      if (r == 0 || ms < report.sequential_best_ms) {
        report.sequential_best_ms = ms;
      }
    }
    report.sequential_points_per_sec =
        report.sequential_best_ms > 0.0
            ? static_cast<double>(total_points) /
                  (report.sequential_best_ms / 1000.0)
            : 0.0;

    for (const std::size_t shards : shard_counts) {
      ShardRun run;
      run.shards = shards;
      for (int r = 0; r < reps; ++r) {
        ChecksumSink sink;
        FleetEngineOptions options;
        options.algorithm = config;
        options.num_shards = shards;
        FleetEngine engine(options, sink);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < fleet.feed.size(); i += kIngestChunk) {
          const std::size_t n =
              std::min(kIngestChunk, fleet.feed.size() - i);
          engine.IngestBatch(
              std::span<const FleetRecord>(fleet.feed.data() + i, n));
        }
        engine.FinishAll();
        const double ms = MsSince(start);
        if (r == 0 || ms < run.best_ms) run.best_ms = ms;
        run.byte_identical = run.byte_identical &&
                             sink.Collect() == reference;
      }
      run.points_per_sec =
          run.best_ms > 0.0 ? static_cast<double>(total_points) /
                                  (run.best_ms / 1000.0)
                            : 0.0;
      all_identical = all_identical && run.byte_identical;
      report.runs.push_back(run);
    }
    reports.push_back(std::move(report));
  }

  // ---- human-readable table ----
  for (const AlgorithmReport& report : reports) {
    std::printf("\n-- %s --\n", report.name.c_str());
    TablePrinter table(
        {"config", "points/sec", "best_ms", "speedup_vs_seq", "identical"});
    table.AddRow({"sequential",
                  FmtDouble(report.sequential_points_per_sec, 0),
                  FmtDouble(report.sequential_best_ms, 2), "1.00", "ref"});
    for (const ShardRun& run : report.runs) {
      const double speedup =
          report.sequential_best_ms > 0.0 && run.best_ms > 0.0
              ? report.sequential_best_ms / run.best_ms
              : 0.0;
      table.AddRow({"fleet x" + std::to_string(run.shards),
                    FmtDouble(run.points_per_sec, 0),
                    FmtDouble(run.best_ms, 2), FmtDouble(speedup, 2),
                    run.byte_identical ? "yes" : "DIVERGED"});
    }
    table.Print(std::cout);
  }

  // ---- machine-readable report ----
  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema").Value("bqs-bench-fleet-v1");
  json.Key("scale").Value(scale);
  json.Key("epsilon").Value(kEpsilon);
  json.Key("reps").Value(reps);
  json.Key("devices").Value(static_cast<uint64_t>(fleet.devices.size()));
  json.Key("records").Value(static_cast<uint64_t>(total_points));
  json.Key("ingest_chunk").Value(static_cast<uint64_t>(kIngestChunk));
  json.Key("algorithms").BeginArray();
  for (const AlgorithmReport& report : reports) {
    json.BeginObject();
    json.Key("name").Value(report.name);
    json.Key("sequential_best_ms").Value(report.sequential_best_ms);
    json.Key("sequential_points_per_sec")
        .Value(report.sequential_points_per_sec);
    json.Key("shard_runs").BeginArray();
    double best_multi = 0.0;
    double one_shard = 0.0;
    for (const ShardRun& run : report.runs) {
      json.BeginObject();
      json.Key("shards").Value(static_cast<uint64_t>(run.shards));
      json.Key("best_ms").Value(run.best_ms);
      json.Key("points_per_sec").Value(run.points_per_sec);
      json.Key("byte_identical").Value(run.byte_identical);
      json.EndObject();
      if (run.shards == 1) one_shard = run.points_per_sec;
      if (run.shards > 1) best_multi = std::max(best_multi,
                                                run.points_per_sec);
    }
    json.EndArray();
    json.Key("multi_shard_speedup_vs_1shard")
        .Value(one_shard > 0.0 ? best_multi / one_shard : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.Key("all_byte_identical").Value(all_identical);
  json.EndObject();

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: FleetEngine per-device output diverged from the "
                 "sequential CompressAll reference\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) { return bqs::Run(argc, argv); }
