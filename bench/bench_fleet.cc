// Fleet ingest bench + machine-readable baseline (BENCH_fleet.json).
//
// Measures FleetEngine throughput (points/sec, interleaved multi-vehicle
// feed, ingest through FinishAll) across ingest modes — inline (shards=0,
// no threads or queues) and the sharded pipeline as the shard count grows
// — against the sequential reference: every device's stream compressed
// alone through CompressAll on one thread. Every fleet run is
// checksum-verified per device against that reference; the FleetEngine
// invariant is that ingest mode never changes any device's compressed
// output. Pipeline counters (coalesced runs, block recycling, wakes,
// backpressure, queue depth) are reported so regressions can be localized.
//
// The run FAILS (exit 1, so CI fails) if:
//   - any per-device output diverges from the sequential reference, or
//   - the shards=1 or inline configuration falls below --min-seq-ratio
//     (default 0.9) of sequential throughput — the service layer must not
//     eat the kernel's speed, or
//   - an overload scenario (below) breaks its own limits.
//
// Overload scenario suite: three deployment-shaped stress runs exercising
// the admission-control layer — a Zipf-skewed feed under kShedByDevice
// (the hot device rate-limits itself before starving cold ones), device
// churn under kShedNewest with a per-batch latency budget, and a memory
// squeeze that walks sessions down the eps-coarsening ladder. Each row
// reports p99 per-IngestBatch ingest latency and the shed rate, carries
// its own limits (p99_limit_ms, shed_rate_limit) into BENCH_fleet.json for
// check_perf to re-gate, and fails the run when a limit is broken or when
// a record goes unaccounted (ingested + shed + dropped must equal fed).
// Shedding and degradation intentionally change output, so these rows are
// excluded from the byte-identity gate — which stays mandatory for every
// non-degraded configuration above.
//
// Usage: bench_fleet [scale | --scale S] [--out PATH] [--reps N]
//                    [--threads N | --threads=N]   (env: BQS_BENCH_THREADS)
//                    [--devices N] [--min-seq-ratio R]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "eval/table.h"
#include "service/fleet_engine.h"
#include "simulation/datasets.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

constexpr double kEpsilon = 10.0;  // Paper's evaluation tolerance (metres).
constexpr std::size_t kIngestChunk = 8192;  // Records per IngestBatch call.

/// Per-device running checksums, sharded into buckets so concurrent shard
/// threads rarely contend on the same mutex.
class ChecksumSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId device, const KeyPoint& key) override {
    Bucket& bucket = buckets_[device % kBuckets];
    std::lock_guard<std::mutex> lock(bucket.mu);
    auto [it, inserted] = bucket.sums.try_emplace(device, bench::kFnvOffset);
    it->second = bench::MixKeyPoint(it->second, key);
  }

  std::map<DeviceId, uint64_t> Collect() const {
    std::map<DeviceId, uint64_t> out;
    for (const Bucket& bucket : buckets_) {
      std::lock_guard<std::mutex> lock(bucket.mu);
      out.insert(bucket.sums.begin(), bucket.sums.end());
    }
    return out;
  }

 private:
  static constexpr std::size_t kBuckets = 64;
  struct Bucket {
    mutable std::mutex mu;
    std::unordered_map<DeviceId, uint64_t> sums;
  };
  Bucket buckets_[kBuckets];
};

struct EngineRun {
  std::string label;       ///< "inline" or "shards=N".
  std::size_t shards = 0;  ///< num_shards passed to the engine (0=inline).
  double best_ms = 0.0;
  double points_per_sec = 0.0;
  bool byte_identical = true;
  FleetStats stats;        ///< Counters from the last rep.
};

struct AlgorithmReport {
  std::string name;
  double sequential_best_ms = 0.0;
  double sequential_points_per_sec = 0.0;
  std::vector<EngineRun> runs;
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }

// ---------------------------------------------------------------------------
// Overload scenario suite.
// ---------------------------------------------------------------------------

/// Key counting only — the overload scenarios measure admission latency and
/// shed accounting, not output bytes (shed/degraded output is intentionally
/// not byte-identical), so the sink must stay off the critical path.
class CountingSink final : public FleetSink {
 public:
  void OnKeyPoint(DeviceId, const KeyPoint&) override {
    keys_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t keys() const { return keys_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> keys_{0};
};

/// Zipf(s=1)-skewed fleet feed: device ranks weighted 1/rank, one shared
/// stream clock at `rate_hz` aggregate records/sec. Rank 1 receives ~21% of
/// a 64-device feed (1/H_64), putting it just over the scenario's per-device
/// admission rate while every other device stays comfortably under.
std::vector<FleetRecord> BuildZipfFeed(std::size_t num_devices,
                                       std::size_t records, double rate_hz,
                                       uint64_t seed) {
  std::vector<double> cdf(num_devices);
  double sum = 0.0;
  for (std::size_t d = 0; d < num_devices; ++d) {
    sum += 1.0 / static_cast<double>(d + 1);
    cdf[d] = sum;
  }
  for (double& c : cdf) c /= sum;

  Rng rng(seed);
  std::vector<Vec2> pos(num_devices);
  for (Vec2& p : pos) {
    p = {rng.Uniform(-2000.0, 2000.0), rng.Uniform(-2000.0, 2000.0)};
  }
  std::vector<FleetRecord> feed;
  feed.reserve(records);
  const double dt = 1.0 / rate_hz;
  for (std::size_t r = 0; r < records; ++r) {
    const double u = rng.Uniform(0.0, 1.0);
    const std::size_t d = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    pos[d] += {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
    feed.push_back({static_cast<DeviceId>(d + 1),
                    {pos[d], static_cast<double>(r) * dt, {0.0, 0.0}}});
  }
  return feed;
}

/// Device-churn feed: `waves` cohorts of `per_wave` devices, each cohort
/// streaming for one contiguous third of the feed then going silent — the
/// shape that exercises idle-timeout closure under a latency budget.
std::vector<FleetRecord> BuildChurnFeed(std::size_t waves,
                                        std::size_t per_wave,
                                        std::size_t records, double rate_hz,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<FleetRecord> feed;
  feed.reserve(records);
  const double dt = 1.0 / rate_hz;
  std::vector<Vec2> pos(per_wave);
  std::size_t r = 0;
  for (std::size_t w = 0; w < waves; ++w) {
    const DeviceId base = static_cast<DeviceId>(w * per_wave + 1);
    for (Vec2& p : pos) {
      p = {rng.Uniform(-2000.0, 2000.0), rng.Uniform(-2000.0, 2000.0)};
    }
    const std::size_t wave_end =
        (w + 1 == waves) ? records : (records / waves) * (w + 1);
    std::size_t k = 0;
    while (r < wave_end) {
      const std::size_t d = k++ % per_wave;
      const std::size_t burst = static_cast<std::size_t>(
          std::min<int64_t>(rng.UniformInt(1, 6),
                            static_cast<int64_t>(wave_end - r)));
      for (std::size_t b = 0; b < burst; ++b, ++r) {
        pos[d] += {rng.Uniform(-3.0, 3.0), rng.Uniform(-3.0, 3.0)};
        feed.push_back({static_cast<DeviceId>(base + d),
                        {pos[d], static_cast<double>(r) * dt, {0.0, 0.0}}});
      }
    }
  }
  return feed;
}

struct OverloadScenario {
  std::string name;
  std::string policy_label;
  std::vector<FleetRecord> feed;
  FleetEngineOptions options;
  std::size_t chunk = 2048;
  // Self-limits carried into the JSON row; check_perf re-gates them.
  double p99_limit_ms = 25.0;
  double shed_rate_limit = 0.9;
  uint64_t min_shed = 0;         ///< Gate: records_shed >= this.
  uint64_t min_degraded = 0;     ///< Gate: sessions_degraded >= this.
  double max_bound_limit = 0.0;  ///< Gate: max_error_bound <= this (0=off).
};

struct OverloadResult {
  std::size_t batches = 0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double shed_rate = 0.0;
  bool invariant_ok = false;
  FleetStats stats;
};

double Percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank =
      std::ceil(p * static_cast<double>(samples.size())) - 1.0;
  const std::size_t idx = static_cast<std::size_t>(
      std::clamp(rank, 0.0, static_cast<double>(samples.size()) - 1.0));
  return samples[idx];
}

/// Runs one scenario `reps` times and keeps the rep with the lowest p99
/// (gates are upper bounds, so best-of-reps filters scheduler noise the
/// same way best_ms does for the throughput sweep above).
OverloadResult RunOverloadScenario(const OverloadScenario& scenario,
                                   int reps) {
  OverloadResult best;
  for (int rep = 0; rep < reps; ++rep) {
    CountingSink sink;
    FleetEngine engine(scenario.options, sink);
    std::vector<double> batch_ms;
    batch_ms.reserve(scenario.feed.size() / scenario.chunk + 1);
    for (std::size_t i = 0; i < scenario.feed.size();
         i += scenario.chunk) {
      const std::size_t n =
          std::min(scenario.chunk, scenario.feed.size() - i);
      const auto start = std::chrono::steady_clock::now();
      engine.IngestBatch(
          std::span<const FleetRecord>(scenario.feed.data() + i, n));
      batch_ms.push_back(MsSince(start));
    }
    engine.FinishAll();

    OverloadResult result;
    result.batches = batch_ms.size();
    result.max_ms = *std::max_element(batch_ms.begin(), batch_ms.end());
    result.p99_ms = Percentile(batch_ms, 0.99);
    result.stats = engine.Stats();
    const uint64_t fed = static_cast<uint64_t>(scenario.feed.size());
    result.invariant_ok = result.stats.records_ingested +
                              result.stats.records_shed +
                              result.stats.records_dropped ==
                          fed;
    result.shed_rate =
        Ratio(static_cast<double>(result.stats.records_shed),
              static_cast<double>(fed));
    if (rep == 0 || result.p99_ms < best.p99_ms) best = result;
  }
  return best;
}

int Run(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_fleet.json");
  const int reps = std::clamp(
      std::atoi(bench::StringFlag(argc, argv, "--reps", "3").c_str()), 1,
      100);
  const int max_threads =
      bench::IntFlag(argc, argv, "--threads", "BQS_BENCH_THREADS", 8);
  const std::size_t num_devices = static_cast<std::size_t>(
      bench::IntFlag(argc, argv, "--devices", nullptr, 24));
  // The service-overhead gate: inline and shards=1 ingest must reach this
  // fraction of sequential CompressAll throughput. CI smoke runs may relax
  // it for runner noise; the committed baseline is produced at the default.
  const double min_seq_ratio =
      bench::DoubleFlag(argc, argv, "--min-seq-ratio", nullptr, 0.9);

  bench::Banner(
      "Fleet ingest — points/sec through the FleetEngine pipeline (inline "
      "and sharded) vs the sequential per-device reference (eps = 10 m)",
      "Deployment shape beyond the paper: many concurrent device streams "
      "multiplexed over the single-stream compressors",
      scale);

  const FleetDataset fleet = BuildFleetDataset(num_devices, scale);
  const std::size_t total_points = fleet.feed.size();
  std::printf("fleet: %zu devices, %zu interleaved records, %d reps, "
              "inline + shard sweep up to %d threads, seq-ratio gate %.2f\n",
              fleet.devices.size(), total_points, reps, max_threads,
              min_seq_ratio);

  // Engine configurations: inline mode first, then the shard sweep.
  std::vector<std::pair<std::string, std::size_t>> configs;
  configs.emplace_back("inline", 0);
  for (const std::size_t s : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    if (s <= static_cast<std::size_t>(max_threads)) {
      configs.emplace_back("shards=" + std::to_string(s), s);
    }
  }

  struct AlgorithmCase {
    const char* label;
    AlgorithmId id;
  };
  const AlgorithmCase algorithm_cases[] = {
      {"BQS", AlgorithmId::kBqs},
      {"FBQS", AlgorithmId::kFbqs},
  };

  bool all_identical = true;
  std::vector<std::string> gate_failures;
  std::vector<AlgorithmReport> reports;

  for (const AlgorithmCase& algorithm_case : algorithm_cases) {
    AlgorithmConfig config;
    config.id = algorithm_case.id;
    config.epsilon = kEpsilon;

    AlgorithmReport report;
    report.name = algorithm_case.label;

    // Sequential reference: one thread, each device's stream alone. Also
    // produces the per-device checksums every fleet run must reproduce.
    std::map<DeviceId, uint64_t> reference;
    for (int r = 0; r < reps; ++r) {
      reference.clear();
      auto compressor = MakeStreamCompressor(config);
      const auto start = std::chrono::steady_clock::now();
      for (const auto& [device, stream] : fleet.devices) {
        reference[device] = bench::ChecksumKeys(
            CompressAll(*compressor, stream).keys);
      }
      const double ms = MsSince(start);
      if (r == 0 || ms < report.sequential_best_ms) {
        report.sequential_best_ms = ms;
      }
    }
    report.sequential_points_per_sec =
        Ratio(static_cast<double>(total_points),
              report.sequential_best_ms / 1000.0);

    for (const auto& [label, shards] : configs) {
      EngineRun run;
      run.label = label;
      run.shards = shards;
      for (int r = 0; r < reps; ++r) {
        ChecksumSink sink;
        FleetEngineOptions options;
        options.algorithm = config;
        options.num_shards = shards;
        FleetEngine engine(options, sink);
        const auto start = std::chrono::steady_clock::now();
        for (std::size_t i = 0; i < fleet.feed.size(); i += kIngestChunk) {
          const std::size_t n =
              std::min(kIngestChunk, fleet.feed.size() - i);
          engine.IngestBatch(
              std::span<const FleetRecord>(fleet.feed.data() + i, n));
        }
        engine.FinishAll();
        const double ms = MsSince(start);
        if (r == 0 || ms < run.best_ms) run.best_ms = ms;
        run.byte_identical = run.byte_identical &&
                             sink.Collect() == reference;
        run.stats = engine.Stats();
      }
      run.points_per_sec =
          Ratio(static_cast<double>(total_points), run.best_ms / 1000.0);
      all_identical = all_identical && run.byte_identical;
      report.runs.push_back(run);
    }
    reports.push_back(std::move(report));
  }

  // ---- overload scenario suite ----
  // Deployment-shaped stress runs against the admission-control layer. All
  // three use BQS at the sweep epsilon; the sharded ones use deliberately
  // small rings/blocks so genuine producer-vs-worker imbalance (not fault
  // injection) drives the overload.
  const std::size_t shed_shards = std::clamp<std::size_t>(
      static_cast<std::size_t>(max_threads), 2, 4);
  std::vector<OverloadScenario> scenarios;
  {
    // 1. Zipf-skewed fleet under kShedByDevice with a zero latency budget
    //    and a one-block ring: every full-ring seal compacts through the
    //    token buckets. The hot device (~21% of a 200 rec/s feed, ~42/s)
    //    runs far over the 10/s admission rate and sheds its over-rate
    //    suffix at compaction; most other devices stay under and keep
    //    their records re-queued. min_shed pins that overload actually
    //    occurred — a fast worker cannot silently turn this row into a
    //    no-op.
    OverloadScenario zipf;
    zipf.name = "zipf_hot_device";
    zipf.policy_label = "shed_by_device";
    zipf.feed = BuildZipfFeed(
        64, static_cast<std::size_t>(std::max(20000.0, 120000.0 * scale)),
        200.0, 6101);
    zipf.options.algorithm.id = AlgorithmId::kBqs;
    zipf.options.algorithm.epsilon = kEpsilon;
    zipf.options.num_shards = shed_shards;
    zipf.options.block_capacity = 256;
    zipf.options.max_pending_blocks = 1;
    zipf.options.overload.policy = OverloadPolicy::kShedByDevice;
    zipf.options.overload.device_rate_per_second = 10.0;
    zipf.options.overload.latency_budget_ms = 0.0;
    zipf.shed_rate_limit = 0.95;
    zipf.min_shed = 1;
    scenarios.push_back(std::move(zipf));

    // 2. Device churn under kShedNewest + latency budget: three cohorts
    //    arrive and go silent in sequence, idle timeout reclaims the dead
    //    cohort's sessions while ingest latency stays budgeted.
    OverloadScenario churn;
    churn.name = "churn";
    churn.policy_label = "shed_newest";
    churn.feed = BuildChurnFeed(
        3, 40, static_cast<std::size_t>(std::max(15000.0, 90000.0 * scale)),
        100.0, 6202);
    churn.options.algorithm.id = AlgorithmId::kBqs;
    churn.options.algorithm.epsilon = kEpsilon;
    churn.options.num_shards = shed_shards;
    churn.options.block_capacity = 256;
    churn.options.max_pending_blocks = 1;
    churn.options.idle_timeout_seconds = 60.0;
    churn.options.overload.policy = OverloadPolicy::kShedNewest;
    churn.options.overload.latency_budget_ms = 2.0;
    scenarios.push_back(std::move(churn));

    // 3. Memory squeeze in inline mode: a budget far below the fleet's
    //    natural footprint forces sessions down the eps ladder. Inline mode
    //    never sheds (shed_rate_limit 0 gates that), sessions must degrade
    //    (min_degraded gates that), and no session may ever honor a bound
    //    wider than the last rung (max_bound_limit gates that). Fully
    //    deterministic: no threads, decisions keyed on stream time.
    OverloadScenario squeeze;
    squeeze.name = "memory_squeeze";
    squeeze.policy_label = "block";
    {
      const FleetDataset squeeze_fleet =
          BuildFleetDataset(16, std::max(0.2, scale), 6303);
      squeeze.feed = squeeze_fleet.feed;
    }
    squeeze.options.algorithm.id = AlgorithmId::kBqs;
    squeeze.options.algorithm.epsilon = kEpsilon;
    squeeze.options.num_shards = 0;
    squeeze.options.memory_budget_bytes = 24 * 1024;
    squeeze.options.overload.eps_ladder = {2.0, 4.0};
    squeeze.p99_limit_ms = 50.0;
    squeeze.shed_rate_limit = 0.0;
    squeeze.min_degraded = 1;
    squeeze.max_bound_limit = kEpsilon * 4.0;
    scenarios.push_back(std::move(squeeze));
  }

  std::vector<OverloadResult> overload_results;
  overload_results.reserve(scenarios.size());
  for (const OverloadScenario& scenario : scenarios) {
    overload_results.push_back(RunOverloadScenario(scenario, reps));
  }

  // ---- human-readable table ----
  for (const AlgorithmReport& report : reports) {
    std::printf("\n-- %s --\n", report.name.c_str());
    TablePrinter table({"config", "points/sec", "best_ms", "vs_seq",
                        "runs/blk/wakes/bp", "identical"});
    table.AddRow({"sequential",
                  FmtDouble(report.sequential_points_per_sec, 0),
                  FmtDouble(report.sequential_best_ms, 2), "1.00", "-",
                  "ref"});
    for (const EngineRun& run : report.runs) {
      const double speedup = Ratio(report.sequential_best_ms, run.best_ms);
      const FleetStats& s = run.stats;
      table.AddRow(
          {run.label, FmtDouble(run.points_per_sec, 0),
           FmtDouble(run.best_ms, 2), FmtDouble(speedup, 2),
           std::to_string(s.coalesced_runs) + "/" +
               std::to_string(s.blocks_dispatched) + "/" +
               std::to_string(s.worker_wakes) + "/" +
               std::to_string(s.backpressure_waits),
           run.byte_identical ? "yes" : "DIVERGED"});
    }
    table.Print(std::cout);
  }

  std::printf("\n-- overload scenarios --\n");
  {
    TablePrinter table({"scenario", "policy", "records", "p99_ms",
                        "shed_rate", "shed/degr/evict", "max_eps", "ok"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const OverloadScenario& scenario = scenarios[i];
      const OverloadResult& result = overload_results[i];
      const FleetStats& s = result.stats;
      table.AddRow(
          {scenario.name, scenario.policy_label,
           std::to_string(scenario.feed.size()),
           FmtDouble(result.p99_ms, 3), FmtDouble(result.shed_rate, 3),
           std::to_string(s.records_shed) + "/" +
               std::to_string(s.sessions_degraded) + "/" +
               std::to_string(s.sessions_evicted),
           FmtDouble(s.max_error_bound, 1),
           result.invariant_ok ? "yes" : "UNACCOUNTED"});
    }
    table.Print(std::cout);
  }

  // ---- machine-readable report ----
  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema").Value("bqs-bench-fleet-v2");
  json.Key("scale").Value(scale);
  json.Key("epsilon").Value(kEpsilon);
  json.Key("reps").Value(reps);
  json.Key("devices").Value(static_cast<uint64_t>(fleet.devices.size()));
  json.Key("records").Value(static_cast<uint64_t>(total_points));
  json.Key("ingest_chunk").Value(static_cast<uint64_t>(kIngestChunk));
  json.Key("min_seq_ratio").Value(min_seq_ratio);
  json.Key("algorithms").BeginArray();
  for (const AlgorithmReport& report : reports) {
    json.BeginObject();
    json.Key("name").Value(report.name);
    json.Key("sequential_best_ms").Value(report.sequential_best_ms);
    json.Key("sequential_points_per_sec")
        .Value(report.sequential_points_per_sec);
    json.Key("runs").BeginArray();
    double best_multi = 0.0;
    double one_shard = 0.0;
    for (const EngineRun& run : report.runs) {
      json.BeginObject();
      json.Key("config").Value(run.label);
      json.Key("shards").Value(static_cast<uint64_t>(run.shards));
      json.Key("best_ms").Value(run.best_ms);
      json.Key("points_per_sec").Value(run.points_per_sec);
      json.Key("speedup_vs_sequential")
          .Value(Ratio(report.sequential_best_ms, run.best_ms));
      json.Key("byte_identical").Value(run.byte_identical);
      const FleetStats& s = run.stats;
      json.Key("counters").BeginObject();
      json.Key("coalesced_runs").Value(s.coalesced_runs);
      json.Key("blocks_dispatched").Value(s.blocks_dispatched);
      json.Key("blocks_allocated").Value(s.blocks_allocated);
      json.Key("blocks_recycled").Value(s.blocks_recycled);
      json.Key("worker_wakes").Value(s.worker_wakes);
      json.Key("backpressure_waits").Value(s.backpressure_waits);
      json.Key("peak_queue_depth")
          .Value(static_cast<uint64_t>(s.peak_queue_depth));
      json.EndObject();
      json.EndObject();
      if (run.shards == 1) one_shard = run.points_per_sec;
      if (run.shards > 1) best_multi = std::max(best_multi,
                                                run.points_per_sec);
    }
    json.EndArray();
    json.Key("multi_shard_speedup_vs_1shard")
        .Value(Ratio(best_multi, one_shard));
    json.EndObject();
  }
  json.EndArray();
  // Overload rows carry their own limits so check_perf can re-gate a
  // candidate file without hardcoding thresholds. They are deliberately
  // outside all_byte_identical: shedding and degradation change output.
  json.Key("overload").BeginArray();
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const OverloadScenario& scenario = scenarios[i];
    const OverloadResult& result = overload_results[i];
    const FleetStats& s = result.stats;
    json.BeginObject();
    json.Key("scenario").Value(scenario.name);
    json.Key("policy").Value(scenario.policy_label);
    json.Key("shards")
        .Value(static_cast<uint64_t>(scenario.options.num_shards));
    json.Key("records").Value(static_cast<uint64_t>(scenario.feed.size()));
    json.Key("batches").Value(static_cast<uint64_t>(result.batches));
    json.Key("p99_ms").Value(result.p99_ms);
    json.Key("max_ms").Value(result.max_ms);
    json.Key("p99_limit_ms").Value(scenario.p99_limit_ms);
    json.Key("shed_rate").Value(result.shed_rate);
    json.Key("shed_rate_limit").Value(scenario.shed_rate_limit);
    json.Key("records_shed").Value(s.records_shed);
    json.Key("records_ingested").Value(s.records_ingested);
    json.Key("shed_ring_full").Value(s.shed_ring_full);
    json.Key("shed_latency").Value(s.shed_latency);
    json.Key("shed_rate_limited").Value(s.shed_rate_limited);
    json.Key("sessions_degraded").Value(s.sessions_degraded);
    json.Key("sessions_recovered").Value(s.sessions_recovered);
    json.Key("sessions_evicted").Value(s.sessions_evicted);
    json.Key("sessions_idled").Value(s.sessions_idled);
    json.Key("max_error_bound").Value(s.max_error_bound);
    json.Key("invariant_ok").Value(result.invariant_ok);
    json.EndObject();
  }
  json.EndArray();
  json.Key("all_byte_identical").Value(all_identical);
  json.EndObject();

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  // ---- exit gates ----
  // 1. The service layer must not eat the kernel's speed: inline and
  //    shards=1 each have to reach min_seq_ratio of sequential.
  for (const AlgorithmReport& report : reports) {
    for (const EngineRun& run : report.runs) {
      if (run.shards > 1) continue;
      const double ratio = Ratio(report.sequential_best_ms, run.best_ms);
      if (ratio < min_seq_ratio) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s %s at %.2fx of sequential (gate %.2f)",
                      report.name.c_str(), run.label.c_str(), ratio,
                      min_seq_ratio);
        gate_failures.push_back(buf);
      }
    }
  }
  // 2. Byte identity across every ingest mode.
  if (!all_identical) {
    gate_failures.push_back(
        "per-device output diverged from the sequential CompressAll "
        "reference");
  }
  // 3. Overload scenarios must hold their own limits.
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const OverloadScenario& scenario = scenarios[i];
    const OverloadResult& result = overload_results[i];
    char buf[192];
    if (result.p99_ms > scenario.p99_limit_ms) {
      std::snprintf(buf, sizeof(buf),
                    "%s p99 ingest latency %.3f ms over limit %.3f ms",
                    scenario.name.c_str(), result.p99_ms,
                    scenario.p99_limit_ms);
      gate_failures.push_back(buf);
    }
    if (result.shed_rate > scenario.shed_rate_limit) {
      std::snprintf(buf, sizeof(buf),
                    "%s shed rate %.3f over limit %.3f",
                    scenario.name.c_str(), result.shed_rate,
                    scenario.shed_rate_limit);
      gate_failures.push_back(buf);
    }
    if (!result.invariant_ok) {
      std::snprintf(buf, sizeof(buf),
                    "%s record accounting broken: ingested + shed + "
                    "dropped != fed",
                    scenario.name.c_str());
      gate_failures.push_back(buf);
    }
    if (result.stats.records_shed < scenario.min_shed) {
      std::snprintf(buf, sizeof(buf),
                    "%s expected >= %llu shed records (overload never "
                    "materialized), saw %llu",
                    scenario.name.c_str(),
                    static_cast<unsigned long long>(scenario.min_shed),
                    static_cast<unsigned long long>(
                        result.stats.records_shed));
      gate_failures.push_back(buf);
    }
    if (result.stats.sessions_degraded < scenario.min_degraded) {
      std::snprintf(buf, sizeof(buf),
                    "%s expected >= %llu eps-ladder degradations, saw %llu",
                    scenario.name.c_str(),
                    static_cast<unsigned long long>(scenario.min_degraded),
                    static_cast<unsigned long long>(
                        result.stats.sessions_degraded));
      gate_failures.push_back(buf);
    }
    if (scenario.max_bound_limit > 0.0 &&
        result.stats.max_error_bound > scenario.max_bound_limit) {
      std::snprintf(buf, sizeof(buf),
                    "%s honored error bound %.2f beyond the ladder's last "
                    "rung %.2f",
                    scenario.name.c_str(), result.stats.max_error_bound,
                    scenario.max_bound_limit);
      gate_failures.push_back(buf);
    }
  }

  if (!gate_failures.empty()) {
    std::fprintf(stderr, "\nbench_fleet FAILED:\n");
    for (const std::string& failure : gate_failures) {
      std::fprintf(stderr, "  - %s\n", failure.c_str());
    }
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) { return bqs::Run(argc, argv); }
