// Ablation: point-to-line (paper default) vs point-to-segment deviation
// (paper Section V-G / Eq. 11). The segment metric is strictly stricter,
// so it keeps more points; this bench quantifies the difference and
// verifies both bounds end to end.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simulation/datasets.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

int Run(double scale) {
  bench::Banner(
      "Ablation — point-to-line vs point-to-segment deviation metric",
      "paper Section V-G: BQS supports both; segment metric is stricter",
      scale);
  TablePrinter table({"dataset", "eps_m", "metric", "BQS_rate", "FBQS_rate",
                      "pruning", "bounded"});
  for (const Dataset& dataset : BuildAllDatasets(scale)) {
    for (double eps : {5.0, 10.0, 20.0}) {
      for (const DistanceMetric metric :
           {DistanceMetric::kPointToLine, DistanceMetric::kPointToSegment}) {
        BqsOptions options;
        options.epsilon = eps;
        options.metric = metric;

        BqsCompressor bqs(options);
        const CompressedTrajectory exact = CompressAll(bqs, dataset.stream);
        FbqsCompressor fbqs(options);
        const CompressedTrajectory fast = CompressAll(fbqs, dataset.stream);

        const double dev =
            EvaluateCompression(dataset.stream, exact, metric).max_deviation;
        const double dev_fast =
            EvaluateCompression(dataset.stream, fast, metric).max_deviation;
        const bool bounded = dev <= eps * (1 + 1e-9) &&
                             dev_fast <= eps * (1 + 1e-9);
        table.AddRow(
            {dataset.name, FmtDouble(eps, 0),
             metric == DistanceMetric::kPointToLine ? "line" : "segment",
             FmtPercent(CompressionRate(exact.size(), dataset.stream.size()),
                        2),
             FmtPercent(CompressionRate(fast.size(), dataset.stream.size()),
                        2),
             FmtDouble(bqs.stats().PruningPower(), 3),
             bounded ? "yes" : "NO"});
      }
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.25));
}
