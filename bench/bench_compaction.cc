// Compaction bench + machine-readable baseline (BENCH_compaction.json).
//
// Measures the WAL -> columnar-block pipeline end to end:
//
//   compact   points/sec through Compactor::CompactOnce over a freshly
//             written multi-segment WAL, plus the storage density of the
//             published blocks in bytes per key point (the columnar
//             delta codec's figure of merit, deterministic for the
//             seeded workload) and the compression vs the WAL's own
//             record encoding.
//   recover   RecoverStore over the compacted directory pair: the gate
//             is bit-exactness against what the WAL acked — a compactor
//             that benches fast but perturbs data is worthless.
//   query     range-query latency off BlockStore (bbox-pruned, decode
//             only matching blocks) vs a full scan of every point, and
//             the fraction of blocks decoded per query — the pruning
//             power, also deterministic for the seeded workload.
//
// The run FAILS (exit 1) if recovery is not bit-exact or any block query
// disagrees with the brute-force reference. Latency is reported for
// trend-watching; check_perf gates only the machine-independent fields
// (exactness, density, decoded fraction, workload identity).
//
// Usage: bench_compaction [scale | --scale S] [--out PATH] [--dir PATH]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "storage/compaction.h"
#include "storage/keypoint_wal.h"
#include "storage/manifest.h"
#include "trajectory/point.h"

namespace bqs {
namespace {

struct Workload {
  /// checkpoints[c] is one Append() call: (device, keys).
  std::vector<std::pair<DeviceId, std::vector<KeyPoint>>> checkpoints;
  std::size_t total_points = 0;
  std::vector<Vec2> centers;  ///< per-device cluster center (query targets)
};

/// Spatially clustered fleet: each device random-walks around its own
/// far-apart center, so block bboxes separate and pruning has something
/// real to prune — the regime the grid index is built for.
Workload MakeWorkload(double scale) {
  Workload w;
  const std::size_t devices = 12;
  const auto checkpoints_per_device =
      static_cast<std::size_t>(150.0 * scale) + 4;
  Rng rng(0xb10c5u);  // fixed seed: the workload is part of the baseline
  std::vector<double> t(devices, 0.0);
  std::vector<Vec2> pos(devices);
  std::vector<uint64_t> index(devices, 0);
  for (DeviceId d = 0; d < devices; ++d) {
    const double angle = 2.0 * M_PI * static_cast<double>(d) / devices;
    w.centers.push_back(
        Vec2{30000.0 * std::cos(angle), 30000.0 * std::sin(angle)});
    pos[d] = w.centers.back();
  }
  for (std::size_t c = 0; c < checkpoints_per_device; ++c) {
    for (DeviceId d = 0; d < devices; ++d) {
      const auto batch = static_cast<std::size_t>(rng.UniformInt(8, 48));
      std::vector<KeyPoint> keys;
      keys.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        t[d] += rng.Uniform(0.5, 8.0);
        pos[d].x += rng.Uniform(-40.0, 40.0);
        pos[d].y += rng.Uniform(-40.0, 40.0);
        index[d] += static_cast<uint64_t>(rng.UniformInt(1, 30));
        KeyPoint key;
        key.index = index[d];
        key.point.t = t[d];
        key.point.pos = pos[d];
        keys.push_back(key);
      }
      w.total_points += keys.size();
      w.checkpoints.emplace_back(d, std::move(keys));
    }
  }
  return w;
}

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

uint64_t ChecksumCheckpoints(const std::vector<wal::WalCheckpoint>& cps) {
  uint64_t h = bench::kFnvOffset;
  for (const wal::WalCheckpoint& cp : cps) {
    h = bench::Fnv1aMix(h, &cp.device, sizeof(cp.device));
    h = bench::Fnv1aMix(h, &cp.seq, sizeof(cp.seq));
    for (const wal::WalPoint& p : cp.points) {
      h = bench::Fnv1aMix(h, &p.index, sizeof(p.index));
      h = bench::Fnv1aMix(h, &p.qt, sizeof(p.qt));
      h = bench::Fnv1aMix(h, &p.qx, sizeof(p.qx));
      h = bench::Fnv1aMix(h, &p.qy, sizeof(p.qy));
    }
  }
  return h;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      total += static_cast<uint64_t>(entry.file_size());
    }
  }
  return total;
}

[[noreturn]] void Die(const char* what, const Status& st) {
  std::fprintf(stderr, "bench_compaction: %s: %s\n", what,
               st.ToString().c_str());
  std::exit(2);
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  using namespace bqs;

  const double scale = bench::ScaleFromArgs(argc, argv, 0.35);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_compaction.json");
  const std::string base_dir = bench::StringFlag(
      argc, argv, "--dir",
      (std::filesystem::temp_directory_path() / "bqs_bench_compaction")
          .string());
  const std::string wal_dir = base_dir + "/wal";
  const std::string block_dir = base_dir + "/blocks";
  std::filesystem::remove_all(base_dir);

  bench::Banner("Compaction: drain throughput, density, range queries",
                "columnar block store (not a paper figure)", scale);

  const Workload workload = MakeWorkload(scale);
  std::printf("workload: %zu checkpoints, %zu points, %zu devices\n\n",
              workload.checkpoints.size(), workload.total_points,
              workload.centers.size());

  // --- write the WAL (setup, not measured) -------------------------------
  KeyPointWalOptions wal_options;
  wal_options.dir = wal_dir;
  wal_options.segment_bytes = std::size_t{64} << 10;
  std::vector<wal::WalCheckpoint> acked;
  acked.reserve(workload.checkpoints.size());
  {
    KeyPointWal walog(wal_options);
    if (Status st = walog.Open(); !st.ok()) Die("wal open", st);
    for (const auto& [device, keys] : workload.checkpoints) {
      const Result<WalAppendAck> ack = walog.Append(device, keys);
      if (!ack.ok()) Die("wal append", ack.status());
      wal::WalCheckpoint cp;
      cp.device = device;
      cp.seq = ack.value().seq;
      cp.points.reserve(keys.size());
      for (const KeyPoint& key : keys) {
        cp.points.push_back(wal::Quantize(key, wal_options.quant));
      }
      acked.push_back(std::move(cp));
    }
    if (Status st = walog.Close(); !st.ok()) Die("wal close", st);
  }
  const uint64_t wal_bytes = DirBytes(wal_dir);

  // --- compact (measured) ------------------------------------------------
  CompactionOptions copts;
  copts.wal_dir = wal_dir;
  copts.block_dir = block_dir;
  Compactor compactor(copts);
  const auto compact_begin = std::chrono::steady_clock::now();
  if (Status st = compactor.CompactOnce(); !st.ok()) Die("compact", st);
  const auto compact_end = std::chrono::steady_clock::now();
  const CompactionStats cstats = compactor.stats();
  const uint64_t block_bytes = DirBytes(block_dir);
  const double compact_s = Seconds(compact_begin, compact_end);
  const double compact_pps =
      compact_s > 0 ? static_cast<double>(cstats.points_compacted) / compact_s
                    : 0.0;
  const double bytes_per_point =
      cstats.points_compacted > 0
          ? static_cast<double>(block_bytes) /
                static_cast<double>(cstats.points_compacted)
          : 0.0;
  const double wal_bytes_per_point =
      workload.total_points > 0
          ? static_cast<double>(wal_bytes) /
                static_cast<double>(workload.total_points)
          : 0.0;
  std::printf("compact: %7.2f M pts/s   %5.2f B/pt (wal was %5.2f B/pt)   "
              "%llu blocks in %llu file(s)\n",
              compact_pps / 1e6, bytes_per_point, wal_bytes_per_point,
              static_cast<unsigned long long>(cstats.blocks_written),
              static_cast<unsigned long long>(cstats.block_files_written));

  // --- recovery exactness (measured, gates) ------------------------------
  const auto recover_begin = std::chrono::steady_clock::now();
  const Result<StoreRecovery> recovered = RecoverStore(wal_dir, block_dir);
  const auto recover_end = std::chrono::steady_clock::now();
  if (!recovered.ok()) Die("recover", recovered.status());
  const double recover_s = Seconds(recover_begin, recover_end);
  const double recover_pps =
      recover_s > 0
          ? static_cast<double>(workload.total_points) / recover_s
          : 0.0;
  const bool recovery_exact =
      recovered.value().wal.checkpoints.size() == acked.size() &&
      ChecksumCheckpoints(recovered.value().wal.checkpoints) ==
          ChecksumCheckpoints(acked);
  const bool recovery_clean = recovered.value().report.clean();
  std::printf("recover: %7.2f M pts/s   exact %s   clean %s\n",
              recover_pps / 1e6, recovery_exact ? "yes" : "NO",
              recovery_clean ? "yes" : "NO");

  // --- range queries (measured, gates on exactness + pruning) ------------
  Result<BlockStore> opened = BlockStore::Open(block_dir);
  if (!opened.ok()) Die("block store open", opened.status());
  const BlockStore& store = opened.value();
  const wal::WalQuantization quant = store.manifest().quant;

  // The brute-force reference: every point, dequantized, in memory.
  std::vector<KeyPoint> all_points;
  all_points.reserve(workload.total_points);
  for (const wal::WalCheckpoint& cp : recovered.value().wal.checkpoints) {
    for (const wal::WalPoint& p : cp.points) {
      all_points.push_back(wal::Dequantize(p, quant));
    }
  }

  Rng qrng(0x9e3779b9u);
  const auto query_count = static_cast<std::size_t>(64.0 * scale) + 8;
  double block_query_s = 0.0, scan_query_s = 0.0;
  double decoded_fraction_sum = 0.0;
  bool queries_match = true;
  std::size_t total_hits = 0;
  for (std::size_t q = 0; q < query_count; ++q) {
    const Vec2 base =
        workload.centers[q % workload.centers.size()];
    const Vec2 center{base.x + qrng.Uniform(-500.0, 500.0),
                      base.y + qrng.Uniform(-500.0, 500.0)};
    const double radius = qrng.Uniform(100.0, 1200.0);
    const double t_lo = qrng.Uniform(0.0, 300.0);
    const double t_hi = t_lo + qrng.Uniform(50.0, 600.0);

    std::vector<KeyPoint> from_blocks;
    RangeQueryStats qstats;
    const auto bq_begin = std::chrono::steady_clock::now();
    if (Status st = store.Query(center, radius, t_lo, t_hi, &from_blocks,
                                &qstats);
        !st.ok()) {
      Die("block query", st);
    }
    block_query_s += Seconds(bq_begin, std::chrono::steady_clock::now());
    decoded_fraction_sum +=
        qstats.blocks_total > 0
            ? static_cast<double>(qstats.blocks_decoded) /
                  static_cast<double>(qstats.blocks_total)
            : 0.0;

    const auto fs_begin = std::chrono::steady_clock::now();
    std::size_t expected = 0;
    for (const KeyPoint& k : all_points) {
      if (k.point.t >= t_lo && k.point.t <= t_hi &&
          DistanceSq(k.point.pos, center) <= radius * radius) {
        ++expected;
      }
    }
    scan_query_s += Seconds(fs_begin, std::chrono::steady_clock::now());
    total_hits += expected;
    if (from_blocks.size() != expected) queries_match = false;
  }
  const double avg_decoded_fraction =
      decoded_fraction_sum / static_cast<double>(query_count);
  const double block_query_us =
      1e6 * block_query_s / static_cast<double>(query_count);
  const double scan_query_us =
      1e6 * scan_query_s / static_cast<double>(query_count);
  std::printf("queries: %zu queries, %zu hits   block %8.1f us/q   "
              "full-scan %8.1f us/q   decoded %5.3f of blocks   match %s\n",
              query_count, total_hits, block_query_us, scan_query_us,
              avg_decoded_fraction, queries_match ? "yes" : "NO");

  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema"), json.Value("bqs-bench-compaction-v1");
  json.Key("scale"), json.Value(scale);
  json.Key("points"), json.Value(static_cast<uint64_t>(workload.total_points));
  json.Key("checkpoints"),
      json.Value(static_cast<uint64_t>(workload.checkpoints.size()));
  json.Key("compact_points_per_sec"), json.Value(compact_pps);
  json.Key("recover_points_per_sec"), json.Value(recover_pps);
  json.Key("blocks_written"), json.Value(cstats.blocks_written);
  json.Key("block_files_written"), json.Value(cstats.block_files_written);
  json.Key("wal_bytes"), json.Value(wal_bytes);
  json.Key("block_bytes"), json.Value(block_bytes);
  json.Key("bytes_per_point"), json.Value(bytes_per_point);
  json.Key("wal_bytes_per_point"), json.Value(wal_bytes_per_point);
  json.Key("recovery_exact"), json.Value(recovery_exact);
  json.Key("recovery_clean"), json.Value(recovery_clean);
  json.Key("queries"), json.Value(static_cast<uint64_t>(query_count));
  json.Key("query_hits"), json.Value(static_cast<uint64_t>(total_hits));
  json.Key("queries_match"), json.Value(queries_match);
  json.Key("block_query_us"), json.Value(block_query_us);
  json.Key("full_scan_query_us"), json.Value(scan_query_us);
  json.Key("avg_decoded_block_fraction"), json.Value(avg_decoded_fraction);
  json.EndObject();
  json.WriteFile(out_path);
  std::printf("\nwrote %s\n", out_path.c_str());

  std::filesystem::remove_all(base_dir);
  if (!recovery_exact || !recovery_clean || !queries_match) {
    std::fprintf(stderr,
                 "bench_compaction: FAILED — recovery or query results "
                 "diverged from the acked reference\n");
    return 1;
  }
  return 0;
}
