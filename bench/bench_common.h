// Shared glue for the figure/table benches: dataset scale handling, the
// banner each binary prints so outputs are self-describing, and the
// streaming JSON emitter behind the machine-readable BENCH_*.json reports.
#ifndef BQS_BENCH_BENCH_COMMON_H_
#define BQS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trajectory/point.h"

namespace bqs {
namespace bench {

/// FNV-1a offset basis; seed for the checksum helpers below.
inline constexpr uint64_t kFnvOffset = 1469598103934665603ULL;

/// Folds `len` bytes into an FNV-1a running hash.
inline uint64_t Fnv1aMix(uint64_t h, const void* data, std::size_t len) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Folds one key point into a running checksum: the stream index and every
/// field of the retained point participate, so two outputs collide only if
/// they are byte-identical (up to hash collisions).
inline uint64_t MixKeyPoint(uint64_t h, const KeyPoint& k) {
  h = Fnv1aMix(h, &k.index, sizeof(k.index));
  h = Fnv1aMix(h, &k.point.pos.x, sizeof(double));
  h = Fnv1aMix(h, &k.point.pos.y, sizeof(double));
  h = Fnv1aMix(h, &k.point.t, sizeof(double));
  h = Fnv1aMix(h, &k.point.velocity.x, sizeof(double));
  h = Fnv1aMix(h, &k.point.velocity.y, sizeof(double));
  return h;
}

/// Byte-exact fingerprint of a compressed output. This is what the bench
/// divergence gates (hull-vs-bruteforce, fleet-vs-sequential) compare.
inline uint64_t ChecksumKeys(std::span<const KeyPoint> keys) {
  uint64_t h = kFnvOffset;
  for (const KeyPoint& k : keys) h = MixKeyPoint(h, k);
  return h;
}

inline std::string HexChecksum(uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

/// Dataset scale: 1.0 reproduces paper-sized workloads; benches default to
/// a smaller scale so the full suite stays quick. Accepted spellings, in
/// precedence order: a bare positional number ("0.5"), "--scale 0.5" or
/// "--scale=0.5" anywhere in argv, then the BQS_BENCH_SCALE environment
/// variable, then the per-bench default. Non-positive and malformed values
/// fall through to the next source.
inline double ScaleFromArgs(int argc, char** argv,
                            double default_scale = 0.35) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    double v = 0.0;
    if (arg == "--scale" && i + 1 < argc) {
      v = std::atof(argv[i + 1]);
    } else if (arg.rfind("--scale=", 0) == 0) {
      v = std::atof(argv[i] + 8);
    } else if (i == 1 && arg.rfind("--", 0) != 0) {
      v = std::atof(argv[1]);
    }
    if (v > 0.0) return v;
  }
  if (const char* env = std::getenv("BQS_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

/// Positive integer flag: "--flag N" / "--flag=N" in argv, then the
/// `env_var` environment variable (when non-null), then `fallback`.
/// Non-positive and malformed values fall through to the next source,
/// mirroring ScaleFromArgs. Used for worker/shard counts (--threads).
inline int IntFlag(int argc, char** argv, std::string_view flag,
                   const char* env_var, int fallback) {
  const std::string with_eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    int v = 0;
    if (arg == flag && i + 1 < argc) {
      v = std::atoi(argv[i + 1]);
    } else if (arg.rfind(with_eq, 0) == 0) {
      v = std::atoi(argv[i] + with_eq.size());
    }
    if (v > 0) return v;
  }
  if (env_var != nullptr) {
    if (const char* env = std::getenv(env_var)) {
      const int v = std::atoi(env);
      if (v > 0) return v;
    }
  }
  return fallback;
}

/// Positive double flag: "--flag X" / "--flag=X" in argv, then the
/// `env_var` environment variable (when non-null), then `fallback`.
/// Non-positive and malformed values fall through, mirroring IntFlag.
/// Used for gate thresholds (bench_fleet --min-seq-ratio).
inline double DoubleFlag(int argc, char** argv, std::string_view flag,
                         const char* env_var, double fallback) {
  const std::string with_eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    double v = 0.0;
    if (arg == flag && i + 1 < argc) {
      v = std::atof(argv[i + 1]);
    } else if (arg.rfind(with_eq, 0) == 0) {
      v = std::atof(argv[i] + with_eq.size());
    }
    if (v > 0.0) return v;
  }
  if (env_var != nullptr) {
    if (const char* env = std::getenv(env_var)) {
      const double v = std::atof(env);
      if (v > 0.0) return v;
    }
  }
  return fallback;
}

/// Value of "--flag PATH" / "--flag=PATH" in argv, or `fallback`.
inline std::string StringFlag(int argc, char** argv, std::string_view flag,
                              std::string_view fallback) {
  const std::string with_eq = std::string(flag) + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == flag && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(with_eq, 0) == 0) {
      return std::string(arg.substr(with_eq.size()));
    }
  }
  return std::string(fallback);
}

inline void Banner(const char* experiment, const char* paper_reference,
                   double scale) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reference: %s\n", paper_reference);
  std::printf("Dataset scale: %.2f (1.0 = paper-sized; pass as argv[1])\n",
              scale);
  std::printf("==============================================================\n");
}

/// Minimal streaming JSON writer for the BENCH_*.json machine-readable
/// reports. Call order mirrors the document structure; commas and key/value
/// separators are inserted automatically. No escaping surprises: strings
/// are escaped per RFC 8259, doubles use shortest-ish %.10g, and integers
/// wider than 2^53 should be emitted as hex strings by the caller.
///
///   JsonReport json;
///   json.BeginObject();
///   json.Key("scale"), json.Value(0.05);
///   json.Key("streams"), json.BeginArray();
///   ...
///   json.EndArray();
///   json.EndObject();
///   json.WriteFile("BENCH_throughput.json");
class JsonReport {
 public:
  JsonReport& BeginObject() { return Open('{'); }
  JsonReport& EndObject() { return Close('}'); }
  JsonReport& BeginArray() { return Open('['); }
  JsonReport& EndArray() { return Close(']'); }

  JsonReport& Key(std::string_view key) {
    Element();
    Escaped(key);
    out_ += ':';
    key_pending_ = true;
    return *this;
  }

  JsonReport& Value(std::string_view s) {
    Element();
    Escaped(s);
    return *this;
  }
  JsonReport& Value(const char* s) { return Value(std::string_view(s)); }
  JsonReport& Value(double v) {
    Element();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
    return *this;
  }
  JsonReport& Value(uint64_t v) {
    Element();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  JsonReport& Value(int64_t v) {
    Element();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  JsonReport& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonReport& Value(bool v) {
    Element();
    out_ += v ? "true" : "false";
    return *this;
  }

  const std::string& str() const { return out_; }

  /// Writes the document plus a trailing newline. False on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t n = std::fwrite(out_.data(), 1, out_.size(), f);
    const bool ok = n == out_.size() && std::fputc('\n', f) != EOF;
    return std::fclose(f) == 0 && ok;
  }

 private:
  JsonReport& Open(char c) {
    Element();
    out_ += c;
    fresh_.push_back(1);
    return *this;
  }
  JsonReport& Close(char c) {
    out_ += c;
    fresh_.pop_back();
    return *this;
  }
  /// Comma bookkeeping: the first element at a level gets no comma; a value
  /// directly after its key gets no comma either.
  void Element() {
    if (key_pending_) {
      key_pending_ = false;
      return;
    }
    if (!fresh_.empty()) {
      if (fresh_.back() == 0) out_ += ',';
      fresh_.back() = 0;
    }
  }
  void Escaped(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\t':
          out_ += "\\t";
          break;
        case '\r':
          out_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<char> fresh_;  ///< 1 = level still awaits its first element.
  bool key_pending_ = false;
};

}  // namespace bench
}  // namespace bqs

#endif  // BQS_BENCH_BENCH_COMMON_H_
