// Shared glue for the figure/table benches: dataset scale handling and the
// banner each binary prints so outputs are self-describing.
#ifndef BQS_BENCH_BENCH_COMMON_H_
#define BQS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace bqs {
namespace bench {

/// Dataset scale: 1.0 reproduces paper-sized workloads; benches default to
/// a smaller scale so the full suite stays quick. Override with argv[1] or
/// BQS_BENCH_SCALE.
inline double ScaleFromArgs(int argc, char** argv,
                            double default_scale = 0.35) {
  if (argc > 1) {
    const double v = std::atof(argv[1]);
    if (v > 0.0) return v;
  }
  if (const char* env = std::getenv("BQS_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return default_scale;
}

inline void Banner(const char* experiment, const char* paper_reference,
                   double scale) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper reference: %s\n", paper_reference);
  std::printf("Dataset scale: %.2f (1.0 = paper-sized; pass as argv[1])\n",
              scale);
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace bqs

#endif  // BQS_BENCH_BENCH_COMMON_H_
