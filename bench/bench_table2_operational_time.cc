// Table II reproduction: estimated operational days of the Camazotz
// platform (50 KB GPS budget, 12-byte fixes, 1 fix/minute) under each
// algorithm's average compression rate at 10 m tolerance across the two
// empirical datasets. Paper: BQS 62, FBQS 60, BDP 45, BGD 44, DR 45 days
// (up to 41% improvement).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "storage/energy_model.h"
#include "storage/platform.h"

namespace bqs {
namespace {

int Run(double scale) {
  bench::Banner(
      "Table II — Estimated operational time (days, no data loss)",
      "BQS 62 / FBQS 60 / BDP 45 / BGD 44 / DR 45 days; eps = 10 m", scale);
  const Dataset bat = BuildBatDataset(scale);
  const Dataset vehicle = BuildVehicleDataset(scale);
  const Dataset synthetic = BuildSyntheticDataset(scale);
  const PlatformSpec spec;

  const auto avg_rate = [&](AlgorithmId id) {
    const SweepRow a = RunCell(id, bat, 10.0, 32, /*verify=*/false);
    const SweepRow b = RunCell(id, vehicle, 10.0, 32, /*verify=*/false);
    return 0.5 * (a.compression_rate + b.compression_rate);
  };

  struct Entry {
    AlgorithmId id;
    double paper_rate;
    double paper_days;
  };
  const Entry entries[] = {
      {AlgorithmId::kBqs, 0.048, 62.0},  {AlgorithmId::kFbqs, 0.050, 60.0},
      {AlgorithmId::kBdp, 0.0665, 45.0}, {AlgorithmId::kBgd, 0.0675, 44.0},
      {AlgorithmId::kDr, 0.0665, 45.0},
  };

  const EnergyModel energy;
  TablePrinter table({"algorithm", "rate", "days", "paper_rate",
                      "paper_days", "energy_days", "combined_days"});
  double best_days = 0.0;
  double worst_days = 1e18;
  // The paper derives DR's rate from FBQS's: "we assume it uses 39% more
  // points than FBQS as shown in Figure 8(b) at the same tolerance". We do
  // the same with the ratio measured on our synthetic stream.
  const double fbqs_synth =
      RunCell(AlgorithmId::kFbqs, synthetic, 10.0, 32, false)
          .compression_rate;
  const double dr_synth =
      RunCell(AlgorithmId::kDr, synthetic, 10.0, 32, false).compression_rate;
  const double dr_ratio = fbqs_synth > 0.0 ? dr_synth / fbqs_synth : 1.39;

  for (const Entry& e : entries) {
    const double rate = e.id == AlgorithmId::kDr
                            ? avg_rate(AlgorithmId::kFbqs) * dr_ratio
                            : avg_rate(e.id);
    const double days = EstimateOperationalDays(spec, rate);
    best_days = std::max(best_days, days);
    worst_days = std::min(worst_days, days);
    table.AddRow({std::string(AlgorithmName(e.id)), FmtPercent(rate, 2),
                  FmtDouble(days, 1), FmtPercent(e.paper_rate, 2),
                  FmtDouble(e.paper_days, 0),
                  EstimateEnergyLimitedDays(energy, spec, rate) > 1.0e8
                      ? "solar-covered"
                      : FmtDouble(
                            EstimateEnergyLimitedDays(energy, spec, rate), 1),
                  FmtDouble(EstimateCombinedDays(energy, spec, rate), 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nbest vs worst operational time: +%.0f%%  [paper: up to +41%%]\n",
      100.0 * (best_days / worst_days - 1.0));
  std::printf(
      "energy_days extends Table II with the battery constraint (GPS "
      "acquisition dominates, so compression mainly buys storage time).\n");
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.35));
}
