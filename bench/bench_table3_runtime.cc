// Table III reproduction: compression rate and run time of FBQS vs
// BDP/BGD at buffer sizes 32-256 over the merged empirical stream at
// eps = 10 m. Paper (87,704 points): FBQS is buffer-independent (3.6%,
// 99 ms) while BDP/BGD trade compression for time with the buffer.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/algorithms.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simulation/datasets.h"

namespace bqs {
namespace {

double MedianRuntimeMs(const AlgorithmConfig& config,
                       const Trajectory& stream, int repeats = 3) {
  std::vector<double> times;
  for (int r = 0; r < repeats; ++r) {
    times.push_back(RunAlgorithm(config, stream).runtime_ms);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

int Run(double scale) {
  bench::Banner(
      "Table III — Compression rate and run time vs buffer size "
      "(merged empirical stream, eps = 10 m)",
      "FBQS buffer-independent (3.6%, 99 ms on the paper's machine); "
      "BDP/BGD improve rate but pay time as the buffer grows",
      scale);
  const Dataset merged = BuildEmpiricalMergedDataset(scale);
  std::printf("stream: %zu points (paper: 87,704)\n\n",
              merged.stream.size());

  const std::size_t buffers[] = {32, 64, 128, 256};

  TablePrinter rate_table(
      {"buffer", "FBQS_rate", "BDP_rate", "BGD_rate"});
  TablePrinter time_table({"buffer", "FBQS_ms", "BDP_ms", "BGD_ms"});

  AlgorithmConfig fbqs;
  fbqs.id = AlgorithmId::kFbqs;
  fbqs.epsilon = 10.0;
  const RunOutput fbqs_out = RunAlgorithm(fbqs, merged.stream);
  const double fbqs_rate =
      CompressionRate(fbqs_out.compressed.size(), merged.stream.size());
  const double fbqs_ms = MedianRuntimeMs(fbqs, merged.stream);

  for (std::size_t buffer : buffers) {
    AlgorithmConfig bdp;
    bdp.id = AlgorithmId::kBdp;
    bdp.epsilon = 10.0;
    bdp.buffer_size = buffer;
    AlgorithmConfig bgd = bdp;
    bgd.id = AlgorithmId::kBgd;

    const RunOutput bdp_out = RunAlgorithm(bdp, merged.stream);
    const RunOutput bgd_out = RunAlgorithm(bgd, merged.stream);
    rate_table.AddRow(
        {FmtInt(static_cast<int64_t>(buffer)),
         buffer == 32 ? FmtPercent(fbqs_rate, 2) : "(same)",
         FmtPercent(CompressionRate(bdp_out.compressed.size(),
                                    merged.stream.size()),
                    2),
         FmtPercent(CompressionRate(bgd_out.compressed.size(),
                                    merged.stream.size()),
                    2)});
    time_table.AddRow({FmtInt(static_cast<int64_t>(buffer)),
                       buffer == 32 ? FmtDouble(fbqs_ms, 1) : "(same)",
                       FmtDouble(MedianRuntimeMs(bdp, merged.stream), 1),
                       FmtDouble(MedianRuntimeMs(bgd, merged.stream), 1)});
  }
  std::printf("-- compression rate --\n");
  rate_table.Print(std::cout);
  std::printf("\n-- run time (median of 3) --\n");
  time_table.Print(std::cout);
  std::printf(
      "\npaper reference: FBQS 3.6%% / 99 ms regardless of buffer; "
      "BDP 6.8->4.9%%, 76->292 ms; BGD 6->4.4%%, 182->628 ms\n");
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.5));
}
