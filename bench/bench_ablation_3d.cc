// Ablation: the 3-D BQS (paper Section V-G) — clipped-hull vs the paper's
// <=17-significant-point scheme, exact vs fast engine, plus the
// time-sensitive lift on a 2-D stream. Also compares 2-D vs 3-D costs.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/bqs3d_compressor.h"
#include "core/bqs4d_compressor.h"
#include "core/fbqs_compressor.h"
#include "core/time_sensitive.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simulation/datasets.h"
#include "simulation/random_walk.h"

namespace bqs {
namespace {

// Lifts the synthetic walk into 3-D with a smooth altitude profile.
std::vector<TrackPoint3> Lift3d(const Trajectory& stream) {
  std::vector<TrackPoint3> out;
  out.reserve(stream.size());
  double z = 50.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    z += 0.4 * std::sin(static_cast<double>(i) * 0.013);
    out.push_back(TrackPoint3{Vec3{stream[i].pos.x, stream[i].pos.y, z},
                              stream[i].t});
  }
  return out;
}

int Run(double scale) {
  bench::Banner(
      "Ablation — 3-D BQS: hull modes, engines, and time-sensitive lift",
      "paper Section V-G: the 3-D extension keeps constant per-point cost",
      scale);
  const Dataset synthetic = BuildSyntheticDataset(scale);
  const auto walk3 = Lift3d(synthetic.stream);

  TablePrinter table({"engine", "hull_mode", "rate", "max_dev_m",
                      "bounded", "ms"});
  for (const bool exact : {false, true}) {
    for (const Bounds3dMode mode :
         {Bounds3dMode::kClippedHull, Bounds3dMode::kPaperSignificant}) {
      Bqs3dOptions options;
      options.epsilon = 10.0;
      options.mode = mode;
      Bqs3dCompressor compressor(options, exact);
      const auto start = std::chrono::steady_clock::now();
      const CompressedTrajectory3 out = Compress3dAll(compressor, walk3);
      const auto end = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(end - start).count();
      const double dev =
          Evaluate3dCompression(walk3, out, options.metric).max_deviation;
      table.AddRow(
          {exact ? "BQS3D" : "FBQS3D",
           mode == Bounds3dMode::kClippedHull ? "clipped" : "paper17",
           FmtPercent(out.CompressionRate(walk3.size()), 2),
           FmtDouble(dev, 2),
           dev <= 10.0 * (1 + 1e-9) ? "yes" : "NO", FmtDouble(ms, 1)});
    }
  }
  table.Print(std::cout);

  // Time-sensitive lift vs plain 2-D compression on the same stream.
  std::printf("\n-- time-sensitive lift (eps = 10 m, 1 s ~ 1 m) --\n");
  TablePrinter ts_table({"compressor", "points_kept", "rate"});
  {
    FbqsCompressor plain(BqsOptions{.epsilon = 10.0});
    const CompressedTrajectory out = CompressAll(plain, synthetic.stream);
    ts_table.AddRow({"FBQS (shape only)",
                     FmtInt(static_cast<int64_t>(out.size())),
                     FmtPercent(CompressionRate(out.size(),
                                                synthetic.stream.size()),
                                2)});
  }
  {
    TimeSensitiveOptions options;
    options.epsilon = 10.0;
    options.time_scale = 1.0;
    TimeSensitiveCompressor ts(options);
    const CompressedTrajectory out = CompressAll(ts, synthetic.stream);
    ts_table.AddRow({"TSBQS (where+when)",
                     FmtInt(static_cast<int64_t>(out.size())),
                     FmtPercent(CompressionRate(out.size(),
                                                synthetic.stream.size()),
                                2)});
  }
  ts_table.Print(std::cout);
  std::printf(
      "\nthe time-sensitive bound must keep stops (paper [20]'s metric), "
      "so it retains more points than shape-only compression.\n");

  // 4-D BQS (the paper's closing future-work item): altitude + scaled
  // time, hyper-box corner bounds per orthant.
  std::printf("\n-- 4-D BQS <x, y, altitude, 0.5*t> (eps = 10 m) --\n");
  std::vector<TrackPoint4> walk4;
  walk4.reserve(walk3.size());
  const double t0 = walk3.empty() ? 0.0 : walk3.front().t;
  for (const TrackPoint3& p : walk3) {
    walk4.push_back(TrackPoint4{Vec4{p.pos, (p.t - t0) * 0.5}, p.t});
  }
  TablePrinter table4({"engine", "rate", "max_dev", "bounded", "ms"});
  for (const bool exact : {false, true}) {
    Bqs4dOptions options4;
    options4.epsilon = 10.0;
    Bqs4dCompressor compressor4(options4, exact);
    const auto start = std::chrono::steady_clock::now();
    const CompressedTrajectory4 out = Compress4dAll(compressor4, walk4);
    const auto end = std::chrono::steady_clock::now();
    const double dev =
        Evaluate4dCompression(walk4, out, options4.metric).max_deviation;
    table4.AddRow(
        {exact ? "BQS4D" : "FBQS4D",
         FmtPercent(out.CompressionRate(walk4.size()), 2),
         FmtDouble(dev, 2), dev <= 10.0 * (1 + 1e-9) ? "yes" : "NO",
         FmtDouble(std::chrono::duration<double, std::milli>(end - start)
                       .count(),
                   1)});
  }
  table4.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.15));
}
