// Fig. 8 reproduction: (a) the shape of the synthetic correlated-random-
// walk dataset; (b) points used by FBQS vs Dead Reckoning at tolerances
// 2-20 m over 30,000 synthetic points. Paper: DR needs ~40% more points at
// 2 m and ~50% more at 20 m.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/ascii_chart.h"
#include "eval/runner.h"
#include "eval/table.h"
#include "trajectory/csv_io.h"

namespace bqs {
namespace {

int Run(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  bench::Banner(
      "Fig. 8 — FBQS vs Dead Reckoning on the synthetic dataset",
      "(b) DR uses ~40-50% more points across 2-20 m tolerances", scale);
  const Dataset synthetic = BuildSyntheticDataset(scale);

  // Fig. 8(a): dump the trajectory for plotting when asked.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--dump-trajectory") {
      const std::string path = "fig8a_synthetic_trajectory.csv";
      if (WriteTrajectoryCsv(synthetic.stream, path).ok()) {
        std::printf("Fig. 8(a): trajectory written to %s\n", path.c_str());
      }
    }
  }
  const Box2 bounds = BoundsOf(synthetic.stream);
  std::printf(
      "Fig. 8(a) stand-in: %zu points inside [%.0f, %.0f] x [%.0f, %.0f] m\n",
      synthetic.stream.size(), bounds.min().x, bounds.max().x,
      bounds.min().y, bounds.max().y);

  TablePrinter table({"eps_m", "FBQS_points", "DR_points", "DR_extra",
                      "paper_DR_extra"});
  ChartSeries fbqs_curve{"FBQS points", {}, {}};
  ChartSeries dr_curve{"DR points", {}, {}};
  for (double eps : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0,
                     20.0}) {
    const SweepRow fbqs =
        RunCell(AlgorithmId::kFbqs, synthetic, eps, 32, /*verify=*/false);
    const SweepRow dr =
        RunCell(AlgorithmId::kDr, synthetic, eps, 32, /*verify=*/false);
    const double extra =
        static_cast<double>(dr.points_out) /
            static_cast<double>(fbqs.points_out) -
        1.0;
    table.AddRow({FmtDouble(eps, 0),
                  FmtInt(static_cast<int64_t>(fbqs.points_out)),
                  FmtInt(static_cast<int64_t>(dr.points_out)),
                  FmtPercent(extra, 0), eps <= 2.0 ? "~40%" : "40-50%"});
    fbqs_curve.xs.push_back(eps);
    fbqs_curve.ys.push_back(static_cast<double>(fbqs.points_out));
    dr_curve.xs.push_back(eps);
    dr_curve.ys.push_back(static_cast<double>(dr.points_out));
  }
  table.Print(std::cout);
  AsciiChart chart(60, 14);
  chart.Add(std::move(fbqs_curve));
  chart.Add(std::move(dr_curve));
  chart.Print(std::cout);
  std::printf(
      "\npaper reference @2m: DR 1550 vs FBQS 1100 (+40%%); "
      "@20m: DR 500 vs FBQS 330 (+50%%)\n");
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) { return bqs::Run(argc, argv); }
