// Key-point WAL bench + machine-readable baseline (BENCH_wal.json).
//
// Measures the durability subsystem end to end, per WalDurability policy:
//
//   append   points/sec and MB/s through KeyPointWal::Append on a
//            deterministic multi-device checkpoint workload (the same
//            batch shape FleetEngine's checkpoint path produces), plus
//            the storage density in bytes per key point (record bytes /
//            points; the delta+zigzag+varint codec's figure of merit).
//   recover  WalReader::Recover over the directory just written:
//            points/sec and MB/s of replay, and — the part that gates —
//            whether every acked checkpoint came back bit-exact with a
//            clean per-reason loss report.
//
// The run FAILS (exit 1, so CI fails) if any policy's recovery is not
// bit-exact-and-clean: a WAL that benches fast but drops acked data is
// not a WAL. Throughput is reported for trend-watching but gated only by
// check_perf's density check (bytes_per_point is deterministic — same
// workload, same codec — so cross-machine comparison is exact); fsync
// rates are a property of the CI runner's disk, not of this code.
//
// Usage: bench_wal [scale | --scale S] [--out PATH] [--dir PATH]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "storage/keypoint_wal.h"
#include "trajectory/point.h"

namespace bqs {
namespace {

struct PolicyCase {
  WalDurability durability;
  const char* name;
};

constexpr PolicyCase kPolicies[] = {
    {WalDurability::kNone, "none"},
    {WalDurability::kFlushEveryBatch, "flush_every_batch"},
    {WalDurability::kFsyncEveryBatch, "fsync_every_batch"},
    {WalDurability::kGroupCommit, "group_commit"},
};

struct Workload {
  /// checkpoints[c] is one Append() call: (device, keys).
  std::vector<std::pair<DeviceId, std::vector<KeyPoint>>> checkpoints;
  std::size_t total_points = 0;
};

/// The checkpoint stream FleetEngine's wal_checkpoint_points threshold
/// produces: interleaved devices, batches of a few dozen key points whose
/// coordinates random-walk (so deltas are small and the varint codec is
/// exercised at its design point, not at the degenerate all-zeros one).
Workload MakeWorkload(double scale) {
  Workload w;
  const std::size_t devices = 16;
  const auto checkpoints_per_device =
      static_cast<std::size_t>(200.0 * scale) + 4;
  Rng rng(0x57414cu);  // fixed seed: the workload is part of the baseline
  std::vector<double> t(devices, 0.0);
  std::vector<Vec2> pos(devices, Vec2{0.0, 0.0});
  std::vector<uint64_t> index(devices, 0);
  for (std::size_t c = 0; c < checkpoints_per_device; ++c) {
    for (DeviceId d = 0; d < devices; ++d) {
      const auto batch = static_cast<std::size_t>(rng.UniformInt(8, 48));
      std::vector<KeyPoint> keys;
      keys.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) {
        t[d] += rng.Uniform(0.5, 8.0);
        pos[d].x += rng.Uniform(-40.0, 40.0);
        pos[d].y += rng.Uniform(-40.0, 40.0);
        index[d] += static_cast<uint64_t>(rng.UniformInt(1, 30));
        KeyPoint key;
        key.index = index[d];
        key.point.t = t[d];
        key.point.pos = pos[d];
        keys.push_back(key);
      }
      w.total_points += keys.size();
      w.checkpoints.emplace_back(d, std::move(keys));
    }
  }
  return w;
}

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

uint64_t MixWalPoint(uint64_t h, const wal::WalPoint& p) {
  h = bench::Fnv1aMix(h, &p.index, sizeof(p.index));
  h = bench::Fnv1aMix(h, &p.qt, sizeof(p.qt));
  h = bench::Fnv1aMix(h, &p.qx, sizeof(p.qx));
  h = bench::Fnv1aMix(h, &p.qy, sizeof(p.qy));
  return h;
}

/// Order-sensitive fingerprint of a checkpoint sequence in quantized
/// (on-disk) form — what "bit-exact recovery" compares.
uint64_t ChecksumCheckpoints(const std::vector<wal::WalCheckpoint>& cps) {
  uint64_t h = bench::kFnvOffset;
  for (const wal::WalCheckpoint& cp : cps) {
    h = bench::Fnv1aMix(h, &cp.device, sizeof(cp.device));
    h = bench::Fnv1aMix(h, &cp.seq, sizeof(cp.seq));
    for (const wal::WalPoint& p : cp.points) h = MixWalPoint(h, p);
  }
  return h;
}

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      total += static_cast<uint64_t>(entry.file_size());
    }
  }
  return total;
}

struct PolicyResult {
  std::string name;
  double append_points_per_sec = 0.0;
  double append_mb_per_sec = 0.0;
  double bytes_per_point = 0.0;
  double recover_points_per_sec = 0.0;
  double recover_mb_per_sec = 0.0;
  uint64_t checkpoints = 0;
  uint64_t points = 0;
  uint64_t segments = 0;
  uint64_t file_bytes = 0;
  bool recovered_exact = false;
  bool recovery_clean = false;
};

PolicyResult RunPolicy(const PolicyCase& policy, const Workload& workload,
                       const std::string& base_dir) {
  PolicyResult result;
  result.name = policy.name;
  const std::string dir = base_dir + "/" + policy.name;
  std::filesystem::remove_all(dir);

  KeyPointWalOptions options;
  options.dir = dir;
  options.durability = policy.durability;
  options.segment_bytes = std::size_t{64} << 10;  // several rotations per run

  // What the writer acks, re-quantized the way Append() stores it: the
  // reference the recovered stream must reproduce bit for bit.
  std::vector<wal::WalCheckpoint> acked;
  acked.reserve(workload.checkpoints.size());

  KeyPointWal walog(options);
  if (Status st = walog.Open(); !st.ok()) {
    std::fprintf(stderr, "bench_wal: open %s: %s\n", dir.c_str(),
                 st.ToString().c_str());
    std::exit(2);
  }
  const auto append_begin = std::chrono::steady_clock::now();
  for (const auto& [device, keys] : workload.checkpoints) {
    const Result<WalAppendAck> ack = walog.Append(device, keys);
    if (!ack.ok()) {
      std::fprintf(stderr, "bench_wal: append (%s): %s\n", policy.name,
                   ack.status().ToString().c_str());
      std::exit(2);
    }
    wal::WalCheckpoint cp;
    cp.device = device;
    cp.seq = ack.value().seq;
    cp.points.reserve(keys.size());
    for (const KeyPoint& key : keys) {
      cp.points.push_back(wal::Quantize(key, options.quant));
    }
    acked.push_back(std::move(cp));
  }
  if (Status st = walog.Close(); !st.ok()) {
    std::fprintf(stderr, "bench_wal: close (%s): %s\n", policy.name,
                 st.ToString().c_str());
    std::exit(2);
  }
  const auto append_end = std::chrono::steady_clock::now();

  const KeyPointWalStats stats = walog.stats();
  result.checkpoints = stats.checkpoints_appended;
  result.points = stats.points_appended;
  result.segments = stats.segments_opened;
  result.file_bytes = DirBytes(dir);
  const double append_s = Seconds(append_begin, append_end);
  result.append_points_per_sec =
      append_s > 0 ? static_cast<double>(result.points) / append_s : 0.0;
  result.append_mb_per_sec =
      append_s > 0
          ? static_cast<double>(result.file_bytes) / (1e6 * append_s)
          : 0.0;
  result.bytes_per_point =
      result.points > 0
          ? static_cast<double>(result.file_bytes) /
                static_cast<double>(result.points)
          : 0.0;

  const auto recover_begin = std::chrono::steady_clock::now();
  const Result<WalRecovery> recovered = WalReader::Recover(dir);
  const auto recover_end = std::chrono::steady_clock::now();
  if (!recovered.ok()) {
    std::fprintf(stderr, "bench_wal: recover (%s): %s\n", policy.name,
                 recovered.status().ToString().c_str());
    std::exit(2);
  }
  const double recover_s = Seconds(recover_begin, recover_end);
  result.recover_points_per_sec =
      recover_s > 0 ? static_cast<double>(result.points) / recover_s : 0.0;
  result.recover_mb_per_sec =
      recover_s > 0
          ? static_cast<double>(result.file_bytes) / (1e6 * recover_s)
          : 0.0;
  result.recovery_clean = recovered.value().report.clean();
  result.recovered_exact =
      recovered.value().checkpoints.size() == acked.size() &&
      ChecksumCheckpoints(recovered.value().checkpoints) ==
          ChecksumCheckpoints(acked);

  std::filesystem::remove_all(dir);
  return result;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  using namespace bqs;

  const double scale = bench::ScaleFromArgs(argc, argv, 0.35);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_wal.json");
  const std::string base_dir = bench::StringFlag(
      argc, argv, "--dir",
      (std::filesystem::temp_directory_path() / "bqs_bench_wal").string());

  bench::Banner("Key-point WAL: append throughput, density, recovery",
                "durability subsystem (not a paper figure)", scale);

  const Workload workload = MakeWorkload(scale);
  std::printf("workload: %zu checkpoints, %zu points\n\n",
              workload.checkpoints.size(), workload.total_points);
  std::printf("%-18s %12s %10s %9s %12s %10s  %s\n", "policy", "append",
              "MB/s", "B/point", "recover", "MB/s", "exact");

  std::vector<PolicyResult> results;
  bool all_exact = true;
  for (const PolicyCase& policy : kPolicies) {
    PolicyResult r = RunPolicy(policy, workload, base_dir);
    std::printf("%-18s %9.2f M/s %10.1f %9.2f %9.2f M/s %10.1f  %s\n",
                r.name.c_str(), r.append_points_per_sec / 1e6,
                r.append_mb_per_sec, r.bytes_per_point,
                r.recover_points_per_sec / 1e6, r.recover_mb_per_sec,
                r.recovered_exact && r.recovery_clean ? "yes" : "NO");
    all_exact = all_exact && r.recovered_exact && r.recovery_clean;
    results.push_back(std::move(r));
  }

  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema"), json.Value("bqs-bench-wal-v1");
  json.Key("scale"), json.Value(scale);
  json.Key("all_recovered_exact"), json.Value(all_exact);
  json.Key("policies"), json.BeginArray();
  for (const PolicyResult& r : results) {
    json.BeginObject();
    json.Key("name"), json.Value(r.name);
    json.Key("append_points_per_sec"), json.Value(r.append_points_per_sec);
    json.Key("append_mb_per_sec"), json.Value(r.append_mb_per_sec);
    json.Key("bytes_per_point"), json.Value(r.bytes_per_point);
    json.Key("recover_points_per_sec"), json.Value(r.recover_points_per_sec);
    json.Key("recover_mb_per_sec"), json.Value(r.recover_mb_per_sec);
    json.Key("checkpoints"), json.Value(r.checkpoints);
    json.Key("points"), json.Value(r.points);
    json.Key("segments"), json.Value(r.segments);
    json.Key("file_bytes"), json.Value(r.file_bytes);
    json.Key("recovered_exact"), json.Value(r.recovered_exact);
    json.Key("recovery_clean"), json.Value(r.recovery_clean);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  json.WriteFile(out_path);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_exact) {
    std::fprintf(stderr,
                 "bench_wal: FAILED — a policy's recovery was not "
                 "bit-exact-and-clean\n");
    return 1;
  }
  return 0;
}
