// Table I reproduction: empirical worst-case complexity of FBQS (O(n)
// time / O(1) space) vs BDP and BGD (O(n^2)-family behaviour exposed by
// their buffer scans). google-benchmark fits the asymptotic complexity
// over growing stream sizes; the adversarial stream maximizes buffer
// pressure for the window algorithms.
#include <benchmark/benchmark.h>

#include "baselines/buffered_dp.h"
#include "baselines/buffered_greedy.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "simulation/random_walk.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

Trajectory MakeStream(std::size_t n) {
  RandomWalkOptions options;
  options.num_points = n;
  options.seed = 99;
  return GenerateRandomWalk(options);
}

void BM_Fbqs(benchmark::State& state) {
  const Trajectory stream = MakeStream(static_cast<std::size_t>(state.range(0)));
  FbqsCompressor fbqs(BqsOptions{.epsilon = 10.0});
  for (auto _ : state) {
    const CompressedTrajectory out = CompressAll(fbqs, stream);
    benchmark::DoNotOptimize(out.keys.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fbqs)->RangeMultiplier(2)->Range(2048, 65536)->Complexity();

void BM_Bqs(benchmark::State& state) {
  const Trajectory stream = MakeStream(static_cast<std::size_t>(state.range(0)));
  BqsCompressor bqs(BqsOptions{.epsilon = 10.0});
  for (auto _ : state) {
    const CompressedTrajectory out = CompressAll(bqs, stream);
    benchmark::DoNotOptimize(out.keys.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Bqs)->RangeMultiplier(2)->Range(2048, 65536)->Complexity();

// The window baselines degrade with the buffer: use an unbounded-ish
// buffer (the paper's worst-case analysis) on a straight-line stream so
// every push scans the whole segment buffer.
Trajectory StraightStream(std::size_t n) {
  Trajectory t;
  t.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back(
        TrackPoint{{static_cast<double>(i), 0.0}, static_cast<double>(i),
                   {1.0, 0.0}});
  }
  return t;
}

void BM_BgdUnbounded(benchmark::State& state) {
  const Trajectory stream =
      StraightStream(static_cast<std::size_t>(state.range(0)));
  BufferedGreedyOptions options;
  options.epsilon = 10.0;
  options.buffer_size = 0;  // unbounded: worst-case O(n^2)
  BufferedGreedy bgd(options);
  for (auto _ : state) {
    const CompressedTrajectory out = CompressAll(bgd, stream);
    benchmark::DoNotOptimize(out.keys.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BgdUnbounded)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity();

// A wide circular arc keeps the DP recursion busy (a straight line returns
// after one scan): every window has interior deviation above tolerance, so
// BDP shows its superlinear worst-case character.
Trajectory ArcStream(std::size_t n) {
  Trajectory t;
  t.reserve(n);
  const double radius = 2.0e5;
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = 1e-3 * static_cast<double>(i);
    t.push_back(TrackPoint{{radius * std::cos(angle),
                            radius * std::sin(angle)},
                           static_cast<double>(i),
                           {0.0, 0.0}});
  }
  return t;
}

void BM_BdpLargeBuffer(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Trajectory stream = ArcStream(n);
  BufferedDpOptions options;
  options.epsilon = 10.0;
  options.buffer_size = n;  // whole-stream buffer: offline DP cost
  BufferedDp bdp(options);
  for (auto _ : state) {
    const CompressedTrajectory out = CompressAll(bdp, stream);
    benchmark::DoNotOptimize(out.keys.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BdpLargeBuffer)
    ->RangeMultiplier(2)
    ->Range(1024, 16384)
    ->Complexity();

// Space claim: FBQS streaming state is constant-size (compile-time check;
// reported here so the bench output documents Table I's space column).
void BM_FbqsStateBytes(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sizeof(FbqsCompressor));
  }
  state.counters["state_bytes"] =
      static_cast<double>(sizeof(FbqsCompressor));
}
BENCHMARK(BM_FbqsStateBytes);

}  // namespace
}  // namespace bqs

BENCHMARK_MAIN();
