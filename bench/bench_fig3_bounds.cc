// Fig. 3 reproduction: lower/upper bound vs actual deviation for ~100
// consecutive bound-assessed points of the bat stream at epsilon = 5 m.
// The paper's claim: the bounds are tight, and >90% of decisions need no
// exact deviation computation.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/bqs_compressor.h"
#include "eval/table.h"
#include "simulation/datasets.h"

namespace bqs {
namespace {

int Run(double scale) {
  bench::Banner("Fig. 3 — Bounds vs actual deviation (bat data, eps = 5 m)",
                "tight sandwich; >90% of points decided by bounds alone",
                scale);
  const Dataset bat = BuildBatDataset(scale);

  BqsOptions options;
  options.epsilon = 5.0;
  BqsCompressor bqs(options);

  struct Row {
    uint64_t index;
    double lower, upper, actual;
  };
  std::vector<Row> rows;
  uint64_t decisive = 0;
  uint64_t assessed = 0;
  bqs.SetProbe([&](const internal::BoundsProbe& probe) {
    ++assessed;
    if (probe.upper <= probe.epsilon || probe.lower > probe.epsilon) {
      ++decisive;
    }
    if (rows.size() < 100) {
      rows.push_back(Row{probe.index, probe.lower, probe.upper,
                         probe.actual});
    }
  });
  std::vector<KeyPoint> keys;
  for (const TrackPoint& p : bat.stream) bqs.Push(p, &keys);
  bqs.Finish(&keys);

  TablePrinter table({"point", "lower_m", "upper_m", "actual_m",
                      "tolerance_m", "decided_by_bounds"});
  for (const Row& row : rows) {
    const bool by_bounds = row.upper <= 5.0 || row.lower > 5.0;
    table.AddRow({FmtInt(static_cast<int64_t>(row.index)),
                  FmtDouble(row.lower, 3), FmtDouble(row.upper, 3),
                  FmtDouble(row.actual, 3), "5.000",
                  by_bounds ? "yes" : "no"});
  }
  table.Print(std::cout);

  std::printf("\nbound-assessed points: %llu\n",
              static_cast<unsigned long long>(assessed));
  std::printf("decided by bounds alone: %llu (%.1f%%; paper: >90%%)\n",
              static_cast<unsigned long long>(decisive),
              assessed ? 100.0 * static_cast<double>(decisive) /
                             static_cast<double>(assessed)
                       : 100.0);
  std::printf("pruning power over the whole stream: %.3f\n",
              bqs.stats().PruningPower());
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.25));
}
