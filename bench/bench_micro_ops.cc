// Micro benchmarks: per-point push cost of each streaming compressor, the
// bound computation itself, projection, and the offline baselines. These
// underpin the run-time claims (Table III) at the operation level.
#include <benchmark/benchmark.h>

#include "baselines/buffered_greedy.h"
#include "baselines/dead_reckoning.h"
#include "baselines/douglas_peucker.h"
#include "common/rng.h"
#include "core/bounds.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "geo/utm.h"
#include "simulation/random_walk.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

const Trajectory& Stream() {
  static const Trajectory* stream = [] {
    RandomWalkOptions options;
    options.num_points = 20000;
    options.seed = 7;
    return new Trajectory(GenerateRandomWalk(options));
  }();
  return *stream;
}

template <typename Compressor>
void PushAll(benchmark::State& state, Compressor& compressor) {
  std::vector<KeyPoint> keys;
  keys.reserve(4096);
  for (auto _ : state) {
    state.PauseTiming();
    compressor.Reset();
    keys.clear();
    state.ResumeTiming();
    for (const TrackPoint& p : Stream()) compressor.Push(p, &keys);
    compressor.Finish(&keys);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Stream().size()));
}

void BM_FbqsPush(benchmark::State& state) {
  FbqsCompressor c(BqsOptions{.epsilon = 10.0});
  PushAll(state, c);
}
BENCHMARK(BM_FbqsPush);

void BM_BqsPush(benchmark::State& state) {
  BqsCompressor c(BqsOptions{.epsilon = 10.0});
  PushAll(state, c);
}
BENCHMARK(BM_BqsPush);

void BM_BgdPush(benchmark::State& state) {
  BufferedGreedyOptions options;
  options.epsilon = 10.0;
  options.buffer_size = 32;
  BufferedGreedy c(options);
  PushAll(state, c);
}
BENCHMARK(BM_BgdPush);

void BM_DeadReckoningPush(benchmark::State& state) {
  DeadReckoning c(DeadReckoningOptions{10.0});
  PushAll(state, c);
}
BENCHMARK(BM_DeadReckoningPush);

void BM_QuadrantBoundsCompute(benchmark::State& state) {
  QuadrantBound qb(0);
  Rng rng(3);
  for (int i = 0; i < 24; ++i) {
    qb.Add({rng.Uniform(1.0, 300.0), rng.Uniform(1.0, 300.0)});
  }
  const Vec2 end{412.0, 97.0};
  for (auto _ : state) {
    const DeviationBounds bounds =
        QuadrantDeviationBounds(qb, end, DistanceMetric::kPointToLine);
    benchmark::DoNotOptimize(bounds);
  }
}
BENCHMARK(BM_QuadrantBoundsCompute);

void BM_QuadrantBoundAdd(benchmark::State& state) {
  Rng rng(4);
  std::vector<Vec2> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back({rng.Uniform(1.0, 300.0), rng.Uniform(1.0, 300.0)});
  }
  std::size_t i = 0;
  QuadrantBound qb(0);
  for (auto _ : state) {
    qb.Add(points[i++ & 1023]);
    benchmark::DoNotOptimize(qb);
  }
}
BENCHMARK(BM_QuadrantBoundAdd);

void BM_DouglasPeuckerFull(benchmark::State& state) {
  DouglasPeucker dp(DpOptions{10.0, DistanceMetric::kPointToLine});
  for (auto _ : state) {
    const CompressedTrajectory out = dp.Compress(Stream());
    benchmark::DoNotOptimize(out.keys.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(Stream().size()));
}
BENCHMARK(BM_DouglasPeuckerFull);

void BM_UtmForward(benchmark::State& state) {
  const LatLon pos{-27.4698, 153.0251};
  for (auto _ : state) {
    auto utm = LatLonToUtm(pos);
    benchmark::DoNotOptimize(utm);
  }
}
BENCHMARK(BM_UtmForward);

}  // namespace
}  // namespace bqs

BENCHMARK_MAIN();
