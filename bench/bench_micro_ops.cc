// Micro benchmarks for the per-point decision kernel (ISSUE 4): the new
// transcendental-free primitives head-to-head against the seed's
// transcendental path, at the operation level and end-to-end.
//
//   classify     — sign-test quadrant classification vs atan2+fmod
//   significant  — cached vs per-query-recomputed SignificantPoints
//   compare      — squared-deviation threshold test vs sqrt-bearing
//                  distances (the conclusive-case decision)
//   push         — BQS/FBQS full-stream throughput, fast vs reference
//                  kernel, with the ops:: transcendental counters proving
//                  the fast kernel's conclusive path performs zero atan2
//                  calls (modulo counted guard-band fallbacks, each of
//                  which re-runs the reference composition)
//
// Emits BENCH_micro.json (bench::JsonReport) and exits 1 on any checksum
// divergence between kernels or if the fast kernel touches a transcendental
// outside its accounted fallbacks.
//
// Usage: bench_micro_ops [scale | --scale S] [--out PATH] [--reps N]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/math_utils.h"
#include "common/op_counters.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/bounds.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "geometry/angle.h"
#include "simulation/datasets.h"
#include "simulation/random_walk.h"
#include "trajectory/compressor.h"

namespace bqs {
namespace {

constexpr double kEpsilon = 10.0;
constexpr uint64_t kFnvPrime = 1099511628211u;

template <typename Body>
double BestMs(int reps, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

double NsPerOp(double best_ms, std::size_t n) {
  return n == 0 ? 0.0 : best_ms * 1e6 / static_cast<double>(n);
}

uint64_t MixDouble(uint64_t h, double v) {
  return bench::Fnv1aMix(h, &v, sizeof(v));
}

uint64_t MixVec2(uint64_t h, Vec2 v) { return MixDouble(MixDouble(h, v.x), v.y); }

// ---------------------------------------------------------------------------
// classify: sign tests vs atan2. The inputs mix realistic magnitudes with
// exact-axis and signed-zero points (where the two classifiers agree by the
// documented tie semantics); the sub-ulp near-axis sliver where the atan2
// formula itself misclassifies (see QuadrantOf) is excluded by
// construction, as it is from any real trajectory frame.
// ---------------------------------------------------------------------------
std::vector<Vec2> ClassifyInputs(std::size_t n) {
  Rng rng(11);
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 97 == 0) {
      // Axis-aligned, including signed zeros: the boundary cases.
      const double r = rng.Uniform(0.5, 2000.0);
      switch (i / 97 % 8) {
        case 0: pts.push_back({r, 0.0}); break;
        case 1: pts.push_back({r, -0.0}); break;
        case 2: pts.push_back({0.0, r}); break;
        case 3: pts.push_back({-0.0, r}); break;
        case 4: pts.push_back({-r, 0.0}); break;
        case 5: pts.push_back({-r, -0.0}); break;
        case 6: pts.push_back({0.0, -r}); break;
        default: pts.push_back({-0.0, -r}); break;
      }
    } else {
      const double theta = rng.Uniform(0.0, kTwoPi);
      const double r = rng.Uniform(0.1, 3000.0);
      pts.push_back({r * std::cos(theta), r * std::sin(theta)});
    }
  }
  return pts;
}

template <int (*Classifier)(Vec2)>
uint64_t ClassifyChecksum(const std::vector<Vec2>& pts) {
  uint64_t h = bench::kFnvOffset;
  for (const Vec2 p : pts) {
    h = h * kFnvPrime + static_cast<uint64_t>(Classifier(p));
  }
  return h;
}

// ---------------------------------------------------------------------------
// significant: cached vs recomputed. The fold is a cheap arithmetic sum
// (not a byte hash) so the measured delta is the recompute cost itself;
// the bitwise cached-vs-recomputed equality is asserted separately via one
// full-precision hash per variant.
// ---------------------------------------------------------------------------
double FoldSignificant(const QuadrantBound::SignificantPoints& s) {
  double acc = 0.0;
  for (const Vec2 c : s.corners) acc += c.x + c.y;
  acc += s.l1.x + s.l1.y + s.l2.x + s.l2.y;
  acc += s.u1.x + s.u1.y + s.u2.x + s.u2.y;
  acc += s.near_corner.x + s.far_corner.y;
  acc += s.min_angle_point.x + s.max_angle_point.y;
  return acc;
}

uint64_t MixSignificant(uint64_t h, const QuadrantBound::SignificantPoints& s) {
  for (const Vec2 c : s.corners) h = MixVec2(h, c);
  h = MixVec2(h, s.l1);
  h = MixVec2(h, s.l2);
  h = MixVec2(h, s.u1);
  h = MixVec2(h, s.u2);
  h = MixVec2(h, s.near_corner);
  h = MixVec2(h, s.far_corner);
  h = MixVec2(h, s.min_angle_point);
  h = MixVec2(h, s.max_angle_point);
  return h;
}

QuadrantBound MakeBound(int seed) {
  Rng rng(static_cast<uint64_t>(seed));
  QuadrantBound qb(0);
  for (int i = 0; i < 24; ++i) {
    qb.AddCross({rng.Uniform(1.0, 300.0), rng.Uniform(1.0, 300.0)});
  }
  return qb;
}

// ---------------------------------------------------------------------------
// compare: the conclusive-case decision on a quadrant's candidate set —
// sqrt-bearing distances vs the squared-domain test.
// ---------------------------------------------------------------------------
struct CompareCase {
  Vec2 end;
  Vec2 candidates[10];
};

std::vector<CompareCase> CompareInputs(std::size_t n) {
  Rng rng(13);
  std::vector<CompareCase> cases(n);
  for (CompareCase& c : cases) {
    c.end = {rng.Uniform(50.0, 800.0), rng.Uniform(-200.0, 200.0)};
    for (Vec2& p : c.candidates) {
      // Hover the candidates around the epsilon band so decisions mix.
      const double t = rng.Uniform(0.0, 1.0);
      const Vec2 on_path = c.end * t;
      const double offset = rng.Uniform(-3.0 * kEpsilon, 3.0 * kEpsilon);
      const Vec2 normal =
          Vec2{-c.end.y, c.end.x} * (1.0 / std::max(c.end.Norm(), 1e-9));
      p = on_path + normal * offset;
    }
  }
  return cases;
}

uint64_t CompareSqrtChecksum(const std::vector<CompareCase>& cases) {
  uint64_t h = bench::kFnvOffset;
  for (const CompareCase& c : cases) {
    double dmax = 0.0;
    for (const Vec2 p : c.candidates) {
      dmax = std::max(dmax, PointToLineDistance(p, {0.0, 0.0}, c.end));
    }
    h = h * kFnvPrime + (dmax <= kEpsilon ? 1u : 0u);
  }
  return h;
}

uint64_t CompareSquaredChecksum(const std::vector<CompareCase>& cases) {
  uint64_t h = bench::kFnvOffset;
  for (const CompareCase& c : cases) {
    double cmax = 0.0;
    for (const Vec2 p : c.candidates) {
      cmax = std::max(cmax, std::fabs(c.end.Cross(p)));
    }
    const bool within = cmax * cmax <= kEpsilon * kEpsilon * c.end.NormSq();
    h = h * kFnvPrime + (within ? 1u : 0u);
  }
  return h;
}

// ---------------------------------------------------------------------------
// push: end-to-end kernel comparison.
// ---------------------------------------------------------------------------
struct PushRun {
  std::string stream;
  std::string algorithm;
  const char* kernel = "";
  std::size_t points = 0;
  double best_ms = 0.0;
  double points_per_sec = 0.0;
  uint64_t checksum = 0;
  ops::Snapshot op_delta;
  DecisionStats stats;
};

template <typename Compressor>
PushRun MeasurePush(const std::string& stream_name, const Trajectory& stream,
                    const std::string& algorithm, BoundKernel kernel,
                    int reps) {
  BqsOptions options;
  options.epsilon = kEpsilon;
  options.bound_kernel = kernel;
  PushRun run;
  run.stream = stream_name;
  run.algorithm = algorithm;
  run.kernel = kernel == BoundKernel::kFast ? "fast" : "reference";
  run.points = stream.size();
  CompressedTrajectory out;
  run.best_ms = BestMs(reps, [&] {
    Compressor compressor(options);
    out = CompressAll(compressor, stream);
  });
  // Dedicated untimed run for the op counters, so the deltas are per
  // single pass (the timed loop would multiply them by reps).
  {
    const ops::Snapshot before = ops::Read();
    Compressor compressor(options);
    const CompressedTrajectory counted = CompressAll(compressor, stream);
    run.op_delta = ops::Read().Delta(before);
    run.stats = compressor.stats();
    out = counted;
  }
  run.points_per_sec =
      run.best_ms > 0.0
          ? static_cast<double>(stream.size()) / (run.best_ms / 1000.0)
          : 0.0;
  run.checksum = bench::ChecksumKeys(out.keys);
  return run;
}

int Run(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv, 0.35);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_micro.json");
  const int reps = std::clamp(
      std::atoi(bench::StringFlag(argc, argv, "--reps", "5").c_str()), 1,
      1000);

  bench::Banner(
      "Micro ops — transcendental-free decision kernel vs the seed's "
      "atan2/sqrt path (classify, significant, compare, full push)",
      "ISSUE 4 acceptance: fast kernel byte-identical with zero atan2 on "
      "the conclusive path (op counters)",
      scale);

  bool all_match = true;
  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema").Value("bqs-bench-micro-v1");
  json.Key("scale").Value(scale);
  json.Key("reps").Value(reps);
  // The SIMD tier the batch screen ran under, so the perf gate knows
  // whether the per-row lane counters should show vector coverage (they
  // are legitimately all-scalar under BQS_FORCE_SCALAR or on non-x86).
  json.Key("simd_tier").Value(simd::TierName(simd::ActiveTier()));

  // -- classify ------------------------------------------------------------
  {
    const std::size_t n =
        static_cast<std::size_t>(2e6 * scale) | 1u;  // odd: vary axis cases.
    const std::vector<Vec2> pts = ClassifyInputs(n);
    uint64_t sum_sign = 0;
    uint64_t sum_atan2 = 0;
    const double ms_sign = BestMs(
        reps, [&] { sum_sign = ClassifyChecksum<&QuadrantOf>(pts); });
    const double ms_atan2 = BestMs(
        reps, [&] { sum_atan2 = ClassifyChecksum<&QuadrantOfAtan2>(pts); });
    const bool match = sum_sign == sum_atan2;
    all_match = all_match && match;
    std::printf("classify     : sign-test %7.2f ns/op, atan2 %7.2f ns/op "
                "(%.1fx), agree: %s\n",
                NsPerOp(ms_sign, n), NsPerOp(ms_atan2, n),
                ms_sign > 0.0 ? ms_atan2 / ms_sign : 0.0,
                match ? "yes" : "NO — DIVERGED");
    json.Key("classify").BeginObject();
    json.Key("n").Value(static_cast<uint64_t>(n));
    json.Key("signtest_ns_per_op").Value(NsPerOp(ms_sign, n));
    json.Key("atan2_ns_per_op").Value(NsPerOp(ms_atan2, n));
    json.Key("speedup").Value(ms_sign > 0.0 ? ms_atan2 / ms_sign : 0.0);
    json.Key("checksums_match").Value(match);
    json.EndObject();
  }

  // -- significant ---------------------------------------------------------
  {
    const std::size_t n = static_cast<std::size_t>(1e6 * scale) + 1;
    const QuadrantBound qb = MakeBound(3);
    double acc_cached = 0.0;
    double acc_recompute = 0.0;
    const double ms_cached = BestMs(reps, [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += FoldSignificant(qb.Significant());
      acc_cached = acc;
    });
    const double ms_recompute = BestMs(reps, [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += FoldSignificant(qb.ComputeSignificant());
      }
      acc_recompute = acc;
    });
    const uint64_t sum_cached =
        MixSignificant(bench::kFnvOffset, qb.Significant());
    const uint64_t sum_recompute =
        MixSignificant(bench::kFnvOffset, qb.ComputeSignificant());
    const bool match = sum_cached == sum_recompute && acc_cached == acc_recompute;
    all_match = all_match && match;
    std::printf("significant  : cached    %7.2f ns/op, rebuild %6.2f ns/op "
                "(%.1fx), agree: %s\n",
                NsPerOp(ms_cached, n), NsPerOp(ms_recompute, n),
                ms_cached > 0.0 ? ms_recompute / ms_cached : 0.0,
                match ? "yes" : "NO — DIVERGED");
    json.Key("significant").BeginObject();
    json.Key("n").Value(static_cast<uint64_t>(n));
    json.Key("cached_ns_per_query").Value(NsPerOp(ms_cached, n));
    json.Key("recompute_ns_per_query").Value(NsPerOp(ms_recompute, n));
    json.Key("speedup")
        .Value(ms_cached > 0.0 ? ms_recompute / ms_cached : 0.0);
    json.Key("checksums_match").Value(match);
    json.EndObject();
  }

  // -- compare -------------------------------------------------------------
  {
    const std::size_t n = static_cast<std::size_t>(4e5 * scale) + 1;
    const std::vector<CompareCase> cases = CompareInputs(n);
    uint64_t sum_sqrt = 0;
    uint64_t sum_sq = 0;
    const double ms_sqrt =
        BestMs(reps, [&] { sum_sqrt = CompareSqrtChecksum(cases); });
    const double ms_sq =
        BestMs(reps, [&] { sum_sq = CompareSquaredChecksum(cases); });
    const bool match = sum_sqrt == sum_sq;
    all_match = all_match && match;
    std::printf("compare      : squared   %7.2f ns/op, sqrt    %6.2f ns/op "
                "(%.1fx), agree: %s\n",
                NsPerOp(ms_sq, n), NsPerOp(ms_sqrt, n),
                ms_sq > 0.0 ? ms_sqrt / ms_sq : 0.0,
                match ? "yes" : "NO — DIVERGED");
    json.Key("compare").BeginObject();
    json.Key("n").Value(static_cast<uint64_t>(n));
    json.Key("squared_ns_per_decision").Value(NsPerOp(ms_sq, n));
    json.Key("sqrt_ns_per_decision").Value(NsPerOp(ms_sqrt, n));
    json.Key("speedup").Value(ms_sq > 0.0 ? ms_sqrt / ms_sq : 0.0);
    json.Key("decisions_match").Value(match);
    json.EndObject();
  }

  // -- push ----------------------------------------------------------------
  bool transcendental_free = true;
  {
    RandomWalkOptions walk_options;
    walk_options.num_points = static_cast<std::size_t>(60000 * scale) + 64;
    walk_options.seed = 7;
    const Trajectory walk = GenerateRandomWalk(walk_options);
    const Dataset empirical = BuildEmpiricalMergedDataset(scale);

    struct StreamCase {
      const char* name;
      const Trajectory* stream;
    };
    const StreamCase streams[] = {{"random_walk", &walk},
                                  {"empirical", &empirical.stream}};

    json.Key("push").BeginArray();
    for (const StreamCase& sc : streams) {
      std::vector<PushRun> runs;
      runs.push_back(MeasurePush<BqsCompressor>(
          sc.name, *sc.stream, "BQS", BoundKernel::kFast, reps));
      runs.push_back(MeasurePush<BqsCompressor>(
          sc.name, *sc.stream, "BQS", BoundKernel::kReference, reps));
      runs.push_back(MeasurePush<FbqsCompressor>(
          sc.name, *sc.stream, "FBQS", BoundKernel::kFast, reps));
      runs.push_back(MeasurePush<FbqsCompressor>(
          sc.name, *sc.stream, "FBQS", BoundKernel::kReference, reps));

      for (std::size_t i = 0; i < runs.size(); i += 2) {
        const PushRun& fast = runs[i];
        const PushRun& reference = runs[i + 1];
        const bool match = fast.checksum == reference.checksum;
        all_match = all_match && match;
        // The conclusive-path criterion: each counted fallback re-runs the
        // reference composition, which performs one atan2 per occupied
        // quadrant (<= 4). Anything beyond that budget means a
        // transcendental leaked back into the fast path.
        const bool clean =
            fast.op_delta.atan2_calls <= 4 * fast.stats.kernel_fallbacks;
        transcendental_free = transcendental_free && clean;
        std::printf(
            "push %-11s %4s: fast %8.0f pts/s (atan2 %llu, sqrt %llu, "
            "fallbacks %llu%s), reference %8.0f pts/s (atan2 %llu, sqrt "
            "%llu), %.1fx, %s\n",
            sc.name, fast.algorithm.c_str(), fast.points_per_sec,
            static_cast<unsigned long long>(fast.op_delta.atan2_calls),
            static_cast<unsigned long long>(fast.op_delta.sqrt_calls),
            static_cast<unsigned long long>(fast.stats.kernel_fallbacks),
            clean ? "" : " — TRANSCENDENTAL LEAK", reference.points_per_sec,
            static_cast<unsigned long long>(reference.op_delta.atan2_calls),
            static_cast<unsigned long long>(reference.op_delta.sqrt_calls),
            fast.best_ms > 0.0 ? reference.best_ms / fast.best_ms : 0.0,
            match ? "byte-identical" : "DIVERGED");
        for (const PushRun* run : {&fast, &reference}) {
          json.BeginObject();
          json.Key("stream").Value(run->stream);
          json.Key("algorithm").Value(run->algorithm);
          json.Key("kernel").Value(run->kernel);
          json.Key("points").Value(static_cast<uint64_t>(run->points));
          json.Key("best_ms").Value(run->best_ms);
          json.Key("points_per_sec").Value(run->points_per_sec);
          json.Key("checksum").Value(bench::HexChecksum(run->checksum));
          json.Key("atan2_calls").Value(run->op_delta.atan2_calls);
          json.Key("sqrt_calls").Value(run->op_delta.sqrt_calls);
          json.Key("significant_rebuilds")
              .Value(run->op_delta.significant_rebuilds);
          json.Key("kernel_fallbacks").Value(run->stats.kernel_fallbacks);
          json.Key("batch_lanes4_points")
              .Value(run->op_delta.batch_lanes4_points);
          json.Key("batch_lanes2_points")
              .Value(run->op_delta.batch_lanes2_points);
          json.Key("batch_scalar_points")
              .Value(run->op_delta.batch_scalar_points);
          json.EndObject();
        }
      }
    }
    json.EndArray();
  }

  json.Key("fast_kernel_transcendental_free").Value(transcendental_free);
  json.Key("all_checksums_match").Value(all_match);
  json.EndObject();

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_match) {
    std::fprintf(stderr,
                 "FAIL: fast-kernel output diverged from the reference\n");
    return 1;
  }
  if (!transcendental_free) {
    std::fprintf(stderr,
                 "FAIL: fast kernel performed unaccounted transcendental "
                 "calls on the conclusive path\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) { return bqs::Run(argc, argv); }
