// Fig. 6 reproduction: BQS pruning power vs error tolerance on the bat
// (2-20 m) and vehicle (5-50 m) datasets. Paper: generally above 0.9, with
// the vehicle data slightly higher thanks to road-network smoothness.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/ascii_chart.h"
#include "core/bqs_compressor.h"
#include "eval/table.h"
#include "simulation/datasets.h"

namespace bqs {
namespace {

void RunDataset(const Dataset& dataset, const std::vector<double>& epsilons) {
  std::printf("\n-- %s data (%zu points) --\n", dataset.name.c_str(),
              dataset.stream.size());
  TablePrinter table({"eps_m", "pruning_power", "pruning_incl_warmup",
                      "bound_decisiveness", "exact_calcs"});
  ChartSeries curve{dataset.name + " pruning power", {}, {}};
  for (double eps : epsilons) {
    BqsOptions options;
    options.epsilon = eps;
    BqsCompressor bqs(options);
    std::vector<KeyPoint> keys;
    for (const TrackPoint& p : dataset.stream) bqs.Push(p, &keys);
    bqs.Finish(&keys);
    const DecisionStats& stats = bqs.stats();
    table.AddRow({FmtDouble(eps, 0), FmtDouble(stats.PruningPower(), 4),
                  FmtDouble(stats.PruningPowerInclWarmup(), 4),
                  FmtDouble(stats.BoundDecisiveness(), 4),
                  FmtInt(static_cast<int64_t>(stats.exact_computations))});
    curve.xs.push_back(eps);
    curve.ys.push_back(stats.PruningPower());
  }
  table.Print(std::cout);
  AsciiChart chart(60, 12);
  chart.Add(std::move(curve));
  chart.Print(std::cout);
}

int Run(double scale) {
  bench::Banner(
      "Fig. 6 — Pruning power of the BQS algorithm vs error tolerance",
      "(a) bat 2-20 m, (b) vehicle 5-50 m; generally above 0.9", scale);
  RunDataset(BuildBatDataset(scale),
             {2, 4, 6, 8, 10, 12, 14, 16, 18, 20});
  RunDataset(BuildVehicleDataset(scale),
             {5, 10, 15, 20, 25, 30, 35, 40, 45, 50});
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.35));
}
