// Extension bench (beyond the paper's evaluation): SQUISH-E — the
// strongest related-work baseline the paper discusses (Section II) but
// does not run — against FBQS/BQS. Note SQUISH-E bounds the synchronized
// Euclidean distance (SED), a stricter time-aware metric, so its rates are
// not directly comparable at equal epsilon; both are reported with their
// own guarantees verified.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "baselines/squish_e.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simulation/datasets.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

int Run(double scale) {
  bench::Banner(
      "Extension — SQUISH-E(eps) vs BQS/FBQS",
      "SQUISH-E: related work [8]; SED-bounded, O(n log n), offline in "
      "its error-bounded mode",
      scale);
  TablePrinter table({"dataset", "eps_m", "BQS_rate", "FBQS_rate",
                      "SQUISHE_rate", "SQUISHE_is_SED"});
  for (const Dataset& dataset : BuildAllDatasets(scale)) {
    for (double eps : {5.0, 10.0, 20.0}) {
      BqsOptions options;
      options.epsilon = eps;
      BqsCompressor bqs(options);
      const auto exact = CompressAll(bqs, dataset.stream);
      FbqsCompressor fbqs(options);
      const auto fast = CompressAll(fbqs, dataset.stream);

      SquishEOptions squish_options;
      squish_options.epsilon = eps;
      SquishE squish(squish_options);
      const auto squished = squish.Compress(dataset.stream);

      table.AddRow(
          {dataset.name, FmtDouble(eps, 0),
           FmtPercent(CompressionRate(exact.size(), dataset.stream.size()),
                      2),
           FmtPercent(CompressionRate(fast.size(), dataset.stream.size()),
                      2),
           FmtPercent(
               CompressionRate(squished.size(), dataset.stream.size()), 2),
           "yes (stricter metric)"});
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.2));
}
