// Ablation: data-centric rotation (paper Section V-D) on vs off, and
// warm-up length sensitivity. The paper argues rotation tightens the
// hulls "significantly"; this bench quantifies it per dataset.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simulation/datasets.h"

namespace bqs {
namespace {

int Run(double scale) {
  bench::Banner(
      "Ablation — data-centric rotation and warm-up length (eps = 10 m)",
      "paper Section V-D: rotation improves pruning power significantly",
      scale);
  TablePrinter table({"dataset", "rotation", "warmup", "BQS_pruning",
                      "FBQS_rate"});
  for (const Dataset& dataset : BuildAllDatasets(scale)) {
    for (const bool rotate : {false, true}) {
      for (const int warmup : {4, 8, 16}) {
        if (!rotate && warmup != 8) continue;  // warm-up only matters on.
        BqsOptions options;
        options.epsilon = 10.0;
        options.data_centric_rotation = rotate;
        options.rotation_warmup = warmup;

        BqsCompressor bqs(options);
        std::vector<KeyPoint> keys;
        for (const TrackPoint& p : dataset.stream) bqs.Push(p, &keys);
        bqs.Finish(&keys);

        FbqsCompressor fbqs(options);
        const CompressedTrajectory fast = CompressAll(fbqs, dataset.stream);

        table.AddRow({dataset.name, rotate ? "on" : "off",
                      rotate ? FmtInt(warmup) : "-",
                      FmtDouble(bqs.stats().PruningPower(), 4),
                      FmtPercent(CompressionRate(fast.size(),
                                                 dataset.stream.size()),
                                 2)});
      }
    }
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.35));
}
