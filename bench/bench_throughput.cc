// Throughput bench + machine-readable perf baseline (BENCH_throughput.json).
//
// Measures points/sec of the BQS family through the batched ingest path on
// (a) the merged empirical stream (the paper's Table III workload) and
// (b) an adversarial slowly-drifting stream engineered to maximize the
// inconclusive band d_lb <= eps < d_ub — the regime where the paper admits
// BQS degrades to O(n^2) (Table I). The matrix covers both bound kernels
// and the resolver family:
//   BQS            — fast kernel + adaptive resolver (the defaults)
//   BQS_hull       — fast kernel + pure Melkman-hull resolver
//   BQS_bruteforce — reference kernel + whole-buffer rescan: the seed
//                    implementation bit-for-bit (transcendental bound
//                    path, O(n) resolves), kept as the baseline row the
//                    speedup is quoted against
//   FBQS           — fast kernel;  FBQS_reference — reference kernel
// The run FAILS (exit 1, so CI fails) unless every BQS row is byte-
// identical to every other and both FBQS rows agree; it also verifies the
// epsilon error bound end to end.
//
// Usage: bench_throughput [scale | --scale S] [--out PATH] [--reps N]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "baselines/douglas_peucker.h"
#include "eval/table.h"
#include "simulation/datasets.h"
#include "trajectory/compressor.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

constexpr double kEpsilon = 10.0;  // Paper's evaluation tolerance (metres).

using bench::ChecksumKeys;
using bench::HexChecksum;

struct MeasuredRun {
  std::string name;
  double best_ms = 0.0;
  double points_per_sec = 0.0;
  std::size_t keys = 0;
  uint64_t checksum = 0;
  bool error_bounded = true;
  bool has_stats = false;
  DecisionStats stats;
};

/// Shared post-measurement tail: derived metrics from the retained output
/// and the best repetition time, identical for every algorithm row.
void FinishRun(MeasuredRun* run, const CompressedTrajectory& out,
               const Trajectory& stream) {
  run->keys = out.size();
  run->checksum = ChecksumKeys(out.keys);
  run->points_per_sec = run->best_ms > 0.0
                            ? static_cast<double>(stream.size()) /
                                  (run->best_ms / 1000.0)
                            : 0.0;
  run->error_bounded =
      EvaluateCompression(stream, out, DistanceMetric::kPointToLine)
          .BoundedBy(kEpsilon * (1.0 + 1e-9));
}

template <typename MakeCompressor>
MeasuredRun MeasureStream(const std::string& name, MakeCompressor make,
                          const Trajectory& stream, int reps) {
  MeasuredRun run;
  run.name = name;
  CompressedTrajectory out;
  for (int r = 0; r < reps; ++r) {
    auto compressor = make();
    const auto start = std::chrono::steady_clock::now();
    out = CompressAll(*compressor, stream);
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || ms < run.best_ms) run.best_ms = ms;
    if (r == 0) {
      run.stats = compressor->stats();
      run.has_stats = true;
    }
  }
  FinishRun(&run, out, stream);
  return run;
}

MeasuredRun MeasureDp(const Trajectory& stream, int reps) {
  MeasuredRun run;
  run.name = "DP";
  CompressedTrajectory out;
  for (int r = 0; r < reps; ++r) {
    DouglasPeucker dp(DpOptions{kEpsilon, DistanceMetric::kPointToLine});
    const auto start = std::chrono::steady_clock::now();
    out = dp.Compress(stream);
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (r == 0 || ms < run.best_ms) run.best_ms = ms;
  }
  FinishRun(&run, out, stream);
  return run;
}

void EmitRun(bench::JsonReport& json, const MeasuredRun& run) {
  json.BeginObject();
  json.Key("name").Value(run.name);
  json.Key("best_ms").Value(run.best_ms);
  json.Key("points_per_sec").Value(run.points_per_sec);
  json.Key("keys").Value(static_cast<uint64_t>(run.keys));
  json.Key("checksum").Value(HexChecksum(run.checksum));
  json.Key("error_bounded").Value(run.error_bounded);
  if (run.has_stats) {
    json.Key("exact_scans").Value(run.stats.exact_computations);
    json.Key("exact_points_scanned").Value(run.stats.exact_points_scanned);
    json.Key("peak_exact_state").Value(run.stats.peak_exact_state);
    json.Key("pruning_power").Value(run.stats.PruningPower());
    json.Key("kernel_fallbacks").Value(run.stats.kernel_fallbacks);
  }
  json.EndObject();
}

int Run(int argc, char** argv) {
  const double scale = bench::ScaleFromArgs(argc, argv, 1.0);
  const std::string out_path =
      bench::StringFlag(argc, argv, "--out", "BENCH_throughput.json");
  // A run with zero repetitions would "pass" the checksum gate on empty
  // outputs and write a bogus baseline, so clamp to a sane range.
  const int reps = std::clamp(
      std::atoi(bench::StringFlag(argc, argv, "--reps", "5").c_str()), 1,
      1000);

  bench::Banner(
      "Throughput — points/sec through PushBatch: fast vs reference bound "
      "kernel, adaptive/hull/brute exact resolvers (eps = 10 m)",
      "Table I runtime + ISSUE 4: transcendental-free decision kernel; "
      "Melkman hull bounds the O(n^2) rescans, adaptively",
      scale);

  struct StreamCase {
    Dataset dataset;
    const char* note;
  };
  std::vector<StreamCase> cases;
  cases.push_back({BuildEmpiricalMergedDataset(scale),
                   "merged empirical stream (paper Table III workload)"});
  cases.push_back({BuildAdversarialDriftDataset(scale, kEpsilon),
                   "adversarial drift: bounds inconclusive on most points"});

  bench::JsonReport json;
  json.BeginObject();
  json.Key("schema").Value("bqs-bench-throughput-v1");
  json.Key("scale").Value(scale);
  json.Key("epsilon").Value(kEpsilon);
  json.Key("reps").Value(reps);
  json.Key("streams").BeginArray();

  bool all_identical = true;
  bool all_bounded = true;
  for (const StreamCase& c : cases) {
    const Trajectory& stream = c.dataset.stream;
    std::printf("\n-- %s: %zu points (%s) --\n", c.dataset.name.c_str(),
                stream.size(), c.note);

    BqsOptions fast_options;  // the defaults: fast kernel + adaptive.
    fast_options.epsilon = kEpsilon;
    BqsOptions hull_options = fast_options;
    hull_options.exact_resolver = ExactResolver::kHull;
    // The seed implementation bit-for-bit: transcendental bound kernel +
    // whole-buffer rescans. Every other row is checksummed against it.
    BqsOptions seed_options = fast_options;
    seed_options.bound_kernel = BoundKernel::kReference;
    seed_options.exact_resolver = ExactResolver::kBruteForce;
    BqsOptions fbqs_ref_options = fast_options;
    fbqs_ref_options.bound_kernel = BoundKernel::kReference;

    std::vector<MeasuredRun> runs;
    runs.push_back(MeasureStream(
        "BQS",
        [&] { return std::make_unique<BqsCompressor>(fast_options); },
        stream, reps));
    runs.push_back(MeasureStream(
        "BQS_hull",
        [&] { return std::make_unique<BqsCompressor>(hull_options); },
        stream, reps));
    runs.push_back(MeasureStream(
        "BQS_bruteforce",
        [&] { return std::make_unique<BqsCompressor>(seed_options); },
        stream, reps));
    runs.push_back(MeasureStream(
        "FBQS",
        [&] { return std::make_unique<FbqsCompressor>(fast_options); },
        stream, reps));
    runs.push_back(MeasureStream(
        "FBQS_reference",
        [&] { return std::make_unique<FbqsCompressor>(fbqs_ref_options); },
        stream, reps));
    runs.push_back(MeasureDp(stream, reps));

    const MeasuredRun& fast = runs[0];
    const MeasuredRun& seed = runs[2];
    const double speedup =
        fast.best_ms > 0.0 ? seed.best_ms / fast.best_ms : 0.0;
    // Byte-identity gates: all three BQS rows (kernels x resolvers) must
    // agree, and the two FBQS rows (kernels) must agree.
    bool identical = true;
    for (int r : {1, 2}) {
      identical = identical && runs[static_cast<std::size_t>(r)].checksum ==
                                   fast.checksum &&
                  runs[static_cast<std::size_t>(r)].keys == fast.keys;
    }
    identical = identical && runs[3].checksum == runs[4].checksum &&
                runs[3].keys == runs[4].keys;
    all_identical = all_identical && identical;
    for (const MeasuredRun& run : runs) {
      // DP and the BQS family all promise the epsilon guarantee; a
      // violation anywhere fails the run (and the CI gate) even when all
      // kernels agree on the same wrong output.
      all_bounded = all_bounded && run.error_bounded;
    }

    TablePrinter table({"algorithm", "points/sec", "best_ms", "keys",
                        "exact_scans", "pts_scanned", "peak_state"});
    for (const MeasuredRun& run : runs) {
      table.AddRow(
          {run.name, FmtDouble(run.points_per_sec, 0),
           FmtDouble(run.best_ms, 2), FmtInt(static_cast<int64_t>(run.keys)),
           run.has_stats
               ? FmtInt(static_cast<int64_t>(run.stats.exact_computations))
               : "-",
           run.has_stats
               ? FmtInt(static_cast<int64_t>(run.stats.exact_points_scanned))
               : "-",
           run.has_stats
               ? FmtInt(static_cast<int64_t>(run.stats.peak_exact_state))
               : "-"});
    }
    table.Print(std::cout);
    std::printf("BQS fast+adaptive vs seed reference: %.2fx faster, "
                "output %s (%s)\n",
                speedup, identical ? "byte-identical" : "DIVERGED",
                HexChecksum(fast.checksum).c_str());

    json.BeginObject();
    json.Key("name").Value(c.dataset.name);
    json.Key("points").Value(static_cast<uint64_t>(stream.size()));
    json.Key("note").Value(c.note);
    json.Key("algorithms").BeginArray();
    for (const MeasuredRun& run : runs) EmitRun(json, run);
    json.EndArray();
    json.Key("bqs_speedup_vs_bruteforce").Value(speedup);
    json.Key("byte_identical").Value(identical);
    json.EndObject();
  }

  json.EndArray();
  json.Key("all_byte_identical").Value(all_identical);
  json.EndObject();

  if (!json.WriteFile(out_path)) {
    std::fprintf(stderr, "FAILED to write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: a fast-kernel/resolver output diverged from the "
                 "seed reference checksum\n");
    return 1;
  }
  if (!all_bounded) {
    std::fprintf(stderr,
                 "FAIL: a compression violated the epsilon error bound\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) { return bqs::Run(argc, argv); }
