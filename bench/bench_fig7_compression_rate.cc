// Fig. 7 reproduction: compression rate (lower = better) of BQS, FBQS,
// BDP, BGD and offline DP vs error tolerance on the bat and vehicle
// datasets, buffer = 32 points for the window baselines. Paper's shape:
// BQS best, FBQS between BQS and DP, BDP worst; bat data compresses
// better than vehicle data at equal tolerance; at 20 m FBQS improves on
// BDP/BGD by ~47%/45%.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "eval/ascii_chart.h"
#include "eval/runner.h"
#include "eval/table.h"

namespace bqs {
namespace {

void RunDataset(const Dataset& dataset,
                const std::vector<double>& epsilons) {
  std::printf("\n-- %s data (%zu points) --\n", dataset.name.c_str(),
              dataset.stream.size());
  const std::vector<AlgorithmId> algorithms{
      AlgorithmId::kBqs, AlgorithmId::kFbqs, AlgorithmId::kBdp,
      AlgorithmId::kBgd, AlgorithmId::kDp};
  std::vector<std::string> headers{"eps_m"};
  std::vector<ChartSeries> curves;
  for (AlgorithmId id : algorithms) {
    headers.emplace_back(AlgorithmName(id));
    curves.push_back(
        ChartSeries{std::string(AlgorithmName(id)) + " rate %", {}, {}});
  }
  headers.emplace_back("bounded");
  TablePrinter table(headers);
  for (double eps : epsilons) {
    std::vector<std::string> cells{FmtDouble(eps, 0)};
    bool all_bounded = true;
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const SweepRow row =
          RunCell(algorithms[a], dataset, eps, 32, /*verify=*/true);
      cells.push_back(FmtPercent(row.compression_rate, 2));
      all_bounded = all_bounded && row.error_bounded;
      curves[a].xs.push_back(eps);
      curves[a].ys.push_back(100.0 * row.compression_rate);
    }
    cells.emplace_back(all_bounded ? "yes" : "NO");
    table.AddRow(std::move(cells));
  }
  table.Print(std::cout);
  AsciiChart chart(60, 14);
  for (auto& c : curves) chart.Add(std::move(c));
  chart.Print(std::cout);
}

int Run(double scale) {
  bench::Banner(
      "Fig. 7 — Compression rate vs error tolerance (buffer = 32)",
      "BQS best; FBQS ~ between BQS and DP; BDP worst; bat < vehicle; "
      "FBQS@20m beats BDP/BGD by ~47%/45%",
      scale);
  const Dataset bat = BuildBatDataset(scale);
  const Dataset vehicle = BuildVehicleDataset(scale);
  RunDataset(bat, {2, 4, 6, 8, 10, 12, 14, 16, 18, 20});
  RunDataset(vehicle, {5, 10, 15, 20, 25, 30, 35, 40, 45, 50});

  // The paper's headline deltas at the shared tolerances.
  std::printf("\n-- headline comparisons --\n");
  for (const Dataset* d : {&bat, &vehicle}) {
    const SweepRow fbqs = RunCell(AlgorithmId::kFbqs, *d, 20.0);
    const SweepRow bdp = RunCell(AlgorithmId::kBdp, *d, 20.0);
    const SweepRow bgd = RunCell(AlgorithmId::kBgd, *d, 20.0);
    std::printf(
        "%s @20m: FBQS %.2f%%, BDP %.2f%% (FBQS better by %.0f%%), "
        "BGD %.2f%% (FBQS better by %.0f%%)   [paper: 47%% / 45%% on bat]\n",
        d->name.c_str(), 100.0 * fbqs.compression_rate,
        100.0 * bdp.compression_rate,
        100.0 * (1.0 - fbqs.compression_rate / bdp.compression_rate),
        100.0 * bgd.compression_rate,
        100.0 * (1.0 - fbqs.compression_rate / bgd.compression_rate));
  }
  const SweepRow bat10 = RunCell(AlgorithmId::kBqs, bat, 10.0);
  const SweepRow veh10 = RunCell(AlgorithmId::kBqs, vehicle, 10.0);
  std::printf(
      "@10m: bat BQS %.2f%% vs vehicle BQS %.2f%%  "
      "[paper: 3.9%% vs 5.4%% — bat compresses better]\n",
      100.0 * bat10.compression_rate, 100.0 * veh10.compression_rate);
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.35));
}
