// Ablation: sound corrected bounds (default) vs the paper's literal
// Eq. (8)/(10)/(11) bounds vs the loose Theorem 5.2 box-only bounds.
// Quantifies the "soundness tax" — the compression-rate and pruning-power
// cost of fixing the paper's bound gaps — and counts actual error-bound
// violations of the paper-literal mode on each workload.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/bqs_compressor.h"
#include "core/fbqs_compressor.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "simulation/datasets.h"
#include "trajectory/deviation.h"

namespace bqs {
namespace {

struct ModeResult {
  double rate = 0.0;
  double pruning = 0.0;
  double max_dev = 0.0;
};

ModeResult RunMode(const Dataset& dataset, double eps, bool fast,
                   BoundsMode mode, bool paper_trivial) {
  BqsOptions options;
  options.epsilon = eps;
  options.bounds_mode = mode;
  options.paper_trivial_include = paper_trivial;
  ModeResult out;
  CompressedTrajectory compressed;
  if (fast) {
    FbqsCompressor c(options);
    compressed = CompressAll(c, dataset.stream);
    out.pruning = c.stats().PruningPower();
  } else {
    BqsCompressor c(options);
    compressed = CompressAll(c, dataset.stream);
    out.pruning = c.stats().PruningPower();
  }
  out.rate = CompressionRate(compressed.size(), dataset.stream.size());
  out.max_dev =
      EvaluateCompression(dataset.stream, compressed,
                          DistanceMetric::kPointToLine)
          .max_deviation;
  return out;
}

int Run(double scale) {
  bench::Banner(
      "Ablation — sound bounds vs paper-literal bounds (eps = 10 m)",
      "the paper-literal mode is tighter but can exceed the error bound "
      "(DESIGN.md, paper-faithfulness notes)",
      scale);
  TablePrinter table({"dataset", "engine", "mode", "rate", "pruning",
                      "max_dev_m", "bounded"});
  for (const Dataset& dataset : BuildAllDatasets(scale)) {
    for (bool fast : {false, true}) {
      const char* engine = fast ? "FBQS" : "BQS";
      const ModeResult sound =
          RunMode(dataset, 10.0, fast, BoundsMode::kSound, false);
      const ModeResult paper =
          RunMode(dataset, 10.0, fast, BoundsMode::kPaperEq8, true);
      table.AddRow({dataset.name, engine, "sound",
                    FmtPercent(sound.rate, 2), FmtDouble(sound.pruning, 3),
                    FmtDouble(sound.max_dev, 1),
                    sound.max_dev <= 10.0 * (1 + 1e-9) ? "yes" : "NO"});
      table.AddRow({dataset.name, engine, "paper",
                    FmtPercent(paper.rate, 2), FmtDouble(paper.pruning, 3),
                    FmtDouble(paper.max_dev, 1),
                    paper.max_dev <= 10.0 * (1 + 1e-9) ? "yes" : "NO"});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nReading: 'paper' rows with bounded = NO exceeded the guaranteed "
      "tolerance — the compression advantage of the literal algorithm is "
      "partly obtained by violating its own bound.\n");
  return 0;
}

}  // namespace
}  // namespace bqs

int main(int argc, char** argv) {
  return bqs::Run(bqs::bench::ScaleFromArgs(argc, argv, 0.35));
}
