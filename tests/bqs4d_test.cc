// 4-D BQS: bound sandwich property per orthant and the end-to-end error
// bound for <x, y, z, scaled t> streams.
#include "core/bqs4d_compressor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

std::vector<TrackPoint4> Walk4(uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<TrackPoint4> out;
  out.reserve(n);
  Vec4 pos{};
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        pos = pos + Vec4{rng.Normal(0, 5), rng.Normal(0, 5),
                         rng.Normal(0, 2), rng.Normal(0, 1)};
        break;
      case 1:
        break;  // stationary (time axis still advances below)
      case 2:
        pos = pos + Vec4{8, 3, 1, 0.5};
        break;
      default:
        pos = pos + Vec4{rng.Uniform(-40, 40), rng.Uniform(-40, 40),
                         rng.Uniform(-15, 15), rng.Uniform(-5, 5)};
        break;
    }
    pos.w += 0.2;  // the scaled-time axis is monotone
    out.push_back(TrackPoint4{pos, static_cast<double>(i)});
  }
  return out;
}

TEST(Vec4Test, DistanceBasics) {
  EXPECT_DOUBLE_EQ((Vec4{1, 2, 3, 4}).Dot(Vec4{4, 3, 2, 1}), 20.0);
  EXPECT_DOUBLE_EQ(Distance(Vec4{}, Vec4{2, 2, 2, 2}), 4.0);
  // Line along x: deviation is the norm of the (y,z,w) components.
  EXPECT_DOUBLE_EQ(
      PointToLineDistance4({5, 3, 0, 4}, Vec4{}, {10, 0, 0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(PointToLineDistance4({1, 2, 2, 0}, Vec4{}, Vec4{}), 3.0);
  // Segment clamps.
  EXPECT_DOUBLE_EQ(
      PointToSegmentDistance4({13, 0, 0, 4}, Vec4{}, {10, 0, 0, 0}), 5.0);
}

TEST(OrthantBound4Test, CornersCoverPoints) {
  Rng rng(5);
  OrthantBound4 ob;
  std::vector<Vec4> points;
  for (int i = 0; i < 50; ++i) {
    const Vec4 p{rng.Uniform(0.1, 80), rng.Uniform(0.1, 80),
                 rng.Uniform(0.1, 80), rng.Uniform(0.1, 80)};
    ob.Add(p);
    points.push_back(p);
  }
  const auto corners = ob.Corners();
  for (const Vec4& p : points) {
    for (int axis = 0; axis < 4; ++axis) {
      EXPECT_LE(corners[0][axis], p[axis] + 1e-12);
      EXPECT_GE(corners[15][axis], p[axis] - 1e-12);
    }
  }
  // Extreme points are actual members.
  for (const Vec4& e : ob.extreme_points()) {
    bool found = false;
    for (const Vec4& p : points) {
      if (p == e) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Bqs4dBoundsTest, SandwichProperty) {
  // Aggregate bounds vs exact deviation, through the compressor's own
  // decision path: since bounds are internal, verify indirectly — the
  // compressor's output must be error-bounded and the exact engine must
  // match an exhaustive greedy reference in spot checks.
  Rng rng(9);
  for (int iter = 0; iter < 300; ++iter) {
    OrthantBound4 ob;
    std::vector<Vec4> points;
    const int n = static_cast<int>(rng.UniformInt(1, 30));
    for (int i = 0; i < n; ++i) {
      const Vec4 p{rng.Uniform(0.2, 100), rng.Uniform(0.2, 100),
                   rng.Uniform(0.2, 100), rng.Uniform(0.2, 100)};
      ob.Add(p);
      points.push_back(p);
    }
    const Vec4 end{rng.Uniform(-150, 150), rng.Uniform(-150, 150),
                   rng.Uniform(-150, 150), rng.Uniform(-150, 150)};
    double exact = 0.0;
    for (const Vec4& p : points) {
      exact = std::max(exact, PointToLineDistance4(p, Vec4{}, end));
    }
    double upper = 0.0;
    for (const Vec4& c : ob.Corners()) {
      upper = std::max(upper, PointToLineDistance4(c, Vec4{}, end));
    }
    double lower = 0.0;
    for (const Vec4& p : ob.extreme_points()) {
      lower = std::max(lower, PointToLineDistance4(p, Vec4{}, end));
    }
    const double tol = 1e-7 * (1.0 + exact);
    EXPECT_GE(upper, exact - tol);
    EXPECT_LE(lower, exact + tol);
  }
}

class Bqs4dErrorBoundTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(Bqs4dErrorBoundTest, CompressionIsErrorBounded) {
  const auto [seed, exact_mode] = GetParam();
  const auto walk = Walk4(seed, 1500);
  Bqs4dOptions options;
  options.epsilon = 8.0;
  Bqs4dCompressor compressor(options, exact_mode);
  const CompressedTrajectory4 compressed =
      Compress4dAll(compressor, walk);
  const DeviationReport report =
      Evaluate4dCompression(walk, compressed, options.metric);
  EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9))
      << "seed=" << seed << " exact=" << exact_mode;
  EXPECT_GE(compressed.size(), 2u);
  EXPECT_LT(compressed.size(), walk.size());
}

INSTANTIATE_TEST_SUITE_P(SeedsAndModes, Bqs4dErrorBoundTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Bool()));

TEST(Bqs4dCompressorTest, ExactNeverWorseThanFast) {
  const auto walk = Walk4(11, 2000);
  Bqs4dOptions options;
  options.epsilon = 10.0;
  Bqs4dCompressor exact(options, true);
  Bqs4dCompressor fast(options, false);
  EXPECT_LE(Compress4dAll(exact, walk).size(),
            Compress4dAll(fast, walk).size());
}

TEST(Bqs4dCompressorTest, StationaryStreamCompressesToTwo) {
  std::vector<TrackPoint4> walk(
      150, TrackPoint4{Vec4{1, 2, 3, 0}, 0.0});
  for (std::size_t i = 0; i < walk.size(); ++i) {
    walk[i].t = static_cast<double>(i);
  }
  Bqs4dCompressor compressor(Bqs4dOptions{}, false);
  EXPECT_EQ(Compress4dAll(compressor, walk).size(), 2u);
}

TEST(Bqs4dCompressorTest, DegeneratesToLowerDimensions) {
  // A walk confined to the z = w = 0 plane must behave like a 2-D stream.
  Rng rng(13);
  std::vector<TrackPoint4> walk;
  Vec4 pos{};
  for (int i = 0; i < 800; ++i) {
    pos = pos + Vec4{rng.Normal(0, 6), rng.Normal(0, 6), 0, 0};
    walk.push_back(TrackPoint4{pos, static_cast<double>(i)});
  }
  Bqs4dOptions options;
  options.epsilon = 10.0;
  Bqs4dCompressor compressor(options, true);
  const auto compressed = Compress4dAll(compressor, walk);
  const DeviationReport report =
      Evaluate4dCompression(walk, compressed, options.metric);
  EXPECT_LE(report.max_deviation, options.epsilon * (1.0 + 1e-9));
  EXPECT_LT(compressed.size(), walk.size() / 3);
}

TEST(Bqs4dCompressorTest, OptionsValidate) {
  Bqs4dOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.epsilon = 0.0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace bqs
