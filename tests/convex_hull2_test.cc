// Monotone-chain convex hull and point-in-polygon tests.
#include "geometry/convex_hull2.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bqs {
namespace {

TEST(ConvexHullTest, SmallInputsPassThrough) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_EQ(ConvexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{1, 1}, {2, 2}}).size(), 2u);
  // Duplicates collapse.
  EXPECT_EQ(ConvexHull({{1, 1}, {1, 1}, {1, 1}}).size(), 1u);
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const auto hull = ConvexHull(
      {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {3, 1}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_GT(PolygonSignedArea2(hull), 0.0);  // CCW
  EXPECT_DOUBLE_EQ(PolygonSignedArea2(hull), 32.0);  // 2 * area(16)
}

TEST(ConvexHullTest, CollinearPointsDrop) {
  const auto hull = ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHullTest, HullContainsAllInputPoints) {
  Rng rng(21);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Vec2> points;
    const int n = static_cast<int>(rng.UniformInt(3, 60));
    for (int i = 0; i < n; ++i) {
      points.push_back({rng.Uniform(-50, 50), rng.Uniform(-50, 50)});
    }
    const auto hull = ConvexHull(points);
    for (const Vec2& p : points) {
      EXPECT_TRUE(ConvexPolygonContains(hull, p, 1e-7))
          << "point (" << p.x << "," << p.y << ") escaped its hull";
    }
  }
}

TEST(ConvexHullTest, HullIsConvex) {
  Rng rng(22);
  std::vector<Vec2> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back({rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
  }
  const auto hull = ConvexHull(points);
  ASSERT_GE(hull.size(), 3u);
  for (std::size_t i = 0; i < hull.size(); ++i) {
    const Vec2 a = hull[i];
    const Vec2 b = hull[(i + 1) % hull.size()];
    const Vec2 c = hull[(i + 2) % hull.size()];
    EXPECT_GT((b - a).Cross(c - b), 0.0) << "non-left turn at vertex " << i;
  }
}

TEST(ConvexPolygonContainsTest, BoundaryAndOutside) {
  const std::vector<Vec2> square{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_TRUE(ConvexPolygonContains(square, {2, 2}));
  EXPECT_TRUE(ConvexPolygonContains(square, {0, 0}));
  EXPECT_TRUE(ConvexPolygonContains(square, {4, 2}));
  EXPECT_FALSE(ConvexPolygonContains(square, {4.1, 2}));
  EXPECT_FALSE(ConvexPolygonContains(square, {-0.1, -0.1}));
}

TEST(ConvexPolygonContainsTest, DegenerateHulls) {
  EXPECT_FALSE(ConvexPolygonContains({}, {0, 0}));
  EXPECT_TRUE(ConvexPolygonContains({{1, 1}}, {1, 1}));
  EXPECT_FALSE(ConvexPolygonContains({{1, 1}}, {2, 2}));
  const std::vector<Vec2> seg{{0, 0}, {10, 0}};
  EXPECT_TRUE(ConvexPolygonContains(seg, {5, 0}));
  EXPECT_FALSE(ConvexPolygonContains(seg, {5, 1}));
}

TEST(PolygonAreaTest, OrientationSign) {
  const std::vector<Vec2> ccw{{0, 0}, {1, 0}, {1, 1}};
  const std::vector<Vec2> cw{{0, 0}, {1, 1}, {1, 0}};
  EXPECT_GT(PolygonSignedArea2(ccw), 0.0);
  EXPECT_LT(PolygonSignedArea2(cw), 0.0);
  EXPECT_DOUBLE_EQ(PolygonSignedArea2(ccw), 1.0);
}

}  // namespace
}  // namespace bqs
